
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/b2c.cpp" "tools/CMakeFiles/b2c.dir/b2c.cpp.o" "gcc" "tools/CMakeFiles/b2c.dir/b2c.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verify/CMakeFiles/b2_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/b2_app.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/b2_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/bedrock2/CMakeFiles/b2_bedrock2.dir/DependInfo.cmake"
  "/root/repo/build/src/tracespec/CMakeFiles/b2_tracespec.dir/DependInfo.cmake"
  "/root/repo/build/src/kami/CMakeFiles/b2_kami.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/b2_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/riscv/CMakeFiles/b2_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/b2_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/b2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
