file(REMOVE_RECURSE
  "CMakeFiles/b2c.dir/b2c.cpp.o"
  "CMakeFiles/b2c.dir/b2c.cpp.o.d"
  "b2c"
  "b2c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
