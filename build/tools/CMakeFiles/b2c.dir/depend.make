# Empty dependencies file for b2c.
# This may be replaced when dependencies are built.
