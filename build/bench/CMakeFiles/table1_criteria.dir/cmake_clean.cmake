file(REMOVE_RECURSE
  "CMakeFiles/table1_criteria.dir/table1_criteria.cpp.o"
  "CMakeFiles/table1_criteria.dir/table1_criteria.cpp.o.d"
  "table1_criteria"
  "table1_criteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
