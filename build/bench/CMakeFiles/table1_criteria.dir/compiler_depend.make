# Empty compiler generated dependencies file for table1_criteria.
# This may be replaced when dependencies are built.
