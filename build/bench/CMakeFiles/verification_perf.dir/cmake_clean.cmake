file(REMOVE_RECURSE
  "CMakeFiles/verification_perf.dir/verification_perf.cpp.o"
  "CMakeFiles/verification_perf.dir/verification_perf.cpp.o.d"
  "verification_perf"
  "verification_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verification_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
