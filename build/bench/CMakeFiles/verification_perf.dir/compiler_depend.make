# Empty compiler generated dependencies file for verification_perf.
# This may be replaced when dependencies are built.
