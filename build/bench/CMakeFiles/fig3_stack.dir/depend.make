# Empty dependencies file for fig3_stack.
# This may be replaced when dependencies are built.
