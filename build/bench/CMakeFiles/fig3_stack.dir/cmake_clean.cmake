file(REMOVE_RECURSE
  "CMakeFiles/fig3_stack.dir/fig3_stack.cpp.o"
  "CMakeFiles/fig3_stack.dir/fig3_stack.cpp.o.d"
  "fig3_stack"
  "fig3_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
