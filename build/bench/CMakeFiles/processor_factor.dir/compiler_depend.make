# Empty compiler generated dependencies file for processor_factor.
# This may be replaced when dependencies are built.
