file(REMOVE_RECURSE
  "CMakeFiles/processor_factor.dir/processor_factor.cpp.o"
  "CMakeFiles/processor_factor.dir/processor_factor.cpp.o.d"
  "processor_factor"
  "processor_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processor_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
