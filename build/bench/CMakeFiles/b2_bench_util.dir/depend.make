# Empty dependencies file for b2_bench_util.
# This may be replaced when dependencies are built.
