file(REMOVE_RECURSE
  "CMakeFiles/b2_bench_util.dir/LatencyHarness.cpp.o"
  "CMakeFiles/b2_bench_util.dir/LatencyHarness.cpp.o.d"
  "libb2_bench_util.a"
  "libb2_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
