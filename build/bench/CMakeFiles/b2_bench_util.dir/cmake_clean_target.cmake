file(REMOVE_RECURSE
  "libb2_bench_util.a"
)
