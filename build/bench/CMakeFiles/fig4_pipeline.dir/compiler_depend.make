# Empty compiler generated dependencies file for fig4_pipeline.
# This may be replaced when dependencies are built.
