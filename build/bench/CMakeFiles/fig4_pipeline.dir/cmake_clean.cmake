file(REMOVE_RECURSE
  "CMakeFiles/fig4_pipeline.dir/fig4_pipeline.cpp.o"
  "CMakeFiles/fig4_pipeline.dir/fig4_pipeline.cpp.o.d"
  "fig4_pipeline"
  "fig4_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
