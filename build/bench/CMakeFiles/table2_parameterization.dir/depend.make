# Empty dependencies file for table2_parameterization.
# This may be replaced when dependencies are built.
