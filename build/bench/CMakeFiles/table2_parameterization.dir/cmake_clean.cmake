file(REMOVE_RECURSE
  "CMakeFiles/table2_parameterization.dir/table2_parameterization.cpp.o"
  "CMakeFiles/table2_parameterization.dir/table2_parameterization.cpp.o.d"
  "table2_parameterization"
  "table2_parameterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_parameterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
