# Empty compiler generated dependencies file for perf_decomposition.
# This may be replaced when dependencies are built.
