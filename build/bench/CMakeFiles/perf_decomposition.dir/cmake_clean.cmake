file(REMOVE_RECURSE
  "CMakeFiles/perf_decomposition.dir/perf_decomposition.cpp.o"
  "CMakeFiles/perf_decomposition.dir/perf_decomposition.cpp.o.d"
  "perf_decomposition"
  "perf_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
