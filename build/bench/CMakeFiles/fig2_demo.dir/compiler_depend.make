# Empty compiler generated dependencies file for fig2_demo.
# This may be replaced when dependencies are built.
