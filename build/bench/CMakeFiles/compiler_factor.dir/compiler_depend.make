# Empty compiler generated dependencies file for compiler_factor.
# This may be replaced when dependencies are built.
