file(REMOVE_RECURSE
  "CMakeFiles/compiler_factor.dir/compiler_factor.cpp.o"
  "CMakeFiles/compiler_factor.dir/compiler_factor.cpp.o.d"
  "compiler_factor"
  "compiler_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
