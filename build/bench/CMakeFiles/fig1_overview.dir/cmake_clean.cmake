file(REMOVE_RECURSE
  "CMakeFiles/fig1_overview.dir/fig1_overview.cpp.o"
  "CMakeFiles/fig1_overview.dir/fig1_overview.cpp.o.d"
  "fig1_overview"
  "fig1_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
