# Empty dependencies file for table3_tcb.
# This may be replaced when dependencies are built.
