file(REMOVE_RECURSE
  "CMakeFiles/b2_devices.dir/Lan9250.cpp.o"
  "CMakeFiles/b2_devices.dir/Lan9250.cpp.o.d"
  "CMakeFiles/b2_devices.dir/Net.cpp.o"
  "CMakeFiles/b2_devices.dir/Net.cpp.o.d"
  "CMakeFiles/b2_devices.dir/Platform.cpp.o"
  "CMakeFiles/b2_devices.dir/Platform.cpp.o.d"
  "CMakeFiles/b2_devices.dir/Spi.cpp.o"
  "CMakeFiles/b2_devices.dir/Spi.cpp.o.d"
  "libb2_devices.a"
  "libb2_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
