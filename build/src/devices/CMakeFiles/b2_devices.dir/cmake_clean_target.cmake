file(REMOVE_RECURSE
  "libb2_devices.a"
)
