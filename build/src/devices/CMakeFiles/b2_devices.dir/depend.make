# Empty dependencies file for b2_devices.
# This may be replaced when dependencies are built.
