
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bedrock2/Ast.cpp" "src/bedrock2/CMakeFiles/b2_bedrock2.dir/Ast.cpp.o" "gcc" "src/bedrock2/CMakeFiles/b2_bedrock2.dir/Ast.cpp.o.d"
  "/root/repo/src/bedrock2/CExport.cpp" "src/bedrock2/CMakeFiles/b2_bedrock2.dir/CExport.cpp.o" "gcc" "src/bedrock2/CMakeFiles/b2_bedrock2.dir/CExport.cpp.o.d"
  "/root/repo/src/bedrock2/Dma.cpp" "src/bedrock2/CMakeFiles/b2_bedrock2.dir/Dma.cpp.o" "gcc" "src/bedrock2/CMakeFiles/b2_bedrock2.dir/Dma.cpp.o.d"
  "/root/repo/src/bedrock2/Parser.cpp" "src/bedrock2/CMakeFiles/b2_bedrock2.dir/Parser.cpp.o" "gcc" "src/bedrock2/CMakeFiles/b2_bedrock2.dir/Parser.cpp.o.d"
  "/root/repo/src/bedrock2/Semantics.cpp" "src/bedrock2/CMakeFiles/b2_bedrock2.dir/Semantics.cpp.o" "gcc" "src/bedrock2/CMakeFiles/b2_bedrock2.dir/Semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/devices/CMakeFiles/b2_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/riscv/CMakeFiles/b2_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/b2_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/b2_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
