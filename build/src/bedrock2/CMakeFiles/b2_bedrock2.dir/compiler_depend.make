# Empty compiler generated dependencies file for b2_bedrock2.
# This may be replaced when dependencies are built.
