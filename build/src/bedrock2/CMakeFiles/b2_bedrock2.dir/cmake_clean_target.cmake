file(REMOVE_RECURSE
  "libb2_bedrock2.a"
)
