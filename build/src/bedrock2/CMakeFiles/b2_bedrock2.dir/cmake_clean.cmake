file(REMOVE_RECURSE
  "CMakeFiles/b2_bedrock2.dir/Ast.cpp.o"
  "CMakeFiles/b2_bedrock2.dir/Ast.cpp.o.d"
  "CMakeFiles/b2_bedrock2.dir/CExport.cpp.o"
  "CMakeFiles/b2_bedrock2.dir/CExport.cpp.o.d"
  "CMakeFiles/b2_bedrock2.dir/Dma.cpp.o"
  "CMakeFiles/b2_bedrock2.dir/Dma.cpp.o.d"
  "CMakeFiles/b2_bedrock2.dir/Parser.cpp.o"
  "CMakeFiles/b2_bedrock2.dir/Parser.cpp.o.d"
  "CMakeFiles/b2_bedrock2.dir/Semantics.cpp.o"
  "CMakeFiles/b2_bedrock2.dir/Semantics.cpp.o.d"
  "libb2_bedrock2.a"
  "libb2_bedrock2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2_bedrock2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
