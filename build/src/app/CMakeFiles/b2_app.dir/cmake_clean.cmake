file(REMOVE_RECURSE
  "CMakeFiles/b2_app.dir/Firmware.cpp.o"
  "CMakeFiles/b2_app.dir/Firmware.cpp.o.d"
  "CMakeFiles/b2_app.dir/LightbulbSpec.cpp.o"
  "CMakeFiles/b2_app.dir/LightbulbSpec.cpp.o.d"
  "libb2_app.a"
  "libb2_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
