file(REMOVE_RECURSE
  "libb2_app.a"
)
