# Empty dependencies file for b2_app.
# This may be replaced when dependencies are built.
