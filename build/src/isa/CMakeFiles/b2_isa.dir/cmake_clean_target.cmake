file(REMOVE_RECURSE
  "libb2_isa.a"
)
