file(REMOVE_RECURSE
  "CMakeFiles/b2_isa.dir/Disasm.cpp.o"
  "CMakeFiles/b2_isa.dir/Disasm.cpp.o.d"
  "CMakeFiles/b2_isa.dir/Encoding.cpp.o"
  "CMakeFiles/b2_isa.dir/Encoding.cpp.o.d"
  "CMakeFiles/b2_isa.dir/Instr.cpp.o"
  "CMakeFiles/b2_isa.dir/Instr.cpp.o.d"
  "libb2_isa.a"
  "libb2_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
