# Empty compiler generated dependencies file for b2_isa.
# This may be replaced when dependencies are built.
