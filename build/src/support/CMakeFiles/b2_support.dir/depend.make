# Empty dependencies file for b2_support.
# This may be replaced when dependencies are built.
