file(REMOVE_RECURSE
  "CMakeFiles/b2_support.dir/Format.cpp.o"
  "CMakeFiles/b2_support.dir/Format.cpp.o.d"
  "libb2_support.a"
  "libb2_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
