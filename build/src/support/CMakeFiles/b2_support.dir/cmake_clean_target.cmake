file(REMOVE_RECURSE
  "libb2_support.a"
)
