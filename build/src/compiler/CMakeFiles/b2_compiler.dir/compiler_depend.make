# Empty compiler generated dependencies file for b2_compiler.
# This may be replaced when dependencies are built.
