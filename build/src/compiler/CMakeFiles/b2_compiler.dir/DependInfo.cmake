
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/Asm.cpp" "src/compiler/CMakeFiles/b2_compiler.dir/Asm.cpp.o" "gcc" "src/compiler/CMakeFiles/b2_compiler.dir/Asm.cpp.o.d"
  "/root/repo/src/compiler/Codegen.cpp" "src/compiler/CMakeFiles/b2_compiler.dir/Codegen.cpp.o" "gcc" "src/compiler/CMakeFiles/b2_compiler.dir/Codegen.cpp.o.d"
  "/root/repo/src/compiler/Compile.cpp" "src/compiler/CMakeFiles/b2_compiler.dir/Compile.cpp.o" "gcc" "src/compiler/CMakeFiles/b2_compiler.dir/Compile.cpp.o.d"
  "/root/repo/src/compiler/FlatImp.cpp" "src/compiler/CMakeFiles/b2_compiler.dir/FlatImp.cpp.o" "gcc" "src/compiler/CMakeFiles/b2_compiler.dir/FlatImp.cpp.o.d"
  "/root/repo/src/compiler/Flatten.cpp" "src/compiler/CMakeFiles/b2_compiler.dir/Flatten.cpp.o" "gcc" "src/compiler/CMakeFiles/b2_compiler.dir/Flatten.cpp.o.d"
  "/root/repo/src/compiler/Passes.cpp" "src/compiler/CMakeFiles/b2_compiler.dir/Passes.cpp.o" "gcc" "src/compiler/CMakeFiles/b2_compiler.dir/Passes.cpp.o.d"
  "/root/repo/src/compiler/RegAlloc.cpp" "src/compiler/CMakeFiles/b2_compiler.dir/RegAlloc.cpp.o" "gcc" "src/compiler/CMakeFiles/b2_compiler.dir/RegAlloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bedrock2/CMakeFiles/b2_bedrock2.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/b2_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/b2_support.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/b2_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/riscv/CMakeFiles/b2_riscv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
