file(REMOVE_RECURSE
  "CMakeFiles/b2_compiler.dir/Asm.cpp.o"
  "CMakeFiles/b2_compiler.dir/Asm.cpp.o.d"
  "CMakeFiles/b2_compiler.dir/Codegen.cpp.o"
  "CMakeFiles/b2_compiler.dir/Codegen.cpp.o.d"
  "CMakeFiles/b2_compiler.dir/Compile.cpp.o"
  "CMakeFiles/b2_compiler.dir/Compile.cpp.o.d"
  "CMakeFiles/b2_compiler.dir/FlatImp.cpp.o"
  "CMakeFiles/b2_compiler.dir/FlatImp.cpp.o.d"
  "CMakeFiles/b2_compiler.dir/Flatten.cpp.o"
  "CMakeFiles/b2_compiler.dir/Flatten.cpp.o.d"
  "CMakeFiles/b2_compiler.dir/Passes.cpp.o"
  "CMakeFiles/b2_compiler.dir/Passes.cpp.o.d"
  "CMakeFiles/b2_compiler.dir/RegAlloc.cpp.o"
  "CMakeFiles/b2_compiler.dir/RegAlloc.cpp.o.d"
  "libb2_compiler.a"
  "libb2_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
