file(REMOVE_RECURSE
  "libb2_compiler.a"
)
