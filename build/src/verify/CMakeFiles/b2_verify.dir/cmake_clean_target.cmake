file(REMOVE_RECURSE
  "libb2_verify.a"
)
