file(REMOVE_RECURSE
  "CMakeFiles/b2_verify.dir/CompilerDiff.cpp.o"
  "CMakeFiles/b2_verify.dir/CompilerDiff.cpp.o.d"
  "CMakeFiles/b2_verify.dir/DecodeConsistency.cpp.o"
  "CMakeFiles/b2_verify.dir/DecodeConsistency.cpp.o.d"
  "CMakeFiles/b2_verify.dir/EndToEnd.cpp.o"
  "CMakeFiles/b2_verify.dir/EndToEnd.cpp.o.d"
  "CMakeFiles/b2_verify.dir/Lockstep.cpp.o"
  "CMakeFiles/b2_verify.dir/Lockstep.cpp.o.d"
  "CMakeFiles/b2_verify.dir/Refinement.cpp.o"
  "CMakeFiles/b2_verify.dir/Refinement.cpp.o.d"
  "libb2_verify.a"
  "libb2_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
