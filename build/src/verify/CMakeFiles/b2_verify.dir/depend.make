# Empty dependencies file for b2_verify.
# This may be replaced when dependencies are built.
