file(REMOVE_RECURSE
  "CMakeFiles/b2_kami.dir/Decode.cpp.o"
  "CMakeFiles/b2_kami.dir/Decode.cpp.o.d"
  "CMakeFiles/b2_kami.dir/PipelinedCore.cpp.o"
  "CMakeFiles/b2_kami.dir/PipelinedCore.cpp.o.d"
  "CMakeFiles/b2_kami.dir/SpecCore.cpp.o"
  "CMakeFiles/b2_kami.dir/SpecCore.cpp.o.d"
  "libb2_kami.a"
  "libb2_kami.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2_kami.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
