
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kami/Decode.cpp" "src/kami/CMakeFiles/b2_kami.dir/Decode.cpp.o" "gcc" "src/kami/CMakeFiles/b2_kami.dir/Decode.cpp.o.d"
  "/root/repo/src/kami/PipelinedCore.cpp" "src/kami/CMakeFiles/b2_kami.dir/PipelinedCore.cpp.o" "gcc" "src/kami/CMakeFiles/b2_kami.dir/PipelinedCore.cpp.o.d"
  "/root/repo/src/kami/SpecCore.cpp" "src/kami/CMakeFiles/b2_kami.dir/SpecCore.cpp.o" "gcc" "src/kami/CMakeFiles/b2_kami.dir/SpecCore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/riscv/CMakeFiles/b2_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/b2_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/b2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
