# Empty compiler generated dependencies file for b2_kami.
# This may be replaced when dependencies are built.
