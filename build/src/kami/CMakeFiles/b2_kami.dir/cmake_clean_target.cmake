file(REMOVE_RECURSE
  "libb2_kami.a"
)
