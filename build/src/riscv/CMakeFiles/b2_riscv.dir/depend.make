# Empty dependencies file for b2_riscv.
# This may be replaced when dependencies are built.
