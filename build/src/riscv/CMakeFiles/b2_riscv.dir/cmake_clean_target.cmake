file(REMOVE_RECURSE
  "libb2_riscv.a"
)
