file(REMOVE_RECURSE
  "CMakeFiles/b2_riscv.dir/Machine.cpp.o"
  "CMakeFiles/b2_riscv.dir/Machine.cpp.o.d"
  "CMakeFiles/b2_riscv.dir/Step.cpp.o"
  "CMakeFiles/b2_riscv.dir/Step.cpp.o.d"
  "libb2_riscv.a"
  "libb2_riscv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
