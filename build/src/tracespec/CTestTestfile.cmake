# CMake generated Testfile for 
# Source directory: /root/repo/src/tracespec
# Build directory: /root/repo/build/src/tracespec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
