file(REMOVE_RECURSE
  "libb2_tracespec.a"
)
