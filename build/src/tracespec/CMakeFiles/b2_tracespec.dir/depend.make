# Empty dependencies file for b2_tracespec.
# This may be replaced when dependencies are built.
