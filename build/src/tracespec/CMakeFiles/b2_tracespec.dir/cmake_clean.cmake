file(REMOVE_RECURSE
  "CMakeFiles/b2_tracespec.dir/Matcher.cpp.o"
  "CMakeFiles/b2_tracespec.dir/Matcher.cpp.o.d"
  "CMakeFiles/b2_tracespec.dir/Spec.cpp.o"
  "CMakeFiles/b2_tracespec.dir/Spec.cpp.o.d"
  "libb2_tracespec.a"
  "libb2_tracespec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2_tracespec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
