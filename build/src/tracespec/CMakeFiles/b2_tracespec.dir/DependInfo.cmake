
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracespec/Matcher.cpp" "src/tracespec/CMakeFiles/b2_tracespec.dir/Matcher.cpp.o" "gcc" "src/tracespec/CMakeFiles/b2_tracespec.dir/Matcher.cpp.o.d"
  "/root/repo/src/tracespec/Spec.cpp" "src/tracespec/CMakeFiles/b2_tracespec.dir/Spec.cpp.o" "gcc" "src/tracespec/CMakeFiles/b2_tracespec.dir/Spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/riscv/CMakeFiles/b2_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/b2_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/b2_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
