
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_app.cpp" "tests/CMakeFiles/b2_tests.dir/test_app.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_app.cpp.o.d"
  "/root/repo/tests/test_bedrock2.cpp" "tests/CMakeFiles/b2_tests.dir/test_bedrock2.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_bedrock2.cpp.o.d"
  "/root/repo/tests/test_compiler.cpp" "tests/CMakeFiles/b2_tests.dir/test_compiler.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_compiler.cpp.o.d"
  "/root/repo/tests/test_contracts.cpp" "tests/CMakeFiles/b2_tests.dir/test_contracts.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_contracts.cpp.o.d"
  "/root/repo/tests/test_devices.cpp" "tests/CMakeFiles/b2_tests.dir/test_devices.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_devices.cpp.o.d"
  "/root/repo/tests/test_dma.cpp" "tests/CMakeFiles/b2_tests.dir/test_dma.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_dma.cpp.o.d"
  "/root/repo/tests/test_endtoend.cpp" "tests/CMakeFiles/b2_tests.dir/test_endtoend.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_endtoend.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/b2_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_kami.cpp" "tests/CMakeFiles/b2_tests.dir/test_kami.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_kami.cpp.o.d"
  "/root/repo/tests/test_param.cpp" "tests/CMakeFiles/b2_tests.dir/test_param.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_param.cpp.o.d"
  "/root/repo/tests/test_riscv.cpp" "tests/CMakeFiles/b2_tests.dir/test_riscv.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_riscv.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/b2_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/b2_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_tracespec.cpp" "tests/CMakeFiles/b2_tests.dir/test_tracespec.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_tracespec.cpp.o.d"
  "/root/repo/tests/test_verify.cpp" "tests/CMakeFiles/b2_tests.dir/test_verify.cpp.o" "gcc" "tests/CMakeFiles/b2_tests.dir/test_verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verify/CMakeFiles/b2_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/b2_app.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/b2_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/bedrock2/CMakeFiles/b2_bedrock2.dir/DependInfo.cmake"
  "/root/repo/build/src/tracespec/CMakeFiles/b2_tracespec.dir/DependInfo.cmake"
  "/root/repo/build/src/kami/CMakeFiles/b2_kami.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/b2_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/riscv/CMakeFiles/b2_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/b2_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/b2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
