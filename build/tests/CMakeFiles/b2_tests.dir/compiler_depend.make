# Empty compiler generated dependencies file for b2_tests.
# This may be replaced when dependencies are built.
