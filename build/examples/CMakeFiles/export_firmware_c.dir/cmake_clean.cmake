file(REMOVE_RECURSE
  "CMakeFiles/export_firmware_c.dir/export_firmware_c.cpp.o"
  "CMakeFiles/export_firmware_c.dir/export_firmware_c.cpp.o.d"
  "export_firmware_c"
  "export_firmware_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_firmware_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
