# Empty compiler generated dependencies file for export_firmware_c.
# This may be replaced when dependencies are built.
