# Empty dependencies file for packet_fuzz_audit.
# This may be replaced when dependencies are built.
