file(REMOVE_RECURSE
  "CMakeFiles/packet_fuzz_audit.dir/packet_fuzz_audit.cpp.o"
  "CMakeFiles/packet_fuzz_audit.dir/packet_fuzz_audit.cpp.o.d"
  "packet_fuzz_audit"
  "packet_fuzz_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_fuzz_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
