file(REMOVE_RECURSE
  "CMakeFiles/lightbulb_demo.dir/lightbulb_demo.cpp.o"
  "CMakeFiles/lightbulb_demo.dir/lightbulb_demo.cpp.o.d"
  "lightbulb_demo"
  "lightbulb_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightbulb_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
