# Empty compiler generated dependencies file for lightbulb_demo.
# This may be replaced when dependencies are built.
