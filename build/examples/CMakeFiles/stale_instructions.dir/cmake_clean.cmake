file(REMOVE_RECURSE
  "CMakeFiles/stale_instructions.dir/stale_instructions.cpp.o"
  "CMakeFiles/stale_instructions.dir/stale_instructions.cpp.o.d"
  "stale_instructions"
  "stale_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stale_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
