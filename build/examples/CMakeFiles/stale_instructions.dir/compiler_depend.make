# Empty compiler generated dependencies file for stale_instructions.
# This may be replaced when dependencies are built.
