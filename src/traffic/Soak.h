//===- traffic/Soak.h - Sharded pcap-driven soak harness -------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Long-horizon validation of the end-to-end theorem's executable
/// counterpart: drive millions of frames through compiled firmware on a
/// processor model while the streaming goodHlTrace monitor
/// (traffic/Monitor.h) checks prefix membership event by event.
///
/// The stream is sharded into contiguous slices; each slice runs on its
/// own independent machine instance (fresh platform, fresh core), so
/// shards are pure functions of (slice, options) and parallelize over
/// support::ThreadPool without any cross-shard state. Frames are
/// delivered with backpressure — injected only while the NIC has FIFO
/// headroom (FrameBudget < the LAN9250's MaxBufferedFrames), so the
/// workload adapts to firmware drain rate and no frame is lost to queue
/// overflow. All progress is measured in MMIO ops and model cycles,
/// never wall-clock, which is what makes the aggregated SOAK.json
/// bit-identical at any thread count.
///
/// On a violation the shard keeps its delivered-frame list so the
/// shrinker (traffic/Shrink.h) can minimize it into a replayable pcap
/// counterexample.
///
//===----------------------------------------------------------------------===//

#ifndef B2_TRAFFIC_SOAK_H
#define B2_TRAFFIC_SOAK_H

#include "compiler/Compile.h"
#include "devices/Platform.h"
#include "riscv/BlockEngine.h"
#include "traffic/Scenario.h"
#include "verify/FaultInjection.h"

#include <cstdint>
#include <string>
#include <vector>

namespace b2 {
namespace traffic {

/// Which execution substrate runs the firmware. Mirrors
/// verify::CoreKind; redeclared here so the traffic library does not
/// depend on b2_verify (the adequacy driver in b2_verify depends on
/// traffic, and the layering must stay acyclic).
enum class SoakCore : uint8_t {
  Pipelined, ///< The pipelined Kami processor (the theorem's p4mm).
  IsaSim,    ///< Software-oriented ISA semantics.
  SpecCore,  ///< Single-cycle Kami spec processor.
};

const char *soakCoreName(SoakCore C);

struct SoakOptions {
  SoakCore Core = SoakCore::Pipelined;
  /// Execution engine of the ISA simulator (SoakCore::IsaSim only):
  /// Reference steps through the predecoded fast path, Block runs the
  /// superblock trace engine, Differential runs both in lockstep and
  /// fails the shard on the first divergence. Shard results are
  /// bit-identical across all three modes by construction — the engine
  /// retires the same instruction schedule as the stepper.
  riscv::ExecMode SimExec = riscv::ExecMode::Reference;
  unsigned Threads = 1;      ///< Worker threads (report-invariant).
  /// Shards to split the stream into; 0 derives one shard per
  /// FramesPerShard frames. Must not depend on Threads, or the report
  /// stops being thread-count invariant.
  unsigned Shards = 0;
  uint64_t FramesPerShard = 2048;
  /// NIC FIFO headroom target: inject only while bufferedFrames() is
  /// below this. Keep under Lan9250::Config::MaxBufferedFrames so
  /// backpressure, not queue overflow, paces delivery.
  unsigned FrameBudget = 4;
  uint64_t ChunkCycles = 100'000;  ///< Cycles between monitor polls.
  uint64_t MaxCyclesPerShard = 2'000'000'000; ///< Hang backstop.
  Word RamBytes = 64 * 1024;
  /// Cross-check each shard on a second substrate (the ISA simulator,
  /// or the spec core when Core is already the ISA simulator) and
  /// compare accepted frames and lightbulb history.
  bool CrossCheck = false;
  /// Deliver frames at their scheduled AtOp (devices::Platform
  /// scheduleFrame) instead of backpressure injection. Replay fidelity
  /// for recorded corpora; throughput soaks leave it off.
  bool HonorSchedule = false;
  /// Fault plan armed (via fi::FaultScope) inside every shard body; null
  /// arms nothing. Must outlive runSoak.
  const fi::FaultPlan *Plan = nullptr;
  /// Use the whole-machine checkpoint layer (traffic/Checkpoint.h):
  /// backpressure shards fork from a cached post-boot snapshot instead
  /// of re-simulating firmware init, and the shrinker resumes ddmin
  /// candidates from prefix checkpoints. Results are bit-identical
  /// either way (that identity is itself fuzz- and adequacy-tested);
  /// off = always run cold, for differential debugging and the bench's
  /// cold baseline.
  bool Checkpoint = true;
};

/// Everything one shard produced. All fields are deterministic
/// functions of (slice, options).
struct ShardStats {
  bool Ok = false;            ///< MonitorOk && GroundTruthOk && CrossCheckOk.
  bool MonitorOk = false;     ///< Streaming prefix check never fired.
  bool GroundTruthOk = false; ///< Light history == accepted valid commands.
  bool CrossCheckOk = true;   ///< Second-substrate agreement (or not run).
  bool Drained = false;       ///< All frames delivered and FIFO emptied.
  bool HitUb = false;         ///< ISA simulator undefined behavior.
  bool Diverged = false;      ///< Differential block engine left lockstep.
  std::string Error;          ///< First failure, human-readable.
  uint64_t FramesDelivered = 0;
  uint64_t FramesAccepted = 0;  ///< NIC-accepted subset.
  uint64_t ValidCommands = 0;   ///< Accepted frames that are valid commands.
  uint64_t MmioEvents = 0;      ///< Trace length under KamiLabelSeqR.
  /// Events the streaming monitor actually consumed. On a healthy,
  /// non-violating run this equals MmioEvents; the adequacy column's
  /// monitor-agreement stim compares the two.
  uint64_t MonitorEventsSeen = 0;
  uint64_t LightTransitions = 0;
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
  uint64_t TraceHash = 0;       ///< FNV-1a of the MMIO trace.
  /// Index into the shard's MMIO trace of the first rejected event.
  /// Meaningful only when !MonitorOk.
  uint64_t ViolationIndex = 0;
  /// The delivered frames, kept only on monitor/ground-truth/UB
  /// failures (not budget exhaustion) so the shrinker can minimize
  /// them.
  std::vector<devices::ScheduledFrame> DeliveredFrames;
};

struct SoakReport {
  bool Ok = false;
  std::string Scenario; ///< Catalog name, or "pcap" for replayed corpora.
  uint64_t Seed = 0;
  SoakCore Core = SoakCore::Pipelined;
  uint64_t TotalFrames = 0;
  std::vector<ShardStats> Shards;

  /// First failing shard, or null.
  const ShardStats *firstFailure() const;
};

/// Runs one frame slice on one fresh machine instance. Deterministic;
/// this is also the shrinker's oracle and the CLI's replay path.
ShardStats runSoakShard(const compiler::CompiledProgram &Prog,
                        const std::vector<devices::ScheduledFrame> &Frames,
                        const SoakOptions &Options);

/// Shards \p Stream and soaks every shard (in parallel when
/// Options.Threads > 1) on already-compiled firmware. \p Scenario and
/// \p Seed are recorded in the report verbatim.
SoakReport runSoak(const compiler::CompiledProgram &Prog,
                   const TrafficStream &Stream, const SoakOptions &Options,
                   const std::string &Scenario = "pcap", uint64_t Seed = 0);

/// Convenience overload: compiles the lightbulb firmware first.
SoakReport runSoak(const TrafficStream &Stream, const SoakOptions &Options,
                   const std::string &Scenario = "pcap", uint64_t Seed = 0);

/// Compiles the default verified lightbulb firmware at -O0 (the soak
/// harness's standard configuration). Null result carries \p Error.
compiler::CompileResult compileSoakFirmware(Word RamBytes = 64 * 1024);

/// Renders the report as SOAK.json (schema b2stack-soak-v1). Contains
/// only deterministic fields — no wall-clock — so the file is
/// bit-identical at any thread count.
std::string soakJson(const SoakReport &Report);

} // namespace traffic
} // namespace b2

#endif // B2_TRAFFIC_SOAK_H
