//===- traffic/Checkpoint.h - Whole-machine checkpoint/restore -*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-machine snapshot/restore over one soak shard's complete system —
/// core (ISA simulator, spec core, or pipelined core), device platform,
/// converted trace, streaming monitor, and delivery loop state — plus the
/// two fleets built on top of it:
///
///  * a warm-boot cache that captures the system once at the
///    ready-to-inject point (firmware booted, RX enabled) and forks every
///    subsequent shard of the same configuration from that snapshot, and
///  * a checkpointed shrink oracle that keys checkpoints by the
///    delivered-frame prefix and resumes each ddmin candidate from the
///    deepest matching checkpoint instead of re-running boot + prefix.
///
/// Why prefix keying is sound: in backpressure mode frame delivery is a
/// function of machine state only (RX enablement and FIFO headroom are
/// polled, never scheduled), so the complete system state immediately
/// after injecting frame j is a pure function of the delivered prefix
/// [0, j]. Two runs sharing a prefix share the state at its end, hence a
/// checkpoint taken there serves every candidate with that prefix.
///
/// The correctness contract for every consumer is *bit-identity*: a run
/// resumed from any snapshot must produce exactly the trace hash, stats,
/// and light history of the straight-through run. runSnapshotDifferential
/// checks that contract directly and backs both the fuzz tests and the
/// SnapDiff adequacy column (which exists to kill the seeded
/// snap-state-stale-latch restore bug).
///
//===----------------------------------------------------------------------===//

#ifndef B2_TRAFFIC_CHECKPOINT_H
#define B2_TRAFFIC_CHECKPOINT_H

#include "kami/Bram.h"
#include "kami/PipelinedCore.h"
#include "kami/SpecCore.h"
#include "riscv/Machine.h"
#include "traffic/Monitor.h"
#include "traffic/Soak.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace b2 {
namespace traffic {

/// FNV-1a over an MMIO trace (the shard trace fingerprint; local to
/// b2_traffic so the layer stays independent of b2_verify's digest).
uint64_t soakTraceHash(const riscv::MmioTrace &T);

/// Ground truth, as in the end-to-end checker: the distinct lightbulb
/// states implied by the accepted frames (initial state off).
std::vector<bool>
expectedLightSequence(const std::vector<devices::ScheduledFrame> &Accepted);

/// One shard's complete executable system: the selected core, its private
/// platform, the incrementally converted MMIO trace, the streaming
/// goodHlTrace monitor, and the delivery-loop cursor state. This is the
/// unit of snapshot/restore — everything a shard run reads or writes.
class SoakMachine {
public:
  SoakMachine(const compiler::CompiledProgram &Prog, SoakCore Core,
              Word RamBytes,
              riscv::ExecMode SimExec = riscv::ExecMode::Reference);

  /// Runs up to \p Cycles. Returns the number actually executed (the ISA
  /// simulator stops early on UB; the Kami cores always run the full
  /// request). \p Ok becomes false iff the ISA simulator hit UB.
  uint64_t runChunk(uint64_t Cycles, bool &Ok);

  /// The machine's MMIO trace under KamiLabelSeqR, converted
  /// incrementally (O(new events) per call).
  const riscv::MmioTrace &trace();

  uint64_t retired() const;

  /// UB rendering; only meaningful on the ISA simulator after runChunk
  /// reported !Ok.
  std::string simUbDetail() const;

  /// Lockstep divergence of the block engine (ExecMode::Differential
  /// only; always false otherwise).
  bool engineDiverged() const;
  std::string engineDivergenceDetail() const;

  devices::Platform &platform() { return Plat; }
  TraceMonitor &monitor() { return Mon; }
  SoakCore core() const { return Core; }

  // -- Delivery-loop state (driven by runShardLoop) --------------------------

  uint64_t Elapsed = 0;  ///< Simulated cycles charged so far.
  size_t NextFrame = 0;  ///< Next input frame to inject (backpressure).
  std::vector<devices::ScheduledFrame> Delivered; ///< Injection log
                                                  ///< (backpressure mode).
  bool DrainFlagged = false; ///< Drain observed once; one settle chunk
                             ///< runs before the loop exits.

  // -- Snapshot/restore ------------------------------------------------------

  /// Whole-system checkpoint. Memory-bearing components (RAM, BRAM,
  /// decode cache) snapshot copy-on-write pages; append-only logs
  /// (traces, labels, delivered/accepted frames) snapshot O(delta)
  /// chains; latches and counters copy flat. Taking and restoring a
  /// snapshot is O(dirty pages + new log entries), which is what makes
  /// per-injection checkpointing affordable.
  struct Snapshot {
    std::optional<riscv::Machine::Snapshot> Sim;
    std::optional<kami::Bram::Snapshot> Mem;
    std::optional<kami::SpecCore::Snapshot> Spec;
    std::optional<kami::PipelinedCore::Snapshot> Pipe;
    devices::Platform::Snapshot Plat;
    support::ChainTracker<riscv::MmioEvent>::Snap ConvertedTrace;
    size_t Converted;
    TraceMonitor::Snapshot Mon;
    uint64_t Elapsed;
    size_t NextFrame;
    support::ChainTracker<devices::ScheduledFrame>::Snap Delivered;
    bool DrainFlagged;
  };

  Snapshot snapshot();

  /// Restores a snapshot taken from this machine *or* from any machine
  /// built with the same (program, core, RAM size) — the copy-on-write
  /// trackers fall back to full page copies when no pages are shared, so
  /// cross-machine restore is merely slower, never wrong.
  void restore(const Snapshot &S);

  /// Publishes the simulator-side metric deltas (engine + decode cache)
  /// accumulated since the last publication. Called at shard-stat
  /// collection, and — under metrics::PauseScope — by the warm-boot path
  /// to rebase the publication baselines so warm and cold shards publish
  /// identical shard-only deltas. No-op for the Kami cores.
  void publishMetrics();

private:
  SoakCore Core;
  devices::Platform Plat;
  std::unique_ptr<riscv::Machine> Sim;
  /// Superblock trace engine over Sim; null in ExecMode::Reference and
  /// on the Kami cores. Translation state is derived, never snapshotted:
  /// restore flushes it and execution re-warms (bit-identically).
  std::unique_ptr<riscv::BlockEngine> Engine;
  std::unique_ptr<kami::Bram> Mem;
  std::unique_ptr<kami::SpecCore> Spec;
  std::unique_ptr<kami::PipelinedCore> Pipe;
  riscv::MmioTrace ConvertedTrace;
  size_t Converted = 0;
  support::ChainTracker<riscv::MmioEvent> ConvertedChain;
  support::ChainTracker<devices::ScheduledFrame> DeliveredChain;
  TraceMonitor Mon;
};

/// Why runShardLoop returned.
enum class ShardExit : uint8_t {
  Completed,        ///< Drained and settled (or empty schedule consumed).
  HitUb,            ///< ISA simulator hit UB mid-chunk.
  Diverged,         ///< Differential block engine left lockstep.
  Violated,         ///< Streaming monitor rejected an event.
  BudgetExhausted,  ///< MaxCyclesPerShard reached first.
  ReadyToInject,    ///< StopBeforeFirstInject: boot finished, RX enabled,
                    ///< FIFO headroom available, nothing injected yet.
};

/// Called immediately after each backpressure injection with the number
/// of frames injected so far (== SoakMachine::NextFrame). The machine
/// state at that instant is the canonical "state after delivered prefix
/// of length n" — exactly what the checkpoint tree stores.
using InjectHook = std::function<void(size_t)>;

/// The shard delivery loop, factored out of runSoakShard so that runs can
/// start from a restored snapshot: the loop reads all its progress from
/// \p M (Elapsed / NextFrame / DrainFlagged), so resuming is simply
/// restore + call. Equivalent to the original chunk-then-inject loop
/// event-for-event; \p OnInject and \p StopBeforeFirstInject extend it
/// for the checkpoint fleets without perturbing plain runs.
ShardExit runShardLoop(SoakMachine &M, const devices::ScheduledFrame *Begin,
                       const devices::ScheduledFrame *End,
                       const SoakOptions &Options,
                       const InjectHook &OnInject = InjectHook(),
                       bool StopBeforeFirstInject = false);

/// Fills a ShardStats from a finished loop: counters, trace hash, drain
/// and monitor verdicts, ground truth, error strings, and the delivered
/// prefix on frame-dependent failures. Cross-checking stays with the
/// caller (it reruns the shard on a sibling core). Consumes M.Delivered
/// on failure paths.
ShardStats collectShardStats(SoakMachine &M, ShardExit Exit,
                             const devices::ScheduledFrame *Begin,
                             const devices::ScheduledFrame *End,
                             const SoakOptions &Options);

/// Warm-boot fleet entry point: returns a machine positioned at the
/// ready-to-inject point for (Prog, Options), forked from a per-thread
/// snapshot cache so the boot sequence is simulated once per
/// configuration per worker thread, not once per shard. Returns null when
/// the boot never reaches injection readiness within the cycle budget
/// (e.g. under a fault that breaks driver init) — callers then run the
/// shard cold, which reproduces the budget-exhaustion verdict exactly.
/// The cache key includes the armed fault plan, so a snapshot taken
/// under one plan is never resumed under another.
std::unique_ptr<SoakMachine>
warmBootMachine(const compiler::CompiledProgram &Prog,
                const SoakOptions &Options);

/// The checkpoint-tree shrink oracle. Nodes hold the machine state
/// immediately after injecting the frame on their incoming edge; the root
/// holds the ready-to-inject boot state. Each candidate walks the tree
/// along its frame sequence, restores the deepest matching node, and
/// resumes from there — ddmin candidates share long prefixes, so most of
/// each oracle run's cycles are skipped rather than simulated.
class CheckpointedOracle {
public:
  /// \p Options must describe a backpressure run (HonorSchedule is
  /// forced off, as is CrossCheck — the shrinker never cross-checks).
  CheckpointedOracle(const compiler::CompiledProgram &Prog,
                     const SoakOptions &Options);
  ~CheckpointedOracle();

  /// The shrinker's predicate: does this candidate still fail? The
  /// verdict formula is identical to the cold soakOracle's.
  bool failing(const std::vector<devices::ScheduledFrame> &Frames);

  /// Discovery handoff: replays the already-failing scenario once,
  /// growing the checkpoint tree along its full delivered prefix, and
  /// books the replay's cycles under PrimeRuns/PrimeCycles instead of
  /// the shrink-phase counters. This models the deployed pipeline — the
  /// failing shard itself ran under the checkpoint layer, so the
  /// shrinker inherits the tree rather than re-simulating the scenario
  /// from reset. Returns the scenario's verdict (must be true for a
  /// genuine failure). The subsequent ddmin reproduce run resumes from
  /// the tree's deepest node and costs only the drain tail.
  bool prime(const std::vector<devices::ScheduledFrame> &Frames);

  /// Work accounting, for the bench and the EXPERIMENTS table. The
  /// prime (handoff) replay is booked separately so the shrink-phase
  /// counters measure only ddmin's own oracle work — the quantity a
  /// cold-replay shrinker pays in full.
  struct RunStats {
    uint64_t OracleRuns = 0;      ///< Shrink-phase failing() calls.
    uint64_t ResumedRuns = 0;     ///< Calls resumed past the boot state.
    uint64_t SimulatedCycles = 0; ///< Cycles actually executed.
    uint64_t SkippedCycles = 0;   ///< Cycles inherited from checkpoints.
    uint64_t Checkpoints = 0;     ///< Tree nodes created (excl. root).
    uint64_t PrimeRuns = 0;       ///< prime() replays.
    uint64_t PrimeCycles = 0;     ///< Cycles simulated by prime().
  };
  const RunStats &stats() const { return Stats; }

private:
  struct Node;

  const compiler::CompiledProgram &Prog;
  SoakOptions Options;
  std::unique_ptr<SoakMachine> M;
  std::unique_ptr<Node> Root;
  bool BootOk = false;
  RunStats Stats;

  /// Tree-size cap: beyond this the oracle keeps resuming from existing
  /// checkpoints but stops creating new ones (graceful degradation, not
  /// an error).
  static constexpr uint64_t MaxCheckpoints = 1024;
};

/// Result of one straight-through vs snapshot-resumed differential.
struct SnapshotDifferential {
  bool Identical = false; ///< Every compared field was bit-identical.
  std::string Detail;     ///< First mismatch, rendered (empty when
                          ///< Identical).
  ShardStats Straight;    ///< The uninterrupted run.
  ShardStats Resumed;     ///< Snapshot at CheckpointDepth, restored into
                          ///< a fresh machine, run to completion.
};

/// Runs \p Frames straight through, snapshots at injection
/// \p CheckpointDepth (0 or beyond the last injection: the resumed run is
/// simply a second cold run, checking plain determinism), restores the
/// snapshot into a *fresh* machine, resumes, and compares everything:
/// every ShardStats field, the trace hash, the light history, and the
/// delivered-frame log. This is the bit-identity witness behind the fuzz
/// tests and the SnapDiff adequacy column; faults armed on the calling
/// thread apply to both runs equally, so a deterministic seeded bug in
/// the *simulated system* never trips it — only a bug in the checkpoint
/// layer itself does.
SnapshotDifferential
runSnapshotDifferential(const compiler::CompiledProgram &Prog,
                        const std::vector<devices::ScheduledFrame> &Frames,
                        const SoakOptions &Options, size_t CheckpointDepth);

} // namespace traffic
} // namespace b2

#endif // B2_TRAFFIC_CHECKPOINT_H
