//===- traffic/Monitor.cpp - Streaming goodHlTrace monitor -------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "traffic/Monitor.h"

#include "app/LightbulbSpec.h"
#include "support/Metrics.h"
#include "verify/FaultInjection.h"

using namespace b2;
using namespace b2::traffic;

const tracespec::Matcher &b2::traffic::goodHlMatcher() {
  static const tracespec::Matcher M(app::goodHlTrace());
  return M;
}

TraceMonitor::TraceMonitor(const tracespec::Matcher &M) : Stream(M) {}

void TraceMonitor::reset() {
  Stream.reset();
  Watermark = 0;
  Offered = 0;
  Seen = 0;
}

bool TraceMonitor::feed(const tracespec::Event &E) {
  if (!Stream.alive())
    return false;
  ++Offered;
  // Seeded monitor bug for the adequacy campaign: every 64th event is
  // silently skipped, so the monitor checks a subsequence of the real
  // trace. Killed by comparing eventsSeen() against the offline trace.
  if (fi::on(fi::Fault::TrafficMonitorDropEvent) && Offered % 64 == 0)
    return true;
  ++Seen;
  return Stream.feed(E);
}

bool TraceMonitor::pollTrace(const riscv::MmioTrace &T) {
  while (Watermark < T.size()) {
    if (!feed(T[Watermark])) {
      metrics::record(metrics::Id::SoakMonitorFrontier, Stream.frontierSize());
      return false;
    }
    ++Watermark;
  }
  // Frontier occupancy sampled once per poll (i.e. per soak chunk): the
  // per-event matching cost the monitor is currently paying. Polls are a
  // pure function of the shard plan, so the histogram is deterministic.
  metrics::record(metrics::Id::SoakMonitorFrontier, Stream.frontierSize());
  return Stream.alive();
}
