//===- traffic/Shrink.cpp - Counterexample minimization ----------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "traffic/Shrink.h"

#include "traffic/Checkpoint.h"

#include <algorithm>

using namespace b2;
using namespace b2::traffic;
using namespace b2::devices;

namespace {

/// The complement of chunk \p C when \p Frames is cut into \p N
/// near-equal contiguous chunks.
std::vector<ScheduledFrame> dropChunk(const std::vector<ScheduledFrame> &Frames,
                                      size_t N, size_t C) {
  std::vector<ScheduledFrame> Out;
  Out.reserve(Frames.size());
  const size_t Base = Frames.size() / N, Rem = Frames.size() % N;
  size_t Pos = 0;
  for (size_t I = 0; I != N; ++I) {
    size_t Len = Base + (I < Rem ? 1 : 0);
    if (I != C)
      Out.insert(Out.end(), Frames.begin() + Pos, Frames.begin() + Pos + Len);
    Pos += Len;
  }
  return Out;
}

} // namespace

ShrinkResult
b2::traffic::shrinkFrames(const std::vector<ScheduledFrame> &Failing,
                          const ShrinkOracle &Oracle) {
  ShrinkResult R;
  R.Frames = Failing;
  ++R.OracleRuns;
  R.Reproduced = Oracle(R.Frames);
  if (!R.Reproduced)
    return R;

  // Classic ddmin: try dropping each of N chunks; on success restart at
  // the coarsest granularity, otherwise refine N until chunks are single
  // frames and no single-frame removal still fails — 1-minimality.
  //
  // Chunks are probed trailing-first: dropping a late chunk yields a
  // candidate that is a long prefix of the current base, so successive
  // candidates share delivered prefixes. The result set is 1-minimal
  // either way; the order only decides how much of each oracle run the
  // checkpointed oracle can resume instead of re-simulate.
  size_t N = 2;
  while (R.Frames.size() >= 2) {
    N = std::min(N, R.Frames.size());
    bool Reduced = false;
    for (size_t I = N; I != 0; --I) {
      const size_t C = I - 1;
      std::vector<ScheduledFrame> Candidate = dropChunk(R.Frames, N, C);
      ++R.OracleRuns;
      if (Oracle(Candidate)) {
        R.Frames = std::move(Candidate);
        N = std::max<size_t>(2, N - 1);
        Reduced = true;
        break;
      }
    }
    if (Reduced)
      continue;
    if (N >= R.Frames.size())
      break; // Every single-frame removal passes: 1-minimal.
    N = std::min(R.Frames.size(), N * 2);
  }
  return R;
}

ShrinkOracle b2::traffic::soakOracle(const compiler::CompiledProgram &Prog,
                                     const SoakOptions &Options) {
  // One shard, no cross-check: the oracle answers only "does the run
  // still fail in a frame-attributable way" — a monitor violation, an
  // ISA-sim UB, or a ground-truth mismatch on a fully drained run. A
  // candidate that merely fails to drain within the cycle budget is NOT
  // failing (dropping frames cannot cause that; it would misdirect the
  // search).
  SoakOptions O = Options;
  O.CrossCheck = false;
  return [&Prog, O](const std::vector<ScheduledFrame> &Frames) {
    ShardStats S = runSoakShard(Prog, Frames, O);
    return !S.MonitorOk || S.HitUb || S.Diverged ||
           (S.Drained && !S.GroundTruthOk);
  };
}

ShrunkCounterexample
b2::traffic::shrinkSoakFailure(const compiler::CompiledProgram &Prog,
                               const std::vector<ScheduledFrame> &Failing,
                               const SoakOptions &Options) {
  ShrunkCounterexample Out;
  if (Options.Checkpoint && !Options.HonorSchedule) {
    // Prefix-reuse oracle: ddmin candidates share long delivered
    // prefixes, so each run resumes from the deepest checkpoint of the
    // shared prefix instead of re-simulating boot + prefix. Verdicts
    // are identical to the cold oracle's (same formula, bit-identical
    // resumed state). The prime replay hands the failing run's tree to
    // the shrinker; ddmin's own reproduce run then resumes from its
    // deepest node instead of simulating the scenario a second time.
    CheckpointedOracle Oracle(Prog, Options);
    Oracle.prime(Failing);
    Out.Result = shrinkFrames(
        Failing, [&Oracle](const std::vector<ScheduledFrame> &Frames) {
          return Oracle.failing(Frames);
        });
    const CheckpointedOracle::RunStats &S = Oracle.stats();
    Out.Work.Checkpointed = true;
    Out.Work.SimulatedCycles = S.SimulatedCycles;
    Out.Work.SkippedCycles = S.SkippedCycles;
    Out.Work.ResumedRuns = S.ResumedRuns;
    Out.Work.Checkpoints = S.Checkpoints;
    Out.Work.PrimeCycles = S.PrimeCycles;
  } else {
    // Cold replay, with the same verdict formula as soakOracle, plus
    // cycle accounting so callers can compare the two paths.
    SoakOptions O = Options;
    O.CrossCheck = false;
    uint64_t Cycles = 0;
    Out.Result = shrinkFrames(
        Failing, [&](const std::vector<ScheduledFrame> &Frames) {
          ShardStats S = runSoakShard(Prog, Frames, O);
          Cycles += S.Cycles;
          return !S.MonitorOk || S.HitUb || S.Diverged ||
                 (S.Drained && !S.GroundTruthOk);
        });
    Out.Work.SimulatedCycles = Cycles;
  }
  if (Out.Result.Reproduced) {
    SoakOptions O = Options;
    O.CrossCheck = false;
    ShardStats S = runSoakShard(Prog, Out.Result.Frames, O);
    Out.ViolationIndex = S.MonitorOk ? 0 : S.ViolationIndex;
  }
  return Out;
}
