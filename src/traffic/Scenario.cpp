//===- traffic/Scenario.cpp - Seeded traffic scenario generators -------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "traffic/Scenario.h"

#include "devices/Net.h"
#include "support/Rng.h"
#include "verify/FaultInjection.h"

#include <atomic>
#include <utility>

using namespace b2;
using namespace b2::traffic;

ScenarioGenerator::~ScenarioGenerator() = default;

uint64_t b2::traffic::streamDigest(const TrafficStream &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xFF;
      H *= 0x100000001b3ull;
    }
  };
  Mix(S.Frames.size());
  for (const devices::ScheduledFrame &F : S.Frames) {
    Mix(F.AtOp);
    Mix(F.Errored ? 1 : 0);
    Mix(F.Frame.size());
    for (uint8_t B : F.Frame) {
      H ^= B;
      H *= 0x100000001b3ull;
    }
  }
  return H;
}

namespace {

/// Hidden global state the TrafficGenUnseededFrame fault leaks into
/// frames. Strictly advancing, so regenerating the "same" seeded stream
/// while the fault is armed yields a different digest — which is exactly
/// the nondeterminism the stream-determinism adequacy stim detects. Only
/// touched when the fault is armed, so unrelated adequacy cells running
/// concurrently never race through it in a behavior-visible way.
std::atomic<uint64_t> UnseededCounter{0};

/// Applies the TrafficGenUnseededFrame fault to a freshly generated
/// frame: one payload byte comes from the global counter, not the seed.
void applyUnseededFault(std::vector<uint8_t> &Frame) {
  if (!fi::on(fi::Fault::TrafficGenUnseededFrame))
    return;
  uint64_t C = UnseededCounter.fetch_add(1, std::memory_order_relaxed);
  if (Frame.size() > devices::frame::CmdOffset + 1)
    Frame[devices::frame::CmdOffset + 1] = uint8_t(C);
  else if (!Frame.empty())
    Frame.back() = uint8_t(C ^ 0x5a);
}

/// Shared arrival-time stepping for the duty-cycle shape.
class ArrivalClock {
public:
  explicit ArrivalClock(const ArrivalPattern &A) : A(A), NextAtOp(A.FirstAtOp) {}

  uint64_t tick() {
    uint64_t At = NextAtOp;
    if (A.BurstLen == 0) {
      NextAtOp += A.OpSpacing;
    } else if (++InBurst >= A.BurstLen) {
      InBurst = 0;
      NextAtOp += A.GapOps;
    } else {
      NextAtOp += A.BurstSpacing;
    }
    return At;
  }

private:
  ArrivalPattern A;
  uint64_t NextAtOp;
  unsigned InBurst = 0;
};

class ValidMixGen final : public ScenarioGenerator {
public:
  ValidMixGen(uint64_t Seed, const ArrivalPattern &A,
              devices::UdpFrameOptions Options = {})
      : Rng(Seed), Clock(A), Options(Options) {}

  devices::ScheduledFrame next() override {
    devices::ScheduledFrame F;
    F.AtOp = Clock.tick();
    bool On = Rng.flip();
    if (Rng.chance(1, 4)) {
      // A valid command frame with extra payload after the command byte
      // (the driver only inspects byte 0 of the UDP payload).
      std::vector<uint8_t> Payload(1 + Rng.below(32));
      Payload[0] = On ? 1 : 0;
      for (size_t I = 1; I < Payload.size(); ++I)
        Payload[I] = uint8_t(Rng.next64());
      F.Frame = devices::buildUdpFrame(Payload, Options);
    } else {
      F.Frame = devices::buildCommandFrame(On, Options);
    }
    applyUnseededFault(F.Frame);
    return F;
  }

private:
  support::Rng Rng;
  ArrivalClock Clock;
  devices::UdpFrameOptions Options;
};

class AdversarialGen final : public ScenarioGenerator {
public:
  AdversarialGen(uint64_t Seed, const ArrivalPattern &A)
      : Fuzzer(Seed), Clock(A) {}

  devices::ScheduledFrame next() override {
    devices::PacketFuzzer::Generated G = Fuzzer.next();
    devices::ScheduledFrame F;
    F.AtOp = Clock.tick();
    F.Frame = std::move(G.Frame);
    F.Errored = G.MarkErrored;
    applyUnseededFault(F.Frame);
    return F;
  }

private:
  devices::PacketFuzzer Fuzzer;
  ArrivalClock Clock;
};

/// Merge-by-AtOp over inner generators, one lookahead frame each. Ties
/// break toward the lower generator index, so the merge is a pure
/// function of the inner streams.
class InterleaveGen final : public ScenarioGenerator {
public:
  explicit InterleaveGen(std::vector<std::unique_ptr<ScenarioGenerator>> Inner)
      : Inner(std::move(Inner)) {
    for (std::unique_ptr<ScenarioGenerator> &G : this->Inner)
      Pending.push_back(G->next());
  }

  devices::ScheduledFrame next() override {
    size_t Best = 0;
    for (size_t I = 1; I < Pending.size(); ++I)
      if (Pending[I].AtOp < Pending[Best].AtOp)
        Best = I;
    devices::ScheduledFrame F = std::move(Pending[Best]);
    Pending[Best] = Inner[Best]->next();
    return F;
  }

private:
  std::vector<std::unique_ptr<ScenarioGenerator>> Inner;
  std::vector<devices::ScheduledFrame> Pending;
};

/// Per-user identity: distinct locally administered MAC, 10.0.x.y source
/// address, and source port, all derived from the user id.
devices::UdpFrameOptions userIdentity(unsigned UserId) {
  devices::UdpFrameOptions O;
  O.SrcMac = {0x02, 0x00, 0x00, 0x00, uint8_t(UserId >> 8), uint8_t(UserId)};
  O.SrcIp = {10, 0, uint8_t(1 + (UserId >> 8)), uint8_t(2 + UserId)};
  O.SrcPort = uint16_t(4096 + UserId);
  return O;
}

} // namespace

std::unique_ptr<ScenarioGenerator>
b2::traffic::makeValidMix(uint64_t Seed, const ArrivalPattern &A) {
  return std::make_unique<ValidMixGen>(Seed, A);
}

std::unique_ptr<ScenarioGenerator>
b2::traffic::makeAdversarial(uint64_t Seed, const ArrivalPattern &A) {
  return std::make_unique<AdversarialGen>(Seed, A);
}

std::unique_ptr<ScenarioGenerator>
b2::traffic::makeUser(uint64_t Seed, unsigned UserId, const ArrivalPattern &A) {
  return std::make_unique<ValidMixGen>(Seed ^ (0x9e3779b97f4a7c15ull * (UserId + 1)),
                                       A, userIdentity(UserId));
}

std::unique_ptr<ScenarioGenerator>
b2::traffic::makeInterleave(std::vector<std::unique_ptr<ScenarioGenerator>> Inner) {
  return std::make_unique<InterleaveGen>(std::move(Inner));
}

const std::vector<ScenarioInfo> &b2::traffic::scenarioCatalog() {
  static const std::vector<ScenarioInfo> Catalog = {
      {"valid-mix", "well-formed command frames only"},
      {"adversarial", "packet-fuzzer mix: valid commands plus frames "
                      "malformed at every layer"},
      {"burst", "duty-cycle arrivals: dense bursts separated by idle gaps"},
      {"multi-user", "several seeded senders with distinct SrcIp/SrcPort, "
                     "interleaved by arrival op"},
  };
  return Catalog;
}

bool b2::traffic::isScenario(const std::string &Name) {
  for (const ScenarioInfo &S : scenarioCatalog())
    if (Name == S.Name)
      return true;
  return false;
}

TrafficStream b2::traffic::generateScenario(const std::string &Name,
                                            const ScenarioOptions &Options) {
  std::unique_ptr<ScenarioGenerator> Gen;
  if (Name == "valid-mix") {
    Gen = makeValidMix(Options.Seed, Options.Arrival);
  } else if (Name == "adversarial") {
    Gen = makeAdversarial(Options.Seed, Options.Arrival);
  } else if (Name == "burst") {
    ArrivalPattern A = Options.Arrival;
    if (A.BurstLen == 0)
      A.BurstLen = 6; // Default duty cycle: 6 back-to-back, then idle.
    // Alternate valid and adversarial bursts so the duty cycle also
    // exercises the RecvInvalid spec alternative under pressure.
    std::vector<std::unique_ptr<ScenarioGenerator>> Inner;
    Inner.push_back(makeValidMix(Options.Seed, A));
    ArrivalPattern B = A;
    B.FirstAtOp += A.BurstSpacing / 2 + 1;
    Inner.push_back(makeAdversarial(Options.Seed ^ 0xb5297a4d, B));
    Gen = makeInterleave(std::move(Inner));
  } else if (Name == "multi-user") {
    unsigned Users = Options.Users ? Options.Users : 1;
    std::vector<std::unique_ptr<ScenarioGenerator>> Inner;
    for (unsigned U = 0; U < Users; ++U) {
      ArrivalPattern A = Options.Arrival;
      // Stagger user start times so streams genuinely interleave rather
      // than marching in lockstep.
      A.FirstAtOp += (A.OpSpacing / Users) * U;
      Inner.push_back(makeUser(Options.Seed, U, A));
    }
    Gen = makeInterleave(std::move(Inner));
  } else {
    return {}; // Callers check isScenario() first; empty stream otherwise.
  }

  TrafficStream S;
  S.Frames.reserve(Options.Frames);
  for (uint64_t I = 0; I < Options.Frames; ++I)
    S.Frames.push_back(Gen->next());
  return S;
}
