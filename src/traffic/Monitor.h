//===- traffic/Monitor.h - Streaming goodHlTrace monitor -------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online checking of the paper's top-level I/O specification during a
/// soak run. The correctness statement is prefix-closed ("every trace the
/// system can produce is a prefix of goodHlTrace", section 3.2), so a
/// violation is detectable at the exact event where the trace leaves the
/// prefix language — there is no need to wait for the run to finish, and
/// at soak scale (millions of frames) re-matching the whole trace after
/// the fact would dominate the run. TraceMonitor wraps
/// tracespec::Matcher::Stream and is fed incrementally from a machine's
/// growing MMIO trace via a watermark, mirroring how the end-to-end
/// checker converts Kami labels incrementally.
///
//===----------------------------------------------------------------------===//

#ifndef B2_TRAFFIC_MONITOR_H
#define B2_TRAFFIC_MONITOR_H

#include "tracespec/Matcher.h"

#include <cstdint>
#include <string>
#include <vector>

namespace b2 {
namespace traffic {

/// The compiled goodHlTrace automaton, shared (read-only) by every
/// monitor on every shard. Building it once matters: Glushkov
/// construction is quadratic in spec size.
const tracespec::Matcher &goodHlMatcher();

/// Streams one machine's MMIO trace through the goodHlTrace prefix
/// checker, event by event.
class TraceMonitor {
public:
  /// Monitors against \p M (defaults to the shared goodHlTrace matcher).
  explicit TraceMonitor(const tracespec::Matcher &M = goodHlMatcher());

  /// Feeds every event of \p T past the internal watermark. Returns
  /// false once the trace has left the prefix language (and stops
  /// consuming further events, so the violation index stays pinned to
  /// the first offender).
  bool pollTrace(const riscv::MmioTrace &T);

  /// Feeds one event. False on (or after) the first violation.
  bool feed(const tracespec::Event &E);

  /// True once a violation has been observed.
  bool violated() const { return !Stream.alive(); }

  /// Index (into the monitored trace) of the first rejected event.
  /// Meaningful only when violated().
  size_t violationIndex() const { return Stream.consumed(); }

  /// Symbols the spec would have accepted at the violation point.
  std::vector<std::string> expectedAtViolation() const {
    return Stream.expectedHere();
  }

  /// Events actually fed into the automaton so far (== the watermark
  /// when fed via pollTrace on a healthy monitor — the adequacy column
  /// compares this against the offline trace length).
  size_t eventsSeen() const { return Seen; }

  /// Restarts the monitor for a fresh trace.
  void reset();

  // -- Snapshot/restore ------------------------------------------------------

  /// Monitor checkpoint: the NFA frontier plus the watermark and both
  /// event counters. Offered is included deliberately — the seeded
  /// drop-event fault keys off its cadence, so a resumed run under that
  /// fault must resume the cadence, not restart it.
  struct Snapshot {
    tracespec::Matcher::Stream::Snapshot Stream;
    size_t Watermark;
    size_t Offered;
    size_t Seen;
  };

  Snapshot snapshot() const {
    return Snapshot{Stream.snapshot(), Watermark, Offered, Seen};
  }

  void restore(const Snapshot &S) {
    Stream.restore(S.Stream);
    Watermark = S.Watermark;
    Offered = S.Offered;
    Seen = S.Seen;
  }

private:
  tracespec::Matcher::Stream Stream;
  size_t Watermark = 0; ///< Next trace index pollTrace will feed.
  size_t Offered = 0;   ///< Events offered to feed() (drop cadence).
  size_t Seen = 0;      ///< Events actually fed (drops excluded).
};

} // namespace traffic
} // namespace b2

#endif // B2_TRAFFIC_MONITOR_H
