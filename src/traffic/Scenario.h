//===- traffic/Scenario.h - Seeded traffic scenario generators -*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seeded frame-stream generation for the soak harness.
/// The end-to-end theorem quantifies over *all* packet traces; the
/// scenario catalog approximates that quantifier with workload families
/// worth soaking at scale:
///
///   valid-mix    well-formed command frames only (the happy path the
///                lightbulb spec's Recv/LightbulbCmd alternative covers)
///   adversarial  the devices/Net packet fuzzer's mix of valid commands
///                and frames malformed at every protocol layer
///   burst        duty-cycle arrivals: back-to-back bursts separated by
///                idle gaps (stresses NIC FIFO occupancy + PollNone)
///   multi-user   several simulated senders, each keyed by its own
///                SrcIp/SrcPort and running an independent seeded
///                command stream, interleaved by arrival op
///
/// Generators compose: a frame source (what the bytes are) is paired
/// with an arrival pattern (when frames land, in platform MMIO ops), and
/// interleave() merges streams by arrival op. Everything is a pure
/// function of the seed, so a scenario regenerates bit-identically —
/// which is what makes pcap corpus files, sharded soaks, and shrunk
/// counterexamples reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef B2_TRAFFIC_SCENARIO_H
#define B2_TRAFFIC_SCENARIO_H

#include "devices/Platform.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace b2 {
namespace traffic {

/// A generated workload: scheduled frames, nondecreasing in AtOp.
struct TrafficStream {
  std::vector<devices::ScheduledFrame> Frames;
};

/// FNV-1a digest of a stream's frames, schedule, and error flags (for
/// determinism checks and reports).
uint64_t streamDigest(const TrafficStream &S);

/// When frames arrive, measured in platform MMIO ops.
struct ArrivalPattern {
  uint64_t FirstAtOp = 2000;  ///< First arrival (after NIC bring-up).
  uint64_t OpSpacing = 3000;  ///< Nominal gap between frames.
  /// Burst/duty-cycle shape: deliver \c BurstLen frames \c BurstSpacing
  /// ops apart, then idle \c GapOps. BurstLen 0 = uniform spacing.
  unsigned BurstLen = 0;
  uint64_t BurstSpacing = 200;
  uint64_t GapOps = 20000;
};

/// A composable frame-stream generator: draws scheduled frames one at a
/// time, nondecreasing in AtOp. Implementations are pure functions of
/// their construction parameters (seed included).
class ScenarioGenerator {
public:
  virtual ~ScenarioGenerator();

  /// Produces the next scheduled frame.
  virtual devices::ScheduledFrame next() = 0;
};

/// Well-formed command frames only (random on/off, occasional valid
/// extra payload).
std::unique_ptr<ScenarioGenerator> makeValidMix(uint64_t Seed,
                                                const ArrivalPattern &A);

/// The devices/Net packet fuzzer: valid commands mixed with frames
/// malformed at every layer, some arriving PHY-errored.
std::unique_ptr<ScenarioGenerator> makeAdversarial(uint64_t Seed,
                                                   const ArrivalPattern &A);

/// One simulated user: valid command frames from a distinct SrcIp /
/// SrcPort identity derived from \p UserId.
std::unique_ptr<ScenarioGenerator> makeUser(uint64_t Seed, unsigned UserId,
                                            const ArrivalPattern &A);

/// Merges \p Inner streams by arrival op (ties broken by generator
/// index, so the merge is deterministic).
std::unique_ptr<ScenarioGenerator>
makeInterleave(std::vector<std::unique_ptr<ScenarioGenerator>> Inner);

/// Catalog entry for the CLI and the CI smoke matrix.
struct ScenarioInfo {
  const char *Name;
  const char *Summary;
};

/// All named scenarios, in a fixed order.
const std::vector<ScenarioInfo> &scenarioCatalog();

/// True iff \p Name is in the catalog.
bool isScenario(const std::string &Name);

struct ScenarioOptions {
  uint64_t Seed = 1;
  uint64_t Frames = 100;     ///< Number of frames to generate.
  ArrivalPattern Arrival;    ///< Base pattern (scenarios may reshape it).
  unsigned Users = 4;        ///< Simulated senders (multi-user only).
};

/// Generates \p Options.Frames frames of the named scenario. \p Name
/// must be in the catalog.
TrafficStream generateScenario(const std::string &Name,
                               const ScenarioOptions &Options);

} // namespace traffic
} // namespace b2

#endif // B2_TRAFFIC_SCENARIO_H
