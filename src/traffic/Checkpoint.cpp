//===- traffic/Checkpoint.cpp - Whole-machine checkpoint/restore ------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "traffic/Checkpoint.h"

#include "devices/Net.h"
#include "riscv/Step.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "verify/FaultInjection.h"

#include <algorithm>

using namespace b2;
using namespace b2::traffic;
using namespace b2::devices;

uint64_t b2::traffic::soakTraceHash(const riscv::MmioTrace &T) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xFF;
      H *= 0x100000001b3ull;
    }
  };
  Mix(T.size());
  for (const riscv::MmioEvent &E : T) {
    Mix(E.IsStore ? 1 : 0);
    Mix(E.Addr);
    Mix(E.Value);
    Mix(E.Size);
  }
  return H;
}

std::vector<bool> b2::traffic::expectedLightSequence(
    const std::vector<ScheduledFrame> &Accepted) {
  std::vector<bool> Out;
  bool Light = false;
  for (const ScheduledFrame &F : Accepted) {
    if (F.Errored)
      continue;
    FrameClass C = classifyFrame(F.Frame);
    if (!C.Valid)
      continue;
    if (C.CommandBit != Light) {
      Light = C.CommandBit;
      Out.push_back(Light);
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// SoakMachine
//===----------------------------------------------------------------------===//

SoakMachine::SoakMachine(const compiler::CompiledProgram &Prog, SoakCore Core,
                         Word RamBytes, riscv::ExecMode SimExec)
    : Core(Core) {
  switch (Core) {
  case SoakCore::IsaSim:
    Sim = std::make_unique<riscv::Machine>(RamBytes);
    Sim->loadImage(0, Prog.image());
    if (SimExec != riscv::ExecMode::Reference)
      Engine = std::make_unique<riscv::BlockEngine>(*Sim, Plat, SimExec);
    break;
  case SoakCore::SpecCore:
    Mem = std::make_unique<kami::Bram>(RamBytes);
    Mem->loadImage(Prog.image());
    Spec = std::make_unique<kami::SpecCore>(*Mem, Plat);
    break;
  case SoakCore::Pipelined:
    Mem = std::make_unique<kami::Bram>(RamBytes);
    Mem->loadImage(Prog.image());
    Pipe = std::make_unique<kami::PipelinedCore>(*Mem, Plat,
                                                 kami::PipeConfig());
    break;
  }
}

uint64_t SoakMachine::runChunk(uint64_t Cycles, bool &Ok) {
  Ok = true;
  switch (Core) {
  case SoakCore::IsaSim: {
    // run() returns the retired count, which is the actual executed
    // cycle charge: the full request on a healthy chunk, the partial
    // count when the simulator stops early on UB. The block engine
    // retires the exact same schedule, so the charge is engine-invariant.
    uint64_t Executed =
        Engine ? Engine->run(Cycles) : riscv::run(*Sim, Plat, Cycles);
    Ok = !Sim->hasUb();
    return Executed;
  }
  case SoakCore::SpecCore:
    Spec->run(Cycles);
    return Cycles;
  case SoakCore::Pipelined:
    Pipe->run(Cycles);
    return Cycles;
  }
  return 0;
}

const riscv::MmioTrace &SoakMachine::trace() {
  switch (Core) {
  case SoakCore::IsaSim:
    return Sim->trace();
  case SoakCore::SpecCore:
    ConvertedTrace.reserve(Spec->labels().size());
    Converted =
        kami::appendKamiLabelSeqR(Spec->labels(), Converted, ConvertedTrace);
    return ConvertedTrace;
  case SoakCore::Pipelined:
    ConvertedTrace.reserve(Pipe->labels().size());
    Converted =
        kami::appendKamiLabelSeqR(Pipe->labels(), Converted, ConvertedTrace);
    return ConvertedTrace;
  }
  return ConvertedTrace;
}

uint64_t SoakMachine::retired() const {
  switch (Core) {
  case SoakCore::IsaSim:
    return Sim->retiredInstructions();
  case SoakCore::SpecCore:
    return Spec->retired();
  case SoakCore::Pipelined:
    return Pipe->retired();
  }
  return 0;
}

std::string SoakMachine::simUbDetail() const {
  return std::string(riscv::ubKindName(Sim->ubKind())) + ": " +
         Sim->ubDetail();
}

bool SoakMachine::engineDiverged() const {
  return Engine && Engine->divergences() > 0;
}

std::string SoakMachine::engineDivergenceDetail() const {
  return Engine ? Engine->divergenceDetail() : std::string();
}

SoakMachine::Snapshot SoakMachine::snapshot() {
  metrics::add(metrics::Id::CkptSnapshots);
  Snapshot S;
  if (Sim)
    S.Sim = Sim->snapshot();
  if (Mem)
    S.Mem = Mem->snapshot();
  if (Spec)
    S.Spec = Spec->snapshot();
  if (Pipe)
    S.Pipe = Pipe->snapshot();
  S.Plat = Plat.snapshot();
  S.ConvertedTrace = ConvertedChain.snapshot(ConvertedTrace);
  S.Converted = Converted;
  S.Mon = Mon.snapshot();
  S.Elapsed = Elapsed;
  S.NextFrame = NextFrame;
  S.Delivered = DeliveredChain.snapshot(Delivered);
  S.DrainFlagged = DrainFlagged;
  return S;
}

void SoakMachine::restore(const Snapshot &S) {
  metrics::add(metrics::Id::CkptRestores);
  if (Sim)
    Sim->restore(*S.Sim);
  if (Mem)
    Mem->restore(*S.Mem);
  if (Spec)
    Spec->restore(*S.Spec);
  if (Pipe)
    Pipe->restore(*S.Pipe);
  Plat.restore(S.Plat);
  ConvertedChain.restore(ConvertedTrace, S.ConvertedTrace);
  Converted = S.Converted;
  Mon.restore(S.Mon);
  Elapsed = S.Elapsed;
  NextFrame = S.NextFrame;
  DeliveredChain.restore(Delivered, S.Delivered);
  DrainFlagged = S.DrainFlagged;
}

void SoakMachine::publishMetrics() {
  if (Engine)
    Engine->publishMetrics();
  else if (Sim)
    Sim->publishMetrics();
}

//===----------------------------------------------------------------------===//
// The shard delivery loop
//===----------------------------------------------------------------------===//

ShardExit b2::traffic::runShardLoop(SoakMachine &M,
                                    const ScheduledFrame *Begin,
                                    const ScheduledFrame *End,
                                    const SoakOptions &Options,
                                    const InjectHook &OnInject,
                                    bool StopBeforeFirstInject) {
  const size_t NumFrames = size_t(End - Begin);
  Platform &Plat = M.platform();
  if (!Options.HonorSchedule && NumFrames > M.NextFrame)
    M.Delivered.reserve(M.Delivered.size() + (NumFrames - M.NextFrame));

  for (;;) {
    if (!Options.HonorSchedule) {
      // Backpressure delivery: top the NIC FIFO back up to the budget.
      // Gated on rxEnabled so nothing is lost to the pre-init window,
      // and on FIFO headroom so nothing is lost to queue overflow —
      // delivery paces itself to the firmware's drain rate.
      if (StopBeforeFirstInject && Plat.nic().rxEnabled() &&
          Plat.nic().bufferedFrames() < Options.FrameBudget)
        return ShardExit::ReadyToInject;
      while (M.NextFrame < NumFrames && Plat.nic().rxEnabled() &&
             Plat.nic().bufferedFrames() < Options.FrameBudget) {
        const ScheduledFrame &F = Begin[M.NextFrame];
        Plat.injectNow(F.Frame, F.Errored);
        M.Delivered.push_back(
            ScheduledFrame{Plat.opCount(), F.Frame, F.Errored});
        ++M.NextFrame;
        if (OnInject)
          OnInject(M.NextFrame);
      }
      // Frames remain but delivery is blocked (rx disabled or the FIFO
      // is at budget): the coming chunk runs under backpressure.
      if (M.NextFrame < NumFrames)
        metrics::add(metrics::Id::SoakFifoStalls);
      // The drain check is suppressed during a boot capture (nothing has
      // been injected; an empty schedule must not look drained).
      if (!StopBeforeFirstInject && M.NextFrame == NumFrames &&
          Plat.nic().bufferedFrames() == 0) {
        if (M.DrainFlagged)
          return ShardExit::Completed;
        M.DrainFlagged = true; // One settle chunk for the final frame.
      }
    } else {
      uint64_t LastAt = NumFrames == 0 ? 0 : (End - 1)->AtOp;
      if (Plat.opCount() > LastAt + 100 && Plat.nic().bufferedFrames() == 0) {
        if (M.DrainFlagged)
          return ShardExit::Completed;
        M.DrainFlagged = true;
      }
    }

    if (M.Elapsed >= Options.MaxCyclesPerShard)
      return ShardExit::BudgetExhausted;

    bool Ok = true;
    M.Elapsed += M.runChunk(Options.ChunkCycles, Ok);
    if (M.engineDiverged())
      return ShardExit::Diverged;
    if (!Ok)
      return ShardExit::HitUb;

    // The streaming check: feed only the events this chunk produced.
    if (!M.monitor().pollTrace(M.trace()))
      return ShardExit::Violated;
  }
}

ShardStats b2::traffic::collectShardStats(SoakMachine &M, ShardExit Exit,
                                          const ScheduledFrame *Begin,
                                          const ScheduledFrame *End,
                                          const SoakOptions &Options) {
  ShardStats S;
  Platform &Plat = M.platform();
  TraceMonitor &Mon = M.monitor();
  const size_t NumFrames = size_t(End - Begin);
  const riscv::MmioTrace &Trace = M.trace();

  if (Exit == ShardExit::HitUb) {
    S.HitUb = true;
    S.Error = "ISA simulator hit UB: " + M.simUbDetail();
  }
  if (Exit == ShardExit::Diverged) {
    S.Diverged = true;
    S.Error = "block engine left lockstep: " + M.engineDivergenceDetail();
  }

  S.FramesDelivered = Options.HonorSchedule
                          ? uint64_t(std::count_if(
                                Begin, End,
                                [&Plat](const ScheduledFrame &F) {
                                  return F.AtOp <= Plat.opCount();
                                }))
                          : M.NextFrame;
  S.FramesAccepted = Plat.acceptedFrames().size();
  for (const ScheduledFrame &F : Plat.acceptedFrames())
    if (!F.Errored && classifyFrame(F.Frame).Valid)
      ++S.ValidCommands;
  S.MmioEvents = Trace.size();
  S.MonitorEventsSeen = Mon.eventsSeen();
  S.LightTransitions = Plat.gpio().lightHistory().size();
  S.Cycles = M.Elapsed;
  S.Retired = M.retired();
  S.TraceHash = soakTraceHash(Trace);

  S.MonitorOk = !Mon.violated();
  S.Drained = M.DrainFlagged;

  // One publication per shard, before the early-exit returns below so
  // failing shards are counted too. The simulator-side deltas ride along
  // here; per-frame work was already aggregated by the delivery loop.
  {
    using metrics::Id;
    metrics::add(Id::SoakShards);
    metrics::add(Id::SoakFramesDelivered, S.FramesDelivered);
    metrics::add(Id::SoakFramesAccepted, S.FramesAccepted);
    if (S.FramesDelivered > S.FramesAccepted)
      metrics::add(Id::SoakFramesDropped, S.FramesDelivered - S.FramesAccepted);
    metrics::add(Id::SoakValidCommands, S.ValidCommands);
    metrics::add(Id::SoakMmioEvents, S.MmioEvents);
    metrics::add(Id::SoakMonitorEvents, S.MonitorEventsSeen);
    M.publishMetrics();
  }

  // Keeps the delivered prefix for the shrinker (only called on
  // frame-dependent failures).
  auto KeepDelivered = [&] {
    if (Options.HonorSchedule) {
      for (const ScheduledFrame *F = Begin; F != End; ++F)
        if (F->AtOp <= Plat.opCount())
          S.DeliveredFrames.push_back(*F);
    } else {
      S.DeliveredFrames = std::move(M.Delivered);
    }
  };

  if (Exit == ShardExit::Violated) {
    S.ViolationIndex = Mon.violationIndex();
    S.Error = "goodHlTrace violated at event " +
              std::to_string(S.ViolationIndex) + "; expected one of: " +
              support::join(Mon.expectedAtViolation(), " | ");
    KeepDelivered();
    return S;
  }
  if (S.HitUb || S.Diverged) {
    KeepDelivered();
    return S;
  }
  if (!S.Drained && NumFrames != 0) {
    S.Error = "cycle budget exhausted before the shard drained (" +
              std::to_string(S.FramesDelivered) + "/" +
              std::to_string(NumFrames) + " frames delivered)";
    return S;
  }

  S.GroundTruthOk = Plat.gpio().lightHistory() ==
                    expectedLightSequence(Plat.acceptedFrames());
  if (!S.GroundTruthOk) {
    S.Error = "lightbulb state history does not match the accepted valid "
              "commands";
    KeepDelivered();
    return S;
  }

  // Cross-checking is the caller's job (it reruns the shard on a
  // sibling core); Ok is provisional on CrossCheckOk's default.
  S.Ok = S.MonitorOk && S.GroundTruthOk && S.CrossCheckOk;
  return S;
}

//===----------------------------------------------------------------------===//
// Warm-boot fleet
//===----------------------------------------------------------------------===//

namespace {

/// Cached boot snapshot for one (program, core, sizing, fault plan)
/// configuration. Thread-local: parallelFor workers never share, so no
/// locking, and the adequacy determinism guarantee (results independent
/// of thread count) holds because warm and cold shard runs are
/// bit-identical by construction.
struct BootCacheEntry {
  uint64_t Key = 0;
  bool Ok = false; ///< Boot reached injection readiness.
  SoakMachine::Snapshot Snap;
};

thread_local std::vector<BootCacheEntry> BootCache;

/// A handful of entries per worker: cross-checking alternates two cores
/// and the adequacy campaign alternates fault plans on one thread.
constexpr size_t BootCacheCap = 8;

uint64_t bootCacheKey(const compiler::CompiledProgram &Prog,
                      const SoakOptions &Options) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto MixByte = [&H](uint8_t B) {
    H ^= B;
    H *= 0x100000001b3ull;
  };
  auto Mix = [&MixByte](uint64_t V) {
    for (int I = 0; I < 8; ++I)
      MixByte(uint8_t((V >> (I * 8)) & 0xFF));
  };
  for (uint8_t B : Prog.image())
    MixByte(B);
  Mix(uint64_t(Options.Core));
  Mix(uint64_t(Options.SimExec));
  Mix(Options.RamBytes);
  Mix(Options.ChunkCycles);
  Mix(Options.FrameBudget);
  Mix(Options.MaxCyclesPerShard);
  // The plan armed on this thread (the caller arms Options.Plan before
  // calling): a boot snapshot taken under one fault plan must never be
  // resumed under another.
  Mix(fi::ActivePlan ? fi::ActivePlan->bits() : 0);
  return H;
}

} // namespace

std::unique_ptr<SoakMachine>
b2::traffic::warmBootMachine(const compiler::CompiledProgram &Prog,
                             const SoakOptions &Options) {
  const uint64_t Key = bootCacheKey(Prog, Options);
  for (const BootCacheEntry &E : BootCache) {
    if (E.Key != Key)
      continue;
    // The cache is thread-local, so hit/miss mix depends on the thread
    // count — counted under the Nondet scope, and everything the warm or
    // cold boot path *executes* is suppressed below so the Det metrics
    // describe only the per-shard work, which is thread-count-invariant.
    metrics::add(metrics::Id::CkptBootHits);
    if (!E.Ok)
      return nullptr;
    metrics::PauseScope Pause;
    auto M = std::make_unique<SoakMachine>(Prog, Options.Core,
                                           Options.RamBytes, Options.SimExec);
    M->restore(E.Snap);
    // While paused this publishes nothing but still rebases the engine
    // and decode-cache publication baselines, so the restore-time flush
    // never leaks into the shard's deltas.
    M->publishMetrics();
    return M;
  }

  metrics::add(metrics::Id::CkptBootMisses);
  metrics::PauseScope Pause;
  auto M = std::make_unique<SoakMachine>(Prog, Options.Core, Options.RamBytes,
                                         Options.SimExec);
  ShardExit E = runShardLoop(*M, nullptr, nullptr, Options, InjectHook(),
                             /*StopBeforeFirstInject=*/true);
  const bool Ok = E == ShardExit::ReadyToInject;
  BootCacheEntry Entry;
  Entry.Key = Key;
  Entry.Ok = Ok;
  if (Ok)
    Entry.Snap = M->snapshot();
  if (BootCache.size() >= BootCacheCap)
    BootCache.erase(BootCache.begin());
  BootCache.push_back(std::move(Entry));
  // Rebase (see the warm path): boot-era engine work stays out of the
  // shard's published deltas, exactly as it does on a warm fork.
  M->publishMetrics();
  return Ok ? std::move(M) : nullptr;
}

//===----------------------------------------------------------------------===//
// Checkpointed shrink oracle
//===----------------------------------------------------------------------===//

struct CheckpointedOracle::Node {
  SoakMachine::Snapshot Snap;
  struct Edge {
    std::vector<uint8_t> Frame;
    bool Errored;
    std::unique_ptr<Node> Child;
  };
  std::vector<Edge> Edges;

  /// Edges key on injected content only — never on AtOp, which carries
  /// the original schedule and is ignored by backpressure delivery.
  Node *child(const ScheduledFrame &F) {
    for (Edge &E : Edges)
      if (E.Errored == F.Errored && E.Frame == F.Frame)
        return E.Child.get();
    return nullptr;
  }
};

CheckpointedOracle::CheckpointedOracle(const compiler::CompiledProgram &Prog,
                                       const SoakOptions &Options)
    : Prog(Prog), Options(Options) {
  this->Options.CrossCheck = false;
  this->Options.HonorSchedule = false;

  std::optional<fi::FaultScope> Scope;
  if (this->Options.Plan)
    Scope.emplace(*this->Options.Plan);

  // Boot is cache priming, not oracle work: suppress its metric traffic
  // and rebase the publication baselines, mirroring warmBootMachine.
  metrics::PauseScope Pause;
  M = std::make_unique<SoakMachine>(Prog, this->Options.Core,
                                    this->Options.RamBytes,
                                    this->Options.SimExec);
  ShardExit E = runShardLoop(*M, nullptr, nullptr, this->Options, InjectHook(),
                             /*StopBeforeFirstInject=*/true);
  BootOk = E == ShardExit::ReadyToInject;
  Root = std::make_unique<Node>();
  if (BootOk)
    Root->Snap = M->snapshot();
  M->publishMetrics();
}

CheckpointedOracle::~CheckpointedOracle() {
  // The oracle's lifetime totals feed the fleet registry exactly once.
  using metrics::Id;
  metrics::add(Id::ShrinkOracleRuns, Stats.OracleRuns);
  metrics::add(Id::ShrinkOracleResumed, Stats.ResumedRuns);
  metrics::add(Id::ShrinkCyclesSimulated, Stats.SimulatedCycles);
  metrics::add(Id::ShrinkCyclesSkipped, Stats.SkippedCycles);
  metrics::add(Id::ShrinkCheckpoints, Stats.Checkpoints);
  metrics::add(Id::ShrinkPrimeRuns, Stats.PrimeRuns);
  metrics::add(Id::ShrinkPrimeCycles, Stats.PrimeCycles);
}

bool CheckpointedOracle::failing(const std::vector<ScheduledFrame> &Frames) {
  ++Stats.OracleRuns;
  std::optional<fi::FaultScope> Scope;
  if (Options.Plan)
    Scope.emplace(*Options.Plan);

  if (!BootOk) {
    // Boot never reached injection readiness (a fault broke driver
    // init): fall back to cold runs, which reproduce the cold verdict
    // exactly.
    ShardStats S = runSoakShard(Prog, Frames, Options);
    Stats.SimulatedCycles += S.Cycles;
    return !S.MonitorOk || S.HitUb || S.Diverged ||
           (S.Drained && !S.GroundTruthOk);
  }

  // Walk the tree along the candidate's frame sequence; resume from the
  // deepest checkpoint whose delivered prefix matches.
  Node *Cur = Root.get();
  size_t Depth = 0;
  while (Depth < Frames.size()) {
    Node *Child = Cur->child(Frames[Depth]);
    if (!Child)
      break;
    Cur = Child;
    ++Depth;
  }
  M->restore(Cur->Snap);
  if (Depth > 0)
    ++Stats.ResumedRuns;
  const uint64_t StartElapsed = M->Elapsed;
  Stats.SkippedCycles += StartElapsed;

  Node *Pos = Cur;
  bool Tracking = true;
  InjectHook Hook = [&](size_t Injected) {
    if (!Tracking)
      return;
    const ScheduledFrame &F = Frames[Injected - 1];
    Node *Child = Pos->child(F);
    if (!Child) {
      if (Stats.Checkpoints >= MaxCheckpoints) {
        // Cap reached: stop extending the tree this run. Pos must not
        // advance past a node we failed to create, or later checkpoints
        // would be filed under the wrong prefix.
        Tracking = false;
        return;
      }
      auto Fresh = std::make_unique<Node>();
      Fresh->Snap = M->snapshot();
      Child = Fresh.get();
      Pos->Edges.push_back(Node::Edge{F.Frame, F.Errored, std::move(Fresh)});
      ++Stats.Checkpoints;
    }
    Pos = Child;
  };

  ShardExit E = runShardLoop(*M, Frames.data(), Frames.data() + Frames.size(),
                             Options, Hook);
  Stats.SimulatedCycles += M->Elapsed - StartElapsed;
  ShardStats S = collectShardStats(*M, E, Frames.data(),
                                   Frames.data() + Frames.size(), Options);
  return !S.MonitorOk || S.HitUb || S.Diverged ||
         (S.Drained && !S.GroundTruthOk);
}

bool CheckpointedOracle::prime(const std::vector<ScheduledFrame> &Frames) {
  const RunStats Before = Stats;
  bool Verdict = failing(Frames);
  // Re-book the replay under the prime counters; the checkpoint count
  // stays — the tree is precisely what the handoff produces.
  Stats.PrimeRuns += Stats.OracleRuns - Before.OracleRuns;
  Stats.PrimeCycles += Stats.SimulatedCycles - Before.SimulatedCycles;
  Stats.OracleRuns = Before.OracleRuns;
  Stats.ResumedRuns = Before.ResumedRuns;
  Stats.SimulatedCycles = Before.SimulatedCycles;
  Stats.SkippedCycles = Before.SkippedCycles;
  return Verdict;
}

//===----------------------------------------------------------------------===//
// Snapshot-resume differential
//===----------------------------------------------------------------------===//

namespace {

bool sameFrames(const std::vector<ScheduledFrame> &A,
                const std::vector<ScheduledFrame> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].AtOp != B[I].AtOp || A[I].Errored != B[I].Errored ||
        A[I].Frame != B[I].Frame)
      return false;
  return true;
}

/// First differing ShardStats field, rendered; empty when identical.
std::string statsMismatch(const ShardStats &A, const ShardStats &B) {
  auto Num = [](const char *Field, uint64_t X, uint64_t Y) {
    return std::string(Field) + " diverged: straight=" + std::to_string(X) +
           " resumed=" + std::to_string(Y);
  };
  if (A.Ok != B.Ok)
    return Num("ok", A.Ok, B.Ok);
  if (A.MonitorOk != B.MonitorOk)
    return Num("monitor_ok", A.MonitorOk, B.MonitorOk);
  if (A.GroundTruthOk != B.GroundTruthOk)
    return Num("ground_truth_ok", A.GroundTruthOk, B.GroundTruthOk);
  if (A.Drained != B.Drained)
    return Num("drained", A.Drained, B.Drained);
  if (A.HitUb != B.HitUb)
    return Num("hit_ub", A.HitUb, B.HitUb);
  if (A.Diverged != B.Diverged)
    return Num("diverged", A.Diverged, B.Diverged);
  if (A.FramesDelivered != B.FramesDelivered)
    return Num("frames_delivered", A.FramesDelivered, B.FramesDelivered);
  if (A.FramesAccepted != B.FramesAccepted)
    return Num("frames_accepted", A.FramesAccepted, B.FramesAccepted);
  if (A.ValidCommands != B.ValidCommands)
    return Num("valid_commands", A.ValidCommands, B.ValidCommands);
  if (A.MmioEvents != B.MmioEvents)
    return Num("mmio_events", A.MmioEvents, B.MmioEvents);
  if (A.MonitorEventsSeen != B.MonitorEventsSeen)
    return Num("monitor_events_seen", A.MonitorEventsSeen,
               B.MonitorEventsSeen);
  if (A.LightTransitions != B.LightTransitions)
    return Num("light_transitions", A.LightTransitions, B.LightTransitions);
  if (A.Cycles != B.Cycles)
    return Num("cycles", A.Cycles, B.Cycles);
  if (A.Retired != B.Retired)
    return Num("retired", A.Retired, B.Retired);
  if (A.TraceHash != B.TraceHash)
    return Num("trace_hash", A.TraceHash, B.TraceHash);
  if (A.ViolationIndex != B.ViolationIndex)
    return Num("violation_index", A.ViolationIndex, B.ViolationIndex);
  if (A.Error != B.Error)
    return "error string diverged: straight=\"" + A.Error + "\" resumed=\"" +
           B.Error + "\"";
  if (!sameFrames(A.DeliveredFrames, B.DeliveredFrames))
    return "kept delivered-frame prefix diverged";
  return std::string();
}

} // namespace

SnapshotDifferential b2::traffic::runSnapshotDifferential(
    const compiler::CompiledProgram &Prog,
    const std::vector<ScheduledFrame> &Frames, const SoakOptions &Options,
    size_t CheckpointDepth) {
  SnapshotDifferential D;
  SoakOptions O = Options;
  O.CrossCheck = false;
  O.HonorSchedule = false;

  std::optional<fi::FaultScope> Scope;
  if (O.Plan)
    Scope.emplace(*O.Plan);

  const ScheduledFrame *Begin = Frames.data();
  const ScheduledFrame *End = Begin + Frames.size();

  // Straight-through run; the hook captures one snapshot in flight.
  SoakMachine A(Prog, O.Core, O.RamBytes, O.SimExec);
  std::optional<SoakMachine::Snapshot> Snap;
  InjectHook Hook = [&](size_t Injected) {
    if (!Snap && Injected == CheckpointDepth)
      Snap = A.snapshot();
  };
  ShardExit EA =
      runShardLoop(A, Begin, End, O, CheckpointDepth ? Hook : InjectHook());
  std::vector<bool> LightsA = A.platform().gpio().lightHistory();
  std::vector<ScheduledFrame> DeliveredA = A.Delivered;
  D.Straight = collectShardStats(A, EA, Begin, End, O);

  // Resumed run in a *fresh* machine. If the requested depth was never
  // reached (short run, or depth past the last injection), this is a
  // second cold run — still a meaningful determinism check.
  SoakMachine B(Prog, O.Core, O.RamBytes, O.SimExec);
  if (Snap)
    B.restore(*Snap);
  ShardExit EB = runShardLoop(B, Begin, End, O);
  std::vector<bool> LightsB = B.platform().gpio().lightHistory();
  std::vector<ScheduledFrame> DeliveredB = B.Delivered;
  D.Resumed = collectShardStats(B, EB, Begin, End, O);

  D.Detail = statsMismatch(D.Straight, D.Resumed);
  if (D.Detail.empty() && LightsA != LightsB)
    D.Detail = "light history diverged";
  if (D.Detail.empty() && !sameFrames(DeliveredA, DeliveredB))
    D.Detail = "delivered-frame log diverged";
  D.Identical = D.Detail.empty();
  return D;
}
