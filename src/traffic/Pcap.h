//===- traffic/Pcap.h - Classic libpcap corpus files -----------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader/writer for the classic libpcap capture format (the 24-byte
/// global header with magic 0xa1b2c3d4, LINKTYPE_ETHERNET records), so
/// traffic workloads can be recorded, replayed, and shipped as ordinary
/// corpus files — including the shrunk counterexamples the soak harness
/// writes on a spec violation. No external dependencies: the format is
/// simple enough to encode byte-by-byte.
///
/// Mapping between pcap records and this repository's scheduled frames:
///
///  * Arrival time is op-count-based (devices/Platform.h), never
///    wall-clock, so a capture stays deterministic under replay. AtOp is
///    stored as the record timestamp with one MMIO op per microsecond:
///    ts_sec = AtOp / 1e6, ts_usec = AtOp % 1e6.
///  * The PHY error-summary flag (ScheduledFrame::Errored — a frame
///    delivered with the RX status error bit, as after a CRC failure)
///    has no pcap field; it rides in bit 30 of ts_sec. Foreign tools
///    still parse such files; they merely show a far-future timestamp
///    for the few errored frames.
///
/// Reading accepts both byte orders of the microsecond magic (a capture
/// written on a big-endian machine byte-swaps every header field).
///
//===----------------------------------------------------------------------===//

#ifndef B2_TRAFFIC_PCAP_H
#define B2_TRAFFIC_PCAP_H

#include "devices/Platform.h"

#include <cstdint>
#include <string>
#include <vector>

namespace b2 {
namespace traffic {

namespace pcap {
constexpr uint32_t MagicUsec = 0xa1b2c3d4;      ///< Host-order capture.
constexpr uint32_t MagicUsecSwapped = 0xd4c3b2a1;
constexpr uint16_t VersionMajor = 2;
constexpr uint16_t VersionMinor = 4;
constexpr uint32_t LinkTypeEthernet = 1;
constexpr uint32_t SnapLen = 65535;
/// ts_sec bit carrying ScheduledFrame::Errored (see file comment).
constexpr uint32_t ErroredBit = uint32_t(1) << 30;
} // namespace pcap

/// Encodes \p Frames as a complete pcap file image (global header plus
/// one record per frame, little-endian).
std::vector<uint8_t> encodePcap(const std::vector<devices::ScheduledFrame> &Frames);

/// Decodes a pcap file image. Returns false (with \p Error set) on a bad
/// magic, a truncated header, or a truncated record; \p Out receives the
/// frames decoded so far only on success.
bool decodePcap(const std::vector<uint8_t> &Bytes,
                std::vector<devices::ScheduledFrame> &Out,
                std::string &Error);

/// Writes \p Frames to \p Path as a pcap file. False on I/O failure.
bool writePcap(const std::string &Path,
               const std::vector<devices::ScheduledFrame> &Frames,
               std::string &Error);

/// Reads a pcap file from \p Path. False on I/O or format failure.
bool readPcap(const std::string &Path,
              std::vector<devices::ScheduledFrame> &Out,
              std::string &Error);

} // namespace traffic
} // namespace b2

#endif // B2_TRAFFIC_PCAP_H
