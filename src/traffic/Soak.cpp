//===- traffic/Soak.cpp - Sharded pcap-driven soak harness -------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "traffic/Soak.h"

#include "app/Firmware.h"
#include "app/LightbulbSpec.h"
#include "devices/Net.h"
#include "kami/PipelinedCore.h"
#include "kami/SpecCore.h"
#include "riscv/Machine.h"
#include "riscv/Step.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/ThreadPool.h"
#include "traffic/Monitor.h"

#include <algorithm>
#include <memory>
#include <optional>

using namespace b2;
using namespace b2::traffic;
using namespace b2::devices;

const char *b2::traffic::soakCoreName(SoakCore C) {
  switch (C) {
  case SoakCore::Pipelined:
    return "pipelined";
  case SoakCore::IsaSim:
    return "isa-sim";
  case SoakCore::SpecCore:
    return "spec-core";
  }
  return "?";
}

namespace {

/// FNV-1a over an MMIO trace (the same construction as streamDigest;
/// local so b2_traffic stays independent of b2_verify's traceDigest).
uint64_t traceHash(const riscv::MmioTrace &T) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xFF;
      H *= 0x100000001b3ull;
    }
  };
  Mix(T.size());
  for (const riscv::MmioEvent &E : T) {
    Mix(E.IsStore ? 1 : 0);
    Mix(E.Addr);
    Mix(E.Value);
    Mix(E.Size);
  }
  return H;
}

/// Ground truth, as in the end-to-end checker: the distinct lightbulb
/// states implied by the accepted frames (initial state off).
std::vector<bool>
expectedLightSequence(const std::vector<ScheduledFrame> &Accepted) {
  std::vector<bool> Out;
  bool Light = false;
  for (const ScheduledFrame &F : Accepted) {
    if (F.Errored)
      continue;
    FrameClass C = classifyFrame(F.Frame);
    if (!C.Valid)
      continue;
    if (C.CommandBit != Light) {
      Light = C.CommandBit;
      Out.push_back(Light);
    }
  }
  return Out;
}

/// Uniform driver over the three execution substrates (the soak-side
/// sibling of the end-to-end checker's SystemRunner).
class ShardRunner {
public:
  ShardRunner(const compiler::CompiledProgram &Prog, SoakCore Core,
              Word RamBytes)
      : Core(Core) {
    switch (Core) {
    case SoakCore::IsaSim:
      Sim = std::make_unique<riscv::Machine>(RamBytes);
      Sim->loadImage(0, Prog.image());
      break;
    case SoakCore::SpecCore:
      Mem = std::make_unique<kami::Bram>(RamBytes);
      Mem->loadImage(Prog.image());
      Spec = std::make_unique<kami::SpecCore>(*Mem, Plat);
      break;
    case SoakCore::Pipelined:
      Mem = std::make_unique<kami::Bram>(RamBytes);
      Mem->loadImage(Prog.image());
      Pipe = std::make_unique<kami::PipelinedCore>(*Mem, Plat,
                                                   kami::PipeConfig());
      break;
    }
  }

  bool run(uint64_t Cycles) {
    switch (Core) {
    case SoakCore::IsaSim:
      riscv::run(*Sim, Plat, Cycles);
      return !Sim->hasUb();
    case SoakCore::SpecCore:
      Spec->run(Cycles);
      return true;
    case SoakCore::Pipelined:
      Pipe->run(Cycles);
      return true;
    }
    return false;
  }

  /// Trace under KamiLabelSeqR, converted incrementally (O(new events)
  /// per call, which is what keeps per-chunk monitor polling cheap).
  const riscv::MmioTrace &trace() {
    switch (Core) {
    case SoakCore::IsaSim:
      return Sim->trace();
    case SoakCore::SpecCore:
      Converted =
          kami::appendKamiLabelSeqR(Spec->labels(), Converted, ConvertedTrace);
      return ConvertedTrace;
    case SoakCore::Pipelined:
      Converted =
          kami::appendKamiLabelSeqR(Pipe->labels(), Converted, ConvertedTrace);
      return ConvertedTrace;
    }
    return ConvertedTrace;
  }

  uint64_t retired() const {
    switch (Core) {
    case SoakCore::IsaSim:
      return Sim->retiredInstructions();
    case SoakCore::SpecCore:
      return Spec->retired();
    case SoakCore::Pipelined:
      return Pipe->retired();
    }
    return 0;
  }

  std::string simUbDetail() const {
    return std::string(riscv::ubKindName(Sim->ubKind())) + ": " +
           Sim->ubDetail();
  }

  Platform &platform() { return Plat; }

private:
  SoakCore Core;
  Platform Plat;
  std::unique_ptr<riscv::Machine> Sim;
  std::unique_ptr<kami::Bram> Mem;
  std::unique_ptr<kami::SpecCore> Spec;
  std::unique_ptr<kami::PipelinedCore> Pipe;
  riscv::MmioTrace ConvertedTrace;
  size_t Converted = 0;
};

ShardStats runShardRange(const compiler::CompiledProgram &Prog,
                         const ScheduledFrame *Begin, const ScheduledFrame *End,
                         const SoakOptions &Options) {
  ShardStats S;
  // Arm the requested plan, if any. When none is requested the ambient
  // thread-local plan (e.g. one the adequacy driver armed around this
  // call) is left in place rather than masked with an empty scope.
  std::optional<fi::FaultScope> Scope;
  if (Options.Plan)
    Scope.emplace(*Options.Plan);

  ShardRunner Runner(Prog, Options.Core, Options.RamBytes);
  Platform &Plat = Runner.platform();
  TraceMonitor Mon;

  const size_t NumFrames = size_t(End - Begin);
  size_t NextFrame = 0;
  std::vector<ScheduledFrame> Delivered;

  if (Options.HonorSchedule)
    for (const ScheduledFrame *F = Begin; F != End; ++F)
      Plat.scheduleFrame(F->AtOp, F->Frame, F->Errored);

  uint64_t Elapsed = 0;
  bool Drained = false;
  bool Violated = false;
  while (Elapsed < Options.MaxCyclesPerShard) {
    if (!Runner.run(Options.ChunkCycles)) {
      S.HitUb = true;
      S.Error = "ISA simulator hit UB: " + Runner.simUbDetail();
      break;
    }
    Elapsed += Options.ChunkCycles;

    // The streaming check: feed only the events this chunk produced.
    if (!Mon.pollTrace(Runner.trace())) {
      Violated = true;
      break;
    }

    if (Options.HonorSchedule) {
      uint64_t LastAt = NumFrames == 0 ? 0 : (End - 1)->AtOp;
      if (Plat.opCount() > LastAt + 100 && Plat.nic().bufferedFrames() == 0) {
        if (Drained)
          break;
        Drained = true;
      }
      continue;
    }

    // Backpressure delivery: top the NIC FIFO back up to the budget.
    // Gated on rxEnabled so nothing is lost to the pre-init window, and
    // on FIFO headroom so nothing is lost to queue overflow — delivery
    // paces itself to the firmware's drain rate.
    while (NextFrame < NumFrames && Plat.nic().rxEnabled() &&
           Plat.nic().bufferedFrames() < Options.FrameBudget) {
      const ScheduledFrame &F = Begin[NextFrame];
      Plat.injectNow(F.Frame, F.Errored);
      Delivered.push_back(ScheduledFrame{Plat.opCount(), F.Frame, F.Errored});
      ++NextFrame;
    }

    if (NextFrame == NumFrames && Plat.nic().bufferedFrames() == 0) {
      if (Drained)
        break;
      Drained = true; // One settle chunk for the final frame's iteration.
    }
  }

  const riscv::MmioTrace &Trace = Runner.trace();
  S.FramesDelivered = Options.HonorSchedule
                          ? uint64_t(std::count_if(
                                Begin, End,
                                [&Plat](const ScheduledFrame &F) {
                                  return F.AtOp <= Plat.opCount();
                                }))
                          : NextFrame;
  S.FramesAccepted = Plat.acceptedFrames().size();
  for (const ScheduledFrame &F : Plat.acceptedFrames())
    if (!F.Errored && classifyFrame(F.Frame).Valid)
      ++S.ValidCommands;
  S.MmioEvents = Trace.size();
  S.MonitorEventsSeen = Mon.eventsSeen();
  S.LightTransitions = Plat.gpio().lightHistory().size();
  S.Cycles = Elapsed;
  S.Retired = Runner.retired();
  S.TraceHash = traceHash(Trace);

  S.MonitorOk = !Mon.violated();
  S.Drained = Drained;

  // Keeps the delivered prefix for the shrinker (only called on
  // frame-dependent failures).
  auto KeepDelivered = [&] {
    if (Options.HonorSchedule) {
      for (const ScheduledFrame *F = Begin; F != End; ++F)
        if (F->AtOp <= Plat.opCount())
          S.DeliveredFrames.push_back(*F);
    } else {
      S.DeliveredFrames = std::move(Delivered);
    }
  };

  if (Violated) {
    S.ViolationIndex = Mon.violationIndex();
    S.Error = "goodHlTrace violated at event " +
              std::to_string(S.ViolationIndex) + "; expected one of: " +
              support::join(Mon.expectedAtViolation(), " | ");
    KeepDelivered();
    return S;
  }
  if (S.HitUb) {
    KeepDelivered();
    return S;
  }
  if (!S.Error.empty())
    return S;
  if (!Drained && NumFrames != 0) {
    S.Error = "cycle budget exhausted before the shard drained (" +
              std::to_string(S.FramesDelivered) + "/" +
              std::to_string(NumFrames) + " frames delivered)";
    return S;
  }

  S.GroundTruthOk =
      Plat.gpio().lightHistory() == expectedLightSequence(Plat.acceptedFrames());
  if (!S.GroundTruthOk) {
    S.Error = "lightbulb state history does not match the accepted valid "
              "commands";
    KeepDelivered();
    return S;
  }

  if (Options.CrossCheck) {
    SoakOptions Other = Options;
    Other.CrossCheck = false;
    Other.Core = Options.Core == SoakCore::IsaSim ? SoakCore::SpecCore
                                                  : SoakCore::IsaSim;
    ShardStats O = runShardRange(Prog, Begin, End, Other);
    // Traces are not compared verbatim: delivery points fall on chunk
    // boundaries, which land on different op counts across substrates.
    // What must agree is everything op-sequence-determined: the accepted
    // frames, the valid commands, and the lightbulb history.
    S.CrossCheckOk = O.MonitorOk && O.GroundTruthOk &&
                     O.FramesAccepted == S.FramesAccepted &&
                     O.ValidCommands == S.ValidCommands &&
                     O.LightTransitions == S.LightTransitions;
    if (!S.CrossCheckOk) {
      S.Error = "cross-check on " + std::string(soakCoreName(Other.Core)) +
                " disagrees: " +
                (O.Error.empty() ? std::string("accepted/commands/lights "
                                               "counters differ")
                                 : O.Error);
      return S;
    }
  }

  S.Ok = S.MonitorOk && S.GroundTruthOk && S.CrossCheckOk;
  return S;
}

} // namespace

ShardStats
b2::traffic::runSoakShard(const compiler::CompiledProgram &Prog,
                          const std::vector<ScheduledFrame> &Frames,
                          const SoakOptions &Options) {
  return runShardRange(Prog, Frames.data(), Frames.data() + Frames.size(),
                       Options);
}

const ShardStats *SoakReport::firstFailure() const {
  for (const ShardStats &S : Shards)
    if (!S.Ok)
      return &S;
  return nullptr;
}

compiler::CompileResult b2::traffic::compileSoakFirmware(Word RamBytes) {
  bedrock2::Program P = app::buildFirmware(app::FirmwareOptions());
  return compiler::compileProgram(
      P, compiler::CompilerOptions::o0(),
      compiler::Entry::eventLoop("lightbulb_init", "lightbulb_loop"),
      RamBytes);
}

SoakReport b2::traffic::runSoak(const TrafficStream &Stream,
                                const SoakOptions &Options,
                                const std::string &Scenario, uint64_t Seed) {
  compiler::CompileResult C = compileSoakFirmware(Options.RamBytes);
  if (!C.ok()) {
    SoakReport R;
    R.Scenario = Scenario;
    R.Seed = Seed;
    R.Core = Options.Core;
    R.TotalFrames = Stream.Frames.size();
    ShardStats S;
    S.Error = "firmware compilation failed: " + C.Error;
    R.Shards.push_back(std::move(S));
    return R;
  }
  return runSoak(*C.Prog, Stream, Options, Scenario, Seed);
}

SoakReport b2::traffic::runSoak(const compiler::CompiledProgram &Prog,
                                const TrafficStream &Stream,
                                const SoakOptions &Options,
                                const std::string &Scenario, uint64_t Seed) {
  SoakReport R;
  R.Scenario = Scenario;
  R.Seed = Seed;
  R.Core = Options.Core;
  R.TotalFrames = Stream.Frames.size();

  // Build the shared goodHlTrace automaton before fanning out, so the
  // workers never contend on its one-time construction.
  (void)goodHlMatcher();

  const size_t N = Stream.Frames.size();
  size_t ShardCount =
      Options.Shards
          ? Options.Shards
          : std::max<size_t>(1, (N + Options.FramesPerShard - 1) /
                                    std::max<uint64_t>(1, Options.FramesPerShard));
  ShardCount = std::min(ShardCount, std::max<size_t>(1, N));

  // Contiguous balanced slices; the shard count is a function of the
  // stream and options only (never the thread count), and results land
  // in pre-sized slots, so the report is thread-count invariant.
  R.Shards.resize(ShardCount);
  const size_t Base = N / ShardCount, Rem = N % ShardCount;
  const ScheduledFrame *Data = Stream.Frames.data();
  support::parallelFor(ShardCount, Options.Threads, [&](size_t I) {
    size_t Lo = I * Base + std::min(I, Rem);
    size_t Len = Base + (I < Rem ? 1 : 0);
    R.Shards[I] = runShardRange(Prog, Data + Lo, Data + Lo + Len, Options);
  });

  R.Ok = true;
  for (const ShardStats &S : R.Shards)
    R.Ok = R.Ok && S.Ok;
  return R;
}

std::string b2::traffic::soakJson(const SoakReport &Report) {
  support::JsonWriter J;
  J.beginObject();
  J.key("schema").value("b2stack-soak-v1");
  J.key("scenario").value(Report.Scenario);
  J.key("seed").value(Report.Seed);
  J.key("core").value(soakCoreName(Report.Core));
  J.key("frames").value(Report.TotalFrames);
  J.key("shard_count").value(uint64_t(Report.Shards.size()));
  J.key("ok").value(Report.Ok);

  uint64_t Delivered = 0, Accepted = 0, Commands = 0, Events = 0, Lights = 0,
           Cycles = 0, Retired = 0;
  for (const ShardStats &S : Report.Shards) {
    Delivered += S.FramesDelivered;
    Accepted += S.FramesAccepted;
    Commands += S.ValidCommands;
    Events += S.MmioEvents;
    Lights += S.LightTransitions;
    Cycles += S.Cycles;
    Retired += S.Retired;
  }
  J.key("aggregate").beginObject();
  J.key("frames_delivered").value(Delivered);
  J.key("frames_accepted").value(Accepted);
  J.key("valid_commands").value(Commands);
  J.key("mmio_events").value(Events);
  J.key("light_transitions").value(Lights);
  J.key("cycles").value(Cycles);
  J.key("retired").value(Retired);
  // Deterministic throughput figure (model cycles, not wall-clock, so
  // the file stays bit-identical at any thread count).
  J.key("frames_per_mcycle")
      .value(Cycles ? double(Delivered) * 1e6 / double(Cycles) : 0.0);
  J.endObject();

  J.key("violations").beginArray();
  for (size_t I = 0; I != Report.Shards.size(); ++I) {
    const ShardStats &S = Report.Shards[I];
    if (S.MonitorOk)
      continue;
    J.beginObject();
    J.key("shard").value(uint64_t(I));
    J.key("violation_index").value(S.ViolationIndex);
    J.key("error").value(S.Error);
    J.endObject();
  }
  J.endArray();

  J.key("shards").beginArray();
  for (const ShardStats &S : Report.Shards) {
    J.beginObject();
    J.key("ok").value(S.Ok);
    J.key("monitor_ok").value(S.MonitorOk);
    J.key("ground_truth_ok").value(S.GroundTruthOk);
    J.key("cross_check_ok").value(S.CrossCheckOk);
    J.key("drained").value(S.Drained);
    J.key("frames_delivered").value(S.FramesDelivered);
    J.key("frames_accepted").value(S.FramesAccepted);
    J.key("valid_commands").value(S.ValidCommands);
    J.key("mmio_events").value(S.MmioEvents);
    J.key("monitor_events_seen").value(S.MonitorEventsSeen);
    J.key("light_transitions").value(S.LightTransitions);
    J.key("cycles").value(S.Cycles);
    J.key("retired").value(S.Retired);
    J.key("trace_hash").value(S.TraceHash);
    if (!S.Error.empty())
      J.key("error").value(S.Error);
    J.endObject();
  }
  J.endArray();

  J.endObject();
  return J.str();
}
