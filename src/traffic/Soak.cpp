//===- traffic/Soak.cpp - Sharded pcap-driven soak harness -------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "traffic/Soak.h"

#include "app/Firmware.h"
#include "app/LightbulbSpec.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "traffic/Checkpoint.h"

#include <algorithm>
#include <memory>
#include <optional>

using namespace b2;
using namespace b2::traffic;
using namespace b2::devices;

const char *b2::traffic::soakCoreName(SoakCore C) {
  switch (C) {
  case SoakCore::Pipelined:
    return "pipelined";
  case SoakCore::IsaSim:
    return "isa-sim";
  case SoakCore::SpecCore:
    return "spec-core";
  }
  return "?";
}

namespace {

ShardStats runShardRange(const compiler::CompiledProgram &Prog,
                         const ScheduledFrame *Begin, const ScheduledFrame *End,
                         const SoakOptions &Options) {
  metrics::Timed Wall(metrics::Id::SoakShardWall);
  // Arm the requested plan, if any. When none is requested the ambient
  // thread-local plan (e.g. one the adequacy driver armed around this
  // call) is left in place rather than masked with an empty scope. The
  // warm-boot cache keys on whatever plan ends up armed, so arming must
  // precede the machine lookup.
  std::optional<fi::FaultScope> Scope;
  if (Options.Plan)
    Scope.emplace(*Options.Plan);

  const size_t NumFrames = size_t(End - Begin);

  // Warm-boot fleet: fork this shard's machine from the cached
  // post-init snapshot instead of re-simulating the boot sequence.
  // Empty shards run cold (the warm path's budget math assumes at least
  // one injection), as does everything when the boot never reaches
  // injection readiness (warmBootMachine returns null).
  std::unique_ptr<SoakMachine> M;
  if (Options.Checkpoint && !Options.HonorSchedule && NumFrames > 0)
    M = warmBootMachine(Prog, Options);
  if (!M)
    M = std::make_unique<SoakMachine>(Prog, Options.Core, Options.RamBytes,
                                      Options.SimExec);

  if (Options.HonorSchedule)
    for (const ScheduledFrame *F = Begin; F != End; ++F)
      M->platform().scheduleFrame(F->AtOp, F->Frame, F->Errored);

  ShardExit Exit = runShardLoop(*M, Begin, End, Options);
  ShardStats S = collectShardStats(*M, Exit, Begin, End, Options);

  // GroundTruthOk is true exactly when every earlier gate (monitor, UB,
  // drain) passed — the point where the original inline loop reached
  // its cross-check.
  if (Options.CrossCheck && S.GroundTruthOk) {
    SoakOptions Other = Options;
    Other.CrossCheck = false;
    Other.Core = Options.Core == SoakCore::IsaSim ? SoakCore::SpecCore
                                                  : SoakCore::IsaSim;
    ShardStats O = runShardRange(Prog, Begin, End, Other);
    // Traces are not compared verbatim: delivery points fall on chunk
    // boundaries, which land on different op counts across substrates.
    // What must agree is everything op-sequence-determined: the accepted
    // frames, the valid commands, and the lightbulb history.
    S.CrossCheckOk = O.MonitorOk && O.GroundTruthOk &&
                     O.FramesAccepted == S.FramesAccepted &&
                     O.ValidCommands == S.ValidCommands &&
                     O.LightTransitions == S.LightTransitions;
    if (!S.CrossCheckOk)
      S.Error = "cross-check on " + std::string(soakCoreName(Other.Core)) +
                " disagrees: " +
                (O.Error.empty() ? std::string("accepted/commands/lights "
                                               "counters differ")
                                 : O.Error);
    S.Ok = S.MonitorOk && S.GroundTruthOk && S.CrossCheckOk;
  }

  return S;
}

} // namespace

ShardStats
b2::traffic::runSoakShard(const compiler::CompiledProgram &Prog,
                          const std::vector<ScheduledFrame> &Frames,
                          const SoakOptions &Options) {
  return runShardRange(Prog, Frames.data(), Frames.data() + Frames.size(),
                       Options);
}

const ShardStats *SoakReport::firstFailure() const {
  for (const ShardStats &S : Shards)
    if (!S.Ok)
      return &S;
  return nullptr;
}

compiler::CompileResult b2::traffic::compileSoakFirmware(Word RamBytes) {
  bedrock2::Program P = app::buildFirmware(app::FirmwareOptions());
  return compiler::compileProgram(
      P, compiler::CompilerOptions::o0(),
      compiler::Entry::eventLoop("lightbulb_init", "lightbulb_loop"),
      RamBytes);
}

SoakReport b2::traffic::runSoak(const TrafficStream &Stream,
                                const SoakOptions &Options,
                                const std::string &Scenario, uint64_t Seed) {
  compiler::CompileResult C = compileSoakFirmware(Options.RamBytes);
  if (!C.ok()) {
    SoakReport R;
    R.Scenario = Scenario;
    R.Seed = Seed;
    R.Core = Options.Core;
    R.TotalFrames = Stream.Frames.size();
    ShardStats S;
    S.Error = "firmware compilation failed: " + C.Error;
    R.Shards.push_back(std::move(S));
    return R;
  }
  return runSoak(*C.Prog, Stream, Options, Scenario, Seed);
}

SoakReport b2::traffic::runSoak(const compiler::CompiledProgram &Prog,
                                const TrafficStream &Stream,
                                const SoakOptions &Options,
                                const std::string &Scenario, uint64_t Seed) {
  SoakReport R;
  R.Scenario = Scenario;
  R.Seed = Seed;
  R.Core = Options.Core;
  R.TotalFrames = Stream.Frames.size();

  // Build the shared goodHlTrace automaton before fanning out, so the
  // workers never contend on its one-time construction.
  (void)goodHlMatcher();

  const size_t N = Stream.Frames.size();
  size_t ShardCount =
      Options.Shards
          ? Options.Shards
          : std::max<size_t>(1, (N + Options.FramesPerShard - 1) /
                                    std::max<uint64_t>(1, Options.FramesPerShard));
  ShardCount = std::min(ShardCount, std::max<size_t>(1, N));

  // Contiguous balanced slices; the shard count is a function of the
  // stream and options only (never the thread count), and results land
  // in pre-sized slots, so the report is thread-count invariant.
  R.Shards.resize(ShardCount);
  const size_t Base = N / ShardCount, Rem = N % ShardCount;
  const ScheduledFrame *Data = Stream.Frames.data();
  support::parallelFor(ShardCount, Options.Threads, [&](size_t I) {
    size_t Lo = I * Base + std::min(I, Rem);
    size_t Len = Base + (I < Rem ? 1 : 0);
    R.Shards[I] = runShardRange(Prog, Data + Lo, Data + Lo + Len, Options);
  });

  R.Ok = true;
  for (const ShardStats &S : R.Shards)
    R.Ok = R.Ok && S.Ok;
  return R;
}

std::string b2::traffic::soakJson(const SoakReport &Report) {
  support::JsonWriter J;
  J.beginObject();
  J.key("schema").value("b2stack-soak-v1");
  J.key("scenario").value(Report.Scenario);
  J.key("seed").value(Report.Seed);
  J.key("core").value(soakCoreName(Report.Core));
  J.key("frames").value(Report.TotalFrames);
  J.key("shard_count").value(uint64_t(Report.Shards.size()));
  J.key("ok").value(Report.Ok);

  uint64_t Delivered = 0, Accepted = 0, Commands = 0, Events = 0, Lights = 0,
           Cycles = 0, Retired = 0;
  for (const ShardStats &S : Report.Shards) {
    Delivered += S.FramesDelivered;
    Accepted += S.FramesAccepted;
    Commands += S.ValidCommands;
    Events += S.MmioEvents;
    Lights += S.LightTransitions;
    Cycles += S.Cycles;
    Retired += S.Retired;
  }
  J.key("aggregate").beginObject();
  J.key("frames_delivered").value(Delivered);
  J.key("frames_accepted").value(Accepted);
  J.key("valid_commands").value(Commands);
  J.key("mmio_events").value(Events);
  J.key("light_transitions").value(Lights);
  J.key("cycles").value(Cycles);
  J.key("retired").value(Retired);
  // Deterministic throughput figure (model cycles, not wall-clock, so
  // the file stays bit-identical at any thread count).
  J.key("frames_per_mcycle")
      .value(Cycles ? double(Delivered) * 1e6 / double(Cycles) : 0.0);
  J.endObject();

  J.key("violations").beginArray();
  for (size_t I = 0; I != Report.Shards.size(); ++I) {
    const ShardStats &S = Report.Shards[I];
    if (S.MonitorOk)
      continue;
    J.beginObject();
    J.key("shard").value(uint64_t(I));
    J.key("violation_index").value(S.ViolationIndex);
    J.key("error").value(S.Error);
    J.endObject();
  }
  J.endArray();

  J.key("shards").beginArray();
  for (const ShardStats &S : Report.Shards) {
    J.beginObject();
    J.key("ok").value(S.Ok);
    J.key("monitor_ok").value(S.MonitorOk);
    J.key("ground_truth_ok").value(S.GroundTruthOk);
    J.key("cross_check_ok").value(S.CrossCheckOk);
    J.key("drained").value(S.Drained);
    J.key("frames_delivered").value(S.FramesDelivered);
    J.key("frames_accepted").value(S.FramesAccepted);
    J.key("valid_commands").value(S.ValidCommands);
    J.key("mmio_events").value(S.MmioEvents);
    J.key("monitor_events_seen").value(S.MonitorEventsSeen);
    J.key("light_transitions").value(S.LightTransitions);
    J.key("cycles").value(S.Cycles);
    J.key("retired").value(S.Retired);
    J.key("trace_hash").value(S.TraceHash);
    if (!S.Error.empty())
      J.key("error").value(S.Error);
    J.endObject();
  }
  J.endArray();

  J.endObject();
  return J.str();
}
