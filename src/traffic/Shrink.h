//===- traffic/Shrink.h - Counterexample minimization ----------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging (ddmin) over frame sequences: given a frame stream
/// that drives the system into a goodHlTrace violation, find a
/// 1-minimal subsequence that still does — removing any single frame
/// from the result makes the failure disappear. Soak failures surface
/// at scale (thousands of frames into a shard); the shrunk sequence is
/// what a human can actually debug, and it is written out as a
/// replayable pcap corpus file (traffic/Pcap.h) so the reproduction is
/// one CLI invocation.
///
/// The oracle is any deterministic predicate over a frame sequence; the
/// soak harness instantiates it with a single-shard run (runSoakShard)
/// under the same options that produced the failure — determinism of
/// the shards is exactly what makes the oracle's verdicts stable across
/// the shrink search.
///
//===----------------------------------------------------------------------===//

#ifndef B2_TRAFFIC_SHRINK_H
#define B2_TRAFFIC_SHRINK_H

#include "traffic/Soak.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace b2 {
namespace traffic {

/// Returns true iff \p Frames still triggers the failure being shrunk.
using ShrinkOracle =
    std::function<bool(const std::vector<devices::ScheduledFrame> &)>;

struct ShrinkResult {
  /// The minimized failing sequence (1-minimal with respect to frame
  /// removal).
  std::vector<devices::ScheduledFrame> Frames;
  uint64_t OracleRuns = 0; ///< How many times the oracle executed.
  /// Whether the input failed under the oracle at all; when false,
  /// Frames echoes the input unchanged.
  bool Reproduced = false;
};

/// Zeller/Hildebrandt ddmin over \p Failing. The oracle must return
/// true on \p Failing itself (checked; Reproduced reports the outcome).
ShrinkResult shrinkFrames(const std::vector<devices::ScheduledFrame> &Failing,
                          const ShrinkOracle &Oracle);

/// The soak-harness oracle: replays a candidate sequence through one
/// fresh shard under \p Options and reports whether the streaming
/// monitor fires. \p Prog must be the firmware the failing soak ran.
ShrinkOracle soakOracle(const compiler::CompiledProgram &Prog,
                        const SoakOptions &Options);

/// Convenience driver: shrinks \p Failing against the soak oracle and
/// fills in the violation index of the minimized run.
///
/// When \p Options.Checkpoint is set (and the schedule is backpressure),
/// the oracle is the checkpoint-tree oracle: the failing scenario is
/// replayed once to hand the tree over (Work.PrimeCycles), and every
/// ddmin probe then resumes from the deepest checkpoint of its shared
/// prefix. Work.SimulatedCycles counts only the probe phase — the
/// quantity a cold-replay shrinker pays in full — so it is the number
/// to compare against a cold run's oracle cycles.
struct ShrunkCounterexample {
  ShrinkResult Result;
  uint64_t ViolationIndex = 0; ///< Of the minimized run's monitor.

  /// Oracle work, both paths. Cold runs leave the checkpoint-only
  /// fields (Skipped/Resumed/Checkpoints/Prime*) zero.
  struct ShrinkWork {
    bool Checkpointed = false;    ///< Which oracle ran.
    uint64_t SimulatedCycles = 0; ///< Cycles the shrink phase executed.
    uint64_t SkippedCycles = 0;   ///< Cycles resumed from checkpoints.
    uint64_t ResumedRuns = 0;     ///< Probes resumed past boot.
    uint64_t Checkpoints = 0;     ///< Tree nodes created.
    uint64_t PrimeCycles = 0;     ///< Handoff replay (tree build).
  };
  ShrinkWork Work;
};
ShrunkCounterexample
shrinkSoakFailure(const compiler::CompiledProgram &Prog,
                  const std::vector<devices::ScheduledFrame> &Failing,
                  const SoakOptions &Options);

} // namespace traffic
} // namespace b2

#endif // B2_TRAFFIC_SHRINK_H
