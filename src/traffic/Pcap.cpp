//===- traffic/Pcap.cpp - Classic libpcap corpus files -----------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "traffic/Pcap.h"

#include "verify/FaultInjection.h"

#include <cstdio>

using namespace b2;
using namespace b2::traffic;

namespace {

void put32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(uint8_t(V));
  Out.push_back(uint8_t(V >> 8));
  Out.push_back(uint8_t(V >> 16));
  Out.push_back(uint8_t(V >> 24));
}

void put16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back(uint8_t(V));
  Out.push_back(uint8_t(V >> 8));
}

/// Cursor with optional byte-swapping (captures written big-endian).
struct Reader {
  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
  bool Swapped = false;

  bool has(size_t N) const { return Bytes.size() - Pos >= N; }

  uint32_t get32() {
    uint32_t V = uint32_t(Bytes[Pos]) | (uint32_t(Bytes[Pos + 1]) << 8) |
                 (uint32_t(Bytes[Pos + 2]) << 16) |
                 (uint32_t(Bytes[Pos + 3]) << 24);
    Pos += 4;
    if (Swapped)
      V = ((V & 0xFF) << 24) | ((V & 0xFF00) << 8) | ((V >> 8) & 0xFF00) |
          (V >> 24);
    return V;
  }

  uint16_t get16() {
    uint16_t V = uint16_t(Bytes[Pos]) | uint16_t(Bytes[Pos + 1]) << 8;
    Pos += 2;
    if (Swapped)
      V = uint16_t((V << 8) | (V >> 8));
    return V;
  }
};

} // namespace

std::vector<uint8_t>
b2::traffic::encodePcap(const std::vector<devices::ScheduledFrame> &Frames) {
  std::vector<uint8_t> Out;
  size_t Total = 24;
  for (const devices::ScheduledFrame &F : Frames)
    Total += 16 + F.Frame.size();
  Out.reserve(Total);

  put32(Out, pcap::MagicUsec);
  put16(Out, pcap::VersionMajor);
  put16(Out, pcap::VersionMinor);
  put32(Out, 0); // thiszone
  put32(Out, 0); // sigfigs
  put32(Out, pcap::SnapLen);
  put32(Out, pcap::LinkTypeEthernet);

  for (const devices::ScheduledFrame &F : Frames) {
    uint32_t Sec = uint32_t(F.AtOp / 1'000'000);
    if (F.Errored)
      Sec |= pcap::ErroredBit;
    put32(Out, Sec);
    put32(Out, uint32_t(F.AtOp % 1'000'000));
    uint32_t Len = uint32_t(F.Frame.size());
    // Seeded corpus bug for the adequacy campaign: long frames are
    // written one byte short, so a pcap round trip no longer preserves
    // the stream.
    uint32_t Incl = Len;
    if (fi::on(fi::Fault::TrafficPcapTruncateWrite) && Len > 64)
      Incl = Len - 1;
    put32(Out, Incl);
    put32(Out, Len);
    Out.insert(Out.end(), F.Frame.begin(), F.Frame.begin() + Incl);
  }
  return Out;
}

bool b2::traffic::decodePcap(const std::vector<uint8_t> &Bytes,
                             std::vector<devices::ScheduledFrame> &Out,
                             std::string &Error) {
  Reader R{Bytes};
  if (!R.has(24)) {
    Error = "pcap: file shorter than the 24-byte global header";
    return false;
  }
  uint32_t Magic = R.get32();
  if (Magic == pcap::MagicUsecSwapped) {
    R.Swapped = true;
  } else if (Magic != pcap::MagicUsec) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "pcap: bad magic 0x%08x", Magic);
    Error = Buf;
    return false;
  }
  uint16_t Major = R.get16();
  R.get16();   // minor: accept any
  R.get32();   // thiszone
  R.get32();   // sigfigs
  R.get32();   // snaplen
  uint32_t LinkType = R.get32();
  if (Major != pcap::VersionMajor) {
    Error = "pcap: unsupported major version " + std::to_string(Major);
    return false;
  }
  if (LinkType != pcap::LinkTypeEthernet) {
    Error = "pcap: unsupported link type " + std::to_string(LinkType) +
            " (want Ethernet)";
    return false;
  }

  std::vector<devices::ScheduledFrame> Frames;
  while (R.Pos != Bytes.size()) {
    if (!R.has(16)) {
      Error = "pcap: truncated record header at offset " +
              std::to_string(R.Pos);
      return false;
    }
    uint32_t Sec = R.get32();
    uint32_t Usec = R.get32();
    uint32_t Incl = R.get32();
    R.get32(); // orig_len: informational
    if (!R.has(Incl)) {
      Error = "pcap: record body truncated at offset " + std::to_string(R.Pos);
      return false;
    }
    devices::ScheduledFrame F;
    F.Errored = (Sec & pcap::ErroredBit) != 0;
    F.AtOp = uint64_t(Sec & ~pcap::ErroredBit) * 1'000'000 + Usec;
    F.Frame.assign(Bytes.begin() + R.Pos, Bytes.begin() + R.Pos + Incl);
    R.Pos += Incl;
    Frames.push_back(std::move(F));
  }
  Out = std::move(Frames);
  return true;
}

bool b2::traffic::writePcap(const std::string &Path,
                            const std::vector<devices::ScheduledFrame> &Frames,
                            std::string &Error) {
  std::vector<uint8_t> Bytes = encodePcap(Frames);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Error = "pcap: cannot open " + Path + " for writing";
    return false;
  }
  bool Ok = std::fwrite(Bytes.data(), 1, Bytes.size(), F) == Bytes.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok)
    Error = "pcap: short write to " + Path;
  return Ok;
}

bool b2::traffic::readPcap(const std::string &Path,
                           std::vector<devices::ScheduledFrame> &Out,
                           std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "pcap: cannot open " + Path;
    return false;
  }
  std::vector<uint8_t> Bytes;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) != 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  bool ReadOk = !std::ferror(F);
  std::fclose(F);
  if (!ReadOk) {
    Error = "pcap: read error on " + Path;
    return false;
  }
  return decodePcap(Bytes, Out, Error);
}
