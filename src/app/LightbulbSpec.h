//===- app/LightbulbSpec.h - goodHlTrace for the lightbulb -----*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application-level trace specification of section 3.1:
///
/// \code
///   goodHlTrace :=
///     BootSeq +++ ((EX b: bool, Recv b +++ LightbulbCmd b)
///                  ||| RecvInvalid ||| PollNone) ^*
/// \endcode
///
/// Every sub-specification is itself composed from SPI-transaction-level
/// trace predicates that mirror the drivers' MMIO footprints (the paper's
/// subspecifications are "defined similarly along with a simple (and lax)
/// specification of byte strings accepted as Ethernet and UDP packets").
/// Laxness is deliberate and mirrors the original: polling repetitions use
/// ^*, most register-read payloads are unconstrained, and only the bits
/// that decide observable actuation are pinned down. The load-bearing
/// property is structural: *the only alternative containing a GPIO store
/// is LightbulbCmd b, and it is preceded by a Recv b whose command byte
/// carries the same b* — which is exactly how the paper's theorem rules
/// out behavior-changing attacks (section 7.1.2).
///
/// The spec covers successful-boot executions; the driver's timeout error
/// paths never fire against the repository's device models (they are
/// exercised separately by driver-level unit tests).
///
//===----------------------------------------------------------------------===//

#ifndef B2_APP_LIGHTBULBSPEC_H
#define B2_APP_LIGHTBULBSPEC_H

#include "support/Word.h"
#include "tracespec/Spec.h"

#include <functional>

namespace b2 {
namespace app {

/// Predicate over one byte of a LAN9250 register value; null = any.
using BytePred = std::function<bool(uint8_t)>;

/// Trace of one `spi_write(B)` call: txdata busy-polls, then the store.
/// \p SendPred constrains the transmitted byte (null = any).
tracespec::Spec spiWriteSpec(BytePred SendPred);

/// Trace of one `spi_read()` call: rxdata empty-polls, then the data read.
tracespec::Spec spiReadSpec(BytePred RecvPred);

/// Trace of one `spi_xchg` call.
tracespec::Spec spiXchgSpec(BytePred SendPred, BytePred RecvPred);

/// Trace of `lan9250_readword(Reg)`; \p DataPreds constrain the four
/// received data bytes (index 0 = least significant; null entries = any).
tracespec::Spec lanReadwordSpec(Word Reg, const BytePred DataPreds[4]);

/// Trace of `lan9250_readword(Reg)` with unconstrained payload.
tracespec::Spec lanReadwordAnySpec(Word Reg);

/// Trace of `lan9250_readword(Reg)` whose payload equals \p Value.
tracespec::Spec lanReadwordExpectSpec(Word Reg, Word Value);

/// Trace of `lan9250_writeword(Reg, Value)`.
tracespec::Spec lanWritewordSpec(Word Reg, Word Value);

/// BootSeq: the LAN9250 bring-up incantations plus GPIO setup.
tracespec::Spec bootSeqSpec();

/// PollNone: RX_FIFO_INF reports no pending status word.
tracespec::Spec pollNoneSpec();

/// Recv b: a frame is drained whose command byte has low bit \p B.
tracespec::Spec recvSpec(bool B);

/// RecvInvalid: a frame is drained and ignored.
tracespec::Spec recvInvalidSpec();

/// LightbulbCmd b: the single GPIO actuation store.
tracespec::Spec lightbulbCmdSpec(bool B);

/// The top-level goodHlTrace.
tracespec::Spec goodHlTrace();

} // namespace app
} // namespace b2

#endif // B2_APP_LIGHTBULBSPEC_H
