//===- app/Firmware.cpp - The verified IoT lightbulb firmware ---------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "app/Firmware.h"

#include "bedrock2/Dsl.h"
#include "devices/Lan9250.h"
#include "devices/MemoryMap.h"
#include "devices/Net.h"

using namespace b2;
using namespace b2::app;
using namespace b2::bedrock2;
using namespace b2::bedrock2::dsl;
using namespace b2::devices;

namespace {

/// if (err == 0) { Body }  — the guarded-step idiom used throughout the
/// drivers so a failed step skips the rest of the transaction.
StmtPtr guarded(const V &Err, StmtPtr Body) {
  return ifThen(E(Err) == lit(0), std::move(Body));
}

/// spi_write(b) -> (err): poll the transmit-FIFO flag, then enqueue the
/// byte. With timeouts, gives up after SpiPatience polls.
Function makeSpiWrite(const FirmwareOptions &O) {
  V b("b"), err("err"), i("i"), busy("busy"), st("st");
  StmtPtr PollBody = block({
      mmioRead(st, lit(SpiTxData)),
      busy = E(st) >> lit(31),
      i = E(i) - lit(1),
  });
  E Cond = O.Timeouts ? (E(busy) & (lit(0) < i)) : E(busy);
  // With timeouts the poll loop carries the vcgen annotations: the flag
  // stays boolean, and the remaining patience is the decreasing measure
  // (this is how the paper gets total correctness per iteration).
  StmtPtr Poll = O.Timeouts
                     ? whileLoopAnnotated(Cond, E(busy) < lit(2), E(i),
                                          PollBody)
                     : whileLoop(Cond, PollBody);
  return fnContract("spi_write", {"b"}, {"err"},
                    /*Pre=*/E(b) < lit(256),
                    /*Post=*/E(err) < lit(2),
                    block({
                        i = lit(O.SpiPatience),
                        busy = lit(1),
                        Poll,
                        ifThenElse(busy, block({err = lit(1)}),
                                   block({
                                       mmioWrite(lit(SpiTxData), b),
                                       err = lit(0),
                                   })),
                    }));
}

/// spi_read() -> (b, err): poll the receive-FIFO flag, then dequeue.
Function makeSpiRead(const FirmwareOptions &O) {
  V b("b"), err("err"), i("i"), empty("empty"), v("v");
  StmtPtr PollBody = block({
      mmioRead(v, lit(SpiRxData)),
      empty = E(v) >> lit(31),
      i = E(i) - lit(1),
  });
  E Cond = O.Timeouts ? (E(empty) & (lit(0) < i)) : E(empty);
  StmtPtr Poll = O.Timeouts
                     ? whileLoopAnnotated(Cond, E(empty) < lit(2), E(i),
                                          PollBody)
                     : whileLoop(Cond, PollBody);
  return fnContract("spi_read", {}, {"b", "err"},
                    /*Pre=*/lit(1),
                    /*Post=*/(E(err) < lit(2)) & (E(b) < lit(256)),
                    block({
                        i = lit(O.SpiPatience),
                        empty = lit(1),
                        b = lit(0),
                        Poll,
                        ifThenElse(empty, block({err = lit(1)}),
                                   block({
                                       b = E(v) & lit(0xFF),
                                       err = lit(0),
                                   })),
                    }));
}

/// spi_xchg(b) -> (r, err): one full-duplex byte exchange.
Function makeSpiXchg() {
  V b("b"), r("r"), err("err");
  return fn("spi_xchg", {"b"}, {"r", "err"},
            block({
                r = lit(0),
                call({"err"}, "spi_write", {b}),
                guarded(err, call({"r", "err"}, "spi_read", {})),
            }));
}

/// One guarded spi_xchg whose result byte is discarded.
StmtPtr xchgSend(const V &Err, E Byte) {
  return guarded(Err, call({"junk", "err"}, "spi_xchg", {Byte}));
}

/// One guarded spi_xchg whose result byte is kept in \p Dst.
StmtPtr xchgRecv(const V &Err, const V &Dst, E Byte) {
  return guarded(Err, call({Dst.Name, "err"}, "spi_xchg", {Byte}));
}

/// lan9250_readword(addr) -> (v, err): SPI FAST READ of one register.
Function makeLanReadword(const FirmwareOptions &O) {
  V addr("addr"), v("v"), err("err");
  V b0("b0"), b1("b1"), b2("b2"), b3("b3");

  std::vector<StmtPtr> Body;
  Body.push_back(mmioWrite(lit(SpiCsMode), lit(SpiCsModeHold)));
  Body.push_back(v = lit(0));
  Body.push_back(err = lit(0));

  if (!O.SpiPipelining) {
    // The verified system's transaction: strictly interleaved one-byte
    // writes and reads ("the simplest specification we could come up
    // with", section 7.2.1).
    Body.push_back(xchgSend(err, lit(0x0B)));
    Body.push_back(xchgSend(err, (E(addr) >> lit(8)) & lit(0xFF)));
    Body.push_back(xchgSend(err, E(addr) & lit(0xFF)));
    Body.push_back(xchgSend(err, lit(0))); // FAST READ dummy byte.
    Body.push_back(xchgRecv(err, b0, lit(0)));
    Body.push_back(xchgRecv(err, b1, lit(0)));
    Body.push_back(xchgRecv(err, b2, lit(0)));
    Body.push_back(xchgRecv(err, b3, lit(0)));
  } else {
    // FE310-style pipelining: fill the transmit FIFO with the 4 header
    // bytes, drain the 4 junk responses, then pipeline the 4 data-byte
    // exchanges the same way. Requires FIFO depth >= 4.
    auto Push = [&](E Byte) {
      Body.push_back(guarded(err, call({"err"}, "spi_write", {Byte})));
    };
    auto Pull = [&](const V &Dst) {
      Body.push_back(guarded(err, call({Dst.Name, "err"}, "spi_read", {})));
    };
    V junk("junk");
    Push(lit(0x0B));
    Push((E(addr) >> lit(8)) & lit(0xFF));
    Push(E(addr) & lit(0xFF));
    Push(lit(0));
    Pull(junk);
    Pull(junk);
    Pull(junk);
    Pull(junk);
    Push(lit(0));
    Push(lit(0));
    Push(lit(0));
    Push(lit(0));
    Pull(b0);
    Pull(b1);
    Pull(b2);
    Pull(b3);
  }

  Body.push_back(guarded(err, block({
                             v = E(b0) | (E(b1) << lit(8)) |
                                 (E(b2) << lit(16)) | (E(b3) << lit(24)),
                         })));
  Body.push_back(mmioWrite(lit(SpiCsMode), lit(SpiCsModeAuto)));
  return fn("lan9250_readword", {"addr"}, {"v", "err"}, block(Body));
}

/// lan9250_writeword(addr, v) -> (err): SPI WRITE of one register.
Function makeLanWriteword() {
  V addr("addr"), v("v"), err("err");
  std::vector<StmtPtr> Body;
  Body.push_back(mmioWrite(lit(SpiCsMode), lit(SpiCsModeHold)));
  Body.push_back(err = lit(0));
  Body.push_back(xchgSend(err, lit(0x02)));
  Body.push_back(xchgSend(err, (E(addr) >> lit(8)) & lit(0xFF)));
  Body.push_back(xchgSend(err, E(addr) & lit(0xFF)));
  Body.push_back(xchgSend(err, E(v) & lit(0xFF)));
  Body.push_back(xchgSend(err, (E(v) >> lit(8)) & lit(0xFF)));
  Body.push_back(xchgSend(err, (E(v) >> lit(16)) & lit(0xFF)));
  Body.push_back(xchgSend(err, (E(v) >> lit(24)) & lit(0xFF)));
  Body.push_back(mmioWrite(lit(SpiCsMode), lit(SpiCsModeAuto)));
  return fn("lan9250_writeword", {"addr", "v"}, {"err"}, block(Body));
}

/// A bounded poll of `lan9250_readword(RegAddr)` until \p OkExpr (over
/// variable v) is nonzero. Leaves ok=1 on success, using rerr for the
/// transaction error.
StmtPtr pollRegister(const FirmwareOptions &O, Word RegAddr, E OkExpr) {
  V i("i"), ok("ok"), rerr("rerr");
  E Cond = O.Timeouts ? ((E(ok) == lit(0)) & (lit(0) < i))
                      : (E(ok) == lit(0));
  StmtPtr Body = block({
      call({"v", "rerr"}, "lan9250_readword", {lit(RegAddr)}),
      ok = OkExpr,
      ifThen(rerr, block({ok = lit(0)})),
      i = E(i) - lit(1),
  });
  return block({
      i = lit(O.InitPatience),
      ok = lit(0),
      O.Timeouts ? whileLoopAnnotated(Cond, E(ok) < lit(2), E(i), Body)
                 : whileLoop(Cond, Body),
  });
}

/// lan9250_init() -> (err): the boot sequence (BootSeq in the spec).
Function makeLanInit(const FirmwareOptions &O) {
  using namespace lan9250reg;
  V err("err"), ok("ok"), v("v");

  std::vector<StmtPtr> Body;
  // 1. Byte-order synchronization: BYTE_TEST reads 0x87654321.
  Body.push_back(pollRegister(O, ByteTest, E(v) == lit(ByteTestPattern)));
  Body.push_back(err = (E(ok) == lit(0)));

  // 2. Wait for HW_CFG.READY.
  Body.push_back(guarded(err, block({
                             pollRegister(O, HwCfg,
                                          (E(v) >> lit(27)) & lit(1)),
                             err = (E(ok) == lit(0)),
                         })));

  // 3. HW_CFG: set the must-be-one bit (device configuration).
  Body.push_back(guarded(err, call({"err"}, "lan9250_writeword",
                                   {lit(HwCfg), lit(HwCfgMbo)})));

  // 4. Enable the MAC receiver and transmitter through the indirect CSR
  //    interface, then wait for the command to complete.
  Body.push_back(guarded(err,
                         call({"err"}, "lan9250_writeword",
                              {lit(MacCsrData), lit(MacCrRxEn | MacCrTxEn)})));
  Body.push_back(guarded(err, call({"err"}, "lan9250_writeword",
                                   {lit(MacCsrCmd),
                                    lit(MacCsrBusy | MacCrIndex)})));
  Body.push_back(guarded(
      err, block({
               pollRegister(O, MacCsrCmd,
                            ((E(v) >> lit(31)) & lit(1)) == lit(0)),
               err = (E(ok) == lit(0)),
           })));

  // 5. Drive the lightbulb pin as an output.
  Body.push_back(guarded(
      err, mmioWrite(lit(GpioOutputEn), lit(Word(1) << LightbulbPin))));

  return fn("lan9250_init", {}, {"err"}, block(Body));
}

/// lightbulb_init() -> (err).
Function makeLightbulbInit() {
  return fn("lightbulb_init", {}, {"err"},
            block({call({"err"}, "lan9250_init", {})}));
}

/// lightbulb_loop() -> (err): one iteration of the event loop — poll for
/// a frame, drain it, validate it, and actuate the lightbulb.
Function makeLightbulbLoop(const FirmwareOptions &O) {
  using namespace lan9250reg;
  V err("err"), buf("buf"), inf("inf"), e("e"), statuses("statuses");
  V sts("sts"), len("len"), errbit("errbit"), numwords("numwords");
  V okstore("okstore"), i("i"), w("w"), e3("e3"), eacc("eacc");
  V ethertype("ethertype"), ipvihl("ipvihl"), proto("proto"), cmd("cmd");

  // The receive loop. The correct version bounds the copy by the *word*
  // count and only stores when the length fits the buffer; the bug
  // variant reproduces the paper's prototype overflow by looping over the
  // *byte* count and storing unconditionally (section 3: the "confusing a
  // word count for a byte count" incident).
  StmtPtr StoreStmt =
      O.BufferOverrunBug
          ? store4(E(buf) + (E(i) << lit(2)), w)
          : ifThen(okstore, store4(E(buf) + (E(i) << lit(2)), w));
  E CopyBound = O.BufferOverrunBug ? E(len) : E(numwords);
  StmtPtr DrainLoop = whileLoopAnnotated(
      E(i) < CopyBound, /*Invariant=*/lit(1) - (CopyBound < i),
      /*Measure=*/CopyBound - i,
      block({
          call({"w", "e3"}, "lan9250_readword", {lit(RxDataFifo)}),
          StoreStmt,
          eacc = E(eacc) | e3,
          i = E(i) + lit(1),
      }));

  // Frame validation + actuation (only when the drain was clean).
  StmtPtr Actuate = block({
      ethertype = (load1(E(buf) + lit(12)) << lit(8)) |
                  load1(E(buf) + lit(13)),
      ipvihl = load1(E(buf) + lit(14)),
      proto = load1(E(buf) + lit(23)),
      ifThen((E(ethertype) == lit(0x0800)) & (E(ipvihl) == lit(0x45)) &
                 (E(proto) == lit(17)),
             block({
                 cmd = load1(E(buf) + lit(devices::frame::CmdOffset)),
                 mmioWrite(lit(GpioOutputVal),
                           (E(cmd) & lit(1)) << lit(LightbulbPin)),
             })),
  });

  StmtPtr HandleFrame = block({
      call({"sts", "e"}, "lan9250_readword", {lit(RxStatusFifo)}),
      ifThenElse(e, block({err = lit(1)}),
                 block({
                     len = (E(sts) >> lit(16)) & lit(0x3FFF),
                     errbit = (E(sts) >> lit(15)) & lit(1),
                     numwords = (E(len) + lit(3)) >> lit(2),
                     okstore = (lit(MinAcceptedLen - 1) < len) &
                               (E(len) < lit(MaxAcceptedLen + 1)),
                     i = lit(0),
                     eacc = lit(0),
                     DrainLoop,
                     ifThen(E(okstore) & (E(errbit) == lit(0)) &
                                (E(eacc) == lit(0)),
                            Actuate),
                 })),
  });

  StmtPtr Poll = block({
      call({"inf", "e"}, "lan9250_readword", {lit(RxFifoInf)}),
      ifThenElse(e, block({err = lit(1)}),
                 block({
                     statuses = (E(inf) >> lit(16)) & lit(0xFF),
                     ifThen(E(statuses) != lit(0), HandleFrame),
                 })),
  });

  return fnContract("lightbulb_loop", {}, {"err"},
                    /*Pre=*/lit(1), /*Post=*/E(err) < lit(2),
                    block({
                        err = lit(0),
                        stackalloc(buf, RxBufferBytes, Poll),
                    }));
}

} // namespace

Program b2::app::buildFirmware(const FirmwareOptions &Options) {
  Program P;
  P.add(makeSpiWrite(Options));
  P.add(makeSpiRead(Options));
  P.add(makeSpiXchg());
  P.add(makeLanReadword(Options));
  P.add(makeLanWriteword());
  P.add(makeLanInit(Options));
  P.add(makeLightbulbInit());
  P.add(makeLightbulbLoop(Options));
  return P;
}
