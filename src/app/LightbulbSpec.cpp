//===- app/LightbulbSpec.cpp - goodHlTrace for the lightbulb ----------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "app/LightbulbSpec.h"

#include "devices/Lan9250.h"
#include "devices/MemoryMap.h"
#include "devices/Net.h"
#include "support/Format.h"

using namespace b2;
using namespace b2::app;
using namespace b2::devices;
using namespace b2::devices::lan9250reg;
using namespace b2::tracespec;

namespace {

constexpr Word FlagBit = SpiFlagBit;

/// txdata read reporting "FIFO full".
Spec txBusy() {
  return Spec::sym("ld spi.txdata (busy)", [](const Event &E) {
    return !E.IsStore && E.Addr == SpiTxData && (E.Value & FlagBit) != 0;
  });
}

/// txdata read reporting "ready".
Spec txReady() {
  return Spec::sym("ld spi.txdata (ready)", [](const Event &E) {
    return !E.IsStore && E.Addr == SpiTxData && (E.Value & FlagBit) == 0;
  });
}

/// rxdata read reporting "empty".
Spec rxEmpty() {
  return Spec::sym("ld spi.rxdata (empty)", [](const Event &E) {
    return !E.IsStore && E.Addr == SpiRxData && (E.Value & FlagBit) != 0;
  });
}

/// rxdata read delivering a data byte satisfying \p P (null = any).
Spec rxData(BytePred P) {
  return Spec::sym("ld spi.rxdata (data)", [P](const Event &E) {
    if (E.IsStore || E.Addr != SpiRxData || (E.Value & FlagBit) != 0)
      return false;
    return !P || P(uint8_t(E.Value & 0xFF));
  });
}

/// txdata store of a byte satisfying \p P (null = any).
Spec txSend(BytePred P) {
  return Spec::sym("st spi.txdata", [P](const Event &E) {
    if (!E.IsStore || E.Addr != SpiTxData)
      return false;
    return !P || P(uint8_t(E.Value & 0xFF));
  });
}

BytePred eqByte(uint8_t B) {
  return [B](uint8_t V) { return V == B; };
}

Spec csHold() { return st("st spi.csmode (hold)", SpiCsMode, SpiCsModeHold); }
Spec csAuto() { return st("st spi.csmode (auto)", SpiCsMode, SpiCsModeAuto); }

} // namespace

Spec b2::app::spiWriteSpec(BytePred SendPred) {
  return Spec::star(txBusy()) + txReady() + txSend(std::move(SendPred));
}

Spec b2::app::spiReadSpec(BytePred RecvPred) {
  return Spec::star(rxEmpty()) + rxData(std::move(RecvPred));
}

Spec b2::app::spiXchgSpec(BytePred SendPred, BytePred RecvPred) {
  return spiWriteSpec(std::move(SendPred)) + spiReadSpec(std::move(RecvPred));
}

Spec b2::app::lanReadwordSpec(Word Reg, const BytePred DataPreds[4]) {
  Spec S = csHold();
  S = S + spiXchgSpec(eqByte(0x0B), nullptr);                  // FAST READ.
  S = S + spiXchgSpec(eqByte(uint8_t((Reg >> 8) & 0xFF)), nullptr);
  S = S + spiXchgSpec(eqByte(uint8_t(Reg & 0xFF)), nullptr);
  S = S + spiXchgSpec(eqByte(0x00), nullptr);                  // Dummy.
  for (unsigned I = 0; I != 4; ++I)
    S = S + spiXchgSpec(eqByte(0x00), DataPreds ? DataPreds[I] : nullptr);
  return S + csAuto();
}

Spec b2::app::lanReadwordAnySpec(Word Reg) {
  return lanReadwordSpec(Reg, nullptr);
}

Spec b2::app::lanReadwordExpectSpec(Word Reg, Word Value) {
  BytePred Preds[4];
  for (unsigned I = 0; I != 4; ++I)
    Preds[I] = eqByte(uint8_t((Value >> (8 * I)) & 0xFF));
  return lanReadwordSpec(Reg, Preds);
}

Spec b2::app::lanWritewordSpec(Word Reg, Word Value) {
  Spec S = csHold();
  S = S + spiXchgSpec(eqByte(0x02), nullptr); // WRITE command.
  S = S + spiXchgSpec(eqByte(uint8_t((Reg >> 8) & 0xFF)), nullptr);
  S = S + spiXchgSpec(eqByte(uint8_t(Reg & 0xFF)), nullptr);
  for (unsigned I = 0; I != 4; ++I)
    S = S + spiXchgSpec(eqByte(uint8_t((Value >> (8 * I)) & 0xFF)), nullptr);
  return S + csAuto();
}

Spec b2::app::bootSeqSpec() {
  // 1. Byte-order sync: reads of BYTE_TEST until the magic pattern.
  Spec S = Spec::star(lanReadwordAnySpec(ByteTest)) +
           lanReadwordExpectSpec(ByteTest, ByteTestPattern);

  // 2. HW_CFG ready poll: bit 27 = byte 3, bit 3.
  BytePred ReadyPreds[4] = {nullptr, nullptr, nullptr,
                            [](uint8_t B) { return (B & 0x08) != 0; }};
  S = S + Spec::star(lanReadwordAnySpec(HwCfg)) +
      lanReadwordSpec(HwCfg, ReadyPreds);

  // 3. Device configuration and MAC receive enable.
  S = S + lanWritewordSpec(HwCfg, HwCfgMbo);
  S = S + lanWritewordSpec(MacCsrData, MacCrRxEn | MacCrTxEn);
  S = S + lanWritewordSpec(MacCsrCmd, MacCsrBusy | MacCrIndex);

  // 4. MAC CSR completion poll: bit 31 = byte 3, bit 7, must clear.
  BytePred DonePreds[4] = {nullptr, nullptr, nullptr,
                           [](uint8_t B) { return (B & 0x80) == 0; }};
  S = S + Spec::star(lanReadwordAnySpec(MacCsrCmd)) +
      lanReadwordSpec(MacCsrCmd, DonePreds);

  // 5. GPIO: drive the lightbulb pin.
  S = S + st("st gpio.output_en (lightbulb)", GpioOutputEn,
             Word(1) << LightbulbPin);
  return S;
}

Spec b2::app::pollNoneSpec() {
  // RX_FIFO_INF byte 2 = pending status-word count; zero means no packet.
  BytePred NonePreds[4] = {nullptr, nullptr,
                           [](uint8_t B) { return B == 0; }, nullptr};
  return lanReadwordSpec(RxFifoInf, NonePreds);
}

namespace {

/// Shared prefix of Recv and RecvInvalid: a positive RX_FIFO_INF poll
/// followed by the status-word pop.
Spec recvPrefix() {
  BytePred SomePreds[4] = {nullptr, nullptr,
                           [](uint8_t B) { return B != 0; }, nullptr};
  return lanReadwordSpec(RxFifoInf, SomePreds) +
         lanReadwordAnySpec(RxStatusFifo);
}

} // namespace

Spec b2::app::recvSpec(bool B) {
  // The command byte is frame offset 42 = data word 10, byte lane 2. The
  // packet-content specification is deliberately lax (section 3.1): only
  // the bit that decides the actuation is constrained.
  Spec DataAny = lanReadwordAnySpec(RxDataFifo);
  BytePred CmdPreds[4] = {nullptr, nullptr,
                          [B](uint8_t V) { return (V & 1) == (B ? 1 : 0); },
                          nullptr};
  return recvPrefix() + Spec::repeat(DataAny, frame::CmdOffset / 4) +
         lanReadwordSpec(RxDataFifo, CmdPreds) + Spec::star(DataAny);
}

Spec b2::app::recvInvalidSpec() {
  return recvPrefix() + Spec::star(lanReadwordAnySpec(RxDataFifo));
}

Spec b2::app::lightbulbCmdSpec(bool B) {
  Word Value = B ? (Word(1) << LightbulbPin) : 0;
  return st(B ? "st gpio.output_val (on)" : "st gpio.output_val (off)",
            GpioOutputVal, Value);
}

Spec b2::app::goodHlTrace() {
  Spec Iteration =
      exBool([](bool B) { return recvSpec(B) + lightbulbCmdSpec(B); }) |
      recvInvalidSpec() | pollNoneSpec();
  return bootSeqSpec() + Spec::star(Iteration);
}
