//===- app/Firmware.h - The verified IoT lightbulb firmware ----*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Bedrock2 source of the lightbulb demo (section 3): "three Bedrock2
/// source files: SPI, the driver used to communicate with the network
/// interface card; LAN9250, the Ethernet device driver; and lightbulb, an
/// infinite loop that polls the network card for packets, processes them,
/// and turns the lightbulb on or off depending on their content."
///
/// The firmware is built with the DSL of bedrock2/Dsl.h. Functions:
///
///   spi_write(b) -> (err)            poll txdata, then send one byte
///   spi_read()   -> (b, err)         poll rxdata, then receive one byte
///   spi_xchg(b)  -> (r, err)         full-duplex byte exchange
///   lan9250_readword(addr) -> (v, err)
///   lan9250_writeword(addr, v) -> (err)
///   lan9250_init() -> (err)          the BootSeq: byte-order sync, HW_CFG
///                                    ready, MBO, MAC RX enable, GPIO setup
///   lightbulb_init() -> (err)        top-level init()
///   lightbulb_loop() -> (err)        one event-loop iteration
///
/// All polling loops carry timeout counters — the paper added these "when
/// setting up to prove total correctness for each iteration of the
/// top-level event loop" (section 7.2.1) and measured them as a 1.2x
/// slowdown; buildFirmware can omit them to reproduce the baseline.
///
//===----------------------------------------------------------------------===//

#ifndef B2_APP_FIRMWARE_H
#define B2_APP_FIRMWARE_H

#include "bedrock2/Ast.h"
#include "support/Word.h"

namespace b2 {
namespace app {

/// Firmware build options (the §7.2.1 ablation axes plus the historical
/// bug).
struct FirmwareOptions {
  /// Polling loops give up after a bounded number of attempts (the
  /// verified system's behavior). When false, loops poll forever, like
  /// the paper's initial unverified prototype.
  bool Timeouts = true;

  /// Exploit SPI hardware FIFO pipelining: within each LAN9250
  /// transaction, write several bytes into the transmit FIFO before
  /// draining the receive FIFO (the FE310 trick worth 1.4x in the paper).
  /// Requires an SPI with FifoDepth >= 4; the verified configuration
  /// keeps this off.
  bool SpiPipelining = false;

  /// Reintroduce the word-count/byte-count confusion of the paper's
  /// initial prototype (section 3): the receive loop bounds the copy by
  /// the *byte* count while storing *words*, overrunning the packet
  /// buffer for large frames. For regression demonstrations only.
  bool BufferOverrunBug = false;

  /// Polling budget for each SPI flag loop (when Timeouts is set).
  Word SpiPatience = 1024;
  /// Polling budget for LAN9250 bring-up loops.
  Word InitPatience = 64;
};

/// Builds the firmware as a Bedrock2 program. Entry functions:
/// "lightbulb_init" and "lightbulb_loop" (use compiler::Entry::eventLoop).
bedrock2::Program buildFirmware(const FirmwareOptions &Options = {});

/// The receive buffer size in bytes (stack-allocated per iteration).
constexpr Word RxBufferBytes = 1536;

/// Frame-length window accepted as potentially valid: greater than the
/// command byte offset and at most the buffer size.
constexpr Word MinAcceptedLen = 43;
constexpr Word MaxAcceptedLen = RxBufferBytes;

} // namespace app
} // namespace b2

#endif // B2_APP_FIRMWARE_H
