//===- compiler/Passes.h - Optional optimization passes --------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optimizations that the paper's compiler deliberately lacks: "Our
/// compiler does not do constant propagation, function inlining, or
/// exploit caller-saved registers, whereas gcc -O3 inlines the SPI driver
/// function call in the innermost loop and compiles it to two
/// instructions" (section 7.2.1). The repository's optimizing mode
/// implements exactly those (plus dead-code elimination to clean up after
/// the first two), serving as the gcc -O3 stand-in for the compiler-factor
/// benchmark. Caller-saved register use lives in RegAllocOptions.
///
//===----------------------------------------------------------------------===//

#ifndef B2_COMPILER_PASSES_H
#define B2_COMPILER_PASSES_H

#include "bedrock2/Ast.h"
#include "compiler/FlatImp.h"

namespace b2 {
namespace compiler {

/// AST-level inlining: calls to functions whose flattened size is at most
/// \p Threshold statements are replaced by the renamed callee body.
/// Requires an acyclic call graph (checked by the driver). Iterates until
/// no eligible call remains.
bedrock2::Program inlineCalls(const bedrock2::Program &P, unsigned Threshold);

/// Constant propagation and folding over FlatImp: forward dataflow within
/// each function, conservative at control-flow joins (intersection) and
/// across loop bodies (invalidation). Folds Const-operand Ops into OpImm
/// or Const statements.
FlatFunction constantPropagation(const FlatFunction &F);

/// Dead-code elimination over FlatImp: removes assignments whose
/// destinations are never observed (backward liveness; loop bodies iterate
/// to a fixpoint). Calls, interactions, stores, and stackallocs are never
/// removed.
FlatFunction deadCodeElim(const FlatFunction &F);

/// Statement count of a flattened body (inlining heuristic, stats).
unsigned flatSize(const FStmt &S);

} // namespace compiler
} // namespace b2

#endif // B2_COMPILER_PASSES_H
