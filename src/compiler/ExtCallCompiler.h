//===- compiler/ExtCallCompiler.h - External-calls compiler ----*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Our compiler pipeline is parameterized over an external-calls
/// compiler, which defines how to implement each call with machine code.
/// In the lightbulb example, it simply translates MMIOREAD and MMIOWRITE
/// calls to lw and sw instructions" (section 6.3). This header defines the
/// parameter and that instance.
///
/// Contract (the compiler invariant's external-invariant clause, section
/// 6.3): emitted code receives its arguments in a0..a(n-1), must deliver
/// results in a0..a(m-1), may clobber only a-registers and the scratch
/// registers t0..t2, and must not access memory below the MMIO range —
/// in particular it must not touch the stack or application data.
///
//===----------------------------------------------------------------------===//

#ifndef B2_COMPILER_EXTCALLCOMPILER_H
#define B2_COMPILER_EXTCALLCOMPILER_H

#include "compiler/Asm.h"

#include <string>

namespace b2 {
namespace compiler {

/// The external-calls compiler parameter.
class ExtCallCompiler {
public:
  virtual ~ExtCallCompiler();

  /// Emits machine code for external procedure \p Action with \p NumArgs
  /// arguments in a0.. and \p NumRets expected results in a0... Returns
  /// false (setting \p Error) for unsupported actions or arities.
  virtual bool emit(Asm &A, const std::string &Action, unsigned NumArgs,
                    unsigned NumRets, std::string &Error) = 0;
};

/// The lightbulb platform's instance: MMIOREAD(addr) -> lw, and
/// MMIOWRITE(addr, value) -> sw.
class MmioExtCallCompiler final : public ExtCallCompiler {
public:
  bool emit(Asm &A, const std::string &Action, unsigned NumArgs,
            unsigned NumRets, std::string &Error) override;
};

} // namespace compiler
} // namespace b2

#endif // B2_COMPILER_EXTCALLCOMPILER_H
