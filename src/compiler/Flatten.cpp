//===- compiler/Flatten.cpp - Flattening phase -------------------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "compiler/Flatten.h"

#include <cassert>
#include <unordered_map>

using namespace b2;
using namespace b2::bedrock2;
using namespace b2::compiler;

namespace {

class FunctionFlattener {
public:
  explicit FunctionFlattener(const Function &F) : Src(F) {}

  FlatFunction run() {
    FlatFunction Out;
    Out.Name = Src.Name;
    for (const std::string &P : Src.Params)
      Out.Params.push_back(varFor(P));
    FStmtPtr Body = flattenStmt(*Src.Body);
    for (const std::string &R : Src.Rets)
      Out.Rets.push_back(varFor(R));
    Out.Body = Body;
    Out.NumVars = NextVar;
    Out.VarNames = Names;
    return Out;
  }

private:
  const Function &Src;
  std::unordered_map<std::string, FVar> VarIds;
  std::vector<std::string> Names;
  FVar NextVar = 0;

  FVar fresh(const std::string &Hint) {
    FVar Id = NextVar++;
    Names.push_back(Hint);
    return Id;
  }

  FVar varFor(const std::string &Name) {
    auto It = VarIds.find(Name);
    if (It != VarIds.end())
      return It->second;
    FVar Id = fresh(Name);
    VarIds.emplace(Name, Id);
    return Id;
  }

  /// Flattens \p E, emitting prep statements into \p Pre and returning the
  /// variable holding the value.
  FVar flattenExpr(const Expr &E, std::vector<FStmtPtr> &Pre) {
    switch (E.K) {
    case Expr::Kind::Literal: {
      FVar T = fresh("");
      Pre.push_back(FStmt::constant(T, E.Lit));
      return T;
    }
    case Expr::Kind::Var:
      return varFor(E.Name);
    case Expr::Kind::Load: {
      FVar A = flattenExpr(*E.A, Pre);
      FVar T = fresh("");
      Pre.push_back(FStmt::load(T, E.Size, A));
      return T;
    }
    case Expr::Kind::Op: {
      FVar A = flattenExpr(*E.A, Pre);
      FVar B = flattenExpr(*E.B, Pre);
      FVar T = fresh("");
      Pre.push_back(FStmt::op(T, E.Op, A, B));
      return T;
    }
    }
    assert(false && "unreachable: exhaustive expression kinds");
    return 0;
  }

  FStmtPtr flattenStmt(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Skip:
      return FStmt::skip();
    case Stmt::Kind::Set: {
      std::vector<FStmtPtr> Pre;
      FVar V = flattenExpr(*S.Value, Pre);
      Pre.push_back(FStmt::copy(varFor(S.Var), V));
      return seqAll(Pre);
    }
    case Stmt::Kind::Store: {
      std::vector<FStmtPtr> Pre;
      FVar A = flattenExpr(*S.Addr, Pre);
      FVar V = flattenExpr(*S.Value, Pre);
      Pre.push_back(FStmt::store(S.Size, A, V));
      return seqAll(Pre);
    }
    case Stmt::Kind::If: {
      std::vector<FStmtPtr> Pre;
      FVar C = flattenExpr(*S.Cond, Pre);
      FStmtPtr Then = flattenStmt(*S.S1);
      FStmtPtr Else = flattenStmt(*S.S2);
      Pre.push_back(FStmt::ifThenElse(C, Then, Else));
      return seqAll(Pre);
    }
    case Stmt::Kind::While: {
      // The condition is re-evaluated before every iteration; its prep
      // statements become the loop's CondPre block.
      std::vector<FStmtPtr> Pre;
      FVar C = flattenExpr(*S.Cond, Pre);
      FStmtPtr CondPre = seqAll(Pre);
      FStmtPtr Body = flattenStmt(*S.S1);
      return FStmt::whileLoop(CondPre, C, Body);
    }
    case Stmt::Kind::Seq:
      return FStmt::seq(flattenStmt(*S.S1), flattenStmt(*S.S2));
    case Stmt::Kind::Call:
    case Stmt::Kind::Interact: {
      std::vector<FStmtPtr> Pre;
      std::vector<FVar> Args;
      Args.reserve(S.Args.size());
      for (const ExprPtr &A : S.Args)
        Args.push_back(flattenExpr(*A, Pre));
      std::vector<FVar> Dsts;
      Dsts.reserve(S.Dsts.size());
      for (const std::string &D : S.Dsts)
        Dsts.push_back(varFor(D));
      if (S.K == Stmt::Kind::Call)
        Pre.push_back(FStmt::call(std::move(Dsts), S.Callee, std::move(Args)));
      else
        Pre.push_back(
            FStmt::interact(std::move(Dsts), S.Callee, std::move(Args)));
      return seqAll(Pre);
    }
    case Stmt::Kind::Stackalloc:
      return FStmt::stackalloc(varFor(S.Var), S.NBytes, flattenStmt(*S.S1));
    }
    assert(false && "unreachable: exhaustive statement kinds");
    return FStmt::skip();
  }

  static FStmtPtr seqAll(const std::vector<FStmtPtr> &Stmts) {
    if (Stmts.empty())
      return FStmt::skip();
    FStmtPtr Out = Stmts.back();
    for (size_t I = Stmts.size() - 1; I-- > 0;)
      Out = FStmt::seq(Stmts[I], Out);
    return Out;
  }
};

} // namespace

FlatFunction b2::compiler::flattenFunction(const Function &F) {
  return FunctionFlattener(F).run();
}

FlattenResult b2::compiler::flatten(const Program &P) {
  FlattenResult R;
  FlatProgram Out;
  for (const auto &[Name, F] : P.Functions) {
    if (!F.Body) {
      R.Error = "function '" + Name + "' has no body";
      return R;
    }
    Out.Functions.push_back(flattenFunction(F));
  }
  R.Prog = std::move(Out);
  return R;
}
