//===- compiler/Codegen.cpp - RISC-V backend ----------------------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "compiler/Codegen.h"

#include "support/Word.h"
#include "verify/FaultInjection.h"

#include <cassert>

using namespace b2;
using namespace b2::bedrock2;
using namespace b2::compiler;
using namespace b2::isa;

ExtCallCompiler::~ExtCallCompiler() = default;

bool MmioExtCallCompiler::emit(Asm &A, const std::string &Action,
                               unsigned NumArgs, unsigned NumRets,
                               std::string &Error) {
  if (Action == "MMIOREAD") {
    if (NumArgs != 1 || NumRets != 1) {
      Error = "MMIOREAD must have 1 argument and 1 result";
      return false;
    }
    A.emit(lw(A0, A0, 0));
    return true;
  }
  if (Action == "MMIOWRITE") {
    if (NumArgs != 2 || NumRets != 0) {
      Error = "MMIOWRITE must have 2 arguments and no result";
      return false;
    }
    A.emit(sw(A0, A1, 0));
    return true;
  }
  Error = "external-calls compiler does not support '" + Action + "'";
  return false;
}

namespace {

/// Per-function code generator.
class FunctionCodegen {
public:
  FunctionCodegen(Asm &A, const FlatFunction &F, const Allocation &Alloc,
                  const std::map<std::string, Label> &FunctionLabels,
                  ExtCallCompiler &ExtCompiler)
      : A(A), F(F), Alloc(Alloc), FunctionLabels(FunctionLabels),
        ExtCompiler(ExtCompiler) {}

  std::optional<FunctionCode> run(std::string &Error) {
    computeAllocaOffsets(*F.Body);
    Word SaveBytes = Word(1 + Alloc.UsedCalleeSaved.size()) * 4;
    SpillBase = AllocaBytes;
    SaveBase = AllocaBytes + Word(Alloc.NumSlots) * 4;
    FrameBytes = (SaveBase + SaveBytes + 15) & ~Word(15);

    FunctionCode Out;
    Out.Name = F.Name;
    Out.FrameBytes = FrameBytes;
    Out.Entry = FunctionLabels.at(F.Name);

    A.bind(Out.Entry);
    emitPrologue();
    if (!genStmt(*F.Body, Error))
      return std::nullopt;
    if (!emitEpilogue(Error))
      return std::nullopt;
    Out.Callees = Callees;
    return Out;
  }

private:
  Asm &A;
  const FlatFunction &F;
  const Allocation &Alloc;
  const std::map<std::string, Label> &FunctionLabels;
  ExtCallCompiler &ExtCompiler;
  Word AllocaBytes = 0;
  Word SpillBase = 0;
  Word SaveBase = 0;
  Word FrameBytes = 0;
  std::map<const FStmt *, Word> AllocaOffset;
  std::vector<std::string> Callees;

  void computeAllocaOffsets(const FStmt &S) {
    switch (S.K) {
    case FStmt::Kind::Stackalloc:
      AllocaOffset[&S] = AllocaBytes;
      AllocaBytes += S.NBytes;
      computeAllocaOffsets(*S.S1);
      return;
    case FStmt::Kind::If:
      computeAllocaOffsets(*S.S1);
      computeAllocaOffsets(*S.S2);
      return;
    case FStmt::Kind::While:
      computeAllocaOffsets(*S.CondPre);
      computeAllocaOffsets(*S.S1);
      return;
    case FStmt::Kind::Seq:
      computeAllocaOffsets(*S.S1);
      computeAllocaOffsets(*S.S2);
      return;
    default:
      return;
    }
  }

  // -- sp-relative access helpers ------------------------------------------

  /// Emits `Dst = sp + Offset`.
  void emitSpPlus(Reg Dst, Word Offset) {
    if (support::fitsSigned(SWord(Offset), 12)) {
      A.emit(addi(Dst, SP, SWord(Offset)));
      return;
    }
    A.emitLoadImm(Dst, Offset);
    A.emit(mkR(Opcode::Add, Dst, Dst, SP));
  }

  void emitFrameLoad(Reg Dst, Word Offset) {
    if (support::fitsSigned(SWord(Offset), 12)) {
      A.emit(lw(Dst, SP, SWord(Offset)));
      return;
    }
    // The destination doubles as the address scratch, so no other
    // register is disturbed (important when both operands are spilled).
    emitSpPlus(Dst, Offset);
    A.emit(lw(Dst, Dst, 0));
  }

  void emitFrameStore(Reg Src, Word Offset, Reg AddrScratch) {
    assert(Src != AddrScratch && "store scratch conflict");
    if (support::fitsSigned(SWord(Offset), 12)) {
      A.emit(sw(SP, Src, SWord(Offset)));
      return;
    }
    emitSpPlus(AddrScratch, Offset);
    A.emit(sw(AddrScratch, Src, 0));
  }

  Word slotOffset(unsigned Slot) const { return SpillBase + Word(Slot) * 4; }

  // -- Variable access ---------------------------------------------------------

  /// Materializes the value of \p V into a register: its home register,
  /// or \p Scratch for spilled variables.
  Reg useVar(FVar V, Reg Scratch) {
    const Location &L = Alloc.VarLoc[V];
    if (L.K == Location::Kind::Register)
      return L.R;
    emitFrameLoad(Scratch, slotOffset(L.Slot));
    return Scratch;
  }

  /// Register into which the value of \p V should be computed.
  Reg defTarget(FVar V, Reg Scratch) {
    const Location &L = Alloc.VarLoc[V];
    return L.K == Location::Kind::Register ? L.R : Scratch;
  }

  /// Completes a definition computed into \p Src.
  void defCommit(FVar V, Reg Src) {
    const Location &L = Alloc.VarLoc[V];
    if (L.K == Location::Kind::Register) {
      if (L.R != Src)
        A.emit(addi(L.R, Src, 0));
      return;
    }
    Reg AddrScratch = Src == T2 ? T1 : T2;
    emitFrameStore(Src, slotOffset(L.Slot), AddrScratch);
  }

  // -- Statement generation -----------------------------------------------------

  bool genStmt(const FStmt &S, std::string &Error) {
    switch (S.K) {
    case FStmt::Kind::Skip:
      return true;
    case FStmt::Kind::Const: {
      Reg Rd = defTarget(S.Dst, T2);
      A.emitLoadImm(Rd, S.Imm);
      defCommit(S.Dst, Rd);
      return true;
    }
    case FStmt::Kind::Copy: {
      Reg Rs = useVar(S.A, T0);
      defCommit(S.Dst, Rs);
      return true;
    }
    case FStmt::Kind::Op: {
      Reg Ra = useVar(S.A, T0);
      Reg Rb = useVar(S.B, T1);
      Reg Rd = defTarget(S.Dst, T2);
      genOp(S.Op, Rd, Ra, Rb);
      defCommit(S.Dst, Rd);
      return true;
    }
    case FStmt::Kind::OpImm: {
      Reg Ra = useVar(S.A, T0);
      Reg Rd = defTarget(S.Dst, T2);
      genOpImm(S.Op, Rd, Ra, S.Imm);
      defCommit(S.Dst, Rd);
      return true;
    }
    case FStmt::Kind::Load: {
      Reg Ra = useVar(S.A, T0);
      Reg Rd = defTarget(S.Dst, T2);
      Opcode Op = S.Size == 4   ? Opcode::Lw
                  : S.Size == 2 ? Opcode::Lhu
                                : Opcode::Lbu;
      if (Op == Opcode::Lbu && fi::on(fi::Fault::CompilerLoadNoZeroExtend))
        Op = Opcode::Lb;
      A.emit(mkI(Op, Rd, Ra, 0));
      defCommit(S.Dst, Rd);
      return true;
    }
    case FStmt::Kind::Store: {
      Reg Ra = useVar(S.A, T0);
      Reg Rb = useVar(S.B, T1);
      Opcode Op = S.Size == 4   ? Opcode::Sw
                  : S.Size == 2 ? Opcode::Sh
                                : Opcode::Sb;
      A.emit(mkS(Op, Ra, Rb, 0));
      return true;
    }
    case FStmt::Kind::If: {
      Reg Rc = useVar(S.CondVar, T0);
      Label ElseL = A.newLabel();
      Label EndL = A.newLabel();
      A.emitBranch(Opcode::Beq, Rc, Zero, ElseL);
      if (!genStmt(*S.S1, Error))
        return false;
      A.emitJal(Zero, EndL);
      A.bind(ElseL);
      if (!genStmt(*S.S2, Error))
        return false;
      A.bind(EndL);
      return true;
    }
    case FStmt::Kind::While: {
      Label HeadL = A.newLabel();
      Label ExitL = A.newLabel();
      A.bind(HeadL);
      if (!genStmt(*S.CondPre, Error))
        return false;
      Reg Rc = useVar(S.CondVar, T0);
      A.emitBranch(Opcode::Beq, Rc, Zero, ExitL);
      if (!genStmt(*S.S1, Error))
        return false;
      A.emitJal(Zero, HeadL);
      A.bind(ExitL);
      return true;
    }
    case FStmt::Kind::Seq:
      return genStmt(*S.S1, Error) && genStmt(*S.S2, Error);
    case FStmt::Kind::Call: {
      if (S.Args.size() > 8 || S.Dsts.size() > 8) {
        Error = "call to '" + S.Callee + "' exceeds 8 arguments/results";
        return false;
      }
      auto It = FunctionLabels.find(S.Callee);
      if (It == FunctionLabels.end()) {
        Error = "call to undefined function '" + S.Callee + "'";
        return false;
      }
      for (size_t I = 0; I != S.Args.size(); ++I) {
        Reg Rs = useVar(S.Args[I], T0);
        A.emit(addi(Reg(A0 + I), Rs, 0));
      }
      A.emitJal(RA, It->second);
      Callees.push_back(S.Callee);
      for (size_t I = 0; I != S.Dsts.size(); ++I)
        defCommit(S.Dsts[I], Reg(A0 + I));
      return true;
    }
    case FStmt::Kind::Interact: {
      if (S.Args.size() > 8 || S.Dsts.size() > 8) {
        Error = "external call '" + S.Callee + "' exceeds 8 args/results";
        return false;
      }
      for (size_t I = 0; I != S.Args.size(); ++I) {
        Reg Rs = useVar(S.Args[I], T0);
        A.emit(addi(Reg(A0 + I), Rs, 0));
      }
      if (!ExtCompiler.emit(A, S.Callee, unsigned(S.Args.size()),
                            unsigned(S.Dsts.size()), Error))
        return false;
      for (size_t I = 0; I != S.Dsts.size(); ++I)
        defCommit(S.Dsts[I], Reg(A0 + I));
      return true;
    }
    case FStmt::Kind::Stackalloc: {
      Reg Rd = defTarget(S.Dst, T2);
      emitSpPlus(Rd, AllocaOffset.at(&S));
      // This dialect defines stackalloc memory as zero-initialized (the
      // checking interpreter hands out fresh zeroed bytes, so the machine
      // level must match). Emit a descending zero-fill loop.
      if (!fi::on(fi::Fault::CompilerStackallocNoZero)) {
        A.emitLoadImm(T0, S.NBytes);
        Label ZeroLoop = A.newLabel();
        A.bind(ZeroLoop);
        A.emit(addi(T0, T0, -4));
        A.emit(mkR(Opcode::Add, T1, Rd, T0));
        A.emit(sw(T1, Zero, 0));
        A.emitBranch(Opcode::Bne, T0, Zero, ZeroLoop);
      }
      defCommit(S.Dst, Rd);
      return genStmt(*S.S1, Error);
    }
    }
    assert(false && "unreachable: exhaustive FlatImp kinds");
    return false;
  }

  void genOp(BinOp Op, Reg Rd, Reg Ra, Reg Rb) {
    switch (Op) {
    case BinOp::Add:
      A.emit(mkR(Opcode::Add, Rd, Ra, Rb));
      return;
    case BinOp::Sub:
      A.emit(mkR(Opcode::Sub, Rd, Ra, Rb));
      return;
    case BinOp::Mul:
      A.emit(mkR(Opcode::Mul, Rd, Ra, Rb));
      return;
    case BinOp::MulHuu:
      A.emit(mkR(Opcode::Mulhu, Rd, Ra, Rb));
      return;
    case BinOp::Divu:
      A.emit(mkR(Opcode::Divu, Rd, Ra, Rb));
      return;
    case BinOp::Remu:
      A.emit(mkR(Opcode::Remu, Rd, Ra, Rb));
      return;
    case BinOp::And:
      A.emit(mkR(Opcode::And, Rd, Ra, Rb));
      return;
    case BinOp::Or:
      A.emit(mkR(Opcode::Or, Rd, Ra, Rb));
      return;
    case BinOp::Xor:
      A.emit(mkR(Opcode::Xor, Rd, Ra, Rb));
      return;
    case BinOp::Sru:
      A.emit(mkR(Opcode::Srl, Rd, Ra, Rb));
      return;
    case BinOp::Slu:
      A.emit(mkR(Opcode::Sll, Rd, Ra, Rb));
      return;
    case BinOp::Srs:
      A.emit(mkR(Opcode::Sra, Rd, Ra, Rb));
      return;
    case BinOp::Lts:
      A.emit(mkR(Opcode::Slt, Rd, Ra, Rb));
      return;
    case BinOp::Ltu:
      A.emit(mkR(Opcode::Sltu, Rd, Ra, Rb));
      return;
    case BinOp::Eq:
      // rd = (a ^ b) == 0, computed via the scratch register so rd may
      // alias an operand.
      A.emit(mkR(Opcode::Xor, T2, Ra, Rb));
      A.emit(mkI(Opcode::Sltiu, Rd, T2, 1));
      return;
    }
    assert(false && "unreachable: exhaustive BinOp switch");
  }

  void genOpImm(BinOp Op, Reg Rd, Reg Ra, Word Imm) {
    SWord S = SWord(Imm);
    bool Fits = support::fitsSigned(S, 12);
    switch (Op) {
    case BinOp::Add:
      if (Fits) {
        A.emit(addi(Rd, Ra, S));
        return;
      }
      break;
    case BinOp::Sub:
      if (support::fitsSigned(-SWord(Imm), 12)) {
        A.emit(addi(Rd, Ra, -SWord(Imm)));
        return;
      }
      break;
    case BinOp::And:
      if (Fits) {
        A.emit(mkI(Opcode::Andi, Rd, Ra, S));
        return;
      }
      break;
    case BinOp::Or:
      if (Fits) {
        A.emit(mkI(Opcode::Ori, Rd, Ra, S));
        return;
      }
      break;
    case BinOp::Xor:
      if (Fits) {
        A.emit(mkI(Opcode::Xori, Rd, Ra, S));
        return;
      }
      break;
    case BinOp::Slu:
      if (Imm < 32) {
        A.emit(mkI(Opcode::Slli, Rd, Ra, SWord(Imm)));
        return;
      }
      break;
    case BinOp::Sru:
      if (Imm < 32) {
        A.emit(mkI(Opcode::Srli, Rd, Ra, SWord(Imm)));
        return;
      }
      break;
    case BinOp::Srs:
      if (Imm < 32) {
        A.emit(mkI(Opcode::Srai, Rd, Ra, SWord(Imm)));
        return;
      }
      break;
    case BinOp::Ltu:
      if (Fits) {
        A.emit(mkI(Opcode::Sltiu, Rd, Ra, S));
        return;
      }
      break;
    case BinOp::Lts:
      if (Fits) {
        A.emit(mkI(Opcode::Slti, Rd, Ra, S));
        return;
      }
      break;
    case BinOp::Eq:
      if (Fits) {
        A.emit(mkI(Opcode::Xori, T2, Ra, S));
        A.emit(mkI(Opcode::Sltiu, Rd, T2, 1));
        return;
      }
      break;
    default:
      break;
    }
    // No immediate form: materialize and use the register form.
    A.emitLoadImm(T1, Imm);
    genOp(Op, Rd, Ra, T1);
  }

  // -- Prologue / epilogue -----------------------------------------------------

  void emitFrameAdjust(bool Enter) {
    if (FrameBytes == 0)
      return;
    SWord Delta = Enter ? -SWord(FrameBytes) : SWord(FrameBytes);
    if (support::fitsSigned(Delta, 12)) {
      A.emit(addi(SP, SP, Delta));
      return;
    }
    A.emitLoadImm(T0, FrameBytes);
    A.emit(mkR(Enter ? Opcode::Sub : Opcode::Add, SP, SP, T0));
  }

  void emitPrologue() {
    emitFrameAdjust(/*Enter=*/true);
    Word Off = SaveBase;
    emitFrameStore(RA, Off, T2);
    Off += 4;
    bool SkipFirst = fi::on(fi::Fault::CompilerCalleeSavedSkip);
    for (Reg R : Alloc.UsedCalleeSaved) {
      if (!SkipFirst)
        emitFrameStore(R, Off, T2);
      SkipFirst = false;
      Off += 4;
    }
    // Move incoming arguments from a-registers to their homes.
    for (size_t I = 0; I != F.Params.size(); ++I)
      defCommit(F.Params[I], Reg(A0 + I));
  }

  bool emitEpilogue(std::string &Error) {
    if (F.Rets.size() > 8) {
      Error = "function '" + F.Name + "' returns more than 8 values";
      return false;
    }
    for (size_t I = 0; I != F.Rets.size(); ++I) {
      Reg Rs = useVar(F.Rets[I], T0);
      A.emit(addi(Reg(A0 + I), Rs, 0));
    }
    Word Off = SaveBase;
    emitFrameLoad(RA, Off);
    Off += 4;
    bool SkipFirst = fi::on(fi::Fault::CompilerCalleeSavedSkip);
    for (Reg R : Alloc.UsedCalleeSaved) {
      if (!SkipFirst)
        emitFrameLoad(R, Off);
      SkipFirst = false;
      Off += 4;
    }
    emitFrameAdjust(/*Enter=*/false);
    A.emit(jalr(Zero, RA, 0));
    return true;
  }
};

} // namespace

std::optional<FunctionCode> b2::compiler::generateFunction(
    Asm &A, const FlatFunction &F, const Allocation &Alloc,
    const std::map<std::string, Label> &FunctionLabels,
    ExtCallCompiler &ExtCompiler, std::string &Error) {
  if (F.Params.size() > 8) {
    Error = "function '" + F.Name + "' takes more than 8 parameters";
    return std::nullopt;
  }
  FunctionCodegen G(A, F, Alloc, FunctionLabels, ExtCompiler);
  return G.run(Error);
}
