//===- compiler/Flatten.h - Flattening phase -------------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's first phase (Figure 3): flattens Bedrock2 expression
/// trees into three-address FlatImp, introducing a fresh temporary per
/// intermediate value. Source variables keep one id for the whole
/// function (FlatImp is not SSA, matching the original compiler).
///
//===----------------------------------------------------------------------===//

#ifndef B2_COMPILER_FLATTEN_H
#define B2_COMPILER_FLATTEN_H

#include "bedrock2/Ast.h"
#include "compiler/FlatImp.h"

#include <optional>
#include <string>

namespace b2 {
namespace compiler {

/// Result of flattening: a program, or a diagnostic (e.g. a statement
/// form that cannot be flattened).
struct FlattenResult {
  std::optional<FlatProgram> Prog;
  std::string Error;

  bool ok() const { return Prog.has_value(); }
};

/// Flattens every function of \p P.
FlattenResult flatten(const bedrock2::Program &P);

/// Flattens a single function (tests).
FlatFunction flattenFunction(const bedrock2::Function &F);

} // namespace compiler
} // namespace b2

#endif // B2_COMPILER_FLATTEN_H
