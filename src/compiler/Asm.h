//===- compiler/Asm.h - Label-based assembler with relaxation --*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small assembler for the compiler backend: code is emitted against
/// symbolic labels, then \c finish() resolves label offsets. Conditional
/// branches whose targets exceed the B-format's ±4 KiB range are relaxed
/// into an inverted branch over a jal (and jal targets beyond ±1 MiB are
/// rejected — the demo platform's RAM is far smaller). Relaxation iterates
/// to a fixpoint since widening one branch can push another out of range.
///
//===----------------------------------------------------------------------===//

#ifndef B2_COMPILER_ASM_H
#define B2_COMPILER_ASM_H

#include "isa/Build.h"
#include "isa/Instr.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace b2 {
namespace compiler {

/// A symbolic code label.
using Label = uint32_t;

/// The assembler. Emitted items are either concrete instructions or
/// label-referencing branch/jump placeholders.
class Asm {
public:
  /// Allocates a fresh, unbound label.
  Label newLabel();

  /// Binds \p L to the current position. A label may be bound once.
  void bind(Label L);

  /// Emits a concrete instruction.
  void emit(const isa::Instr &I);

  /// Emits `op rs1, rs2, -> Target` (conditional branch).
  void emitBranch(isa::Opcode Op, isa::Reg Rs1, isa::Reg Rs2, Label Target);

  /// Emits `jal rd, -> Target`.
  void emitJal(isa::Reg Rd, Label Target);

  /// Loads a 32-bit constant into \p Rd (lui/addi as needed).
  void emitLoadImm(isa::Reg Rd, Word Value);

  /// Current instruction count (before relaxation).
  size_t size() const { return Items.size(); }

  /// Resolves labels and relaxes out-of-range branches. Returns the final
  /// instruction list, or std::nullopt with \p Error set (unbound label or
  /// unencodable jump).
  std::optional<std::vector<isa::Instr>> finish(std::string &Error);

  /// Final instruction index of \p L. Valid only after a successful
  /// finish().
  size_t labelOffsetAfterFinish(Label L) const;

private:
  struct Item {
    enum class Kind : uint8_t { Concrete, Branch, Jump } K;
    isa::Instr I;       ///< Concrete instruction / branch or jump template.
    Label Target = 0;
    bool Relaxed = false; ///< Branch: expanded to inverted-branch + jal.
  };

  std::vector<Item> Items;
  std::vector<std::optional<size_t>> LabelPositions; ///< Item index.
  std::vector<size_t> FinalLabelOffsets; ///< Instruction index per label,
                                         ///< filled by finish().

  static isa::Opcode invertBranch(isa::Opcode Op);
};

} // namespace compiler
} // namespace b2

#endif // B2_COMPILER_ASM_H
