//===- compiler/Passes.cpp - Optional optimization passes --------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "compiler/Passes.h"

#include "compiler/Flatten.h"

#include <cassert>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace b2;
using namespace b2::bedrock2;
using namespace b2::compiler;

unsigned b2::compiler::flatSize(const FStmt &S) {
  switch (S.K) {
  case FStmt::Kind::Seq:
    return flatSize(*S.S1) + flatSize(*S.S2);
  case FStmt::Kind::If:
    return 1 + flatSize(*S.S1) + flatSize(*S.S2);
  case FStmt::Kind::While:
    return 1 + flatSize(*S.CondPre) + flatSize(*S.S1);
  case FStmt::Kind::Stackalloc:
    return 1 + flatSize(*S.S1);
  default:
    return 1;
  }
}

// -- Inlining -------------------------------------------------------------------

namespace {

ExprPtr renameExpr(const Expr &E, const std::string &Prefix) {
  switch (E.K) {
  case Expr::Kind::Literal:
    return Expr::literal(E.Lit);
  case Expr::Kind::Var:
    return Expr::var(Prefix + E.Name);
  case Expr::Kind::Load:
    return Expr::load(E.Size, renameExpr(*E.A, Prefix));
  case Expr::Kind::Op:
    return Expr::op(E.Op, renameExpr(*E.A, Prefix), renameExpr(*E.B, Prefix));
  }
  assert(false && "unreachable");
  return nullptr;
}

StmtPtr renameStmt(const Stmt &S, const std::string &Prefix) {
  switch (S.K) {
  case Stmt::Kind::Skip:
    return Stmt::skip();
  case Stmt::Kind::Set:
    return Stmt::set(Prefix + S.Var, renameExpr(*S.Value, Prefix));
  case Stmt::Kind::Store:
    return Stmt::store(S.Size, renameExpr(*S.Addr, Prefix),
                       renameExpr(*S.Value, Prefix));
  case Stmt::Kind::If:
    return Stmt::ifThenElse(renameExpr(*S.Cond, Prefix),
                            renameStmt(*S.S1, Prefix),
                            renameStmt(*S.S2, Prefix));
  case Stmt::Kind::While:
    return Stmt::whileLoop(renameExpr(*S.Cond, Prefix),
                           renameStmt(*S.S1, Prefix));
  case Stmt::Kind::Seq:
    return Stmt::seq(renameStmt(*S.S1, Prefix), renameStmt(*S.S2, Prefix));
  case Stmt::Kind::Call:
  case Stmt::Kind::Interact: {
    std::vector<std::string> Dsts;
    for (const std::string &D : S.Dsts)
      Dsts.push_back(Prefix + D);
    std::vector<ExprPtr> Args;
    for (const ExprPtr &A : S.Args)
      Args.push_back(renameExpr(*A, Prefix));
    if (S.K == Stmt::Kind::Call)
      return Stmt::call(std::move(Dsts), S.Callee, std::move(Args));
    return Stmt::interact(std::move(Dsts), S.Callee, std::move(Args));
  }
  case Stmt::Kind::Stackalloc:
    return Stmt::stackalloc(Prefix + S.Var, S.NBytes,
                            renameStmt(*S.S1, Prefix));
  }
  assert(false && "unreachable");
  return nullptr;
}

class Inliner {
public:
  Inliner(const Program &P, unsigned Threshold) : Prog(P) {
    for (const auto &[Name, F] : P.Functions) {
      FlatFunction FF = flattenFunction(F);
      if (flatSize(*FF.Body) <= Threshold)
        Eligible.insert(Name);
    }
  }

  Program run() {
    Program Out;
    for (const auto &[Name, F] : Prog.Functions) {
      Function NF = F;
      // Iterate: inlined bodies can contain further eligible calls. The
      // call graph is acyclic, so the depth bound is |functions|.
      for (size_t Round = 0; Round != Prog.Functions.size() + 1; ++Round) {
        bool Changed = false;
        NF.Body = rewrite(*NF.Body, Name, Changed);
        if (!Changed)
          break;
      }
      Out.add(std::move(NF));
    }
    return Out;
  }

private:
  const Program &Prog;
  std::set<std::string> Eligible;
  unsigned Counter = 0;

  StmtPtr rewrite(const Stmt &S, const std::string &Caller, bool &Changed) {
    switch (S.K) {
    case Stmt::Kind::If:
      return Stmt::ifThenElse(S.Cond, rewrite(*S.S1, Caller, Changed),
                              rewrite(*S.S2, Caller, Changed));
    case Stmt::Kind::While:
      return Stmt::whileLoop(S.Cond, rewrite(*S.S1, Caller, Changed));
    case Stmt::Kind::Seq:
      return Stmt::seq(rewrite(*S.S1, Caller, Changed),
                       rewrite(*S.S2, Caller, Changed));
    case Stmt::Kind::Stackalloc:
      return Stmt::stackalloc(S.Var, S.NBytes,
                              rewrite(*S.S1, Caller, Changed));
    case Stmt::Kind::Call: {
      if (!Eligible.count(S.Callee) || S.Callee == Caller)
        return std::make_shared<Stmt>(S);
      const Function *Callee = Prog.find(S.Callee);
      if (!Callee || Callee->Params.size() != S.Args.size() ||
          Callee->Rets.size() != S.Dsts.size())
        return std::make_shared<Stmt>(S); // Leave errors to the driver.
      Changed = true;
      std::string Prefix =
          "$inl" + std::to_string(Counter++) + "$";
      std::vector<StmtPtr> Parts;
      for (size_t I = 0; I != S.Args.size(); ++I)
        Parts.push_back(Stmt::set(Prefix + Callee->Params[I], S.Args[I]));
      Parts.push_back(renameStmt(*Callee->Body, Prefix));
      for (size_t I = 0; I != S.Dsts.size(); ++I)
        Parts.push_back(
            Stmt::set(S.Dsts[I], Expr::var(Prefix + Callee->Rets[I])));
      return Stmt::block(std::move(Parts));
    }
    default:
      return std::make_shared<Stmt>(S);
    }
  }
};

} // namespace

Program b2::compiler::inlineCalls(const Program &P, unsigned Threshold) {
  return Inliner(P, Threshold).run();
}

// -- Constant propagation --------------------------------------------------------

namespace {

using ConstEnv = std::unordered_map<FVar, Word>;

void assignedVars(const FStmt &S, std::unordered_set<FVar> &Out) {
  switch (S.K) {
  case FStmt::Kind::Const:
  case FStmt::Kind::Copy:
  case FStmt::Kind::Op:
  case FStmt::Kind::OpImm:
  case FStmt::Kind::Load:
    Out.insert(S.Dst);
    return;
  case FStmt::Kind::If:
    assignedVars(*S.S1, Out);
    assignedVars(*S.S2, Out);
    return;
  case FStmt::Kind::While:
    assignedVars(*S.CondPre, Out);
    assignedVars(*S.S1, Out);
    return;
  case FStmt::Kind::Seq:
    assignedVars(*S.S1, Out);
    assignedVars(*S.S2, Out);
    return;
  case FStmt::Kind::Call:
  case FStmt::Kind::Interact:
    for (FVar D : S.Dsts)
      Out.insert(D);
    return;
  case FStmt::Kind::Stackalloc:
    Out.insert(S.Dst);
    assignedVars(*S.S1, Out);
    return;
  case FStmt::Kind::Skip:
  case FStmt::Kind::Store:
    return;
  }
}

bool isCommutative(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
  case BinOp::Mul:
  case BinOp::MulHuu:
  case BinOp::And:
  case BinOp::Or:
  case BinOp::Xor:
  case BinOp::Eq:
    return true;
  default:
    return false;
  }
}

class ConstProp {
public:
  FStmtPtr run(const FStmt &S, ConstEnv &Env) {
    switch (S.K) {
    case FStmt::Kind::Skip:
    case FStmt::Kind::Store:
      return clone(S);
    case FStmt::Kind::Const:
      Env[S.Dst] = S.Imm;
      return clone(S);
    case FStmt::Kind::Copy: {
      auto It = Env.find(S.A);
      if (It != Env.end()) {
        Env[S.Dst] = It->second;
        return FStmt::constant(S.Dst, It->second);
      }
      Env.erase(S.Dst);
      return clone(S);
    }
    case FStmt::Kind::Op: {
      auto A = lookup(Env, S.A);
      auto B = lookup(Env, S.B);
      if (A && B) {
        Word V = evalBinOp(S.Op, *A, *B);
        Env[S.Dst] = V;
        return FStmt::constant(S.Dst, V);
      }
      if (B) {
        Env.erase(S.Dst);
        return FStmt::opImm(S.Dst, S.Op, S.A, *B);
      }
      if (A && isCommutative(S.Op)) {
        Env.erase(S.Dst);
        return FStmt::opImm(S.Dst, S.Op, S.B, *A);
      }
      Env.erase(S.Dst);
      return clone(S);
    }
    case FStmt::Kind::OpImm: {
      auto A = lookup(Env, S.A);
      if (A) {
        Word V = evalBinOp(S.Op, *A, S.Imm);
        Env[S.Dst] = V;
        return FStmt::constant(S.Dst, V);
      }
      Env.erase(S.Dst);
      return clone(S);
    }
    case FStmt::Kind::Load:
      Env.erase(S.Dst);
      return clone(S);
    case FStmt::Kind::If: {
      auto C = lookup(Env, S.CondVar);
      if (C)
        return run(*C != 0 ? *S.S1 : *S.S2, Env);
      ConstEnv ThenEnv = Env;
      ConstEnv ElseEnv = Env;
      FStmtPtr Then = run(*S.S1, ThenEnv);
      FStmtPtr Else = run(*S.S2, ElseEnv);
      Env.clear();
      for (const auto &[V, K] : ThenEnv) {
        auto It = ElseEnv.find(V);
        if (It != ElseEnv.end() && It->second == K)
          Env[V] = K;
      }
      return FStmt::ifThenElse(S.CondVar, Then, Else);
    }
    case FStmt::Kind::While: {
      // Conservative: every variable assigned in the loop is unknown both
      // inside and after it.
      std::unordered_set<FVar> Killed;
      assignedVars(*S.CondPre, Killed);
      assignedVars(*S.S1, Killed);
      for (FVar V : Killed)
        Env.erase(V);
      ConstEnv LoopEnv = Env;
      FStmtPtr CondPre = run(*S.CondPre, LoopEnv);
      ConstEnv BodyEnv = Env; // Re-enter with the pre-loop knowledge only.
      FStmtPtr Body = run(*S.S1, BodyEnv);
      for (FVar V : Killed)
        Env.erase(V);
      return FStmt::whileLoop(CondPre, S.CondVar, Body);
    }
    case FStmt::Kind::Seq: {
      FStmtPtr S1 = run(*S.S1, Env);
      FStmtPtr S2 = run(*S.S2, Env);
      return FStmt::seq(S1, S2);
    }
    case FStmt::Kind::Call:
    case FStmt::Kind::Interact:
      for (FVar D : S.Dsts)
        Env.erase(D);
      return clone(S);
    case FStmt::Kind::Stackalloc: {
      // The address is unspecified: never a known constant.
      Env.erase(S.Dst);
      FStmtPtr Body = run(*S.S1, Env);
      auto N = std::make_shared<FStmt>(S);
      N->S1 = Body;
      return N;
    }
    }
    assert(false && "unreachable");
    return nullptr;
  }

private:
  static std::optional<Word> lookup(const ConstEnv &Env, FVar V) {
    auto It = Env.find(V);
    if (It == Env.end())
      return std::nullopt;
    return It->second;
  }

  static FStmtPtr clone(const FStmt &S) { return std::make_shared<FStmt>(S); }
};

} // namespace

FlatFunction b2::compiler::constantPropagation(const FlatFunction &F) {
  FlatFunction Out = F;
  ConstEnv Env;
  Out.Body = ConstProp().run(*F.Body, Env);
  return Out;
}

// -- Dead-code elimination --------------------------------------------------------

namespace {

void readVars(const FStmt &S, std::unordered_set<FVar> &Out) {
  switch (S.K) {
  case FStmt::Kind::Copy:
    Out.insert(S.A);
    return;
  case FStmt::Kind::Op:
    Out.insert(S.A);
    Out.insert(S.B);
    return;
  case FStmt::Kind::OpImm:
  case FStmt::Kind::Load:
    Out.insert(S.A);
    return;
  case FStmt::Kind::Store:
    Out.insert(S.A);
    Out.insert(S.B);
    return;
  case FStmt::Kind::If:
    Out.insert(S.CondVar);
    readVars(*S.S1, Out);
    readVars(*S.S2, Out);
    return;
  case FStmt::Kind::While:
    Out.insert(S.CondVar);
    readVars(*S.CondPre, Out);
    readVars(*S.S1, Out);
    return;
  case FStmt::Kind::Seq:
    readVars(*S.S1, Out);
    readVars(*S.S2, Out);
    return;
  case FStmt::Kind::Call:
  case FStmt::Kind::Interact:
    for (FVar A : S.Args)
      Out.insert(A);
    return;
  case FStmt::Kind::Stackalloc:
    readVars(*S.S1, Out);
    return;
  case FStmt::Kind::Skip:
  case FStmt::Kind::Const:
    return;
  }
}

class Dce {
public:
  /// Rewrites \p S given the variables live after it; updates \p Live to
  /// the variables live before it.
  FStmtPtr run(const FStmt &S, std::unordered_set<FVar> &Live) {
    switch (S.K) {
    case FStmt::Kind::Skip:
      return FStmt::skip();
    case FStmt::Kind::Const:
      if (!Live.count(S.Dst))
        return FStmt::skip();
      Live.erase(S.Dst);
      return clone(S);
    case FStmt::Kind::Copy:
      if (!Live.count(S.Dst))
        return FStmt::skip();
      Live.erase(S.Dst);
      Live.insert(S.A);
      return clone(S);
    case FStmt::Kind::Op:
      // Division can trap in C but not here; the only side effect of a
      // pure op is its result, so unused results die. (An unused load is
      // also removable: dropping a potentially-UB load only removes
      // behaviors, which refinement allows.)
      if (!Live.count(S.Dst))
        return FStmt::skip();
      Live.erase(S.Dst);
      Live.insert(S.A);
      Live.insert(S.B);
      return clone(S);
    case FStmt::Kind::OpImm:
      if (!Live.count(S.Dst))
        return FStmt::skip();
      Live.erase(S.Dst);
      Live.insert(S.A);
      return clone(S);
    case FStmt::Kind::Load:
      if (!Live.count(S.Dst))
        return FStmt::skip();
      Live.erase(S.Dst);
      Live.insert(S.A);
      return clone(S);
    case FStmt::Kind::Store:
      Live.insert(S.A);
      Live.insert(S.B);
      return clone(S);
    case FStmt::Kind::If: {
      std::unordered_set<FVar> ThenLive = Live;
      std::unordered_set<FVar> ElseLive = Live;
      FStmtPtr Then = run(*S.S1, ThenLive);
      FStmtPtr Else = run(*S.S2, ElseLive);
      Live = ThenLive;
      Live.insert(ElseLive.begin(), ElseLive.end());
      Live.insert(S.CondVar);
      return FStmt::ifThenElse(S.CondVar, Then, Else);
    }
    case FStmt::Kind::While: {
      // Conservative: everything read anywhere in the loop is live
      // throughout it, so only assignments to variables never read in or
      // after the loop are removed.
      std::unordered_set<FVar> InLoop;
      readVars(*S.CondPre, InLoop);
      readVars(*S.S1, InLoop);
      InLoop.insert(S.CondVar);
      std::unordered_set<FVar> LoopLive = Live;
      LoopLive.insert(InLoop.begin(), InLoop.end());
      std::unordered_set<FVar> BodyLive = LoopLive;
      FStmtPtr Body = run(*S.S1, BodyLive);
      std::unordered_set<FVar> PreLive = LoopLive;
      FStmtPtr CondPre = run(*S.CondPre, PreLive);
      Live = LoopLive;
      Live.insert(PreLive.begin(), PreLive.end());
      Live.insert(BodyLive.begin(), BodyLive.end());
      return FStmt::whileLoop(CondPre, S.CondVar, Body);
    }
    case FStmt::Kind::Seq: {
      FStmtPtr S2 = run(*S.S2, Live);
      FStmtPtr S1 = run(*S.S1, Live);
      if (S1->K == FStmt::Kind::Skip)
        return S2;
      if (S2->K == FStmt::Kind::Skip)
        return S1;
      return FStmt::seq(S1, S2);
    }
    case FStmt::Kind::Call:
    case FStmt::Kind::Interact:
      for (FVar D : S.Dsts)
        Live.erase(D);
      for (FVar A : S.Args)
        Live.insert(A);
      return clone(S);
    case FStmt::Kind::Stackalloc: {
      FStmtPtr Body = run(*S.S1, Live);
      Live.erase(S.Dst);
      auto N = std::make_shared<FStmt>(S);
      N->S1 = Body;
      return N;
    }
    }
    assert(false && "unreachable");
    return nullptr;
  }

private:
  static FStmtPtr clone(const FStmt &S) { return std::make_shared<FStmt>(S); }
};

} // namespace

FlatFunction b2::compiler::deadCodeElim(const FlatFunction &F) {
  FlatFunction Out = F;
  std::unordered_set<FVar> Live(F.Rets.begin(), F.Rets.end());
  Out.Body = Dce().run(*F.Body, Live);
  return Out;
}
