//===- compiler/FlatImp.h - Flattened intermediate language ----*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FlatImp, the compiler's intermediate language (Figure 3): Bedrock2
/// statements whose expressions have been flattened into three-address
/// assignments over variables. The flattening phase produces "FlatImp
/// with variables"; the register-allocation phase assigns each variable a
/// machine register or a spill slot, yielding "FlatImp with registers"
/// (represented as FlatImp plus an Allocation side table).
///
/// Variables are dense integer ids within one function; FlatFunction keeps
/// the original names for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef B2_COMPILER_FLATIMP_H
#define B2_COMPILER_FLATIMP_H

#include "bedrock2/Ast.h"
#include "support/Word.h"

#include <memory>
#include <string>
#include <vector>

namespace b2 {
namespace compiler {

/// A FlatImp variable id (dense, per function).
using FVar = uint32_t;

struct FStmt;
using FStmtPtr = std::shared_ptr<const FStmt>;

/// Flattened statements. Expressions appear only as single operations.
struct FStmt {
  enum class Kind : uint8_t {
    Skip,
    Const,      ///< Dst = Imm.
    Copy,       ///< Dst = A.
    Op,         ///< Dst = A op B.
    OpImm,      ///< Dst = A op Imm (produced by constant propagation only).
    Load,       ///< Dst = mem[A] (Size bytes).
    Store,      ///< mem[A] = B (Size bytes).
    If,         ///< if (CondVar != 0) S1 else S2. CondVar is computed by
                ///< statements emitted before the If.
    While,      ///< while: CondPre; if (CondVar == 0) break; Body.
    Seq,        ///< S1; S2.
    Call,       ///< Dsts = Callee(Args).
    Interact,   ///< Dsts = external Callee(Args).
    Stackalloc, ///< Dst = fresh NBytes buffer for the dynamic extent of S1.
  } K;

  FVar Dst = 0;
  FVar A = 0;
  FVar B = 0;
  Word Imm = 0;
  bedrock2::BinOp Op = bedrock2::BinOp::Add;
  unsigned Size = 4;
  FVar CondVar = 0;
  FStmtPtr CondPre; ///< While: recomputes CondVar before each test.
  FStmtPtr S1;
  FStmtPtr S2;
  std::vector<FVar> Dsts;
  std::string Callee;
  std::vector<FVar> Args;
  Word NBytes = 0;

  static FStmtPtr skip();
  static FStmtPtr constant(FVar Dst, Word Imm);
  static FStmtPtr copy(FVar Dst, FVar A);
  static FStmtPtr op(FVar Dst, bedrock2::BinOp Op, FVar A, FVar B);
  static FStmtPtr opImm(FVar Dst, bedrock2::BinOp Op, FVar A, Word Imm);
  static FStmtPtr load(FVar Dst, unsigned Size, FVar Addr);
  static FStmtPtr store(unsigned Size, FVar Addr, FVar Value);
  static FStmtPtr ifThenElse(FVar CondVar, FStmtPtr S1, FStmtPtr S2);
  static FStmtPtr whileLoop(FStmtPtr CondPre, FVar CondVar, FStmtPtr Body);
  static FStmtPtr seq(FStmtPtr S1, FStmtPtr S2);
  static FStmtPtr call(std::vector<FVar> Dsts, std::string Callee,
                       std::vector<FVar> Args);
  static FStmtPtr interact(std::vector<FVar> Dsts, std::string Action,
                           std::vector<FVar> Args);
  static FStmtPtr stackalloc(FVar Dst, Word NBytes, FStmtPtr Body);
};

/// A flattened function.
struct FlatFunction {
  std::string Name;
  std::vector<FVar> Params;
  std::vector<FVar> Rets;
  FStmtPtr Body;
  FVar NumVars = 0;                  ///< Ids are 0..NumVars-1.
  std::vector<std::string> VarNames; ///< Diagnostic names per id.
};

/// A flattened program.
struct FlatProgram {
  std::vector<FlatFunction> Functions;

  const FlatFunction *find(const std::string &Name) const {
    for (const FlatFunction &F : Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

/// Pretty-printer for debugging and golden tests.
std::string toString(const FlatFunction &F);

} // namespace compiler
} // namespace b2

#endif // B2_COMPILER_FLATIMP_H
