//===- compiler/RegAlloc.h - Register allocation phase ---------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's register-allocation phase (Figure 3: "FlatImp with
/// variables" -> "FlatImp with registers"): a linear-scan allocator over
/// conservative live intervals, with spilling to stack slots.
///
/// Calling convention (defined here and implemented by Codegen):
///  * arguments and results travel in a0..a7;
///  * t0..t2 are code-generator scratch;
///  * s0..s11 are callee-saved: a function saves every s-register it
///    writes, so values in s-registers survive calls;
///  * t3..t6 are caller-saved and used for values that do not live across
///    a call — but only in optimizing mode. The paper measures that its
///    compiler does not "exploit caller-saved registers" (section 7.2.1,
///    part of the 2.1x factor vs gcc -O3); the baseline mode reproduces
///    that limitation by allocating everything to callee-saved registers.
///
//===----------------------------------------------------------------------===//

#ifndef B2_COMPILER_REGALLOC_H
#define B2_COMPILER_REGALLOC_H

#include "compiler/FlatImp.h"
#include "isa/Reg.h"

#include <vector>

namespace b2 {
namespace compiler {

/// Where a FlatImp variable lives at run time.
struct Location {
  enum class Kind : uint8_t { Register, Slot } K = Kind::Register;
  isa::Reg R = 0;    ///< Register when K == Register.
  unsigned Slot = 0; ///< Spill-slot index when K == Slot.
};

/// The allocation result for one function.
struct Allocation {
  std::vector<Location> VarLoc;           ///< Indexed by FVar.
  unsigned NumSlots = 0;                  ///< Spill slots used.
  std::vector<isa::Reg> UsedCalleeSaved;  ///< s-registers written (to save).
  bool UsedCallerSavedPool = false;       ///< Any var in t3..t6 (stats).
};

struct RegAllocOptions {
  /// Allow t3..t6 for values that do not live across a call.
  bool UseCallerSaved = false;
};

/// Allocates registers for \p F.
Allocation allocateRegisters(const FlatFunction &F,
                             const RegAllocOptions &Options);

} // namespace compiler
} // namespace b2

#endif // B2_COMPILER_REGALLOC_H
