//===- compiler/RegAlloc.cpp - Register allocation phase ---------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "compiler/RegAlloc.h"

#include "verify/FaultInjection.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace b2;
using namespace b2::compiler;
using namespace b2::isa;

namespace {

constexpr uint32_t NoPos = std::numeric_limits<uint32_t>::max();

/// Conservative live interval of one variable, in statement positions.
struct Interval {
  FVar Var = 0;
  uint32_t First = NoPos;
  uint32_t Last = 0;
  bool CrossesCall = false;

  bool used() const { return First != NoPos; }
};

/// Walks the function once, numbering statements and recording variable
/// occurrences, loop regions, and call positions.
class IntervalBuilder {
public:
  explicit IntervalBuilder(const FlatFunction &F)
      : Func(F), Intervals(F.NumVars) {
    for (FVar V = 0; V != F.NumVars; ++V)
      Intervals[V].Var = V;
  }

  std::vector<Interval> run() {
    // Parameters are defined at entry; results are used at exit.
    for (FVar P : Func.Params)
      touch(P);
    ++Pos;
    walk(*Func.Body);
    ++Pos;
    for (FVar R : Func.Rets)
      touch(R);

    // Extend intervals over loops: a variable occurring inside a loop is
    // treated as live for the whole loop. One extension can make an
    // interval newly overlap an enclosing or subsequent loop region, so
    // iterate to a fixpoint (regions only make intervals grow).
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (Interval &I : Intervals) {
        if (!I.used())
          continue;
        for (const auto &[Start, End] : Loops) {
          bool Overlaps = I.First <= End && Start <= I.Last;
          if (!Overlaps)
            continue;
          if (I.First > Start) {
            I.First = Start;
            Changed = true;
          }
          if (I.Last < End) {
            I.Last = End;
            Changed = true;
          }
        }
      }
    }

    for (Interval &I : Intervals) {
      if (!I.used())
        continue;
      for (uint32_t C : CallPositions)
        if (I.First < C && C < I.Last)
          I.CrossesCall = true;
    }
    return Intervals;
  }

private:
  const FlatFunction &Func;
  std::vector<Interval> Intervals;
  std::vector<std::pair<uint32_t, uint32_t>> Loops;
  std::vector<uint32_t> CallPositions;
  uint32_t Pos = 0;

  void touch(FVar V) {
    assert(V < Intervals.size() && "variable id out of range");
    Interval &I = Intervals[V];
    I.First = std::min(I.First, Pos);
    I.Last = std::max(I.Last, Pos);
  }

  void walk(const FStmt &S) {
    ++Pos;
    switch (S.K) {
    case FStmt::Kind::Skip:
      return;
    case FStmt::Kind::Const:
      touch(S.Dst);
      return;
    case FStmt::Kind::Copy:
      touch(S.A);
      touch(S.Dst);
      return;
    case FStmt::Kind::Op:
      touch(S.A);
      touch(S.B);
      touch(S.Dst);
      return;
    case FStmt::Kind::OpImm:
      touch(S.A);
      touch(S.Dst);
      return;
    case FStmt::Kind::Load:
      touch(S.A);
      touch(S.Dst);
      return;
    case FStmt::Kind::Store:
      touch(S.A);
      touch(S.B);
      return;
    case FStmt::Kind::If:
      touch(S.CondVar);
      walk(*S.S1);
      ++Pos;
      walk(*S.S2);
      return;
    case FStmt::Kind::While: {
      uint32_t Start = Pos;
      walk(*S.CondPre);
      touch(S.CondVar);
      walk(*S.S1);
      ++Pos;
      Loops.push_back({Start, Pos});
      return;
    }
    case FStmt::Kind::Seq:
      walk(*S.S1);
      walk(*S.S2);
      return;
    case FStmt::Kind::Call:
    case FStmt::Kind::Interact:
      for (FVar A : S.Args)
        touch(A);
      CallPositions.push_back(Pos);
      ++Pos;
      for (FVar D : S.Dsts)
        touch(D);
      return;
    case FStmt::Kind::Stackalloc:
      touch(S.Dst);
      walk(*S.S1);
      return;
    }
  }
};

} // namespace

Allocation b2::compiler::allocateRegisters(const FlatFunction &F,
                                           const RegAllocOptions &Options) {
  std::vector<Interval> Intervals = IntervalBuilder(F).run();

  // Register pools.
  static const Reg CalleeSavedPool[] = {S0, S1, 18, 19, 20, 21,
                                        22, 23, 24, 25, 26, 27};
  static const Reg CallerSavedPool[] = {T3, T4, T5, T6};

  Allocation Out;
  Out.VarLoc.resize(F.NumVars);

  std::vector<Interval> Order;
  for (const Interval &I : Intervals)
    if (I.used())
      Order.push_back(I);
  std::sort(Order.begin(), Order.end(),
            [](const Interval &A, const Interval &B) {
              return A.First < B.First ||
                     (A.First == B.First && A.Var < B.Var);
            });

  struct Active {
    uint32_t Last;
    FVar Var;
    Reg R;
  };
  std::vector<Active> ActiveList; // Kept sorted by Last ascending.
  std::vector<Reg> FreeCallee(std::begin(CalleeSavedPool),
                              std::end(CalleeSavedPool));
  std::vector<Reg> FreeCaller;
  if (Options.UseCallerSaved)
    FreeCaller.assign(std::begin(CallerSavedPool), std::end(CallerSavedPool));

  auto IsCallerSaved = [](Reg R) { return R >= T3 && R <= T6; };

  auto Release = [&](Reg R) {
    if (IsCallerSaved(R))
      FreeCaller.push_back(R);
    else
      FreeCallee.push_back(R);
  };

  unsigned NextSlot = 0;
  std::vector<bool> CalleeUsed(NumRegs, false);

  for (const Interval &I : Order) {
    // Expire intervals that ended before this one starts.
    while (!ActiveList.empty() && ActiveList.front().Last < I.First) {
      Release(ActiveList.front().R);
      ActiveList.erase(ActiveList.begin());
    }

    // Pick a register: caller-saved pool for call-free intervals first
    // (free to use), callee-saved otherwise.
    Reg Chosen = 0;
    bool Have = false;
    if (!I.CrossesCall && !FreeCaller.empty()) {
      Chosen = FreeCaller.back();
      FreeCaller.pop_back();
      Have = true;
      Out.UsedCallerSavedPool = true;
    } else if (!FreeCallee.empty()) {
      Chosen = FreeCallee.back();
      FreeCallee.pop_back();
      Have = true;
    }

    if (!Have) {
      // All registers busy: spill the active interval that ends last (or
      // this one, if it ends last itself).
      Active *Victim = nullptr;
      for (Active &A : ActiveList) {
        // Caller-saved registers cannot host call-crossing intervals, so
        // a victim's register must be acceptable for I.
        if (I.CrossesCall && IsCallerSaved(A.R))
          continue;
        if (!Victim || A.Last > Victim->Last)
          Victim = &A;
      }
      if (Victim && Victim->Last > I.Last) {
        Out.VarLoc[Victim->Var] =
            Location{Location::Kind::Slot, 0, NextSlot++};
        Chosen = Victim->R;
        ActiveList.erase(ActiveList.begin() + (Victim - &ActiveList[0]));
      } else {
        Out.VarLoc[I.Var] = Location{Location::Kind::Slot, 0, NextSlot++};
        continue;
      }
    }

    Out.VarLoc[I.Var] = Location{Location::Kind::Register, Chosen, 0};
    if (!IsCallerSaved(Chosen))
      CalleeUsed[Chosen] = true;
    Active A{I.Last, I.Var, Chosen};
    auto It = std::lower_bound(ActiveList.begin(), ActiveList.end(), A.Last,
                               [](const Active &X, uint32_t L) {
                                 return X.Last < L;
                               });
    ActiveList.insert(It, A);
  }

  Out.NumSlots = NextSlot;
  for (unsigned R = 0; R != NumRegs; ++R)
    if (CalleeUsed[R])
      Out.UsedCalleeSaved.push_back(Reg(R));
  if (fi::on(fi::Fault::CompilerRegallocWrongReg)) {
    // Seeded bug: the second register-allocated variable is folded onto
    // the first one's register, aliasing two live values.
    int FirstVar = -1;
    for (size_t V = 0; V != Out.VarLoc.size(); ++V) {
      if (Out.VarLoc[V].K != Location::Kind::Register)
        continue;
      if (FirstVar < 0) {
        FirstVar = int(V);
        continue;
      }
      if (Out.VarLoc[V].R != Out.VarLoc[size_t(FirstVar)].R) {
        Out.VarLoc[V].R = Out.VarLoc[size_t(FirstVar)].R;
        break;
      }
    }
  }
  return Out;
}
