//===- compiler/Asm.cpp - Label-based assembler with relaxation -------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "compiler/Asm.h"

#include "support/Word.h"
#include "verify/FaultInjection.h"

#include <cassert>

using namespace b2;
using namespace b2::compiler;
using namespace b2::isa;

Label Asm::newLabel() {
  LabelPositions.emplace_back();
  return Label(LabelPositions.size() - 1);
}

void Asm::bind(Label L) {
  assert(L < LabelPositions.size() && "unknown label");
  assert(!LabelPositions[L].has_value() && "label bound twice");
  LabelPositions[L] = Items.size();
}

void Asm::emit(const Instr &I) {
  Item It;
  It.K = Item::Kind::Concrete;
  It.I = I;
  Items.push_back(It);
}

void Asm::emitBranch(Opcode Op, Reg Rs1, Reg Rs2, Label Target) {
  assert(isBranch(Op) && "emitBranch requires a branch opcode");
  Item It;
  It.K = Item::Kind::Branch;
  It.I.Op = Op;
  It.I.Rs1 = Rs1;
  It.I.Rs2 = Rs2;
  It.Target = Target;
  Items.push_back(It);
}

void Asm::emitJal(Reg Rd, Label Target) {
  Item It;
  It.K = Item::Kind::Jump;
  It.I.Op = Opcode::Jal;
  It.I.Rd = Rd;
  It.Target = Target;
  Items.push_back(It);
}

void Asm::emitLoadImm(Reg Rd, Word Value) {
  if (fi::on(fi::Fault::CompilerImmTruncate))
    Value = support::signExtend(Value & 0xFFF, 12);
  std::vector<Instr> Seq;
  materialize(Value, Rd, Seq);
  for (const Instr &I : Seq)
    emit(I);
}

Opcode Asm::invertBranch(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
    return Opcode::Bne;
  case Opcode::Bne:
    return Opcode::Beq;
  case Opcode::Blt:
    return Opcode::Bge;
  case Opcode::Bge:
    return Opcode::Blt;
  case Opcode::Bltu:
    return Opcode::Bgeu;
  case Opcode::Bgeu:
    return Opcode::Bltu;
  default:
    assert(false && "not a branch");
    return Op;
  }
}

std::optional<std::vector<Instr>> Asm::finish(std::string &Error) {
  // All referenced labels must be bound before any offset math.
  for (const Item &It : Items) {
    if (It.K == Item::Kind::Concrete)
      continue;
    if (It.Target >= LabelPositions.size() ||
        !LabelPositions[It.Target].has_value()) {
      Error = "unbound label " + std::to_string(It.Target);
      return std::nullopt;
    }
  }

  // Widths in instructions: concrete 1, jump 1, branch 1 or 2 (relaxed).
  auto WidthOf = [](const Item &It) -> size_t {
    return (It.K == Item::Kind::Branch && It.Relaxed) ? 2 : 1;
  };

  // Iterate relaxation to a fixpoint. Widths only grow, so this
  // terminates after at most |Items| rounds.
  std::vector<size_t> Offsets(Items.size() + 1, 0); // In instructions.
  for (;;) {
    for (size_t I = 0; I != Items.size(); ++I)
      Offsets[I + 1] = Offsets[I] + WidthOf(Items[I]);

    auto TargetOffset = [&](Label L, size_t &Out) -> bool {
      if (L >= LabelPositions.size() || !LabelPositions[L].has_value()) {
        Error = "unbound label " + std::to_string(L);
        return false;
      }
      Out = Offsets[*LabelPositions[L]];
      return true;
    };

    bool Changed = false;
    for (size_t I = 0; I != Items.size(); ++I) {
      Item &It = Items[I];
      if (It.K != Item::Kind::Branch || It.Relaxed)
        continue;
      size_t T;
      if (!TargetOffset(It.Target, T))
        return std::nullopt;
      int64_t Delta = (int64_t(T) - int64_t(Offsets[I])) * 4;
      if (!support::fitsSigned(SWord(Delta), 13)) {
        It.Relaxed = true;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  FinalLabelOffsets.assign(LabelPositions.size(), 0);
  for (size_t L = 0; L != LabelPositions.size(); ++L)
    if (LabelPositions[L].has_value())
      FinalLabelOffsets[L] = Offsets[*LabelPositions[L]];

  // Final emission with resolved offsets.
  std::vector<Instr> Out;
  Out.reserve(Offsets.back());
  for (size_t I = 0; I != Items.size(); ++I) {
    const Item &It = Items[I];
    size_t Here = Offsets[I];
    switch (It.K) {
    case Item::Kind::Concrete:
      Out.push_back(It.I);
      break;
    case Item::Kind::Jump: {
      size_t T = Offsets[*LabelPositions[It.Target]];
      int64_t Delta = (int64_t(T) - int64_t(Here)) * 4;
      if (!support::fitsSigned(SWord(Delta), 21)) {
        Error = "jump target out of jal range";
        return std::nullopt;
      }
      Out.push_back(jal(It.I.Rd, SWord(Delta)));
      break;
    }
    case Item::Kind::Branch: {
      size_t T = Offsets[*LabelPositions[It.Target]];
      if (!It.Relaxed) {
        int64_t Delta = (int64_t(T) - int64_t(Here)) * 4;
        if (fi::on(fi::Fault::CompilerBranchOffByOne))
          Delta += 4;
        Out.push_back(mkB(It.I.Op, It.I.Rs1, It.I.Rs2, SWord(Delta)));
      } else {
        // Inverted branch skips the jal that performs the far jump.
        Out.push_back(mkB(invertBranch(It.I.Op), It.I.Rs1, It.I.Rs2, 8));
        int64_t Delta = (int64_t(T) - int64_t(Here + 1)) * 4;
        if (!support::fitsSigned(SWord(Delta), 21)) {
          Error = "relaxed branch target out of jal range";
          return std::nullopt;
        }
        Out.push_back(jal(Zero, SWord(Delta)));
      }
      break;
    }
    }
  }
  assert(Out.size() == Offsets.back() && "width bookkeeping mismatch");
  return Out;
}

size_t Asm::labelOffsetAfterFinish(Label L) const {
  assert(L < FinalLabelOffsets.size() && "unknown label");
  return FinalLabelOffsets[L];
}
