//===- compiler/Compile.h - Compiler driver --------------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler driver: runs the phases of Figure 3 (flattening, register
/// allocation, RISC-V backend), lays out all functions plus an entry stub
/// in one position-relative code image, rejects recursion, and computes
/// the static stack bound that lets the system promise it "will never run
/// out of memory" (section 5.3).
///
/// Two entry conventions are supported:
///  * EventLoop — the `init(); while(1) loop();` idiom of section 5.2,
///    used by the lightbulb firmware. The loop runs forever.
///  * SingleCall — call one function, then park in an infinite self-jump
///    at a known halt address (tests and batch examples detect the halt
///    PC to decide completion).
///
//===----------------------------------------------------------------------===//

#ifndef B2_COMPILER_COMPILE_H
#define B2_COMPILER_COMPILE_H

#include "bedrock2/Ast.h"
#include "compiler/ExtCallCompiler.h"
#include "isa/Instr.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace b2 {
namespace compiler {

/// Pipeline configuration. The default configuration is the paper's
/// compiler; \c o3() enables the optimizations gcc -O3 is credited with in
/// section 7.2.1 and serves as the baseline-compiler stand-in.
struct CompilerOptions {
  bool ConstantPropagation = false;
  bool Inlining = false;
  bool DeadCodeElim = false;
  bool UseCallerSaved = false;
  unsigned InlineThreshold = 60; ///< Max callee size (flat statements).

  static CompilerOptions o0() { return CompilerOptions(); }
  static CompilerOptions o3() {
    CompilerOptions O;
    O.ConstantPropagation = true;
    O.Inlining = true;
    O.DeadCodeElim = true;
    O.UseCallerSaved = true;
    return O;
  }
};

/// How execution starts.
struct Entry {
  enum class Kind { EventLoop, SingleCall } K = Kind::SingleCall;
  std::string Init;             ///< EventLoop: runs once (may be empty).
  std::string Loop;             ///< EventLoop: runs forever.
  std::string Fn;               ///< SingleCall target.
  std::vector<Word> Args;       ///< SingleCall arguments (max 8).

  static Entry eventLoop(std::string Init, std::string Loop) {
    Entry E;
    E.K = Kind::EventLoop;
    E.Init = std::move(Init);
    E.Loop = std::move(Loop);
    return E;
  }
  static Entry singleCall(std::string Fn, std::vector<Word> Args = {}) {
    Entry E;
    E.K = Kind::SingleCall;
    E.Fn = std::move(Fn);
    E.Args = std::move(Args);
    return E;
  }
};

/// The compiled artifact.
struct CompiledProgram {
  std::vector<isa::Instr> Code;            ///< Image, instruction 0 at PC 0.
  std::map<std::string, Word> FunctionPc;  ///< Entry PC per function.
  Word HaltPc = 0;       ///< SingleCall: PC of the self-jump parking loop.
  Word CodeBytes = 0;
  Word MaxStackBytes = 0;///< Static bound on total stack use.
  Word RamBytes = 0;     ///< RAM size the bound was checked against.

  /// Little-endian memory image (the paper's `instrencode`).
  std::vector<uint8_t> image() const;
};

/// Result of compilation.
struct CompileResult {
  std::optional<CompiledProgram> Prog;
  std::string Error;

  bool ok() const { return Prog.has_value(); }
};

/// Compiles \p P for a machine with \p RamBytes of RAM at address 0.
/// Verifies: no recursion, all callees defined, arities consistent, code
/// plus worst-case stack fits in RAM.
CompileResult compileProgram(const bedrock2::Program &P,
                             const CompilerOptions &Options,
                             const Entry &EntryPoint,
                             ExtCallCompiler &ExtCompiler, Word RamBytes);

/// Convenience overload using the MMIO external-calls compiler.
CompileResult compileProgram(const bedrock2::Program &P,
                             const CompilerOptions &Options,
                             const Entry &EntryPoint, Word RamBytes);

} // namespace compiler
} // namespace b2

#endif // B2_COMPILER_COMPILE_H
