//===- compiler/Codegen.h - RISC-V backend ---------------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's backend (Figure 3: "compiler backend" to "RISC-V"):
/// lowers FlatImp-with-registers to RV32IM instructions.
///
/// Frame layout (sp grows down; all offsets from the post-prologue sp):
/// \code
///   +-------------------------+  <- sp + FrameSize   (caller's sp)
///   | saved ra                |
///   | saved s-registers ...   |
///   | spill slots ...         |
///   | stackalloc arena ...    |
///   +-------------------------+  <- sp
/// \endcode
///
/// Recursion is rejected by the driver, and each function's frame size is
/// static, so the whole program's stack need is a static bound — this is
/// how the paper can "prove that the application will never run out of
/// memory" (section 5.3).
///
//===----------------------------------------------------------------------===//

#ifndef B2_COMPILER_CODEGEN_H
#define B2_COMPILER_CODEGEN_H

#include "compiler/Asm.h"
#include "compiler/ExtCallCompiler.h"
#include "compiler/FlatImp.h"
#include "compiler/RegAlloc.h"

#include <map>
#include <optional>
#include <string>

namespace b2 {
namespace compiler {

/// Code for one function plus the metadata the driver needs.
struct FunctionCode {
  std::string Name;
  Word FrameBytes = 0;   ///< Static frame size.
  Label Entry;           ///< Label of the function's entry point.
  std::vector<std::string> Callees; ///< Direct calls (for stack/recursion
                                    ///< analysis).
};

/// Generates code for \p F into \p A. \p FunctionLabels maps every
/// function name to its entry label (pre-created by the driver so calls
/// can be emitted before their targets). Returns metadata or nullopt with
/// \p Error set.
std::optional<FunctionCode>
generateFunction(Asm &A, const FlatFunction &F, const Allocation &Alloc,
                 const std::map<std::string, Label> &FunctionLabels,
                 ExtCallCompiler &ExtCompiler, std::string &Error);

} // namespace compiler
} // namespace b2

#endif // B2_COMPILER_CODEGEN_H
