//===- compiler/Compile.cpp - Compiler driver ---------------------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "compiler/Compile.h"

#include "compiler/Codegen.h"
#include "compiler/Flatten.h"
#include "compiler/Passes.h"
#include "compiler/RegAlloc.h"
#include "isa/Encoding.h"

#include <cassert>
#include <set>

using namespace b2;
using namespace b2::bedrock2;
using namespace b2::compiler;
using namespace b2::isa;

std::vector<uint8_t> CompiledProgram::image() const {
  return instrencode(Code);
}

namespace {

/// Checks that every call has a defined callee with matching arities.
bool checkCalls(const FlatProgram &P, std::string &Error) {
  for (const FlatFunction &F : P.Functions) {
    bool Ok = true;
    auto Walk = [&](auto &&Self, const FStmt &S) -> void {
      if (!Ok)
        return;
      switch (S.K) {
      case FStmt::Kind::Call: {
        const FlatFunction *Callee = P.find(S.Callee);
        if (!Callee) {
          Error = "'" + F.Name + "' calls undefined '" + S.Callee + "'";
          Ok = false;
          return;
        }
        if (Callee->Params.size() != S.Args.size() ||
            Callee->Rets.size() != S.Dsts.size()) {
          Error = "'" + F.Name + "' calls '" + S.Callee +
                  "' with mismatched arity";
          Ok = false;
        }
        return;
      }
      case FStmt::Kind::If:
        Self(Self, *S.S1);
        Self(Self, *S.S2);
        return;
      case FStmt::Kind::While:
        Self(Self, *S.CondPre);
        Self(Self, *S.S1);
        return;
      case FStmt::Kind::Seq:
        Self(Self, *S.S1);
        Self(Self, *S.S2);
        return;
      case FStmt::Kind::Stackalloc:
        Self(Self, *S.S1);
        return;
      default:
        return;
      }
    };
    Walk(Walk, *F.Body);
    if (!Ok)
      return false;
  }
  return true;
}

/// Rejects recursion ("disallowing recursive functions ... enables us to
/// prove that the application ... will never run out of memory", section
/// 5.3) and computes the worst-case stack need per function.
class StackAnalysis {
public:
  StackAnalysis(const std::vector<FunctionCode> &Fns) {
    for (const FunctionCode &F : Fns)
      ByName[F.Name] = &F;
  }

  /// Returns the static bound for \p Name, or nullopt on recursion.
  std::optional<Word> maxStack(const std::string &Name, std::string &Error) {
    auto Memo = Done.find(Name);
    if (Memo != Done.end())
      return Memo->second;
    if (InProgress.count(Name)) {
      Error = "recursion through '" + Name + "' is not supported";
      return std::nullopt;
    }
    const FunctionCode *F = ByName.at(Name);
    InProgress.insert(Name);
    Word Deepest = 0;
    for (const std::string &Callee : F->Callees) {
      std::optional<Word> Sub = maxStack(Callee, Error);
      if (!Sub)
        return std::nullopt;
      Deepest = std::max(Deepest, *Sub);
    }
    InProgress.erase(Name);
    Word Total = F->FrameBytes + Deepest;
    Done[Name] = Total;
    return Total;
  }

private:
  std::map<std::string, const FunctionCode *> ByName;
  std::map<std::string, Word> Done;
  std::set<std::string> InProgress;
};

} // namespace

CompileResult b2::compiler::compileProgram(const Program &P,
                                           const CompilerOptions &Options,
                                           const Entry &EntryPoint,
                                           ExtCallCompiler &ExtCompiler,
                                           Word RamBytes) {
  CompileResult R;

  // Optional AST-level inlining (gcc -O3 stand-in, section 7.2.1).
  Program Source = Options.Inlining
                       ? inlineCalls(P, Options.InlineThreshold)
                       : P;

  // Phase 1: flattening.
  FlattenResult Flat = flatten(Source);
  if (!Flat.ok()) {
    R.Error = Flat.Error;
    return R;
  }
  FlatProgram FP = std::move(*Flat.Prog);

  // Optional FlatImp-level optimizations.
  for (FlatFunction &F : FP.Functions) {
    if (Options.ConstantPropagation)
      F = constantPropagation(F);
    if (Options.DeadCodeElim)
      F = deadCodeElim(F);
  }

  if (!checkCalls(FP, R.Error))
    return R;

  // Entry-point sanity.
  auto RequireFn = [&](const std::string &Name) -> const FlatFunction * {
    const FlatFunction *F = FP.find(Name);
    if (!F)
      R.Error = "entry function '" + Name + "' is not defined";
    return F;
  };

  Asm A;
  std::map<std::string, Label> FunctionLabels;
  for (const FlatFunction &F : FP.Functions)
    FunctionLabels[F.Name] = A.newLabel();

  // Entry stub at PC 0: establish the stack pointer at the top of RAM,
  // then either enter the event loop or perform the single call.
  std::vector<std::string> EntryCallees;
  Label HaltLabel = A.newLabel();
  A.emitLoadImm(SP, RamBytes);
  switch (EntryPoint.K) {
  case Entry::Kind::EventLoop: {
    if (!EntryPoint.Init.empty()) {
      const FlatFunction *Init = RequireFn(EntryPoint.Init);
      if (!Init)
        return R;
      if (!Init->Params.empty()) {
        R.Error = "event-loop init must take no arguments";
        return R;
      }
      A.emitJal(RA, FunctionLabels.at(EntryPoint.Init));
      EntryCallees.push_back(EntryPoint.Init);
    }
    const FlatFunction *Loop = RequireFn(EntryPoint.Loop);
    if (!Loop)
      return R;
    if (!Loop->Params.empty()) {
      R.Error = "event-loop body must take no arguments";
      return R;
    }
    Label LoopHead = A.newLabel();
    A.bind(LoopHead);
    A.emitJal(RA, FunctionLabels.at(EntryPoint.Loop));
    A.emitJal(Zero, LoopHead);
    EntryCallees.push_back(EntryPoint.Loop);
    A.bind(HaltLabel); // Unreachable; bound for uniformity.
    break;
  }
  case Entry::Kind::SingleCall: {
    const FlatFunction *Fn = RequireFn(EntryPoint.Fn);
    if (!Fn)
      return R;
    if (Fn->Params.size() != EntryPoint.Args.size()) {
      R.Error = "entry call to '" + EntryPoint.Fn +
                "' has mismatched argument count";
      return R;
    }
    if (EntryPoint.Args.size() > 8) {
      R.Error = "entry call exceeds 8 arguments";
      return R;
    }
    for (size_t I = 0; I != EntryPoint.Args.size(); ++I)
      A.emitLoadImm(Reg(A0 + I), EntryPoint.Args[I]);
    A.emitJal(RA, FunctionLabels.at(EntryPoint.Fn));
    EntryCallees.push_back(EntryPoint.Fn);
    A.bind(HaltLabel);
    A.emitJal(Zero, HaltLabel); // Park: jump-to-self at the halt PC.
    break;
  }
  }

  // Phase 2 + 3 per function: register allocation, then the backend.
  RegAllocOptions RegOpts;
  RegOpts.UseCallerSaved = Options.UseCallerSaved;
  std::vector<FunctionCode> FnCode;
  for (const FlatFunction &F : FP.Functions) {
    Allocation Alloc = allocateRegisters(F, RegOpts);
    std::optional<FunctionCode> Code =
        generateFunction(A, F, Alloc, FunctionLabels, ExtCompiler, R.Error);
    if (!Code)
      return R;
    FnCode.push_back(std::move(*Code));
  }

  std::string AsmError;
  std::optional<std::vector<Instr>> Code = A.finish(AsmError);
  if (!Code) {
    R.Error = AsmError;
    return R;
  }

  // Recursion check and static stack bound over the entry's call tree.
  FunctionCode EntryFc;
  EntryFc.Name = "$entry$";
  EntryFc.FrameBytes = 0;
  EntryFc.Callees = EntryCallees;
  std::vector<FunctionCode> All = FnCode;
  All.push_back(EntryFc);
  StackAnalysis SA(All);
  std::optional<Word> MaxStack = SA.maxStack("$entry$", R.Error);
  if (!MaxStack)
    return R;

  CompiledProgram Out;
  Out.Code = std::move(*Code);
  Out.CodeBytes = Word(Out.Code.size()) * 4;
  Out.MaxStackBytes = *MaxStack;
  Out.RamBytes = RamBytes;
  Out.HaltPc = Word(A.labelOffsetAfterFinish(HaltLabel)) * 4;
  for (const auto &[Name, L] : FunctionLabels)
    Out.FunctionPc[Name] = Word(A.labelOffsetAfterFinish(L)) * 4;

  // "We also prove that the application will never run out of memory"
  // (section 5.3): code and worst-case stack must fit in RAM together.
  if (Out.CodeBytes + Out.MaxStackBytes > RamBytes) {
    R.Error = "program does not fit: " + std::to_string(Out.CodeBytes) +
              " code bytes + " + std::to_string(Out.MaxStackBytes) +
              " stack bytes exceed " + std::to_string(RamBytes) +
              " RAM bytes";
    return R;
  }

  R.Prog = std::move(Out);
  return R;
}

CompileResult b2::compiler::compileProgram(const Program &P,
                                           const CompilerOptions &Options,
                                           const Entry &EntryPoint,
                                           Word RamBytes) {
  MmioExtCallCompiler Mmio;
  return compileProgram(P, Options, EntryPoint, Mmio, RamBytes);
}
