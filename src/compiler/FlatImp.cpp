//===- compiler/FlatImp.cpp - Flattened intermediate language ---------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "compiler/FlatImp.h"

#include "support/Format.h"

using namespace b2;
using namespace b2::compiler;

namespace {
std::shared_ptr<FStmt> mk(FStmt::Kind K) {
  auto S = std::make_shared<FStmt>();
  S->K = K;
  return S;
}
} // namespace

FStmtPtr FStmt::skip() { return mk(Kind::Skip); }

FStmtPtr FStmt::constant(FVar Dst, Word Imm) {
  auto S = mk(Kind::Const);
  S->Dst = Dst;
  S->Imm = Imm;
  return S;
}

FStmtPtr FStmt::copy(FVar Dst, FVar A) {
  auto S = mk(Kind::Copy);
  S->Dst = Dst;
  S->A = A;
  return S;
}

FStmtPtr FStmt::op(FVar Dst, bedrock2::BinOp Op, FVar A, FVar B) {
  auto S = mk(Kind::Op);
  S->Dst = Dst;
  S->Op = Op;
  S->A = A;
  S->B = B;
  return S;
}

FStmtPtr FStmt::opImm(FVar Dst, bedrock2::BinOp Op, FVar A, Word Imm) {
  auto S = mk(Kind::OpImm);
  S->Dst = Dst;
  S->Op = Op;
  S->A = A;
  S->Imm = Imm;
  return S;
}

FStmtPtr FStmt::load(FVar Dst, unsigned Size, FVar Addr) {
  auto S = mk(Kind::Load);
  S->Dst = Dst;
  S->Size = Size;
  S->A = Addr;
  return S;
}

FStmtPtr FStmt::store(unsigned Size, FVar Addr, FVar Value) {
  auto S = mk(Kind::Store);
  S->Size = Size;
  S->A = Addr;
  S->B = Value;
  return S;
}

FStmtPtr FStmt::ifThenElse(FVar CondVar, FStmtPtr S1, FStmtPtr S2) {
  auto S = mk(Kind::If);
  S->CondVar = CondVar;
  S->S1 = std::move(S1);
  S->S2 = std::move(S2);
  return S;
}

FStmtPtr FStmt::whileLoop(FStmtPtr CondPre, FVar CondVar, FStmtPtr Body) {
  auto S = mk(Kind::While);
  S->CondPre = std::move(CondPre);
  S->CondVar = CondVar;
  S->S1 = std::move(Body);
  return S;
}

FStmtPtr FStmt::seq(FStmtPtr S1, FStmtPtr S2) {
  auto S = mk(Kind::Seq);
  S->S1 = std::move(S1);
  S->S2 = std::move(S2);
  return S;
}

FStmtPtr FStmt::call(std::vector<FVar> Dsts, std::string Callee,
                     std::vector<FVar> Args) {
  auto S = mk(Kind::Call);
  S->Dsts = std::move(Dsts);
  S->Callee = std::move(Callee);
  S->Args = std::move(Args);
  return S;
}

FStmtPtr FStmt::interact(std::vector<FVar> Dsts, std::string Action,
                         std::vector<FVar> Args) {
  auto S = mk(Kind::Interact);
  S->Dsts = std::move(Dsts);
  S->Callee = std::move(Action);
  S->Args = std::move(Args);
  return S;
}

FStmtPtr FStmt::stackalloc(FVar Dst, Word NBytes, FStmtPtr Body) {
  auto S = mk(Kind::Stackalloc);
  S->Dst = Dst;
  S->NBytes = NBytes;
  S->S1 = std::move(Body);
  return S;
}

namespace {

void print(const FlatFunction &F, const FStmt &S, unsigned Indent,
           std::string &Out) {
  auto V = [&](FVar Id) {
    if (Id < F.VarNames.size() && !F.VarNames[Id].empty())
      return F.VarNames[Id] + "#" + std::to_string(Id);
    return "v" + std::to_string(Id);
  };
  std::string Pad(Indent * 2, ' ');
  switch (S.K) {
  case FStmt::Kind::Skip:
    Out += Pad + "skip\n";
    return;
  case FStmt::Kind::Const:
    Out += Pad + V(S.Dst) + " = " + support::hex32(S.Imm) + "\n";
    return;
  case FStmt::Kind::Copy:
    Out += Pad + V(S.Dst) + " = " + V(S.A) + "\n";
    return;
  case FStmt::Kind::Op:
    Out += Pad + V(S.Dst) + " = " + V(S.A) + " " +
           bedrock2::binOpName(S.Op) + " " + V(S.B) + "\n";
    return;
  case FStmt::Kind::OpImm:
    Out += Pad + V(S.Dst) + " = " + V(S.A) + " " +
           bedrock2::binOpName(S.Op) + " " + support::hex32(S.Imm) + "\n";
    return;
  case FStmt::Kind::Load:
    Out += Pad + V(S.Dst) + " = load" + std::to_string(S.Size) + "[" +
           V(S.A) + "]\n";
    return;
  case FStmt::Kind::Store:
    Out += Pad + "store" + std::to_string(S.Size) + "[" + V(S.A) +
           "] = " + V(S.B) + "\n";
    return;
  case FStmt::Kind::If:
    Out += Pad + "if " + V(S.CondVar) + " {\n";
    print(F, *S.S1, Indent + 1, Out);
    Out += Pad + "} else {\n";
    print(F, *S.S2, Indent + 1, Out);
    Out += Pad + "}\n";
    return;
  case FStmt::Kind::While:
    Out += Pad + "while {\n";
    print(F, *S.CondPre, Indent + 1, Out);
    Out += Pad + "  test " + V(S.CondVar) + "\n";
    Out += Pad + "} do {\n";
    print(F, *S.S1, Indent + 1, Out);
    Out += Pad + "}\n";
    return;
  case FStmt::Kind::Seq:
    print(F, *S.S1, Indent, Out);
    print(F, *S.S2, Indent, Out);
    return;
  case FStmt::Kind::Call:
  case FStmt::Kind::Interact: {
    Out += Pad;
    for (size_t I = 0; I != S.Dsts.size(); ++I)
      Out += (I ? ", " : "") + V(S.Dsts[I]);
    if (!S.Dsts.empty())
      Out += " = ";
    Out += (S.K == FStmt::Kind::Interact ? "extern " : "") + S.Callee + "(";
    for (size_t I = 0; I != S.Args.size(); ++I)
      Out += (I ? ", " : "") + V(S.Args[I]);
    Out += ")\n";
    return;
  }
  case FStmt::Kind::Stackalloc:
    Out += Pad + V(S.Dst) + " = stackalloc " + std::to_string(S.NBytes) +
           " {\n";
    print(F, *S.S1, Indent + 1, Out);
    Out += Pad + "}\n";
    return;
  }
}

} // namespace

std::string b2::compiler::toString(const FlatFunction &F) {
  std::string Out = "flat fn " + F.Name + "(";
  for (size_t I = 0; I != F.Params.size(); ++I)
    Out += (I ? ", " : "") + std::to_string(F.Params[I]);
  Out += ") -> (";
  for (size_t I = 0; I != F.Rets.size(); ++I)
    Out += (I ? ", " : "") + std::to_string(F.Rets[I]);
  Out += ") {\n";
  print(F, *F.Body, 1, Out);
  Out += "}\n";
  return Out;
}
