//===- verify/Refinement.cpp - Pipeline-refines-spec checking ----------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/Refinement.h"

#include "kami/SpecCore.h"
#include "support/Format.h"

using namespace b2;
using namespace b2::verify;
using namespace b2::support;

RefinementResult
b2::verify::checkRefinement(const std::vector<uint8_t> &Image,
                            DeviceFactory MakeDevice,
                            const RefinementOptions &Options) {
  RefinementResult R;

  auto PipeDev = MakeDevice();
  kami::Bram PipeMem(Options.RamBytes);
  PipeMem.loadImage(Image);
  kami::PipelinedCore Pipe(PipeMem, *PipeDev, Options.Pipe);

  auto SpecDev = MakeDevice();
  kami::Bram SpecMem(Options.RamBytes);
  SpecMem.loadImage(Image);
  kami::SpecCore Spec(SpecMem, *SpecDev);

  if (!Pipe.runUntilRetired(Options.Retirements, Options.MaxCycles)) {
    R.Error = "pipelined core retired only " +
              std::to_string(Pipe.retired()) + " of " +
              std::to_string(Options.Retirements) + " instructions in " +
              std::to_string(Options.MaxCycles) + " cycles";
    return R;
  }
  Spec.run(Pipe.retired()); // The spec core retires one per cycle.

  R.Retired = Pipe.retired();
  R.PipelineCycles = Pipe.cycles();
  R.SpecCycles = Spec.cycles();

  // Trace containment (here: equality, since devices are deterministic).
  const kami::LabelTrace &A = Pipe.labels();
  const kami::LabelTrace &B = Spec.labels();
  size_t N = std::min(A.size(), B.size());
  for (size_t I = 0; I != N; ++I) {
    if (!(A[I] == B[I])) {
      R.Error = "label " + std::to_string(I) + " differs: pipeline " +
                riscv::toString(kami::kamiLabelSeqR({A[I]})[0]) + " vs spec " +
                riscv::toString(kami::kamiLabelSeqR({B[I]})[0]);
      return R;
    }
  }
  if (A.size() != B.size()) {
    R.Error = "label-trace lengths differ: pipeline " +
              std::to_string(A.size()) + " vs spec " +
              std::to_string(B.size());
    return R;
  }

  if (Options.CompareArchState) {
    for (unsigned Reg = 0; Reg != 32; ++Reg) {
      if (Pipe.getReg(Reg) != Spec.getReg(Reg)) {
        R.Error = "final register x" + std::to_string(Reg) +
                  " differs: pipeline " + hex32(Pipe.getReg(Reg)) +
                  " vs spec " + hex32(Spec.getReg(Reg));
        return R;
      }
    }
    if (Pipe.architecturalPc() != Spec.getPc()) {
      R.Error = "final pc differs: pipeline " +
                hex32(Pipe.architecturalPc()) + " vs spec " +
                hex32(Spec.getPc());
      return R;
    }
    for (Word Addr = 0; Addr < Options.RamBytes; Addr += 4) {
      if (PipeMem.readWord(Addr) != SpecMem.readWord(Addr)) {
        R.Error = "final memory word at " + hex32(Addr) + " differs";
        return R;
      }
    }
  }

  R.Ok = true;
  return R;
}
