//===- verify/FaultInjection.cpp - Seeded-fault registry metadata -----------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/FaultInjection.h"

using namespace b2;
using namespace b2::fi;

const std::vector<FaultInfo> &b2::fi::faultRegistry() {
  static const std::vector<FaultInfo> Registry = {
      // -- Compiler ----------------------------------------------------------
      {Fault::CompilerRegallocWrongReg, "compiler-regalloc-wrong-reg",
       "compiler", "CompilerDiff",
       "register allocator assigns two simultaneously live variables to "
       "the same register"},
      {Fault::CompilerLoadNoZeroExtend, "compiler-load-no-zero-extend",
       "compiler", "CompilerDiff",
       "1-byte loads compile to lb (sign-extending) instead of lbu"},
      {Fault::CompilerBranchOffByOne, "compiler-branch-off-by-one",
       "compiler", "CompilerDiff",
       "short conditional branches resolve one instruction past their "
       "target"},
      {Fault::CompilerStackallocNoZero, "compiler-stackalloc-no-zero",
       "compiler", "CompilerDiff",
       "stackalloc omits the zero-fill loop, exposing stale stack bytes"},
      {Fault::CompilerCalleeSavedSkip, "compiler-callee-saved-skip",
       "compiler", "CompilerDiff",
       "prologue/epilogue skip the first used callee-saved register"},
      {Fault::CompilerImmTruncate, "compiler-imm-truncate", "compiler",
       "CompilerDiff",
       "constant materialization truncates immediates to 12 signed bits"},
      // -- ISA simulator -----------------------------------------------------
      {Fault::SimSraLogicalShift, "sim-sra-logical-shift", "sim", "Lockstep",
       "sra/srai executes as a logical right shift"},
      {Fault::SimBranchLtAsGe, "sim-branch-lt-as-ge", "sim", "Lockstep",
       "blt takes the bge condition"},
      {Fault::SimLhWrongWidth, "sim-lh-wrong-width", "sim", "Lockstep",
       "lh sign-extends from bit 7 instead of bit 15"},
      {Fault::SimStoreKeepsXAddrs, "sim-store-keeps-xaddrs", "sim",
       "SimCacheDiff",
       "stores skip the section-5.6 discipline: stored bytes stay in "
       "XAddrs and stale decode-cache lines survive"},
      {Fault::SimDecodeCacheNoInvalidate, "sim-decode-cache-no-invalidate",
       "sim", "SimCacheDiff",
       "XAddrs removal no longer drops overlapping decode-cache lines "
       "(invalidation set != removal set)"},
      {Fault::SimBlockStaleSuperblock, "sim-stale-superblock-after-invalidate",
       "sim", "BlockDiff",
       "decode invalidation no longer kills the owning superblocks, so "
       "the trace engine keeps executing stale micro-op traces after "
       "self-modifying stores"},
      {Fault::SimBlockFusedClobber, "sim-fused-op-flag-clobber", "sim",
       "BlockDiff",
       "the fused addi/branch micro-op evaluates its branch on the stale "
       "pre-increment counter value instead of the updated one"},
      // -- Kami processors ---------------------------------------------------
      {Fault::KamiBtbNoSquash, "kami-btb-no-squash", "kami", "Refinement",
       "a detected misprediction redirects fetch but does not squash the "
       "wrong-path instruction in the decode latch"},
      {Fault::KamiForwardLoadStale, "kami-forward-load-stale", "kami",
       "Refinement",
       "WB->ID forwarding also fires for loads, forwarding the stale ALU "
       "latch instead of the loaded value"},
      {Fault::KamiMemWrongByteEnable, "kami-mem-wrong-byte-enable", "kami",
       "Lockstep",
       "sub-word BRAM stores assert all four byte-enable lanes"},
      {Fault::KamiLoadNoSignExtend, "kami-load-no-sign-extend", "kami",
       "Lockstep", "lb zero-extends the loaded byte"},
      {Fault::KamiSltAsUnsigned, "kami-slt-as-unsigned", "kami", "Lockstep",
       "slt/slti compare unsigned"},
      {Fault::KamiDecodeShamtWide, "kami-decode-shamt-wide", "kami",
       "DecodeConsistency",
       "shift-immediate decode keeps the whole I-immediate instead of "
       "masking to the 5-bit shamt"},
      {Fault::KamiIcacheFillTruncated, "kami-icache-fill-truncated", "kami",
       "Lockstep",
       "the reset-time I$ fill copies only the lower half of BRAM; upper "
       "fetches read zero words"},
      // -- Devices -----------------------------------------------------------
      {Fault::DevLanRxByteOrder, "dev-lan-rx-byte-order", "devices",
       "EndToEnd",
       "LAN9250 RX data FIFO assembles its 32-bit words big-endian"},
      {Fault::DevLanRxLengthOffByOne, "dev-lan-rx-length-off-by-one",
       "devices", "EndToEnd",
       "LAN9250 RX status words report the frame length plus one"},
      {Fault::DevSpiStaleRead, "dev-spi-stale-read", "devices", "EndToEnd",
       "SPI rxdata returns the previously popped byte instead of the "
       "FIFO-empty flag"},
      {Fault::DevLanRxCrossFrameLatch, "dev-lan-rx-cross-frame-latch",
       "devices", "EndToEnd",
       "LAN9250 RX leaks a marker latch across frame boundaries: after an "
       "ON command is buffered, later OFF commands are corrupted in the "
       "FIFO"},
      // -- Interpreter / bytecode --------------------------------------------
      {Fault::BcLoopChargeMiscount, "bc-loop-charge-miscount", "interp",
       "InterpDiff",
       "the fused whole-loop-iteration op charges one statement too few "
       "on body entry"},
      {Fault::BcLatchOpAsAdd, "bc-latch-op-as-add", "interp", "InterpDiff",
       "fused 'i = i op k' latches execute op as addition"},
      {Fault::BcBrVZInverted, "bc-brvz-inverted", "interp", "InterpDiff",
       "fused loop-head branches exit on nonzero instead of zero"},
      {Fault::BcDivCountSkip, "bc-div-count-skip", "interp", "InterpDiff",
       "the bytecode Binop handler does not count divisions by zero"},
      {Fault::BcAllocSkew, "bc-alloc-skew", "interp", "InterpDiff",
       "bytecode stackalloc binds the pointer 4 bytes past the owned "
       "base"},
      {Fault::FootprintCoalesceDropByte, "footprint-coalesce-drop-byte",
       "interp", "CompilerDiff",
       "merging overlapping ownership intervals drops the last byte of "
       "the union"},
      // -- Traffic subsystem ---------------------------------------------------
      {Fault::TrafficMonitorDropEvent, "traffic-monitor-drop-event",
       "traffic", "SoakMonitor",
       "the streaming trace monitor silently skips every 64th event it "
       "is fed"},
      {Fault::TrafficGenUnseededFrame, "traffic-gen-unseeded-frame",
       "traffic", "SoakMonitor",
       "the scenario generator derives one payload byte from hidden "
       "global state instead of the seed"},
      {Fault::TrafficPcapTruncateWrite, "traffic-pcap-truncate-write",
       "traffic", "SoakMonitor",
       "the pcap writer drops the last byte of frames longer than 64 "
       "bytes"},
      {Fault::SnapStateStaleLatch, "snap-state-stale-latch", "traffic",
       "SnapDiff",
       "checkpoint restore leaves the SPI shifter-busy latch stale, so "
       "a snapshot-resumed run diverges from the straight-through run"},
      // -- VC subsystem --------------------------------------------------------
      {Fault::VcWpDroppedConjunct, "vc-wp-dropped-conjunct", "vc", "VcCheck",
       "the WP generator drops the entry function's postcondition "
       "obligation, so buggy contracts verify Valid"},
      {Fault::VcSolverBadModel, "vc-solver-bad-model", "vc", "VcCheck",
       "the SAT backend flips one bit of every model it returns, so "
       "symbolic counterexamples describe no real execution"},
      {Fault::VcCacheStaleHit, "vc-cache-stale-hit", "vc", "VcCheck",
       "the solved-obligation cache loses hash discrimination and answers "
       "any lookup from any stored entry, so unproved obligations come "
       "back proved"},
      {Fault::VcSliceDroppedSupport, "vc-slice-dropped-support", "vc",
       "VcCheck",
       "the cone-of-influence slicer drops one live assumption, so sliced "
       "queries are weaker than the originals"},
  };
  return Registry;
}

const FaultInfo *b2::fi::findFault(const std::string &Name) {
  for (const FaultInfo &F : faultRegistry())
    if (Name == F.Name)
      return &F;
  return nullptr;
}

std::string b2::fi::faultNameList() {
  std::string Out;
  for (const FaultInfo &F : faultRegistry()) {
    if (!Out.empty())
      Out += ", ";
    Out += F.Name;
  }
  return Out;
}
