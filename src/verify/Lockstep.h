//===- verify/Lockstep.h - Processor/ISA lockstep checking -----*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the paper's `kstep1_sound` /
/// `kstep_star_sound` theorems (section 5.8): as long as the software
/// semantics do not flag undefined behavior, the pipelined processor's
/// architectural state after each retirement must be `related` to the ISA
/// simulator's state after the corresponding step:
///
///  * equal register files,
///  * the pipelined core's next-retirement PC equals the simulator's PC,
///  * equal data memory (checked periodically and at the end), and
///  * the instruction cache agrees with memory on all executable
///    addresses (the XAddrs part of `related`).
///
/// The MMIO label sequence must equal the simulator's trace under
/// KamiLabelSeqR. When the simulator *does* flag UB, the check stops —
/// beyond that point the hardware "just proceeds in some arbitrary way".
///
//===----------------------------------------------------------------------===//

#ifndef B2_VERIFY_LOCKSTEP_H
#define B2_VERIFY_LOCKSTEP_H

#include "kami/PipelinedCore.h"
#include "riscv/Machine.h"
#include "verify/CompilerDiff.h" // DeviceFactory

#include <cstdint>
#include <string>
#include <vector>

namespace b2 {
namespace verify {

struct LockstepOptions {
  Word RamBytes = 64 * 1024;
  uint64_t MaxRetired = 1'000'000;
  uint64_t MaxCyclesPerInstr = 10'000; ///< Liveness bound per retirement.
  uint64_t MemoryCheckEvery = 512;     ///< Retirements between full memory
                                       ///< comparisons.
  kami::PipeConfig Pipe;
};

struct LockstepResult {
  bool Ok = false;
  std::string Error;
  uint64_t Retired = 0;
  uint64_t Cycles = 0;
  bool SimulatorHitUb = false; ///< The run ended because the software
                               ///< semantics flagged UB (vacuous beyond).
  riscv::UbKind Ub = riscv::UbKind::None;
};

/// Runs \p Image from address 0 on both models in lockstep until
/// MaxRetired instructions, a halt PC (optional, pass ~0u to disable), UB,
/// or a mismatch.
LockstepResult lockstep(const std::vector<uint8_t> &Image, Word HaltPc,
                        DeviceFactory MakeDevice,
                        const LockstepOptions &Options);

} // namespace verify
} // namespace b2

#endif // B2_VERIFY_LOCKSTEP_H
