//===- verify/DecodeConsistency.h - ISA/processor decode check -*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the paper's "processor-ISA consistency
/// proof" (Figure 3): the Kami processor's decoder and the riscv-coq-style
/// decoder used by the compiler were written independently, and proving
/// them equivalent "had not been found by Kami's specification-validation
/// efforts but showed up while trying to prove Kami's RISC-V specification
/// equivalent to the one used by the compiler" (section 5.5). Here the
/// equivalence is checked differentially over instruction words, and the
/// shared execute logic is cross-checked over operand values.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VERIFY_DECODECONSISTENCY_H
#define B2_VERIFY_DECODECONSISTENCY_H

#include "support/Word.h"

#include <cstdint>
#include <string>

namespace b2 {
namespace verify {

/// Checks that the hardware decode of \p Raw agrees with the
/// software-side decode (same legality verdict, and for legal words the
/// same operation, operands, and immediate). Returns true on agreement;
/// otherwise fills \p Error.
bool decodeAgrees(Word Raw, std::string &Error);

/// Checks that hardware execute logic (ALU, branch, load extension)
/// agrees with the software semantics for the instruction word \p Raw on
/// operands \p A and \p B. Non-ALU/branch words vacuously agree.
bool execAgrees(Word Raw, Word A, Word B, std::string &Error);

/// Randomized sweep: \p Samples random instruction words (plus an
/// exhaustive pass over all major-opcode/funct combinations) through both
/// checks. Returns the number of disagreements (0 = consistent) and
/// reports the first few into \p Report.
uint64_t sweepDecodeConsistency(uint64_t Samples, uint64_t Seed,
                                std::string &Report);

} // namespace verify
} // namespace b2

#endif // B2_VERIFY_DECODECONSISTENCY_H
