//===- verify/DecodeConsistency.cpp - ISA/processor decode check ------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/DecodeConsistency.h"

#include "isa/Disasm.h"
#include "isa/Encoding.h"
#include "kami/Decode.h"
#include "riscv/Machine.h"
#include "riscv/Step.h"
#include "support/Format.h"
#include "support/Rng.h"

using namespace b2;
using namespace b2::verify;
using namespace b2::support;

bool b2::verify::decodeAgrees(Word Raw, std::string &Error) {
  isa::Instr Sw = isa::decode(Raw);
  kami::DecodedInst Hw = kami::decodeInst(Raw);
  isa::Instr HwAsSw = kami::toIsa(Hw);

  if (!Sw.isValid() && !HwAsSw.isValid())
    return true;
  if (Sw.isValid() != HwAsSw.isValid()) {
    Error = "legality disagreement on " + hex32(Raw) + ": software says " +
            (Sw.isValid() ? "legal" : "illegal") + ", hardware says " +
            (HwAsSw.isValid() ? "legal" : "illegal");
    return false;
  }
  if (!(Sw == HwAsSw)) {
    Error = "decode disagreement on " + hex32(Raw) + ": software " +
            isa::disasm(Sw) + " (imm " + dec(Sw.Imm) + "), hardware " +
            isa::disasm(HwAsSw) + " (imm " + dec(HwAsSw.Imm) + ")";
    return false;
  }
  return true;
}

bool b2::verify::execAgrees(Word Raw, Word A, Word B, std::string &Error) {
  isa::Instr Sw = isa::decode(Raw);
  kami::DecodedInst Hw = kami::decodeInst(Raw);
  if (!Sw.isValid() || Hw.Cls == kami::InstClass::Illegal)
    return true; // Legality itself is decodeAgrees' business.

  // Reference result: execute the instruction word on the software ISA
  // semantics (an independent path from kami::execAlu).
  auto RunReference = [&](riscv::Machine &M) {
    M.writeRam(0, 4, Raw);
    riscv::NoDevice Dev;
    riscv::step(M, Dev);
    return !M.hasUb();
  };

  switch (Hw.Cls) {
  case kami::InstClass::Alu:
  case kami::InstClass::AluImm: {
    riscv::Machine M(16);
    M.setReg(Hw.Rs1, A);
    M.setReg(Hw.Rs2, B);
    Word OperA = M.getReg(Hw.Rs1);
    Word OperB = Hw.Cls == kami::InstClass::Alu ? M.getReg(Hw.Rs2) : Hw.Imm;
    if (!RunReference(M))
      return true; // ALU ops never fault; defensive.
    Word HwResult = kami::execAlu(Hw, OperA, OperB);
    Word SwResult = M.getReg(Hw.Rd);
    if (Hw.Rd != 0 && HwResult != SwResult) {
      Error = "execute disagreement on " + hex32(Raw) + " (" +
              isa::disasm(Sw) + ") with A=" + hex32(OperA) + " B=" +
              hex32(OperB) + ": hardware " + hex32(HwResult) +
              ", software " + hex32(SwResult);
      return false;
    }
    return true;
  }
  case kami::InstClass::Branch: {
    if (Sw.Imm == 4)
      return true; // Taken and fall-through coincide: unobservable.
    riscv::Machine M(16);
    M.setReg(Hw.Rs1, A);
    M.setReg(Hw.Rs2, B);
    Word OperA = M.getReg(Hw.Rs1);
    Word OperB = M.getReg(Hw.Rs2);
    bool HwTaken = kami::execBranchTaken(Hw.Funct3, OperA, OperB);
    if (!RunReference(M))
      return true; // A taken branch may leave RAM; fetch UB is fine here.
    bool SwTaken = M.getPc() != 4;
    if (HwTaken != SwTaken) {
      Error = "branch disagreement on " + hex32(Raw) + " (" +
              isa::disasm(Sw) + ") with A=" + hex32(OperA) + " B=" +
              hex32(OperB);
      return false;
    }
    return true;
  }
  default:
    return true;
  }
}

uint64_t b2::verify::sweepDecodeConsistency(uint64_t Samples, uint64_t Seed,
                                            std::string &Report) {
  support::Rng Rng(Seed);
  uint64_t Bad = 0;
  auto Check = [&](Word Raw) {
    std::string Error;
    if (!decodeAgrees(Raw, Error)) {
      if (Bad < 5)
        Report += Error + "\n";
      ++Bad;
      return;
    }
    if (!execAgrees(Raw, Rng.interestingWord(), Rng.interestingWord(),
                    Error)) {
      if (Bad < 5)
        Report += Error + "\n";
      ++Bad;
    }
  };

  // Directed pass: every major opcode x funct3 x interesting funct7, with
  // a few register/immediate fillings each.
  static const Word Majors[] = {0x37, 0x17, 0x6F, 0x67, 0x63, 0x03,
                                0x23, 0x13, 0x33, 0x0F, 0x73, 0x2F};
  static const Word Funct7s[] = {0x00, 0x01, 0x20, 0x7F, 0x10};
  for (Word Major : Majors)
    for (Word F3 = 0; F3 != 8; ++F3)
      for (Word F7 : Funct7s)
        for (unsigned K = 0; K != 4; ++K) {
          Word Rd = Rng.below(32), Rs1 = Rng.below(32), Rs2 = Rng.below(32);
          Word Raw = (F7 << 25) | (Rs2 << 20) | (Rs1 << 15) | (F3 << 12) |
                     (Rd << 7) | Major;
          Check(Raw);
        }

  // Randomized pass.
  for (uint64_t I = 0; I != Samples; ++I)
    Check(Rng.next32());

  return Bad;
}
