//===- verify/Adequacy.cpp - Checker-adequacy campaign ----------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Each checker column below carries a small battery of *directed* stimuli:
// programs, images, or scenarios constructed so that every fault owned by
// that column changes an observable the column compares. The batteries
// double as the baseline row — with no fault armed, every stimulus must
// pass on the same binary, which is the no-false-positive property.
//
//===----------------------------------------------------------------------===//

#include "verify/Adequacy.h"

#include "bedrock2/ExtSpec.h"
#include "bedrock2/Parser.h"
#include "bedrock2/Semantics.h"
#include "devices/Net.h"
#include "devices/Platform.h"
#include "isa/Build.h"
#include "isa/Encoding.h"
#include "riscv/BlockEngine.h"
#include "riscv/Machine.h"
#include "riscv/Step.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "traffic/Checkpoint.h"
#include "traffic/Pcap.h"
#include "traffic/Scenario.h"
#include "traffic/Soak.h"
#include "verify/CompilerDiff.h"
#include "verify/DecodeConsistency.h"
#include "verify/EndToEnd.h"
#include "verify/Lockstep.h"
#include "verify/Refinement.h"
#include "vc/Vc.h"

#include <array>
#include <functional>

using namespace b2;
using namespace b2::verify;

// -- Checker names -----------------------------------------------------------

const char *b2::verify::checkerName(Checker C) {
  switch (C) {
  case Checker::CompilerDiff:
    return "CompilerDiff";
  case Checker::InterpDiff:
    return "InterpDiff";
  case Checker::Lockstep:
    return "Lockstep";
  case Checker::Refinement:
    return "Refinement";
  case Checker::EndToEnd:
    return "EndToEnd";
  case Checker::DecodeConsistency:
    return "DecodeConsistency";
  case Checker::SimCacheDiff:
    return "SimCacheDiff";
  case Checker::SoakMonitor:
    return "SoakMonitor";
  case Checker::SnapDiff:
    return "SnapDiff";
  case Checker::BlockDiff:
    return "BlockDiff";
  case Checker::VcCheck:
    return "VcCheck";
  case Checker::NumCheckers:
    break;
  }
  return "?";
}

bool b2::verify::checkerByName(const std::string &Name, Checker &Out) {
  for (unsigned I = 0; I != NumCheckers; ++I)
    if (Name == checkerName(Checker(I))) {
      Out = Checker(I);
      return true;
    }
  return false;
}

namespace {

/// One directed stimulus: Run returns true iff the checker *failed* on it
/// (a kill when a fault is armed; a false positive when none is).
struct Stim {
  const char *Name;
  std::function<bool(std::string &Detail)> Run;
};

std::string truncated(std::string S) {
  constexpr size_t Max = 200;
  if (S.size() > Max) {
    S.resize(Max);
    S += "...";
  }
  return S;
}

DeviceFactory noDev() {
  return [] { return std::make_unique<riscv::NoDevice>(); };
}

// -- CompilerDiff column -----------------------------------------------------
//
// Kill criterion: the diff fails outright, OR the source side faults on a
// program that is UB-free by construction (diffCompile treats source UB as
// vacuous, so footprint-accounting faults surface through Source.ok()).

bool compilerDiffFails(const char *Src, const char *Fn,
                       const std::vector<Word> &Args, std::string &Detail,
                       std::vector<std::pair<Word, Word>> OwnRegions = {}) {
  bedrock2::ParseResult P = bedrock2::parseProgram(Src);
  if (!P.ok()) {
    Detail = "stimulus parse error: " + P.Error;
    return true;
  }
  DiffOptions O;
  O.OwnRegions = std::move(OwnRegions);
  DiffResult D = diffCompilePure(*P.Prog, Fn, Args, O);
  if (!D.Ok) {
    Detail = D.Error;
    return true;
  }
  if (!D.Source.ok()) {
    Detail = "source-side fault on UB-free stimulus: " + D.Source.Detail;
    return true;
  }
  return false;
}

std::vector<Stim> compilerDiffStims() {
  return {
      // Several simultaneously live register-allocated variables whose
      // values must stay distinct (regalloc aliasing).
      {"live-vars", [](std::string &D) {
         return compilerDiffFails(
             "fn f(a, b) -> (r) { x = a + 1; y = b + 2; z = x ^ y;"
             "  w = x + y; r = z * 31 + w * 7 + x * 3 + y; }",
             "f", {5, 9}, D);
       }},
      // A byte load of a value with bit 7 set (lbu vs. lb).
      {"byte-load", [](std::string &D) {
         return compilerDiffFails(
             "fn f() -> (r) { stackalloc b[4] {"
             "  store4(b, 0x9C); r = load1(b); } }",
             "f", {}, D);
       }},
      // A counted loop (conditional-branch offsets).
      {"loop-branches", [](std::string &D) {
         return compilerDiffFails(
             "fn f(n) -> (r) { r = 0; i = 0;"
             "  while (i < n) { r = r + i * i; i = i + 1; } }",
             "f", {6}, D);
       }},
      // Dirty stack reuse: g1 scribbles a 64-byte stretch of stack that a
      // later same-depth call's (smaller, differently-placed) stackalloc
      // frame falls inside; g2 must still read the zeros the source
      // semantics guarantee.
      {"stackalloc-zeroing", [](std::string &D) {
         return compilerDiffFails(
             "fn g1() -> (r) { stackalloc b[64] { i = 0;"
             "  while (i < 64) { store4(b + i, 0x5A5A5A5A); i = i + 4; }"
             "  r = load4(b); } }"
             "fn g2() -> (r) { stackalloc c[16] {"
             "  r = load4(c) + load4(c + 4) + load4(c + 8) + load4(c + 12);"
             "} }"
             "fn f() -> (r) { a = g1(); b = g2(); r = b; }",
             "f", {}, D);
       }},
      // A value live across a call, with a callee that needs the same
      // callee-saved register (prologue/epilogue save discipline).
      {"live-across-call", [](std::string &D) {
         return compilerDiffFails(
             "fn bottom(x) -> (r) { r = x * 2 + 1; }"
             "fn mid(x) -> (r) { m = x * 7 + 5; u = bottom(x);"
             "  r = m + u * 3; }"
             "fn f(a) -> (r) { s = a * 5 + 1; t = mid(a);"
             "  r = s * 100 + t; }",
             "f", {3}, D);
       }},
      // A constant needing the full lui+addi pair (immediate truncation).
      {"wide-immediate", [](std::string &D) {
         return compilerDiffFails("fn f(a) -> (r) { r = a + 0x12345678; }",
                                  "f", {1}, D);
       }},
      // Two adjacent static grants (OwnRegions pairs are {addr, len})
      // that must coalesce into one interval: the store touches the
      // union's last byte, so a merge that drops it faults the source
      // side of a UB-free program.
      {"adjacent-grants", [](std::string &D) {
         return compilerDiffFails(
             "fn f() -> (r) { store4(0x8004, 7); r = load4(0x8004); }", "f",
             {}, D, {{0x8000, 4}, {0x8004, 4}});
       }},
  };
}

// -- InterpDiff column -------------------------------------------------------
//
// Runs each program in ExecMode::Differential: the AST walker and the
// bytecode engine must produce bit-identical ExecResults (returns, trace,
// fault, StepsUsed, DivByZeroCount). Kill criterion: any divergence.

bool interpDiffFails(const char *Src, const char *Fn,
                     const std::vector<Word> &Args, std::string &Detail) {
  bedrock2::ParseResult P = bedrock2::parseProgram(Src);
  if (!P.ok()) {
    Detail = "stimulus parse error: " + P.Error;
    return true;
  }
  riscv::NoDevice Dev;
  bedrock2::MmioExtSpec Ext(Dev, 64 * 1024);
  // Modest fuel: latch faults turn countdown loops into runaways, and the
  // resulting OutOfFuel-vs-done divergence should surface quickly.
  bedrock2::Interp I(*P.Prog, Ext, /*Fuel=*/200'000, {},
                     bedrock2::ExecMode::Differential);
  (void)I.callFunction(Fn, Args);
  if (I.divergenceCount() != 0) {
    Detail = I.divergence();
    return true;
  }
  return false;
}

std::vector<Stim> interpDiffStims() {
  return {
      // Countdown loop: fuses to IncLoopBrNZ with a Sub latch, covering
      // the latch-op, loop-head-branch, and body-entry-charge fast paths.
      {"countdown-loop", [](std::string &D) {
         return interpDiffFails(
             "fn f() -> (r) { r = 0; i = 8;"
             "  while (i) { r = r + i; i = i - 1; } }",
             "f", {}, D);
       }},
      // Comparison-headed loop (BrVZ over a temporary, StepN charges).
      {"counted-loop", [](std::string &D) {
         return interpDiffFails(
             "fn f() -> (r) { r = 0; i = 0;"
             "  while (i < 10) { r = r + 2; i = i + 1; } }",
             "f", {}, D);
       }},
      // Division and remainder by zero (DivByZeroCount bookkeeping).
      // Covers both the fused variable-variable fast path (a / b) and the
      // generic stack Binop op: a load-result divisor defeats the
      // peephole fusion, so `a / load4(p)` divides on the plain Binop.
      {"div-by-zero", [](std::string &D) {
         return interpDiffFails(
             "fn f(a, b) -> (r) { stackalloc p[4] {"
             "  r = a / load4(p) + a % load4(p) + a / b + a % b; } }",
             "f", {7, 0}, D);
       }},
      // Last word of an 8-byte stackalloc: a skewed base faults the
      // bytecode engine's store while the walker succeeds.
      {"alloc-edge", [](std::string &D) {
         return interpDiffFails("fn f() -> (r) { stackalloc p[8] {"
                                "  store4(p + 4, 9); r = load4(p + 4); } }",
                                "f", {}, D);
       }},
      // Nested control flow inside a counting loop (charge accounting on
      // both if-branch shapes).
      {"nested-if-loop", [](std::string &D) {
         return interpDiffFails(
             "fn f(n) -> (r) { r = 0; i = n;"
             "  while (i) { if (i & 1) { r = r + 3; } i = i - 1; } }",
             "f", {9}, D);
       }},
  };
}

// -- Lockstep column ---------------------------------------------------------
//
// Hand-assembled images (no compiler in the loop, so compiler faults
// cannot blur attribution). Every stimulus is UB-free by construction:
// simulator UB counts as a kill alongside any lockstep mismatch.

bool lockstepFails(const std::vector<isa::Instr> &P, std::string &Detail,
                   uint64_t MaxRetired = 10'000) {
  std::vector<uint8_t> Image = isa::instrencode(P);
  LockstepOptions O;
  O.MaxRetired = MaxRetired;
  O.MemoryCheckEvery = 16;
  LockstepResult R = lockstep(Image, Word(Image.size()), noDev(), O);
  if (!R.Ok) {
    Detail = R.Error;
    return true;
  }
  if (R.SimulatorHitUb) {
    Detail = std::string("simulator UB on a UB-free stimulus: ") +
             riscv::ubKindName(R.Ub);
    return true;
  }
  return false;
}

std::vector<Stim> lockstepStims() {
  using namespace isa;
  return {
      // Arithmetic right shifts of a negative value (sra and srai).
      {"shifts", [](std::string &D) {
         std::vector<Instr> P;
         materialize(0x80000000, A1, P);
         P.push_back(mkI(Opcode::Srai, A2, A1, 4));
         P.push_back(addi(A4, Zero, 9));
         P.push_back(mkR(Opcode::Sra, A3, A1, A4));
         return lockstepFails(P, D);
       }},
      // Signed branch on mixed-sign operands.
      {"signed-branch", [](std::string &D) {
         std::vector<Instr> P;
         P.push_back(addi(A1, Zero, -1));
         P.push_back(addi(A2, Zero, 1));
         P.push_back(mkB(Opcode::Blt, A1, A2, 8)); // Skip the next instr.
         P.push_back(addi(A3, Zero, 111));
         P.push_back(addi(A4, Zero, 222));
         return lockstepFails(P, D);
       }},
      // Sign-extending loads of negative halfword and byte values.
      {"signed-loads", [](std::string &D) {
         std::vector<Instr> P;
         materialize(0x00008180, A1, P);
         P.push_back(sw(Zero, A1, 0x200));
         P.push_back(mkI(Opcode::Lh, A2, Zero, 0x200));
         P.push_back(mkI(Opcode::Lb, A3, Zero, 0x201)); // Byte 0x81.
         P.push_back(mkI(Opcode::Lbu, A4, Zero, 0x201));
         return lockstepFails(P, D);
       }},
      // Signed set-less-than on mixed-sign operands.
      {"signed-slt", [](std::string &D) {
         std::vector<Instr> P;
         P.push_back(addi(A1, Zero, -1));
         P.push_back(addi(A2, Zero, 1));
         P.push_back(mkR(Opcode::Slt, A3, A1, A2));
         P.push_back(mkI(Opcode::Slti, A4, A1, 1));
         return lockstepFails(P, D);
       }},
      // A byte store into a word that already holds other live bytes.
      {"subword-store", [](std::string &D) {
         std::vector<Instr> P;
         materialize(0x11223344, A1, P);
         P.push_back(sw(Zero, A1, 0x100));
         P.push_back(addi(A2, Zero, 0x5A));
         P.push_back(mkS(Opcode::Sb, Zero, A2, 0x100));
         P.push_back(lw(A3, Zero, 0x100));
         return lockstepFails(P, D);
       }},
      // Code living in the upper half of RAM (reset-time I$ fill reach).
      {"upper-half-code", [](std::string &D) {
         std::vector<Instr> P;
         constexpr Word High = 48 * 1024;
         P.push_back(jal(Zero, High));
         P.resize(High / 4, nop());
         P.push_back(addi(A0, Zero, 41));
         P.push_back(addi(A0, A0, 1));
         return lockstepFails(P, D);
       }},
  };
}

// -- Refinement column -------------------------------------------------------

bool refinementFails(const std::vector<isa::Instr> &P,
                     const kami::PipeConfig &Pipe, uint64_t Retirements,
                     std::string &Detail) {
  RefinementOptions O;
  O.Pipe = Pipe;
  O.Retirements = Retirements;
  RefinementResult R = checkRefinement(isa::instrencode(P), noDev(), O);
  if (!R.Ok) {
    Detail = R.Error;
    return true;
  }
  return false;
}

std::vector<Stim> refinementStims() {
  using namespace isa;
  return {
      // A tight counted loop: every backward branch the BTB has not yet
      // learned mispredicts, putting a wrong-path instruction in the
      // decode latch that must be squashed.
      {"btb-mispredicts", [](std::string &D) {
         std::vector<Instr> P;
         P.push_back(addi(A0, Zero, 0));
         P.push_back(addi(A1, Zero, 6));
         P.push_back(addi(A0, A0, 1));              // Loop head.
         P.push_back(mkB(Opcode::Blt, A0, A1, -4)); // Back to the head.
         P.push_back(addi(A2, Zero, 55));           // Wrong-path fodder.
         P.push_back(addi(A3, Zero, 66));
         kami::PipeConfig Pipe;
         return refinementFails(P, Pipe, /*Retirements=*/24, D);
       }},
      // Load-use sequences under the forwarding network: a load result
      // must come from memory, never from the stale WB ALU latch.
      {"load-use-forwarding", [](std::string &D) {
         std::vector<Instr> P;
         P.push_back(addi(A1, Zero, 0x300));
         materialize(0x5A5A, A2, P);
         P.push_back(sw(A1, A2, 0));
         P.push_back(addi(A6, Zero, 99)); // Refresh the ALU latch.
         P.push_back(lw(A3, A1, 0));
         P.push_back(mkR(Opcode::Add, A4, A3, A3)); // Back-to-back use.
         P.push_back(lw(A5, A1, 0));
         P.push_back(nop());
         P.push_back(mkR(Opcode::Add, A7, A5, A5)); // One-gap use.
         kami::PipeConfig Pipe;
         Pipe.EnableForwarding = true;
         return refinementFails(P, Pipe, /*Retirements=*/16, D);
       }},
  };
}

// -- EndToEnd column ---------------------------------------------------------
//
// The ISA-simulator substrate keeps the column fast; the device models and
// the firmware — where this column's owned faults live — are identical
// across substrates.

bool e2eFails(const E2EScenario &S, std::string &Detail) {
  E2EOptions O;
  O.Core = CoreKind::IsaSim;
  O.MaxCycles = 60'000'000;
  E2EResult R = runLightbulbEndToEnd(S, O);
  if (!R.Ok) {
    Detail = R.Error.empty() ? "end-to-end check failed" : R.Error;
    return true;
  }
  return false;
}

std::vector<Stim> endToEndStims() {
  using namespace devices;
  return {
      // One valid ON command, then a headers-only 42-byte frame: exactly
      // one byte short of carrying a command, so a length overcount makes
      // the firmware actuate on it while the ground truth says ignore.
      {"on-then-runt", [](std::string &D) {
         E2EScenario S;
         S.Frames.push_back(ScheduledFrame{4000, buildCommandFrame(true)});
         S.Frames.push_back(ScheduledFrame{14000, buildUdpFrame({})});
         return e2eFails(S, D);
       }},
      // A maximum-length valid command frame (1536 bytes): one byte of
      // reported overcount crosses the driver's acceptance bound.
      {"max-length-frame", [](std::string &D) {
         std::vector<uint8_t> Payload(frame::MaxFrameLen - frame::CmdOffset);
         Payload[0] = 1; // Command: on.
         for (size_t I = 1; I != Payload.size(); ++I)
           Payload[I] = uint8_t(I * 7);
         E2EScenario S;
         S.Frames.push_back(ScheduledFrame{4000, buildUdpFrame(Payload)});
         return e2eFails(S, D);
       }},
      // ON then OFF: the minimal cross-frame sequence. Kills bugs whose
      // trigger is state leaked between frames (the cross-frame RX latch
      // eats the OFF, so the light never turns back off).
      {"on-then-off", [](std::string &D) {
         E2EScenario S;
         S.Frames.push_back(ScheduledFrame{4000, buildCommandFrame(true)});
         S.Frames.push_back(ScheduledFrame{14000, buildCommandFrame(false)});
         return e2eFails(S, D);
       }},
      // Adversarial mix from the packet fuzzer.
      {"fuzz-mix", [](std::string &D) {
         return e2eFails(fuzzScenario(/*Seed=*/0xADE4, /*NumFrames=*/5), D);
       }},
  };
}

// -- DecodeConsistency column ------------------------------------------------

std::vector<Stim> decodeConsistencyStims() {
  using namespace isa;
  return {
      // Directed instruction words; srai is the one whose I-immediate and
      // 5-bit shamt differ (funct7 = 0100000 rides in the upper bits).
      {"directed-raws", [](std::string &D) {
         const Word Raws[] = {
             0x00000013, // nop
             encode(mkI(Opcode::Srai, A0, A0, 31)),
             encode(mkI(Opcode::Srli, A0, A0, 31)),
             encode(mkI(Opcode::Slli, A0, A0, 17)),
             encode(mkR(Opcode::Sra, A0, A1, A2)),
             encode(mkR(Opcode::Slt, A0, A1, A2)),
             encode(mkI(Opcode::Lb, A0, A1, -4)),
             encode(mkS(Opcode::Sb, A0, A1, 12)),
             encode(mkB(Opcode::Blt, A0, A1, -8)),
         };
         for (Word Raw : Raws)
           if (!decodeAgrees(Raw, D))
             return true;
         return false;
       }},
      // Shared execute logic on edge operands (sign bits, shift ranges).
      {"exec-edges", [](std::string &D) {
         const Word Sra = encode(mkR(Opcode::Sra, A0, A1, A2));
         const Word Slt = encode(mkR(Opcode::Slt, A0, A1, A2));
         const Word Lb = encode(mkI(Opcode::Lb, A0, A1, 0));
         return !execAgrees(Sra, 0x80000000, 31, D) ||
                !execAgrees(Sra, 0x80000000, 1, D) ||
                !execAgrees(Slt, Word(-1), 1, D) ||
                !execAgrees(Slt, 1, Word(-1), D) ||
                !execAgrees(Lb, 0x80, 0, D) || !execAgrees(Lb, 0x7F, 0, D);
       }},
      // Randomized sweep (seeded; includes the exhaustive opcode pass).
      {"sweep", [](std::string &D) {
         std::string Report;
         uint64_t Bad = sweepDecodeConsistency(/*Samples=*/20'000,
                                               /*Seed=*/7, Report);
         if (Bad != 0) {
           D = Report;
           return true;
         }
         return false;
       }},
  };
}

// -- SimCacheDiff column -----------------------------------------------------
//
// The adequacy campaign's own checker: the same image runs on two ISA
// simulators, predecoded fast path on vs. off, and the architectural
// outcome (registers, PC, UB verdict, trace, retirement count) must be
// identical — the executable form of the fast path's "no architectural
// effect" claim, and the only column that can own the decode-cache
// invalidation discipline.

struct SimRun {
  std::array<Word, 32> Regs{};
  Word Pc = 0;
  riscv::UbKind Ub = riscv::UbKind::None;
  uint64_t Retired = 0;
  riscv::MmioTrace Trace;
};

SimRun runSimOnce(const std::vector<uint8_t> &Image, Word HaltPc, bool Cache,
                  uint64_t MaxRetired) {
  riscv::Machine M(64 * 1024);
  M.setDecodeCacheEnabled(Cache);
  M.loadImage(0, Image);
  riscv::NoDevice Dev;
  while (!M.hasUb() && M.getPc() != HaltPc &&
         M.retiredInstructions() < MaxRetired)
    if (!riscv::step(M, Dev))
      break;
  SimRun R;
  for (unsigned I = 0; I != 32; ++I)
    R.Regs[I] = M.getReg(I);
  R.Pc = M.getPc();
  R.Ub = M.ubKind();
  R.Retired = M.retiredInstructions();
  R.Trace = M.trace();
  return R;
}

bool simCacheDiffFails(const std::vector<isa::Instr> &P, std::string &Detail,
                       uint64_t MaxRetired = 10'000) {
  std::vector<uint8_t> Image = isa::instrencode(P);
  Word HaltPc = Word(Image.size());
  SimRun A = runSimOnce(Image, HaltPc, /*Cache=*/true, MaxRetired);
  SimRun B = runSimOnce(Image, HaltPc, /*Cache=*/false, MaxRetired);
  if (A.Ub != B.Ub) {
    Detail = std::string("UB verdict differs: cached ") +
             riscv::ubKindName(A.Ub) + " vs uncached " +
             riscv::ubKindName(B.Ub);
    return true;
  }
  if (A.Pc != B.Pc || A.Regs != B.Regs) {
    Detail = "architectural state differs between cached and uncached runs";
    return true;
  }
  if (A.Retired != B.Retired) {
    Detail = "retirement counts differ: cached " +
             std::to_string(A.Retired) + " vs uncached " +
             std::to_string(B.Retired);
    return true;
  }
  if (!(A.Trace == B.Trace)) {
    Detail = "MMIO traces differ between cached and uncached runs";
    return true;
  }
  return false;
}

std::vector<Stim> simCacheDiffStims() {
  using namespace isa;
  return {
      // The section-5.6 hazard, in miniature: execute an instruction (so
      // its decode is cached), overwrite it with a store, branch back to
      // it. Both runs must reach the same verdict — with the discipline
      // intact, FetchNotExecutable at the patched PC.
      {"patch-refetch", [](std::string &D) {
         std::vector<Instr> P;
         Word NewWord = encode(addi(A0, A0, 2));
         materialize(NewWord, A4, P);   // 2 instructions.
         P.push_back(addi(A5, Zero, 0));
         P.push_back(addi(A5, A5, 1));  // Loop head, index 3.
         P.push_back(addi(A0, A0, 1));  // Victim, index 4 (address 16).
         P.push_back(sw(Zero, A4, 16)); // Patch the victim.
         P.push_back(addi(A6, Zero, 2));
         P.push_back(mkB(Opcode::Blt, A5, A6, -16)); // Back to the head.
         return simCacheDiffFails(P, D);
       }},
      // Plain straight-line-plus-loop code (no self-modification): the
      // fast path must be invisible here too.
      {"plain-loop", [](std::string &D) {
         std::vector<Instr> P;
         P.push_back(addi(A0, Zero, 0));
         P.push_back(addi(A1, Zero, 12));
         P.push_back(addi(A0, A0, 3));
         P.push_back(mkB(Opcode::Blt, A0, A1, -4));
         P.push_back(sw(Zero, A0, 0x400));
         P.push_back(lw(A2, Zero, 0x400));
         return simCacheDiffFails(P, D);
       }},
  };
}

// -- SoakMonitor column ------------------------------------------------------
//
// The traffic layer's own checks: seeded scenario generation must be
// reproducible, the pcap codec must round-trip byte-exactly, and the
// streaming goodHlTrace monitor must consume exactly the events the
// machine produced. Each stim is an executable statement of a property
// the soak harness's results silently depend on.

std::vector<Stim> soakMonitorStims() {
  return {
      // Same seed, same scenario options — the generated stream must be
      // identical. TrafficGenUnseededFrame taints generation with a
      // process-global counter, so the second stream diverges.
      {"stream-determinism", [](std::string &D) {
         traffic::ScenarioOptions O;
         O.Seed = 11;
         O.Frames = 24;
         uint64_t A = traffic::streamDigest(
             traffic::generateScenario("valid-mix", O));
         uint64_t B = traffic::streamDigest(
             traffic::generateScenario("valid-mix", O));
         if (A != B) {
           D = "same-seed valid-mix streams have different digests";
           return true;
         }
         return false;
       }},
      // Encode then decode a stream whose largest frame exceeds 64 bytes
      // (TrafficPcapTruncateWrite short-writes exactly those), and whose
      // schedule exercises both the timestamp mapping and the Errored
      // side-channel bit.
      {"pcap-roundtrip", [](std::string &D) {
         std::vector<devices::ScheduledFrame> In;
         In.push_back({2000, devices::buildCommandFrame(true), false});
         In.push_back(
             {5'000'000, devices::buildUdpFrame(std::vector<uint8_t>(40, 0xab)),
              false});
         In.push_back({8000, devices::buildCommandFrame(false), true});
         std::vector<devices::ScheduledFrame> Out;
         std::string Err;
         if (!traffic::decodePcap(traffic::encodePcap(In), Out, Err)) {
           D = "decode failed: " + Err;
           return true;
         }
         if (Out.size() != In.size()) {
           D = "frame count changed across the pcap round trip";
           return true;
         }
         for (size_t I = 0; I != In.size(); ++I)
           if (Out[I].AtOp != In[I].AtOp || Out[I].Errored != In[I].Errored ||
               Out[I].Frame != In[I].Frame) {
             D = "frame " + std::to_string(I) +
                 " changed across the pcap round trip";
             return true;
           }
         return false;
       }},
      // A short healthy soak on the ISA simulator: the run must pass, and
      // the streaming monitor must have consumed every MMIO event the
      // machine emitted. TrafficMonitorDropEvent silently skips events,
      // which either desynchronizes the counts or trips a spurious
      // violation — both are kills.
      {"monitor-offline-agreement", [](std::string &D) {
         compiler::CompileResult C = traffic::compileSoakFirmware();
         if (!C.ok()) {
           D = "firmware compilation failed: " + C.Error;
           return true;
         }
         traffic::ScenarioOptions G;
         G.Seed = 5;
         G.Frames = 8;
         traffic::TrafficStream S = traffic::generateScenario("valid-mix", G);
         traffic::SoakOptions O;
         O.Core = traffic::SoakCore::IsaSim;
         traffic::ShardStats R = traffic::runSoakShard(*C.Prog, S.Frames, O);
         if (!R.Ok) {
           D = R.Error.empty() ? "soak shard failed" : R.Error;
           return true;
         }
         if (R.MonitorEventsSeen != R.MmioEvents) {
           D = "streaming monitor consumed " +
               std::to_string(R.MonitorEventsSeen) + " of " +
               std::to_string(R.MmioEvents) + " trace events";
           return true;
         }
         return false;
       }},
  };
}

// -- SnapDiff column ---------------------------------------------------------
//
// The checkpoint layer's bit-identity contract, checked directly: run a
// short soak straight through, snapshot the whole machine at a chosen
// injection depth, restore the snapshot into a fresh machine, resume,
// and demand identical stats, trace hash, light history, and delivered
// frames. A deterministic fault in the *simulated system* perturbs both
// runs equally and never trips this column; only a fault in the
// checkpoint layer itself (SnapStateStaleLatch corrupts one restored SPI
// latch) makes the resumed run diverge. Kept on the ISA simulator so the
// full 36-fault matrix stays cheap; the fuzz tests cover all three cores.

bool snapDiffFails(uint64_t Seed, uint64_t Frames, size_t Depth,
                   std::string &Detail) {
  compiler::CompileResult C = traffic::compileSoakFirmware();
  if (!C.ok()) {
    Detail = "firmware compilation failed: " + C.Error;
    return true;
  }
  traffic::ScenarioOptions G;
  G.Seed = Seed;
  G.Frames = Frames;
  traffic::TrafficStream S = traffic::generateScenario("valid-mix", G);
  traffic::SoakOptions O;
  O.Core = traffic::SoakCore::IsaSim;
  traffic::SnapshotDifferential D =
      traffic::runSnapshotDifferential(*C.Prog, S.Frames, O, Depth);
  if (!D.Identical) {
    Detail = "snapshot-resumed run diverged at depth " +
             std::to_string(Depth) + ": " + D.Detail;
    return true;
  }
  return false;
}

std::vector<Stim> snapDiffStims() {
  return {
      // Restore immediately after the first injection: the longest
      // resumed tail, so any restored-state corruption has maximal time
      // to surface.
      {"resume-after-first-inject", [](std::string &D) {
         return snapDiffFails(/*Seed=*/21, /*Frames=*/8, /*Depth=*/1, D);
       }},
      // Mid-stream and late checkpoints on a different seed (latch
      // timing at the snapshot point differs per depth).
      {"resume-depth-sweep", [](std::string &D) {
         return snapDiffFails(/*Seed=*/77, /*Frames=*/8, /*Depth=*/4, D) ||
                snapDiffFails(/*Seed=*/77, /*Frames=*/8, /*Depth=*/7, D);
       }},
  };
}

// -- BlockDiff column --------------------------------------------------------
//
// The superblock trace engine checked in lockstep against the reference
// stepper (riscv/BlockEngine.h, ExecMode::Differential): hand-assembled
// programs drive both engines over the same instruction schedule, and
// any mismatch in registers, pc, RAM, UB verdict, retirement count, or
// MMIO events is a kill. The stimuli are chosen so every engine fast
// path — fused addi/branch counters, fused lw/sw copy pairs, block
// linking, and the stale-superblock invalidation discipline — changes an
// observable the lockstep compares.

bool blockDiffFails(const std::vector<isa::Instr> &P, std::string &Detail,
                    uint64_t MaxSteps = 20'000, uint64_t Chunk = 97) {
  std::vector<uint8_t> Image = isa::instrencode(P);
  riscv::Machine M(64 * 1024);
  M.loadImage(0, Image);
  riscv::NoDevice Dev;
  riscv::BlockEngine E(M, Dev, riscv::ExecMode::Differential);
  uint64_t Done = 0;
  while (Done < MaxSteps && !M.hasUb() && E.divergences() == 0) {
    uint64_t R = E.run(std::min<uint64_t>(Chunk, MaxSteps - Done));
    Done += R;
    if (R == 0)
      break;
  }
  if (E.divergences() != 0) {
    Detail = E.divergenceDetail();
    return true;
  }
  return false;
}

std::vector<Stim> blockDiffStims() {
  using namespace isa;
  return {
      // A hot counter loop: the addi/bne pair fuses, and the branch reads
      // the register the addi just wrote — the exact shape the fused-op
      // clobber fault perturbs.
      {"hot-counter-loop", [](std::string &D) {
         std::vector<Instr> P;
         P.push_back(addi(A0, Zero, 0));
         P.push_back(addi(A1, Zero, 400));
         P.push_back(addi(A0, A0, 1));               // Loop head.
         P.push_back(mkB(Opcode::Bne, A0, A1, -4));  // Fuses with the addi.
         P.push_back(jal(Zero, 0));                  // Halt spin.
         return blockDiffFails(P, D);
       }},
      // A word-copy loop: lw/sw pairs fuse, and the trailing counter
      // keeps the block hot across many passes of linked execution.
      {"copy-loop", [](std::string &D) {
         std::vector<Instr> P;
         P.push_back(addi(A1, Zero, 0x400)); // Source cursor.
         P.push_back(addi(A2, Zero, 0x600)); // Destination cursor.
         P.push_back(addi(A3, Zero, 64));    // Words to copy.
         P.push_back(lw(A4, A1, 0));         // Loop head; fuses with sw.
         P.push_back(sw(A2, A4, 0));
         P.push_back(addi(A1, A1, 4));
         P.push_back(addi(A2, A2, 4));
         P.push_back(addi(A3, A3, -1));
         P.push_back(mkB(Opcode::Bne, A3, Zero, -20));
         P.push_back(jal(Zero, 0));          // Halt spin.
         return blockDiffFails(P, D);
       }},
      // The section-5.6 hazard against a *hot, translated* loop: run the
      // loop until its superblock exists, patch the victim instruction,
      // and re-enter. The reference semantics hit FetchNotExecutable at
      // the patched word (the store revoked execute permission); a stale
      // superblock sails past it without fetching — the divergence the
      // stale-superblock fault is built to cause.
      {"patch-refetch-hot", [](std::string &D) {
         std::vector<Instr> P;
         Word NewWord = encode(addi(A0, A0, 2));
         materialize(NewWord, A4, P);        // 2 instructions.
         P.push_back(addi(A5, Zero, 0));
         P.push_back(addi(A5, A5, 1));       // Loop head (address 12).
         P.push_back(addi(A0, A0, 1));       // Victim (address 16).
         P.push_back(addi(A6, Zero, 30));
         P.push_back(mkB(Opcode::Blt, A5, A6, -12)); // 30 hot passes.
         P.push_back(sw(Zero, A4, 16));      // Patch the victim.
         P.push_back(jal(Zero, -24));        // Re-enter at the reset.
         return blockDiffFails(P, D);
       }},
      // A store sweep that descends into the loop's own body: the
      // invalidation lands on the currently executing superblock, so the
      // mid-trace self-kill (commit the completed instruction, side-exit,
      // refetch) is on the compared path.
      {"mid-trace-invalidate", [](std::string &D) {
         std::vector<Instr> P;
         P.push_back(addi(A1, Zero, 0x200)); // Sweep cursor, counts down.
         P.push_back(addi(A2, Zero, 0x5A));
         P.push_back(sw(A1, A2, 0));         // Loop head (address 8).
         P.push_back(addi(A1, A1, -4));
         P.push_back(mkB(Opcode::Bne, A1, Zero, -8));
         return blockDiffFails(P, D);
       }},
  };
}

// -- VcCheck column ----------------------------------------------------------
//
// The symbolic VC engine checked against the interpreter from both sides.
// A Counterexample verdict must arrive with a model the checking
// interpreter *confirms* — a SAT backend that corrupts its models
// (vc-solver-bad-model) produces unconfirmed counterexamples, which the
// engine demotes to Unknown and these stims reject. And a buggy contract
// must never verify Valid: the concrete probes behind every Valid verdict
// expose a WP generator that loses obligations (vc-wp-dropped-conjunct).
// The stims are stackalloc-free and extern-free so faults owned by other
// columns cannot perturb this column's baseline.

bool vcVerdictFails(const char *Src, const char *Fn, vc::Verdict Want,
                    bedrock2::Fault WantFault, const vc::VcOptions &Opts,
                    std::string &Detail) {
  bedrock2::ParseResult P = bedrock2::parseProgram(Src);
  if (!P.ok()) {
    Detail = "stimulus parse error: " + P.Error;
    return true;
  }
  vc::FuncReport R = vc::verifyFunction(*P.Prog, Fn, "adequacy", Opts);
  if (R.Unconfirmed != 0) {
    Detail = std::to_string(R.Unconfirmed) +
             " unconfirmed symbolic counterexample(s) on '" + Fn + "'";
    return true;
  }
  if (R.V != Want) {
    Detail = std::string("expected ") + vc::verdictName(Want) + " for '" +
             Fn + "', got " + vc::verdictName(R.V) +
             (R.CexDetail.empty() ? std::string()
                                  : " (" + R.CexDetail + ")");
    return true;
  }
  if (Want == vc::Verdict::Counterexample && R.CexFault != WantFault) {
    Detail = std::string("counterexample for '") + Fn + "' replayed to " +
             bedrock2::faultName(R.CexFault) + ", expected " +
             bedrock2::faultName(WantFault);
    return true;
  }
  return false;
}

bool vcVerdictFails(const char *Src, const char *Fn, vc::Verdict Want,
                    bedrock2::Fault WantFault, std::string &Detail) {
  return vcVerdictFails(Src, Fn, Want, WantFault, vc::VcOptions(), Detail);
}

std::vector<Stim> vcCheckStims() {
  return {
      // A magic-constant contract violation: the solver must find the one
      // input in 2^32 that triggers it, and the interpreter must confirm
      // the model. A corrupted model misses the trigger, fails replay,
      // and the verdict degrades to Unknown — a kill.
      {"counterexample-confirms", [](std::string &D) {
         return vcVerdictFails(
             "fn trig(a) -> (r) ensures (r < 2) {"
             "  r = 1; if (a == 0x1234ABCD) { r = 2; } }",
             "trig", vc::Verdict::Counterexample,
             bedrock2::Fault::PostconditionFailed, D);
       }},
      // An always-wrong postcondition: must be a confirmed counterexample.
      // A WP generator that drops the ensures obligation answers Valid
      // instead, and the seeded concrete probes behind Valid verdicts
      // contradict it.
      {"valid-probes", [](std::string &D) {
         return vcVerdictFails(
             "fn bump(a) -> (r) ensures (r == a + 1) { r = a + 2; }",
             "bump", vc::Verdict::Counterexample,
             bedrock2::Fault::PostconditionFailed, D);
       }},
      // A correct contract must stay Valid (the baseline row's guard
      // against a trigger-happy engine).
      {"valid-stays-valid", [](std::string &D) {
         return vcVerdictFails(
             "fn absdiff(a, b) -> (r)"
             "  ensures ((r == a - b) | (r == b - a)) {"
             "  if (a < b) { r = b - a; } else { r = a - b; } }",
             "absdiff", vc::Verdict::Valid, bedrock2::Fault::None, D);
       }},
      // A shared solved-obligation cache warmed by a genuinely proved
      // function, then a buggy one. A cache that loses hash
      // discrimination (vc-cache-stale-hit) answers the buggy ensures
      // with the warm entry's "proved", minting a Valid the concrete
      // probes behind every Valid verdict then contradict — a kill.
      {"cache-stale-probes", [](std::string &D) {
         vc::DischargeCache Shared;
         vc::VcOptions Opts;
         Opts.SharedCache = &Shared;
         if (vcVerdictFails(
                 "fn absdiff(a, b) -> (r)"
                 "  ensures ((r == a - b) | (r == b - a)) {"
                 "  if (a < b) { r = b - a; } else { r = a - b; } }",
                 "absdiff", vc::Verdict::Valid, bedrock2::Fault::None, Opts,
                 D))
           return true;
         return vcVerdictFails(
             "fn bump(a) -> (r) ensures (r == a + 1) { r = a + 2; }",
             "bump", vc::Verdict::Counterexample,
             bedrock2::Fault::PostconditionFailed, Opts, D);
       }},
      // Differential mode on a contract whose one solver-bound
      // obligation depends on a live requires assumption. A slicer that
      // drops live support (vc-slice-dropped-support) never changes a
      // verdict — a weaker query can only turn Unsat into Sat, and Sat
      // falls back to the cold path — so the partition audit is the one
      // checker that sees the dropped assumption intersect the kept
      // cone; its mismatch demotes the verdict from Valid.
      {"differential-slice-audit", [](std::string &D) {
         vc::VcOptions Opts;
         Opts.Discharge.Differential = true;
         return vcVerdictFails(
             "fn halfdiff(a, b) -> (r)"
             "  requires (a < b)"
             "  ensures (r == b - a) {"
             "  if (a < b) { r = b - a; } else { r = a - b; } }",
             "halfdiff", vc::Verdict::Valid, bedrock2::Fault::None, Opts,
             D);
       }},
  };
}

std::vector<Stim> columnStims(Checker C) {
  switch (C) {
  case Checker::CompilerDiff:
    return compilerDiffStims();
  case Checker::InterpDiff:
    return interpDiffStims();
  case Checker::Lockstep:
    return lockstepStims();
  case Checker::Refinement:
    return refinementStims();
  case Checker::EndToEnd:
    return endToEndStims();
  case Checker::DecodeConsistency:
    return decodeConsistencyStims();
  case Checker::SimCacheDiff:
    return simCacheDiffStims();
  case Checker::SoakMonitor:
    return soakMonitorStims();
  case Checker::SnapDiff:
    return snapDiffStims();
  case Checker::BlockDiff:
    return blockDiffStims();
  case Checker::VcCheck:
    return vcCheckStims();
  case Checker::NumCheckers:
    break;
  }
  return {};
}

// -- Campaign driver ---------------------------------------------------------

CellResult runCell(const fi::FaultInfo *F, Checker C) {
  metrics::add(metrics::Id::AdequacyCells);
  metrics::Timed Wall(metrics::Id::AdequacyCellWall);
  CellResult R;
  R.FaultId = F ? F->Id : fi::Fault::NumFaults;
  R.Col = C;
  fi::FaultPlan Plan;
  if (F)
    Plan.enable(F->Id);
  fi::FaultScope Scope(Plan);
  for (const Stim &S : columnStims(C)) {
    ++R.StimuliRun;
    std::string Detail;
    if (S.Run(Detail)) {
      R.Killed = true;
      R.TimeToKill = R.StimuliRun;
      R.Detail = std::string(S.Name) + ": " + truncated(std::move(Detail));
      break;
    }
  }
  if (R.Killed)
    metrics::add(metrics::Id::AdequacyKills);
  return R;
}

const fi::FaultInfo *infoFor(fi::Fault F) {
  for (const fi::FaultInfo &I : fi::faultRegistry())
    if (I.Id == F)
      return &I;
  return nullptr;
}

} // namespace

std::vector<fi::Fault> b2::verify::quickFaultSet() {
  // One or two faults per layer; all eleven owner columns exercised.
  return {
      fi::Fault::CompilerImmTruncate,
      fi::Fault::CompilerStackallocNoZero,
      fi::Fault::SimSraLogicalShift,
      fi::Fault::SimDecodeCacheNoInvalidate,
      fi::Fault::SimBlockStaleSuperblock,
      fi::Fault::KamiBtbNoSquash,
      fi::Fault::KamiMemWrongByteEnable,
      fi::Fault::KamiDecodeShamtWide,
      fi::Fault::DevLanRxByteOrder,
      fi::Fault::BcBrVZInverted,
      fi::Fault::BcAllocSkew,
      fi::Fault::TrafficGenUnseededFrame,
      fi::Fault::SnapStateStaleLatch,
      fi::Fault::VcWpDroppedConjunct,
      fi::Fault::VcSolverBadModel,
      fi::Fault::VcCacheStaleHit,
      fi::Fault::VcSliceDroppedSupport,
  };
}

AdequacyReport b2::verify::runAdequacy(const AdequacyOptions &Options) {
  AdequacyReport Rep;
  Rep.Quick = Options.Quick;

  // Faults in scope, in registry order.
  std::vector<const fi::FaultInfo *> Faults;
  if (!Options.OnlyFault.empty()) {
    const fi::FaultInfo *F = fi::findFault(Options.OnlyFault);
    if (!F) {
      // An unknown name must not masquerade as an empty-but-green
      // campaign; record the error and run nothing.
      Rep.Error = "unknown fault '" + Options.OnlyFault +
                  "'; valid names are: " + fi::faultNameList();
      return Rep;
    }
    Faults.push_back(F);
  } else if (Options.Quick) {
    for (fi::Fault F : quickFaultSet())
      Faults.push_back(infoFor(F));
  } else {
    for (const fi::FaultInfo &F : fi::faultRegistry())
      Faults.push_back(&F);
  }

  struct CellSpec {
    const fi::FaultInfo *F;
    Checker C;
  };
  std::vector<CellSpec> Specs;
  // Baseline row first: every column with an empty plan.
  for (unsigned C = 0; C != NumCheckers; ++C)
    Specs.push_back({nullptr, Checker(C)});
  for (const fi::FaultInfo *F : Faults) {
    if (Options.Quick) {
      Checker Owner;
      if (checkerByName(F->Owner, Owner))
        Specs.push_back({F, Owner});
    } else {
      for (unsigned C = 0; C != NumCheckers; ++C)
        Specs.push_back({F, Checker(C)});
    }
  }

  // Every cell is a pure function of its (fault, checker) pair, and
  // results land in a pre-sized slot by index: bit-identical reports for
  // every thread count.
  std::vector<CellResult> Out(Specs.size());
  support::parallelFor(Specs.size(), Options.Threads, [&](size_t I) {
    Out[I] = runCell(Specs[I].F, Specs[I].C);
  });

  Rep.Baseline.assign(Out.begin(), Out.begin() + NumCheckers);
  Rep.Cells.assign(Out.begin() + NumCheckers, Out.end());
  return Rep;
}

bool AdequacyReport::noFalsePositives() const {
  for (const CellResult &C : Baseline)
    if (C.Killed)
      return false;
  return !Baseline.empty();
}

const CellResult *AdequacyReport::ownerCell(fi::Fault F) const {
  const fi::FaultInfo *Info = infoFor(F);
  Checker Owner;
  if (!Info || !checkerByName(Info->Owner, Owner))
    return nullptr;
  for (const CellResult &C : Cells)
    if (C.FaultId == F && C.Col == Owner)
      return &C;
  return nullptr;
}

bool AdequacyReport::allKilledByOwner() const {
  // Over the faults present in this report's cells.
  bool Any = false;
  for (const CellResult &C : Cells) {
    Any = true;
    const CellResult *Owner = ownerCell(C.FaultId);
    if (!Owner || !Owner->Killed)
      return false;
  }
  return Any;
}

std::string AdequacyReport::firstViolation() const {
  if (!Error.empty())
    return Error;
  for (const CellResult &C : Baseline)
    if (C.Killed)
      return std::string("false positive: ") + checkerName(C.Col) +
             " failed with no fault armed (" + C.Detail + ")";
  std::vector<fi::Fault> Seen;
  for (const CellResult &C : Cells) {
    bool New = true;
    for (fi::Fault F : Seen)
      if (F == C.FaultId)
        New = false;
    if (!New)
      continue;
    Seen.push_back(C.FaultId);
    const fi::FaultInfo *Info = infoFor(C.FaultId);
    const CellResult *Owner = ownerCell(C.FaultId);
    if (Info && (!Owner || !Owner->Killed))
      return std::string("fault not killed by its owner: ") + Info->Name +
             " (owner " + Info->Owner + ")";
  }
  return "";
}

std::string b2::verify::adequacyJson(const AdequacyReport &Report) {
  support::JsonWriter J;
  J.beginObject();
  J.key("schema").value("b2stack-adequacy-v1");
  J.key("quick").value(Report.Quick);
  if (!Report.Error.empty())
    J.key("error").value(Report.Error);
  J.key("no_false_positives").value(Report.noFalsePositives());
  J.key("all_killed_by_owner").value(Report.allKilledByOwner());

  J.key("checkers").beginArray();
  for (unsigned C = 0; C != NumCheckers; ++C)
    J.value(checkerName(Checker(C)));
  J.endArray();

  J.key("baseline").beginArray();
  for (const CellResult &C : Report.Baseline) {
    J.beginObject();
    J.key("checker").value(checkerName(C.Col));
    J.key("ok").value(!C.Killed);
    J.key("stimuli").value(C.StimuliRun);
    if (C.Killed)
      J.key("detail").value(C.Detail);
    J.endObject();
  }
  J.endArray();

  // Fault-major rendering, in registry order of the cells present.
  J.key("faults").beginArray();
  size_t I = 0;
  uint64_t KilledByOwner = 0, TotalKills = 0, NumFaults = 0;
  while (I != Report.Cells.size()) {
    fi::Fault F = Report.Cells[I].FaultId;
    const fi::FaultInfo *Info = infoFor(F);
    ++NumFaults;
    J.beginObject();
    if (Info) {
      J.key("name").value(Info->Name);
      J.key("layer").value(Info->Layer);
      J.key("owner").value(Info->Owner);
      J.key("summary").value(Info->Summary);
    }
    const CellResult *Owner = Report.ownerCell(F);
    J.key("killed_by_owner").value(Owner && Owner->Killed);
    if (Owner && Owner->Killed) {
      ++KilledByOwner;
      J.key("owner_time_to_kill").value(Owner->TimeToKill);
    }
    J.key("cells").beginArray();
    for (; I != Report.Cells.size() && Report.Cells[I].FaultId == F; ++I) {
      const CellResult &C = Report.Cells[I];
      TotalKills += C.Killed ? 1 : 0;
      J.beginObject();
      J.key("checker").value(checkerName(C.Col));
      J.key("killed").value(C.Killed);
      J.key("stimuli").value(C.StimuliRun);
      if (C.Killed) {
        J.key("time_to_kill").value(C.TimeToKill);
        J.key("detail").value(C.Detail);
      }
      J.endObject();
    }
    J.endArray();
    J.endObject();
  }
  J.endArray();

  J.key("totals").beginObject();
  J.key("faults").value(NumFaults);
  J.key("cells").value(uint64_t(Report.Cells.size()));
  J.key("killed_by_owner").value(KilledByOwner);
  J.key("total_kills").value(TotalKills);
  J.endObject();

  J.endObject();
  return J.str();
}
