//===- verify/CompilerDiff.cpp - Compiler differential checking --------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/CompilerDiff.h"

#include "riscv/Step.h"
#include "support/Format.h"

using namespace b2;
using namespace b2::bedrock2;
using namespace b2::verify;
using namespace b2::support;

namespace {

/// Compares two MMIO traces; returns a description of the first
/// difference or the empty string.
std::string compareTraces(const riscv::MmioTrace &A,
                          const riscv::MmioTrace &B) {
  size_t N = std::min(A.size(), B.size());
  for (size_t I = 0; I != N; ++I)
    if (!(A[I] == B[I]))
      return "event " + std::to_string(I) + " differs: source " +
             riscv::toString(A[I]) + " vs machine " + riscv::toString(B[I]);
  if (A.size() != B.size())
    return "trace lengths differ: source " + std::to_string(A.size()) +
           " vs machine " + std::to_string(B.size());
  return "";
}

} // namespace

DiffResult b2::verify::diffCompile(const Program &P, const std::string &Fn,
                                   const std::vector<Word> &Args,
                                   DeviceFactory MakeDevice,
                                   const DiffOptions &Options) {
  DiffResult R;

  // -- Source side, once per stackalloc placement policy -------------------
  riscv::MmioTrace FirstTrace;
  std::vector<Word> FirstRets;
  bool First = true;
  for (Word Salt : Options.StackallocSalts) {
    std::unique_ptr<riscv::MmioDevice> Dev = MakeDevice();
    MmioExtSpec Ext(*Dev, Options.RamBytes);
    StackallocPolicy Policy;
    Policy.Salt = Salt;
    Interp I(P, Ext, Options.SourceFuel, Policy, Options.SourceMode);
    for (const auto &[Addr, Len] : Options.OwnRegions)
      I.ownMemory(Addr, Len);
    ExecResult Src = I.callFunction(Fn, Args);
    if (I.divergenceCount() != 0) {
      // Differential source mode: the two semantics engines disagreed,
      // which is a checker bug regardless of what the machine side does.
      R.Error = "source interpreter divergence: " + I.divergence();
      R.Source = std::move(Src);
      return R;
    }
    if (!Src.ok()) {
      // The compiler promises nothing for UB sources; report and stop.
      R.Source = std::move(Src);
      R.Ok = true;
      return R;
    }
    if (First) {
      FirstTrace = Ext.mmioTrace();
      FirstRets = Src.Rets;
      First = false;
    } else {
      std::string D = compareTraces(FirstTrace, Ext.mmioTrace());
      if (!D.empty() || FirstRets != Src.Rets) {
        R.Error = "source behavior depends on stackalloc placement (salt " +
                  std::to_string(Salt) + "): " +
                  (D.empty() ? "return values differ" : D);
        R.Source = std::move(Src);
        return R;
      }
    }
    R.Source = std::move(Src);
  }
  R.SourceTrace = FirstTrace;

  // -- Compile ---------------------------------------------------------------
  compiler::CompileResult C = compiler::compileProgram(
      P, Options.Compiler, compiler::Entry::singleCall(Fn, Args),
      Options.RamBytes);
  if (!C.ok()) {
    R.Error = "compilation failed: " + C.Error;
    return R;
  }
  const compiler::CompiledProgram &Prog = *C.Prog;

  // -- Machine side -------------------------------------------------------------
  std::unique_ptr<riscv::MmioDevice> Dev = MakeDevice();
  riscv::Machine M(Options.RamBytes);
  M.loadImage(0, Prog.image());
  uint64_t Steps = 0;
  while (Steps < Options.MachineMaxSteps && M.getPc() != Prog.HaltPc &&
         riscv::step(M, *Dev))
    ++Steps;

  if (M.hasUb()) {
    R.Error = std::string("machine-level UB (") + riscv::ubKindName(
                  M.ubKind()) + "): " + M.ubDetail();
    R.MachineTrace = M.trace();
    return R;
  }
  if (M.getPc() != Prog.HaltPc) {
    R.Error = "machine did not reach the halt PC within " +
              std::to_string(Options.MachineMaxSteps) + " steps";
    return R;
  }

  R.MachineTrace = M.trace();
  R.MachineRetired = M.retiredInstructions();

  // XAddrs preservation: the program image must still be executable.
  if (!M.rangeExecutable(0, Prog.CodeBytes)) {
    R.Error = "program image lost executability (stale-instruction "
              "discipline violated)";
    return R;
  }

  // Compare traces.
  std::string D = compareTraces(R.SourceTrace, R.MachineTrace);
  if (!D.empty()) {
    R.Error = D;
    return R;
  }

  // Compare return values (calling convention: results in a0..).
  const Function *F = P.find(Fn);
  for (size_t I = 0; F && I != F->Rets.size() && I < 8; ++I)
    R.MachineRets.push_back(M.getReg(10 + unsigned(I)));
  if (R.MachineRets != R.Source.Rets) {
    std::vector<std::string> A, B;
    for (Word W : R.Source.Rets)
      A.push_back(hex32(W));
    for (Word W : R.MachineRets)
      B.push_back(hex32(W));
    R.Error = "return values differ: source (" + join(A, ", ") +
              ") vs machine (" + join(B, ", ") + ")";
    return R;
  }

  R.Ok = true;
  return R;
}

DiffResult b2::verify::diffCompilePure(const Program &P, const std::string &Fn,
                                       const std::vector<Word> &Args,
                                       const DiffOptions &Options) {
  return diffCompile(P, Fn, Args,
                     [] { return std::make_unique<riscv::NoDevice>(); },
                     Options);
}
