//===- verify/FaultInjection.h - Seeded-fault registry ---------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime fault injection for checker-adequacy testing (the mutation
/// adequacy campaign of verify/Adequacy.h). Every layer of the stack
/// carries a small set of named, individually switchable seeded bugs —
/// compiler miscompilations, ISA-simulator semantic bugs, pipeline bugs,
/// device-model bugs, interpreter/bytecode bugs. A bug is *armed* by
/// installing a FaultPlan for the current thread (RAII FaultScope); with
/// no plan installed every hook compiles down to one thread-local load
/// and a predicted-untaken branch, and behavior is bit-identical to the
/// unhooked code. There are deliberately no #ifdef forks: the shipped
/// binary IS the testable binary, which is what lets the adequacy driver
/// assert the no-false-positive property (zero kills under an empty plan)
/// on the exact code the rest of the suite runs.
///
/// The plan is thread-local so the sharded campaign driver
/// (verify/ParallelDriver.h) can arm a different fault on every shard:
/// support::parallelFor runs each shard as one task on one worker thread,
/// so a FaultScope installed inside the shard body scopes exactly that
/// shard's work.
///
/// This header is include-only (C++17 inline thread_local) so that every
/// layer library (compiler, riscv, kami, devices, bedrock2) can hook
/// without linking against b2_verify; the registry *metadata* (names,
/// owning checkers) lives in FaultInjection.cpp inside b2_verify, where
/// only the adequacy tooling needs it.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VERIFY_FAULTINJECTION_H
#define B2_VERIFY_FAULTINJECTION_H

#include <cstdint>
#include <string>
#include <vector>

namespace b2 {
namespace fi {

/// Every seeded fault in the stack. Grouped by layer; the registry in
/// FaultInjection.cpp carries the per-fault metadata (layer, owning
/// checker, summary). Keep in sync with faultRegistry().
enum class Fault : uint8_t {
  // -- Compiler miscompilations (owned by CompilerDiff) --------------------
  CompilerRegallocWrongReg,   ///< Two live variables share one register.
  CompilerLoadNoZeroExtend,   ///< 1-byte loads emit lb instead of lbu.
  CompilerBranchOffByOne,     ///< Short branches land one instruction late.
  CompilerStackallocNoZero,   ///< stackalloc skips the zero-fill loop.
  CompilerCalleeSavedSkip,    ///< First used s-register not saved/restored.
  CompilerImmTruncate,        ///< Constants materialize truncated to 12 bits.
  // -- ISA-simulator semantic bugs (owned by Lockstep / SimCacheDiff) ------
  SimSraLogicalShift,         ///< sra/srai shift in zeros, not sign bits.
  SimBranchLtAsGe,            ///< blt takes the bge condition.
  SimLhWrongWidth,            ///< lh sign-extends from 8 bits, not 16.
  SimStoreKeepsXAddrs,        ///< Stores forget the stale-instruction
                              ///< discipline: XAddrs and decode lines
                              ///< survive the overwrite (section 5.6).
  SimDecodeCacheNoInvalidate, ///< XAddrs removal keeps decode-cache lines
                              ///< (invalidation set != removal set).
  SimBlockStaleSuperblock,    ///< Decode invalidation no longer kills the
                              ///< owning superblocks, so the trace engine
                              ///< keeps executing stale micro-op traces
                              ///< after self-modifying stores.
  SimBlockFusedClobber,       ///< The fused addi/branch micro-op compares
                              ///< against the stale pre-increment counter
                              ///< value instead of the updated one.
  // -- Kami processor bugs (owned by Refinement / Lockstep / Decode) -------
  KamiBtbNoSquash,            ///< Mispredicted wrong-path instr not squashed.
  KamiForwardLoadStale,       ///< WB forwarding bypasses load results too,
                              ///< handing ID a stale ALU latch.
  KamiMemWrongByteEnable,     ///< Sub-word stores drive all 4 byte enables.
  KamiLoadNoSignExtend,       ///< lb zero-extends.
  KamiSltAsUnsigned,          ///< slt compares unsigned.
  KamiDecodeShamtWide,        ///< Shift-immediate decode skips the 5-bit
                              ///< shamt mask (full I-imm leaks through).
  KamiIcacheFillTruncated,    ///< Reset fill copies only half the BRAM.
  // -- Device-model bugs (owned by EndToEnd) -------------------------------
  DevLanRxByteOrder,          ///< RX FIFO assembles words big-endian.
  DevLanRxLengthOffByOne,     ///< RX status reports length + 1.
  DevSpiStaleRead,            ///< rxdata replays the last byte instead of
                              ///< signaling empty.
  DevLanRxCrossFrameLatch,    ///< The RX engine's frame-boundary reset
                              ///< leaks a marker latch across frames:
                              ///< once an ON command has been buffered,
                              ///< every later OFF command is corrupted
                              ///< in the FIFO (header byte flipped).
  // -- Interpreter / bytecode bugs (owned by InterpDiff / CompilerDiff) ----
  BcLoopChargeMiscount,       ///< Fused loop op undercharges body entry.
  BcLatchOpAsAdd,             ///< Fused "i = i op k" latch always adds.
  BcBrVZInverted,             ///< Fused loop-head branch tests != 0.
  BcDivCountSkip,             ///< Bytecode Binop forgets DivByZeroCount.
  BcAllocSkew,                ///< stackalloc hands out base + 4.
  FootprintCoalesceDropByte,  ///< Interval merge in the ownership set
                              ///< loses the last byte of the union.
  // -- Traffic subsystem bugs (owned by SoakMonitor) -----------------------
  TrafficMonitorDropEvent,    ///< The streaming trace monitor silently
                              ///< skips every 64th event it is fed.
  TrafficGenUnseededFrame,    ///< The scenario generator derives one
                              ///< payload byte from hidden global state
                              ///< instead of the seed.
  TrafficPcapTruncateWrite,   ///< The pcap writer drops the last byte of
                              ///< frames longer than 64 bytes.
  SnapStateStaleLatch,        ///< Checkpoint restore leaves the SPI
                              ///< shifter-busy latch stale, so a resumed
                              ///< run diverges from straight-through.
  // -- VC subsystem bugs (owned by VcCheck) --------------------------------
  VcWpDroppedConjunct,        ///< The WP generator drops the entry
                              ///< function's postcondition obligation, so
                              ///< buggy contracts verify Valid.
  VcSolverBadModel,           ///< The SAT backend corrupts one bit of
                              ///< every model it returns, so symbolic
                              ///< counterexamples describe no real run.
  VcCacheStaleHit,            ///< The solved-obligation cache answers any
                              ///< lookup from any stored entry (hash
                              ///< discrimination lost), so unproved
                              ///< obligations come back "proved".
  VcSliceDroppedSupport,      ///< The cone-of-influence slicer drops one
                              ///< live assumption, so sliced queries are
                              ///< weaker than the originals.

  NumFaults, ///< Count sentinel; not a fault.
};

static_assert(unsigned(Fault::NumFaults) <= 64,
              "FaultPlan packs the plan into one 64-bit word");

/// The set of armed faults. Cheap value type; campaigns arm exactly one
/// fault per plan, but the representation allows any subset.
class FaultPlan {
public:
  constexpr FaultPlan() = default;

  void enable(Fault F) { Bits |= uint64_t(1) << unsigned(F); }
  void disable(Fault F) { Bits &= ~(uint64_t(1) << unsigned(F)); }
  bool enabled(Fault F) const {
    return (Bits >> unsigned(F)) & 1;
  }
  bool empty() const { return Bits == 0; }

  /// The packed plan word — a stable identity for cache keys (e.g. the
  /// warm-boot snapshot cache keys on it so a snapshot taken under one
  /// plan is never resumed under another).
  uint64_t bits() const { return Bits; }

  static FaultPlan single(Fault F) {
    FaultPlan P;
    P.enable(F);
    return P;
  }

private:
  uint64_t Bits = 0;
};

/// The plan armed on this thread, or null (the common case: nothing
/// armed, all hooks dormant). Installed only via FaultScope.
inline thread_local const FaultPlan *ActivePlan = nullptr;

/// The hook predicate every injection site evaluates. One thread-local
/// load and a branch when dormant.
inline bool on(Fault F) {
  const FaultPlan *P = ActivePlan;
  return P != nullptr && P->enabled(F);
}

/// RAII installer: arms \p Plan for the current thread for the scope's
/// lifetime, restoring whatever was armed before (scopes nest). The plan
/// must outlive the scope.
class FaultScope {
public:
  explicit FaultScope(const FaultPlan &Plan) : Prev(ActivePlan) {
    ActivePlan = &Plan;
  }
  ~FaultScope() { ActivePlan = Prev; }

  FaultScope(const FaultScope &) = delete;
  FaultScope &operator=(const FaultScope &) = delete;

private:
  const FaultPlan *Prev;
};

// -- Registry metadata (defined in FaultInjection.cpp, linked into
// b2_verify; only the adequacy tooling needs these) -----------------------

/// Static description of one seeded fault.
struct FaultInfo {
  Fault Id;
  const char *Name;    ///< Stable kebab-case identifier (CLI / JSON).
  const char *Layer;   ///< compiler / sim / kami / devices / interp.
  const char *Owner;   ///< The checker column that must kill it.
  const char *Summary; ///< One-line description of the seeded bug.
};

/// All registered faults, ordered by Fault enumerator.
const std::vector<FaultInfo> &faultRegistry();

/// Looks up a fault by its stable name; null if unknown.
const FaultInfo *findFault(const std::string &Name);

/// All registered fault names, comma-joined in registry order — the
/// "valid names are:" list for CLI rejections of unknown fault names.
std::string faultNameList();

} // namespace fi
} // namespace b2

#endif // B2_VERIFY_FAULTINJECTION_H
