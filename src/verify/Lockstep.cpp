//===- verify/Lockstep.cpp - Processor/ISA lockstep checking -----------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/Lockstep.h"

#include "riscv/Step.h"
#include "support/Format.h"

using namespace b2;
using namespace b2::verify;
using namespace b2::support;

namespace {

/// The `related` relation of section 5.8 (architectural part).
bool relatedState(const riscv::Machine &M, const kami::PipelinedCore &Core,
                  std::string &Error) {
  for (unsigned R = 0; R != 32; ++R) {
    if (M.getReg(R) != Core.getReg(R)) {
      Error = "register x" + std::to_string(R) + " differs: sim " +
              hex32(M.getReg(R)) + " vs core " + hex32(Core.getReg(R));
      return false;
    }
  }
  if (M.getPc() != Core.architecturalPc()) {
    Error = "pc differs: sim " + hex32(M.getPc()) + " vs core " +
            hex32(Core.architecturalPc());
    return false;
  }
  return true;
}

/// Full data-memory comparison (expensive; called periodically).
bool relatedMemory(const riscv::Machine &M, const kami::Bram &B,
                   std::string &Error) {
  for (Word A = 0; A < M.ramSize(); A += 4) {
    if (M.readRam(A, 4) != B.readWord(A)) {
      Error = "memory word at " + hex32(A) + " differs: sim " +
              hex32(M.readRam(A, 4)) + " vs core " + hex32(B.readWord(A));
      return false;
    }
  }
  return true;
}

/// The XAddrs part of `related`: the instruction cache agrees with data
/// memory on every executable address (section 5.8: "most importantly
/// that the instruction cache is consistent with main memory at the
/// executable addresses").
bool relatedICache(const riscv::Machine &M, const kami::ICache &IC,
                   std::string &Error) {
  for (Word A = 0; A + 4 <= M.ramSize(); A += 4) {
    if (!M.isExecutable(A))
      continue;
    if (M.readRam(A, 4) != IC.fetch(A)) {
      Error = "icache stale at executable address " + hex32(A);
      return false;
    }
  }
  return true;
}

} // namespace

LockstepResult b2::verify::lockstep(const std::vector<uint8_t> &Image,
                                    Word HaltPc, DeviceFactory MakeDevice,
                                    const LockstepOptions &Options) {
  LockstepResult R;

  auto SimDev = MakeDevice();
  riscv::Machine M(Options.RamBytes);
  M.loadImage(0, Image);

  auto CoreDev = MakeDevice();
  kami::Bram B(Options.RamBytes);
  B.loadImage(Image);
  kami::PipelinedCore Core(B, *CoreDev, Options.Pipe);

  while (R.Retired < Options.MaxRetired) {
    if (M.getPc() == HaltPc)
      break;

    // One architectural step on the software semantics.
    if (!riscv::step(M, *SimDev)) {
      // UB: the comparison is vacuous from here on (the hardware may do
      // anything); stop and report where.
      R.SimulatorHitUb = true;
      R.Ub = M.ubKind();
      break;
    }

    // Retire exactly one instruction on the pipelined core.
    if (!Core.runUntilRetired(Core.retired() + 1,
                              Options.MaxCyclesPerInstr)) {
      R.Error = "liveness: core failed to retire within " +
                std::to_string(Options.MaxCyclesPerInstr) + " cycles at sim pc " +
                hex32(M.getPc());
      return R;
    }
    ++R.Retired;

    if (!relatedState(M, Core, R.Error)) {
      R.Error = "after " + std::to_string(R.Retired) + " retirements: " +
                R.Error;
      return R;
    }
    if (R.Retired % Options.MemoryCheckEvery == 0) {
      if (!relatedMemory(M, B, R.Error) || !relatedICache(M, Core.icache(),
                                                          R.Error)) {
        R.Error = "after " + std::to_string(R.Retired) + " retirements: " +
                  R.Error;
        return R;
      }
    }
  }

  // Final deep checks: memory, icache-vs-XAddrs, and the label trace.
  if (!R.SimulatorHitUb) {
    if (!relatedMemory(M, B, R.Error) ||
        !relatedICache(M, Core.icache(), R.Error))
      return R;
  }
  riscv::MmioTrace CoreTrace = kami::kamiLabelSeqR(Core.labels());
  const riscv::MmioTrace &SimTrace = M.trace();
  size_t N = std::min(CoreTrace.size(), SimTrace.size());
  for (size_t I = 0; I != N; ++I) {
    if (!(CoreTrace[I] == SimTrace[I])) {
      R.Error = "MMIO event " + std::to_string(I) + " differs: sim " +
                riscv::toString(SimTrace[I]) + " vs core " +
                riscv::toString(CoreTrace[I]);
      return R;
    }
  }
  if (!R.SimulatorHitUb && CoreTrace.size() != SimTrace.size()) {
    R.Error = "MMIO trace lengths differ: sim " +
              std::to_string(SimTrace.size()) + " vs core " +
              std::to_string(CoreTrace.size());
    return R;
  }

  R.Cycles = Core.cycles();
  R.Ok = true;
  return R;
}
