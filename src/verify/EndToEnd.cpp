//===- verify/EndToEnd.cpp - end2end_lightbulb, executably -------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/EndToEnd.h"

#include "app/LightbulbSpec.h"
#include "devices/Net.h"
#include "kami/SpecCore.h"
#include "riscv/Machine.h"
#include "riscv/Step.h"
#include "support/Format.h"

#include <chrono>
#include <memory>

using namespace b2;
using namespace b2::verify;
using namespace b2::devices;

namespace {

/// Uniform driver over the three execution substrates.
class SystemRunner {
public:
  SystemRunner(const compiler::CompiledProgram &Prog,
               const E2EScenario &Scenario, const E2EOptions &Options)
      : Options(Options), Plat(Options.Spi, Options.Lan) {
    for (const ScheduledFrame &F : Scenario.Frames)
      Plat.scheduleFrame(F.AtOp, F.Frame, F.Errored);
    switch (Options.Core) {
    case CoreKind::IsaSim:
      Sim = std::make_unique<riscv::Machine>(Options.RamBytes);
      Sim->loadImage(0, Prog.image());
      Sim->setDecodeCacheEnabled(Options.SimDecodeCache);
      if (Options.SimExec != riscv::ExecMode::Reference)
        Engine =
            std::make_unique<riscv::BlockEngine>(*Sim, Plat, Options.SimExec);
      break;
    case CoreKind::SpecCore:
      Mem = std::make_unique<kami::Bram>(Options.RamBytes);
      Mem->loadImage(Prog.image());
      Spec = std::make_unique<kami::SpecCore>(*Mem, Plat);
      break;
    case CoreKind::Pipelined:
      Mem = std::make_unique<kami::Bram>(Options.RamBytes);
      Mem->loadImage(Prog.image());
      Pipe = std::make_unique<kami::PipelinedCore>(*Mem, Plat, Options.Pipe);
      break;
    }
  }

  /// Runs \p Cycles cycles (instructions, for the ISA sim). Returns false
  /// if the substrate cannot continue (ISA-sim UB).
  bool run(uint64_t Cycles) {
    switch (Options.Core) {
    case CoreKind::IsaSim: {
      if (Engine)
        Engine->run(Cycles);
      else
        riscv::run(*Sim, Plat, Cycles);
      if (Engine && Engine->divergences() > 0)
        return false;
      return !Sim->hasUb();
    }
    case CoreKind::SpecCore:
      Spec->run(Cycles);
      return true;
    case CoreKind::Pipelined:
      Pipe->run(Cycles);
      return true;
    }
    return false;
  }

  /// Trace under KamiLabelSeqR, by reference: the ISA simulator's trace
  /// is already in event form; the Kami cores' label sequences are
  /// converted incrementally from the last watermark, so polling is O(new
  /// events) instead of a full rebuild-and-copy per call.
  const riscv::MmioTrace &trace() {
    switch (Options.Core) {
    case CoreKind::IsaSim:
      return Sim->trace();
    case CoreKind::SpecCore:
      Converted = kami::appendKamiLabelSeqR(Spec->labels(), Converted,
                                            ConvertedTrace);
      return ConvertedTrace;
    case CoreKind::Pipelined:
      Converted = kami::appendKamiLabelSeqR(Pipe->labels(), Converted,
                                            ConvertedTrace);
      return ConvertedTrace;
    }
    return ConvertedTrace;
  }

  uint64_t retired() const {
    switch (Options.Core) {
    case CoreKind::IsaSim:
      return Sim->retiredInstructions();
    case CoreKind::SpecCore:
      return Spec->retired();
    case CoreKind::Pipelined:
      return Pipe->retired();
    }
    return 0;
  }

  bool simUb() const {
    return Options.Core == CoreKind::IsaSim && Sim->hasUb();
  }

  std::string simUbDetail() const {
    return std::string(riscv::ubKindName(Sim->ubKind())) + ": " +
           Sim->ubDetail();
  }

  bool engineDiverged() const { return Engine && Engine->divergences() > 0; }

  std::string engineDivergenceDetail() const {
    return Engine ? Engine->divergenceDetail() : std::string();
  }

  Platform &platform() { return Plat; }

private:
  const E2EOptions &Options;
  Platform Plat;
  std::unique_ptr<riscv::Machine> Sim;
  std::unique_ptr<riscv::BlockEngine> Engine; ///< IsaSim non-Reference modes.
  std::unique_ptr<kami::Bram> Mem;
  std::unique_ptr<kami::SpecCore> Spec;
  std::unique_ptr<kami::PipelinedCore> Pipe;
  riscv::MmioTrace ConvertedTrace; ///< Incremental KamiLabelSeqR image.
  size_t Converted = 0;            ///< Labels converted so far.
};

/// Ground truth: the distinct lightbulb states implied by the accepted
/// frames (initial state off).
std::vector<bool> expectedLightSequence(
    const std::vector<ScheduledFrame> &Accepted) {
  std::vector<bool> Out;
  bool Light = false;
  for (const ScheduledFrame &F : Accepted) {
    if (F.Errored)
      continue;
    FrameClass C = classifyFrame(F.Frame);
    if (!C.Valid)
      continue;
    if (C.CommandBit != Light) {
      Light = C.CommandBit;
      Out.push_back(Light);
    } else {
      // Re-asserting the same state performs a GPIO store but records no
      // *distinct* state; history only tracks changes.
    }
  }
  return Out;
}

} // namespace

E2EResult b2::verify::runCompiledEndToEnd(const compiler::CompiledProgram &Prog,
                                          const E2EScenario &Scenario,
                                          const E2EOptions &Options) {
  E2EResult R;
  SystemRunner Runner(Prog, Scenario, Options);

  // Run in chunks until the scenario is fully delivered and drained, then
  // one settle chunk (so the final frame's iteration completes). Only
  // this loop is timed: RunSeconds is the engine's execution cost, with
  // construction and the verification passes below excluded.
  uint64_t Elapsed = 0;
  bool Drained = false;
  auto RunStart = std::chrono::steady_clock::now();
  while (Elapsed < Options.MaxCycles) {
    if (!Runner.run(Options.DrainChunk)) {
      if (Runner.engineDiverged())
        R.Error = "ISA simulator engine divergence: " +
                  Runner.engineDivergenceDetail();
      else
        R.Error = "ISA simulator hit UB: " + Runner.simUbDetail();
      R.Trace = Runner.trace();
      return R;
    }
    Elapsed += Options.DrainChunk;
    // Delivery is op-count-based: once the op counter passed the last
    // schedule point and the NIC queue is empty, the system is quiescent.
    uint64_t LastAt = Scenario.Frames.empty() ? 0 : Scenario.Frames.back().AtOp;
    if (Runner.platform().opCount() > LastAt + 100 &&
        Runner.platform().nic().bufferedFrames() == 0) {
      if (Drained)
        break;
      Drained = true; // One more settle chunk.
    }
  }

  R.RunSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    RunStart)
          .count();
  R.Trace = Runner.trace();
  R.Cycles = Elapsed;
  R.Retired = Runner.retired();
  R.AcceptedFrames = Runner.platform().acceptedFrames().size();

  // The theorem's conclusion: prefix membership in goodHlTrace.
  tracespec::Matcher M(app::goodHlTrace());
  R.Diag = M.diagnose(R.Trace);
  R.PrefixAccepted = R.Diag.PrefixAccepted;
  if (!R.PrefixAccepted) {
    R.Error = "trace rejected at event " + std::to_string(R.Diag.DeadAt) +
              " (" + R.Diag.FailingEvent + "); expected one of: " +
              support::join(R.Diag.ExpectedHere, " | ");
  }

  // Ground truth: the lightbulb tracked exactly the valid commands.
  R.LightHistory = Runner.platform().gpio().lightHistory();
  R.ExpectedLights =
      expectedLightSequence(Runner.platform().acceptedFrames());
  R.GroundTruthOk = R.LightHistory == R.ExpectedLights;
  if (!R.GroundTruthOk && R.Error.empty())
    R.Error = "lightbulb state history does not match the accepted valid "
              "commands (observed " +
              std::to_string(R.LightHistory.size()) + " changes, expected " +
              std::to_string(R.ExpectedLights.size()) + ")";

  R.Ok = R.PrefixAccepted && R.GroundTruthOk;
  return R;
}

E2EResult b2::verify::runLightbulbEndToEnd(const E2EScenario &Scenario,
                                           const E2EOptions &Options) {
  bedrock2::Program P = app::buildFirmware(Options.Firmware);
  compiler::CompileResult C = compiler::compileProgram(
      P, Options.Compiler,
      compiler::Entry::eventLoop("lightbulb_init", "lightbulb_loop"),
      Options.RamBytes);
  if (!C.ok()) {
    E2EResult R;
    R.Error = "firmware compilation failed: " + C.Error;
    return R;
  }
  return runCompiledEndToEnd(*C.Prog, Scenario, Options);
}

E2EScenario b2::verify::fuzzScenario(uint64_t Seed, unsigned NumFrames,
                                     uint64_t FirstAtOp, uint64_t OpSpacing) {
  E2EScenario S;
  PacketFuzzer Fuzzer(Seed);
  uint64_t At = FirstAtOp;
  for (unsigned I = 0; I != NumFrames; ++I) {
    PacketFuzzer::Generated G = Fuzzer.next();
    S.Frames.push_back(ScheduledFrame{At, std::move(G.Frame), G.MarkErrored});
    At += OpSpacing;
  }
  return S;
}
