//===- verify/Adequacy.h - Checker-adequacy campaign -----------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-injection adequacy campaign: mutation testing for the
/// verification fleet itself. The paper's argument rests on a stack of
/// proofs; this repository replaces each proof with an executable checker
/// (CompilerDiff, Lockstep, Refinement, EndToEnd, DecodeConsistency, the
/// differential interpreter). The campaign answers the question those
/// checkers cannot answer about themselves: *would they notice if the
/// artifact were wrong?*
///
/// Every fault in verify/FaultInjection.h is a named, seeded bug in one
/// layer of the stack. The campaign arms one fault at a time (runtime
/// FaultPlan, no rebuild) and runs every checker column against its
/// directed stimulus battery, producing a kill matrix:
///
///  * every fault must be killed by its *owning* checker — the executable
///    stand-in for the paper proof that would have ruled the bug out; and
///  * with no fault armed, no checker may report a failure (the
///    no-false-positive row), on the *same binary*.
///
/// Cells are independent, so the campaign shards across threads
/// (support::parallelFor); each cell is a pure function of its (fault,
/// checker) pair, so the report — including the JSON rendering — is
/// bit-identical at every thread count. Time-to-kill is measured in
/// stimuli, never in wall-clock, for the same reason.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VERIFY_ADEQUACY_H
#define B2_VERIFY_ADEQUACY_H

#include "verify/FaultInjection.h"

#include <cstdint>
#include <string>
#include <vector>

namespace b2 {
namespace verify {

/// The checker columns of the kill matrix. Six are the fleet's standing
/// checkers; SimCacheDiff is the adequacy campaign's own column, comparing
/// the ISA simulator with its predecoded fast path enabled vs. disabled
/// (the only checker that can own the decode-cache discipline faults);
/// SoakMonitor covers the traffic layer — scenario determinism, pcap
/// round-trips, and the streaming goodHlTrace monitor's agreement with
/// the offline matcher; SnapDiff is the checkpoint layer's bit-identity
/// differential — a snapshot-resumed soak run must match the
/// straight-through run exactly, so it is the column that owns
/// checkpoint/restore faults; BlockDiff is the superblock trace engine's
/// lockstep differential (riscv/BlockEngine.h, ExecMode::Differential) —
/// the column that owns the engine's translation and invalidation
/// discipline faults.
enum class Checker : uint8_t {
  CompilerDiff,     ///< Source semantics vs. compiled machine code.
  InterpDiff,       ///< Reference AST walker vs. bytecode engine.
  Lockstep,         ///< Pipelined core vs. ISA simulator (kstep_sound).
  Refinement,       ///< Pipelined core vs. single-cycle spec core.
  EndToEnd,         ///< The end2end_lightbulb theorem, executably.
  DecodeConsistency,///< Kami decoder vs. riscv-coq-style decoder.
  SimCacheDiff,     ///< ISA simulator: decode cache on vs. off.
  SoakMonitor,      ///< Traffic soak harness and streaming monitor.
  SnapDiff,         ///< Snapshot-resume vs. straight-through identity.
  BlockDiff,        ///< Superblock trace engine vs. reference stepper.
  VcCheck,          ///< Symbolic VC engine vs. checking interpreter:
                    ///< counterexamples must replay concretely, Valid
                    ///< verdicts must survive seeded concrete probes.
  NumCheckers,      ///< Count sentinel; not a checker.
};

constexpr unsigned NumCheckers = unsigned(Checker::NumCheckers);

/// Stable column name ("CompilerDiff", ... — matches FaultInfo::Owner).
const char *checkerName(Checker C);

/// Inverse of checkerName; returns false if \p Name is unknown.
bool checkerByName(const std::string &Name, Checker &Out);

/// Outcome of one (fault, checker) cell.
struct CellResult {
  fi::Fault FaultId = fi::Fault::NumFaults; ///< NumFaults == baseline row.
  Checker Col = Checker::NumCheckers;
  bool Killed = false;
  uint64_t StimuliRun = 0;  ///< Stimuli executed in this cell.
  uint64_t TimeToKill = 0;  ///< 1-based index of the killing stimulus
                            ///< (0 when not killed). Deterministic: a
                            ///< count of stimuli, never wall-clock.
  std::string Detail;       ///< First failure description (diagnostic).
};

struct AdequacyOptions {
  unsigned Threads = 1;
  /// Quick gate (CI per-PR): a representative subset of faults, each run
  /// against its owning checker only, plus the full baseline row.
  bool Quick = false;
  /// Restrict the campaign to one fault by stable name (debugging);
  /// empty = all faults in scope.
  std::string OnlyFault;
};

struct AdequacyReport {
  bool Quick = false;
  /// Nonempty iff the campaign could not run as requested (e.g. an
  /// unknown OnlyFault name). A report with an Error is never green.
  std::string Error;
  /// The baseline (no fault armed) cells, one per checker column.
  std::vector<CellResult> Baseline;
  /// Fault cells, fault-major in registry order, checker-minor.
  std::vector<CellResult> Cells;

  /// True iff no checker fails with an empty fault plan.
  bool noFalsePositives() const;
  /// True iff every fault in the campaign was killed by its owner column.
  bool allKilledByOwner() const;
  /// The owner-column cell for \p F, or null if outside the campaign.
  const CellResult *ownerCell(fi::Fault F) const;
  /// One-line human summary of the first violated property ("" if green).
  std::string firstViolation() const;
};

/// Runs the campaign. Deterministic for every Threads value.
AdequacyReport runAdequacy(const AdequacyOptions &Options);

/// The quick-gate fault subset: ~10 faults spanning every layer and every
/// owner column.
std::vector<fi::Fault> quickFaultSet();

/// Renders \p Report as the ADEQUACY.json document (schema
/// "b2stack-adequacy-v1"). Pure function of the report: contains no
/// timestamps, durations, paths, or host details.
std::string adequacyJson(const AdequacyReport &Report);

} // namespace verify
} // namespace b2

#endif // B2_VERIFY_ADEQUACY_H
