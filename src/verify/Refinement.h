//===- verify/Refinement.h - Pipeline-refines-spec checking ----*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the Kami refinement proof (section 5.7):
/// "The pipelined processor is proven to implement a single-cycle
/// processor model in the sense of refinement, showing that the set of
/// possible traces of the implementation is contained in the trace set of
/// the spec." With deterministic devices the trace sets are singletons, so
/// containment is checked as equality of the label traces for the same
/// number of retirements, for *arbitrary* programs — including
/// self-modifying and otherwise UB-at-the-software-level ones, because the
/// Kami level has no UB.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VERIFY_REFINEMENT_H
#define B2_VERIFY_REFINEMENT_H

#include "kami/PipelinedCore.h"
#include "verify/CompilerDiff.h" // DeviceFactory

#include <cstdint>
#include <string>
#include <vector>

namespace b2 {
namespace verify {

struct RefinementOptions {
  Word RamBytes = 64 * 1024;
  uint64_t Retirements = 100'000; ///< Instructions to compare.
  uint64_t MaxCycles = 50'000'000;
  kami::PipeConfig Pipe;
  bool CompareArchState = true; ///< Also require equal registers/PC at the
                                ///< end (stronger than trace containment).
};

struct RefinementResult {
  bool Ok = false;
  std::string Error;
  uint64_t Retired = 0;
  uint64_t PipelineCycles = 0;
  uint64_t SpecCycles = 0;
};

/// Runs \p Image on the pipelined core and the spec core with identical
/// device scenarios and compares.
RefinementResult checkRefinement(const std::vector<uint8_t> &Image,
                                 DeviceFactory MakeDevice,
                                 const RefinementOptions &Options);

} // namespace verify
} // namespace b2

#endif // B2_VERIFY_REFINEMENT_H
