//===- verify/ParallelDriver.h - Sharded verification fleet ----*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel driver for the verification suites. The paper's §7.2.2
/// measures "the cost of checking the system"; this driver attacks that
/// cost by sharding *independent* work units — EndToEnd fuzz scenarios,
/// CompilerDiff corpus programs, Lockstep stimulus seeds — across
/// hardware threads.
///
/// Determinism contract: every shard is a pure function of its (index,
/// seed) pair — it builds its own machine, device, and RNG from the seed
/// and shares nothing mutable. Results are aggregated by shard index, so
/// a fleet report is **bit-identical for every thread count**, and any
/// failing shard reproduces single-threaded by rerunning just its seed.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VERIFY_PARALLELDRIVER_H
#define B2_VERIFY_PARALLELDRIVER_H

#include "verify/CompilerDiff.h"
#include "verify/EndToEnd.h"
#include "verify/Lockstep.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace b2 {
namespace verify {

/// Outcome of one work unit. Everything that constitutes the "verdict"
/// lives here, so comparing two reports shard-by-shard is the
/// parallel-equals-sequential check.
struct ShardResult {
  size_t Index = 0;
  uint64_t Seed = 0;
  bool Ok = false;
  std::string Error;
  uint64_t Retired = 0;   ///< Instructions retired by the shard's run(s).
  uint64_t Cycles = 0;    ///< Cycles consumed (0 for suites without one).
  uint64_t TraceHash = 0; ///< FNV-1a digest of the observed trace/content.

  friend bool operator==(const ShardResult &A, const ShardResult &B) {
    return A.Index == B.Index && A.Seed == B.Seed && A.Ok == B.Ok &&
           A.Error == B.Error && A.Retired == B.Retired &&
           A.Cycles == B.Cycles && A.TraceHash == B.TraceHash;
  }
};

/// Aggregated fleet outcome, ordered by shard index.
struct FleetReport {
  unsigned Threads = 1;
  std::vector<ShardResult> Shards;

  bool allOk() const {
    for (const ShardResult &S : Shards)
      if (!S.Ok)
        return false;
    return true;
  }

  size_t failures() const {
    size_t N = 0;
    for (const ShardResult &S : Shards)
      N += S.Ok ? 0 : 1;
    return N;
  }

  std::string firstError() const {
    for (const ShardResult &S : Shards)
      if (!S.Ok)
        return "shard " + std::to_string(S.Index) + " (seed " +
               std::to_string(S.Seed) + "): " + S.Error;
    return "";
  }

  /// True iff every shard verdict is bit-identical (thread count is a
  /// schedule parameter, not a verdict, and is ignored).
  bool sameVerdicts(const FleetReport &Other) const {
    return Shards == Other.Shards;
  }
};

/// One work unit: must depend only on (Index, Seed).
using ShardWork = std::function<ShardResult(size_t Index, uint64_t Seed)>;

/// Derives \p N per-shard seeds from \p BaseSeed (splitmix-style, so
/// neighboring shards get decorrelated streams).
std::vector<uint64_t> fleetSeeds(uint64_t BaseSeed, size_t N);

/// FNV-1a digest of an MMIO trace, for cheap bit-identical-trace claims.
uint64_t traceDigest(const riscv::MmioTrace &T);

/// Runs one shard per seed on up to \p Threads workers and aggregates by
/// index. Threads <= 1 is the sequential reference path.
FleetReport runShards(const std::vector<uint64_t> &Seeds, unsigned Threads,
                      const ShardWork &Work);

/// EndToEnd fuzz suite: shard i runs fuzzScenario(Seeds[i],
/// \p FramesPerScenario) against \p Prog under \p Options.
FleetReport endToEndFuzzFleet(const compiler::CompiledProgram &Prog,
                              const E2EOptions &Options,
                              const std::vector<uint64_t> &Seeds,
                              unsigned FramesPerScenario, unsigned Threads);

/// CompilerDiff corpus suite: shard i diffs the program built by
/// \p ProgramForSeed(Seeds[i]) (entry \p Fn with \p Args) through source
/// semantics and compiled machine code.
FleetReport
compilerDiffFleet(const std::function<bedrock2::Program(uint64_t)> &ProgramForSeed,
                  const std::string &Fn, const std::vector<Word> &Args,
                  const DiffOptions &Options,
                  const std::vector<uint64_t> &Seeds, unsigned Threads);

/// Lockstep stimulus suite: shard i co-simulates the image built by
/// \p ImageForSeed(Seeds[i]) on the pipelined core vs. the ISA simulator.
FleetReport
lockstepFleet(const std::function<std::vector<uint8_t>(uint64_t)> &ImageForSeed,
              DeviceFactory MakeDevice, const LockstepOptions &Options,
              const std::vector<uint64_t> &Seeds, unsigned Threads);

} // namespace verify
} // namespace b2

#endif // B2_VERIFY_PARALLELDRIVER_H
