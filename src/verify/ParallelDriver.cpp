//===- verify/ParallelDriver.cpp - Sharded verification fleet ---------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/ParallelDriver.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"

using namespace b2;
using namespace b2::verify;

std::vector<uint64_t> b2::verify::fleetSeeds(uint64_t BaseSeed, size_t N) {
  std::vector<uint64_t> Seeds(N);
  uint64_t State = BaseSeed;
  for (size_t I = 0; I != N; ++I) {
    // splitmix64: the same stream for the same base seed, forever.
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    Seeds[I] = Z ^ (Z >> 31);
  }
  return Seeds;
}

uint64_t b2::verify::traceDigest(const riscv::MmioTrace &T) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    for (unsigned B = 0; B != 8; ++B) {
      H ^= (V >> (8 * B)) & 0xFF;
      H *= 0x100000001b3ull;
    }
  };
  for (const riscv::MmioEvent &E : T) {
    Mix(E.IsStore ? 1 : 0);
    Mix(E.Addr);
    Mix(E.Value);
    Mix(E.Size);
  }
  return H;
}

FleetReport b2::verify::runShards(const std::vector<uint64_t> &Seeds,
                                  unsigned Threads, const ShardWork &Work) {
  FleetReport Report;
  Report.Threads = Threads == 0 ? 1 : Threads;
  Report.Shards.resize(Seeds.size());
  support::parallelFor(Seeds.size(), Report.Threads, [&](size_t I) {
    metrics::add(metrics::Id::VerifyShards);
    metrics::Timed T(metrics::Id::VerifyShardWall);
    ShardResult R = Work(I, Seeds[I]);
    R.Index = I;
    R.Seed = Seeds[I];
    Report.Shards[I] = std::move(R);
  });
  return Report;
}

FleetReport b2::verify::endToEndFuzzFleet(const compiler::CompiledProgram &Prog,
                                          const E2EOptions &Options,
                                          const std::vector<uint64_t> &Seeds,
                                          unsigned FramesPerScenario,
                                          unsigned Threads) {
  return runShards(Seeds, Threads, [&](size_t, uint64_t Seed) {
    E2EScenario S = fuzzScenario(Seed, FramesPerScenario);
    E2EResult E = runCompiledEndToEnd(Prog, S, Options);
    ShardResult R;
    R.Ok = E.Ok;
    R.Error = E.Error;
    R.Retired = E.Retired;
    R.Cycles = E.Cycles;
    R.TraceHash = traceDigest(E.Trace);
    return R;
  });
}

FleetReport b2::verify::compilerDiffFleet(
    const std::function<bedrock2::Program(uint64_t)> &ProgramForSeed,
    const std::string &Fn, const std::vector<Word> &Args,
    const DiffOptions &Options, const std::vector<uint64_t> &Seeds,
    unsigned Threads) {
  return runShards(Seeds, Threads, [&](size_t, uint64_t Seed) {
    bedrock2::Program P = ProgramForSeed(Seed);
    DiffResult D = diffCompilePure(P, Fn, Args, Options);
    ShardResult R;
    R.Ok = D.Ok;
    R.Error = D.Error;
    R.Retired = D.MachineRetired;
    R.TraceHash = traceDigest(D.MachineTrace);
    return R;
  });
}

FleetReport b2::verify::lockstepFleet(
    const std::function<std::vector<uint8_t>(uint64_t)> &ImageForSeed,
    DeviceFactory MakeDevice, const LockstepOptions &Options,
    const std::vector<uint64_t> &Seeds, unsigned Threads) {
  return runShards(Seeds, Threads, [&](size_t, uint64_t Seed) {
    std::vector<uint8_t> Image = ImageForSeed(Seed);
    LockstepResult L = lockstep(Image, ~Word(0), MakeDevice, Options);
    ShardResult R;
    R.Ok = L.Ok;
    R.Error = L.Error;
    R.Retired = L.Retired;
    R.Cycles = L.Cycles;
    return R;
  });
}
