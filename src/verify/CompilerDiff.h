//===- verify/CompilerDiff.h - Compiler differential checking --*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the compiler-correctness theorem
/// (sections 5.3 and 6.3): for a program whose source execution is free of
/// undefined behavior, the compiled binary running on the software ISA
/// semantics must
///
///  * produce the *same I/O trace* (MMIO events in the same order with
///    the same values),
///  * produce the same return values,
///  * trigger no machine-level undefined behavior, and
///  * keep the program image executable throughout (the XAddrs
///    preservation obligation of section 5.6).
///
/// Both sides run against their own instance of the same deterministic
/// device scenario, so differences are attributable to the compiler.
/// Internal nondeterminism (stackalloc placement) is exercised by running
/// the source side under several placement policies.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VERIFY_COMPILERDIFF_H
#define B2_VERIFY_COMPILERDIFF_H

#include "bedrock2/Ast.h"
#include "bedrock2/Semantics.h"
#include "compiler/Compile.h"
#include "riscv/Machine.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace b2 {
namespace riscv {
class MmioDevice;
}
namespace verify {

/// Creates a fresh, identically configured device instance for one side
/// of the comparison.
using DeviceFactory = std::function<std::unique_ptr<riscv::MmioDevice>()>;

struct DiffOptions {
  Word RamBytes = 64 * 1024;
  uint64_t SourceFuel = 20'000'000;
  uint64_t MachineMaxSteps = 50'000'000;
  compiler::CompilerOptions Compiler = compiler::CompilerOptions::o0();
  /// Stackalloc placement salts to try on the source side (checks that
  /// observable behavior does not depend on the unspecified addresses).
  std::vector<Word> StackallocSalts = {0, 64, 4096};
  /// Memory regions granted to the source program (static buffers). The
  /// machine side needs no grant: the regions are ordinary zeroed RAM.
  /// Callers must keep them clear of the code image and the stack.
  std::vector<std::pair<Word, Word>> OwnRegions;
  /// Engine for the source-side runs. Fast is the default: correctness of
  /// the bytecode engine is guarded by ExecMode::Differential fuzzing in
  /// the test suite, and the machine diff below independently cross-checks
  /// every run's trace and results. Differential here makes each source
  /// run itself a two-engine comparison (any divergence fails the diff).
  bedrock2::ExecMode SourceMode = bedrock2::ExecMode::Fast;
};

struct DiffResult {
  bool Ok = false;
  std::string Error;
  bedrock2::ExecResult Source;   ///< Last source-side run.
  riscv::MmioTrace SourceTrace;  ///< Source-side MMIO events.
  riscv::MmioTrace MachineTrace; ///< Machine-side MMIO events.
  std::vector<Word> MachineRets; ///< a0.. after the halt.
  uint64_t MachineRetired = 0;
};

/// Runs \p Fn with \p Args through both semantics and compares. A source
/// execution with UB makes the comparison vacuous (reported as Ok with
/// Source.F set, since the compiler promises nothing for UB programs —
/// callers asserting UB-freedom should check Source.ok()).
DiffResult diffCompile(const bedrock2::Program &P, const std::string &Fn,
                       const std::vector<Word> &Args,
                       DeviceFactory MakeDevice, const DiffOptions &Options);

/// Convenience: diff with a no-I/O device.
DiffResult diffCompilePure(const bedrock2::Program &P, const std::string &Fn,
                           const std::vector<Word> &Args,
                           const DiffOptions &Options = DiffOptions());

} // namespace verify
} // namespace b2

#endif // B2_VERIFY_COMPILERDIFF_H
