//===- verify/EndToEnd.h - end2end_lightbulb, executably -------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the paper's end-to-end theorem
/// (section 5.9):
///
/// \code
///   Theorem end2end_lightbulb: forall mem0 t,
///     bytes_at (instrencode lightbulb_insts) 0 mem0  AND
///     Trace (p4mm mem0) t  ->
///     exists t', KamiRiscv.KamiLabelSeqR t t'  AND
///                prefix_of t' goodHlTrace.
/// \endcode
///
/// The harness compiles the firmware, places the encoded instructions at
/// address 0, runs the chosen processor model against a scripted packet
/// scenario, maps the label trace through KamiLabelSeqR, and checks prefix
/// membership in goodHlTrace. It additionally checks a *ground truth* the
/// paper gets for free from the theorem statement: the physical lightbulb
/// state changes exactly according to the valid command frames the NIC
/// accepted, no matter how malformed the other traffic was.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VERIFY_ENDTOEND_H
#define B2_VERIFY_ENDTOEND_H

#include "app/Firmware.h"
#include "compiler/Compile.h"
#include "devices/Platform.h"
#include "kami/PipelinedCore.h"
#include "riscv/BlockEngine.h"
#include "riscv/Mmio.h"
#include "tracespec/Matcher.h"

#include <cstdint>
#include <string>
#include <vector>

namespace b2 {
namespace verify {

/// Which execution substrate runs the binary.
enum class CoreKind : uint8_t {
  IsaSim,    ///< Software-oriented ISA semantics.
  SpecCore,  ///< Single-cycle Kami spec processor.
  Pipelined, ///< The pipelined Kami processor (the theorem's p4mm).
};

struct E2EOptions {
  Word RamBytes = 64 * 1024;
  CoreKind Core = CoreKind::Pipelined;
  kami::PipeConfig Pipe;
  devices::SpiConfig Spi;          ///< Default: verified (no pipelining).
  devices::Lan9250::Config Lan;
  app::FirmwareOptions Firmware;   ///< Default: verified firmware.
  compiler::CompilerOptions Compiler = compiler::CompilerOptions::o0();
  uint64_t MaxCycles = 400'000'000;
  uint64_t DrainChunk = 200'000;   ///< Cycles per drain-check chunk.
  /// Predecoded-instruction fast path of the ISA simulator (CoreKind::
  /// IsaSim only). On by default; the switch exists so cached and
  /// uncached runs can be compared differentially in one binary.
  bool SimDecodeCache = true;
  /// Execution engine of the ISA simulator (CoreKind::IsaSim only).
  /// Block runs the superblock trace engine; Differential additionally
  /// checks it in lockstep against the reference stepper and fails the
  /// run on the first divergence.
  riscv::ExecMode SimExec = riscv::ExecMode::Reference;
};

/// A packet arrival script (op-count scheduled; see devices/Platform.h).
struct E2EScenario {
  std::vector<devices::ScheduledFrame> Frames;
};

struct E2EResult {
  bool Ok = false;            ///< Prefix + ground truth + no UB.
  bool PrefixAccepted = false;
  bool GroundTruthOk = false;
  std::string Error;
  tracespec::MatchDiagnosis Diag; ///< Spec-matcher diagnostics.
  riscv::MmioTrace Trace;         ///< KamiLabelSeqR of the run.
  std::vector<bool> LightHistory; ///< Observed distinct lightbulb states.
  std::vector<bool> ExpectedLights; ///< Ground-truth distinct states.
  size_t AcceptedFrames = 0;
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
  double RunSeconds = 0; ///< Wall time of the execution loop alone —
                         ///< machine construction, trace-spec matching,
                         ///< and ground-truth checks excluded. This is
                         ///< the number throughput benchmarks divide by.
};

/// Builds and runs the whole system on \p Scenario.
E2EResult runLightbulbEndToEnd(const E2EScenario &Scenario,
                               const E2EOptions &Options);

/// Same, but with a pre-compiled firmware image (avoids recompiling in
/// loops; the image must be the firmware configured as in \p Options).
E2EResult runCompiledEndToEnd(const compiler::CompiledProgram &Prog,
                              const E2EScenario &Scenario,
                              const E2EOptions &Options);

/// Builds a randomized adversarial scenario: \p NumFrames frames from the
/// packet fuzzer, scheduled \p OpSpacing MMIO-operations apart starting
/// after \p FirstAtOp.
E2EScenario fuzzScenario(uint64_t Seed, unsigned NumFrames,
                         uint64_t FirstAtOp = 2000,
                         uint64_t OpSpacing = 3000);

} // namespace verify
} // namespace b2

#endif // B2_VERIFY_ENDTOEND_H
