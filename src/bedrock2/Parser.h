//===- bedrock2/Parser.h - Bedrock2 concrete-syntax parser -----*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for Bedrock2's C-like concrete syntax (the same syntax printed
/// by bedrock2::toString, so printing and reparsing round-trips). In the
/// paper, surface syntax is provided by Coq notations; here a conventional
/// recursive-descent parser plays that role, which also gives the examples
/// a way to accept programs from files.
///
/// Grammar sketch:
/// \code
///   program    := function*
///   function   := "fn" IDENT "(" idents? ")" ["->" "(" idents ")"] block
///   stmt       := IDENT ["," idents] "=" rhs ";"
///              |  "storeN" "(" expr "," expr ")" ";"
///              |  "if" "(" expr ")" block ["else" block]
///              |  "while" "(" expr ")" block
///              |  "stackalloc" IDENT "[" NUM "]" block
///              |  "skip" ";"  |  call ";"  |  "extern" call ";"
///   rhs        := expr | call | "extern" call
///   expr       := binary operators with C-like precedence over atoms
///   atom       := NUM | IDENT | "loadN" "(" expr ")" | "(" expr ")"
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef B2_BEDROCK2_PARSER_H
#define B2_BEDROCK2_PARSER_H

#include "bedrock2/Ast.h"

#include <optional>
#include <string>

namespace b2 {
namespace bedrock2 {

/// Outcome of parsing: a program, or a diagnostic.
struct ParseResult {
  std::optional<Program> Prog;
  std::string Error; ///< "line N: message" when parsing failed.

  bool ok() const { return Prog.has_value(); }
};

/// Parses a whole compilation unit.
ParseResult parseProgram(const std::string &Source);

/// Parses a single expression (tests and tools).
struct ParseExprResult {
  ExprPtr E;
  std::string Error;
};
ParseExprResult parseExpr(const std::string &Source);

} // namespace bedrock2
} // namespace b2

#endif // B2_BEDROCK2_PARSER_H
