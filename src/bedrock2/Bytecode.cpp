//===- bedrock2/Bytecode.cpp - Compiled checking interpreter -----------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
// Keep this file in lockstep with the reference walker in Semantics.cpp:
// every check, every evaluation order, every fault Detail string, and the
// fuel accounting must match bit for bit. ExecMode::Differential and the
// BytecodeDiff tests enforce the equivalence.
//
//===----------------------------------------------------------------------===//

#include "bedrock2/Bytecode.h"

#include "support/Format.h"
#include "support/Metrics.h"
#include "verify/FaultInjection.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace b2;
using namespace b2::bedrock2;
using namespace b2::support;

// Token-threaded dispatch (GNU labels-as-values) when available; define
// B2_BC_NO_THREADED_DISPATCH to force the portable switch loop (useful
// for differential-benchmarking the dispatch strategy itself).
#if defined(__GNUC__) && !defined(B2_BC_NO_THREADED_DISPATCH)
#define B2_BC_THREADED 1
#else
#define B2_BC_THREADED 0
#endif

#if defined(__GNUC__)
#define B2_UNLIKELY(X) __builtin_expect(!!(X), 0)
#define B2_LIKELY(X) __builtin_expect(!!(X), 1)
#else
#define B2_UNLIKELY(X) (X)
#define B2_LIKELY(X) (X)
#endif

// Dev tooling: -DB2_BC_PROFILE_OPS dumps a dynamic opcode histogram at
// process exit — the data that decides which superinstructions are worth
// adding. Off in normal builds (the counter write would pollute timings).
#if defined(B2_BC_PROFILE_OPS)
#include <cstdio>
namespace {
uint64_t OpCount[128];
struct OpCountDumper {
  ~OpCountDumper() {
    static const char *const Names[] = {
#define B2_BC_OP_NAME(N) #N,
        B2_BC_OP_LIST(B2_BC_OP_NAME)
#undef B2_BC_OP_NAME
    };
    for (size_t I = 0; I != sizeof(Names) / sizeof(Names[0]); ++I)
      if (OpCount[I])
        std::fprintf(stderr, "%-16s %12llu\n", Names[I],
                     (unsigned long long)OpCount[I]);
  }
} OpCountAtExit;
} // namespace
uint64_t DigramCount[128][128];
struct DigramDumper {
  ~DigramDumper() {
    static const char *const Names[] = {
#define B2_BC_OP_NAME(N) #N,
        B2_BC_OP_LIST(B2_BC_OP_NAME)
#undef B2_BC_OP_NAME
    };
    const size_t N = sizeof(Names) / sizeof(Names[0]);
    for (size_t A = 0; A != N; ++A)
      for (size_t B = 0; B != N; ++B)
        if (DigramCount[A][B] > 100000)
          std::fprintf(stderr, "PAIR %-16s %-16s %12llu\n", Names[A],
                       Names[B], (unsigned long long)DigramCount[A][B]);
  }
} DigramAtExit;
#define B2_COUNT_OP                                                          \
  do {                                                                       \
    ++OpCount[size_t(I->K)];                                                 \
    ++DigramCount[PrevOp][size_t(I->K)];                                     \
    PrevOp = size_t(I->K);                                                   \
  } while (0)
#define B2_PREV_DECL size_t PrevOp = 127;
#else
#define B2_PREV_DECL
#define B2_COUNT_OP ((void)0)
#endif

// -- Compilation ---------------------------------------------------------------

class BytecodeProgram::Compiler {
public:
  Compiler(BytecodeProgram &BP, const Program &P) : BP(BP), P(P) {}

  void compileAll() {
    // Index every function first so call sites resolve regardless of
    // definition order (Bedrock2 programs are one compilation unit).
    for (const auto &[Name, Fn] : P.Functions) {
      (void)Fn;
      BP.Index.emplace(Name, uint32_t(BP.Funcs.size()));
      BP.Funcs.emplace_back();
      BP.Funcs.back().Name = Name;
    }
    for (const auto &[Name, Fn] : P.Functions)
      compileFunction(BP.Funcs[BP.Index.at(Name)], Fn);
  }

private:
  BytecodeProgram &BP;
  const Program &P;

  BcFunction *F = nullptr;
  std::map<std::string, uint16_t> SlotOf;
  uint32_t NumMeasures = 0;
  int CurDepth = 0; ///< Operand-stack depth at the current emit point.
  int MaxDepth = 0;

  /// Net operand-stack effect of \p I. The structured control flow makes
  /// the depth at every program point path-independent, so tracking it
  /// linearly during emission yields the exact per-frame maximum. Ops
  /// whose effect depends on a site table (calls, interactions) return 0
  /// here and are adjusted at their emit site.
  static int stackDelta(const bc::Insn &I) {
    switch (I.K) {
    case bc::Op::PushLit:
    case bc::Op::PushVar:
    case bc::Op::CollectRet:
      return 1;
    case bc::Op::Binop:
    case bc::Op::SetVar:
    case bc::Op::JumpIfZero:
    case bc::Op::CheckInv:
    case bc::Op::MeasCheck:
    case bc::Op::CheckPre:
    case bc::Op::CheckPost:
      return -1;
    case bc::Op::StoreMem:
      return -2;
    default:
      return 0;
    }
  }

  uint32_t intern(const std::string &S) {
    auto It = StrIdx.find(S);
    if (It != StrIdx.end())
      return It->second;
    uint32_t I = uint32_t(BP.Strings.size());
    BP.Strings.push_back(S);
    StrIdx.emplace(S, I);
    return I;
  }
  std::map<std::string, uint32_t> StrIdx;

  uint16_t slot(const std::string &Name) {
    auto It = SlotOf.find(Name);
    if (It != SlotOf.end())
      return It->second;
    assert(SlotOf.size() < 0xFFFF && "too many locals in one function");
    uint16_t S = uint16_t(SlotOf.size());
    SlotOf.emplace(Name, S);
    return S;
  }

  size_t emit(bc::Insn I) {
    F->Code.push_back(I);
    CurDepth += stackDelta(I);
    MaxDepth = std::max(MaxDepth, CurDepth);
    return F->Code.size() - 1;
  }
  void patchJump(size_t At) { F->Code[At].Arg = uint32_t(F->Code.size()); }
  uint32_t here() const { return uint32_t(F->Code.size()); }

  void compileFunction(BcFunction &BF, const Function &Fn) {
    F = &BF;
    SlotOf.clear();
    NumMeasures = 0;
    CurDepth = 0;
    MaxDepth = 0;
    for (const std::string &Param : Fn.Params)
      slot(Param); // Params occupy slots 0..N-1 in declaration order.
    BF.NumParams = uint32_t(Fn.Params.size());
    BF.NumRets = uint32_t(Fn.Rets.size());
    // Mirrors Interp::execCall: precondition, body, return collection,
    // postcondition (over final parameter values and results).
    if (Fn.Pre) {
      compileExpr(*Fn.Pre);
      emit({bc::Op::CheckPre, 0, 0, 0,
            intern("requires clause of '" + Fn.Name + "'"), 0});
    }
    compileStmt(*Fn.Body);
    for (const std::string &R : Fn.Rets)
      emit({bc::Op::CollectRet, 0, slot(R), 0,
            intern("return variable '" + R + "' of '" + Fn.Name + "'"), 0});
    if (Fn.Post) {
      compileExpr(*Fn.Post);
      emit({bc::Op::CheckPost, 0, 0, 0,
            intern("ensures clause of '" + Fn.Name + "'"), 0});
    }
    emit({bc::Op::Return, 0, 0, 0, 0, 0});
    BF.NumSlots = uint32_t(SlotOf.size());
    BF.NumMeasures = NumMeasures;
    // Code after a StaticFault never runs but is still tracked linearly,
    // so MaxDepth can over-estimate there; that only costs slack capacity.
    BF.MaxStack = uint32_t(MaxDepth);
    size_t InsnsIn = BF.Code.size();
    fuse(BF);
    metrics::add(metrics::Id::InterpCompileFns);
    metrics::add(metrics::Id::InterpCompileInsnsIn, InsnsIn);
    metrics::add(metrics::Id::InterpCompileInsnsOut, BF.Code.size());
  }

  /// True when \p I transfers control to \p I.Arg (so Arg is a code
  /// index that target-marking and remapping must honor).
  static bool isJumpy(const bc::Insn &I) {
    switch (I.K) {
    case bc::Op::Jump:
    case bc::Op::JumpIfZero:
    case bc::Op::StepLoopJump:
    case bc::Op::StepIncLoopJump:
    case bc::Op::BrVZStepN:
    case bc::Op::StepNBrVZ:
    case bc::Op::BrVZ:
    case bc::Op::BrVVZ:
    case bc::Op::BrVIZ:
    case bc::Op::BrSIZ:
    case bc::Op::BrSVZ:
    case bc::Op::BrSSZ:
      return true;
    default:
      return false;
    }
  }

  using FuseFn = size_t (*)(const std::vector<bc::Insn> &,
                            const std::vector<uint8_t> &, size_t,
                            std::vector<bc::Insn> &);

  /// One peephole rewrite over \p BF: \p Fn emits the (possibly fused)
  /// replacement for each source position and says how many instructions
  /// it consumed; jump arguments are remapped afterwards. \p Fn only
  /// fuses when no interior instruction of the pattern is a jump target
  /// (targets always land on statement or loop-head boundaries, so in
  /// practice every pattern is eligible).
  static void rewrite(BcFunction &BF, FuseFn Fn) {
    const std::vector<bc::Insn> Old = std::move(BF.Code);
    std::vector<uint8_t> IsTarget(Old.size() + 1, 0);
    for (const bc::Insn &I : Old)
      if (isJumpy(I))
        IsTarget[I.Arg] = 1;
    std::vector<bc::Insn> New;
    New.reserve(Old.size());
    std::vector<uint32_t> Map(Old.size() + 1, ~uint32_t(0));
    uint64_t Fused = 0;
    size_t Pc = 0;
    while (Pc < Old.size()) {
      Map[Pc] = uint32_t(New.size());
      size_t Consumed = Fn(Old, IsTarget, Pc, New);
      Fused += Consumed > 1;
      Pc += Consumed;
    }
    Map[Old.size()] = uint32_t(New.size());
    metrics::add(metrics::Id::InterpFuseHits, Fused);
    for (bc::Insn &I : New)
      if (isJumpy(I)) {
        assert(Map[I.Arg] != ~uint32_t(0) && "jump into a fused pattern");
        I.Arg = Map[I.Arg];
      }
    BF.Code = std::move(New);
  }

  /// Peephole passes, each over the previous one's output: the
  /// expression/assignment superinstructions, then the expression combos
  /// they expose, then fuel-charge and branch fusion, then charge-run
  /// and loop-latch collapsing, then constant-assignment pairing, and
  /// finally in-place loop-head inlining (each pass's patterns only
  /// exist after the one before). Fusion never increases operand-stack
  /// depth, so MaxStack stays a valid bound.
  static void fuse(BcFunction &BF) {
    rewrite(BF, fuseAt);
    rewrite(BF, fuseAtExpr);
    rewrite(BF, fuseAt2);
    rewrite(BF, fuseAt3);
    rewrite(BF, fuseAt4);
    fuseLoopHeads(BF);
  }

  /// Final pass: inline the loop-head test into each backedge. When a
  /// StepIncLoopJump's target is a BrVZStepN over the same slot (the
  /// canonical "while (i) { ...; i = i op k }") and the head's exit is
  /// the latch's own fall-through — which is how compileStmt lays loops
  /// out — the latch can run the test itself and skip the bounce through
  /// the head: jump straight to the body on nonzero (charging the body's
  /// run), fall through to the exit on zero. The counter was just
  /// written, so the head's unbound check cannot fire. The head insn
  /// stays in place for the loop-entry path. This is a pure 1:1
  /// substitution — no instruction moves — so the packed Arg
  /// (charges << 24 | body target) needs no remapping, which is also why
  /// this cannot be a rewrite() pass.
  static void fuseLoopHeads(BcFunction &BF) {
    std::vector<bc::Insn> &C = BF.Code;
    for (size_t P = 0; P + 1 < C.size(); ++P) {
      bc::Insn &L = C[P];
      if (L.K != bc::Op::StepIncLoopJump)
        continue;
      const bc::Insn &H = C[L.Arg];
      if (H.K != bc::Op::BrVZStepN || H.A != L.A || H.Arg != P + 1 ||
          H.Imm > 0xFF || L.Arg + 1 > 0xFFFFFF)
        continue;
      L.K = bc::Op::IncLoopBrNZ;
      L.Arg = uint32_t(H.Imm << 24 | (L.Arg + 1));
      metrics::add(metrics::Id::InterpFuseLoopHeads);
    }
  }

  /// Emits the (possibly fused) replacement for the sequence starting at
  /// \p Pc into \p New; returns how many source instructions it consumed.
  /// Longest match wins. Every fused form preserves the source order of
  /// unbound-variable, alignment, and footprint checks, and the
  /// division-by-zero count.
  static size_t fuseAt(const std::vector<bc::Insn> &Old,
                       const std::vector<uint8_t> &IsTarget, size_t Pc,
                       std::vector<bc::Insn> &New) {
    using bc::Op;
    const bc::Insn &A = Old[Pc];
    // Old[Pc+K] may join a pattern only if it exists and no jump lands on
    // it.
    auto Free = [&](size_t K) {
      return Pc + K < Old.size() && !IsTarget[Pc + K];
    };
    const bc::Insn *B = Free(1) ? &Old[Pc + 1] : nullptr;
    const bc::Insn *C = Free(2) ? &Old[Pc + 2] : nullptr;
    const bc::Insn *D = Free(3) ? &Old[Pc + 3] : nullptr;

    if (A.K == Op::PushVar) {
      if (B && B->K == Op::PushVar && C && C->K == Op::Binop) {
        if (D && D->K == Op::SetVar) {
          New.push_back({Op::BinopVVS, C->U8, A.A,
                         uint32_t(D->A) << 16 | B->A, A.Str, B->Str});
          return 4;
        }
        New.push_back({Op::BinopVV, C->U8, A.A, B->A, A.Str, B->Str});
        return 3;
      }
      if (B && B->K == Op::PushLit && C && C->K == Op::Binop) {
        if (D && D->K == Op::SetVar) {
          New.push_back({Op::BinopVIS, C->U8, A.A, D->A, A.Str, B->Imm});
          return 4;
        }
        New.push_back({Op::BinopVI, C->U8, A.A, 0, A.Str, B->Imm});
        return 3;
      }
      if (B && B->K == Op::PushVar && C && C->K == Op::StoreMem) {
        New.push_back({Op::StoreVV, C->U8, A.A, B->A, A.Str, B->Str});
        return 3;
      }
      if (B && B->K == Op::PushLit && C && C->K == Op::StoreMem) {
        New.push_back({Op::StoreVI, C->U8, A.A, 0, A.Str, B->Imm});
        return 3;
      }
      if (B && B->K == Op::LoadMem) {
        if (C && C->K == Op::SetVar) {
          New.push_back({Op::LoadVS, B->U8, A.A, C->A, A.Str, 0});
          return 3;
        }
        New.push_back({Op::LoadV, B->U8, A.A, 0, A.Str, 0});
        return 2;
      }
      if (B && B->K == Op::Binop) { // lhs already on the stack
        if (C && C->K == Op::SetVar) {
          New.push_back({Op::BinopSVS, B->U8, A.A, C->A, A.Str, 0});
          return 3;
        }
        New.push_back({Op::BinopSV, B->U8, A.A, 0, A.Str, 0});
        return 2;
      }
      if (B && B->K == Op::SetVar) {
        New.push_back({Op::MoveVar, 0, A.A, B->A, A.Str, 0});
        return 2;
      }
    } else if (A.K == Op::PushLit) {
      if (B && B->K == Op::Binop) {
        if (C && C->K == Op::SetVar) {
          New.push_back({Op::BinopSIS, B->U8, C->A, 0, 0, A.Imm});
          return 3;
        }
        New.push_back({Op::BinopSI, B->U8, 0, 0, 0, A.Imm});
        return 2;
      }
      if (B && B->K == Op::SetVar) {
        New.push_back({Op::SetLit, 0, B->A, 0, 0, A.Imm});
        return 2;
      }
    } else if (A.K == Op::Binop && B && B->K == Op::SetVar) {
      New.push_back({Op::BinopSS, A.U8, B->A, 0, 0, 0});
      return 2;
    } else if (A.K == Op::LoadMem && B && B->K == Op::SetVar) {
      New.push_back({Op::LoadS, A.U8, B->A, 0, 0, 0});
      return 2;
    }
    New.push_back(A);
    return 1;
  }

  /// Second pass: expression combos over the first pass's output. The
  /// patterns come from dynamic digram profiling (B2_BC_PROFILE_OPS) of
  /// the random-program corpus; each packs two BinOp/size nibbles into
  /// U8 (BinOp tops out at 14 and access sizes at 4, so both always
  /// fit) and preserves the source evaluation order of every check and
  /// division-by-zero count.
  static size_t fuseAtExpr(const std::vector<bc::Insn> &Old,
                           const std::vector<uint8_t> &IsTarget, size_t Pc,
                           std::vector<bc::Insn> &New) {
    using bc::Op;
    const bc::Insn &A = Old[Pc];
    const bc::Insn *B =
        (Pc + 1 < Old.size() && !IsTarget[Pc + 1]) ? &Old[Pc + 1] : nullptr;
    if (B) {
      if (A.K == Op::BinopSI && B->K == Op::Binop) {
        New.push_back(
            {Op::FoldSI, uint8_t(A.U8 | B->U8 << 4), 0, 0, 0, A.Imm});
        return 2;
      }
      if (A.K == Op::BinopVV && B->K == Op::Binop) {
        New.push_back(
            {Op::FoldVV, uint8_t(A.U8 | B->U8 << 4), A.A, A.Arg, A.Str,
             A.Imm});
        return 2;
      }
      if (A.K == Op::BinopVI && B->K == Op::Binop) {
        New.push_back(
            {Op::FoldVI, uint8_t(A.U8 | B->U8 << 4), A.A, 0, A.Str,
             A.Imm});
        return 2;
      }
      if (A.K == Op::BinopVI && B->K == Op::LoadMem) {
        New.push_back(
            {Op::BinopVILoad, uint8_t(A.U8 | B->U8 << 4), A.A, 0, A.Str,
             A.Imm});
        return 2;
      }
      if (A.K == Op::Binop && B->K == Op::LoadMem) {
        New.push_back(
            {Op::BinopLoad, uint8_t(A.U8 | B->U8 << 4), 0, 0, 0, 0});
        return 2;
      }
      if (A.K == Op::PushVar && B->K == Op::PushLit) {
        New.push_back({Op::Push2VL, 0, A.A, 0, A.Str, B->Imm});
        return 2;
      }
    }
    New.push_back(A);
    return 1;
  }

  /// Third peephole pass, over the output of the second. Two families:
  ///
  ///  * StepStmt + X  ->  StepX, and StepLoop + Jump -> StepLoopJump:
  ///    the per-statement (or per-iteration) fuel charge is absorbed
  ///    into the following instruction. The charge still happens before
  ///    anything else that instruction does, with the identical fault
  ///    detail, so fuel exhaustion is observed at exactly the same
  ///    point with the same StepsUsed.
  ///
  ///  * X + JumpIfZero  ->  BrXZ for the value-producing ops that end
  ///    loop conditions and if tests: the condition result feeds the
  ///    branch directly instead of bouncing through the operand stack.
  ///    BrVVZ needs four operand fields, so the rhs slot and its
  ///    unbound-detail string share Imm; it is only produced when both
  ///    fit in 16 bits (they always do in practice — slots are 16-bit
  ///    by construction and string interning starts from zero).
  static size_t fuseAt2(const std::vector<bc::Insn> &Old,
                        const std::vector<uint8_t> &IsTarget, size_t Pc,
                        std::vector<bc::Insn> &New) {
    using bc::Op;
    const bc::Insn &A = Old[Pc];
    const bc::Insn *B =
        (Pc + 1 < Old.size() && !IsTarget[Pc + 1]) ? &Old[Pc + 1] : nullptr;
    if (B && A.K == Op::StepStmt) {
      Op Stepped = Op::StepStmt;
      switch (B->K) {
      case Op::PushLit:    Stepped = Op::StepPushLit; break;
      case Op::PushVar:    Stepped = Op::StepPushVar; break;
      case Op::SetLit:     Stepped = Op::StepSetLit; break;
      case Op::MoveVar:    Stepped = Op::StepMoveVar; break;
      case Op::BinopVV:    Stepped = Op::StepBinopVV; break;
      case Op::BinopVVS:   Stepped = Op::StepBinopVVS; break;
      case Op::BinopVI:    Stepped = Op::StepBinopVI; break;
      case Op::BinopVIS:   Stepped = Op::StepBinopVIS; break;
      case Op::LoadV:      Stepped = Op::StepLoadV; break;
      case Op::LoadVS:     Stepped = Op::StepLoadVS; break;
      case Op::StoreVV:    Stepped = Op::StepStoreVV; break;
      case Op::StoreVI:    Stepped = Op::StepStoreVI; break;
      case Op::EnterAlloc: Stepped = Op::StepEnterAlloc; break;
      case Op::CallBind:   Stepped = Op::StepCallBind; break;
      case Op::Push2VL:    Stepped = Op::StepPush2VL; break;
      default: break;
      }
      if (Stepped != Op::StepStmt) {
        bc::Insn Fused = *B;
        Fused.K = Stepped;
        New.push_back(Fused);
        return 2;
      }
    }
    if (B && A.K == Op::StepLoop && B->K == Op::Jump) {
      New.push_back({Op::StepLoopJump, 0, 0, B->Arg, 0, 0});
      return 2;
    }
    if (B && B->K == Op::JumpIfZero) {
      switch (A.K) {
      case Op::PushVar:
        New.push_back({Op::BrVZ, 0, A.A, B->Arg, A.Str, 0});
        return 2;
      case Op::BinopVV:
        if (A.Imm <= 0xFFFF && A.Arg <= 0xFFFF) {
          New.push_back(
              {Op::BrVVZ, A.U8, A.A, B->Arg, A.Str, A.Imm << 16 | A.Arg});
          return 2;
        }
        break;
      case Op::BinopVI:
        New.push_back({Op::BrVIZ, A.U8, A.A, B->Arg, A.Str, A.Imm});
        return 2;
      case Op::BinopSI:
        New.push_back({Op::BrSIZ, A.U8, 0, B->Arg, 0, A.Imm});
        return 2;
      case Op::BinopSV:
        New.push_back({Op::BrSVZ, A.U8, A.A, B->Arg, A.Str, 0});
        return 2;
      case Op::Binop:
        New.push_back({Op::BrSSZ, A.U8, 0, B->Arg, 0, 0});
        return 2;
      default:
        break;
      }
    }
    New.push_back(A);
    return 1;
  }

  /// True for the Step<X> ops whose U8 high nibble is free to carry a
  /// preceding charge-run count (all of them — see Bytecode.h).
  static bool isStepTarget(bc::Op K) {
    switch (K) {
    case bc::Op::StepPushLit:
    case bc::Op::StepPushVar:
    case bc::Op::StepSetLit:
    case bc::Op::StepMoveVar:
    case bc::Op::StepBinopVV:
    case bc::Op::StepBinopVVS:
    case bc::Op::StepBinopVI:
    case bc::Op::StepBinopVIS:
    case bc::Op::StepLoadV:
    case bc::Op::StepLoadVS:
    case bc::Op::StepStoreVV:
    case bc::Op::StepStoreVI:
    case bc::Op::StepEnterAlloc:
    case bc::Op::StepCallBind:
    case bc::Op::StepPush2VL:
      return true;
    default:
      return false;
    }
  }

  /// Fourth peephole pass, collapsing patterns that only exist in the
  /// third pass's output. The recurring theme is runs of consecutive
  /// StepStmt charges: nested Seq nodes each charge on entry, and
  /// fuel-charge fusion has already pulled every charge it can into its
  /// statement's first real op, so what remains before each statement is
  /// a pure charge run. Charging a run of m at once is exact: the walker
  /// stops charging exactly when the budget hits the limit (identical
  /// StepsUsed) and every charge in the run shares the one detail
  /// string. A run is absorbed, in order of preference, into
  ///
  ///  * a following Step<X> (count in U8's high nibble, so m <= 15),
  ///    including the StepBinopVIS + StepLoopJump loop-latch pair, which
  ///    becomes StepIncLoopJump;
  ///  * a following BrVZ — an if test after its enclosing Seq charges —
  ///    as StepNBrVZ (count in Imm);
  ///  * a bare StepN when nothing fusable follows and m >= 2.
  ///
  /// Independently, a BrVZ falling through into a charge run (a loop
  /// head or if test entering its body) becomes BrVZStepN: branch on
  /// zero with no charge, else charge the run.
  static size_t fuseAt3(const std::vector<bc::Insn> &Old,
                        const std::vector<uint8_t> &IsTarget, size_t Pc,
                        std::vector<bc::Insn> &New) {
    using bc::Op;
    const bc::Insn &A = Old[Pc];
    auto Free = [&](size_t K) {
      return Pc + K < Old.size() && !IsTarget[Pc + K];
    };
    // The "i = i op k" latch: StepBinopVIS whose destination is its own
    // lhs slot, followed by the backedge.
    auto IsLatch = [&](size_t At) {
      return Old[At].K == Op::StepBinopVIS &&
             uint16_t(Old[At].Arg) == Old[At].A && At + 1 < Old.size() &&
             !IsTarget[At + 1] && Old[At + 1].K == Op::StepLoopJump;
    };
    if (A.K == Op::BrVZ) {
      size_t M = 0;
      while (M < 0xFFFF && Free(1 + M) && Old[Pc + 1 + M].K == Op::StepStmt)
        ++M;
      if (M >= 1) {
        New.push_back({Op::BrVZStepN, 0, A.A, A.Arg, A.Str, Word(M)});
        return 1 + M;
      }
    }
    if (A.K == Op::StepStmt) {
      size_t M = 1;
      while (M < 0xFFFF && Free(M) && Old[Pc + M].K == Op::StepStmt)
        ++M;
      if (M < 0xFFFF && Free(M)) {
        const bc::Insn &T = Old[Pc + M];
        if (T.K == Op::BrVZ) {
          New.push_back({Op::StepNBrVZ, 0, T.A, T.Arg, T.Str, Word(M)});
          return M + 1;
        }
        if (M <= 15) {
          if (IsLatch(Pc + M)) {
            New.push_back({Op::StepIncLoopJump, uint8_t(T.U8 | M << 4),
                           T.A, Old[Pc + M + 1].Arg, T.Str, T.Imm});
            return M + 2;
          }
          if (isStepTarget(T.K)) {
            bc::Insn F = T;
            F.U8 = uint8_t(F.U8 | M << 4);
            New.push_back(F);
            return M + 1;
          }
        }
      }
      if (M >= 2) {
        New.push_back({Op::StepN, 0, uint16_t(M), 0, 0, 0});
        return M;
      }
    }
    if (IsLatch(Pc)) {
      New.push_back(
          {Op::StepIncLoopJump, A.U8, A.A, Old[Pc + 1].Arg, A.Str, A.Imm});
      return 2;
    }
    New.push_back(A);
    return 1;
  }

  /// Fifth pass: consecutive constant assignments — whose charge counts
  /// the fourth pass already folded into U8's high nibble — collapse
  /// into one StepSet2Lit. The second literal rides in Str (SetLit has
  /// no fault detail) and the second charge count in Arg's high half.
  static size_t fuseAt4(const std::vector<bc::Insn> &Old,
                        const std::vector<uint8_t> &IsTarget, size_t Pc,
                        std::vector<bc::Insn> &New) {
    using bc::Op;
    const bc::Insn &A = Old[Pc];
    if (A.K == Op::StepSetLit && Pc + 1 < Old.size() && !IsTarget[Pc + 1] &&
        Old[Pc + 1].K == Op::StepSetLit) {
      const bc::Insn &B = Old[Pc + 1];
      New.push_back({Op::StepSet2Lit, A.U8, A.A,
                     uint32_t(B.U8 >> 4) << 16 | B.A, B.Imm, A.Imm});
      return 2;
    }
    New.push_back(A);
    return 1;
  }

  /// Evaluates \p E at compile time when it is built purely from
  /// literals, so runtime evaluation could not observably differ: literal
  /// subtrees cannot fault and consume no fuel. The one observable effect
  /// they can have is the division-by-zero count, so a Divu/Remu whose
  /// rhs folds to zero blocks folding of its whole enclosing tree.
  static bool foldConst(const Expr &E, Word &V) {
    switch (E.K) {
    case Expr::Kind::Literal:
      V = E.Lit;
      return true;
    case Expr::Kind::Op: {
      Word A, B;
      if (!foldConst(*E.A, A) || !foldConst(*E.B, B))
        return false;
      if ((E.Op == BinOp::Divu || E.Op == BinOp::Remu) && B == 0)
        return false;
      V = evalBinOp(E.Op, A, B);
      return true;
    }
    default:
      return false;
    }
  }

  void compileExpr(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::Literal:
      emit({bc::Op::PushLit, 0, 0, 0, 0, E.Lit});
      return;
    case Expr::Kind::Var:
      emit({bc::Op::PushVar, 0, slot(E.Name), 0,
            intern("variable '" + E.Name + "'"), 0});
      return;
    case Expr::Kind::Load:
      compileExpr(*E.A);
      emit({bc::Op::LoadMem, uint8_t(E.Size), 0, 0, 0, 0});
      return;
    case Expr::Kind::Op: {
      Word V;
      if (foldConst(E, V)) {
        emit({bc::Op::PushLit, 0, 0, 0, 0, V});
        return;
      }
      compileExpr(*E.A);
      compileExpr(*E.B);
      emit({bc::Op::Binop, uint8_t(E.Op), 0, 0, 0, 0});
      return;
    }
    }
    assert(false && "unreachable: exhaustive expression kinds");
  }

  void emitStaticFault(Fault Kind, const std::string &Detail) {
    emit({bc::Op::StaticFault, uint8_t(Kind), 0, 0, intern(Detail), 0});
  }

  void compileStmt(const Stmt &S) {
    // Every statement node consumes one fuel step on entry, exactly as
    // the top of Interp::execStmt does.
    emit({bc::Op::StepStmt, 0, 0, 0, intern("statement budget exhausted"),
          0});
    switch (S.K) {
    case Stmt::Kind::Skip:
      return;
    case Stmt::Kind::Set:
      compileExpr(*S.Value);
      emit({bc::Op::SetVar, 0, slot(S.Var), 0, 0, 0});
      return;
    case Stmt::Kind::Store:
      compileExpr(*S.Addr);
      compileExpr(*S.Value);
      emit({bc::Op::StoreMem, uint8_t(S.Size), 0, 0, 0, 0});
      return;
    case Stmt::Kind::If: {
      compileExpr(*S.Cond);
      size_t ToElse = emit({bc::Op::JumpIfZero, 0, 0, 0, 0, 0});
      compileStmt(*S.S1);
      size_t ToEnd = emit({bc::Op::Jump, 0, 0, 0, 0, 0});
      patchJump(ToElse);
      compileStmt(*S.S2);
      patchJump(ToEnd);
      return;
    }
    case Stmt::Kind::While: {
      // Per iteration: invariant, condition, measure, body, then the
      // walker's extra per-iteration fuel charge.
      uint16_t Meas = 0;
      if (S.Measure) {
        Meas = uint16_t(NumMeasures++);
        emit({bc::Op::MeasReset, 0, Meas, 0, 0, 0});
      }
      uint32_t Head = here();
      if (S.Invariant) {
        compileExpr(*S.Invariant);
        emit({bc::Op::CheckInv, 0, 0, 0, intern("loop invariant"), 0});
      }
      compileExpr(*S.Cond);
      size_t ToExit = emit({bc::Op::JumpIfZero, 0, 0, 0, 0, 0});
      if (S.Measure) {
        compileExpr(*S.Measure);
        emit({bc::Op::MeasCheck, 0, Meas, 0, 0, 0});
      }
      compileStmt(*S.S1);
      emit({bc::Op::StepLoop, 0, 0, 0, intern("loop budget exhausted"), 0});
      emit({bc::Op::Jump, 0, 0, Head, 0, 0});
      patchJump(ToExit);
      return;
    }
    case Stmt::Kind::Seq:
      compileStmt(*S.S1);
      compileStmt(*S.S2);
      return;
    case Stmt::Kind::Call: {
      // Arguments evaluate before any callee checking (so an argument
      // fault wins over an unknown-callee fault), like execStmt.
      for (const ExprPtr &A : S.Args)
        compileExpr(*A);
      const Function *Callee = P.find(S.Callee);
      if (!Callee) {
        emitStaticFault(Fault::UnknownFunction,
                        "function '" + S.Callee + "'");
        return;
      }
      if (Callee->Params.size() != S.Args.size()) {
        emitStaticFault(Fault::ArityMismatch,
                        "call to '" + S.Callee + "' with " +
                            std::to_string(S.Args.size()) +
                            " args, expected " +
                            std::to_string(Callee->Params.size()));
        return;
      }
      uint32_t FnIdx = BP.Index.at(S.Callee);
      if (Callee->Rets.size() != S.Dsts.size()) {
        // The callee still runs to completion first — the walker only
        // reports the result-binding mismatch after a successful call.
        emit({bc::Op::CallDrop, 0, 0, FnIdx, 0, 0});
        CurDepth -= int(S.Args.size());
        emitStaticFault(Fault::ArityMismatch,
                        "call to '" + S.Callee + "' binds " +
                            std::to_string(S.Dsts.size()) +
                            " results, returns " +
                            std::to_string(Callee->Rets.size()));
        return;
      }
      bc::CallSite Site;
      Site.Fn = FnIdx;
      Site.Dsts.reserve(S.Dsts.size());
      for (const std::string &D : S.Dsts)
        Site.Dsts.push_back(slot(D));
      uint32_t SiteIdx = uint32_t(BP.Calls.size());
      BP.Calls.push_back(std::move(Site));
      emit({bc::Op::CallBind, 0, 0, SiteIdx, 0, 0});
      CurDepth -= int(S.Args.size());
      return;
    }
    case Stmt::Kind::Interact: {
      for (const ExprPtr &A : S.Args)
        compileExpr(*A);
      bc::InteractSite Site;
      Site.Action = S.Callee;
      Site.NumArgs = uint32_t(S.Args.size());
      for (const std::string &D : S.Dsts)
        Site.Dsts.push_back(slot(D));
      Site.BindDetail = intern("external '" + S.Callee + "' binds " +
                               std::to_string(S.Dsts.size()) + " results");
      uint32_t SiteIdx = uint32_t(BP.Interacts.size());
      BP.Interacts.push_back(std::move(Site));
      emit({bc::Op::InteractExt, 0, 0, SiteIdx, 0, 0});
      CurDepth -= int(S.Args.size());
      return;
    }
    case Stmt::Kind::Stackalloc: {
      if (S.NBytes == 0 || S.NBytes % 4 != 0) {
        emitStaticFault(Fault::StackallocMisuse,
                        "size " + std::to_string(S.NBytes));
        return;
      }
      uint32_t SiteIdx = uint32_t(BP.Allocs.size());
      BP.Allocs.push_back({slot(S.Var), S.NBytes});
      emit({bc::Op::EnterAlloc, 0, 0, SiteIdx, 0, 0});
      compileStmt(*S.S1);
      emit({bc::Op::LeaveAlloc, 0, 0, SiteIdx, 0, 0});
      return;
    }
    }
    assert(false && "unreachable: exhaustive statement kinds");
  }
};

BytecodeProgram::BytecodeProgram(const Program &P) {
  Compiler(*this, P).compileAll();
}

size_t BytecodeProgram::numInstructions() const {
  size_t N = 0;
  for (const BcFunction &F : Funcs)
    N += F.Code.size();
  return N;
}

// -- Execution ---------------------------------------------------------------

struct BytecodeProgram::Exec {
  const BytecodeProgram &BP;
  ExtSpec &Ext;
  Footprint &Mem;
  uint64_t Fuel;
  Word StackNext;
  /// Arenas live in the caller-provided scratch so their capacity
  /// survives across calls; only the tops below are per-call state.
  ExecScratch &Sc;
  ExecResult R = {};
  /// Operand stack shared by all frames, raw-pointer discipline: a frame
  /// reserves its whole window (MaxStack, known at compile time) once on
  /// entry, then pushes and pops through a local Word* with no per-op
  /// bookkeeping. Top is the live depth, synced only around recursion.
  std::vector<Word> &Stack = Sc.Stack;
  size_t Top = 0;
  std::vector<Word> &Slots = Sc.Slots; ///< Frame-slot arena (explicit top).
  std::vector<uint8_t> &Bound =
      Sc.Bound; ///< Per-slot definedness (UnboundVariable).
  size_t SlotTop = 0;
  std::vector<Word> &MeasVal =
      Sc.MeasVal; ///< Per-loop-activation previous measure.
  std::vector<uint8_t> &MeasHave = Sc.MeasHave;
  size_t MeasTop = 0;
  /// Live stackalloc scopes of all frames; each frame unwinds down to its
  /// entry size on both exit paths (ownership ends with the block even
  /// when a fault sticks).
  std::vector<std::pair<Word, Word>> &AllocScopes = Sc.AllocScopes;

  bool fault(Fault F, std::string D) {
    if (R.F == Fault::None) {
      R.F = F;
      R.Detail = std::move(D);
    }
    return false;
  }

  /// Runs one activation. Arguments sit at Stack[ArgBase..); on success
  /// the results are left at Stack[ArgBase..) with Top = ArgBase+NumRets.
  bool runFunction(uint32_t FnIdx, size_t ArgBase);
};

bool BytecodeProgram::Exec::runFunction(uint32_t FnIdx, size_t ArgBase) {
  const BcFunction &F = BP.Funcs[FnIdx];

  // Frame setup: grow each arena at most once, so the hot loop can run on
  // raw pointers. Only Bound/MeasHave need (re)zeroing — slot values are
  // never read before their definedness bit is set.
  const size_t NeedStack = ArgBase + F.NumParams + F.MaxStack;
  if (Stack.size() < NeedStack)
    Stack.resize(std::max(Stack.size() * 2, NeedStack));
  const size_t SlotBase = SlotTop;
  SlotTop += F.NumSlots;
  if (Slots.size() < SlotTop) {
    Slots.resize(std::max(Slots.size() * 2, SlotTop));
    Bound.resize(Slots.size());
  }
  if (F.NumSlots)
    std::memset(Bound.data() + SlotBase, 0, F.NumSlots);
  for (uint32_t I = 0; I != F.NumParams; ++I) {
    Slots[SlotBase + I] = Stack[ArgBase + I];
    Bound[SlotBase + I] = 1;
  }
  const size_t MeasBase = MeasTop;
  MeasTop += F.NumMeasures;
  if (MeasVal.size() < MeasTop) {
    MeasVal.resize(std::max(MeasVal.size() * 2, MeasTop));
    MeasHave.resize(MeasVal.size());
  }
  if (F.NumMeasures)
    std::memset(MeasHave.data() + MeasBase, 0, F.NumMeasures);
  const size_t AllocBase = AllocScopes.size();

  // Hot-loop registers. Sp points one past the operand-stack top (the
  // frame reuses the argument window — params were just consumed into
  // slots); Sl/Bd are this frame's slot windows; Steps shadows
  // R.StepsUsed. All are re-derived after a recursive call, which may
  // reallocate the arenas.
  const bc::Insn *Code = F.Code.data();
  const uint64_t FuelLim = Fuel;
  Word *Sp = Stack.data() + ArgBase;
  Word *Sl = Slots.data() + SlotBase;
  uint8_t *Bd = Bound.data() + SlotBase;
  uint64_t Steps = R.StepsUsed;
  bool Ok = true;
  uint32_t Pc = 0;
  const bc::Insn *I;
  B2_PREV_DECL

  // Dispatch. On GNU-compatible compilers each handler ends by jumping
  // through a label table indexed by the next opcode (token-threaded
  // dispatch): the indirect branch is replicated per handler, so the
  // branch predictor learns per-opcode successor patterns instead of
  // sharing one mispredicting switch branch. The portable fallback is
  // the same handlers inside a switch. Both variants share one handler
  // body via these macros; Step* fuel-charge variants charge and then
  // jump into the plain op's body.
#define B2_FAULT(KIND, DETAIL)                                               \
  do {                                                                       \
    Ok = fault(Fault::KIND, DETAIL);                                         \
    goto Exit;                                                               \
  } while (0)
#define B2_CHARGE(DETAIL)                                                    \
  do {                                                                       \
    if (B2_UNLIKELY(Steps >= FuelLim))                                       \
      B2_FAULT(OutOfFuel, DETAIL);                                           \
    ++Steps;                                                                 \
  } while (0)
// Step<X> statement charge: 1 plus the preceding-run count in U8's high
// nibble. Pinning Steps to the limit on exhaustion matches the walker,
// which charges one at a time and stops exactly at the limit.
#define B2_STEP_CHARGE                                                       \
  do {                                                                       \
    const uint64_t NCh = 1 + uint64_t(I->U8 >> 4);                           \
    if (B2_UNLIKELY(Steps + NCh > FuelLim)) {                                \
      Steps = FuelLim;                                                       \
      B2_FAULT(OutOfFuel, "statement budget exhausted");                     \
    }                                                                        \
    Steps += NCh;                                                            \
  } while (0)
#if B2_BC_THREADED
#define B2_BC_LABEL(N) &&Op_##N,
  static const void *const JT[] = {B2_BC_OP_LIST(B2_BC_LABEL)};
#undef B2_BC_LABEL
#define B2_OP(N) Op_##N:
#define B2_NEXT                                                              \
  do {                                                                       \
    I = &Code[Pc++];                                                         \
    B2_COUNT_OP;                                                             \
    goto *JT[size_t(I->K)];                                                  \
  } while (0)
  B2_NEXT;
#else
#define B2_OP(N) case bc::Op::N:
#define B2_NEXT continue
  for (;;) {
    I = &Code[Pc++];
    B2_COUNT_OP;
    switch (I->K) {
#endif

  B2_OP(StepPushLit)
    B2_STEP_CHARGE;
    goto Body_PushLit;
  B2_OP(PushLit)
  Body_PushLit:
    *Sp++ = I->Imm;
    B2_NEXT;

  B2_OP(StepPushVar)
    B2_STEP_CHARGE;
    goto Body_PushVar;
  B2_OP(PushVar)
  Body_PushVar:
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    *Sp++ = Sl[I->A];
    B2_NEXT;

  B2_OP(LoadMem) {
    const Word Addr = Sp[-1];
    if (B2_UNLIKELY(!isAligned(Addr, I->U8)))
      B2_FAULT(MisalignedAccess,
               "load" + std::to_string(I->U8) + " at " + hex32(Addr));
    if (B2_UNLIKELY(!Mem.owns(Addr, I->U8)))
      B2_FAULT(LoadOutsideFootprint,
               "load" + std::to_string(I->U8) + " at " + hex32(Addr));
    Sp[-1] = Mem.readLe(Addr, I->U8);
    B2_NEXT;
  }

  B2_OP(Binop) {
    const Word BV = *--Sp;
    const BinOp O = BinOp(I->U8);
    if ((O == BinOp::Divu || O == BinOp::Remu) && BV == 0 &&
        !fi::on(fi::Fault::BcDivCountSkip))
      ++R.DivByZeroCount;
    Sp[-1] = evalBinOp(O, Sp[-1], BV);
    B2_NEXT;
  }

  B2_OP(SetVar)
    Sl[I->A] = *--Sp;
    Bd[I->A] = 1;
    B2_NEXT;

  B2_OP(StoreMem) {
    const Word V = *--Sp, Addr = *--Sp;
    if (B2_UNLIKELY(!isAligned(Addr, I->U8)))
      B2_FAULT(MisalignedAccess,
               "store" + std::to_string(I->U8) + " at " + hex32(Addr));
    if (B2_UNLIKELY(!Mem.owns(Addr, I->U8)))
      B2_FAULT(StoreOutsideFootprint,
               "store" + std::to_string(I->U8) + " at " + hex32(Addr));
    Mem.writeLe(Addr, I->U8, V);
    B2_NEXT;
  }

  B2_OP(Jump)
    Pc = I->Arg;
    B2_NEXT;

  B2_OP(JumpIfZero)
    if (*--Sp == 0)
      Pc = I->Arg;
    B2_NEXT;

  B2_OP(StepStmt)
  B2_OP(StepLoop)
    B2_CHARGE(BP.Strings[I->Str]);
    B2_NEXT;

  B2_OP(StepN)
    // A consecutive statement charges at once. On exhaustion mid-run the
    // walker has charged exactly up to the limit before faulting, so
    // StepsUsed pins to FuelLim either way.
    if (B2_UNLIKELY(Steps + I->A > FuelLim)) {
      Steps = FuelLim;
      B2_FAULT(OutOfFuel, "statement budget exhausted");
    }
    Steps += I->A;
    B2_NEXT;

  B2_OP(StepLoopJump)
    B2_CHARGE("loop budget exhausted");
    Pc = I->Arg;
    B2_NEXT;

  B2_OP(BrVZStepN)
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    if ((Sl[I->A] == 0) != fi::on(fi::Fault::BcBrVZInverted)) {
      Pc = I->Arg;
    } else {
      // Fall-through enters the body: Imm statement charges (StepN).
      if (B2_UNLIKELY(Steps + I->Imm > FuelLim)) {
        Steps = FuelLim;
        B2_FAULT(OutOfFuel, "statement budget exhausted");
      }
      Steps += I->Imm;
    }
    B2_NEXT;

  B2_OP(StepNBrVZ)
    if (B2_UNLIKELY(Steps + I->Imm > FuelLim)) {
      Steps = FuelLim;
      B2_FAULT(OutOfFuel, "statement budget exhausted");
    }
    Steps += I->Imm;
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    if ((Sl[I->A] == 0) != fi::on(fi::Fault::BcBrVZInverted))
      Pc = I->Arg;
    B2_NEXT;

  B2_OP(StepIncLoopJump)
    // "i = i op k" latch plus backedge: statement charge(s), the update
    // (dst == lhs slot, so one bound check covers both), loop charge,
    // jump — in the walker's exact order.
    B2_STEP_CHARGE;
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    {
      const BinOp O = BinOp(I->U8 & 0xF);
      if (B2_LIKELY(O == BinOp::Add) ||
          fi::on(fi::Fault::BcLatchOpAsAdd)) { // Counting latches dominate.
        Sl[I->A] += I->Imm;
      } else {
        if ((O == BinOp::Divu || O == BinOp::Remu) && I->Imm == 0)
          ++R.DivByZeroCount;
        Sl[I->A] = evalBinOp(O, Sl[I->A], I->Imm);
      }
    }
    B2_CHARGE("loop budget exhausted");
    Pc = I->Arg;
    B2_NEXT;

  B2_OP(IncLoopBrNZ)
    // StepIncLoopJump plus the head test it jumps to (same slot; the
    // head's unbound check cannot fire — the counter was just written).
    // Nonzero: charge the body-entry run and enter the body. Zero: fall
    // through, which is the loop exit.
    B2_STEP_CHARGE;
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    {
      const BinOp O = BinOp(I->U8 & 0xF);
      if (B2_LIKELY(O == BinOp::Add) ||
          fi::on(fi::Fault::BcLatchOpAsAdd)) { // Counting latches dominate.
        Sl[I->A] += I->Imm;
      } else {
        if ((O == BinOp::Divu || O == BinOp::Remu) && I->Imm == 0)
          ++R.DivByZeroCount;
        Sl[I->A] = evalBinOp(O, Sl[I->A], I->Imm);
      }
    }
    B2_CHARGE("loop budget exhausted");
    if (Sl[I->A] != 0) {
      uint64_t NB = I->Arg >> 24;
      if (NB > 0 && fi::on(fi::Fault::BcLoopChargeMiscount))
        --NB; // Seeded bug: body entry charged one statement short.
      if (B2_UNLIKELY(Steps + NB > FuelLim)) {
        Steps = FuelLim;
        B2_FAULT(OutOfFuel, "statement budget exhausted");
      }
      Steps += NB;
      Pc = I->Arg & 0xFFFFFF;
    }
    B2_NEXT;

  B2_OP(CheckInv)
    if (B2_UNLIKELY(*--Sp == 0))
      B2_FAULT(InvariantViolated, BP.Strings[I->Str]);
    B2_NEXT;

  B2_OP(MeasReset)
    MeasHave[MeasBase + I->A] = 0;
    B2_NEXT;

  B2_OP(MeasCheck) {
    const Word M = *--Sp;
    Word &Prev = MeasVal[MeasBase + I->A];
    uint8_t &Have = MeasHave[MeasBase + I->A];
    if (B2_UNLIKELY(Have && M >= Prev))
      B2_FAULT(MeasureNotDecreasing, "measure " + std::to_string(M) +
                                         " after " + std::to_string(Prev));
    Prev = M;
    Have = 1;
    B2_NEXT;
  }

  B2_OP(StepCallBind)
    B2_STEP_CHARGE;
    goto Body_CallBind;
  B2_OP(CallBind)
  Body_CallBind: {
    const bc::CallSite &Site = BP.Calls[I->Arg];
    const BcFunction &CF = BP.Funcs[Site.Fn];
    const size_t CalleeBase = size_t(Sp - Stack.data()) - CF.NumParams;
    Top = CalleeBase + CF.NumParams;
    R.StepsUsed = Steps;
    const bool CalleeOk = runFunction(Site.Fn, CalleeBase);
    Steps = R.StepsUsed;
    Sl = Slots.data() + SlotBase;
    Bd = Bound.data() + SlotBase;
    Sp = Stack.data() + CalleeBase;
    if (!CalleeOk) {
      Ok = false;
      goto Exit;
    }
    for (size_t K = 0; K != Site.Dsts.size(); ++K) {
      Sl[Site.Dsts[K]] = Sp[K]; // The callee left its results here.
      Bd[Site.Dsts[K]] = 1;
    }
    B2_NEXT;
  }

  B2_OP(CallDrop) {
    // Rets are discarded: a StaticFault (result-binding arity mismatch)
    // follows immediately — but the callee still runs first, exactly as
    // the walker only reports that mismatch after a successful call.
    const BcFunction &CF = BP.Funcs[I->Arg];
    const size_t CalleeBase = size_t(Sp - Stack.data()) - CF.NumParams;
    Top = CalleeBase + CF.NumParams;
    R.StepsUsed = Steps;
    const bool CalleeOk = runFunction(I->Arg, CalleeBase);
    Steps = R.StepsUsed;
    Sl = Slots.data() + SlotBase;
    Bd = Bound.data() + SlotBase;
    Sp = Stack.data() + CalleeBase;
    if (!CalleeOk) {
      Ok = false;
      goto Exit;
    }
    B2_NEXT;
  }

  B2_OP(InteractExt) {
    {
      const bc::InteractSite &Site = BP.Interacts[I->Arg];
      Sp -= Site.NumArgs;
      std::vector<Word> ArgVals(Sp, Sp + Site.NumArgs);
      ExtSpec::Outcome Out = Ext.call(Site.Action, ArgVals, Mem);
      if (!Out.Ok)
        B2_FAULT(ExtContractViolation,
                 "'" + Site.Action + "': " + Out.Error);
      if (Out.Rets.size() != Site.Dsts.size())
        B2_FAULT(ArityMismatch, BP.Strings[Site.BindDetail]);
      R.Trace.push_back(IoEvent{Site.Action, std::move(ArgVals), Out.Rets});
      for (size_t K = 0; K != Out.Rets.size(); ++K) {
        Sl[Site.Dsts[K]] = Out.Rets[K];
        Bd[Site.Dsts[K]] = 1;
      }
    } // Non-trivial locals die here, before the (computed) goto.
    B2_NEXT;
  }

  B2_OP(StepEnterAlloc)
    B2_STEP_CHARGE;
    goto Body_EnterAlloc;
  B2_OP(EnterAlloc)
  Body_EnterAlloc: {
    const bc::AllocSite &Site = BP.Allocs[I->Arg];
    StackNext -= Site.NBytes;
    const Word Addr = StackNext;
    Mem.own(Addr, Site.NBytes);
    Sl[Site.VarSlot] =
        fi::on(fi::Fault::BcAllocSkew) ? Addr + 4 : Addr;
    Bd[Site.VarSlot] = 1;
    AllocScopes.push_back({Addr, Site.NBytes});
    B2_NEXT;
  }

  B2_OP(LeaveAlloc) {
    const auto [Addr, NBytes] = AllocScopes.back();
    AllocScopes.pop_back();
    Mem.disown(Addr, NBytes);
    StackNext += NBytes;
    B2_NEXT;
  }

  B2_OP(StaticFault)
    Ok = fault(Fault(I->U8), BP.Strings[I->Str]);
    goto Exit;

  B2_OP(CheckPre)
    if (B2_UNLIKELY(*--Sp == 0))
      B2_FAULT(PreconditionFailed, BP.Strings[I->Str]);
    B2_NEXT;

  B2_OP(CheckPost)
    if (B2_UNLIKELY(*--Sp == 0))
      B2_FAULT(PostconditionFailed, BP.Strings[I->Str]);
    B2_NEXT;

  B2_OP(CollectRet)
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    *Sp++ = Sl[I->A];
    B2_NEXT;

  B2_OP(Return)
    goto Exit;

  B2_OP(StepSetLit)
    B2_STEP_CHARGE;
    goto Body_SetLit;
  B2_OP(SetLit)
  Body_SetLit:
    Sl[I->A] = I->Imm;
    Bd[I->A] = 1;
    B2_NEXT;

  B2_OP(StepMoveVar)
    B2_STEP_CHARGE;
    goto Body_MoveVar;
  B2_OP(MoveVar)
  Body_MoveVar: {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const uint16_t Dst = uint16_t(I->Arg);
    Sl[Dst] = Sl[I->A];
    Bd[Dst] = 1;
    B2_NEXT;
  }

  B2_OP(StepBinopVV)
    B2_STEP_CHARGE;
    goto Body_BinopVV;
  B2_OP(BinopVV)
  Body_BinopVV: {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const uint16_t BSlot = uint16_t(I->Arg);
    if (B2_UNLIKELY(!Bd[BSlot]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Imm]);
    const Word BV = Sl[BSlot];
    const BinOp O = BinOp(I->U8 & 0xF);
    if ((O == BinOp::Divu || O == BinOp::Remu) && BV == 0)
      ++R.DivByZeroCount;
    *Sp++ = evalBinOp(O, Sl[I->A], BV);
    B2_NEXT;
  }

  B2_OP(StepBinopVVS)
    B2_STEP_CHARGE;
    goto Body_BinopVVS;
  B2_OP(BinopVVS)
  Body_BinopVVS: {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const uint16_t BSlot = uint16_t(I->Arg);
    if (B2_UNLIKELY(!Bd[BSlot]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Imm]);
    const Word BV = Sl[BSlot];
    const BinOp O = BinOp(I->U8 & 0xF);
    if ((O == BinOp::Divu || O == BinOp::Remu) && BV == 0)
      ++R.DivByZeroCount;
    const uint16_t Dst = uint16_t(I->Arg >> 16);
    Sl[Dst] = evalBinOp(O, Sl[I->A], BV);
    Bd[Dst] = 1;
    B2_NEXT;
  }

  B2_OP(StepBinopVI)
    B2_STEP_CHARGE;
    goto Body_BinopVI;
  B2_OP(BinopVI)
  Body_BinopVI: {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const BinOp O = BinOp(I->U8 & 0xF);
    if ((O == BinOp::Divu || O == BinOp::Remu) && I->Imm == 0)
      ++R.DivByZeroCount;
    *Sp++ = evalBinOp(O, Sl[I->A], I->Imm);
    B2_NEXT;
  }

  B2_OP(StepBinopVIS)
    B2_STEP_CHARGE;
    goto Body_BinopVIS;
  B2_OP(BinopVIS)
  Body_BinopVIS: {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const BinOp O = BinOp(I->U8 & 0xF);
    if ((O == BinOp::Divu || O == BinOp::Remu) && I->Imm == 0)
      ++R.DivByZeroCount;
    const uint16_t Dst = uint16_t(I->Arg);
    Sl[Dst] = evalBinOp(O, Sl[I->A], I->Imm);
    Bd[Dst] = 1;
    B2_NEXT;
  }

  B2_OP(BinopSI) {
    const Word AV = *--Sp;
    const BinOp O = BinOp(I->U8);
    if ((O == BinOp::Divu || O == BinOp::Remu) && I->Imm == 0)
      ++R.DivByZeroCount;
    *Sp++ = evalBinOp(O, AV, I->Imm);
    B2_NEXT;
  }

  B2_OP(StepPush2VL)
    B2_STEP_CHARGE;
    goto Body_Push2VL;
  B2_OP(Push2VL)
  Body_Push2VL:
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    *Sp++ = Sl[I->A];
    *Sp++ = I->Imm;
    B2_NEXT;

  B2_OP(FoldSI) {
    // (pop op Imm), then fold that into the new top with op' — both
    // division-by-zero counts in evaluation order.
    const Word AV = *--Sp;
    const BinOp OIn = BinOp(I->U8 & 0xF), OOut = BinOp(I->U8 >> 4);
    if ((OIn == BinOp::Divu || OIn == BinOp::Remu) && I->Imm == 0)
      ++R.DivByZeroCount;
    const Word RV = evalBinOp(OIn, AV, I->Imm);
    if ((OOut == BinOp::Divu || OOut == BinOp::Remu) && RV == 0)
      ++R.DivByZeroCount;
    Sp[-1] = evalBinOp(OOut, Sp[-1], RV);
    B2_NEXT;
  }

  B2_OP(FoldVV) {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const uint16_t BSlot = uint16_t(I->Arg);
    if (B2_UNLIKELY(!Bd[BSlot]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Imm]);
    const Word BV = Sl[BSlot];
    const BinOp OIn = BinOp(I->U8 & 0xF), OOut = BinOp(I->U8 >> 4);
    if ((OIn == BinOp::Divu || OIn == BinOp::Remu) && BV == 0)
      ++R.DivByZeroCount;
    const Word RV = evalBinOp(OIn, Sl[I->A], BV);
    if ((OOut == BinOp::Divu || OOut == BinOp::Remu) && RV == 0)
      ++R.DivByZeroCount;
    Sp[-1] = evalBinOp(OOut, Sp[-1], RV);
    B2_NEXT;
  }

  B2_OP(FoldVI) {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const BinOp OIn = BinOp(I->U8 & 0xF), OOut = BinOp(I->U8 >> 4);
    if ((OIn == BinOp::Divu || OIn == BinOp::Remu) && I->Imm == 0)
      ++R.DivByZeroCount;
    const Word RV = evalBinOp(OIn, Sl[I->A], I->Imm);
    if ((OOut == BinOp::Divu || OOut == BinOp::Remu) && RV == 0)
      ++R.DivByZeroCount;
    Sp[-1] = evalBinOp(OOut, Sp[-1], RV);
    B2_NEXT;
  }

  B2_OP(BinopVILoad) {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const BinOp O = BinOp(I->U8 & 0xF);
    const unsigned Size = I->U8 >> 4;
    if ((O == BinOp::Divu || O == BinOp::Remu) && I->Imm == 0)
      ++R.DivByZeroCount;
    const Word Addr = evalBinOp(O, Sl[I->A], I->Imm);
    if (B2_UNLIKELY(!isAligned(Addr, Size)))
      B2_FAULT(MisalignedAccess,
               "load" + std::to_string(Size) + " at " + hex32(Addr));
    if (B2_UNLIKELY(!Mem.owns(Addr, Size)))
      B2_FAULT(LoadOutsideFootprint,
               "load" + std::to_string(Size) + " at " + hex32(Addr));
    *Sp++ = Mem.readLe(Addr, Size);
    B2_NEXT;
  }

  B2_OP(StepSet2Lit) {
    B2_STEP_CHARGE;
    Sl[I->A] = I->Imm;
    Bd[I->A] = 1;
    // Second assignment's charge(s); the literal rides in Str.
    const uint64_t N2 = 1 + uint64_t(I->Arg >> 16);
    if (B2_UNLIKELY(Steps + N2 > FuelLim)) {
      Steps = FuelLim;
      B2_FAULT(OutOfFuel, "statement budget exhausted");
    }
    Steps += N2;
    const uint16_t SlotB = uint16_t(I->Arg);
    Sl[SlotB] = I->Str;
    Bd[SlotB] = 1;
    B2_NEXT;
  }

  B2_OP(BinopLoad) {
    const Word BV = *--Sp;
    const BinOp O = BinOp(I->U8 & 0xF);
    const unsigned Size = I->U8 >> 4;
    if ((O == BinOp::Divu || O == BinOp::Remu) && BV == 0)
      ++R.DivByZeroCount;
    const Word Addr = evalBinOp(O, Sp[-1], BV);
    if (B2_UNLIKELY(!isAligned(Addr, Size)))
      B2_FAULT(MisalignedAccess,
               "load" + std::to_string(Size) + " at " + hex32(Addr));
    if (B2_UNLIKELY(!Mem.owns(Addr, Size)))
      B2_FAULT(LoadOutsideFootprint,
               "load" + std::to_string(Size) + " at " + hex32(Addr));
    Sp[-1] = Mem.readLe(Addr, Size);
    B2_NEXT;
  }

  B2_OP(BinopSIS) {
    const Word AV = *--Sp;
    const BinOp O = BinOp(I->U8);
    if ((O == BinOp::Divu || O == BinOp::Remu) && I->Imm == 0)
      ++R.DivByZeroCount;
    Sl[I->A] = evalBinOp(O, AV, I->Imm);
    Bd[I->A] = 1;
    B2_NEXT;
  }

  B2_OP(BinopSV) {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const Word BV = Sl[I->A];
    const Word AV = *--Sp;
    const BinOp O = BinOp(I->U8);
    if ((O == BinOp::Divu || O == BinOp::Remu) && BV == 0)
      ++R.DivByZeroCount;
    *Sp++ = evalBinOp(O, AV, BV);
    B2_NEXT;
  }

  B2_OP(BinopSVS) {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const Word BV = Sl[I->A];
    const Word AV = *--Sp;
    const BinOp O = BinOp(I->U8);
    if ((O == BinOp::Divu || O == BinOp::Remu) && BV == 0)
      ++R.DivByZeroCount;
    const uint16_t Dst = uint16_t(I->Arg);
    Sl[Dst] = evalBinOp(O, AV, BV);
    Bd[Dst] = 1;
    B2_NEXT;
  }

  B2_OP(BinopSS) {
    const Word BV = *--Sp;
    const Word AV = *--Sp;
    const BinOp O = BinOp(I->U8);
    if ((O == BinOp::Divu || O == BinOp::Remu) && BV == 0)
      ++R.DivByZeroCount;
    Sl[I->A] = evalBinOp(O, AV, BV);
    Bd[I->A] = 1;
    B2_NEXT;
  }

  B2_OP(StepLoadV)
    B2_STEP_CHARGE;
    goto Body_LoadV;
  B2_OP(LoadV)
  Body_LoadV: {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const unsigned Size = I->U8 & 0xF;
    const Word Addr = Sl[I->A];
    if (B2_UNLIKELY(!isAligned(Addr, Size)))
      B2_FAULT(MisalignedAccess,
               "load" + std::to_string(Size) + " at " + hex32(Addr));
    if (B2_UNLIKELY(!Mem.owns(Addr, Size)))
      B2_FAULT(LoadOutsideFootprint,
               "load" + std::to_string(Size) + " at " + hex32(Addr));
    *Sp++ = Mem.readLe(Addr, Size);
    B2_NEXT;
  }

  B2_OP(StepLoadVS)
    B2_STEP_CHARGE;
    goto Body_LoadVS;
  B2_OP(LoadVS)
  Body_LoadVS: {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const unsigned Size = I->U8 & 0xF;
    const Word Addr = Sl[I->A];
    if (B2_UNLIKELY(!isAligned(Addr, Size)))
      B2_FAULT(MisalignedAccess,
               "load" + std::to_string(Size) + " at " + hex32(Addr));
    if (B2_UNLIKELY(!Mem.owns(Addr, Size)))
      B2_FAULT(LoadOutsideFootprint,
               "load" + std::to_string(Size) + " at " + hex32(Addr));
    const uint16_t Dst = uint16_t(I->Arg);
    Sl[Dst] = Mem.readLe(Addr, Size);
    Bd[Dst] = 1;
    B2_NEXT;
  }

  B2_OP(LoadS) {
    const Word Addr = *--Sp;
    if (B2_UNLIKELY(!isAligned(Addr, I->U8)))
      B2_FAULT(MisalignedAccess,
               "load" + std::to_string(I->U8) + " at " + hex32(Addr));
    if (B2_UNLIKELY(!Mem.owns(Addr, I->U8)))
      B2_FAULT(LoadOutsideFootprint,
               "load" + std::to_string(I->U8) + " at " + hex32(Addr));
    Sl[I->A] = Mem.readLe(Addr, I->U8);
    Bd[I->A] = 1;
    B2_NEXT;
  }

  B2_OP(StepStoreVV)
    B2_STEP_CHARGE;
    goto Body_StoreVV;
  B2_OP(StoreVV)
  Body_StoreVV: {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const uint16_t VSlot = uint16_t(I->Arg);
    if (B2_UNLIKELY(!Bd[VSlot]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Imm]);
    const unsigned Size = I->U8 & 0xF;
    const Word Addr = Sl[I->A];
    if (B2_UNLIKELY(!isAligned(Addr, Size)))
      B2_FAULT(MisalignedAccess,
               "store" + std::to_string(Size) + " at " + hex32(Addr));
    if (B2_UNLIKELY(!Mem.owns(Addr, Size)))
      B2_FAULT(StoreOutsideFootprint,
               "store" + std::to_string(Size) + " at " + hex32(Addr));
    Mem.writeLe(Addr, Size, Sl[VSlot]);
    B2_NEXT;
  }

  B2_OP(StepStoreVI)
    B2_STEP_CHARGE;
    goto Body_StoreVI;
  B2_OP(StoreVI)
  Body_StoreVI: {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const unsigned Size = I->U8 & 0xF;
    const Word Addr = Sl[I->A];
    if (B2_UNLIKELY(!isAligned(Addr, Size)))
      B2_FAULT(MisalignedAccess,
               "store" + std::to_string(Size) + " at " + hex32(Addr));
    if (B2_UNLIKELY(!Mem.owns(Addr, Size)))
      B2_FAULT(StoreOutsideFootprint,
               "store" + std::to_string(Size) + " at " + hex32(Addr));
    Mem.writeLe(Addr, Size, I->Imm);
    B2_NEXT;
  }

  B2_OP(BrVZ)
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    if (Sl[I->A] == 0)
      Pc = I->Arg;
    B2_NEXT;

  B2_OP(BrVVZ) {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const uint16_t BSlot = uint16_t(I->Imm & 0xFFFF);
    if (B2_UNLIKELY(!Bd[BSlot]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Imm >> 16]);
    const Word BV = Sl[BSlot];
    const BinOp O = BinOp(I->U8);
    if ((O == BinOp::Divu || O == BinOp::Remu) && BV == 0)
      ++R.DivByZeroCount;
    if (evalBinOp(O, Sl[I->A], BV) == 0)
      Pc = I->Arg;
    B2_NEXT;
  }

  B2_OP(BrVIZ) {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const BinOp O = BinOp(I->U8);
    if ((O == BinOp::Divu || O == BinOp::Remu) && I->Imm == 0)
      ++R.DivByZeroCount;
    if (evalBinOp(O, Sl[I->A], I->Imm) == 0)
      Pc = I->Arg;
    B2_NEXT;
  }

  B2_OP(BrSIZ) {
    const Word AV = *--Sp;
    const BinOp O = BinOp(I->U8);
    if ((O == BinOp::Divu || O == BinOp::Remu) && I->Imm == 0)
      ++R.DivByZeroCount;
    if (evalBinOp(O, AV, I->Imm) == 0)
      Pc = I->Arg;
    B2_NEXT;
  }

  B2_OP(BrSVZ) {
    if (B2_UNLIKELY(!Bd[I->A]))
      B2_FAULT(UnboundVariable, BP.Strings[I->Str]);
    const Word BV = Sl[I->A];
    const Word AV = *--Sp;
    const BinOp O = BinOp(I->U8);
    if ((O == BinOp::Divu || O == BinOp::Remu) && BV == 0)
      ++R.DivByZeroCount;
    if (evalBinOp(O, AV, BV) == 0)
      Pc = I->Arg;
    B2_NEXT;
  }

  B2_OP(BrSSZ) {
    const Word BV = *--Sp;
    const Word AV = *--Sp;
    const BinOp O = BinOp(I->U8);
    if ((O == BinOp::Divu || O == BinOp::Remu) && BV == 0)
      ++R.DivByZeroCount;
    if (evalBinOp(O, AV, BV) == 0)
      Pc = I->Arg;
    B2_NEXT;
  }

#if !B2_BC_THREADED
    }
  }
#endif
#undef B2_OP
#undef B2_NEXT
#undef B2_STEP_CHARGE
#undef B2_CHARGE
#undef B2_FAULT

Exit:

  // Unwind live stackalloc scopes innermost-first, exactly as the
  // walker's recursion does when a fault propagates.
  for (size_t K = AllocScopes.size(); K-- > AllocBase;) {
    Mem.disown(AllocScopes[K].first, AllocScopes[K].second);
    StackNext += AllocScopes[K].second;
  }
  AllocScopes.resize(AllocBase);
  R.StepsUsed = Steps;
  SlotTop = SlotBase;
  MeasTop = MeasBase;
  if (Ok) {
    // The results sit on top of the stack (pushed by CollectRet, below
    // any already-popped postcondition temporaries); move them down to
    // the frame base where the caller binds them.
    std::memmove(Stack.data() + ArgBase, Sp - F.NumRets,
                 F.NumRets * sizeof(Word));
    Top = ArgBase + F.NumRets;
  } else {
    Top = ArgBase;
  }
  return Ok;
}

ExecResult BytecodeProgram::run(const std::string &Fn,
                                const std::vector<Word> &Args, ExtSpec &Ext,
                                Footprint &Mem, uint64_t Fuel,
                                const StackallocPolicy &Policy,
                                ExecScratch *Scratch) const {
  ExecScratch Local;
  ExecScratch &Sc = Scratch ? *Scratch : Local;
  Sc.AllocScopes.clear(); // Frames unwind on exit; clear defensively.
  Exec E{*this, Ext, Mem, Fuel, Word(Policy.Base - (Policy.Salt & ~Word(3))),
         Sc};
  auto It = Index.find(Fn);
  if (It == Index.end()) {
    E.fault(Fault::UnknownFunction, "function '" + Fn + "'");
    return std::move(E.R);
  }
  const BcFunction &F = Funcs[It->second];
  if (F.NumParams != Args.size()) {
    E.fault(Fault::ArityMismatch,
            "call to '" + Fn + "' with " + std::to_string(Args.size()) +
                " args, expected " + std::to_string(F.NumParams));
    return std::move(E.R);
  }
  // Copy args in place without shrinking: the stack keeps its high-water
  // size so runFunction's grow check is a no-op on steady-state calls.
  // Stale words beyond Top are never read (pushes always write first).
  if (E.Stack.size() < Args.size())
    E.Stack.resize(Args.size());
  std::copy(Args.begin(), Args.end(), E.Stack.begin());
  E.Top = Args.size();
  if (E.runFunction(It->second, 0))
    E.R.Rets.assign(E.Stack.begin(), E.Stack.begin() + F.NumRets);
  // One publication per top-level run (never per bytecode step): the
  // dispatch loop's own fuel accounting already aggregates the mix.
  metrics::add(metrics::Id::InterpExecRuns);
  metrics::add(metrics::Id::InterpExecSteps, E.R.StepsUsed);
  return std::move(E.R);
}
