//===- bedrock2/Semantics.cpp - Checking interpreter ------------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bedrock2/Semantics.h"

#include "devices/MemoryMap.h"
#include "support/Format.h"

#include <cassert>

using namespace b2;
using namespace b2::bedrock2;
using namespace b2::support;

ExtSpec::~ExtSpec() = default;

ExtSpec::Outcome MmioExtSpec::call(const std::string &Action,
                                   const std::vector<Word> &Args,
                                   Footprint &Mem) {
  (void)Mem; // MMIO neither grants nor revokes memory (section 6.2 notes
             // DMA would; the lightbulb platform has none).
  Outcome Out;
  // The vcextern instance for the lightbulb platform (section 6.1): the
  // address must be a word-aligned MMIO address; MMIO must not alias the
  // physical memory (external invariant, section 6.3).
  auto CheckAddr = [&](Word Addr) -> bool {
    if (!devices::isMmioAddr(Addr)) {
      Out.Ok = false;
      Out.Error = "address " + hex32(Addr) + " is not an MMIO address";
      return false;
    }
    if (!isAligned(Addr, 4)) {
      Out.Ok = false;
      Out.Error = "MMIO address " + hex32(Addr) + " is not word-aligned";
      return false;
    }
    if (Addr < RamBytes) {
      Out.Ok = false;
      Out.Error = "MMIO address " + hex32(Addr) + " overlaps physical memory";
      return false;
    }
    return true;
  };

  if (Action == "MMIOREAD") {
    if (Args.size() != 1) {
      Out.Ok = false;
      Out.Error = "MMIOREAD expects 1 argument";
      return Out;
    }
    if (!CheckAddr(Args[0]))
      return Out;
    Word V = Device.load(Args[0], 4);
    Trace.push_back(riscv::MmioEvent{/*IsStore=*/false, Args[0], V, 4});
    Out.Rets = {V};
    return Out;
  }
  if (Action == "MMIOWRITE") {
    if (Args.size() != 2) {
      Out.Ok = false;
      Out.Error = "MMIOWRITE expects 2 arguments";
      return Out;
    }
    if (!CheckAddr(Args[0]))
      return Out;
    Device.store(Args[0], 4, Args[1]);
    Trace.push_back(riscv::MmioEvent{/*IsStore=*/true, Args[0], Args[1], 4});
    return Out;
  }
  Out.Ok = false;
  Out.Error = "unknown external procedure '" + Action + "'";
  return Out;
}

const char *b2::bedrock2::faultName(Fault F) {
  switch (F) {
  case Fault::None:
    return "none";
  case Fault::UnboundVariable:
    return "unbound-variable";
  case Fault::LoadOutsideFootprint:
    return "load-outside-footprint";
  case Fault::StoreOutsideFootprint:
    return "store-outside-footprint";
  case Fault::MisalignedAccess:
    return "misaligned-access";
  case Fault::UnknownFunction:
    return "unknown-function";
  case Fault::ArityMismatch:
    return "arity-mismatch";
  case Fault::ExtContractViolation:
    return "extcall-contract-violation";
  case Fault::OutOfFuel:
    return "out-of-fuel";
  case Fault::StackallocMisuse:
    return "stackalloc-misuse";
  case Fault::PreconditionFailed:
    return "precondition-failed";
  case Fault::PostconditionFailed:
    return "postcondition-failed";
  case Fault::InvariantViolated:
    return "invariant-violated";
  case Fault::MeasureNotDecreasing:
    return "measure-not-decreasing";
  }
  return "unknown";
}

// -- Footprint ---------------------------------------------------------------

void Footprint::own(Word Addr, Word Len) {
  for (Word I = 0; I != Len; ++I)
    Bytes[Addr + I] = 0;
}

void Footprint::disown(Word Addr, Word Len) {
  for (Word I = 0; I != Len; ++I)
    Bytes.erase(Addr + I);
}

bool Footprint::owns(Word Addr, Word Len) const {
  for (Word I = 0; I != Len; ++I)
    if (!Bytes.count(Addr + I))
      return false;
  return true;
}

uint8_t Footprint::read(Word Addr) const {
  auto It = Bytes.find(Addr);
  assert(It != Bytes.end() && "read of unowned byte");
  return It->second;
}

void Footprint::write(Word Addr, uint8_t V) {
  auto It = Bytes.find(Addr);
  assert(It != Bytes.end() && "write of unowned byte");
  It->second = V;
}

Word Footprint::readLe(Word Addr, unsigned Size) const {
  Word V = 0;
  for (unsigned I = 0; I != Size; ++I)
    V |= Word(read(Addr + I)) << (8 * I);
  return V;
}

void Footprint::writeLe(Word Addr, unsigned Size, Word V) {
  for (unsigned I = 0; I != Size; ++I)
    write(Addr + I, uint8_t((V >> (8 * I)) & 0xFF));
}

// -- Interpreter ---------------------------------------------------------------

Interp::Interp(const Program &P, ExtSpec &Ext, uint64_t Fuel,
               const StackallocPolicy &Policy)
    : Prog(P), Ext(Ext), Fuel(Fuel), Policy(Policy) {
  StackNext = Policy.Base - (Policy.Salt & ~Word(3));
}

bool Interp::fault(Fault F, std::string Detail) {
  if (Result.F == Fault::None) {
    Result.F = F;
    Result.Detail = std::move(Detail);
  }
  return false;
}

bool Interp::evalExpr(const Expr &E, const Locals &L, Word &Out) {
  switch (E.K) {
  case Expr::Kind::Literal:
    Out = E.Lit;
    return true;
  case Expr::Kind::Var: {
    auto It = L.find(E.Name);
    if (It == L.end())
      return fault(Fault::UnboundVariable, "variable '" + E.Name + "'");
    Out = It->second;
    return true;
  }
  case Expr::Kind::Load: {
    Word Addr;
    if (!evalExpr(*E.A, L, Addr))
      return false;
    if (!isAligned(Addr, E.Size))
      return fault(Fault::MisalignedAccess,
                   "load" + std::to_string(E.Size) + " at " + hex32(Addr));
    if (!Mem.owns(Addr, E.Size))
      return fault(Fault::LoadOutsideFootprint,
                   "load" + std::to_string(E.Size) + " at " + hex32(Addr));
    Out = Mem.readLe(Addr, E.Size);
    return true;
  }
  case Expr::Kind::Op: {
    Word A, B;
    if (!evalExpr(*E.A, L, A) || !evalExpr(*E.B, L, B))
      return false;
    if ((E.Op == BinOp::Divu || E.Op == BinOp::Remu) && B == 0)
      ++Result.DivByZeroCount;
    Out = evalBinOp(E.Op, A, B);
    return true;
  }
  }
  assert(false && "unreachable: exhaustive expression kinds");
  return false;
}

bool Interp::execCall(const std::string &Callee,
                      const std::vector<Word> &ArgVals,
                      std::vector<Word> &Rets) {
  const Function *F = Prog.find(Callee);
  if (!F)
    return fault(Fault::UnknownFunction, "function '" + Callee + "'");
  if (F->Params.size() != ArgVals.size())
    return fault(Fault::ArityMismatch,
                 "call to '" + Callee + "' with " +
                     std::to_string(ArgVals.size()) + " args, expected " +
                     std::to_string(F->Params.size()));
  Locals L;
  for (size_t I = 0; I != ArgVals.size(); ++I)
    L[F->Params[I]] = ArgVals[I];
  // The contract's precondition (vcgen is invoked under P, section 4.1).
  if (F->Pre) {
    Word P;
    if (!evalExpr(*F->Pre, L, P))
      return false;
    if (P == 0)
      return fault(Fault::PreconditionFailed,
                   "requires clause of '" + Callee + "'");
  }
  if (!execStmt(*F->Body, L))
    return false;
  Rets.clear();
  for (const std::string &R : F->Rets) {
    auto It = L.find(R);
    if (It == L.end())
      return fault(Fault::UnboundVariable,
                   "return variable '" + R + "' of '" + Callee + "'");
    Rets.push_back(It->second);
  }
  // The contract's postcondition Q, over final parameter values and the
  // results.
  if (F->Post) {
    Word Q;
    if (!evalExpr(*F->Post, L, Q))
      return false;
    if (Q == 0)
      return fault(Fault::PostconditionFailed,
                   "ensures clause of '" + Callee + "'");
  }
  return true;
}

bool Interp::execStmt(const Stmt &S, Locals &L) {
  if (Result.StepsUsed >= Fuel)
    return fault(Fault::OutOfFuel, "statement budget exhausted");
  ++Result.StepsUsed;

  switch (S.K) {
  case Stmt::Kind::Skip:
    return true;
  case Stmt::Kind::Set: {
    Word V;
    if (!evalExpr(*S.Value, L, V))
      return false;
    L[S.Var] = V;
    return true;
  }
  case Stmt::Kind::Store: {
    Word Addr, V;
    if (!evalExpr(*S.Addr, L, Addr) || !evalExpr(*S.Value, L, V))
      return false;
    if (!isAligned(Addr, S.Size))
      return fault(Fault::MisalignedAccess,
                   "store" + std::to_string(S.Size) + " at " + hex32(Addr));
    if (!Mem.owns(Addr, S.Size))
      return fault(Fault::StoreOutsideFootprint,
                   "store" + std::to_string(S.Size) + " at " + hex32(Addr));
    Mem.writeLe(Addr, S.Size, V);
    return true;
  }
  case Stmt::Kind::If: {
    Word C;
    if (!evalExpr(*S.Cond, L, C))
      return false;
    return execStmt(C != 0 ? *S.S1 : *S.S2, L);
  }
  case Stmt::Kind::While: {
    // vcgen's loop case "asks for a loop invariant and a decreasing
    // measure instead of unrolling the loop" (section 4.1); when the
    // annotations are present the interpreter enforces them.
    bool HavePrev = false;
    Word PrevMeasure = 0;
    for (;;) {
      if (S.Invariant) {
        Word Inv;
        if (!evalExpr(*S.Invariant, L, Inv))
          return false;
        if (Inv == 0)
          return fault(Fault::InvariantViolated, "loop invariant");
      }
      Word C;
      if (!evalExpr(*S.Cond, L, C))
        return false;
      if (C == 0)
        return true;
      if (S.Measure) {
        Word M;
        if (!evalExpr(*S.Measure, L, M))
          return false;
        if (HavePrev && M >= PrevMeasure)
          return fault(Fault::MeasureNotDecreasing,
                       "measure " + std::to_string(M) +
                           " after " + std::to_string(PrevMeasure));
        PrevMeasure = M;
        HavePrev = true;
      }
      if (!execStmt(*S.S1, L))
        return false;
      if (Result.StepsUsed >= Fuel)
        return fault(Fault::OutOfFuel, "loop budget exhausted");
      ++Result.StepsUsed;
    }
  }
  case Stmt::Kind::Seq:
    return execStmt(*S.S1, L) && execStmt(*S.S2, L);
  case Stmt::Kind::Call: {
    std::vector<Word> ArgVals(S.Args.size());
    for (size_t I = 0; I != S.Args.size(); ++I)
      if (!evalExpr(*S.Args[I], L, ArgVals[I]))
        return false;
    std::vector<Word> Rets;
    if (!execCall(S.Callee, ArgVals, Rets))
      return false;
    if (Rets.size() != S.Dsts.size())
      return fault(Fault::ArityMismatch,
                   "call to '" + S.Callee + "' binds " +
                       std::to_string(S.Dsts.size()) + " results, returns " +
                       std::to_string(Rets.size()));
    for (size_t I = 0; I != Rets.size(); ++I)
      L[S.Dsts[I]] = Rets[I];
    return true;
  }
  case Stmt::Kind::Interact: {
    std::vector<Word> ArgVals(S.Args.size());
    for (size_t I = 0; I != S.Args.size(); ++I)
      if (!evalExpr(*S.Args[I], L, ArgVals[I]))
        return false;
    ExtSpec::Outcome Out = Ext.call(S.Callee, ArgVals, Mem);
    if (!Out.Ok)
      return fault(Fault::ExtContractViolation,
                   "'" + S.Callee + "': " + Out.Error);
    if (Out.Rets.size() != S.Dsts.size())
      return fault(Fault::ArityMismatch,
                   "external '" + S.Callee + "' binds " +
                       std::to_string(S.Dsts.size()) + " results");
    // "The semantics records the latter in an interaction trace" (5.2).
    Result.Trace.push_back(IoEvent{S.Callee, ArgVals, Out.Rets});
    for (size_t I = 0; I != Out.Rets.size(); ++I)
      L[S.Dsts[I]] = Out.Rets[I];
    return true;
  }
  case Stmt::Kind::Stackalloc: {
    if (S.NBytes == 0 || S.NBytes % 4 != 0)
      return fault(Fault::StackallocMisuse,
                   "size " + std::to_string(S.NBytes));
    // Resolve the internal nondeterminism: pick the next address from the
    // policy-controlled arena. The program must not depend on the value.
    StackNext -= S.NBytes;
    Word Addr = StackNext;
    Mem.own(Addr, S.NBytes);
    L[S.Var] = Addr;
    bool OkBody = execStmt(*S.S1, L);
    // Ownership ends with the block, even on fault (the fault sticks).
    Mem.disown(Addr, S.NBytes);
    StackNext += S.NBytes;
    return OkBody;
  }
  }
  assert(false && "unreachable: exhaustive statement kinds");
  return false;
}

ExecResult Interp::callFunction(const std::string &FuncName,
                                const std::vector<Word> &Args) {
  Result = ExecResult();
  std::vector<Word> Rets;
  if (execCall(FuncName, Args, Rets))
    Result.Rets = std::move(Rets);
  return std::move(Result);
}
