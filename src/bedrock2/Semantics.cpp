//===- bedrock2/Semantics.cpp - Checking interpreter ------------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bedrock2/Semantics.h"

#include "bedrock2/Bytecode.h"
#include "devices/MemoryMap.h"
#include "support/Format.h"
#include "verify/FaultInjection.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace b2;
using namespace b2::bedrock2;
using namespace b2::support;

ExtSpec::~ExtSpec() = default;

ExtSpec::Outcome MmioExtSpec::call(const std::string &Action,
                                   const std::vector<Word> &Args,
                                   Footprint &Mem) {
  (void)Mem; // MMIO neither grants nor revokes memory (section 6.2 notes
             // DMA would; the lightbulb platform has none).
  Outcome Out;
  // Dispatch with one length-gated memcmp per candidate action instead of
  // repeated full std::string compares; this runs once per MMIO
  // interaction in every fleet, and the success path below allocates no
  // strings at all (hex32 formatting happens only on failure).
  const bool IsRead =
      Action.size() == 8 && std::memcmp(Action.data(), "MMIOREAD", 8) == 0;
  const bool IsWrite = !IsRead && Action.size() == 9 &&
                       std::memcmp(Action.data(), "MMIOWRITE", 9) == 0;
  if (!IsRead && !IsWrite) {
    Out.Ok = false;
    Out.Error = "unknown external procedure '" + Action + "'";
    return Out;
  }
  if (Args.size() != (IsRead ? 1u : 2u)) {
    Out.Ok = false;
    Out.Error = IsRead ? "MMIOREAD expects 1 argument"
                       : "MMIOWRITE expects 2 arguments";
    return Out;
  }
  // The vcextern instance for the lightbulb platform (section 6.1): the
  // address must be a word-aligned MMIO address; MMIO must not alias the
  // physical memory (external invariant, section 6.3).
  const Word Addr = Args[0];
  if (!devices::isMmioAddr(Addr)) {
    Out.Ok = false;
    Out.Error = "address " + hex32(Addr) + " is not an MMIO address";
    return Out;
  }
  if (!isAligned(Addr, 4)) {
    Out.Ok = false;
    Out.Error = "MMIO address " + hex32(Addr) + " is not word-aligned";
    return Out;
  }
  if (Addr < RamBytes) {
    Out.Ok = false;
    Out.Error = "MMIO address " + hex32(Addr) + " overlaps physical memory";
    return Out;
  }
  if (IsRead) {
    Word V = Device.load(Addr, 4);
    Trace.push_back(riscv::MmioEvent{/*IsStore=*/false, Addr, V, 4});
    Out.Rets = {V};
    return Out;
  }
  Device.store(Addr, 4, Args[1]);
  Trace.push_back(riscv::MmioEvent{/*IsStore=*/true, Addr, Args[1], 4});
  return Out;
}

const char *b2::bedrock2::faultName(Fault F) {
  switch (F) {
  case Fault::None:
    return "none";
  case Fault::UnboundVariable:
    return "unbound-variable";
  case Fault::LoadOutsideFootprint:
    return "load-outside-footprint";
  case Fault::StoreOutsideFootprint:
    return "store-outside-footprint";
  case Fault::MisalignedAccess:
    return "misaligned-access";
  case Fault::UnknownFunction:
    return "unknown-function";
  case Fault::ArityMismatch:
    return "arity-mismatch";
  case Fault::ExtContractViolation:
    return "extcall-contract-violation";
  case Fault::OutOfFuel:
    return "out-of-fuel";
  case Fault::StackallocMisuse:
    return "stackalloc-misuse";
  case Fault::PreconditionFailed:
    return "precondition-failed";
  case Fault::PostconditionFailed:
    return "postcondition-failed";
  case Fault::InvariantViolated:
    return "invariant-violated";
  case Fault::MeasureNotDecreasing:
    return "measure-not-decreasing";
  }
  return "unknown";
}

const char *b2::bedrock2::execModeName(ExecMode M) {
  switch (M) {
  case ExecMode::Reference:
    return "reference";
  case ExecMode::Fast:
    return "fast";
  case ExecMode::Differential:
    return "differential";
  }
  return "unknown";
}

// -- Footprint ---------------------------------------------------------------

namespace {
/// One past the last byte of the 32-bit address space, in the linearized
/// coordinate the interval set uses.
constexpr uint64_t SpaceEnd = uint64_t(1) << 32;
} // namespace

Footprint::Footprint(const Footprint &O)
    : Pages(O.Pages), Intervals(O.Intervals), OwnedBytes(O.OwnedBytes),
      Epoch(O.Epoch) {}

Footprint &Footprint::operator=(const Footprint &O) {
  Pages = O.Pages;
  Intervals = O.Intervals;
  OwnedBytes = O.OwnedBytes;
  Epoch = O.Epoch;
  CachedIdx = ~Word(0);
  CachedPage = nullptr;
  OwnCacheLo = 1;
  OwnCacheHi = 0;
  return *this;
}

std::vector<uint8_t> &Footprint::pageFor(Word Addr) {
  Word Idx = Addr >> PageShift;
  if (Idx == CachedIdx && CachedPage)
    return *CachedPage;
  auto [It, Inserted] = Pages.try_emplace(Idx);
  if (Inserted)
    It->second.assign(PageBytes, 0);
  // unordered_map nodes are pointer-stable, so the cache survives later
  // insertions.
  CachedIdx = Idx;
  CachedPage = &It->second;
  return It->second;
}

const std::vector<uint8_t> *Footprint::findPage(Word Addr) const {
  Word Idx = Addr >> PageShift;
  if (Idx == CachedIdx && CachedPage)
    return CachedPage;
  auto It = Pages.find(Idx);
  if (It == Pages.end())
    return nullptr;
  CachedIdx = Idx;
  CachedPage = const_cast<std::vector<uint8_t> *>(&It->second);
  return CachedPage;
}

void Footprint::zeroRange(uint64_t Start, uint64_t End) {
  while (Start < End) {
    Word Addr = Word(Start);
    std::vector<uint8_t> &Pg = pageFor(Addr);
    Word Off = Addr & (PageBytes - 1);
    uint64_t N = std::min<uint64_t>(PageBytes - Off, End - Start);
    std::memset(Pg.data() + Off, 0, size_t(N));
    Start += N;
  }
}

namespace {
/// First interval whose start is greater than \p V.
template <typename IntervalVec>
inline auto intervalAfter(IntervalVec &Iv, uint64_t V) {
  return std::upper_bound(
      Iv.begin(), Iv.end(), V,
      [](uint64_t X, const std::pair<uint64_t, uint64_t> &P) {
        return X < P.first;
      });
}
} // namespace

void Footprint::ownRange(uint64_t Start, uint64_t End) {
  OwnCacheLo = 1;
  OwnCacheHi = 0;
  zeroRange(Start, End);
  // Merge with every interval overlapping or adjacent to [Start, End),
  // keeping the set coalesced (maximal disjoint intervals) so `owns` is
  // a single predecessor lookup.
  auto It = intervalAfter(Intervals, Start);
  if (It != Intervals.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second >= Start)
      It = Prev;
  }
  uint64_t NewS = Start, NewE = End;
  auto First = It;
  while (It != Intervals.end() && It->first <= NewE) {
    NewS = std::min(NewS, It->first);
    NewE = std::max(NewE, It->second);
    OwnedBytes -= size_t(It->second - It->first);
    ++It;
  }
  if (First != It) {
    if (NewE - NewS > 1 && fi::on(fi::Fault::FootprintCoalesceDropByte))
      --NewE; // Seeded bug: the merged union loses its last byte.
    *First = {NewS, NewE};
    Intervals.erase(First + 1, It);
  } else {
    Intervals.insert(First, {NewS, NewE});
  }
  OwnedBytes += size_t(NewE - NewS);
}

void Footprint::disownRange(uint64_t Start, uint64_t End) {
  OwnCacheLo = 1;
  OwnCacheHi = 0;
  auto It = intervalAfter(Intervals, Start);
  if (It != Intervals.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second > Start)
      It = Prev;
  }
  // At most one left remnant (the first overlapping interval can straddle
  // Start) and one right remnant (the last can straddle End).
  std::pair<uint64_t, uint64_t> Keep[2];
  size_t NKeep = 0;
  auto First = It;
  while (It != Intervals.end() && It->first < End) {
    uint64_t IS = It->first, IE = It->second;
    OwnedBytes -= size_t(IE - IS);
    if (IS < Start) {
      Keep[NKeep++] = {IS, Start};
      OwnedBytes += size_t(Start - IS);
    }
    ++It;
    if (IE > End) {
      Keep[NKeep++] = {End, IE};
      OwnedBytes += size_t(IE - End);
      break;
    }
  }
  size_t Span = size_t(It - First);
  if (NKeep <= Span) {
    std::copy(Keep, Keep + NKeep, First);
    Intervals.erase(First + NKeep, It);
  } else { // NKeep == 2, Span == 1: one interval split in two.
    *First = Keep[0];
    Intervals.insert(First + 1, Keep[1]);
  }
}

bool Footprint::ownsRange(uint64_t Start, uint64_t End) const {
  if (OwnCacheLo <= Start && End <= OwnCacheHi)
    return true;
  auto It = intervalAfter(Intervals, Start);
  if (It == Intervals.begin())
    return false;
  --It;
  if (It->first <= Start && It->second >= End) {
    OwnCacheLo = It->first;
    OwnCacheHi = It->second;
    return true;
  }
  return false;
}

void Footprint::own(Word Addr, Word Len) {
  if (Len == 0)
    return;
  ++Epoch;
  uint64_t Start = Addr, End = uint64_t(Addr) + Len;
  if (End <= SpaceEnd) {
    ownRange(Start, End);
  } else {
    // The range wraps the 2^32 boundary, like per-byte Addr + I would.
    ownRange(Start, SpaceEnd);
    ownRange(0, End - SpaceEnd);
  }
}

void Footprint::disown(Word Addr, Word Len) {
  if (Len == 0)
    return;
  ++Epoch;
  uint64_t Start = Addr, End = uint64_t(Addr) + Len;
  if (End <= SpaceEnd) {
    disownRange(Start, End);
  } else {
    disownRange(Start, SpaceEnd);
    disownRange(0, End - SpaceEnd);
  }
}

bool Footprint::ownsSlow(Word Addr, Word Len) const {
  if (Len == 0)
    return true;
  uint64_t Start = Addr, End = uint64_t(Addr) + Len;
  if (End <= SpaceEnd)
    return ownsRange(Start, End);
  return ownsRange(Start, SpaceEnd) && ownsRange(0, End - SpaceEnd);
}

uint8_t Footprint::read(Word Addr) const {
  const std::vector<uint8_t> *Pg = findPage(Addr);
  assert(Pg && owns(Addr, 1) && "read of unowned byte");
  return (*Pg)[Addr & (PageBytes - 1)];
}

void Footprint::write(Word Addr, uint8_t V) {
  assert(owns(Addr, 1) && "write of unowned byte");
  ++Epoch;
  pageFor(Addr)[Addr & (PageBytes - 1)] = V;
}

Word Footprint::readLeSlow(Word Addr, unsigned Size) const {
  Word Off = Addr & (PageBytes - 1);
  if (Off + Size <= PageBytes) {
    const std::vector<uint8_t> *Pg = findPage(Addr);
    assert(Pg && owns(Addr, Size) && "read of unowned bytes");
    const uint8_t *B = Pg->data() + Off;
    Word V = 0;
    for (unsigned I = 0; I != Size; ++I)
      V |= Word(B[I]) << (8 * I);
    return V;
  }
  Word V = 0; // Page-crossing (or address-wrapping) slow path.
  for (unsigned I = 0; I != Size; ++I)
    V |= Word(read(Addr + I)) << (8 * I);
  return V;
}

void Footprint::writeLeSlow(Word Addr, unsigned Size, Word V) {
  ++Epoch;
  Word Off = Addr & (PageBytes - 1);
  if (Off + Size <= PageBytes) {
    assert(owns(Addr, Size) && "write of unowned bytes");
    uint8_t *B = pageFor(Addr).data() + Off;
    for (unsigned I = 0; I != Size; ++I)
      B[I] = uint8_t((V >> (8 * I)) & 0xFF);
    return;
  }
  for (unsigned I = 0; I != Size; ++I) {
    assert(owns(Addr + I, 1) && "write of unowned byte");
    pageFor(Addr + I)[(Addr + I) & (PageBytes - 1)] =
        uint8_t((V >> (8 * I)) & 0xFF);
  }
}

std::vector<std::pair<Word, Word>> Footprint::intervals() const {
  std::vector<std::pair<Word, Word>> Out;
  Out.reserve(Intervals.size());
  for (const auto &[S, E] : Intervals)
    Out.emplace_back(Word(S), Word(E - S));
  return Out;
}

bool Footprint::identical(const Footprint &O) const {
  if (Intervals != O.Intervals)
    return false;
  for (const auto &[S, E] : Intervals) {
    uint64_t A = S;
    while (A < E) {
      Word Addr = Word(A);
      Word Off = Addr & (PageBytes - 1);
      uint64_t N = std::min<uint64_t>(PageBytes - Off, E - A);
      const std::vector<uint8_t> *P1 = findPage(Addr);
      const std::vector<uint8_t> *P2 = O.findPage(Addr);
      if (!P1 || !P2)
        return false; // Owned bytes always have pages; be conservative.
      if (std::memcmp(P1->data() + Off, P2->data() + Off, size_t(N)) != 0)
        return false;
      A += N;
    }
  }
  return true;
}

// -- Interpreter ---------------------------------------------------------------

Interp::Interp(const Program &P, ExtSpec &Ext, uint64_t Fuel,
               const StackallocPolicy &Policy, ExecMode Mode)
    : Prog(P), Ext(Ext), Fuel(Fuel), Policy(Policy), Mode(Mode) {
  StackNext = Policy.Base - (Policy.Salt & ~Word(3));
  ActiveExt = &this->Ext;
}

Interp::~Interp() = default;

const BytecodeProgram &Interp::compiled() {
  if (!Bc) {
    Bc = std::make_unique<BytecodeProgram>(Prog);
    Scratch = std::make_unique<ExecScratch>();
  }
  return *Bc;
}

bool Interp::fault(Fault F, std::string Detail) {
  if (Result.F == Fault::None) {
    Result.F = F;
    Result.Detail = std::move(Detail);
  }
  return false;
}

bool Interp::evalExpr(const Expr &E, const Locals &L, Word &Out) {
  switch (E.K) {
  case Expr::Kind::Literal:
    Out = E.Lit;
    return true;
  case Expr::Kind::Var: {
    auto It = L.find(E.Name);
    if (It == L.end())
      return fault(Fault::UnboundVariable, "variable '" + E.Name + "'");
    Out = It->second;
    return true;
  }
  case Expr::Kind::Load: {
    Word Addr;
    if (!evalExpr(*E.A, L, Addr))
      return false;
    if (!isAligned(Addr, E.Size))
      return fault(Fault::MisalignedAccess,
                   "load" + std::to_string(E.Size) + " at " + hex32(Addr));
    if (!Mem.owns(Addr, E.Size))
      return fault(Fault::LoadOutsideFootprint,
                   "load" + std::to_string(E.Size) + " at " + hex32(Addr));
    Out = Mem.readLe(Addr, E.Size);
    return true;
  }
  case Expr::Kind::Op: {
    Word A, B;
    if (!evalExpr(*E.A, L, A) || !evalExpr(*E.B, L, B))
      return false;
    if ((E.Op == BinOp::Divu || E.Op == BinOp::Remu) && B == 0)
      ++Result.DivByZeroCount;
    Out = evalBinOp(E.Op, A, B);
    return true;
  }
  }
  assert(false && "unreachable: exhaustive expression kinds");
  return false;
}

bool Interp::execCall(const std::string &Callee,
                      const std::vector<Word> &ArgVals,
                      std::vector<Word> &Rets) {
  const Function *F = Prog.find(Callee);
  if (!F)
    return fault(Fault::UnknownFunction, "function '" + Callee + "'");
  if (F->Params.size() != ArgVals.size())
    return fault(Fault::ArityMismatch,
                 "call to '" + Callee + "' with " +
                     std::to_string(ArgVals.size()) + " args, expected " +
                     std::to_string(F->Params.size()));
  Locals L;
  for (size_t I = 0; I != ArgVals.size(); ++I)
    L[F->Params[I]] = ArgVals[I];
  // The contract's precondition (vcgen is invoked under P, section 4.1).
  if (F->Pre) {
    Word P;
    if (!evalExpr(*F->Pre, L, P))
      return false;
    if (P == 0)
      return fault(Fault::PreconditionFailed,
                   "requires clause of '" + Callee + "'");
  }
  if (!execStmt(*F->Body, L))
    return false;
  Rets.clear();
  for (const std::string &R : F->Rets) {
    auto It = L.find(R);
    if (It == L.end())
      return fault(Fault::UnboundVariable,
                   "return variable '" + R + "' of '" + Callee + "'");
    Rets.push_back(It->second);
  }
  // The contract's postcondition Q, over final parameter values and the
  // results.
  if (F->Post) {
    Word Q;
    if (!evalExpr(*F->Post, L, Q))
      return false;
    if (Q == 0)
      return fault(Fault::PostconditionFailed,
                   "ensures clause of '" + Callee + "'");
  }
  return true;
}

bool Interp::execStmt(const Stmt &S, Locals &L) {
  if (Result.StepsUsed >= Fuel)
    return fault(Fault::OutOfFuel, "statement budget exhausted");
  ++Result.StepsUsed;

  switch (S.K) {
  case Stmt::Kind::Skip:
    return true;
  case Stmt::Kind::Set: {
    Word V;
    if (!evalExpr(*S.Value, L, V))
      return false;
    L[S.Var] = V;
    return true;
  }
  case Stmt::Kind::Store: {
    Word Addr, V;
    if (!evalExpr(*S.Addr, L, Addr) || !evalExpr(*S.Value, L, V))
      return false;
    if (!isAligned(Addr, S.Size))
      return fault(Fault::MisalignedAccess,
                   "store" + std::to_string(S.Size) + " at " + hex32(Addr));
    if (!Mem.owns(Addr, S.Size))
      return fault(Fault::StoreOutsideFootprint,
                   "store" + std::to_string(S.Size) + " at " + hex32(Addr));
    Mem.writeLe(Addr, S.Size, V);
    return true;
  }
  case Stmt::Kind::If: {
    Word C;
    if (!evalExpr(*S.Cond, L, C))
      return false;
    return execStmt(C != 0 ? *S.S1 : *S.S2, L);
  }
  case Stmt::Kind::While: {
    // vcgen's loop case "asks for a loop invariant and a decreasing
    // measure instead of unrolling the loop" (section 4.1); when the
    // annotations are present the interpreter enforces them.
    bool HavePrev = false;
    Word PrevMeasure = 0;
    for (;;) {
      if (S.Invariant) {
        Word Inv;
        if (!evalExpr(*S.Invariant, L, Inv))
          return false;
        if (Inv == 0)
          return fault(Fault::InvariantViolated, "loop invariant");
      }
      Word C;
      if (!evalExpr(*S.Cond, L, C))
        return false;
      if (C == 0)
        return true;
      if (S.Measure) {
        Word M;
        if (!evalExpr(*S.Measure, L, M))
          return false;
        if (HavePrev && M >= PrevMeasure)
          return fault(Fault::MeasureNotDecreasing,
                       "measure " + std::to_string(M) +
                           " after " + std::to_string(PrevMeasure));
        PrevMeasure = M;
        HavePrev = true;
      }
      if (!execStmt(*S.S1, L))
        return false;
      if (Result.StepsUsed >= Fuel)
        return fault(Fault::OutOfFuel, "loop budget exhausted");
      ++Result.StepsUsed;
    }
  }
  case Stmt::Kind::Seq:
    return execStmt(*S.S1, L) && execStmt(*S.S2, L);
  case Stmt::Kind::Call: {
    std::vector<Word> ArgVals(S.Args.size());
    for (size_t I = 0; I != S.Args.size(); ++I)
      if (!evalExpr(*S.Args[I], L, ArgVals[I]))
        return false;
    std::vector<Word> Rets;
    if (!execCall(S.Callee, ArgVals, Rets))
      return false;
    if (Rets.size() != S.Dsts.size())
      return fault(Fault::ArityMismatch,
                   "call to '" + S.Callee + "' binds " +
                       std::to_string(S.Dsts.size()) + " results, returns " +
                       std::to_string(Rets.size()));
    for (size_t I = 0; I != Rets.size(); ++I)
      L[S.Dsts[I]] = Rets[I];
    return true;
  }
  case Stmt::Kind::Interact: {
    std::vector<Word> ArgVals(S.Args.size());
    for (size_t I = 0; I != S.Args.size(); ++I)
      if (!evalExpr(*S.Args[I], L, ArgVals[I]))
        return false;
    ExtSpec::Outcome Out = ActiveExt->call(S.Callee, ArgVals, Mem);
    if (!Out.Ok)
      return fault(Fault::ExtContractViolation,
                   "'" + S.Callee + "': " + Out.Error);
    if (Out.Rets.size() != S.Dsts.size())
      return fault(Fault::ArityMismatch,
                   "external '" + S.Callee + "' binds " +
                       std::to_string(S.Dsts.size()) + " results");
    // "The semantics records the latter in an interaction trace" (5.2).
    Result.Trace.push_back(IoEvent{S.Callee, ArgVals, Out.Rets});
    for (size_t I = 0; I != Out.Rets.size(); ++I)
      L[S.Dsts[I]] = Out.Rets[I];
    return true;
  }
  case Stmt::Kind::Stackalloc: {
    if (S.NBytes == 0 || S.NBytes % 4 != 0)
      return fault(Fault::StackallocMisuse,
                   "size " + std::to_string(S.NBytes));
    // Resolve the internal nondeterminism: pick the next address from the
    // policy-controlled arena. The program must not depend on the value.
    StackNext -= S.NBytes;
    Word Addr = StackNext;
    Mem.own(Addr, S.NBytes);
    L[S.Var] = Addr;
    bool OkBody = execStmt(*S.S1, L);
    // Ownership ends with the block, even on fault (the fault sticks).
    Mem.disown(Addr, S.NBytes);
    StackNext += S.NBytes;
    return OkBody;
  }
  }
  assert(false && "unreachable: exhaustive statement kinds");
  return false;
}

ExecResult Interp::runReference(const std::string &FuncName,
                                const std::vector<Word> &Args) {
  Result = ExecResult();
  std::vector<Word> Rets;
  if (execCall(FuncName, Args, Rets))
    Result.Rets = std::move(Rets);
  return std::move(Result);
}

// -- Differential record/replay ------------------------------------------------

namespace {

/// One recorded external interaction of the reference run, with enough
/// context to re-supply it to the fast run and to detect divergence.
struct RecordedCall {
  std::string Action;
  std::vector<Word> Args;
  ExtSpec::Outcome Out;
  bool MemChanged = false;
  Footprint MemAfter; ///< Snapshot when the call touched memory (DMA).
};

/// Forwards to the real ExtSpec, logging every call. The reference run
/// in differential mode uses this, so real device effects happen exactly
/// once.
class RecordingExt final : public ExtSpec {
public:
  explicit RecordingExt(ExtSpec &Inner) : Inner(Inner) {}

  Outcome call(const std::string &Action, const std::vector<Word> &Args,
               Footprint &Mem) override {
    uint64_t Epoch0 = Mem.mutationEpoch();
    Outcome Out = Inner.call(Action, Args, Mem);
    RecordedCall C;
    C.Action = Action;
    C.Args = Args;
    C.Out = Out;
    C.MemChanged = Mem.mutationEpoch() != Epoch0;
    if (C.MemChanged)
      C.MemAfter = Mem;
    Log.push_back(std::move(C));
    return Out;
  }

  std::vector<RecordedCall> Log;

private:
  ExtSpec &Inner;
};

/// Replays the recorded interactions to the fast run, checking that it
/// asks for the same externals with the same arguments in the same
/// order. Memory-touching calls re-apply the recorded post-call
/// footprint, so DMA-style grants replay faithfully.
class ReplayExt final : public ExtSpec {
public:
  explicit ReplayExt(const std::vector<RecordedCall> &Log) : Log(Log) {}

  Outcome call(const std::string &Action, const std::vector<Word> &Args,
               Footprint &Mem) override {
    if (Next >= Log.size()) {
      note("fast path made an extra external call '" + Action + "'");
      Outcome Out;
      Out.Ok = false;
      Out.Error = "[differential] unexpected external call";
      return Out;
    }
    const RecordedCall &C = Log[Next++];
    if (C.Action != Action || C.Args != Args)
      note("external call " + std::to_string(Next - 1) +
           " differs: reference '" + C.Action + "' vs fast '" + Action +
           "'");
    if (C.MemChanged)
      Mem = C.MemAfter;
    return C.Out;
  }

  std::string Mismatch;

private:
  void note(std::string M) {
    if (Mismatch.empty())
      Mismatch = std::move(M);
  }

  const std::vector<RecordedCall> &Log;
  size_t Next = 0;
};

} // namespace

ExecResult Interp::callFunction(const std::string &FuncName,
                                const std::vector<Word> &Args) {
  switch (Mode) {
  case ExecMode::Reference:
    return runReference(FuncName, Args);
  case ExecMode::Fast:
    return compiled().run(FuncName, Args, Ext, Mem, Fuel, Policy,
                          Scratch.get());
  case ExecMode::Differential:
    break;
  }

  // Differential: the reference engine runs against the real ExtSpec and
  // footprint (and stays authoritative for both), while the fast engine
  // replays the recorded interactions against a pre-run footprint copy.
  // Every observable of the two runs must then agree bit for bit.
  const BytecodeProgram &BP = compiled();
  Footprint FastMem = Mem;
  RecordingExt Rec(Ext);
  ActiveExt = &Rec;
  ExecResult Ref = runReference(FuncName, Args);
  ActiveExt = &Ext;
  ReplayExt Rep(Rec.Log);
  ExecResult Fast =
      BP.run(FuncName, Args, Rep, FastMem, Fuel, Policy, Scratch.get());

  std::string D;
  auto Mismatch = [&D](const std::string &What) {
    if (!D.empty())
      D += "; ";
    D += What;
  };
  if (Ref.F != Fast.F)
    Mismatch(std::string("fault kind: reference ") + faultName(Ref.F) +
             " vs fast " + faultName(Fast.F));
  if (Ref.Detail != Fast.Detail)
    Mismatch("fault detail: reference '" + Ref.Detail + "' vs fast '" +
             Fast.Detail + "'");
  if (Ref.Rets != Fast.Rets)
    Mismatch("return tuples differ");
  if (!(Ref.Trace == Fast.Trace))
    Mismatch("I/O traces differ (reference " +
             std::to_string(Ref.Trace.size()) + " events, fast " +
             std::to_string(Fast.Trace.size()) + ")");
  if (Ref.StepsUsed != Fast.StepsUsed)
    Mismatch("StepsUsed: reference " + std::to_string(Ref.StepsUsed) +
             " vs fast " + std::to_string(Fast.StepsUsed));
  if (Ref.DivByZeroCount != Fast.DivByZeroCount)
    Mismatch("DivByZeroCount: reference " +
             std::to_string(Ref.DivByZeroCount) + " vs fast " +
             std::to_string(Fast.DivByZeroCount));
  if (!Rep.Mismatch.empty())
    Mismatch(Rep.Mismatch);
  if (!Mem.identical(FastMem))
    Mismatch("final footprints differ");
  if (!D.empty()) {
    ++NumDivergences;
    if (!Divergences.empty())
      Divergences += "\n";
    Divergences += "callFunction('" + FuncName + "'): " + D;
  }
  return Ref;
}
