//===- bedrock2/CExport.h - Export Bedrock2 to C ---------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates Bedrock2 programs to C source text, reproducing the
/// "Exported C code" arrow of Figure 1: "Bedrock2 source programs can be
/// exported to C code", which is how the paper's authors ran the verified
/// sources through gcc on the FE310 for the baseline measurements of
/// section 7.2.1.
///
/// Conventions (following the original bedrock2 ToCString):
///  * every Bedrock2 word is a `uintptr_t`;
///  * a function's first result is the C return value; further results
///    are returned through trailing out-pointer parameters;
///  * loads/stores become casts through (volatile-free) sized pointers;
///  * MMIOREAD/MMIOWRITE become volatile accesses;
///  * stackalloc becomes a local array.
///
//===----------------------------------------------------------------------===//

#ifndef B2_BEDROCK2_CEXPORT_H
#define B2_BEDROCK2_CEXPORT_H

#include "bedrock2/Ast.h"

#include <string>

namespace b2 {
namespace bedrock2 {

/// Renders the whole program as a self-contained C translation unit
/// (includes, forward declarations, definitions).
std::string exportC(const Program &P);

/// Renders one function definition.
std::string exportCFunction(const Function &F);

} // namespace bedrock2
} // namespace b2

#endif // B2_BEDROCK2_CEXPORT_H
