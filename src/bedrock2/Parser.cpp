//===- bedrock2/Parser.cpp - Bedrock2 concrete-syntax parser ----------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bedrock2/Parser.h"

#include <cassert>
#include <cctype>
#include <vector>

using namespace b2;
using namespace b2::bedrock2;

namespace {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  Number,
  Punct, ///< Operators and punctuation; spelling in Text.
};

struct Token {
  TokKind K = TokKind::Eof;
  std::string Text;
  Word Value = 0;
  unsigned Line = 1;
};

class Lexer {
public:
  explicit Lexer(const std::string &Src) : Src(Src) {}

  Token next() {
    skipWhitespaceAndComments();
    Token T;
    T.Line = Line;
    if (Pos >= Src.size())
      return T;
    char C = Src[Pos];
    if (std::isalpha(uint8_t(C)) || C == '_')
      return lexIdent();
    if (std::isdigit(uint8_t(C)))
      return lexNumber();
    return lexPunct();
  }

  bool hadError() const { return !Error.empty(); }
  const std::string &error() const { return Error; }

private:
  const std::string &Src;
  size_t Pos = 0;
  unsigned Line = 1;
  std::string Error;

  void skipWhitespaceAndComments() {
    for (;;) {
      while (Pos < Src.size() && std::isspace(uint8_t(Src[Pos]))) {
        if (Src[Pos] == '\n')
          ++Line;
        ++Pos;
      }
      if (Pos + 1 < Src.size() && Src[Pos] == '/' && Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (Pos + 1 < Src.size() && Src[Pos] == '/' && Src[Pos + 1] == '*') {
        Pos += 2;
        while (Pos + 1 < Src.size() &&
               !(Src[Pos] == '*' && Src[Pos + 1] == '/')) {
          if (Src[Pos] == '\n')
            ++Line;
          ++Pos;
        }
        Pos = Pos + 2 <= Src.size() ? Pos + 2 : Src.size();
        continue;
      }
      return;
    }
  }

  Token lexIdent() {
    Token T;
    T.K = TokKind::Ident;
    T.Line = Line;
    size_t Start = Pos;
    while (Pos < Src.size() &&
           (std::isalnum(uint8_t(Src[Pos])) || Src[Pos] == '_'))
      ++Pos;
    T.Text = Src.substr(Start, Pos - Start);
    return T;
  }

  Token lexNumber() {
    Token T;
    T.K = TokKind::Number;
    T.Line = Line;
    uint64_t V = 0;
    if (Pos + 1 < Src.size() && Src[Pos] == '0' &&
        (Src[Pos + 1] == 'x' || Src[Pos + 1] == 'X')) {
      Pos += 2;
      size_t Start = Pos;
      while (Pos < Src.size() && std::isxdigit(uint8_t(Src[Pos]))) {
        char C = Src[Pos];
        unsigned D = std::isdigit(uint8_t(C)) ? unsigned(C - '0')
                                              : unsigned(std::tolower(C) - 'a') + 10;
        V = (V << 4) | D;
        ++Pos;
      }
      if (Pos == Start)
        Error = "line " + std::to_string(Line) + ": malformed hex literal";
    } else {
      while (Pos < Src.size() && std::isdigit(uint8_t(Src[Pos]))) {
        V = V * 10 + unsigned(Src[Pos] - '0');
        ++Pos;
      }
    }
    T.Value = Word(V);
    T.Text = std::to_string(T.Value);
    return T;
  }

  Token lexPunct() {
    Token T;
    T.K = TokKind::Punct;
    T.Line = Line;
    // Longest-match multi-character operators first.
    static const char *Multi[] = {">>s", "->", "==", "!=", "<<", ">>",
                                  "<s",  "*h"};
    for (const char *Op : Multi) {
      size_t Len = std::string(Op).size();
      if (Src.compare(Pos, Len, Op) == 0) {
        T.Text = Op;
        Pos += Len;
        return T;
      }
    }
    T.Text = Src.substr(Pos, 1);
    ++Pos;
    return T;
  }
};

class Parser {
public:
  explicit Parser(const std::string &Src) : Lex(Src) { advance(); }

  ParseResult parseProgramTop() {
    ParseResult R;
    Program P;
    while (Cur.K != TokKind::Eof) {
      if (!expectIdentText("fn")) {
        R.Error = Err;
        return R;
      }
      Function F;
      if (!parseFunction(F)) {
        R.Error = Err;
        return R;
      }
      if (P.Functions.count(F.Name)) {
        R.Error = "line " + std::to_string(Cur.Line) +
                  ": duplicate function '" + F.Name + "'";
        return R;
      }
      P.add(std::move(F));
    }
    if (Lex.hadError()) {
      R.Error = Lex.error();
      return R;
    }
    R.Prog = std::move(P);
    return R;
  }

  ParseExprResult parseExprTop() {
    ParseExprResult R;
    ExprPtr E = parseExprP(0);
    if (!E) {
      R.Error = Err;
      return R;
    }
    if (Cur.K != TokKind::Eof) {
      R.Error = "line " + std::to_string(Cur.Line) + ": trailing input";
      return R;
    }
    R.E = E;
    return R;
  }

private:
  Lexer Lex;
  Token Cur;
  std::string Err;

  void advance() { Cur = Lex.next(); }

  bool failHere(const std::string &Msg) {
    if (Err.empty())
      Err = "line " + std::to_string(Cur.Line) + ": " + Msg;
    return false;
  }

  bool isPunct(const char *P) const {
    return Cur.K == TokKind::Punct && Cur.Text == P;
  }

  bool isIdent(const char *S) const {
    return Cur.K == TokKind::Ident && Cur.Text == S;
  }

  bool expectPunct(const char *P) {
    if (!isPunct(P))
      return failHere(std::string("expected '") + P + "', found '" +
                      Cur.Text + "'");
    advance();
    return true;
  }

  bool expectIdentText(const char *S) {
    if (!isIdent(S))
      return failHere(std::string("expected '") + S + "', found '" +
                      Cur.Text + "'");
    advance();
    return true;
  }

  bool expectIdent(std::string &Out) {
    if (Cur.K != TokKind::Ident)
      return failHere("expected identifier, found '" + Cur.Text + "'");
    Out = Cur.Text;
    advance();
    return true;
  }

  bool parseIdentList(std::vector<std::string> &Out) {
    std::string Name;
    if (!expectIdent(Name))
      return false;
    Out.push_back(Name);
    while (isPunct(",")) {
      advance();
      if (!expectIdent(Name))
        return false;
      Out.push_back(Name);
    }
    return true;
  }

  bool parseFunction(Function &F) {
    if (!expectIdent(F.Name))
      return false;
    if (!expectPunct("("))
      return false;
    if (!isPunct(")")) {
      if (!parseIdentList(F.Params))
        return false;
    }
    if (!expectPunct(")"))
      return false;
    if (isPunct("->")) {
      advance();
      if (!expectPunct("("))
        return false;
      if (!parseIdentList(F.Rets))
        return false;
      if (!expectPunct(")"))
        return false;
    }
    // Optional contract clauses, in either order.
    while (isIdent("requires") || isIdent("ensures")) {
      bool IsPre = isIdent("requires");
      advance();
      if (!expectPunct("("))
        return false;
      ExprPtr C = parseExprP(0);
      if (!C || !expectPunct(")"))
        return false;
      (IsPre ? F.Pre : F.Post) = C;
    }
    StmtPtr Body;
    if (!parseBlock(Body))
      return false;
    F.Body = Body;
    return true;
  }

  bool parseBlock(StmtPtr &Out) {
    if (!expectPunct("{"))
      return false;
    std::vector<StmtPtr> Stmts;
    while (!isPunct("}")) {
      if (Cur.K == TokKind::Eof)
        return failHere("unterminated block");
      StmtPtr S;
      if (!parseStmt(S))
        return false;
      Stmts.push_back(S);
    }
    advance(); // consume '}'
    Out = Stmt::block(std::move(Stmts));
    return true;
  }

  /// Parses `name(args)` after \p Name has been consumed.
  bool parseCallTail(std::vector<ExprPtr> &Args) {
    if (!expectPunct("("))
      return false;
    if (!isPunct(")")) {
      for (;;) {
        ExprPtr A = parseExprP(0);
        if (!A)
          return false;
        Args.push_back(A);
        if (!isPunct(","))
          break;
        advance();
      }
    }
    return expectPunct(")");
  }

  static int loadSizeOf(const std::string &S) {
    if (S == "load1")
      return 1;
    if (S == "load2")
      return 2;
    if (S == "load4")
      return 4;
    return 0;
  }

  static int storeSizeOf(const std::string &S) {
    if (S == "store1")
      return 1;
    if (S == "store2")
      return 2;
    if (S == "store4")
      return 4;
    return 0;
  }

  bool parseStmt(StmtPtr &Out) {
    if (isIdent("skip")) {
      advance();
      if (!expectPunct(";"))
        return false;
      Out = Stmt::skip();
      return true;
    }
    if (isIdent("if")) {
      advance();
      if (!expectPunct("("))
        return false;
      ExprPtr Cond = parseExprP(0);
      if (!Cond || !expectPunct(")"))
        return false;
      StmtPtr Then, Else;
      if (!parseBlock(Then))
        return false;
      if (isIdent("else")) {
        advance();
        if (!parseBlock(Else))
          return false;
      } else {
        Else = Stmt::skip();
      }
      Out = Stmt::ifThenElse(Cond, Then, Else);
      return true;
    }
    if (isIdent("while")) {
      advance();
      if (!expectPunct("("))
        return false;
      ExprPtr Cond = parseExprP(0);
      if (!Cond || !expectPunct(")"))
        return false;
      // Optional program-logic annotations, in either order.
      ExprPtr Invariant, Measure;
      while (isIdent("invariant") || isIdent("measure")) {
        bool IsInv = isIdent("invariant");
        advance();
        if (!expectPunct("("))
          return false;
        ExprPtr A = parseExprP(0);
        if (!A || !expectPunct(")"))
          return false;
        (IsInv ? Invariant : Measure) = A;
      }
      StmtPtr Body;
      if (!parseBlock(Body))
        return false;
      Out = (Invariant || Measure)
                ? Stmt::whileLoopAnnotated(Cond, Invariant, Measure, Body)
                : Stmt::whileLoop(Cond, Body);
      return true;
    }
    if (isIdent("stackalloc")) {
      advance();
      std::string Var;
      if (!expectIdent(Var))
        return false;
      if (!expectPunct("["))
        return false;
      if (Cur.K != TokKind::Number)
        return failHere("expected stackalloc size");
      Word N = Cur.Value;
      advance();
      if (!expectPunct("]"))
        return false;
      if (N == 0 || N % 4 != 0)
        return failHere("stackalloc size must be a positive multiple of 4");
      StmtPtr Body;
      if (!parseBlock(Body))
        return false;
      Out = Stmt::stackalloc(Var, N, Body);
      return true;
    }
    if (Cur.K == TokKind::Ident && storeSizeOf(Cur.Text)) {
      unsigned Size = unsigned(storeSizeOf(Cur.Text));
      advance();
      if (!expectPunct("("))
        return false;
      ExprPtr Addr = parseExprP(0);
      if (!Addr || !expectPunct(","))
        return false;
      ExprPtr Val = parseExprP(0);
      if (!Val || !expectPunct(")") || !expectPunct(";"))
        return false;
      Out = Stmt::store(Size, Addr, Val);
      return true;
    }
    if (isIdent("extern")) {
      advance();
      std::string Action;
      if (!expectIdent(Action))
        return false;
      std::vector<ExprPtr> Args;
      if (!parseCallTail(Args) || !expectPunct(";"))
        return false;
      Out = Stmt::interact({}, Action, std::move(Args));
      return true;
    }

    // Remaining forms start with an identifier: assignment, call with
    // results, or a bare call.
    std::string First;
    if (!expectIdent(First))
      return false;

    if (isPunct("(")) {
      // Bare call: f(args);
      std::vector<ExprPtr> Args;
      if (!parseCallTail(Args) || !expectPunct(";"))
        return false;
      Out = Stmt::call({}, First, std::move(Args));
      return true;
    }

    std::vector<std::string> Dsts = {First};
    while (isPunct(",")) {
      advance();
      std::string Next;
      if (!expectIdent(Next))
        return false;
      Dsts.push_back(Next);
    }
    if (!expectPunct("="))
      return false;

    if (isIdent("extern")) {
      advance();
      std::string Action;
      if (!expectIdent(Action))
        return false;
      std::vector<ExprPtr> Args;
      if (!parseCallTail(Args) || !expectPunct(";"))
        return false;
      Out = Stmt::interact(std::move(Dsts), Action, std::move(Args));
      return true;
    }

    // `x = f(...)` is a call unless f is a loadN keyword; `x = expr`
    // otherwise. Multi-destination forms must be calls.
    if (Cur.K == TokKind::Ident && !loadSizeOf(Cur.Text)) {
      std::string Callee = Cur.Text;
      // Peek: identifier followed by '(' is a call.
      Token Saved = Cur;
      advance();
      if (isPunct("(")) {
        std::vector<ExprPtr> Args;
        if (!parseCallTail(Args) || !expectPunct(";"))
          return false;
        Out = Stmt::call(std::move(Dsts), Callee, std::move(Args));
        return true;
      }
      // Not a call: re-interpret as an expression starting with a
      // variable. Continue the expression parse from the saved token.
      if (Dsts.size() != 1)
        return failHere("multiple destinations require a call");
      ExprPtr Lhs = Expr::var(Saved.Text);
      ExprPtr E = parseBinOpRhs(0, Lhs);
      if (!E || !expectPunct(";"))
        return false;
      Out = Stmt::set(Dsts[0], E);
      return true;
    }

    if (Dsts.size() != 1)
      return failHere("multiple destinations require a call");
    ExprPtr E = parseExprP(0);
    if (!E || !expectPunct(";"))
      return false;
    Out = Stmt::set(Dsts[0], E);
    return true;
  }

  // -- Expressions: precedence climbing ------------------------------------

  static int precedenceOf(const std::string &Op) {
    if (Op == "==" || Op == "!=")
      return 1;
    if (Op == "<" || Op == "<s")
      return 2;
    if (Op == "|")
      return 3;
    if (Op == "^")
      return 4;
    if (Op == "&")
      return 5;
    if (Op == "<<" || Op == ">>" || Op == ">>s")
      return 6;
    if (Op == "+" || Op == "-")
      return 7;
    if (Op == "*" || Op == "*h" || Op == "/" || Op == "%")
      return 8;
    return -1;
  }

  static BinOp binOpOf(const std::string &Op) {
    if (Op == "==")
      return BinOp::Eq;
    if (Op == "<")
      return BinOp::Ltu;
    if (Op == "<s")
      return BinOp::Lts;
    if (Op == "|")
      return BinOp::Or;
    if (Op == "^")
      return BinOp::Xor;
    if (Op == "&")
      return BinOp::And;
    if (Op == "<<")
      return BinOp::Slu;
    if (Op == ">>")
      return BinOp::Sru;
    if (Op == ">>s")
      return BinOp::Srs;
    if (Op == "+")
      return BinOp::Add;
    if (Op == "-")
      return BinOp::Sub;
    if (Op == "*")
      return BinOp::Mul;
    if (Op == "*h")
      return BinOp::MulHuu;
    if (Op == "/")
      return BinOp::Divu;
    assert(Op == "%" && "unexpected operator");
    return BinOp::Remu;
  }

  ExprPtr parseAtom() {
    if (Cur.K == TokKind::Number) {
      Word V = Cur.Value;
      advance();
      return Expr::literal(V);
    }
    if (Cur.K == TokKind::Ident) {
      int Size = loadSizeOf(Cur.Text);
      if (Size) {
        advance();
        if (!expectPunct("("))
          return nullptr;
        ExprPtr A = parseExprP(0);
        if (!A || !expectPunct(")"))
          return nullptr;
        return Expr::load(unsigned(Size), A);
      }
      std::string Name = Cur.Text;
      advance();
      return Expr::var(Name);
    }
    if (isPunct("(")) {
      advance();
      ExprPtr E = parseExprP(0);
      if (!E || !expectPunct(")"))
        return nullptr;
      return E;
    }
    failHere("expected expression, found '" + Cur.Text + "'");
    return nullptr;
  }

  ExprPtr parseBinOpRhs(int MinPrec, ExprPtr Lhs) {
    for (;;) {
      if (Cur.K != TokKind::Punct)
        return Lhs;
      int Prec = precedenceOf(Cur.Text);
      if (Prec < MinPrec || Prec < 0)
        return Lhs;
      std::string Op = Cur.Text;
      advance();
      ExprPtr Rhs = parseAtom();
      if (!Rhs)
        return nullptr;
      for (;;) {
        if (Cur.K != TokKind::Punct)
          break;
        int NextPrec = precedenceOf(Cur.Text);
        if (NextPrec <= Prec)
          break;
        Rhs = parseBinOpRhs(NextPrec, Rhs);
        if (!Rhs)
          return nullptr;
      }
      if (Op == "!=") {
        Lhs = Expr::op(BinOp::Eq, Expr::op(BinOp::Eq, Lhs, Rhs),
                       Expr::literal(0));
      } else {
        Lhs = Expr::op(binOpOf(Op), Lhs, Rhs);
      }
    }
  }

  ExprPtr parseExprP(int MinPrec) {
    ExprPtr Lhs = parseAtom();
    if (!Lhs)
      return nullptr;
    return parseBinOpRhs(MinPrec, Lhs);
  }
};

} // namespace

ParseResult b2::bedrock2::parseProgram(const std::string &Source) {
  Parser P(Source);
  return P.parseProgramTop();
}

ParseExprResult b2::bedrock2::parseExpr(const std::string &Source) {
  Parser P(Source);
  return P.parseExprTop();
}
