//===- bedrock2/Ast.h - Bedrock2 abstract syntax ---------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax of Bedrock2, the paper's "minimal C-like language"
/// (section 5.2): expressions over a single type `word`, memory loads and
/// stores of 1/2/4 bytes, if/while/sequencing, calls to Bedrock2-defined
/// procedures with tuple returns, and the syntactically distinct *external
/// calls* through which all I/O happens (section 6.1). Stack allocation
/// (`stackalloc`) is included because it is the paper's canonical source
/// of internal nondeterminism ("the address at which stack allocation
/// allocates memory is unspecified", section 5.3).
///
/// ASTs are immutable trees of shared nodes; all construction goes through
/// the static factories (or the nicer bedrock2/Dsl.h wrappers).
///
//===----------------------------------------------------------------------===//

#ifndef B2_BEDROCK2_AST_H
#define B2_BEDROCK2_AST_H

#include "support/Word.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace b2 {
namespace bedrock2 {

/// Bedrock2's binary operators (the full set of the original language).
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  MulHuu, ///< High word of the unsigned product.
  Divu,
  Remu,
  And,
  Or,
  Xor,
  Sru, ///< Shift right unsigned (logical).
  Slu, ///< Shift left.
  Srs, ///< Shift right signed (arithmetic).
  Lts, ///< Signed less-than (0 or 1).
  Ltu, ///< Unsigned less-than (0 or 1).
  Eq,  ///< Equality (0 or 1).
};

/// Returns the surface-syntax spelling ("+", ">>", "<s", ...).
const char *binOpName(BinOp Op);

/// Evaluates \p Op on concrete words. Division by zero follows the RISC-V
/// convention (the source semantics leave it unspecified; the compiler may
/// assume RISC-V's choice — paper footnote 3). Defined inline: this is the
/// single hottest operation of both checking-interpreter engines.
constexpr Word evalBinOp(BinOp Op, Word A, Word B) {
  switch (Op) {
  case BinOp::Add:
    return A + B;
  case BinOp::Sub:
    return A - B;
  case BinOp::Mul:
    return A * B;
  case BinOp::MulHuu:
    return support::mulhuu(A, B);
  case BinOp::Divu:
    return support::divu(A, B);
  case BinOp::Remu:
    return support::remu(A, B);
  case BinOp::And:
    return A & B;
  case BinOp::Or:
    return A | B;
  case BinOp::Xor:
    return A ^ B;
  case BinOp::Sru:
    return support::shiftRL(A, B);
  case BinOp::Slu:
    return support::shiftL(A, B);
  case BinOp::Srs:
    return support::shiftRA(A, B);
  case BinOp::Lts:
    return SWord(A) < SWord(B) ? 1 : 0;
  case BinOp::Ltu:
    return A < B ? 1 : 0;
  case BinOp::Eq:
    return A == B ? 1 : 0;
  }
  return 0;
}

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An expression. Tagged union; unused fields are empty.
struct Expr {
  enum class Kind : uint8_t { Literal, Var, Load, Op } K;

  Word Lit = 0;                 ///< Literal.
  std::string Name;             ///< Var.
  unsigned Size = 4;            ///< Load: access size in bytes (1/2/4).
  ExprPtr A;                    ///< Load address / Op lhs.
  ExprPtr B;                    ///< Op rhs.
  BinOp Op = BinOp::Add;        ///< Op.

  static ExprPtr literal(Word V);
  static ExprPtr var(std::string Name);
  static ExprPtr load(unsigned Size, ExprPtr Addr);
  static ExprPtr op(BinOp Op, ExprPtr A, ExprPtr B);
};

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

/// A statement.
struct Stmt {
  enum class Kind : uint8_t {
    Skip,
    Set,        ///< Var = E.
    Store,      ///< store<Size>(Addr, Value).
    If,         ///< if (Cond) Then else Else.
    While,      ///< while (Cond) Body.
    Seq,        ///< S1; S2.
    Call,       ///< Dsts... = Callee(Args...).
    Interact,   ///< Dsts... = external Action(Args...)  (I/O).
    Stackalloc, ///< stackalloc Var[NBytes] { Body }: a fresh
                ///< zero-initialized buffer whose *address* is
                ///< unspecified (internal nondeterminism).
  } K;

  std::string Var;               ///< Set destination / Stackalloc pointer.
  unsigned Size = 4;             ///< Store size.
  ExprPtr Cond;                  ///< If/While condition.
  ExprPtr Addr;                  ///< Store address.
  ExprPtr Value;                 ///< Set/Store value.
  StmtPtr S1;                    ///< Seq first / If then / While & Stackalloc body.
  StmtPtr S2;                    ///< Seq second / If else.
  std::vector<std::string> Dsts; ///< Call/Interact result variables.
  std::string Callee;            ///< Call function / Interact action name.
  std::vector<ExprPtr> Args;     ///< Call/Interact arguments.
  Word NBytes = 0;               ///< Stackalloc byte count.
  ExprPtr Invariant;             ///< While: optional loop invariant.
  ExprPtr Measure;               ///< While: optional decreasing measure.

  static StmtPtr skip();
  static StmtPtr set(std::string Var, ExprPtr E);
  static StmtPtr store(unsigned Size, ExprPtr Addr, ExprPtr Value);
  static StmtPtr ifThenElse(ExprPtr Cond, StmtPtr Then, StmtPtr Else);
  static StmtPtr whileLoop(ExprPtr Cond, StmtPtr Body);
  /// While loop with the program-logic annotations vcgen asks for in its
  /// loop case (section 4.1): an invariant that must hold at every test
  /// of the condition, and a measure that must strictly decrease
  /// (unsigned) on every iteration. The compiler erases both; the
  /// checking interpreter enforces them.
  static StmtPtr whileLoopAnnotated(ExprPtr Cond, ExprPtr Invariant,
                                    ExprPtr Measure, StmtPtr Body);
  static StmtPtr seq(StmtPtr S1, StmtPtr S2);
  static StmtPtr block(std::vector<StmtPtr> Stmts);
  static StmtPtr call(std::vector<std::string> Dsts, std::string Callee,
                      std::vector<ExprPtr> Args);
  static StmtPtr interact(std::vector<std::string> Dsts, std::string Action,
                          std::vector<ExprPtr> Args);
  static StmtPtr stackalloc(std::string Var, Word NBytes, StmtPtr Body);
};

/// A Bedrock2 procedure: word-typed parameters and (tuple) results.
/// \c Pre and \c Post are the program-logic contract (the paper's P and Q
/// in "for each function with body c, precondition P, and postcondition
/// Q, we prove forall t m l, P => vcgen(c, ..., Q)", section 4.1): the
/// precondition ranges over the parameters, the postcondition over
/// parameters (with their final values) and results. Null means "true".
struct Function {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<std::string> Rets;
  StmtPtr Body;
  ExprPtr Pre;
  ExprPtr Post;
};

/// A compilation unit. Bedrock2 "outright omits higher-order features such
/// as function pointers and mutually dependent compilation units" (section
/// 5.2): all callees must be defined in the same program.
struct Program {
  std::map<std::string, Function> Functions;

  void add(Function F) { Functions[F.Name] = std::move(F); }
  const Function *find(const std::string &Name) const {
    auto It = Functions.find(Name);
    return It == Functions.end() ? nullptr : &It->second;
  }
};

/// Pretty-prints in the concrete syntax accepted by bedrock2/Parser.h.
std::string toString(const Expr &E);
std::string toString(const Stmt &S, unsigned Indent = 0);
std::string toString(const Function &F);
std::string toString(const Program &P);

} // namespace bedrock2
} // namespace b2

#endif // B2_BEDROCK2_AST_H
