//===- bedrock2/Bytecode.h - Compiled checking interpreter -----*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast path of the checking interpreter: a one-time resolution pass
/// over a bedrock2::Program that interns every variable name to a dense
/// frame-slot index, resolves callees and checks arities once, and
/// flattens each function body into a compact bytecode executed by a
/// switch-dispatch loop — replacing the AST walker's per-step
/// string-keyed hash lookups and shared_ptr chasing.
///
/// The fast path performs *exactly* the same checks as the reference
/// walker (bedrock2/Semantics.cpp) and must report every runtime fault —
/// UnboundVariable, footprint and alignment violations, arity mismatches,
/// fuel exhaustion, contract faults — with the identical Fault kind,
/// Detail string, StepsUsed, DivByZeroCount, I/O trace, and return tuple.
/// Faults that the resolution pass can already see statically (unknown
/// callee, call-site arity mismatch, bad stackalloc size) compile to
/// fault instructions that raise at the same dynamic point the walker
/// would, so compile-time knowledge never changes observable behavior:
/// dead faulty code stays silent, reachable faulty code faults
/// identically. ExecMode::Differential (bedrock2/Semantics.h) enforces
/// this equivalence on every run, making the bytecode engine a second
/// semantics witness in the same two-path style as the ISA simulator's
/// predecoded-instruction cache (DESIGN.md section 4).
///
//===----------------------------------------------------------------------===//

#ifndef B2_BEDROCK2_BYTECODE_H
#define B2_BEDROCK2_BYTECODE_H

#include "bedrock2/Semantics.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace b2 {
namespace bedrock2 {

namespace bc {

/// The full operation list as an X-macro so the enum and the executor's
/// computed-goto jump table are generated from one source and can never
/// fall out of order. Three groups:
///
/// Base ops — expressions evaluate on an operand stack in the reference
/// walker's evaluation order; statements mirror execStmt one case at a
/// time, including its fuel accounting:
///   PushLit      push Imm.
///   PushVar      push slot A (fault: UnboundVariable, detail Str).
///   LoadMem      pop addr; push load of U8 bytes (align + footprint).
///   Binop        pop rhs, lhs; push BinOp(U8) result; counts div-by-0.
///   SetVar       pop value into slot A.
///   StoreMem     pop value, addr; store U8 bytes (align + footprint).
///   Jump         pc = Arg.
///   JumpIfZero   pop cond; if 0, pc = Arg.
///   StepStmt     fuel check + StepsUsed++ ("statement budget exhausted").
///   StepLoop     per-iteration fuel check ("loop budget exhausted").
///   CheckInv     pop; fault InvariantViolated if 0.
///   MeasReset    clear measure state A of this frame.
///   MeasCheck    pop; fault MeasureNotDecreasing unless decreasing.
///   CallBind     call site Arg: run callee, bind rets to dst slots.
///   CallDrop     call function Arg, discard rets (a StaticFault follows).
///   InteractExt  external call site Arg (args popped, trace recorded).
///   EnterAlloc   stackalloc site Arg: carve + own + bind pointer.
///   LeaveAlloc   stackalloc scope exit: disown + release.
///   StaticFault  fault(Fault(U8), Str): a statically-resolved fault site.
///   CheckPre     pop; fault PreconditionFailed if 0 (detail Str).
///   CheckPost    pop; fault PostconditionFailed if 0 (detail Str).
///   CollectRet   append slot A to the return tuple (Str if unbound).
///   Return       function epilogue.
///
/// Fused superinstructions, produced by the first peephole pass. Each
/// has the same net stack effect and raises the identical fault sequence
/// (kind, detail, order) as the ops it replaces — the differential
/// harness holds for fused code too. Naming: V = slot operand, I =
/// immediate, trailing S = result stored to a slot (else pushed), lone
/// leading S = left operand from the operand stack:
///   SetLit     slot A = Imm.
///   MoveVar    slot Arg = slot A (unbound detail Str).
///   BinopVV    push (slot A op slot Arg); details Str, Imm.
///   BinopVVS   slot (Arg>>16) = slot A op slot (Arg&0xFFFF); details
///              Str, Imm.
///   BinopVI    push (slot A op Imm); detail Str.
///   BinopVIS   slot Arg = slot A op Imm; detail Str.
///   BinopSI    push (pop() op Imm).
///   BinopSIS   slot A = pop() op Imm.
///   BinopSV    push (pop() op slot A); detail Str.
///   BinopSVS   slot Arg = pop() op slot A; detail Str.
///   BinopSS    slot A = lhs op rhs, both popped.
///   LoadV      push load{U8}(slot A); detail Str.
///   LoadVS     slot Arg = load{U8}(slot A); detail Str.
///   LoadS      slot A = load{U8}(pop()).
///   StoreVV    store{U8}(slot A, slot Arg); details Str, Imm.
///   StoreVI    store{U8}(slot A, Imm); detail Str.
///
/// Expression-combo superinstructions, produced by a pass over the
/// first pass's output (dynamic digram profiling picked the patterns):
///   Push2VL    push slot A, then push Imm (detail Str).
///   FoldSI     pop a; push (top op' (a op Imm)) in place — a BinopSI
///              feeding a Binop. U8 packs op (low nibble) and op'
///              (high nibble); both division-by-zero counts preserved
///              in evaluation order.
///   FoldVV     push-free BinopVV feeding a Binop: top = top op'
///              (slot A op slot Arg); fields as BinopVV, U8 packed.
///   FoldVI     BinopVI feeding a Binop: top = top op' (slot A op Imm);
///              fields as BinopVI, U8 packed as for FoldSI.
///   BinopLoad  pop b; addr = top op b; top = load{size}(addr) — a
///              Binop feeding a LoadMem. U8 packs op (low nibble) and
///              the access size (high nibble).
///   BinopVILoad  push load{size}(slot A op Imm) — base-plus-offset
///              addressing, a BinopVI feeding a LoadMem. U8 packs op
///              (low nibble) and the access size (high nibble).
///
/// Step*/Br* superinstructions, produced by the next peephole pass.
/// Step<X> charges one statement fuel step ("statement budget
/// exhausted", checked before anything else, exactly like the StepStmt
/// it absorbs) and then behaves as <X>. Every Step<X> payload fits the
/// low nibble of U8 (BinOp tops out at 14, access sizes at 4), so the
/// final pass stores a count of additional preceding charges — a run
/// of enclosing Seq entries — in U8's high nibble; handlers charge
/// 1 + (U8 >> 4) steps up front and mask the payload. Br<X>Z evaluates like <X> and
/// branches to Arg when the result is zero instead of pushing it
/// (absorbing a JumpIfZero; BrVVZ packs rhs slot and its detail into
/// Imm as (str << 16) | slot and is only produced when both fit).
/// StepLoopJump is the per-iteration backedge: loop fuel charge ("loop
/// budget exhausted") followed by pc = Arg.
///
/// A final pass collapses what the previous one exposes:
///   StepN           A consecutive statement fuel charges in one op
///                   (nested Seq nodes each charge on entry, so charge
///                   runs are common). Faults at the identical
///                   StepsUsed when the budget runs out mid-run.
///   StepIncLoopJump the canonical loop latch "i = i op lit" plus the
///                   backedge: statement charge(s) (U8 high nibble, as
///                   for Step<X>), unbound check (Str), slot A = slot A
///                   op Imm, loop charge, pc = Arg. Only produced when
///                   the destination is the lhs slot, which is what
///                   counter updates compile to.
///   BrVZStepN       BrVZ whose fall-through path starts with Imm
///                   statement charges (a loop head or if test entering
///                   its body): branch to Arg on zero with no charge,
///                   else charge Imm like StepN.
///   StepNBrVZ       Imm statement charges followed by a BrVZ (an if
///                   test after its enclosing Seq charges; while heads
///                   are jump targets and stay unfused).
///   StepSet2Lit     two consecutive constant assignments, charges
///                   included: charge as Step<X>, slot A = Imm, then
///                   charge 1 + (Arg >> 16) more, slot (Arg & 0xFFFF) =
///                   Str (the second literal rides in the Str field —
///                   SetLit has no fault detail to store there).
///   IncLoopBrNZ     a whole loop iteration boundary in one op: a
///                   StepIncLoopJump latch whose target is a BrVZStepN
///                   head testing the same slot, with the head's exit
///                   equal to the latch's fall-through. Charges and
///                   updates like StepIncLoopJump, then runs the head
///                   test inline: on nonzero, charge the body's run
///                   (Arg >> 24) and jump to Arg & 0xFFFFFF (the op
///                   after the head); on zero fall through to the exit.
///                   Produced by a final 1:1 substitution (the head
///                   stays for the loop-entry path), so its packed Arg
///                   is never remapped.
#define B2_BC_OP_LIST(X)                                                     \
  X(PushLit) X(PushVar) X(LoadMem) X(Binop) X(SetVar) X(StoreMem) X(Jump)    \
  X(JumpIfZero) X(StepStmt) X(StepLoop) X(CheckInv) X(MeasReset)             \
  X(MeasCheck) X(CallBind) X(CallDrop) X(InteractExt) X(EnterAlloc)          \
  X(LeaveAlloc) X(StaticFault) X(CheckPre) X(CheckPost) X(CollectRet)        \
  X(Return) X(SetLit) X(MoveVar) X(BinopVV) X(BinopVVS) X(BinopVI)           \
  X(BinopVIS) X(BinopSI) X(BinopSIS) X(BinopSV) X(BinopSVS) X(BinopSS)       \
  X(LoadV) X(LoadVS) X(LoadS) X(StoreVV) X(StoreVI) X(Push2VL) X(FoldSI)     \
  X(FoldVV) X(FoldVI) X(BinopLoad) X(BinopVILoad) X(StepPushLit)             \
  X(StepPushVar) X(StepSetLit) X(StepMoveVar) X(StepBinopVV) X(StepBinopVVS) \
  X(StepBinopVI) X(StepBinopVIS) X(StepLoadV) X(StepLoadVS) X(StepStoreVV)   \
  X(StepStoreVI) X(StepEnterAlloc) X(StepCallBind) X(StepPush2VL)            \
  X(StepLoopJump) X(StepN) X(StepSet2Lit) X(StepIncLoopJump) X(IncLoopBrNZ)  \
  X(BrVZStepN) X(StepNBrVZ) X(BrVZ) X(BrVVZ) X(BrVIZ) X(BrSIZ) X(BrSVZ)      \
  X(BrSSZ)

enum class Op : uint8_t {
#define B2_BC_OP_ENUM(N) N,
  B2_BC_OP_LIST(B2_BC_OP_ENUM)
#undef B2_BC_OP_ENUM
};

/// One instruction; 16 bytes, trivially copyable.
struct Insn {
  Op K;
  uint8_t U8 = 0;    ///< Access size / BinOp / Fault kind.
  uint16_t A = 0;    ///< Frame slot / dst-list index / measure index.
  uint32_t Arg = 0;  ///< Jump target / function / site index.
  uint32_t Str = 0;  ///< Interned fault-detail string index.
  Word Imm = 0;      ///< Literal value.
};

/// A resolved internal call site: callee index plus the destination
/// slots its result tuple binds to (arity already checked — mismatches
/// compile to CallDrop + StaticFault instead).
struct CallSite {
  uint32_t Fn = 0;
  std::vector<uint16_t> Dsts;
};

/// An Interact site: everything the runtime needs that is known at
/// compile time, with the two static fault details preformatted.
struct InteractSite {
  std::string Action;
  uint32_t NumArgs = 0;
  std::vector<uint16_t> Dsts;
  uint32_t BindDetail = 0; ///< "external '...' binds N results".
};

/// A stackalloc site (size already validated; invalid sizes compile to
/// StaticFault instead).
struct AllocSite {
  uint16_t VarSlot = 0;
  Word NBytes = 0;
};

} // namespace bc

/// Reusable execution arenas. A caller that makes many calls against one
/// BytecodeProgram (Interp, the benches, the fuzz harnesses) passes the
/// same scratch to every run() so the operand stack and frame arenas
/// keep their capacity instead of re-allocating from empty on each call
/// — per-call setup cost matters when the average call is only a few
/// thousand steps. Holds no call state between runs, only capacity.
struct ExecScratch {
  std::vector<Word> Stack;
  std::vector<Word> Slots;
  std::vector<uint8_t> Bound;
  std::vector<Word> MeasVal;
  std::vector<uint8_t> MeasHave;
  std::vector<std::pair<Word, Word>> AllocScopes;
};

/// A whole bedrock2::Program compiled to bytecode. Compilation never
/// fails; see the file comment for how statically-detected faults are
/// represented.
class BytecodeProgram {
public:
  explicit BytecodeProgram(const Program &P);

  /// Runs \p Fn(\p Args) to completion under the same checking semantics
  /// as Interp's reference walker, against \p Mem and \p Ext. \p Scratch,
  /// when given, supplies reusable arenas (see ExecScratch).
  ExecResult run(const std::string &Fn, const std::vector<Word> &Args,
                 ExtSpec &Ext, Footprint &Mem, uint64_t Fuel,
                 const StackallocPolicy &Policy,
                 ExecScratch *Scratch = nullptr) const;

  /// Static shape, for benches and tests.
  size_t numFunctions() const { return Funcs.size(); }
  size_t numInstructions() const;

private:
  struct BcFunction {
    std::string Name;
    uint32_t NumParams = 0;
    uint32_t NumRets = 0;
    uint32_t NumSlots = 0;
    uint32_t NumMeasures = 0;
    /// Maximum operand-stack depth of one activation, computed during
    /// compilation — lets the executor reserve a frame's whole stack
    /// window up front and push/pop through a raw pointer.
    uint32_t MaxStack = 0;
    std::vector<bc::Insn> Code;
  };

  std::vector<BcFunction> Funcs;
  std::map<std::string, uint32_t> Index;
  std::vector<std::string> Strings;
  std::vector<bc::CallSite> Calls;
  std::vector<bc::InteractSite> Interacts;
  std::vector<bc::AllocSite> Allocs;

  class Compiler;
  struct Exec;
};

} // namespace bedrock2
} // namespace b2

#endif // B2_BEDROCK2_BYTECODE_H
