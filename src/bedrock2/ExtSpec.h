//===- bedrock2/ExtSpec.h - External-call semantics parameter --*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The semantics of the source language are parameterized over the
/// behavior of these external calls" (section 6.1). An ExtSpec both
/// *checks the contract* of each call (the executable counterpart of the
/// paper's `vcextern` precondition) and *supplies the runtime behavior*
/// (which the paper models as nondeterministic input and we resolve with
/// a device model).
///
/// The MMIO instantiation enforces exactly the paper's side conditions:
/// the address must be within the platform's MMIO range and naturally
/// aligned — "the source-code-level verification condition for an MMIO
/// external call still needs to restrict the address to be within MMIO
/// range."
///
//===----------------------------------------------------------------------===//

#ifndef B2_BEDROCK2_EXTSPEC_H
#define B2_BEDROCK2_EXTSPEC_H

#include "riscv/Mmio.h"
#include "support/Word.h"

#include <string>
#include <vector>

namespace b2 {
namespace bedrock2 {

/// One entry of the source-level interaction trace: external procedure
/// name, argument values, and result values.
struct IoEvent {
  std::string Action;
  std::vector<Word> Args;
  std::vector<Word> Rets;
};

inline bool operator==(const IoEvent &A, const IoEvent &B) {
  return A.Action == B.Action && A.Args == B.Args && A.Rets == B.Rets;
}

using IoTrace = std::vector<IoEvent>;

class Footprint;

/// The external-call parameter of the source semantics.
///
/// "External procedures can update the memory (and such updates are
/// recorded in the trace)" (section 5.2) — the \p Mem parameter gives an
/// instance that power, which is what makes DMA-style external calls
/// (section 6.2: recording memory-ownership changes in the I/O trace)
/// expressible. The lightbulb's MMIO instance does not use it, exactly
/// as in the paper.
class ExtSpec {
public:
  virtual ~ExtSpec();

  struct Outcome {
    bool Ok = true;
    std::string Error;        ///< Contract violation description when !Ok.
    std::vector<Word> Rets;   ///< Result tuple when Ok.
  };

  /// Performs (and contract-checks) one external call. \p Mem is the
  /// program's owned footprint; an instance may grant, revoke, or write
  /// memory through it.
  virtual Outcome call(const std::string &Action,
                       const std::vector<Word> &Args, Footprint &Mem) = 0;
};

/// The lightbulb platform's instantiation: actions MMIOREAD (addr) -> val
/// and MMIOWRITE (addr, val) -> (), backed by a device and mirrored into
/// an MMIO event trace so that source-level and machine-level executions
/// can be compared event by event.
class MmioExtSpec final : public ExtSpec {
public:
  /// \p Device answers the MMIO accesses; \p RamBytes is the size of the
  /// physical memory (the external invariant of section 6.3 demands MMIO
  /// not overlap it, which the contract check enforces).
  MmioExtSpec(riscv::MmioDevice &Device, Word RamBytes)
      : Device(Device), RamBytes(RamBytes) {}

  Outcome call(const std::string &Action, const std::vector<Word> &Args,
               Footprint &Mem) override;

  /// The MMIO events performed so far ("ld"/"st" triples).
  const riscv::MmioTrace &mmioTrace() const { return Trace; }

private:
  riscv::MmioDevice &Device;
  Word RamBytes;
  riscv::MmioTrace Trace;
};

} // namespace bedrock2
} // namespace b2

#endif // B2_BEDROCK2_EXTSPEC_H
