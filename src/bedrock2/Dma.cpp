//===- bedrock2/Dma.cpp - DMA-style external calls ----------------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bedrock2/Dma.h"

#include "bedrock2/Semantics.h"
#include "support/Format.h"

using namespace b2;
using namespace b2::bedrock2;

ExtSpec::Outcome DmaExtSpec::call(const std::string &Action,
                                  const std::vector<Word> &Args,
                                  Footprint &Mem) {
  Outcome Out;
  if (Action == "DMA_RECV") {
    if (!Args.empty()) {
      Out.Ok = false;
      Out.Error = "DMA_RECV takes no arguments";
      return Out;
    }
    if (Queue.empty()) {
      Out.Rets = {0, 0}; // No pending buffer.
      return Out;
    }
    std::vector<uint8_t> Data = std::move(Queue.front());
    Queue.pop_front();
    Word Len = Word(Data.size());
    Word Padded = (Len + 3) & ~Word(3);
    NextBase -= Padded;
    Word Addr = NextBase;
    // The ownership change: the device's memory becomes the program's.
    Mem.own(Addr, Padded);
    for (Word I = 0; I != Len; ++I)
      Mem.write(Addr + I, Data[I]);
    Grants[Addr] = Padded;
    Out.Rets = {Addr, Len};
    return Out;
  }
  if (Action == "DMA_RELEASE") {
    if (Args.size() != 2) {
      Out.Ok = false;
      Out.Error = "DMA_RELEASE takes (addr, len)";
      return Out;
    }
    auto It = Grants.find(Args[0]);
    Word Padded = (Args[1] + 3) & ~Word(3);
    if (It == Grants.end() || It->second != Padded) {
      // vcextern: releasing memory the device never granted (or twice)
      // would let the program forge ownership transfers.
      Out.Ok = false;
      Out.Error = "DMA_RELEASE of a non-live grant at " +
                  support::hex32(Args[0]);
      return Out;
    }
    // The ownership change back: the program loses the buffer.
    Mem.disown(It->first, It->second);
    Grants.erase(It);
    return Out;
  }
  return Inner.call(Action, Args, Mem);
}
