//===- bedrock2/Semantics.h - Checking interpreter -------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the paper's program logic (section 4.1):
/// an interpreter for Bedrock2 that *checks*, at every step, the side
/// conditions that `vcgen` would emit as proof obligations —
///
///  * every load and store touches only memory the program owns
///    (separation-logic footprint discipline; the word-count/byte-count
///    driver bug of section 3 is caught here as an ownership violation);
///  * word and halfword accesses are naturally aligned;
///  * variables are bound before use, calls match arities;
///  * external calls satisfy their `vcextern` contracts (bedrock2/ExtSpec.h);
///  * execution terminates within the provided fuel ("we only model
///    behavior of terminating programs ... implicitly identifying
///    nontermination with undefined behavior", section 5.2).
///
/// On the paper's CPS semantics (section 4): the Coq development phrases
/// evaluation as derivations `(c, t, m, l) ⇓ Q` so that *all* possible
/// executions under nondeterminism are covered by one derivation. In this
/// executable reproduction the ExtSpec resolves the input nondeterminism
/// and the Stackalloc policy resolves the internal nondeterminism, so one
/// run computes one concrete execution; checkers quantify over
/// nondeterminism by re-running with varied policies (see
/// verify/CompilerDiff.h).
///
//===----------------------------------------------------------------------===//

#ifndef B2_BEDROCK2_SEMANTICS_H
#define B2_BEDROCK2_SEMANTICS_H

#include "bedrock2/Ast.h"
#include "bedrock2/ExtSpec.h"
#include "support/Word.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace b2 {
namespace bedrock2 {

/// Why an execution failed to be well-defined.
enum class Fault : uint8_t {
  None,
  UnboundVariable,
  LoadOutsideFootprint,
  StoreOutsideFootprint,
  MisalignedAccess,
  UnknownFunction,
  ArityMismatch,
  ExtContractViolation, ///< vcextern precondition failed.
  OutOfFuel,            ///< Suspected divergence (totality violation).
  StackallocMisuse,     ///< Bad size or nested shadowing.
  PreconditionFailed,   ///< A callee's `requires` clause was violated.
  PostconditionFailed,  ///< A function's `ensures` clause was violated.
  InvariantViolated,    ///< A loop invariant did not hold at the test.
  MeasureNotDecreasing, ///< A loop measure failed to strictly decrease.
};

const char *faultName(Fault F);

/// Byte-granular owned memory: the Bedrock2-owned footprint. Sparse, so
/// ownership of disjoint regions anywhere in the address space can be
/// modeled (the memory is "a global (not necessarily contiguous) address
/// space of bytes", section 5.2).
class Footprint {
public:
  /// Grants ownership of [Addr, Addr+Len) initialized to zero.
  void own(Word Addr, Word Len);

  /// Revokes ownership of [Addr, Addr+Len) (stackalloc scope exit).
  void disown(Word Addr, Word Len);

  bool owns(Word Addr, Word Len) const;

  /// Unchecked accessors; callers must have verified ownership.
  uint8_t read(Word Addr) const;
  void write(Word Addr, uint8_t V);

  Word readLe(Word Addr, unsigned Size) const;
  void writeLe(Word Addr, unsigned Size, Word V);

  /// Number of owned bytes (tests).
  size_t size() const { return Bytes.size(); }

private:
  std::unordered_map<Word, uint8_t> Bytes;
};

/// Policy resolving stackalloc's internal nondeterminism: where the next
/// allocation lands. Varying \p Salt across runs checks that programs do
/// not depend on the unspecified choice.
struct StackallocPolicy {
  Word Base = 0x00F00000; ///< Grows downward from here.
  Word Salt = 0;          ///< Extra offset mixed into every address.
};

/// Result of running a Bedrock2 function.
struct ExecResult {
  Fault F = Fault::None;
  std::string Detail;        ///< Human-readable fault context.
  std::vector<Word> Rets;    ///< Return tuple (valid when F == None).
  IoTrace Trace;             ///< Interaction trace (valid prefix even on fault).
  uint64_t StepsUsed = 0;
  uint64_t DivByZeroCount = 0; ///< Divisions/remainders by zero observed
                               ///< (unspecified in source semantics).

  bool ok() const { return F == Fault::None; }
};

/// The interpreter.
class Interp {
public:
  /// \p Ext supplies and checks external calls; \p Fuel bounds the total
  /// statement steps (totality check).
  Interp(const Program &P, ExtSpec &Ext, uint64_t Fuel = 10'000'000,
         const StackallocPolicy &Policy = StackallocPolicy());

  /// Grants the program ownership of [Addr, Addr+Len) before execution
  /// (e.g. a static scratch buffer).
  void ownMemory(Word Addr, Word Len) { Mem.own(Addr, Len); }

  /// Calls \p FuncName with \p Args and runs it to completion.
  ExecResult callFunction(const std::string &FuncName,
                          const std::vector<Word> &Args);

  /// Direct access to the owned memory (tests).
  Footprint &memory() { return Mem; }

private:
  using Locals = std::unordered_map<std::string, Word>;

  const Program &Prog;
  ExtSpec &Ext;
  uint64_t Fuel;
  StackallocPolicy Policy;
  Footprint Mem;
  Word StackNext = 0;
  ExecResult Result; ///< Accumulates trace/fault during a call.

  bool fault(Fault F, std::string Detail);
  bool evalExpr(const Expr &E, const Locals &L, Word &Out);
  bool execStmt(const Stmt &S, Locals &L);
  bool execCall(const std::string &Callee,
                const std::vector<Word> &ArgVals, std::vector<Word> &Rets);
};

} // namespace bedrock2
} // namespace b2

#endif // B2_BEDROCK2_SEMANTICS_H
