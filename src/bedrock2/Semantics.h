//===- bedrock2/Semantics.h - Checking interpreter -------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the paper's program logic (section 4.1):
/// an interpreter for Bedrock2 that *checks*, at every step, the side
/// conditions that `vcgen` would emit as proof obligations —
///
///  * every load and store touches only memory the program owns
///    (separation-logic footprint discipline; the word-count/byte-count
///    driver bug of section 3 is caught here as an ownership violation);
///  * word and halfword accesses are naturally aligned;
///  * variables are bound before use, calls match arities;
///  * external calls satisfy their `vcextern` contracts (bedrock2/ExtSpec.h);
///  * execution terminates within the provided fuel ("we only model
///    behavior of terminating programs ... implicitly identifying
///    nontermination with undefined behavior", section 5.2).
///
/// On the paper's CPS semantics (section 4): the Coq development phrases
/// evaluation as derivations `(c, t, m, l) ⇓ Q` so that *all* possible
/// executions under nondeterminism are covered by one derivation. In this
/// executable reproduction the ExtSpec resolves the input nondeterminism
/// and the Stackalloc policy resolves the internal nondeterminism, so one
/// run computes one concrete execution; checkers quantify over
/// nondeterminism by re-running with varied policies (see
/// verify/CompilerDiff.h).
///
/// Two execution engines implement these semantics: the AST walker in this
/// file (the reference) and the bytecode fast path (bedrock2/Bytecode.h).
/// ExecMode selects reference, fast, or differential-both; in differential
/// mode every callFunction runs both engines and demands bit-identical
/// ExecResults, making the bytecode path a second semantics witness in the
/// same style as the ISA simulator's decode cache (DESIGN.md section 4).
///
//===----------------------------------------------------------------------===//

#ifndef B2_BEDROCK2_SEMANTICS_H
#define B2_BEDROCK2_SEMANTICS_H

#include "bedrock2/Ast.h"
#include "bedrock2/ExtSpec.h"
#include "support/Word.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace b2 {
namespace bedrock2 {

class BytecodeProgram;
struct ExecScratch;

/// Why an execution failed to be well-defined.
enum class Fault : uint8_t {
  None,
  UnboundVariable,
  LoadOutsideFootprint,
  StoreOutsideFootprint,
  MisalignedAccess,
  UnknownFunction,
  ArityMismatch,
  ExtContractViolation, ///< vcextern precondition failed.
  OutOfFuel,            ///< Suspected divergence (totality violation).
  StackallocMisuse,     ///< Bad size or nested shadowing.
  PreconditionFailed,   ///< A callee's `requires` clause was violated.
  PostconditionFailed,  ///< A function's `ensures` clause was violated.
  InvariantViolated,    ///< A loop invariant did not hold at the test.
  MeasureNotDecreasing, ///< A loop measure failed to strictly decrease.
};

const char *faultName(Fault F);

/// Byte-granular owned memory: the Bedrock2-owned footprint. Sparse, so
/// ownership of disjoint regions anywhere in the address space can be
/// modeled (the memory is "a global (not necessarily contiguous) address
/// space of bytes", section 5.2).
///
/// Storage is page-backed (4 KiB pages allocated on first ownership) with
/// ownership tracked separately as a coalesced interval set, so
/// `own`/`disown`/`owns` are O(intervals touched) and `readLe`/`writeLe`
/// are O(1) — instead of one hash-map operation per byte. All address
/// arithmetic wraps at 2^32, exactly like the per-byte map it replaces.
class Footprint {
public:
  Footprint() = default;
  // Copies must not share the page cache: the cached pointer aims into
  // *this* object's page table. Moves keep it (map nodes move over).
  Footprint(const Footprint &O);
  Footprint &operator=(const Footprint &O);
  Footprint(Footprint &&) = default;
  Footprint &operator=(Footprint &&) = default;

  /// Grants ownership of [Addr, Addr+Len) initialized to zero. Re-owning
  /// an already-owned byte re-zeroes it (the historical per-byte-map
  /// behavior, relied on by stackalloc's fresh-buffer guarantee).
  void own(Word Addr, Word Len);

  /// Revokes ownership of [Addr, Addr+Len) (stackalloc scope exit).
  /// Revoking unowned bytes is a no-op, as with per-byte erase.
  void disown(Word Addr, Word Len);

  /// The hot-path accessors are defined inline below: both checking
  /// engines call owns + readLe/writeLe on every load and store, and the
  /// one-entry caches satisfy nearly all of those — only misses pay for
  /// an out-of-line call.
  bool owns(Word Addr, Word Len) const {
    const uint64_t Start = Addr;
    // OwnCacheHi never exceeds 2^32, so a cache hit is always a
    // non-wrapping query; wrapping ones fall through to the slow path.
    if (OwnCacheLo <= Start && Start + Len <= OwnCacheHi)
      return true;
    return ownsSlow(Addr, Len);
  }

  /// Unchecked accessors; callers must have verified ownership.
  uint8_t read(Word Addr) const;
  void write(Word Addr, uint8_t V);

  Word readLe(Word Addr, unsigned Size) const {
    const Word Off = Addr & (PageBytes - 1);
    // CachedIdx starts at ~0, which no real page index (Addr >> 12)
    // reaches, so a match implies CachedPage is valid.
    if ((Addr >> PageShift) == CachedIdx && Off + Size <= PageBytes) {
      const uint8_t *B = CachedPage->data() + Off;
      Word V = 0;
      for (unsigned I = 0; I != Size; ++I)
        V |= Word(B[I]) << (8 * I);
      return V;
    }
    return readLeSlow(Addr, Size);
  }

  void writeLe(Word Addr, unsigned Size, Word V) {
    const Word Off = Addr & (PageBytes - 1);
    if ((Addr >> PageShift) == CachedIdx && Off + Size <= PageBytes) {
      ++Epoch;
      uint8_t *B = CachedPage->data() + Off;
      for (unsigned I = 0; I != Size; ++I)
        B[I] = uint8_t((V >> (8 * I)) & 0xFF);
      return;
    }
    writeLeSlow(Addr, Size, V);
  }

  /// Number of owned bytes (tests).
  size_t size() const { return OwnedBytes; }

  /// The coalesced ownership intervals as (start, length) pairs in
  /// ascending address order. A length of 0 encodes the degenerate
  /// whole-address-space interval.
  std::vector<std::pair<Word, Word>> intervals() const;

  /// True iff \p O owns exactly the same bytes with the same contents
  /// (the differential-mode memory comparison).
  bool identical(const Footprint &O) const;

  /// Monotonic counter bumped by every mutating operation. Lets the
  /// differential recorder detect external calls that touch memory
  /// (DMA-style grants) without snapshotting around every call.
  uint64_t mutationEpoch() const { return Epoch; }

private:
  static constexpr unsigned PageShift = 12;
  static constexpr Word PageBytes = Word(1) << PageShift;

  /// Page index -> backing bytes. Pages are never freed while the
  /// Footprint lives; ownership is gated by the interval set alone.
  /// unordered_map nodes are stable, so cached page pointers survive
  /// rehashing.
  std::unordered_map<Word, std::vector<uint8_t>> Pages;

  /// Owned [start, end) intervals over the linear 0..2^32 byte space,
  /// disjoint, non-adjacent (always coalesced), and sorted by start.
  /// Ranges that wrap the 2^32 boundary are stored split. A flat sorted
  /// vector, not a tree: footprints hold a handful of intervals (RAM
  /// grants plus live stackallocs), so binary search plus memmove beats
  /// per-node heap traffic — stackalloc enter/exit churns this set on
  /// every frame.
  std::vector<std::pair<uint64_t, uint64_t>> Intervals;

  size_t OwnedBytes = 0;
  uint64_t Epoch = 0;

  /// One-entry page cache for the hot readLe/writeLe path.
  mutable Word CachedIdx = ~Word(0);
  mutable std::vector<uint8_t> *CachedPage = nullptr;

  /// One-entry interval cache for the hot owns() path: the last interval
  /// that satisfied a query (empty when Lo > Hi). Repeated accesses into
  /// the same stackalloc buffer or RAM grant skip the tree lookup.
  /// Invalidated whenever the interval set changes.
  mutable uint64_t OwnCacheLo = 1;
  mutable uint64_t OwnCacheHi = 0;

  std::vector<uint8_t> &pageFor(Word Addr);
  const std::vector<uint8_t> *findPage(Word Addr) const;
  bool ownsSlow(Word Addr, Word Len) const;
  Word readLeSlow(Word Addr, unsigned Size) const;
  void writeLeSlow(Word Addr, unsigned Size, Word V);
  void ownRange(uint64_t Start, uint64_t End);
  void disownRange(uint64_t Start, uint64_t End);
  bool ownsRange(uint64_t Start, uint64_t End) const;
  void zeroRange(uint64_t Start, uint64_t End);
};

/// Policy resolving stackalloc's internal nondeterminism: where the next
/// allocation lands. Varying \p Salt across runs checks that programs do
/// not depend on the unspecified choice.
struct StackallocPolicy {
  Word Base = 0x00F00000; ///< Grows downward from here.
  Word Salt = 0;          ///< Extra offset mixed into every address.
};

/// Result of running a Bedrock2 function.
struct ExecResult {
  Fault F = Fault::None;
  std::string Detail;        ///< Human-readable fault context.
  std::vector<Word> Rets;    ///< Return tuple (valid when F == None).
  IoTrace Trace;             ///< Interaction trace (valid prefix even on fault).
  uint64_t StepsUsed = 0;
  uint64_t DivByZeroCount = 0; ///< Divisions/remainders by zero observed
                               ///< (unspecified in source semantics).

  bool ok() const { return F == Fault::None; }
};

/// Which engine(s) execute the checking semantics.
enum class ExecMode : uint8_t {
  Reference,    ///< The AST walker (ground truth).
  Fast,         ///< The compiled bytecode path (bedrock2/Bytecode.h).
  Differential, ///< Both, with bit-identical-ExecResult checking; the
                ///< reference run is authoritative for state and result.
};

const char *execModeName(ExecMode M);

/// The interpreter.
class Interp {
public:
  /// \p Ext supplies and checks external calls; \p Fuel bounds the total
  /// statement steps (totality check).
  Interp(const Program &P, ExtSpec &Ext, uint64_t Fuel = 10'000'000,
         const StackallocPolicy &Policy = StackallocPolicy(),
         ExecMode Mode = ExecMode::Reference);
  ~Interp();

  /// Grants the program ownership of [Addr, Addr+Len) before execution
  /// (e.g. a static scratch buffer).
  void ownMemory(Word Addr, Word Len) { Mem.own(Addr, Len); }

  /// Selects the execution engine for subsequent callFunction calls.
  void setMode(ExecMode M) { Mode = M; }
  ExecMode mode() const { return Mode; }

  /// Calls \p FuncName with \p Args and runs it to completion.
  ExecResult callFunction(const std::string &FuncName,
                          const std::vector<Word> &Args);

  /// Direct access to the owned memory (tests).
  Footprint &memory() { return Mem; }

  /// Differential mode: description of every divergence between the
  /// reference and bytecode engines observed so far (empty == the two
  /// semantics witnesses agree bit for bit).
  const std::string &divergence() const { return Divergences; }
  uint64_t divergenceCount() const { return NumDivergences; }

private:
  using Locals = std::unordered_map<std::string, Word>;

  const Program &Prog;
  ExtSpec &Ext;
  uint64_t Fuel;
  StackallocPolicy Policy;
  ExecMode Mode;
  Footprint Mem;
  Word StackNext = 0;
  ExecResult Result; ///< Accumulates trace/fault during a call.
  ExtSpec *ActiveExt = nullptr; ///< Ext for the current reference run
                                ///< (swapped for a recorder in
                                ///< differential mode).
  std::unique_ptr<BytecodeProgram> Bc; ///< Lazily compiled fast path.
  std::unique_ptr<ExecScratch> Scratch; ///< Reusable fast-path arenas.
  std::string Divergences;
  uint64_t NumDivergences = 0;

  const BytecodeProgram &compiled();
  ExecResult runReference(const std::string &FuncName,
                          const std::vector<Word> &Args);
  bool fault(Fault F, std::string Detail);
  bool evalExpr(const Expr &E, const Locals &L, Word &Out);
  bool execStmt(const Stmt &S, Locals &L);
  bool execCall(const std::string &Callee,
                const std::vector<Word> &ArgVals, std::vector<Word> &Rets);
};

} // namespace bedrock2
} // namespace b2

#endif // B2_BEDROCK2_SEMANTICS_H
