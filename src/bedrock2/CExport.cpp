//===- bedrock2/CExport.cpp - Export Bedrock2 to C ---------------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bedrock2/CExport.h"

#include "support/Format.h"

#include <cassert>
#include <set>

using namespace b2;
using namespace b2::bedrock2;
using namespace b2::support;

namespace {

std::string cTypeFor(unsigned Size) {
  switch (Size) {
  case 1:
    return "uint8_t";
  case 2:
    return "uint16_t";
  case 4:
    return "uint32_t";
  default:
    assert(false && "bad access size");
    return "uint32_t";
  }
}

const char *cBinOp(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Divu:
    return "/";
  case BinOp::Remu:
    return "%";
  case BinOp::And:
    return "&";
  case BinOp::Or:
    return "|";
  case BinOp::Xor:
    return "^";
  case BinOp::Sru:
    return ">>";
  case BinOp::Slu:
    return "<<";
  case BinOp::Ltu:
    return "<";
  case BinOp::Eq:
    return "==";
  default:
    return nullptr; // MulHuu/Srs/Lts need casts; handled separately.
  }
}

std::string emitExpr(const Expr &E);

std::string emitBin(const Expr &E) {
  std::string A = emitExpr(*E.A);
  std::string B = emitExpr(*E.B);
  switch (E.Op) {
  case BinOp::MulHuu:
    return "(uintptr_t)(((uint64_t)" + A + " * (uint64_t)" + B + ") >> 32)";
  case BinOp::Srs:
    return "(uintptr_t)((intptr_t)" + A + " >> " + B + ")";
  case BinOp::Lts:
    return "((intptr_t)" + A + " < (intptr_t)" + B + ")";
  case BinOp::Divu:
    // Bedrock2 allows division by zero (RISC-V semantics); C does not.
    return "_br2_divu(" + A + ", " + B + ")";
  case BinOp::Remu:
    return "_br2_remu(" + A + ", " + B + ")";
  default: {
    const char *Op = cBinOp(E.Op);
    assert(Op && "operator should have a direct C spelling");
    return "(" + A + " " + Op + " " + B + ")";
  }
  }
}

std::string emitExpr(const Expr &E) {
  switch (E.K) {
  case Expr::Kind::Literal:
    return "(uintptr_t)" + hex32(E.Lit) + "u";
  case Expr::Kind::Var:
    return E.Name;
  case Expr::Kind::Load:
    return "(uintptr_t)(*(" + cTypeFor(E.Size) + " const *)(" +
           emitExpr(*E.A) + "))";
  case Expr::Kind::Op:
    return emitBin(E);
  }
  return "0";
}

void collectLocals(const Stmt &S, std::set<std::string> &Out) {
  switch (S.K) {
  case Stmt::Kind::Set:
    Out.insert(S.Var);
    return;
  case Stmt::Kind::If:
    collectLocals(*S.S1, Out);
    collectLocals(*S.S2, Out);
    return;
  case Stmt::Kind::While:
    collectLocals(*S.S1, Out);
    return;
  case Stmt::Kind::Seq:
    collectLocals(*S.S1, Out);
    collectLocals(*S.S2, Out);
    return;
  case Stmt::Kind::Call:
  case Stmt::Kind::Interact:
    for (const std::string &D : S.Dsts)
      Out.insert(D);
    return;
  case Stmt::Kind::Stackalloc:
    Out.insert(S.Var);
    collectLocals(*S.S1, Out);
    return;
  case Stmt::Kind::Skip:
  case Stmt::Kind::Store:
    return;
  }
}

struct Emitter {
  std::string Out;
  unsigned AllocCounter = 0;

  void line(unsigned Indent, const std::string &S) {
    Out += std::string(Indent * 2, ' ') + S + "\n";
  }

  void emitCallLike(unsigned Indent, const Stmt &S, bool IsExtern) {
    // First result via return value, remaining via out-pointers.
    std::string CallExpr;
    if (IsExtern) {
      assert((S.Callee == "MMIOREAD" || S.Callee == "MMIOWRITE") &&
             "unknown external call in C export");
      if (S.Callee == "MMIOREAD") {
        CallExpr = "(*(volatile uint32_t *)(" + emitExpr(*S.Args[0]) + "))";
      } else {
        line(Indent, "*(volatile uint32_t *)(" + emitExpr(*S.Args[0]) +
                         ") = (uint32_t)(" + emitExpr(*S.Args[1]) + ");");
        return;
      }
    } else {
      CallExpr = S.Callee + "(";
      bool FirstArg = true;
      for (const ExprPtr &A : S.Args) {
        if (!FirstArg)
          CallExpr += ", ";
        CallExpr += emitExpr(*A);
        FirstArg = false;
      }
      for (size_t I = 1; I < S.Dsts.size(); ++I) {
        if (!FirstArg || I > 1)
          CallExpr += ", ";
        CallExpr += "&" + S.Dsts[I];
        FirstArg = false;
      }
      CallExpr += ")";
    }
    if (S.Dsts.empty())
      line(Indent, CallExpr + ";");
    else
      line(Indent, S.Dsts[0] + " = " + CallExpr + ";");
  }

  void emitStmt(unsigned Indent, const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Skip:
      line(Indent, "/* skip */;");
      return;
    case Stmt::Kind::Set:
      line(Indent, S.Var + " = " + emitExpr(*S.Value) + ";");
      return;
    case Stmt::Kind::Store:
      line(Indent, "*(" + cTypeFor(S.Size) + " *)(" + emitExpr(*S.Addr) +
                       ") = (" + cTypeFor(S.Size) + ")(" +
                       emitExpr(*S.Value) + ");");
      return;
    case Stmt::Kind::If:
      line(Indent, "if (" + emitExpr(*S.Cond) + ") {");
      emitStmt(Indent + 1, *S.S1);
      line(Indent, "} else {");
      emitStmt(Indent + 1, *S.S2);
      line(Indent, "}");
      return;
    case Stmt::Kind::While:
      line(Indent, "while (" + emitExpr(*S.Cond) + ") {");
      emitStmt(Indent + 1, *S.S1);
      line(Indent, "}");
      return;
    case Stmt::Kind::Seq:
      emitStmt(Indent, *S.S1);
      emitStmt(Indent, *S.S2);
      return;
    case Stmt::Kind::Call:
      emitCallLike(Indent, S, /*IsExtern=*/false);
      return;
    case Stmt::Kind::Interact:
      emitCallLike(Indent, S, /*IsExtern=*/true);
      return;
    case Stmt::Kind::Stackalloc: {
      std::string Buf = "_stack" + std::to_string(AllocCounter++);
      line(Indent, "{");
      line(Indent + 1, "uint32_t " + Buf + "[" +
                           std::to_string(S.NBytes / 4) + "] = {0};");
      line(Indent + 1, S.Var + " = (uintptr_t)&" + Buf + "[0];");
      emitStmt(Indent + 1, *S.S1);
      line(Indent, "}");
      return;
    }
    }
  }
};

std::string signatureOf(const Function &F) {
  std::string Sig;
  Sig += F.Rets.empty() ? "void" : "uintptr_t";
  Sig += " " + F.Name + "(";
  bool First = true;
  for (const std::string &P : F.Params) {
    if (!First)
      Sig += ", ";
    Sig += "uintptr_t " + P;
    First = false;
  }
  for (size_t I = 1; I < F.Rets.size(); ++I) {
    if (!First)
      Sig += ", ";
    Sig += "uintptr_t *_out_" + F.Rets[I];
    First = false;
  }
  if (First)
    Sig += "void";
  Sig += ")";
  return Sig;
}

} // namespace

std::string b2::bedrock2::exportCFunction(const Function &F) {
  Emitter E;
  E.Out += signatureOf(F) + " {\n";

  std::set<std::string> Locals;
  collectLocals(*F.Body, Locals);
  for (const std::string &R : F.Rets)
    Locals.insert(R);
  for (const std::string &P : F.Params)
    Locals.erase(P);
  for (const std::string &L : Locals)
    E.line(1, "uintptr_t " + L + " = 0;");

  E.emitStmt(1, *F.Body);

  for (size_t I = 1; I < F.Rets.size(); ++I)
    E.line(1, "*_out_" + F.Rets[I] + " = " + F.Rets[I] + ";");
  if (!F.Rets.empty())
    E.line(1, "return " + F.Rets[0] + ";");
  E.Out += "}\n";
  return E.Out;
}

std::string b2::bedrock2::exportC(const Program &P) {
  std::string Out;
  Out += "// Generated by b2stack's Bedrock2-to-C exporter.\n";
  Out += "#include <stdint.h>\n\n";
  Out += "static inline uintptr_t _br2_divu(uintptr_t a, uintptr_t b) {\n"
         "  return b == 0 ? (uintptr_t)-1 : a / b;\n"
         "}\n"
         "static inline uintptr_t _br2_remu(uintptr_t a, uintptr_t b) {\n"
         "  return b == 0 ? a : a % b;\n"
         "}\n\n";
  for (const auto &[Name, F] : P.Functions)
    Out += signatureOf(F) + ";\n";
  Out += "\n";
  for (const auto &[Name, F] : P.Functions)
    Out += exportCFunction(F) + "\n";
  return Out;
}
