//===- bedrock2/Ast.cpp - Bedrock2 abstract syntax --------------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bedrock2/Ast.h"

#include "support/Format.h"

#include <cassert>

using namespace b2;
using namespace b2::bedrock2;
using namespace b2::support;

const char *b2::bedrock2::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::MulHuu:
    return "*h";
  case BinOp::Divu:
    return "/";
  case BinOp::Remu:
    return "%";
  case BinOp::And:
    return "&";
  case BinOp::Or:
    return "|";
  case BinOp::Xor:
    return "^";
  case BinOp::Sru:
    return ">>";
  case BinOp::Slu:
    return "<<";
  case BinOp::Srs:
    return ">>s";
  case BinOp::Lts:
    return "<s";
  case BinOp::Ltu:
    return "<";
  case BinOp::Eq:
    return "==";
  }
  return "?";
}

ExprPtr Expr::literal(Word V) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Literal;
  E->Lit = V;
  return E;
}

ExprPtr Expr::var(std::string Name) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Var;
  E->Name = std::move(Name);
  return E;
}

ExprPtr Expr::load(unsigned Size, ExprPtr Addr) {
  assert((Size == 1 || Size == 2 || Size == 4) && "bad load size");
  auto E = std::make_shared<Expr>();
  E->K = Kind::Load;
  E->Size = Size;
  E->A = std::move(Addr);
  return E;
}

ExprPtr Expr::op(BinOp Op, ExprPtr A, ExprPtr B) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Op;
  E->Op = Op;
  E->A = std::move(A);
  E->B = std::move(B);
  return E;
}

StmtPtr Stmt::skip() {
  auto S = std::make_shared<Stmt>();
  S->K = Kind::Skip;
  return S;
}

StmtPtr Stmt::set(std::string Var, ExprPtr E) {
  auto S = std::make_shared<Stmt>();
  S->K = Kind::Set;
  S->Var = std::move(Var);
  S->Value = std::move(E);
  return S;
}

StmtPtr Stmt::store(unsigned Size, ExprPtr Addr, ExprPtr Value) {
  assert((Size == 1 || Size == 2 || Size == 4) && "bad store size");
  auto S = std::make_shared<Stmt>();
  S->K = Kind::Store;
  S->Size = Size;
  S->Addr = std::move(Addr);
  S->Value = std::move(Value);
  return S;
}

StmtPtr Stmt::ifThenElse(ExprPtr Cond, StmtPtr Then, StmtPtr Else) {
  auto S = std::make_shared<Stmt>();
  S->K = Kind::If;
  S->Cond = std::move(Cond);
  S->S1 = std::move(Then);
  S->S2 = Else ? std::move(Else) : skip();
  return S;
}

StmtPtr Stmt::whileLoop(ExprPtr Cond, StmtPtr Body) {
  auto S = std::make_shared<Stmt>();
  S->K = Kind::While;
  S->Cond = std::move(Cond);
  S->S1 = std::move(Body);
  return S;
}

StmtPtr Stmt::whileLoopAnnotated(ExprPtr Cond, ExprPtr Invariant,
                                 ExprPtr Measure, StmtPtr Body) {
  auto S = std::make_shared<Stmt>();
  S->K = Kind::While;
  S->Cond = std::move(Cond);
  S->Invariant = std::move(Invariant);
  S->Measure = std::move(Measure);
  S->S1 = std::move(Body);
  return S;
}

StmtPtr Stmt::seq(StmtPtr S1, StmtPtr S2) {
  auto S = std::make_shared<Stmt>();
  S->K = Kind::Seq;
  S->S1 = std::move(S1);
  S->S2 = std::move(S2);
  return S;
}

StmtPtr Stmt::block(std::vector<StmtPtr> Stmts) {
  if (Stmts.empty())
    return skip();
  StmtPtr Out = Stmts.back();
  for (size_t I = Stmts.size() - 1; I-- > 0;)
    Out = seq(Stmts[I], Out);
  return Out;
}

StmtPtr Stmt::call(std::vector<std::string> Dsts, std::string Callee,
                   std::vector<ExprPtr> Args) {
  auto S = std::make_shared<Stmt>();
  S->K = Kind::Call;
  S->Dsts = std::move(Dsts);
  S->Callee = std::move(Callee);
  S->Args = std::move(Args);
  return S;
}

StmtPtr Stmt::interact(std::vector<std::string> Dsts, std::string Action,
                       std::vector<ExprPtr> Args) {
  auto S = std::make_shared<Stmt>();
  S->K = Kind::Interact;
  S->Dsts = std::move(Dsts);
  S->Callee = std::move(Action);
  S->Args = std::move(Args);
  return S;
}

StmtPtr Stmt::stackalloc(std::string Var, Word NBytes, StmtPtr Body) {
  assert(NBytes % 4 == 0 && "stackalloc size must be a multiple of 4");
  auto S = std::make_shared<Stmt>();
  S->K = Kind::Stackalloc;
  S->Var = std::move(Var);
  S->NBytes = NBytes;
  S->S1 = std::move(Body);
  return S;
}

// -- Pretty-printing ----------------------------------------------------------

std::string b2::bedrock2::toString(const Expr &E) {
  switch (E.K) {
  case Expr::Kind::Literal:
    return E.Lit >= 1024 ? hex32(E.Lit) : std::to_string(E.Lit);
  case Expr::Kind::Var:
    return E.Name;
  case Expr::Kind::Load:
    return "load" + std::to_string(E.Size) + "(" + toString(*E.A) + ")";
  case Expr::Kind::Op:
    return "(" + toString(*E.A) + " " + binOpName(E.Op) + " " +
           toString(*E.B) + ")";
  }
  return "?";
}

namespace {

std::string indentStr(unsigned Indent) { return std::string(Indent * 2, ' '); }

std::string commaList(const std::vector<std::string> &Names) {
  return join(Names, ", ");
}

std::string argList(const std::vector<ExprPtr> &Args) {
  std::vector<std::string> Parts;
  Parts.reserve(Args.size());
  for (const ExprPtr &A : Args)
    Parts.push_back(toString(*A));
  return join(Parts, ", ");
}

} // namespace

std::string b2::bedrock2::toString(const Stmt &S, unsigned Indent) {
  std::string Pad = indentStr(Indent);
  switch (S.K) {
  case Stmt::Kind::Skip:
    return Pad + "skip;\n";
  case Stmt::Kind::Set:
    return Pad + S.Var + " = " + toString(*S.Value) + ";\n";
  case Stmt::Kind::Store:
    return Pad + "store" + std::to_string(S.Size) + "(" + toString(*S.Addr) +
           ", " + toString(*S.Value) + ");\n";
  case Stmt::Kind::If:
    return Pad + "if (" + toString(*S.Cond) + ") {\n" +
           toString(*S.S1, Indent + 1) + Pad + "} else {\n" +
           toString(*S.S2, Indent + 1) + Pad + "}\n";
  case Stmt::Kind::While: {
    std::string Header = Pad + "while (" + toString(*S.Cond) + ")";
    if (S.Invariant)
      Header += " invariant (" + toString(*S.Invariant) + ")";
    if (S.Measure)
      Header += " measure (" + toString(*S.Measure) + ")";
    return Header + " {\n" + toString(*S.S1, Indent + 1) + Pad + "}\n";
  }
  case Stmt::Kind::Seq:
    return toString(*S.S1, Indent) + toString(*S.S2, Indent);
  case Stmt::Kind::Call: {
    std::string Lhs = S.Dsts.empty() ? "" : commaList(S.Dsts) + " = ";
    return Pad + Lhs + S.Callee + "(" + argList(S.Args) + ");\n";
  }
  case Stmt::Kind::Interact: {
    std::string Lhs = S.Dsts.empty() ? "" : commaList(S.Dsts) + " = ";
    return Pad + Lhs + "extern " + S.Callee + "(" + argList(S.Args) + ");\n";
  }
  case Stmt::Kind::Stackalloc:
    return Pad + "stackalloc " + S.Var + "[" + std::to_string(S.NBytes) +
           "] {\n" + toString(*S.S1, Indent + 1) + Pad + "}\n";
  }
  return Pad + "?\n";
}

std::string b2::bedrock2::toString(const Function &F) {
  std::string Out = "fn " + F.Name + "(" + commaList(F.Params) + ")";
  if (!F.Rets.empty())
    Out += " -> (" + commaList(F.Rets) + ")";
  if (F.Pre)
    Out += "\n  requires (" + toString(*F.Pre) + ")";
  if (F.Post)
    Out += "\n  ensures (" + toString(*F.Post) + ")";
  Out += " {\n" + toString(*F.Body, 1) + "}\n";
  return Out;
}

std::string b2::bedrock2::toString(const Program &P) {
  std::string Out;
  for (const auto &[Name, F] : P.Functions)
    Out += toString(F) + "\n";
  return Out;
}
