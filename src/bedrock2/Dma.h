//===- bedrock2/Dma.h - DMA-style external calls ---------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's unused-but-designed-for extension, implemented: "The same
/// interface is also powerful enough to model direct memory access (DMA),
/// by recording memory-ownership changes in the I/O trace, but we do not
/// make use of this feature in the lightbulb application" (section 6.2),
/// and the conclusion's "external calls that acquire and release logical
/// ownership of memory".
///
/// DmaExtSpec layers two actions over any inner ExtSpec:
///
///   addr, len = DMA_RECV()        If the device has a pending buffer,
///                                 ownership of `len` bytes holding the
///                                 data is *granted* to the program at an
///                                 unspecified address; otherwise
///                                 (0, 0) is returned.
///   DMA_RELEASE(addr, len)        Ownership of a previously granted
///                                 buffer is returned to the device.
///                                 Contract: (addr, len) must be a live
///                                 grant (double release or a forged
///                                 address is a vcextern violation).
///
/// After a release, any program access to the buffer is caught by the
/// footprint discipline — exactly the "acquire and release logical
/// ownership" protocol the paper sketches. Unknown actions are forwarded
/// to the inner ExtSpec, so MMIO and DMA compose.
///
/// The grant address is internal nondeterminism, like stackalloc: the
/// policy salt lets checkers re-run with different placements.
///
//===----------------------------------------------------------------------===//

#ifndef B2_BEDROCK2_DMA_H
#define B2_BEDROCK2_DMA_H

#include "bedrock2/ExtSpec.h"

#include <deque>
#include <map>
#include <vector>

namespace b2 {
namespace bedrock2 {

/// DMA grant/release layered over an inner external-call semantics.
class DmaExtSpec final : public ExtSpec {
public:
  /// \p Inner handles every action other than DMA_RECV/DMA_RELEASE.
  /// Grants are placed downward from \p ArenaBase, offset by \p Salt.
  explicit DmaExtSpec(ExtSpec &Inner, Word ArenaBase = 0x00E00000,
                      Word Salt = 0)
      : Inner(Inner), NextBase(ArenaBase - (Salt & ~Word(3))) {}

  /// Queues an incoming buffer for the next DMA_RECV.
  void queueIncoming(std::vector<uint8_t> Data) {
    Queue.push_back(std::move(Data));
  }

  /// Number of grants the program currently holds (tests).
  size_t liveGrants() const { return Grants.size(); }

  Outcome call(const std::string &Action, const std::vector<Word> &Args,
               Footprint &Mem) override;

private:
  ExtSpec &Inner;
  Word NextBase;
  std::deque<std::vector<uint8_t>> Queue;
  std::map<Word, Word> Grants; ///< addr -> len of live grants.
};

} // namespace bedrock2
} // namespace b2

#endif // B2_BEDROCK2_DMA_H
