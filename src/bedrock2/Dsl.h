//===- bedrock2/Dsl.h - Embedded construction DSL --------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper develops Bedrock2 programs *inside Coq*, using "Coq's
/// notation mechanism ... to the point where we can now write fairly
/// natural-looking C-like code directly within Coq" (section 7.3.1). This
/// header plays the same role in C++: operator overloading and small
/// helpers that make the firmware in app/Firmware.cpp read like C.
///
/// Expressions are wrapped in the value type \c E (rather than the raw
/// shared pointer) so the overloaded operators never collide with
/// std::shared_ptr's own comparisons.
///
/// Usage (see app/Firmware.cpp):
/// \code
///   using namespace b2::bedrock2::dsl;
///   V x("x");
///   StmtPtr Body = block({
///       x = lit(1),
///       whileLoop(x < lit(10), block({x = x + lit(1)})),
///   });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef B2_BEDROCK2_DSL_H
#define B2_BEDROCK2_DSL_H

#include "bedrock2/Ast.h"

#include <string>
#include <utility>
#include <vector>

namespace b2 {
namespace bedrock2 {
namespace dsl {

struct V;

/// A DSL expression: a thin value wrapper around ExprPtr.
struct E {
  ExprPtr P;
  E(ExprPtr P) : P(std::move(P)) {}
  E(const V &Var);

  operator ExprPtr() const { return P; }
};

/// A named Bedrock2 variable.
struct V {
  std::string Name;
  explicit V(std::string Name) : Name(std::move(Name)) {}

  /// Assignment builds a Set statement (also for variable-to-variable
  /// assignment, which would otherwise resolve to the implicit copy
  /// assignment).
  StmtPtr operator=(const E &Rhs) const { return Stmt::set(Name, Rhs.P); }
  StmtPtr operator=(const V &Rhs) const {
    return Stmt::set(Name, Expr::var(Rhs.Name));
  }
};

inline E::E(const V &Var) : P(Expr::var(Var.Name)) {}

inline E lit(Word W) { return E(Expr::literal(W)); }

// Arithmetic and comparison operators mirror Bedrock2's BinOp set.
inline E operator+(E A, E B) { return Expr::op(BinOp::Add, A.P, B.P); }
inline E operator-(E A, E B) { return Expr::op(BinOp::Sub, A.P, B.P); }
inline E operator*(E A, E B) { return Expr::op(BinOp::Mul, A.P, B.P); }
inline E operator&(E A, E B) { return Expr::op(BinOp::And, A.P, B.P); }
inline E operator|(E A, E B) { return Expr::op(BinOp::Or, A.P, B.P); }
inline E operator^(E A, E B) { return Expr::op(BinOp::Xor, A.P, B.P); }
inline E operator>>(E A, E B) { return Expr::op(BinOp::Sru, A.P, B.P); }
inline E operator<<(E A, E B) { return Expr::op(BinOp::Slu, A.P, B.P); }
inline E operator<(E A, E B) { return Expr::op(BinOp::Ltu, A.P, B.P); }
inline E operator==(E A, E B) { return Expr::op(BinOp::Eq, A.P, B.P); }
inline E operator!=(E A, E B) {
  // x != y  ==  (x == y) == 0.
  return Expr::op(BinOp::Eq, Expr::op(BinOp::Eq, A.P, B.P),
                  Expr::literal(0));
}
inline E divu(E A, E B) { return Expr::op(BinOp::Divu, A.P, B.P); }
inline E remu(E A, E B) { return Expr::op(BinOp::Remu, A.P, B.P); }
inline E mulhuu(E A, E B) { return Expr::op(BinOp::MulHuu, A.P, B.P); }
inline E lts(E A, E B) { return Expr::op(BinOp::Lts, A.P, B.P); }
inline E srs(E A, E B) { return Expr::op(BinOp::Srs, A.P, B.P); }

// Memory access.
inline E load1(E Addr) { return Expr::load(1, Addr.P); }
inline E load2(E Addr) { return Expr::load(2, Addr.P); }
inline E load4(E Addr) { return Expr::load(4, Addr.P); }
inline StmtPtr store1(E Addr, E Val) { return Stmt::store(1, Addr.P, Val.P); }
inline StmtPtr store2(E Addr, E Val) { return Stmt::store(2, Addr.P, Val.P); }
inline StmtPtr store4(E Addr, E Val) { return Stmt::store(4, Addr.P, Val.P); }

// Control flow.
inline StmtPtr block(std::vector<StmtPtr> Stmts) {
  return Stmt::block(std::move(Stmts));
}
inline StmtPtr ifThen(E Cond, StmtPtr Then) {
  return Stmt::ifThenElse(Cond.P, std::move(Then), Stmt::skip());
}
inline StmtPtr ifThenElse(E Cond, StmtPtr Then, StmtPtr Else) {
  return Stmt::ifThenElse(Cond.P, std::move(Then), std::move(Else));
}
inline StmtPtr whileLoop(E Cond, StmtPtr Body) {
  return Stmt::whileLoop(Cond.P, std::move(Body));
}
inline StmtPtr whileLoopAnnotated(E Cond, E Invariant, E Measure,
                                  StmtPtr Body) {
  return Stmt::whileLoopAnnotated(Cond.P, Invariant.P, Measure.P,
                                  std::move(Body));
}

namespace detail {
inline std::vector<ExprPtr> unwrap(const std::vector<E> &Args) {
  std::vector<ExprPtr> Out;
  Out.reserve(Args.size());
  for (const E &A : Args)
    Out.push_back(A.P);
  return Out;
}
} // namespace detail

// Calls.
inline StmtPtr call(std::vector<std::string> Dsts, std::string Callee,
                    const std::vector<E> &Args) {
  return Stmt::call(std::move(Dsts), std::move(Callee),
                    detail::unwrap(Args));
}
inline StmtPtr interact(std::vector<std::string> Dsts, std::string Action,
                        const std::vector<E> &Args) {
  return Stmt::interact(std::move(Dsts), std::move(Action),
                        detail::unwrap(Args));
}

/// MMIO conveniences (the platform's two external calls, section 6.1).
inline StmtPtr mmioRead(const V &Dst, E Addr) {
  return Stmt::interact({Dst.Name}, "MMIOREAD", {Addr.P});
}
inline StmtPtr mmioWrite(E Addr, E Value) {
  return Stmt::interact({}, "MMIOWRITE", {Addr.P, Value.P});
}

inline StmtPtr stackalloc(const V &Ptr, Word NBytes, StmtPtr Body) {
  return Stmt::stackalloc(Ptr.Name, NBytes, std::move(Body));
}

/// Builds a function.
inline Function fn(std::string Name, std::vector<std::string> Params,
                   std::vector<std::string> Rets, StmtPtr Body) {
  Function F;
  F.Name = std::move(Name);
  F.Params = std::move(Params);
  F.Rets = std::move(Rets);
  F.Body = std::move(Body);
  return F;
}

/// Builds a function with a requires/ensures contract.
inline Function fnContract(std::string Name, std::vector<std::string> Params,
                           std::vector<std::string> Rets, E Pre, E Post,
                           StmtPtr Body) {
  Function F = fn(std::move(Name), std::move(Params), std::move(Rets),
                  std::move(Body));
  F.Pre = Pre.P;
  F.Post = Post.P;
  return F;
}

} // namespace dsl
} // namespace bedrock2
} // namespace b2

#endif // B2_BEDROCK2_DSL_H
