//===- vc/Wp.h - Weakest-precondition VC generator -------------*- C++ -*-===//
//
// Part of the b2stack project: a C++ reproduction of "Integration
// Verification across Software and Hardware for a Simple Embedded System"
// (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static counterpart of the checking interpreter: a guard-based
/// single-pass symbolic executor that walks a Bedrock2 function and emits
/// one proof obligation per side condition the interpreter would check at
/// runtime — exactly the paper's vcgen obligations (§4.1), reified as
/// bitvector formulas.
///
/// The discipline that makes counterexamples *replayable* is obligation
/// chaining: obligations are emitted in program order, and each proved or
/// pending obligation (guard → condition) is added to the assumption set
/// of every later obligation in the same scope. A model for obligation k
/// therefore satisfies every earlier runtime check on its path, so the
/// checking interpreter, run on the model's inputs, walks straight to the
/// k-th check and faults there — with the exact Fault enumerator the
/// obligation predicted. Constructs the interpreter resolves
/// nondeterministically are pinned to its deterministic policy (stackalloc
/// addresses are computed concretely from StackallocPolicy) or turned into
/// model-chosen symbols that replay can script (MMIOREAD results).
///
/// Two sources of incompleteness are tracked honestly rather than hidden:
/// annotated loops havoc their written state at the head (a counterexample
/// touching havocked state may fail to replay, and is then demoted to
/// Unknown by the driver), and annotation-free loops are unrolled to a
/// bound, with a Coverage obligation recording the residue — a Coverage
/// failure caps the verdict at Unknown, never Counterexample.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VC_WP_H
#define B2_VC_WP_H

#include "bedrock2/Ast.h"
#include "bedrock2/Semantics.h"
#include "vc/Expr.h"

#include <string>
#include <vector>

namespace b2 {
namespace vc {

enum class ObKind : uint8_t {
  Check,    ///< A runtime check: a model is a candidate counterexample.
  Coverage, ///< A completeness side condition (unroll bound, call depth):
            ///< failure to prove means Unknown, never Counterexample.
};

struct Obligation {
  ObKind Kind;
  bedrock2::Fault Expected; ///< Fault the interpreter reports if this fails.
  std::string Where;        ///< Human-readable description / location.
  ExprRef Guard;            ///< 0/1 path condition.
  ExprRef Cond;             ///< Must be nonzero whenever Guard is.
  std::vector<ExprRef> Assumes; ///< Nonzero-word assumptions in scope.
  bool HavocTainted;        ///< References havocked loop-head state; a
                            ///< counterexample may not replay concretely.
};

/// One symbolic MMIO interaction, in program order, for replay scripting.
struct SymEvent {
  ExprRef Guard;     ///< 0/1: the event occurs iff this holds.
  bool IsRead;       ///< MMIOREAD vs MMIOWRITE.
  ExprRef Addr;
  ExprRef Value;     ///< Written value, or the read's fresh variable.
  unsigned ReadVar;  ///< Arena var id of the read result (IsRead only).
};

struct WpOptions {
  unsigned UnrollBound = 8;  ///< Iterations for annotation-free loops.
  unsigned MaxCallDepth = 16;
  Word RamBytes = 64 * 1024; ///< MMIO must not overlap [0, RamBytes).
  bedrock2::StackallocPolicy Stack;
};

struct WpResult {
  bool Ok = false;
  std::string Error; ///< Set when !Ok (e.g. unknown function).
  std::vector<Obligation> Obligations;
  std::vector<SymEvent> Events;
  std::vector<unsigned> ParamVars; ///< Arena var ids of the entry params.
};

/// Generates the verification conditions for \p Func of \p P into \p Arena.
WpResult genVCs(const bedrock2::Program &P, const std::string &Func,
                ExprArena &Arena, const WpOptions &Opts = WpOptions());

} // namespace vc
} // namespace b2

#endif // B2_VC_WP_H
