//===- vc/Corpus.cpp - Annotated example programs for the VC engine -------===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vc/Corpus.h"

#include "bedrock2/Parser.h"

#include <cassert>

namespace b2 {
namespace vc {
namespace {

bedrock2::Program mustParse(const char *Src) {
  bedrock2::ParseResult R = bedrock2::parseProgram(Src);
  assert(R.ok() && "corpus program failed to parse");
  if (!R.ok())
    return bedrock2::Program();
  return std::move(*R.Prog);
}

} // namespace

std::vector<VcExample> vcExamples() {
  std::vector<VcExample> Out;

  // Pure arithmetic contract: no overflow under the precondition.
  Out.push_back({"avg2", "avg2", mustParse(R"(
    fn avg2(a, b) -> (r)
      requires ((a < 0x80000000) & (b < 0x80000000))
      ensures (r < 0x80000000)
    {
      r = (a + b) >> 1;
    }
  )")});

  // If-join merge: both arms must reach the postcondition.
  Out.push_back({"absdiff", "absdiff", mustParse(R"(
    fn absdiff(a, b) -> (r)
      ensures ((r == a - b) | (r == b - a))
    {
      if (a < b) {
        r = b - a;
      } else {
        r = a - b;
      }
    }
  )")});

  // Annotated loop: invariant entry + preservation + measure, and the
  // postcondition discharged from the havocked loop-exit state alone.
  Out.push_back({"clamp_loop", "clamp_loop", mustParse(R"(
    fn clamp_loop(n) -> (i)
      requires (n < 100)
      ensures (i < 101)
    {
      i = 0;
      while (i < n)
        invariant (i < n + 1)
        measure (n - i)
      {
        i = i + 1;
      }
    }
  )")});

  // Stackalloc footprint: in-bounds aligned stores and loads.
  Out.push_back({"stackpair", "stackpair", mustParse(R"(
    fn stackpair() -> (x, y)
      ensures ((x == 42) & (y == 17))
    {
      stackalloc buf[8] {
        store4(buf, 17);
        store4(buf + 4, 42);
        x = load4(buf + 4);
        y = load4(buf);
      }
    }
  )")});

  // Memory-reading loop condition and invariant with a storing body: the
  // loop-head havoc must cover the memory log too, and the postcondition
  // is discharged purely from the exit facts over havocked memory
  // (condition == 0 at the head the continuation reads).
  Out.push_back({"memcount", "memcount", mustParse(R"(
    fn memcount() -> (r)
      ensures (r == 0)
    {
      stackalloc buf[4] {
        store4(buf, 3);
        while (load4(buf))
          invariant (load4(buf) < 4)
          measure (load4(buf))
        {
          store4(buf, load4(buf) - 1);
        }
        r = load4(buf);
      }
    }
  )")});

  // vcextern MMIO contract: aligned GPIO register addresses.
  Out.push_back({"gpio_pulse", "gpio_pulse", mustParse(R"(
    fn gpio_pulse() -> (v) {
      extern MMIOWRITE(0x10012008, 0x800000);
      v = extern MMIOREAD(0x1001200C);
      extern MMIOWRITE(0x1001200C, v | 0x800000);
    }
  )")});

  // Symbolic-index store into a stackalloc frame: the bounds obligations
  // (4*n + 3 < 32 with n < 8) are interval facts, the re-load after the
  // store duplicates the store's own footprint checks (subsumption food),
  // and the postcondition still needs the solver. Exercises every tier of
  // the staged discharge pipeline in one function.
  Out.push_back({"fill", "fill", mustParse(R"(
    fn fill(n) -> (r)
      requires (n < 8)
      ensures (r == 5)
    {
      stackalloc buf[32] {
        store4(buf + (n << 2), 5);
        r = load4(buf + (n << 2));
      }
    }
  )")});

  return Out;
}

std::vector<VcBugExample> vcBugExamples() {
  std::vector<VcBugExample> Out;

  // Off-by-one postcondition violation on every input.
  Out.push_back({"bump_bug", "bump", mustParse(R"(
    fn bump(a) -> (r)
      ensures (r == a + 1)
    {
      r = a + 2;
    }
  )"), bedrock2::Fault::PostconditionFailed});

  // Magic-constant trigger: only one of 2^32 inputs violates the
  // contract — random testing will not find it; the solver must.
  Out.push_back({"trig_bug", "trig", mustParse(R"(
    fn trig(a) -> (r)
      ensures (r < 2)
    {
      r = 1;
      if (a == 0x1234ABCD) {
        r = 2;
      }
    }
  )"), bedrock2::Fault::PostconditionFailed});

  // One-past-the-end store outside the stackalloc footprint.
  Out.push_back({"oob_bug", "oob", mustParse(R"(
    fn oob(i) -> (r)
      requires (i < 3)
    {
      stackalloc buf[8] {
        store4(buf + (i << 2), 1);
        r = load4(buf);
      }
    }
  )"), bedrock2::Fault::StoreOutsideFootprint});

  // Misaligned MMIO register address: vcextern contract violation.
  Out.push_back({"mmio_bug", "mmio_bad", mustParse(R"(
    fn mmio_bad(a) -> (r)
      requires (a < 4)
    {
      extern MMIOWRITE(0x10012008 + a, 1);
      r = 0;
    }
  )"), bedrock2::Fault::ExtContractViolation});

  // Input-dependent bug behind a memory-reading loop condition. Without
  // the memory havoc at the loop head, the condition folds to the
  // constant first-iteration value, the exit fact becomes assume(false),
  // and everything after the loop is vacuously "proved" — an unsound
  // Valid that random probes cannot catch (one magic input in 2^32). The
  // solver must reach the bug through the havocked exit facts.
  Out.push_back({"memtrig_bug", "memtrig", mustParse(R"(
    fn memtrig(a) -> (r)
      ensures (r < 2)
    {
      stackalloc buf[4] {
        store4(buf, 1);
        while (load4(buf))
          invariant (load4(buf) < 2)
          measure (load4(buf))
        {
          store4(buf, 0);
        }
        r = load4(buf);
      }
      if (a == 0x600DF00D) {
        r = 2;
      } else {
        r = r;
      }
    }
  )"), bedrock2::Fault::PostconditionFailed});

  // Caller ignores the callee's requires clause.
  Out.push_back({"callpre_bug", "caller", mustParse(R"(
    fn need(a) -> (r)
      requires (a < 10)
      ensures (r < 11)
    {
      r = a + 1;
    }
    fn caller(x) -> (r) {
      r = need(x);
    }
  )"), bedrock2::Fault::PreconditionFailed});

  return Out;
}

} // namespace vc
} // namespace b2
