//===- vc/Wp.cpp - Weakest-precondition VC generator ----------------------===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vc/Wp.h"

#include "devices/MemoryMap.h"
#include "verify/FaultInjection.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <set>

namespace b2 {
namespace vc {
namespace {

using bedrock2::BinOp;
using bedrock2::Fault;
using bedrock2::Function;
using bedrock2::Program;
using bedrock2::Stmt;

/// A local variable: its value plus a 0/1 "is bound" guard. Most code has
/// Def == const 1 and the unbound-variable obligations fold away; only
/// variables bound on some paths but not others carry a symbolic Def.
struct SymLocal {
  ExprRef Val;
  ExprRef Def;
};

/// std::map for deterministic iteration during If merges.
using SymLocals = std::map<std::string, SymLocal>;

/// One entry of the global, program-ordered memory log. Loads resolve by
/// walking the log newest-to-oldest under each entry's guard.
struct MemEntry {
  enum Kind : uint8_t {
    Store, ///< Guarded store of Size bytes of Value at Addr.
    Zero,  ///< Stackalloc entry: [Base, Base+Len) zero-filled (concrete).
    Havoc, ///< Annotated loop with stores: all memory becomes unknown.
  } K;
  ExprRef Guard;
  ExprRef Addr = 0;  ///< Store address (symbolic).
  unsigned Size = 0; ///< Store size in bytes.
  ExprRef Value = 0; ///< Store value.
  Word Base = 0;     ///< Zero base (concrete).
  Word Len = 0;      ///< Zero length.
};

/// A concrete stackalloc region currently owned (lexical lifetime).
struct Region {
  Word Base;
  Word Len;
};

/// Does this statement (transitively through calls) write memory? Used to
/// decide whether an annotated loop must havoc the memory log.
class StoreAnalysis {
public:
  explicit StoreAnalysis(const Program &P) : Prog(P) {}

  bool mayStore(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Store:
      return true;
    case Stmt::Kind::Skip:
    case Stmt::Kind::Set:
    case Stmt::Kind::Interact:
      return false;
    case Stmt::Kind::If:
    case Stmt::Kind::Seq:
      return (S.S1 && mayStore(*S.S1)) || (S.S2 && mayStore(*S.S2));
    case Stmt::Kind::While:
    case Stmt::Kind::Stackalloc:
      return S.S1 && mayStore(*S.S1);
    case Stmt::Kind::Call: {
      if (!Visiting.insert(S.Callee).second)
        return false; // Recursion cycle: already being analyzed.
      const Function *F = Prog.find(S.Callee);
      bool R = F && F->Body && mayStore(*F->Body);
      Visiting.erase(S.Callee);
      return R;
    }
    }
    return true;
  }

private:
  const Program &Prog;
  std::set<std::string> Visiting;
};

/// Variables a statement may assign (syntactic; callee locals excluded).
void assignedVars(const Stmt &S, std::set<std::string> &Out) {
  switch (S.K) {
  case Stmt::Kind::Set:
    Out.insert(S.Var);
    break;
  case Stmt::Kind::Stackalloc:
    Out.insert(S.Var);
    if (S.S1)
      assignedVars(*S.S1, Out);
    break;
  case Stmt::Kind::Call:
  case Stmt::Kind::Interact:
    for (const std::string &D : S.Dsts)
      Out.insert(D);
    break;
  case Stmt::Kind::If:
  case Stmt::Kind::Seq:
    if (S.S1)
      assignedVars(*S.S1, Out);
    if (S.S2)
      assignedVars(*S.S2, Out);
    break;
  case Stmt::Kind::While:
    if (S.S1)
      assignedVars(*S.S1, Out);
    break;
  case Stmt::Kind::Skip:
  case Stmt::Kind::Store:
    break;
  }
}

class WpGen {
public:
  WpGen(const Program &P, ExprArena &A, const WpOptions &O)
      : Prog(P), Arena(A), Opts(O), Stores(P) {
    StackNext = O.Stack.Base - (O.Stack.Salt & ~Word(3));
  }

  WpResult run(const std::string &FuncName) {
    WpResult Res;
    const Function *F = Prog.find(FuncName);
    if (!F) {
      Res.Error = "unknown function '" + FuncName + "'";
      return Res;
    }
    SymLocals L;
    for (const std::string &P : F->Params) {
      ExprRef V = Arena.var(P, VarOrigin::Param);
      Res.ParamVars.push_back(Arena.node(V).Lit);
      L[P] = {V, Arena.trueRef()};
    }
    Guard = Arena.trueRef();
    // The entry contract's precondition is an assumption: replay passes
    // arguments satisfying it, so the interpreter's own entry Pre check
    // always passes on a model.
    if (F->Pre)
      assume(Arena.toBool(evalE(*F->Pre, L)));
    if (F->Body)
      execS(*F->Body, L, 0);

    // Bind results; an unbound result variable is a runtime fault.
    SymLocals Finals = L;
    for (const std::string &R : F->Rets) {
      SymLocal SL = lookup(L, R);
      oblige(ObKind::Check, Fault::UnboundVariable,
             FuncName + ": result variable '" + R + "' bound", SL.Def);
    }
    // The entry postcondition, evaluated over the final locals — the
    // paper's Q. The seeded vc-wp-dropped-conjunct fault silently omits
    // it, modeling a vcgen that forgets a conjunct: the engine then calls
    // buggy functions Valid, and only the concrete probe layer can tell.
    if (F->Post && !fi::on(fi::Fault::VcWpDroppedConjunct)) {
      ExprRef Q = evalE(*F->Post, Finals);
      oblige(ObKind::Check, Fault::PostconditionFailed,
             FuncName + ": ensures clause", Q);
    }
    Res.Ok = true;
    Res.Obligations = std::move(Obligations);
    Res.Events = std::move(Events);
    return Res;
  }

private:
  const Program &Prog;
  ExprArena &Arena;
  const WpOptions &Opts;
  StoreAnalysis Stores;

  std::vector<Obligation> Obligations;
  std::vector<SymEvent> Events;
  std::vector<ExprRef> Assumes; ///< Scoped: saved/restored around loops.
  std::vector<MemEntry> Log;
  std::vector<Region> Live;
  std::map<std::pair<size_t, ExprRef>, ExprRef> SelMemo;
  std::map<std::pair<size_t, ExprRef>, ExprRef> HavocMemo;
  ExprRef Guard = 0;
  Word StackNext = 0;
  bool HavocLive = false; ///< Entered/passed an annotated loop head.
  std::vector<std::string> CallStack;

  // -- Assumption scope ----------------------------------------------------

  void assume(ExprRef B01) {
    if (!Arena.isConstTrue(B01))
      Assumes.push_back(B01);
  }

  /// Emits an obligation (Guard -> Cond != 0) and, for Check kinds, adds
  /// the implication to the assumption set: later obligations may rely on
  /// every earlier runtime check passing, which is what steers a model's
  /// replay to exactly the failing check.
  void oblige(ObKind K, Fault Expected, std::string Where, ExprRef Cond) {
    if (Arena.isConstZero(Guard))
      return; // Dead path.
    bool Trivial = Arena.isConstTrue(Cond);
    if (!Trivial) {
      Obligation O;
      O.Kind = K;
      O.Expected = Expected;
      O.Where = std::move(Where);
      O.Guard = Guard;
      O.Cond = Cond;
      O.Assumes = Assumes;
      O.HavocTainted = HavocLive;
      Obligations.push_back(std::move(O));
    }
    if (K == ObKind::Check)
      assume(Arena.implies(Guard, Cond));
  }

  // -- Memory --------------------------------------------------------------

  /// All memory becomes unknown past this point (under \p G): annotated
  /// loop heads and skipped callees that may store. Each entry yields its
  /// own fresh bytes (HavocMemo keys on the entry's log position).
  void pushMemHavoc(ExprRef G) {
    MemEntry E;
    E.K = MemEntry::Havoc;
    E.Guard = G;
    Log.push_back(E);
  }

  /// The byte at \p Addr after the first \p Len log entries. The base case
  /// is 0: every owned region enters the log as a Zero entry when it is
  /// allocated, and the footprint obligations (assumed by every later
  /// obligation) rule out models that read outside owned regions.
  ExprRef selByte(size_t Len, ExprRef Addr) {
    if (Len == 0)
      return Arena.falseRef();
    auto Key = std::make_pair(Len, Addr);
    auto It = SelMemo.find(Key);
    if (It != SelMemo.end())
      return It->second;
    const MemEntry &E = Log[Len - 1];
    ExprRef Older = selByte(Len - 1, Addr);
    ExprRef V = Older;
    switch (E.K) {
    case MemEntry::Store: {
      ExprRef Off = Arena.sub(Addr, E.Addr);
      ExprRef Hit =
          E.Size == 1 ? Arena.eq(Addr, E.Addr)
                      : Arena.ltu(Off, Arena.constant(E.Size));
      ExprRef Byte = Arena.op(
          BinOp::And,
          Arena.op(BinOp::Sru, E.Value,
                   Arena.op(BinOp::Slu, Off, Arena.constant(3))),
          Arena.constant(0xFF));
      V = Arena.ite(Arena.boolAnd(E.Guard, Hit), Byte, Older);
      break;
    }
    case MemEntry::Zero: {
      ExprRef Off = Arena.sub(Addr, Arena.constant(E.Base));
      ExprRef Hit = Arena.ltu(Off, Arena.constant(E.Len));
      V = Arena.ite(Arena.boolAnd(E.Guard, Hit), Arena.falseRef(), Older);
      break;
    }
    case MemEntry::Havoc: {
      auto HKey = std::make_pair(Len - 1, Addr);
      auto HIt = HavocMemo.find(HKey);
      ExprRef Fresh;
      if (HIt != HavocMemo.end()) {
        Fresh = HIt->second;
      } else {
        Fresh = Arena.op(BinOp::And, Arena.var("mem.havoc", VarOrigin::Havoc),
                         Arena.constant(0xFF));
        HavocMemo.emplace(HKey, Fresh);
      }
      V = Arena.ite(E.Guard, Fresh, Older);
      break;
    }
    }
    SelMemo.emplace(Key, V);
    return V;
  }

  ExprRef loadBytes(ExprRef Addr, unsigned Size) {
    ExprRef V = selByte(Log.size(), Addr);
    for (unsigned I = 1; I < Size; ++I) {
      ExprRef B =
          selByte(Log.size(), Arena.add(Addr, Arena.constant(I)));
      V = Arena.op(BinOp::Or, V,
                   Arena.op(BinOp::Slu, B, Arena.constant(I * 8)));
    }
    return V;
  }

  /// 0/1: [Addr, Addr+Size) lies inside a live concrete region.
  ExprRef ownsCond(ExprRef Addr, unsigned Size) {
    ExprRef Any = Arena.falseRef();
    for (const Region &R : Live) {
      if (R.Len < Size)
        continue;
      ExprRef Off = Arena.sub(Addr, Arena.constant(R.Base));
      Any = Arena.boolOr(Any,
                         Arena.ltu(Off, Arena.constant(R.Len - Size + 1)));
    }
    return Any;
  }

  ExprRef alignedCond(ExprRef Addr, unsigned Size) {
    if (Size <= 1)
      return Arena.trueRef();
    return Arena.eq(Arena.op(BinOp::And, Addr, Arena.constant(Size - 1)),
                    Arena.falseRef());
  }

  // -- Expressions ---------------------------------------------------------

  SymLocal lookup(const SymLocals &L, const std::string &Name) {
    auto It = L.find(Name);
    if (It != L.end())
      return It->second;
    return {Arena.falseRef(), Arena.falseRef()};
  }

  ExprRef evalE(const bedrock2::Expr &E, const SymLocals &L) {
    switch (E.K) {
    case bedrock2::Expr::Kind::Literal:
      return Arena.constant(E.Lit);
    case bedrock2::Expr::Kind::Var: {
      SymLocal SL = lookup(L, E.Name);
      oblige(ObKind::Check, Fault::UnboundVariable,
             "variable '" + E.Name + "' bound", SL.Def);
      return SL.Val;
    }
    case bedrock2::Expr::Kind::Load: {
      ExprRef Addr = evalE(*E.A, L);
      std::string Loc = "load" + std::to_string(E.Size);
      oblige(ObKind::Check, Fault::MisalignedAccess, Loc + " aligned",
             alignedCond(Addr, E.Size));
      oblige(ObKind::Check, Fault::LoadOutsideFootprint,
             Loc + " within footprint", ownsCond(Addr, E.Size));
      return loadBytes(Addr, E.Size);
    }
    case bedrock2::Expr::Kind::Op: {
      ExprRef A = evalE(*E.A, L);
      ExprRef B = evalE(*E.B, L);
      return Arena.op(E.Op, A, B);
    }
    }
    return Arena.falseRef();
  }

  // -- Statements ----------------------------------------------------------

  void execS(const Stmt &S, SymLocals &L, unsigned Depth) {
    if (Arena.isConstZero(Guard))
      return;
    switch (S.K) {
    case Stmt::Kind::Skip:
      return;
    case Stmt::Kind::Set:
      L[S.Var] = {evalE(*S.Value, L), Arena.trueRef()};
      return;
    case Stmt::Kind::Store: {
      ExprRef Addr = evalE(*S.Addr, L);
      ExprRef Val = evalE(*S.Value, L);
      std::string Loc = "store" + std::to_string(S.Size);
      oblige(ObKind::Check, Fault::MisalignedAccess, Loc + " aligned",
             alignedCond(Addr, S.Size));
      oblige(ObKind::Check, Fault::StoreOutsideFootprint,
             Loc + " within footprint", ownsCond(Addr, S.Size));
      MemEntry E;
      E.K = MemEntry::Store;
      E.Guard = Guard;
      E.Addr = Addr;
      E.Size = S.Size;
      E.Value = Val;
      Log.push_back(E);
      return;
    }
    case Stmt::Kind::If:
      execIf(S, L, Depth);
      return;
    case Stmt::Kind::While:
      if (S.Invariant || S.Measure)
        execAnnotatedLoop(S, L, Depth);
      else
        execUnrolledLoop(S, L, Depth);
      return;
    case Stmt::Kind::Seq:
      execS(*S.S1, L, Depth);
      execS(*S.S2, L, Depth);
      return;
    case Stmt::Kind::Call:
      execCall(S, L, Depth);
      return;
    case Stmt::Kind::Interact:
      execInteract(S, L);
      return;
    case Stmt::Kind::Stackalloc:
      execStackalloc(S, L, Depth);
      return;
    }
  }

  void execIf(const Stmt &S, SymLocals &L, unsigned Depth) {
    ExprRef C = evalE(*S.Cond, L);
    Word CV;
    if (Arena.constValue(C, CV)) {
      if (CV != 0)
        execS(*S.S1, L, Depth);
      else
        execS(*S.S2, L, Depth);
      return;
    }
    ExprRef G = Guard;
    ExprRef CB = Arena.toBool(C);
    SymLocals ThenL = L, ElseL = L;
    Guard = Arena.boolAnd(G, CB);
    execS(*S.S1, ThenL, Depth);
    Guard = Arena.boolAnd(G, Arena.boolNot(CB));
    execS(*S.S2, ElseL, Depth);
    Guard = G;
    mergeLocals(C, ThenL, ElseL, L);
  }

  void mergeLocals(ExprRef C, const SymLocals &ThenL, const SymLocals &ElseL,
                   SymLocals &Out) {
    Out.clear();
    auto TI = ThenL.begin(), EI = ElseL.begin();
    while (TI != ThenL.end() || EI != ElseL.end()) {
      if (EI == ElseL.end() || (TI != ThenL.end() && TI->first < EI->first)) {
        // Bound only on the then-path.
        Out[TI->first] = {TI->second.Val,
                          Arena.ite(C, TI->second.Def, Arena.falseRef())};
        ++TI;
      } else if (TI == ThenL.end() || EI->first < TI->first) {
        Out[EI->first] = {EI->second.Val,
                          Arena.ite(C, Arena.falseRef(), EI->second.Def)};
        ++EI;
      } else {
        Out[TI->first] = {Arena.ite(C, TI->second.Val, EI->second.Val),
                          Arena.ite(C, TI->second.Def, EI->second.Def)};
        ++TI;
        ++EI;
      }
    }
  }

  /// Annotated loop: prove the invariant at entry, havoc written state,
  /// assume invariant + condition for one symbolic body pass proving
  /// preservation and measure decrease, then continue under invariant +
  /// negated condition. This mirrors the interpreter exactly: it checks
  /// the invariant at *every* test of the condition and compares the
  /// measure across consecutive tests where the condition held.
  void execAnnotatedLoop(const Stmt &S, SymLocals &L, unsigned Depth) {
    ExprRef G = Guard;
    if (S.Invariant) {
      ExprRef I0 = evalE(*S.Invariant, L);
      oblige(ObKind::Check, Fault::InvariantViolated,
             "loop invariant at entry", I0);
    }
    // The interpreter evaluates the condition at the first test too; emit
    // that evaluation's own side conditions (loads etc.) on entry state.
    (void)evalE(*S.Cond, L);
    // Havoc the state the body can write: fresh symbols stand for "after
    // some number of iterations". Written locals get fresh variables; if
    // the body stores, the memory log gets a havoc entry too, so an
    // invariant or condition that reads memory is judged at the arbitrary
    // loop head rather than at first-iteration memory (where it could
    // fold to a constant and make the exit facts vacuous).
    std::set<std::string> Written;
    if (S.S1)
      assignedVars(*S.S1, Written);
    for (const std::string &V : Written)
      L[V] = {Arena.var("havoc." + V, VarOrigin::Havoc), Arena.trueRef()};
    bool BodyStores = S.S1 && Stores.mayStore(*S.S1);
    if (BodyStores)
      pushMemHavoc(G);
    HavocLive = true;

    ExprRef InvH =
        S.Invariant ? evalE(*S.Invariant, L) : Arena.trueRef();
    ExprRef CondH = evalE(*S.Cond, L);

    // One symbolic body pass under (invariant && condition) proves
    // preservation and measure decrease; its assumptions are scoped.
    {
      size_t Mark = Assumes.size();
      assume(Arena.toBool(InvH));
      assume(Arena.toBool(CondH));
      ExprRef M0 = S.Measure ? evalE(*S.Measure, L) : Arena.falseRef();
      SymLocals BodyL = L;
      if (S.S1)
        execS(*S.S1, BodyL, Depth);
      if (S.Invariant) {
        ExprRef I1 = evalE(*S.Invariant, BodyL);
        oblige(ObKind::Check, Fault::InvariantViolated,
               "loop invariant preserved", I1);
      }
      if (S.Measure) {
        ExprRef C1 = evalE(*S.Cond, BodyL);
        ExprRef M1 = evalE(*S.Measure, BodyL);
        // The interpreter evaluates the measure at the next test only if
        // the condition still holds there, and faults unless it strictly
        // decreased (unsigned).
        oblige(ObKind::Check, Fault::MeasureNotDecreasing,
               "loop measure decreases",
               Arena.implies(Arena.boolAnd(G, Arena.toBool(C1)),
                             Arena.ltu(M1, M0)));
      }
      Assumes.resize(Mark);
    }

    // The single body pass's stores describe one iteration, not all of
    // them: shield the continuation behind a second havoc entry, and state
    // the exit facts over that havocked memory — the memory the
    // continuation actually reads.
    ExprRef InvX = InvH, CondX = CondH;
    if (BodyStores) {
      pushMemHavoc(G);
      InvX = S.Invariant ? evalE(*S.Invariant, L) : Arena.trueRef();
      CondX = evalE(*S.Cond, L);
    }
    // Continue after the loop: the havocked head state with the exit facts.
    assume(Arena.implies(G, InvX));
    assume(Arena.implies(G, Arena.eq(CondX, Arena.falseRef())));
  }

  /// Annotation-free loop: bounded unrolling; a Coverage obligation
  /// records that the bound sufficed (its failure caps the verdict at
  /// Unknown — bounded model checking, honestly labeled).
  void execUnrolledLoop(const Stmt &S, SymLocals &L, unsigned Depth) {
    ExprRef G = Guard;
    for (unsigned K = 0; K < Opts.UnrollBound; ++K) {
      ExprRef C = evalE(*S.Cond, L);
      if (Arena.isConstZero(C))
        return; // Loop provably exited.
      ExprRef CB = Arena.toBool(C);
      ExprRef BodyGuard = Arena.boolAnd(G, CB);
      if (Arena.isConstZero(BodyGuard))
        return;
      SymLocals BodyL = L;
      Guard = BodyGuard;
      execS(*S.S1, BodyL, Depth);
      Guard = G;
      SymLocals Prev = L;
      mergeLocals(C, BodyL, Prev, L);
    }
    ExprRef CN = evalE(*S.Cond, L);
    if (Arena.isConstZero(CN))
      return;
    oblige(ObKind::Coverage, Fault::OutOfFuel,
           "loop exits within unroll bound " +
               std::to_string(Opts.UnrollBound),
           Arena.eq(CN, Arena.falseRef()));
    // Sound for counterexamples (models describe real, short executions);
    // the unproved Coverage obligation is what withholds "Valid".
    assume(Arena.implies(G, Arena.eq(CN, Arena.falseRef())));
  }

  void execCall(const Stmt &S, SymLocals &L, unsigned Depth) {
    const Function *F = Prog.find(S.Callee);
    if (!F) {
      oblige(ObKind::Check, Fault::UnknownFunction,
             "call target '" + S.Callee + "' exists", Arena.falseRef());
      bindFresh(S.Dsts, L);
      return;
    }
    if (S.Args.size() != F->Params.size() ||
        S.Dsts.size() != F->Rets.size()) {
      oblige(ObKind::Check, Fault::ArityMismatch,
             "call arity of '" + S.Callee + "'", Arena.falseRef());
      bindFresh(S.Dsts, L);
      return;
    }
    std::vector<ExprRef> ArgVals;
    for (const bedrock2::ExprPtr &A : S.Args)
      ArgVals.push_back(evalE(*A, L));

    if (Depth >= Opts.MaxCallDepth ||
        std::count(CallStack.begin(), CallStack.end(), S.Callee)) {
      // Recursion / depth limit: modular fallback. Havoc the results,
      // assume the callee contract, and record the incompleteness.
      oblige(ObKind::Coverage, Fault::OutOfFuel,
             "call depth limit at '" + S.Callee + "'", Arena.falseRef());
      SymLocals CalleeL;
      for (size_t I = 0; I < F->Params.size(); ++I)
        CalleeL[F->Params[I]] = {ArgVals[I], Arena.trueRef()};
      if (F->Pre)
        oblige(ObKind::Check, Fault::PreconditionFailed,
               "requires clause of '" + S.Callee + "'",
               evalE(*F->Pre, CalleeL));
      // The skipped callee may store: continuation loads (and the
      // postcondition assumption below) must read havocked memory, not
      // stale pre-call memory, and later obligations are taint-marked so
      // models that fail replay demote quietly to Unknown instead of
      // raising the solver-bug alarm. The Coverage obligation above
      // already caps the verdict at Unknown.
      if (F->Body && Stores.mayStore(*F->Body)) {
        pushMemHavoc(Guard);
        HavocLive = true;
      }
      bindFresh(S.Dsts, L);
      for (size_t I = 0; I < F->Rets.size(); ++I)
        CalleeL[F->Rets[I]] = L[S.Dsts[I]];
      if (F->Post)
        assume(Arena.implies(Guard, evalE(*F->Post, CalleeL)));
      return;
    }

    // Inline the callee. Checking its contract at the exact program
    // points the interpreter would keeps every model replayable.
    SymLocals CalleeL;
    for (size_t I = 0; I < F->Params.size(); ++I)
      CalleeL[F->Params[I]] = {ArgVals[I], Arena.trueRef()};
    if (F->Pre)
      oblige(ObKind::Check, Fault::PreconditionFailed,
             "requires clause of '" + S.Callee + "'", evalE(*F->Pre, CalleeL));
    CallStack.push_back(S.Callee);
    if (F->Body)
      execS(*F->Body, CalleeL, Depth + 1);
    CallStack.pop_back();
    for (size_t I = 0; I < F->Rets.size(); ++I) {
      SymLocal SL = lookup(CalleeL, F->Rets[I]);
      oblige(ObKind::Check, Fault::UnboundVariable,
             "'" + S.Callee + "': result variable '" + F->Rets[I] + "' bound",
             SL.Def);
    }
    if (F->Post)
      oblige(ObKind::Check, Fault::PostconditionFailed,
             "ensures clause of '" + S.Callee + "'",
             evalE(*F->Post, CalleeL));
    for (size_t I = 0; I < S.Dsts.size(); ++I)
      L[S.Dsts[I]] = {lookup(CalleeL, F->Rets[I]).Val, Arena.trueRef()};
  }

  void bindFresh(const std::vector<std::string> &Dsts, SymLocals &L) {
    for (const std::string &D : Dsts)
      L[D] = {Arena.var("havoc." + D, VarOrigin::Havoc), Arena.trueRef()};
  }

  /// vcextern: the MMIO contract of MmioExtSpec, checked symbolically.
  /// MMIOREAD returns a model-chosen value (the device may answer
  /// anything); the guarded event list lets replay script those answers.
  void execInteract(const Stmt &S, SymLocals &L) {
    bool IsRead = S.Callee == "MMIOREAD";
    bool IsWrite = S.Callee == "MMIOWRITE";
    if (!IsRead && !IsWrite) {
      oblige(ObKind::Check, Fault::ExtContractViolation,
             "external action '" + S.Callee + "' known", Arena.falseRef());
      bindFresh(S.Dsts, L);
      return;
    }
    size_t WantArgs = IsRead ? 1 : 2;
    if (S.Args.size() != WantArgs) {
      oblige(ObKind::Check, Fault::ExtContractViolation,
             "'" + S.Callee + "' arity", Arena.falseRef());
      bindFresh(S.Dsts, L);
      return;
    }
    if (S.Dsts.size() != (IsRead ? 1u : 0u)) {
      oblige(ObKind::Check, Fault::ArityMismatch,
             "'" + S.Callee + "' result arity", Arena.falseRef());
      bindFresh(S.Dsts, L);
      return;
    }
    std::vector<ExprRef> ArgVals;
    for (const bedrock2::ExprPtr &A : S.Args)
      ArgVals.push_back(evalE(*A, L));
    ExprRef Addr = ArgVals[0];
    // The MmioExtSpec contract: a word-aligned MMIO-window address that
    // does not overlap physical RAM.
    ExprRef InGpio = Arena.ltu(Arena.sub(Addr, Arena.constant(devices::GpioBase)),
                               Arena.constant(devices::GpioSize));
    ExprRef InSpi = Arena.ltu(Arena.sub(Addr, Arena.constant(devices::SpiBase)),
                              Arena.constant(devices::SpiSize));
    ExprRef Contract = Arena.boolAnd(
        Arena.boolOr(InGpio, InSpi),
        Arena.boolAnd(alignedCond(Addr, 4),
                      Arena.boolNot(
                          Arena.ltu(Addr, Arena.constant(Opts.RamBytes)))));
    oblige(ObKind::Check, Fault::ExtContractViolation,
           "'" + S.Callee + "' MMIO contract", Contract);

    SymEvent Ev;
    Ev.Guard = Guard;
    Ev.IsRead = IsRead;
    Ev.Addr = Addr;
    Ev.ReadVar = 0;
    if (IsRead) {
      ExprRef V = Arena.var("mmio.read", VarOrigin::MmioRead);
      Ev.Value = V;
      Ev.ReadVar = Arena.node(V).Lit;
      L[S.Dsts[0]] = {V, Arena.trueRef()};
    } else {
      Ev.Value = ArgVals[1];
    }
    Events.push_back(Ev);
  }

  void execStackalloc(const Stmt &S, SymLocals &L, unsigned Depth) {
    if (S.NBytes == 0 || S.NBytes % 4 != 0) {
      oblige(ObKind::Check, Fault::StackallocMisuse,
             "stackalloc size " + std::to_string(S.NBytes) + " valid",
             Arena.falseRef());
      // The interpreter faults before running the body; this path is dead.
      return;
    }
    // Mirror the interpreter's deterministic address policy so models
    // replay: addresses are concrete, the region enters the footprint,
    // and its bytes start zeroed.
    StackNext -= S.NBytes;
    Word Base = StackNext;
    Live.push_back({Base, S.NBytes});
    MemEntry E;
    E.K = MemEntry::Zero;
    E.Guard = Guard;
    E.Base = Base;
    E.Len = S.NBytes;
    Log.push_back(E);
    // The interpreter leaves the pointer variable bound after the block
    // (only the *ownership* is lexical), so we do too.
    L[S.Var] = {Arena.constant(Base), Arena.trueRef()};
    if (S.S1)
      execS(*S.S1, L, Depth);
    Live.pop_back();
    StackNext += S.NBytes;
  }
};

} // namespace

WpResult genVCs(const Program &P, const std::string &Func, ExprArena &Arena,
                const WpOptions &Opts) {
  WpGen G(P, Arena, Opts);
  return G.run(Func);
}

} // namespace vc
} // namespace b2
