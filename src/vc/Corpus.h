//===- vc/Corpus.h - Annotated example programs for the VC engine *- C++ -*===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small corpus of contracted Bedrock2 programs exercising every
/// obligation kind the WP generator emits: arithmetic contracts, If
/// joins, annotated loops (invariant + measure), stackalloc footprints,
/// and vcextern MMIO contracts. The correct half must verify Valid; the
/// buggy half must each yield a *confirmed* counterexample with the
/// recorded Fault — the corpus doubles as the ground truth for
/// tests/test_vc.cpp, the vc_walkthrough example, and the VcCheck
/// adequacy stims.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VC_CORPUS_H
#define B2_VC_CORPUS_H

#include "bedrock2/Ast.h"
#include "bedrock2/Semantics.h"

#include <string>
#include <vector>

namespace b2 {
namespace vc {

struct VcExample {
  std::string Name;      ///< Corpus label (also the JSON program tag).
  std::string Func;      ///< Entry function to verify.
  bedrock2::Program Prog;
};

struct VcBugExample {
  std::string Name;
  std::string Func;
  bedrock2::Program Prog;
  bedrock2::Fault Expected; ///< Fault of the confirmed counterexample.
};

/// Correct contracted programs: every entry verifies Valid.
std::vector<VcExample> vcExamples();

/// Buggy variants: every entry yields a confirmed counterexample whose
/// fault kind matches Expected.
std::vector<VcBugExample> vcBugExamples();

} // namespace vc
} // namespace b2

#endif // B2_VC_CORPUS_H
