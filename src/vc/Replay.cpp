//===- vc/Replay.cpp - Concrete counterexample replay ---------------------===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vc/Replay.h"

#include "devices/MemoryMap.h"
#include "support/Rng.h"

#include <cstring>
#include <deque>

namespace b2 {
namespace vc {
namespace {

using bedrock2::ExtSpec;
using bedrock2::Fault;
using bedrock2::Footprint;

/// An ExtSpec performing the identical contract checks as MmioExtSpec but
/// answering MMIOREADs from a script (the model's chosen device values)
/// instead of a device model. The checks must match bit for bit: replay
/// confirmation hinges on the interpreter reaching the same fault site.
class ScriptedMmioExtSpec final : public ExtSpec {
public:
  ScriptedMmioExtSpec(std::deque<Word> Script, Word RamBytes)
      : Script(std::move(Script)), RamBytes(RamBytes) {}

  Outcome call(const std::string &Action, const std::vector<Word> &Args,
               Footprint &Mem) override {
    (void)Mem;
    Outcome Out;
    const bool IsRead =
        Action.size() == 8 && std::memcmp(Action.data(), "MMIOREAD", 8) == 0;
    const bool IsWrite = !IsRead && Action.size() == 9 &&
                         std::memcmp(Action.data(), "MMIOWRITE", 9) == 0;
    if (!IsRead && !IsWrite) {
      Out.Ok = false;
      Out.Error = "unknown external procedure '" + Action + "'";
      return Out;
    }
    if (Args.size() != (IsRead ? 1u : 2u)) {
      Out.Ok = false;
      Out.Error = IsRead ? "MMIOREAD expects 1 argument"
                         : "MMIOWRITE expects 2 arguments";
      return Out;
    }
    const Word Addr = Args[0];
    if (!devices::isMmioAddr(Addr)) {
      Out.Ok = false;
      Out.Error = "address is not an MMIO address";
      return Out;
    }
    if (!support::isAligned(Addr, 4)) {
      Out.Ok = false;
      Out.Error = "MMIO address is not word-aligned";
      return Out;
    }
    if (Addr < RamBytes) {
      Out.Ok = false;
      Out.Error = "MMIO address overlaps physical memory";
      return Out;
    }
    if (IsRead) {
      Word V = 0;
      if (!Script.empty()) {
        V = Script.front();
        Script.pop_front();
      }
      Out.Rets.push_back(V);
    }
    return Out;
  }

private:
  std::deque<Word> Script;
  Word RamBytes;
};

/// MMIO responses drawn from a deterministic RNG (probeValid).
class RandomMmioExtSpec final : public ExtSpec {
public:
  RandomMmioExtSpec(uint64_t Seed, Word RamBytes)
      : R(Seed), Checker({}, RamBytes) {}

  Outcome call(const std::string &Action, const std::vector<Word> &Args,
               Footprint &Mem) override {
    // Reuse the scripted checker for the contract logic with an empty
    // script, then substitute a random read value on success.
    Outcome Out = Checker.call(Action, Args, Mem);
    if (Out.Ok && !Out.Rets.empty())
      Out.Rets[0] = R.interestingWord();
    return Out;
  }

private:
  support::Rng R;
  ScriptedMmioExtSpec Checker;
};

} // namespace

ReplayOutcome replayModel(const bedrock2::Program &P, const std::string &Func,
                          const ExprArena &Arena, const WpResult &Wp,
                          const std::vector<Word> &Model, Fault Expected,
                          const ReplayOptions &Opts) {
  ReplayOutcome Out;
  for (unsigned V : Wp.ParamVars)
    Out.Args.push_back(V < Model.size() ? Model[V] : 0);

  // Script the MMIOREAD answers: the events whose guards hold under the
  // model, in program order, are the reads the concrete run will perform.
  std::vector<Word> Vals = Arena.evalAll(Model);
  std::deque<Word> Script;
  for (const SymEvent &E : Wp.Events)
    if (E.IsRead && Vals[E.Guard] != 0)
      Script.push_back(E.ReadVar < Model.size() ? Model[E.ReadVar] : 0);

  ScriptedMmioExtSpec Ext(std::move(Script), Opts.RamBytes);
  bedrock2::Interp I(P, Ext, Opts.Fuel, Opts.Stack,
                     bedrock2::ExecMode::Reference);
  bedrock2::ExecResult R = I.callFunction(Func, Out.Args);
  Out.Observed = R.F;
  Out.Detail = R.Detail;
  Out.Confirmed = R.F == Expected;
  if (!Out.Confirmed && R.F == Fault::None)
    Out.Detail = "run completed without fault";
  return Out;
}

unsigned probeValid(const bedrock2::Program &P, const std::string &Func,
                    unsigned Probes, uint64_t Seed, std::string &Detail,
                    const ReplayOptions &Opts) {
  const bedrock2::Function *F = P.find(Func);
  if (!F) {
    Detail = "unknown function '" + Func + "'";
    return 1;
  }
  unsigned Violations = 0;
  support::Rng ArgRng(Seed);
  for (unsigned N = 0; N < Probes; ++N) {
    std::vector<Word> Args;
    for (size_t I = 0; I < F->Params.size(); ++I)
      Args.push_back(ArgRng.interestingWord());
    RandomMmioExtSpec Ext(Seed ^ (0x9e3779b9ull * (N + 1)), Opts.RamBytes);
    bedrock2::Interp I(P, Ext, Opts.Fuel, Opts.Stack,
                       bedrock2::ExecMode::Reference);
    bedrock2::ExecResult R = I.callFunction(Func, Args);
    if (R.F == Fault::None || R.F == Fault::OutOfFuel)
      continue;
    // A rejected entry precondition makes the probe vacuous — the
    // contract only promises anything for inputs satisfying it. The entry
    // check runs before any statement executes, so StepsUsed == 0
    // identifies it positively; a callee precondition failing mid-run —
    // including a recursive call back into the entry function — has
    // executed at least the call statement and is a real violation.
    if (R.F == Fault::PreconditionFailed && R.StepsUsed == 0)
      continue;
    ++Violations;
    if (Detail.empty())
      Detail = "probe " + std::to_string(N) + ": " +
               bedrock2::faultName(R.F) + " (" + R.Detail + ")";
  }
  return Violations;
}

} // namespace vc
} // namespace b2
