//===- vc/Discharge.cpp - Staged obligation discharge engine --------------===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Phase structure (see Discharge.h for the trust argument):
//
//   A1 (sequential)  tier pass: wp-trivial, interval, rewrite; builds the
//                    attempt (simplified) and full (PR-9-identical) query
//                    root vectors for every survivor. The only phase that
//                    creates arena nodes.
//   A2 (sequential)  variable-support index over the now-final arena.
//   A3 (sequential)  cone-of-influence slicing, canonical-hash cache
//                    lookup, in-run dedup. All fault hooks live here.
//   B  (parallel)    obligation groups solve their survivors — one
//                    incremental context per group, cold fallback for
//                    anything not proved. Workers touch only their own
//                    Pending slots: no arena growth, no metrics, no
//                    shared counters.
//   C  (sequential)  resolution in obligation order: dup resolution,
//                    cache population, counter accumulation, and the
//                    Differential audits.
//
// The group partition is min(16, survivors) contiguous chunks — a function
// of the obligation list only, never of the thread count — so every
// verdict, model, and counter is bit-identical at any --threads value.
//
//===----------------------------------------------------------------------===//

#include "vc/Discharge.h"

#include "support/ThreadPool.h"
#include "vc/Analysis.h"
#include "verify/FaultInjection.h"

#include <algorithm>
#include <unordered_map>

namespace b2 {
namespace vc {

const char *tierName(DischargeTier T) {
  switch (T) {
  case DischargeTier::Wp:
    return "wp";
  case DischargeTier::Interval:
    return "interval";
  case DischargeTier::Rewrite:
    return "rewrite";
  case DischargeTier::Cache:
    return "cache";
  case DischargeTier::SatShared:
    return "sat-shared";
  case DischargeTier::SatCold:
    return "sat-cold";
  case DischargeTier::NumTiers:
    break;
  }
  return "?";
}

bool DischargeCache::lookup(const Key &K) const {
  if (Proved.find(K) != Proved.end())
    return true;
  // Seeded fault vc-cache-stale-hit: hash discrimination lost — any
  // non-empty cache answers any key. Killed by the Valid-verdict probes
  // and the Differential claim audit.
  if (fi::on(fi::Fault::VcCacheStaleHit) && !Proved.empty())
    return true;
  return false;
}

namespace {

void addStats(SolveStats &Into, const SolveStats &S) {
  Into.Clauses += S.Clauses;
  Into.Conflicts += S.Conflicts;
  Into.Decisions += S.Decisions;
  Into.Propagations += S.Propagations;
}

/// Per-node variable-support bitsets, one forward pass. Operand refs are
/// always smaller than their parent's, so a single sweep suffices.
class SupportIndex {
public:
  void build(const ExprArena &A) {
    size_t N = A.size();
    Words = (size_t(A.numVars()) + 63) / 64;
    if (Words == 0)
      Words = 1;
    // Degrade to "keep everything" rather than blow memory on a
    // pathological arena (the cap is far above every corpus program).
    if (N * Words > (size_t(1) << 23))
      return;
    Bits.assign(N * Words, 0);
    for (size_t I = 0; I < N; ++I) {
      const ExprNode &Nd = A.node(ExprRef(I));
      uint64_t *Row = &Bits[I * Words];
      switch (Nd.K) {
      case ExprKind::Const:
        break;
      case ExprKind::Var:
        Row[Nd.Lit >> 6] |= uint64_t(1) << (Nd.Lit & 63);
        break;
      case ExprKind::Ite:
        orInto(Row, Nd.C);
        orInto(Row, Nd.A);
        orInto(Row, Nd.B);
        break;
      case ExprKind::Op:
        orInto(Row, Nd.A);
        orInto(Row, Nd.B);
        break;
      }
    }
    Built = true;
  }

  bool ok() const { return Built; }
  size_t words() const { return Words; }

  bool intersects(ExprRef R, const std::vector<uint64_t> &Set) const {
    const uint64_t *Row = &Bits[size_t(R) * Words];
    for (size_t W = 0; W < Words; ++W)
      if (Row[W] & Set[W])
        return true;
    return false;
  }

  void unionInto(ExprRef R, std::vector<uint64_t> &Set) const {
    const uint64_t *Row = &Bits[size_t(R) * Words];
    for (size_t W = 0; W < Words; ++W)
      Set[W] |= Row[W];
  }

private:
  void orInto(uint64_t *Row, ExprRef Child) {
    const uint64_t *Src = &Bits[size_t(Child) * Words];
    for (size_t W = 0; W < Words; ++W)
      Row[W] |= Src[W];
  }

  size_t Words = 0;
  std::vector<uint64_t> Bits;
  bool Built = false;
};

/// Streams two independent 64-bit FNV-style digests.
struct CanonHasher {
  uint64_t H1 = 0xcbf29ce484222325ull;
  uint64_t H2 = 0x84222325cbf29ce4ull;
  void mix(uint64_t V) {
    H1 ^= V;
    H1 *= 0x100000001b3ull;
    H2 += V ^ (H2 >> 29);
    H2 *= 0x9e3779b97f4a7c15ull;
    H2 ^= H2 >> 32;
  }
};

/// Canonical structural hash of a root list: nodes are numbered in
/// post-order of a DFS that walks the roots left to right, and variables
/// hash positionally (no var id, no origin) — structurally isomorphic
/// queries collide on purpose, since validity is closed under variable
/// renaming. This is what makes the cache hit across functions that
/// discharge the same callee contract.
DischargeCache::Key canonKey(const ExprArena &A,
                             const std::vector<ExprRef> &Roots) {
  CanonHasher H;
  std::unordered_map<ExprRef, uint32_t> Canon;
  std::vector<std::pair<ExprRef, unsigned>> Stack;
  for (ExprRef Root : Roots) {
    if (Canon.count(Root))
      continue;
    Stack.push_back({Root, 0});
    while (!Stack.empty()) {
      ExprRef R = Stack.back().first;
      if (Canon.count(R)) {
        Stack.pop_back();
        continue;
      }
      const ExprNode &N = A.node(R);
      unsigned NumCh =
          N.K == ExprKind::Op ? 2 : N.K == ExprKind::Ite ? 3 : 0;
      unsigned &CI = Stack.back().second;
      if (CI < NumCh) {
        ExprRef Ch = CI == 0 ? N.A : CI == 1 ? N.B : N.C;
        ++CI;
        if (!Canon.count(Ch))
          Stack.push_back({Ch, 0});
        continue;
      }
      Canon.emplace(R, uint32_t(Canon.size()));
      H.mix(0xA0 + uint64_t(N.K));
      switch (N.K) {
      case ExprKind::Const:
        H.mix(N.Lit);
        break;
      case ExprKind::Var:
        break;
      case ExprKind::Op:
        H.mix(uint64_t(N.Op));
        H.mix(Canon[N.A]);
        H.mix(Canon[N.B]);
        break;
      case ExprKind::Ite:
        H.mix(Canon[N.A]);
        H.mix(Canon[N.B]);
        H.mix(Canon[N.C]);
        break;
      }
      Stack.pop_back();
    }
  }
  H.mix(0x5eba11);
  for (ExprRef Root : Roots)
    H.mix(Canon[Root]);
  return DischargeCache::Key{H.H1, H.H2};
}

constexpr size_t NoDup = ~size_t(0);

struct Pending {
  size_t Ob = 0;
  std::vector<ExprRef> Attempt; ///< Simplified + sliced roots.
  bool HasGuardRoot = false;    ///< Attempt[size-2] is the (non-const) guard.
  DischargeCache::Key Key{};
  bool HasKey = false;
  size_t DupOf = NoDup; ///< Pending index of the first same-key survivor.
  // Worker-phase results; each worker owns its Pending slots exclusively.
  bool AttemptRan = false;
  SolveStatus AttemptStatus = SolveStatus::Unknown;
  SolveStats AttemptStats;
  bool ColdRan = false;
  SolveResult Cold;
};

bool isConstNonzero(const ExprArena &A, ExprRef R) {
  Word V;
  return A.constValue(R, V) && V != 0;
}

} // namespace

DischargeResult discharge(ExprArena &Arena, const WpResult &Wp,
                          const SolveOptions &SOpts,
                          const DischargeOptions &DOpts,
                          DischargeCache *SharedCache) {
  const size_t N = Wp.Obligations.size();
  DischargeResult Res;
  Res.Outcomes.resize(N);

  DischargeCache LocalCache;
  DischargeCache *Cache = SharedCache ? SharedCache : &LocalCache;

  // -- Phase A1: cheap tiers + query construction (all arena growth) -------
  std::unique_ptr<AbsDomain> Dom;
  std::unique_ptr<RefinedEval> Ref;
  std::vector<ExprRef> SimpMemo;
  if (DOpts.Tiers) {
    Dom.reset(new AbsDomain(Arena));
    Ref.reset(new RefinedEval(Arena, *Dom));
  }

  std::vector<std::vector<ExprRef>> Full(N); ///< PR-9-identical queries.
  std::vector<Pending> Pend;
  Pend.reserve(N);

  auto buildFull = [&](size_t I) {
    const Obligation &Ob = Wp.Obligations[I];
    Full[I] = Ob.Assumes;
    Full[I].push_back(Ob.Guard);
    Full[I].push_back(Arena.eq(Ob.Cond, Arena.constant(0)));
  };

  for (size_t I = 0; I < N; ++I) {
    const Obligation &Ob = Wp.Obligations[I];
    ObOutcome &Out = Res.Outcomes[I];

    // Tier wp: exactly the WP-time trivial test of the cold driver.
    Word CondC = 0;
    if (Arena.isConstZero(Ob.Guard) ||
        (Arena.constValue(Ob.Cond, CondC) && CondC != 0)) {
      Out.Status = SolveStatus::Unsat;
      Out.Tier = DischargeTier::Wp;
      Out.Trivial = true;
      continue;
    }

    ExprRef AttemptGuard = Ob.Guard;
    ExprRef AttemptCond = Ob.Cond;
    bool Killed = false;
    if (DOpts.Tiers) {
      // Tier interval: the analysis proves the condition (or kills the
      // path) without looking at the assumptions.
      if (Dom->provesNonzero(Ob.Cond) || Dom->provesZero(Ob.Guard)) {
        Out.Status = SolveStatus::Unsat;
        Out.Tier = DischargeTier::Interval;
        Killed = true;
      }
      if (!Killed) {
        // Tier rewrite, part 1 — subsumption: obligation chaining pushes
        // implies(Guard, Cond) after every Check, so a re-emitted check
        // (loop unrolls, repeated callee contracts) finds its own
        // implication — or its bare condition — among the assumptions.
        ExprRef Chain = Arena.implies(Ob.Guard, Ob.Cond);
        for (ExprRef A : Ob.Assumes)
          if (A == Chain || A == Ob.Cond) {
            Out.Status = SolveStatus::Unsat;
            Out.Tier = DischargeTier::Rewrite;
            Killed = true;
            break;
          }
      }
      if (!Killed) {
        // Tier interval, contextual: re-evaluate the condition's cone
        // with facts harvested from the in-scope assumptions and path
        // guard. This is what proves guard-dependent conditions — most
        // of all loop measures (`t - 1 <u t` under the in-scope
        // `t != 0`) — without a solver call.
        Ref->begin();
        for (ExprRef A : Ob.Assumes)
          Ref->assertTrue(A);
        Ref->assertTrue(Ob.Guard);
        if (Ref->contradiction() || Ref->provesNonzero(Ob.Cond)) {
          Out.Status = SolveStatus::Unsat;
          Out.Tier = DischargeTier::Interval;
          Killed = true;
        }
      }
      if (!Killed) {
        // Tier rewrite, part 2 — simplification with analysis facts
        // substituted in, plus vacuous-path detection (a false
        // assumption in scope makes the query unsatisfiable).
        ExprRef SC = simplify(Arena, *Dom, Ob.Cond, SimpMemo);
        ExprRef SG = simplify(Arena, *Dom, Ob.Guard, SimpMemo);
        if (isConstNonzero(Arena, SC) || Arena.isConstZero(SG)) {
          Out.Status = SolveStatus::Unsat;
          Out.Tier = DischargeTier::Rewrite;
          Killed = true;
        }
        if (!Killed)
          for (ExprRef A : Ob.Assumes) {
            ExprRef SA = simplify(Arena, *Dom, A, SimpMemo);
            if (Arena.isConstZero(SA)) {
              Out.Status = SolveStatus::Unsat;
              Out.Tier = DischargeTier::Rewrite;
              Killed = true;
              break;
            }
          }
        AttemptGuard = SG;
        AttemptCond = SC;
      }
    }
    if (Killed) {
      // The Differential claim audit re-checks every fast-tier proof
      // against the cold solver, so it needs the full query too.
      if (DOpts.Differential)
        buildFull(I);
      continue;
    }

    buildFull(I);
    Pending P;
    P.Ob = I;
    for (ExprRef A : Ob.Assumes) {
      ExprRef SA = DOpts.Tiers ? simplify(Arena, *Dom, A, SimpMemo) : A;
      if (!isConstNonzero(Arena, SA))
        P.Attempt.push_back(SA);
    }
    if (!isConstNonzero(Arena, AttemptGuard)) {
      P.Attempt.push_back(AttemptGuard);
      P.HasGuardRoot = true;
    }
    P.Attempt.push_back(Arena.eq(AttemptCond, Arena.constant(0)));
    Pend.push_back(std::move(P));
  }

  // -- Phase A2: support index over the final arena ------------------------
  SupportIndex Sup;
  if (DOpts.Slice && !Pend.empty())
    Sup.build(Arena);

  // -- Phase A3: slicing, cache lookup, dedup (fault hooks live here) ------
  std::unordered_map<uint64_t, size_t> FirstByKey; // Key.H1 -> pending idx
  std::vector<Pending> Survivors;
  Survivors.reserve(Pend.size());
  for (Pending &P : Pend) {
    if (DOpts.Slice && Sup.ok() && P.Attempt.size() > 1) {
      // Cone of influence: the goal is the last two roots (guard + the
      // cond == 0 comparison); keep every assumption whose variable
      // support touches the growing kept-union-goal set.
      size_t NumAs = P.Attempt.size() - 1;
      ExprRef GoalCondEq = P.Attempt.back();
      std::vector<uint64_t> Set(Sup.words(), 0);
      Sup.unionInto(GoalCondEq, Set);
      std::vector<uint8_t> Kept(NumAs, 0);
      // The guard root (when non-const) is part of the goal, not a
      // sliceable assumption: pin it and seed the cone with its support.
      size_t GuardIdx = NumAs; // sentinel: no guard root
      if (P.HasGuardRoot) {
        GuardIdx = NumAs - 1;
        Kept[GuardIdx] = 1;
        Sup.unionInto(P.Attempt[GuardIdx], Set);
      }
      bool Changed = true;
      while (Changed) {
        Changed = false;
        for (size_t A = 0; A < NumAs; ++A)
          if (!Kept[A] && Sup.intersects(P.Attempt[A], Set)) {
            Kept[A] = 1;
            Sup.unionInto(P.Attempt[A], Set);
            Changed = true;
          }
      }
      // Seeded fault vc-slice-dropped-support: drop the highest-index
      // live assumption. Sliced proofs stay sound (fewer constraints can
      // only turn Unsat into Sat, and Sat falls back to the cold path),
      // so the checker that kills this is the Differential partition
      // audit below.
      if (fi::on(fi::Fault::VcSliceDroppedSupport))
        for (size_t A = NumAs; A-- > 0;)
          if (Kept[A] && A != GuardIdx) {
            Kept[A] = 0;
            break;
          }
      if (DOpts.Differential) {
        // Partition audit: every dropped assumption must be variable-
        // disjoint from the kept-union-goal support. Recomputed from
        // scratch so a buggy fixpoint (or the seeded fault) is caught by
        // arithmetic, not by trusting the slicer's own bookkeeping.
        std::vector<uint64_t> AuditSet(Sup.words(), 0);
        Sup.unionInto(GoalCondEq, AuditSet);
        for (size_t A = 0; A < NumAs; ++A)
          if (Kept[A])
            Sup.unionInto(P.Attempt[A], AuditSet);
        for (size_t A = 0; A < NumAs; ++A)
          if (!Kept[A] && Sup.intersects(P.Attempt[A], AuditSet)) {
            ++Res.Counters.DiffMismatches;
            if (Res.DiffDetail.empty())
              Res.DiffDetail = "slice audit: obligation '" +
                               Wp.Obligations[P.Ob].Where +
                               "' dropped an assumption whose variables "
                               "intersect the kept cone";
          }
      }
      std::vector<ExprRef> Sliced;
      Sliced.reserve(P.Attempt.size());
      for (size_t A = 0; A < NumAs; ++A) {
        if (Kept[A])
          Sliced.push_back(P.Attempt[A]);
        else
          ++Res.Counters.SliceDroppedAssumes;
      }
      Sliced.push_back(GoalCondEq);
      P.Attempt = std::move(Sliced);
    }

    if (DOpts.Cache) {
      P.Key = canonKey(Arena, P.Attempt);
      P.HasKey = true;
      if (Cache->lookup(P.Key)) {
        ++Res.Counters.CacheHits;
        ObOutcome &Out = Res.Outcomes[P.Ob];
        Out.Status = SolveStatus::Unsat;
        Out.Tier = DischargeTier::Cache;
        continue; // resolved; never enters the solver fleet
      }
      auto It = FirstByKey.find(P.Key.H1 ^ P.Key.H2);
      if (It != FirstByKey.end() &&
          Survivors[It->second].Key == P.Key)
        P.DupOf = It->second;
      else
        FirstByKey[P.Key.H1 ^ P.Key.H2] = Survivors.size();
    }
    Survivors.push_back(std::move(P));
  }
  Pend = std::move(Survivors);

  // -- Phase B: the parallel obligation fleet ------------------------------
  std::vector<size_t> Solo;
  for (size_t PI = 0; PI < Pend.size(); ++PI)
    if (Pend[PI].DupOf == NoDup)
      Solo.push_back(PI);
  size_t Groups = std::min<size_t>(16, Solo.size());
  if (Groups > 0) {
    support::parallelFor(Groups, DOpts.Threads, [&](size_t GI) {
      size_t Begin = Solo.size() * GI / Groups;
      size_t End = Solo.size() * (GI + 1) / Groups;
      std::unique_ptr<IncrementalSolver> Inc;
      if (DOpts.Incremental)
        Inc.reset(new IncrementalSolver(Arena, SOpts));
      for (size_t K = Begin; K < End; ++K) {
        Pending &P = Pend[Solo[K]];
        const std::vector<ExprRef> &FullQ = Full[P.Ob];
        if (Inc) {
          P.AttemptStatus = Inc->solveNonzero(P.Attempt, P.AttemptStats);
          P.AttemptRan = true;
        } else if (P.Attempt != FullQ) {
          SolveResult R = solve(Arena, P.Attempt, SOpts);
          P.AttemptStatus = R.Status;
          P.AttemptStats = R.Stats;
          P.AttemptRan = true;
        }
        if (P.AttemptRan && P.AttemptStatus == SolveStatus::Unsat)
          continue;
        // Anything not proved falls back to the cold path on the
        // untouched query: models (and Unknowns) are always re-derived
        // with the full PR-9 discipline.
        P.Cold = solve(Arena, FullQ, SOpts);
        P.ColdRan = true;
      }
    });
  }

  // -- Phase C: sequential resolution in obligation order ------------------
  for (size_t PI = 0; PI < Pend.size(); ++PI) {
    Pending &P = Pend[PI];
    ObOutcome &Out = Res.Outcomes[P.Ob];
    if (P.DupOf != NoDup) {
      const ObOutcome &Rep = Res.Outcomes[Pend[P.DupOf].Ob];
      if (Rep.Status == SolveStatus::Unsat) {
        Out.Status = SolveStatus::Unsat;
        Out.Tier = DischargeTier::Cache;
        ++Res.Counters.CacheHits;
        continue;
      }
      // The representative wasn't proved; this duplicate solves its own
      // full query so its model is its own.
      ++Res.Counters.CacheMisses;
      SolveResult R = solve(Arena, Full[P.Ob], SOpts);
      Out.Status = R.Status;
      Out.Tier = DischargeTier::SatCold;
      Out.Model = std::move(R.Model);
      Out.Stats = R.Stats;
      ++Res.Counters.ColdSolves;
      continue;
    }
    if (P.HasKey)
      ++Res.Counters.CacheMisses;
    Out.Stats = P.AttemptStats;
    if (P.AttemptRan && P.AttemptStatus == SolveStatus::Unsat) {
      Out.Status = SolveStatus::Unsat;
      Out.Tier = DOpts.Incremental ? DischargeTier::SatShared
                                   : DischargeTier::SatCold;
      if (!DOpts.Incremental)
        ++Res.Counters.ColdSolves;
      if (P.HasKey)
        Cache->insert(P.Key);
      continue;
    }
    if (P.AttemptRan && !DOpts.Incremental)
      ++Res.Counters.ColdSolves;
    Out.Status = P.Cold.Status;
    Out.Tier = DischargeTier::SatCold;
    Out.Model = std::move(P.Cold.Model);
    addStats(Out.Stats, P.Cold.Stats);
    ++Res.Counters.ColdSolves;
    // A cold Unsat proves the attempt only when the attempt IS the full
    // query — a sliced proof claim must come from the sliced query
    // itself, or the cache would hold keys it never discharged.
    if (P.HasKey && P.Attempt == Full[P.Ob] &&
        P.Cold.Status == SolveStatus::Unsat)
      Cache->insert(P.Key);
  }

  for (const ObOutcome &O : Res.Outcomes)
    if (O.Status == SolveStatus::Unsat)
      ++Res.Counters.TierKills[size_t(O.Tier)];

  // -- Differential claim audit: every fast-tier proof must survive the
  // cold solver. (Sliced SatCold proofs are sound by construction —
  // dropping constraints only ever weakens a query — so only claims that
  // bypassed the solver, or used the shared context, are re-checked.)
  if (DOpts.Differential) {
    for (size_t I = 0; I < N; ++I) {
      const ObOutcome &O = Res.Outcomes[I];
      if (O.Status != SolveStatus::Unsat)
        continue;
      if (O.Tier != DischargeTier::Interval &&
          O.Tier != DischargeTier::Rewrite &&
          O.Tier != DischargeTier::Cache &&
          O.Tier != DischargeTier::SatShared)
        continue;
      if (Full[I].empty())
        continue;
      SolveResult R = solve(Arena, Full[I], SOpts);
      if (R.Status == SolveStatus::Sat) {
        ++Res.Counters.DiffMismatches;
        if (Res.DiffDetail.empty())
          Res.DiffDetail =
              "claim audit: obligation '" + Wp.Obligations[I].Where +
              "' was proved by tier " + tierName(O.Tier) +
              " but the cold solver found a model";
      }
    }
  }

  return Res;
}

} // namespace vc
} // namespace b2
