//===- vc/Discharge.h - Staged obligation discharge engine -----*- C++ -*-===//
//
// Part of the b2stack project: a C++ reproduction of "Integration
// Verification across Software and Hardware for a Simple Embedded System"
// (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged discharge pipeline between WP generation and the verdict
/// logic. Each obligation runs down a ladder of ever-more-expensive
/// tiers, and only the survivors pay for a SAT search:
///
///   wp        guard or condition folded to a constant during WP gen
///   interval  known-bits/interval analysis proves the condition
///   rewrite   simplification, assumption subsumption (duplicate checks
///             from loop unrolls / repeated callee contracts), vacuous
///             paths (a false assumption in scope)
///   cache     canonical-DAG-hash cache of previously proved queries
///   sat-shared  incremental shared-context solver proved Unsat
///   sat-cold    the cold single-query solver (authoritative)
///
/// Trust discipline: the fast tiers may only *prove*. Any Sat or Unknown
/// answer from a sliced/simplified/incremental attempt falls back to the
/// cold path on the original untouched query, so counterexample models —
/// the only artifacts that feed replay — always come from exactly the
/// PR-9 cold pipeline, bit for bit. The solved-obligation cache stores
/// 128 bits of canonical structural hash per proved query and nothing
/// else; Differential mode re-checks every fast-tier proof against the
/// cold solver and audits the slice partition, which is what the
/// vc-cache-stale-hit and vc-slice-dropped-support seeded faults are
/// killed with.
///
/// Determinism: the obligation-group partition is a function of the
/// obligation list alone (never the thread count), each group runs its
/// own incremental context in obligation order, and all counters are
/// accumulated in a sequential resolution pass — verdicts, models, and
/// every counter are bit-identical at any --threads value.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VC_DISCHARGE_H
#define B2_VC_DISCHARGE_H

#include "vc/Solve.h"
#include "vc/Wp.h"

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace b2 {
namespace vc {

enum class DischargeTier : uint8_t {
  Wp,        ///< Trivially folded during WP generation.
  Interval,  ///< Known-bits/interval abstract interpretation.
  Rewrite,   ///< Simplification / subsumption / vacuous-path pruning.
  Cache,     ///< Canonical-hash solved-obligation cache (or in-run dup).
  SatShared, ///< Incremental shared-context solver proved Unsat.
  SatCold,   ///< Cold single-query solver (authoritative for Sat).
  NumTiers
};

const char *tierName(DischargeTier T);

struct DischargeOptions {
  bool Tiers = true;        ///< Interval + rewrite pre-solver tiers.
  bool Slice = true;        ///< Cone-of-influence assumption slicing.
  bool Cache = true;        ///< Solved-obligation cache + in-run dedup.
  bool Incremental = true;  ///< Shared solver context per group.
  bool Differential = false; ///< Audit staged claims against the cold path.
  unsigned Threads = 1;     ///< Worker threads for the obligation fleet.
};

/// Solved-obligation cache: 128-bit canonical structural hashes of proved
/// (query-Unsat) sliced queries. Passing one cache to several
/// verifyFunction calls makes repeated contracts free across functions.
class DischargeCache {
public:
  struct Key {
    uint64_t H1 = 0, H2 = 0;
    bool operator==(const Key &O) const { return H1 == O.H1 && H2 == O.H2; }
  };

  /// True iff \p K was inserted earlier. Carries the vc-cache-stale-hit
  /// seeded fault: when armed, any non-empty cache answers any key.
  bool lookup(const Key &K) const;
  void insert(const Key &K) { Proved.insert(K); }
  size_t size() const { return Proved.size(); }

private:
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return size_t(K.H1 ^ (K.H2 * 0x9e3779b97f4a7c15ull));
    }
  };
  std::unordered_set<Key, KeyHash> Proved;
};

/// Per-obligation result of the pipeline.
struct ObOutcome {
  SolveStatus Status = SolveStatus::Unknown;
  DischargeTier Tier = DischargeTier::SatCold;
  bool Trivial = false;    ///< Tier Wp: matched the WP-time constant fold.
  std::vector<Word> Model; ///< Sat only; always from the cold solver.
  SolveStats Stats;
};

/// Deterministic pipeline counters (all accumulated sequentially).
struct DischargeCounters {
  uint64_t TierKills[size_t(DischargeTier::NumTiers)] = {};
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t SliceDroppedAssumes = 0;
  uint64_t ColdSolves = 0;     ///< Cold solve() calls (fallbacks included).
  uint64_t DiffMismatches = 0; ///< Differential mode only.
};

struct DischargeResult {
  std::vector<ObOutcome> Outcomes; ///< Parallel to Wp.Obligations.
  DischargeCounters Counters;
  std::string DiffDetail; ///< First mismatch, human-readable.
};

/// Runs every obligation of \p Wp down the tier ladder. Appends rewrite
/// products to \p Arena (sequential phase only; the parallel phase treats
/// the arena as immutable).
DischargeResult discharge(ExprArena &Arena, const WpResult &Wp,
                          const SolveOptions &SOpts,
                          const DischargeOptions &DOpts,
                          DischargeCache *SharedCache = nullptr);

} // namespace vc
} // namespace b2

#endif // B2_VC_DISCHARGE_H
