//===- vc/Analysis.cpp - Cheap pre-solver tiers over the Expr DAG ---------===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vc/Analysis.h"

#include <cassert>
#include <unordered_set>

namespace b2 {
namespace vc {
namespace {

using bedrock2::BinOp;

Word smear(Word V) {
  V |= V >> 1;
  V |= V >> 2;
  V |= V >> 4;
  V |= V >> 8;
  V |= V >> 16;
  return V;
}

AbsVal top() { return AbsVal{}; }

AbsVal exact(Word V) { return AbsVal{~V, V, V, V}; }

AbsVal boolRange() { return AbsVal{~Word(1), 0, 0, 1}; }

/// Tightens bits from range and range from bits until stable (two rounds
/// suffice: each direction is idempotent). A contradictory value — which a
/// sound transfer never produces for a reachable node — degrades to top.
AbsVal normalize(AbsVal V) {
  for (int Round = 0; Round < 2; ++Round) {
    if ((V.KnownZero & V.KnownOne) != 0)
      return top();
    if (V.Lo < V.KnownOne)
      V.Lo = V.KnownOne;
    if (V.Hi > ~V.KnownZero)
      V.Hi = ~V.KnownZero;
    if (V.Lo > V.Hi)
      return top();
    // Bits above the highest bit where Lo and Hi differ are decided.
    Word Diff = V.Lo ^ V.Hi;
    Word Mask = smear(Diff); // Undecided bits (and below the top diff).
    V.KnownOne |= V.Lo & ~Mask;
    V.KnownZero |= ~V.Lo & ~Mask;
  }
  return V;
}

/// Trit: -1 unknown, 0/1 known.
int knownBit(const AbsVal &V, unsigned I) {
  Word M = Word(1) << I;
  if (V.KnownOne & M)
    return 1;
  if (V.KnownZero & M)
    return 0;
  return -1;
}

/// Bitwise ripple-carry over trits; \p Cin is a trit. Computes the known
/// bits of A + B + Cin exactly (per-bit, given the operand trits).
AbsVal addBits(const AbsVal &A, const AbsVal &B, int Cin) {
  AbsVal Out = top();
  Out.Hi = ~Word(0);
  int C = Cin;
  for (unsigned I = 0; I < 32; ++I) {
    int Ai = knownBit(A, I), Bi = knownBit(B, I);
    int Sum;
    if (Ai >= 0 && Bi >= 0 && C >= 0)
      Sum = Ai ^ Bi ^ C;
    else
      Sum = -1;
    if (Sum == 1)
      Out.KnownOne |= Word(1) << I;
    else if (Sum == 0)
      Out.KnownZero |= Word(1) << I;
    // Majority carry: decided when two inputs agree.
    if (Ai >= 0 && Ai == Bi)
      C = Ai;
    else if (Ai >= 0 && Ai == C)
      ; // carry stays C
    else if (Bi >= 0 && Bi == C)
      ; // carry stays C
    else
      C = -1;
  }
  return Out;
}

AbsVal negBits(const AbsVal &B) {
  // ~b: swap the known masks; range is handled by the caller.
  AbsVal Out = top();
  Out.KnownZero = B.KnownOne;
  Out.KnownOne = B.KnownZero;
  return Out;
}

AbsVal transferOp(BinOp O, const AbsVal &A, const AbsVal &B) {
  AbsVal Out = top();
  switch (O) {
  case BinOp::Add: {
    Out = addBits(A, B, 0);
    DWord Lo = DWord(A.Lo) + B.Lo, Hi = DWord(A.Hi) + B.Hi;
    if (Hi <= ~Word(0)) {
      Out.Lo = Word(Lo);
      Out.Hi = Word(Hi);
    } else if (Lo > ~Word(0)) {
      Out.Lo = Word(Lo); // Both wrap exactly once.
      Out.Hi = Word(Hi);
    }
    break;
  }
  case BinOp::Sub: {
    Out = addBits(A, negBits(B), 1);
    if (A.Lo >= B.Hi) {
      Out.Lo = A.Lo - B.Hi;
      Out.Hi = A.Hi - B.Lo;
    } else if (A.Hi < B.Lo) {
      Out.Lo = A.Lo - B.Hi; // Always borrows: wraps exactly once.
      Out.Hi = A.Hi - B.Lo;
    }
    break;
  }
  case BinOp::And:
    Out.KnownZero = A.KnownZero | B.KnownZero;
    Out.KnownOne = A.KnownOne & B.KnownOne;
    Out.Lo = 0;
    Out.Hi = A.Hi < B.Hi ? A.Hi : B.Hi;
    break;
  case BinOp::Or:
    Out.KnownZero = A.KnownZero & B.KnownZero;
    Out.KnownOne = A.KnownOne | B.KnownOne;
    Out.Lo = A.Lo > B.Lo ? A.Lo : B.Lo;
    Out.Hi = smear(A.Hi | B.Hi);
    break;
  case BinOp::Xor:
    Out.KnownZero = (A.KnownZero & B.KnownZero) | (A.KnownOne & B.KnownOne);
    Out.KnownOne = (A.KnownZero & B.KnownOne) | (A.KnownOne & B.KnownZero);
    Out.Lo = 0;
    Out.Hi = smear(A.Hi | B.Hi);
    break;
  case BinOp::Eq:
    Out = boolRange();
    if (A.Hi < B.Lo || B.Hi < A.Lo ||
        ((A.KnownOne & B.KnownZero) | (B.KnownOne & A.KnownZero)) != 0)
      Out = exact(0);
    else if (A.Lo == A.Hi && B.Lo == B.Hi && A.Lo == B.Lo)
      Out = exact(1);
    break;
  case BinOp::Ltu:
    Out = boolRange();
    if (A.Hi < B.Lo)
      Out = exact(1);
    else if (A.Lo >= B.Hi)
      Out = exact(0);
    break;
  case BinOp::Lts: {
    Out = boolRange();
    int Sa = knownBit(A, 31), Sb = knownBit(B, 31);
    if (Sa >= 0 && Sb >= 0) {
      if (Sa == 1 && Sb == 0)
        Out = exact(1);
      else if (Sa == 0 && Sb == 1)
        Out = exact(0);
      else if (A.Hi < B.Lo) // Same sign: signed order == unsigned order.
        Out = exact(1);
      else if (A.Lo >= B.Hi)
        Out = exact(0);
    }
    break;
  }
  case BinOp::Slu:
    if (B.Lo == B.Hi) {
      unsigned S = B.Lo & 31;
      Out.KnownZero = (A.KnownZero << S) | ~(~Word(0) << S);
      Out.KnownOne = A.KnownOne << S;
      if (A.Hi <= (~Word(0) >> S)) {
        Out.Lo = A.Lo << S;
        Out.Hi = A.Hi << S;
      }
    }
    break;
  case BinOp::Sru:
    if (B.Lo == B.Hi) {
      unsigned S = B.Lo & 31;
      Out.KnownZero = (A.KnownZero >> S) | (S ? ~(~Word(0) >> S) : 0);
      Out.KnownOne = A.KnownOne >> S;
      Out.Lo = A.Lo >> S;
      Out.Hi = A.Hi >> S;
    }
    break;
  case BinOp::Srs:
    if (B.Lo == B.Hi && knownBit(A, 31) == 0) {
      unsigned S = B.Lo & 31;
      Out.KnownZero = (A.KnownZero >> S) | (S ? ~(~Word(0) >> S) : 0);
      Out.KnownOne = A.KnownOne >> S;
      Out.Lo = A.Lo >> S;
      Out.Hi = A.Hi >> S;
    }
    break;
  case BinOp::Mul: {
    DWord Prod = DWord(A.Hi) * B.Hi;
    if (Prod <= ~Word(0)) {
      Out.Lo = Word(DWord(A.Lo) * B.Lo);
      Out.Hi = Word(Prod);
    }
    // Trailing zeros add: tz(a*b) >= tz(a) + tz(b).
    unsigned Tz = 0;
    while (Tz < 32 && ((A.KnownZero >> Tz) & 1))
      ++Tz;
    unsigned TzB = 0;
    while (TzB < 32 && ((B.KnownZero >> TzB) & 1))
      ++TzB;
    unsigned T = Tz + TzB;
    if (T >= 32)
      Out.KnownZero = ~Word(0);
    else if (T > 0)
      Out.KnownZero |= ~(~Word(0) << T);
    break;
  }
  case BinOp::MulHuu: {
    DWord Prod = DWord(A.Hi) * B.Hi;
    Out.Lo = Word((DWord(A.Lo) * B.Lo) >> 32);
    Out.Hi = Word(Prod >> 32);
    break;
  }
  case BinOp::Divu:
    if (B.Hi == 0) {
      Out = exact(~Word(0)); // divu by zero: all ones.
    } else {
      Out.Lo = A.Lo / B.Hi;
      Out.Hi = B.Lo > 0 ? A.Hi / B.Lo : ~Word(0);
    }
    break;
  case BinOp::Remu:
    Out.Lo = 0;
    Out.Hi = A.Hi; // remu(a, b) <= a in every case (including b == 0).
    if (B.Lo > 0 && B.Hi - 1 < Out.Hi)
      Out.Hi = B.Hi - 1;
    break;
  }
  return normalize(Out);
}

/// Intersects \p F into \p V. Returns false when the intersection is
/// empty — unlike normalize(), which degrades contradictions to top,
/// RefinedEval needs the signal: an empty meet on a context-implied fact
/// proves the context unsatisfiable.
bool meetInto(AbsVal &V, const AbsVal &F) {
  V.KnownZero |= F.KnownZero;
  V.KnownOne |= F.KnownOne;
  if (F.Lo > V.Lo)
    V.Lo = F.Lo;
  if (F.Hi < V.Hi)
    V.Hi = F.Hi;
  if ((V.KnownZero & V.KnownOne) != 0)
    return false;
  if (V.Lo < V.KnownOne)
    V.Lo = V.KnownOne;
  if (V.Hi > ~V.KnownZero)
    V.Hi = ~V.KnownZero;
  return V.Lo <= V.Hi;
}

} // namespace

AbsDomain::AbsDomain(const ExprArena &Arena) {
  Vals.resize(Arena.size());
  for (ExprRef R = 0; R < Arena.size(); ++R) {
    const ExprNode &N = Arena.node(R);
    AbsVal V;
    switch (N.K) {
    case ExprKind::Const:
      V = exact(N.Lit);
      break;
    case ExprKind::Var:
      V = top();
      break;
    case ExprKind::Op:
      V = transferOp(N.Op, Vals[N.A], Vals[N.B]);
      break;
    case ExprKind::Ite: {
      const AbsVal &C = Vals[N.A];
      if (C.Lo > 0 || C.KnownOne != 0) {
        V = Vals[N.B];
      } else if (C.Hi == 0) {
        V = Vals[N.C];
      } else {
        const AbsVal &T = Vals[N.B], &E = Vals[N.C];
        V.KnownZero = T.KnownZero & E.KnownZero;
        V.KnownOne = T.KnownOne & E.KnownOne;
        V.Lo = T.Lo < E.Lo ? T.Lo : E.Lo;
        V.Hi = T.Hi > E.Hi ? T.Hi : E.Hi;
      }
      break;
    }
    }
    if (N.Is01) {
      AbsVal B = boolRange();
      V.KnownZero |= B.KnownZero;
      if (V.Hi > 1)
        V.Hi = 1;
    }
    Vals[R] = normalize(V);
  }
}

ExprRef simplify(ExprArena &Arena, const AbsDomain &Dom, ExprRef R,
                 std::vector<ExprRef> &Cache) {
  constexpr ExprRef None = ~ExprRef(0);
  if (Cache.size() <= R)
    Cache.resize(R + 1, None);
  std::vector<ExprRef> Stack{R};
  while (!Stack.empty()) {
    ExprRef Cur = Stack.back();
    if (Cache[Cur] != None) {
      Stack.pop_back();
      continue;
    }
    Word V;
    if (Dom.singleton(Cur, V)) {
      Cache[Cur] = Arena.constant(V);
      Stack.pop_back();
      continue;
    }
    // Copy: creating nodes below may reallocate the arena's node table.
    const ExprNode N = Arena.node(Cur);
    switch (N.K) {
    case ExprKind::Const:
    case ExprKind::Var:
      Cache[Cur] = Cur;
      Stack.pop_back();
      break;
    case ExprKind::Op: {
      ExprRef A = Cache[N.A], B = Cache[N.B];
      if (A == None || B == None) {
        if (A == None)
          Stack.push_back(N.A);
        if (B == None)
          Stack.push_back(N.B);
        break;
      }
      Cache[Cur] = Arena.op(N.Op, A, B);
      Stack.pop_back();
      break;
    }
    case ExprKind::Ite: {
      // Constant-guard pruning on analysis facts, not just literal consts.
      if (Dom.provesNonzero(N.A)) {
        if (Cache[N.B] == None) {
          Stack.push_back(N.B);
          break;
        }
        Cache[Cur] = Cache[N.B];
        Stack.pop_back();
        break;
      }
      if (Dom.provesZero(N.A)) {
        if (Cache[N.C] == None) {
          Stack.push_back(N.C);
          break;
        }
        Cache[Cur] = Cache[N.C];
        Stack.pop_back();
        break;
      }
      ExprRef A = Cache[N.A], B = Cache[N.B], C = Cache[N.C];
      if (A == None || B == None || C == None) {
        if (A == None)
          Stack.push_back(N.A);
        if (B == None)
          Stack.push_back(N.B);
        if (C == None)
          Stack.push_back(N.C);
        break;
      }
      Cache[Cur] = Arena.ite(A, B, C);
      Stack.pop_back();
      break;
    }
    }
  }
  return Cache[R];
}

void RefinedEval::addFact(ExprRef R, const AbsVal &F) {
  if (Contra)
    return;
  auto It = Facts.find(R);
  AbsVal V = It != Facts.end() ? It->second : Base.val(R);
  if (!meetInto(V, F)) {
    Contra = true;
    return;
  }
  Facts[R] = V;
}

void RefinedEval::assertTrue(ExprRef R) {
  std::vector<ExprRef> Work{R};
  std::unordered_set<ExprRef> Seen;
  while (!Work.empty() && !Contra) {
    ExprRef Cur = Work.back();
    Work.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    const ExprNode &N = Arena.node(Cur);
    // The conjunct itself is nonzero — for unsigned words that is
    // exactly Lo >= 1, and for a 0/1-valued node it pins the value.
    AbsVal Self;
    Self.Lo = 1;
    if (N.Is01)
      Self = exact(1);
    addFact(Cur, Self);
    if (N.K != ExprKind::Op)
      continue;
    Word C;
    switch (N.Op) {
    case BinOp::And:
      // A nonzero AND forces both operands nonzero (a zero operand
      // zeroes the conjunction), so each side is itself asserted.
      Work.push_back(N.A);
      Work.push_back(N.B);
      break;
    case BinOp::Ltu:
      if (Arena.constValue(N.A, C) && C != ~Word(0)) {
        AbsVal G;
        G.Lo = C + 1;
        addFact(N.B, G);
        // c <u x makes x nonzero, so x decomposes as an asserted
        // conjunct in its own right — the toBool normal form `0 <u W`
        // funnels every boolean coercion through here.
        Work.push_back(N.B);
      } else if (Arena.constValue(N.B, C) && C != 0) {
        AbsVal G;
        G.Hi = C - 1;
        addFact(N.A, G);
      }
      break;
    case BinOp::Eq:
      if (Arena.constValue(N.B, C)) {
        addFact(N.A, exact(C));
        if (C != 0)
          Work.push_back(N.A); // x == c, c nonzero: x is asserted too.
      } else if (Arena.constValue(N.A, C)) {
        addFact(N.B, exact(C));
        if (C != 0)
          Work.push_back(N.B);
      }
      break;
    default:
      break;
    }
  }
}

AbsVal RefinedEval::eval(ExprRef R) {
  std::vector<ExprRef> Stack{R};
  while (!Stack.empty()) {
    ExprRef Cur = Stack.back();
    if (Memo.count(Cur)) {
      Stack.pop_back();
      continue;
    }
    const ExprNode &N = Arena.node(Cur);
    unsigned NumCh = N.K == ExprKind::Op ? 2 : N.K == ExprKind::Ite ? 3 : 0;
    bool Ready = true;
    for (unsigned I = 0; I < NumCh; ++I) {
      ExprRef Ch = I == 0 ? N.A : I == 1 ? N.B : N.C;
      if (!Memo.count(Ch)) {
        Stack.push_back(Ch);
        Ready = false;
      }
    }
    if (!Ready)
      continue;
    AbsVal V;
    switch (N.K) {
    case ExprKind::Const:
      V = exact(N.Lit);
      break;
    case ExprKind::Var:
      V = top();
      break;
    case ExprKind::Op: {
      V = transferOp(N.Op, Memo[N.A], Memo[N.B]);
      if (N.Op == BinOp::Ltu && V.Lo != V.Hi) {
        // Relational special case the interval product cannot express:
        // `x - k <u x` holds whenever the context bounds x >= k >= 1 —
        // the subtraction cannot wrap, so it strictly decreases. (An
        // added constant c is the same statement with k = -c.) This is
        // what discharges loop-measure obligations under `x != 0`.
        const ExprNode &L = Arena.node(N.A);
        Word C;
        if (L.K == ExprKind::Op && L.A == N.B && Arena.constValue(L.B, C)) {
          Word K = L.Op == BinOp::Sub   ? C
                   : L.Op == BinOp::Add ? Word(0) - C
                                        : Word(0);
          if (K >= 1 && Memo[N.B].Lo >= K)
            V = exact(1);
        }
      }
      break;
    }
    case ExprKind::Ite: {
      const AbsVal &C = Memo[N.A];
      if (C.Lo > 0 || C.KnownOne != 0) {
        V = Memo[N.B];
      } else if (C.Hi == 0) {
        V = Memo[N.C];
      } else {
        const AbsVal &T = Memo[N.B], &E = Memo[N.C];
        V.KnownZero = T.KnownZero & E.KnownZero;
        V.KnownOne = T.KnownOne & E.KnownOne;
        V.Lo = T.Lo < E.Lo ? T.Lo : E.Lo;
        V.Hi = T.Hi > E.Hi ? T.Hi : E.Hi;
      }
      break;
    }
    }
    if (N.Is01) {
      V.KnownZero |= ~Word(1);
      if (V.Hi > 1)
        V.Hi = 1;
    }
    // Meet with the global domain and any harvested fact: both are sound
    // for every context valuation, so an empty meet proves the context
    // unsatisfiable.
    if (!meetInto(V, Base.val(Cur)))
      Contra = true;
    auto FIt = Facts.find(Cur);
    if (!Contra && FIt != Facts.end() && !meetInto(V, FIt->second))
      Contra = true;
    Memo[Cur] = normalize(V);
    Stack.pop_back();
  }
  return Memo[R];
}

bool RefinedEval::provesNonzero(ExprRef R) {
  if (Contra)
    return true;
  AbsVal V = eval(R);
  if (Contra)
    return true;
  return V.Lo > 0 || V.KnownOne != 0;
}

} // namespace vc
} // namespace b2
