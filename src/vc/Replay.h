//===- vc/Replay.h - Concrete counterexample replay ------------*- C++ -*-===//
//
// Part of the b2stack project: a C++ reproduction of "Integration
// Verification across Software and Hardware for a Simple Embedded System"
// (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trust boundary of the VC engine: symbolic results are never
/// believed un-witnessed. Every satisfying model becomes concrete inputs
/// (entry arguments from the parameter variables, MMIOREAD answers from
/// the guarded event list) and is re-run through bedrock2::Interp in
/// Reference mode; a Counterexample verdict is issued only if the checking
/// interpreter reports the *same* Fault enumerator the obligation
/// predicted. A model that fails to reproduce — a solver bug, an encoding
/// bug, or honest havoc abstraction at annotated loop heads — demotes the
/// obligation to Unknown.
///
/// The dual direction: probeValid() stress-tests Valid verdicts with N
/// seeded concrete executions (random arguments, random MMIO responses).
/// A run that trips any contract fault means the WP generator lost an
/// obligation — which is exactly how the seeded vc-wp-dropped-conjunct
/// fault gets killed in the adequacy matrix.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VC_REPLAY_H
#define B2_VC_REPLAY_H

#include "bedrock2/Semantics.h"
#include "vc/Wp.h"

#include <string>
#include <vector>

namespace b2 {
namespace vc {

struct ReplayOutcome {
  bool Confirmed = false;       ///< Interpreter faulted exactly as predicted.
  bedrock2::Fault Observed = bedrock2::Fault::None;
  std::string Detail;           ///< Interpreter fault detail / mismatch note.
  std::vector<Word> Args;       ///< Concrete entry arguments used.
};

struct ReplayOptions {
  uint64_t Fuel = 2'000'000;
  Word RamBytes = 64 * 1024;
  bedrock2::StackallocPolicy Stack;
};

/// Replays \p Model (one Word per arena var) against the interpreter and
/// reports whether it reproduces \p Expected.
ReplayOutcome replayModel(const bedrock2::Program &P, const std::string &Func,
                          const ExprArena &Arena, const WpResult &Wp,
                          const std::vector<Word> &Model,
                          bedrock2::Fault Expected,
                          const ReplayOptions &Opts = ReplayOptions());

/// Runs \p Probes seeded concrete executions of \p Func with random
/// arguments satisfying nothing in particular and random MMIO responses.
/// Returns the number of runs that violated a contract (top-level
/// precondition rejections and fuel exhaustion do not count); \p Detail
/// describes the first violation.
unsigned probeValid(const bedrock2::Program &P, const std::string &Func,
                    unsigned Probes, uint64_t Seed, std::string &Detail,
                    const ReplayOptions &Opts = ReplayOptions());

} // namespace vc
} // namespace b2

#endif // B2_VC_REPLAY_H
