//===- vc/Vc.cpp - VC engine driver: generate, solve, replay --------------===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vc/Vc.h"

#include "support/Json.h"
#include "support/Metrics.h"

namespace b2 {
namespace vc {

const char *verdictName(Verdict V) {
  switch (V) {
  case Verdict::Valid:
    return "valid";
  case Verdict::Counterexample:
    return "counterexample";
  case Verdict::Unknown:
    return "unknown";
  }
  return "?";
}

const char *obStatusName(ObStatus S) {
  switch (S) {
  case ObStatus::ProvedTrivial:
    return "proved-trivial";
  case ObStatus::Proved:
    return "proved";
  case ObStatus::CexConfirmed:
    return "cex-confirmed";
  case ObStatus::CexUnconfirmed:
    return "cex-unconfirmed";
  case ObStatus::BudgetExhausted:
    return "budget-exhausted";
  case ObStatus::CoverageIncomplete:
    return "coverage-incomplete";
  }
  return "?";
}

FuncReport verifyFunction(const bedrock2::Program &P, const std::string &Func,
                          const std::string &ProgramLabel,
                          const VcOptions &Opts) {
  FuncReport Rep;
  Rep.Program = ProgramLabel;
  Rep.Func = Func;
  metrics::add(metrics::Id::VcFuncsChecked);

  ExprArena Arena;
  WpResult Wp = genVCs(P, Func, Arena, Opts.Wp);
  if (!Wp.Ok) {
    Rep.Error = Wp.Error;
    Rep.V = Verdict::Unknown;
    metrics::add(metrics::Id::VcUnknown);
    return Rep;
  }
  metrics::add(metrics::Id::VcVcsGenerated, Wp.Obligations.size());

  ReplayOptions ROpts;
  ROpts.Fuel = Opts.ReplayFuel;
  ROpts.RamBytes = Opts.Wp.RamBytes;
  ROpts.Stack = Opts.Wp.Stack;

  // Every obligation runs down the staged tier ladder (interval/rewrite
  // pre-solvers, slicing, cache, incremental fleet) before anything cold;
  // a disabled pipeline (--sat-only) degenerates to one cold solve per
  // obligation — the exact pre-staging behavior. Verdict resolution below
  // stays sequential and in obligation order either way.
  DischargeResult DR = discharge(Arena, Wp, Opts.Solve, Opts.Discharge,
                                 Opts.SharedCache);
  Rep.Pipeline = DR.Counters;
  Rep.DiffDetail = DR.DiffDetail;
  metrics::add(metrics::Id::VcTierIntervalKills,
               DR.Counters.TierKills[size_t(DischargeTier::Interval)]);
  metrics::add(metrics::Id::VcTierRewriteKills,
               DR.Counters.TierKills[size_t(DischargeTier::Rewrite)]);
  metrics::add(metrics::Id::VcCacheHits, DR.Counters.CacheHits);
  metrics::add(metrics::Id::VcCacheMisses, DR.Counters.CacheMisses);
  metrics::add(metrics::Id::VcSliceDropped, DR.Counters.SliceDroppedAssumes);
  metrics::add(metrics::Id::VcIncrementalProved,
               DR.Counters.TierKills[size_t(DischargeTier::SatShared)]);
  metrics::add(metrics::Id::VcColdSolves, DR.Counters.ColdSolves);
  metrics::add(metrics::Id::VcDiffMismatches, DR.Counters.DiffMismatches);

  bool AllProved = DR.Counters.DiffMismatches == 0;
  for (size_t I = 0; I < Wp.Obligations.size(); ++I) {
    const Obligation &Ob = Wp.Obligations[I];
    ObOutcome &Out = DR.Outcomes[I];
    ObReport OR;
    OR.Kind = Ob.Kind;
    OR.Where = Ob.Where;
    OR.Expected = Ob.Expected;
    OR.Tier = Out.Tier;

    Rep.Solver.Clauses += Out.Stats.Clauses;
    Rep.Solver.Conflicts += Out.Stats.Conflicts;
    Rep.Solver.Decisions += Out.Stats.Decisions;
    Rep.Solver.Propagations += Out.Stats.Propagations;

    switch (Out.Status) {
    case SolveStatus::Unsat:
      if (Out.Trivial) {
        OR.Status = ObStatus::ProvedTrivial;
        ++Rep.Trivial;
      } else {
        OR.Status = ObStatus::Proved;
      }
      ++Rep.Proved;
      break;
    case SolveStatus::Unknown:
      OR.Status = ObStatus::BudgetExhausted;
      AllProved = false;
      break;
    case SolveStatus::Sat:
      if (Ob.Kind == ObKind::Coverage) {
        // A real execution escapes the analyzed bound. Not a bug — a
        // coverage gap. Caps the verdict at Unknown.
        OR.Status = ObStatus::CoverageIncomplete;
        AllProved = false;
        break;
      }
      {
        ReplayOutcome RO = replayModel(P, Func, Arena, Wp, Out.Model,
                                       Ob.Expected, ROpts);
        if (RO.Confirmed) {
          metrics::add(metrics::Id::VcReplayConfirmed);
          OR.Status = ObStatus::CexConfirmed;
          Rep.Obligations.push_back(OR);
          Rep.V = Verdict::Counterexample;
          Rep.CexWhere = Ob.Where;
          Rep.CexFault = Ob.Expected;
          Rep.CexArgs = RO.Args;
          Rep.CexDetail = RO.Detail;
          Rep.DagNodes = Arena.size();
          metrics::add(metrics::Id::VcDagNodes, Arena.size());
          metrics::add(metrics::Id::VcClauses, Rep.Solver.Clauses);
          metrics::add(metrics::Id::VcConflicts, Rep.Solver.Conflicts);
          metrics::add(metrics::Id::VcDecisions, Rep.Solver.Decisions);
          return Rep;
        }
        metrics::add(metrics::Id::VcReplayUnconfirmed);
        OR.Status = ObStatus::CexUnconfirmed;
        AllProved = false;
        // Havoc-tainted obligations legitimately over-approximate the
        // loop head; their models may describe no real execution, and
        // quietly demoting to Unknown is the designed behavior. An
        // unconfirmed model anywhere else means the solver or the
        // encoding lied — surfaced as an alarm (nonzero exit in tools).
        if (!Ob.HavocTainted)
          ++Rep.Unconfirmed;
      }
      break;
    }
    Rep.Obligations.push_back(OR);
  }

  Rep.V = AllProved ? Verdict::Valid : Verdict::Unknown;

  // Stress-test Valid verdicts with concrete executions: a run violating
  // any contract contradicts the proof and demotes it.
  if (Rep.V == Verdict::Valid && Opts.ProbeValidVerdicts) {
    std::string Detail;
    Rep.ProbeViolations =
        probeValid(P, Func, Opts.Probes, Opts.ProbeSeed, Detail, ROpts);
    if (Rep.ProbeViolations != 0) {
      Rep.V = Verdict::Unknown;
      Rep.CexDetail = Detail;
    }
  }

  Rep.DagNodes = Arena.size();
  metrics::add(metrics::Id::VcDagNodes, Arena.size());
  metrics::add(metrics::Id::VcClauses, Rep.Solver.Clauses);
  metrics::add(metrics::Id::VcConflicts, Rep.Solver.Conflicts);
  metrics::add(metrics::Id::VcDecisions, Rep.Solver.Decisions);
  metrics::add(Rep.V == Verdict::Valid ? metrics::Id::VcValid
                                       : metrics::Id::VcUnknown);
  return Rep;
}

std::string vcJson(const std::vector<FuncReport> &Reports) {
  support::JsonWriter J;
  J.beginObject();
  J.key("schema").value("b2stack-vc-v2");
  J.key("funcs").beginArray();
  for (const FuncReport &R : Reports) {
    J.beginObject();
    J.key("program").value(R.Program);
    J.key("func").value(R.Func);
    J.key("verdict").value(verdictName(R.V));
    if (!R.Error.empty())
      J.key("error").value(R.Error);
    J.key("obligations").value(uint64_t(R.Obligations.size()));
    J.key("proved").value(R.Proved);
    J.key("proved_trivial").value(R.Trivial);
    J.key("unconfirmed_cex").value(R.Unconfirmed);
    J.key("probe_violations").value(R.ProbeViolations);
    J.key("dag_nodes").value(R.DagNodes);
    J.key("solver").beginObject();
    J.key("clauses").value(R.Solver.Clauses);
    J.key("conflicts").value(R.Solver.Conflicts);
    J.key("decisions").value(R.Solver.Decisions);
    J.key("propagations").value(R.Solver.Propagations);
    J.endObject();
    J.key("tiers").beginObject();
    for (size_t T = 0; T < size_t(DischargeTier::NumTiers); ++T)
      J.key(tierName(DischargeTier(T)))
          .value(R.Pipeline.TierKills[T]);
    J.endObject();
    J.key("cache_hits").value(R.Pipeline.CacheHits);
    J.key("cache_misses").value(R.Pipeline.CacheMisses);
    J.key("slice_dropped_assumes").value(R.Pipeline.SliceDroppedAssumes);
    J.key("cold_solves").value(R.Pipeline.ColdSolves);
    J.key("diff_mismatches").value(R.Pipeline.DiffMismatches);
    if (R.V == Verdict::Counterexample) {
      J.key("cex").beginObject();
      J.key("where").value(R.CexWhere);
      J.key("fault").value(bedrock2::faultName(R.CexFault));
      J.key("detail").value(R.CexDetail);
      J.key("args").beginArray();
      for (Word A : R.CexArgs)
        J.value(uint64_t(A));
      J.endArray();
      J.endObject();
    }
    J.key("checks").beginArray();
    for (const ObReport &OR : R.Obligations) {
      J.beginObject();
      J.key("kind").value(OR.Kind == ObKind::Check ? "check" : "coverage");
      J.key("status").value(obStatusName(OR.Status));
      J.key("tier").value(tierName(OR.Tier));
      J.key("where").value(OR.Where);
      J.key("fault").value(bedrock2::faultName(OR.Expected));
      J.endObject();
    }
    J.endArray();
    J.endObject();
  }
  J.endArray();
  J.endObject();
  return J.str();
}

} // namespace vc
} // namespace b2
