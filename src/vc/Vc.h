//===- vc/Vc.h - VC engine driver: generate, solve, replay -----*- C++ -*-===//
//
// Part of the b2stack project: a C++ reproduction of "Integration
// Verification across Software and Hardware for a Simple Embedded System"
// (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Orchestrates one function's verification: WP generation, per-obligation
/// bit-blasting, and the replay discipline that makes the verdicts
/// trustworthy. Verdict semantics:
///
///  * Valid          — every obligation (Check and Coverage) proved.
///  * Counterexample — some Check obligation has a model the checking
///                     interpreter CONFIRMS: the concrete run faults with
///                     exactly the predicted Fault enumerator. The report
///                     carries the inputs. Never issued un-witnessed.
///  * Unknown        — anything else: a solver budget exhausted, a
///                     Coverage obligation unproved (unroll/call-depth
///                     residue), or a model that failed to replay (havoc
///                     abstraction or a solver/encoding bug — either way
///                     not evidence of a program bug).
///
//===----------------------------------------------------------------------===//

#ifndef B2_VC_VC_H
#define B2_VC_VC_H

#include "vc/Discharge.h"
#include "vc/Replay.h"
#include "vc/Solve.h"
#include "vc/Wp.h"

#include <string>
#include <vector>

namespace b2 {
namespace vc {

enum class Verdict : uint8_t { Valid, Counterexample, Unknown };

const char *verdictName(Verdict V);

/// Per-obligation resolution, for the report and the JSON dump.
enum class ObStatus : uint8_t {
  ProvedTrivial,      ///< Folded to true during WP generation / solving.
  Proved,             ///< Negation unsatisfiable.
  CexConfirmed,       ///< Model replayed to the predicted runtime fault.
  CexUnconfirmed,     ///< Model failed to replay; demoted to Unknown.
  BudgetExhausted,    ///< Solver gave up within the conflict budget.
  CoverageIncomplete, ///< Coverage obligation not proved (bound residue).
};

const char *obStatusName(ObStatus S);

struct ObReport {
  ObKind Kind;
  ObStatus Status;
  std::string Where;
  bedrock2::Fault Expected;
  DischargeTier Tier = DischargeTier::SatCold; ///< Which tier resolved it.
};

struct VcOptions {
  WpOptions Wp;
  SolveOptions Solve;
  DischargeOptions Discharge; ///< Staged-pipeline switches (all on, 1 thread).
  /// Optional cross-function solved-obligation cache; when null every
  /// function gets a private one (in-function dedup still applies).
  DischargeCache *SharedCache = nullptr;
  unsigned Probes = 16;      ///< Concrete runs stress-testing Valid verdicts.
  uint64_t ProbeSeed = 0x5eed0001;
  uint64_t ReplayFuel = 2'000'000;
  bool ProbeValidVerdicts = true;
};

struct FuncReport {
  std::string Program;       ///< Label of the program the function is from.
  std::string Func;
  Verdict V = Verdict::Unknown;
  std::string Error;         ///< Set when VC generation itself failed.
  std::vector<ObReport> Obligations;
  unsigned Proved = 0;       ///< Includes trivially-proved.
  unsigned Trivial = 0;
  unsigned Unconfirmed = 0;  ///< Models that failed replay (must stay 0 for
                             ///< the zero-unconfirmed acceptance bar... they
                             ///< demote to Unknown, never to Counterexample).
  unsigned ProbeViolations = 0;
  // Counterexample details (V == Counterexample only).
  std::string CexWhere;
  bedrock2::Fault CexFault = bedrock2::Fault::None;
  std::vector<Word> CexArgs;
  std::string CexDetail;
  // Cost accounting.
  SolveStats Solver;
  uint64_t DagNodes = 0;
  // Staged-pipeline accounting (per-tier kills, cache traffic, slicing,
  // Differential mismatches). DiffDetail describes the first mismatch.
  DischargeCounters Pipeline;
  std::string DiffDetail;
};

/// Verifies \p Func of \p P end to end. \p ProgramLabel tags the report.
FuncReport verifyFunction(const bedrock2::Program &P, const std::string &Func,
                          const std::string &ProgramLabel,
                          const VcOptions &Opts = VcOptions());

/// Renders reports under schema b2stack-vc-v2 (deterministic: no
/// timestamps, no wall-clock). v2 adds the per-function tier/cache/slice
/// counters, Differential mismatch counts, and a per-check "tier" field.
std::string vcJson(const std::vector<FuncReport> &Reports);

} // namespace vc
} // namespace b2

#endif // B2_VC_VC_H
