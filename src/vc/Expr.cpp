//===- vc/Expr.cpp - Hash-consed symbolic expression DAG ------------------===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vc/Expr.h"

#include <cassert>

namespace b2 {
namespace vc {

using bedrock2::BinOp;

static bool isCommutative(BinOp O) {
  switch (O) {
  case BinOp::Add:
  case BinOp::Mul:
  case BinOp::MulHuu:
  case BinOp::And:
  case BinOp::Or:
  case BinOp::Xor:
  case BinOp::Eq:
    return true;
  default:
    return false;
  }
}

/// Does \p O always produce 0 or 1?
static bool opIs01(BinOp O) {
  switch (O) {
  case BinOp::Lts:
  case BinOp::Ltu:
  case BinOp::Eq:
    return true;
  default:
    return false;
  }
}

ExprArena::ExprArena() {
  FalseRef = constant(0);
  TrueRef = constant(1);
}

ExprRef ExprArena::intern(const NodeKey &Key, bool Is01) {
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second;
  ExprNode N;
  N.K = ExprKind(Key.K);
  N.Op = BinOp(Key.Op);
  N.Is01 = Is01;
  N.A = Key.A;
  N.B = Key.B;
  N.C = Key.C;
  N.Lit = Key.Lit;
  Nodes.push_back(N);
  ExprRef R = ExprRef(Nodes.size() - 1);
  Interned.emplace(Key, R);
  return R;
}

ExprRef ExprArena::constant(Word V) {
  NodeKey Key{uint8_t(ExprKind::Const), 0, 0, 0, 0, V};
  return intern(Key, V <= 1);
}

ExprRef ExprArena::var(std::string Name, VarOrigin Origin) {
  unsigned Id = unsigned(Vars.size());
  Vars.push_back({std::move(Name), Origin});
  // Vars are intentionally not consed: every call mints a distinct node.
  ExprNode N;
  N.K = ExprKind::Var;
  N.Op = BinOp::Add;
  N.Is01 = false;
  N.Lit = Id;
  Nodes.push_back(N);
  return ExprRef(Nodes.size() - 1);
}

bool ExprArena::constValue(ExprRef R, Word &V) const {
  const ExprNode &N = Nodes[R];
  if (N.K != ExprKind::Const)
    return false;
  V = N.Lit;
  return true;
}

bool ExprArena::isConstTrue(ExprRef R) const {
  Word V;
  return constValue(R, V) && V != 0;
}

bool ExprArena::isConstZero(ExprRef R) const {
  Word V;
  return constValue(R, V) && V == 0;
}

ExprRef ExprArena::op(BinOp O, ExprRef A, ExprRef B) {
  Word CA, CB;
  bool AConst = constValue(A, CA);
  bool BConst = constValue(B, CB);
  if (AConst && BConst)
    return constant(bedrock2::evalBinOp(O, CA, CB));

  // Canonical operand order for commutative operators: constants to the
  // right, otherwise lower ref first. Determinism matters: the arena's
  // node order feeds the solver's variable order and the VC.json output.
  if (isCommutative(O) && (AConst || (!BConst && A > B))) {
    std::swap(A, B);
    std::swap(CA, CB);
    std::swap(AConst, BConst);
  }

  const ExprNode &NA = Nodes[A];
  const ExprNode &NB = Nodes[B];

  // Algebraic identities. After canonicalization a lone constant is B.
  if (BConst) {
    switch (O) {
    case BinOp::Add:
    case BinOp::Xor:
    case BinOp::Sub:
      if (CB == 0)
        return A;
      break;
    case BinOp::Or:
      if (CB == 0)
        return A;
      if (CB == ~Word(0))
        return B;
      if (CB == 1 && NA.Is01)
        return TrueRef; // b01 | 1 saturates; folds implies(false, b).
      break;
    case BinOp::Mul:
      if (CB == 0)
        return FalseRef;
      if (CB == 1)
        return A;
      break;
    case BinOp::And:
      if (CB == 0)
        return FalseRef;
      if (CB == ~Word(0))
        return A;
      if (CB == 1 && NA.Is01)
        return A;
      break;
    case BinOp::Slu:
    case BinOp::Sru:
    case BinOp::Srs:
      if ((CB & 31) == 0)
        return A;
      break;
    case BinOp::Divu:
      if (CB == 1)
        return A;
      break;
    case BinOp::Remu:
      if (CB == 1)
        return FalseRef;
      break;
    case BinOp::Ltu:
      if (CB == 0)
        return FalseRef; // x <u 0 is false.
      break;
    default:
      break;
    }
  }
  // Associative constant chains collapse: (x ? c1) ? c2 == x ? (c1 ? c2)
  // for xor/add/and/or. The xor case is what makes boolNot self-inverse;
  // the add case flattens the address arithmetic loop unrolling produces.
  if (BConst && NA.K == ExprKind::Op && NA.Op == O &&
      (O == BinOp::Xor || O == BinOp::Add || O == BinOp::And ||
       O == BinOp::Or)) {
    Word C1;
    if (constValue(NA.B, C1))
      return op(O, NA.A, constant(bedrock2::evalBinOp(O, C1, CB)));
  }
  // Mixed add/sub constant chains: (x + c1) - c2 == x + (c1 - c2).
  if (O == BinOp::Sub && BConst && NA.K == ExprKind::Op &&
      NA.Op == BinOp::Add) {
    Word C1;
    if (constValue(NA.B, C1))
      return op(BinOp::Add, NA.A, constant(C1 - CB));
  }
  // 0 <u x over a 0/1-valued x is x itself (the toBool normal form).
  if (O == BinOp::Ltu && AConst && CA == 0 && NB.Is01)
    return B;
  if (A == B) {
    switch (O) {
    case BinOp::Sub:
    case BinOp::Xor:
    case BinOp::Ltu:
    case BinOp::Lts:
      return FalseRef;
    case BinOp::And:
    case BinOp::Or:
      return A;
    case BinOp::Eq:
      return TrueRef;
    default:
      break;
    }
  }
  // Eq(x, 0) where x is 0/1 is logical negation; Eq of that again is x.
  // This keeps guard chains built from toBool/boolNot flat.
  if (O == BinOp::Eq && BConst && CB == 0 && NA.K == ExprKind::Op &&
      NA.Op == BinOp::Eq && NA.Is01) {
    const ExprNode &Inner = Nodes[NA.B];
    if (Inner.K == ExprKind::Const && Inner.Lit == 0 && Nodes[NA.A].Is01)
      return NA.A; // Eq(Eq(b01, 0), 0) == b01
  }

  bool Is01 = opIs01(O) ||
              ((O == BinOp::And || O == BinOp::Or || O == BinOp::Xor) &&
               NA.Is01 && NB.Is01);
  NodeKey Key{uint8_t(ExprKind::Op), uint8_t(O), A, B, 0, 0};
  return intern(Key, Is01);
}

ExprRef ExprArena::ite(ExprRef Cond, ExprRef Then, ExprRef Else) {
  Word CV;
  if (constValue(Cond, CV))
    return CV != 0 ? Then : Else;
  if (Then == Else)
    return Then;
  const ExprNode &NC = Nodes[Cond];
  Word TV, EV;
  bool TConst = constValue(Then, TV);
  bool EConst = constValue(Else, EV);
  if (NC.Is01 && TConst && EConst) {
    if (TV == 1 && EV == 0)
      return Cond;
    if (TV == 0 && EV == 1)
      return boolNot(Cond);
  }
  bool Is01 = Nodes[Then].Is01 && Nodes[Else].Is01;
  NodeKey Key{uint8_t(ExprKind::Ite), 0, Cond, Then, Else, 0};
  return intern(Key, Is01);
}

ExprRef ExprArena::toBool(ExprRef W) {
  if (Nodes[W].Is01)
    return W;
  Word V;
  if (constValue(W, V))
    return V != 0 ? TrueRef : FalseRef;
  return op(BinOp::Ltu, FalseRef, W); // 0 <u W  ==  W != 0
}

ExprRef ExprArena::boolNot(ExprRef B) {
  assert(Nodes[B].Is01 && "boolNot over a non-0/1 word");
  return op(BinOp::Xor, B, TrueRef);
}

ExprRef ExprArena::boolAnd(ExprRef A, ExprRef B) {
  assert(Nodes[A].Is01 && Nodes[B].Is01);
  return op(BinOp::And, A, B);
}

ExprRef ExprArena::boolOr(ExprRef A, ExprRef B) {
  assert(Nodes[A].Is01 && Nodes[B].Is01);
  return op(BinOp::Or, A, B);
}

ExprRef ExprArena::implies(ExprRef Guard, ExprRef Cond) {
  return boolOr(boolNot(toBool(Guard)), toBool(Cond));
}

std::vector<Word> ExprArena::evalAll(const std::vector<Word> &VarVals) const {
  std::vector<Word> Out(Nodes.size(), 0);
  for (size_t I = 0; I < Nodes.size(); ++I) {
    const ExprNode &N = Nodes[I];
    switch (N.K) {
    case ExprKind::Const:
      Out[I] = N.Lit;
      break;
    case ExprKind::Var:
      Out[I] = N.Lit < VarVals.size() ? VarVals[N.Lit] : 0;
      break;
    case ExprKind::Op:
      Out[I] = bedrock2::evalBinOp(N.Op, Out[N.A], Out[N.B]);
      break;
    case ExprKind::Ite:
      Out[I] = Out[N.A] != 0 ? Out[N.B] : Out[N.C];
      break;
    }
  }
  return Out;
}

Word ExprArena::eval(ExprRef R, const std::vector<Word> &VarVals) const {
  return evalAll(VarVals)[R];
}

} // namespace vc
} // namespace b2
