//===- vc/Solve.cpp - Bit-blasting CDCL SAT backend -----------------------===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vc/Solve.h"

#include "verify/FaultInjection.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_map>

namespace b2 {
namespace vc {
namespace {

using bedrock2::BinOp;

//===----------------------------------------------------------------------===//
// CDCL-lite SAT core
//===----------------------------------------------------------------------===//

/// Literal encoding: variable v (1-based) is lit 2v (positive) / 2v+1
/// (negated). Two sentinel values stand for the constant literals so the
/// gate builders can simplify without special cases upstream.
class Sat {
public:
  Sat() {
    // Var 1 is the reserved TRUE variable.
    TrueLit = posLit(newVar());
    addClause({TrueLit});
  }

  int newVar() {
    Assign.push_back(-1);
    Level.push_back(0);
    Reason.push_back(-1);
    Activity.push_back(0.0);
    Phase.push_back(0);
    Watches.emplace_back();
    Watches.emplace_back();
    return int(Assign.size()) - 1;
  }

  static int posLit(int V) { return V << 1; }
  static int negLit(int V) { return (V << 1) | 1; }
  static int varOf(int L) { return L >> 1; }
  static bool signOf(int L) { return L & 1; }
  static int flip(int L) { return L ^ 1; }

  int trueLit() const { return TrueLit; }
  int falseLit() const { return flip(TrueLit); }

  /// -1 unknown, 0 false, 1 true.
  int value(int L) const {
    int8_t A = Assign[varOf(L)];
    if (A < 0)
      return -1;
    return A ^ int(signOf(L));
  }

  bool addClause(std::vector<int> Lits) {
    if (Contradiction)
      return false;
    std::sort(Lits.begin(), Lits.end());
    Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
    std::vector<int> Out;
    for (size_t I = 0; I < Lits.size(); ++I) {
      if (I + 1 < Lits.size() && Lits[I + 1] == flip(Lits[I]))
        return true; // Tautology.
      if (value(Lits[I]) == 1)
        return true; // Already satisfied at level 0.
      if (value(Lits[I]) == 0)
        continue; // Falsified at level 0: drop the literal.
      Out.push_back(Lits[I]);
    }
    if (Out.empty()) {
      Contradiction = true;
      return false;
    }
    if (Out.size() == 1) {
      if (!enqueue(Out[0], -1))
        Contradiction = true;
      else if (propagate() >= 0)
        Contradiction = true;
      return !Contradiction;
    }
    attach(std::move(Out));
    return true;
  }

  uint64_t numClauses() const { return Clauses.size(); }

  /// Returns 1 = SAT, 0 = UNSAT, -1 = budget exhausted.
  int solve(uint64_t ConflictBudget, SolveStats &Stats) {
    if (Contradiction)
      return 0;
    uint64_t RestartLimit = 100;
    uint64_t ConflictsAtRestart = 0;
    rebuildOrder();
    for (;;) {
      int Confl = propagate();
      Stats.Propagations = Props;
      if (Confl >= 0) {
        ++Stats.Conflicts;
        if (decisionLevel() == 0)
          return 0;
        if (Stats.Conflicts >= ConflictBudget)
          return -1;
        std::vector<int> Learnt;
        int BackLevel = analyze(Confl, Learnt);
        backtrack(BackLevel);
        if (Learnt.size() == 1) {
          if (!enqueue(Learnt[0], -1))
            return 0;
        } else {
          int Idx = attach(std::move(Learnt));
          // The first literal of a learnt clause is the asserting one.
          if (!enqueue(Clauses[Idx][0], Idx))
            return 0;
        }
        decayActivity();
        if (Stats.Conflicts - ConflictsAtRestart >= RestartLimit) {
          ConflictsAtRestart = Stats.Conflicts;
          RestartLimit = RestartLimit + RestartLimit / 2;
          backtrack(0);
        }
      } else {
        int Next = pickBranchVar();
        if (Next < 0)
          return 1; // All assigned: SAT.
        ++Stats.Decisions;
        TrailLim.push_back(int(Trail.size()));
        bool Ok = enqueue(Phase[Next] ? posLit(Next) : negLit(Next), -1);
        (void)Ok;
        assert(Ok && "decision on assigned var");
      }
    }
  }

  bool modelValue(int V) const { return Assign[V] == 1; }

  /// Solves under a single assumption literal, which is re-decided first
  /// at every level-0 state — so it can only ever be *falsified* by
  /// level-0 propagation, where falsity is a proof that the clause set
  /// implies its negation. Returns 1 = SAT, 0 = UNSAT under the
  /// assumption, -1 = conflict budget exhausted, -2 = the shared context
  /// itself is contradictory (encoder bug; the caller must degrade to
  /// Unknown, never report Unsat).
  int solveAssuming(int AssumeLit, uint64_t ConflictBudget,
                    SolveStats &Stats) {
    if (Contradiction)
      return -2;
    uint64_t RestartLimit = 100;
    uint64_t ConflictsAtRestart = 0;
    uint64_t PropsBase = Props;
    rebuildOrder();
    for (;;) {
      int Confl = propagate();
      Stats.Propagations = Props - PropsBase;
      if (Confl >= 0) {
        ++Stats.Conflicts;
        if (decisionLevel() == 0)
          return -2;
        if (Stats.Conflicts >= ConflictBudget)
          return -1;
        std::vector<int> Learnt;
        int BackLevel = analyze(Confl, Learnt);
        backtrack(BackLevel);
        if (Learnt.size() == 1) {
          if (!enqueue(Learnt[0], -1))
            return -2;
        } else {
          int Idx = attach(std::move(Learnt));
          if (!enqueue(Clauses[Idx][0], Idx))
            return -2;
        }
        decayActivity();
        if (Stats.Conflicts - ConflictsAtRestart >= RestartLimit) {
          ConflictsAtRestart = Stats.Conflicts;
          RestartLimit = RestartLimit + RestartLimit / 2;
          backtrack(0);
        }
      } else {
        if (value(AssumeLit) == 0) {
          assert(Level[varOf(AssumeLit)] == 0 &&
                 "assumption falsified above the root level");
          return 0;
        }
        if (value(AssumeLit) == -1) {
          ++Stats.Decisions;
          TrailLim.push_back(int(Trail.size()));
          bool Ok = enqueue(AssumeLit, -1);
          (void)Ok;
          assert(Ok && "assumption decision on assigned var");
          continue;
        }
        int Next = pickBranchVar();
        if (Next < 0)
          return 1;
        ++Stats.Decisions;
        TrailLim.push_back(int(Trail.size()));
        bool Ok = enqueue(Phase[Next] ? posLit(Next) : negLit(Next), -1);
        (void)Ok;
        assert(Ok && "decision on assigned var");
      }
    }
  }

  /// Permanently deactivates a finished query's assumption literal, so
  /// its clauses are satisfied in every later query.
  void retire(int AssumeLit) {
    backtrack(0);
    addClause({flip(AssumeLit)});
  }

private:
  std::vector<std::vector<int>> Clauses;
  std::vector<std::vector<int>> Watches; ///< Indexed by literal.
  std::vector<int8_t> Assign;            ///< Indexed by var; -1 unassigned.
  std::vector<int> Level, Reason;
  std::vector<double> Activity;
  std::vector<int8_t> Phase;
  std::vector<int> Trail, TrailLim;
  size_t QHead = 0;
  double VarInc = 1.0;
  bool Contradiction = false;
  int TrueLit = 0;
  uint64_t Props = 0;
  // Lazy max-heap over (activity, var); stale entries are skipped on pop.
  std::priority_queue<std::pair<double, int>> Order;

  int decisionLevel() const { return int(TrailLim.size()); }

  int attach(std::vector<int> Lits) {
    assert(Lits.size() >= 2);
    int Idx = int(Clauses.size());
    Watches[flip(Lits[0])].push_back(Idx);
    Watches[flip(Lits[1])].push_back(Idx);
    Clauses.push_back(std::move(Lits));
    return Idx;
  }

  bool enqueue(int L, int From) {
    if (value(L) == 0)
      return false;
    if (value(L) == 1)
      return true;
    int V = varOf(L);
    Assign[V] = signOf(L) ? 0 : 1;
    Level[V] = decisionLevel();
    Reason[V] = From;
    Trail.push_back(L);
    return true;
  }

  /// Returns the index of a conflicting clause, or -1.
  int propagate() {
    while (QHead < Trail.size()) {
      int L = Trail[QHead++];
      ++Props;
      std::vector<int> &WL = Watches[L];
      size_t Keep = 0;
      for (size_t I = 0; I < WL.size(); ++I) {
        int CI = WL[I];
        std::vector<int> &C = Clauses[CI];
        // Ensure the falsified literal is at slot 1.
        int FalseLit = flip(L);
        if (C[0] == FalseLit)
          std::swap(C[0], C[1]);
        if (value(C[0]) == 1) {
          WL[Keep++] = CI;
          continue;
        }
        // Find a new watch.
        bool Moved = false;
        for (size_t K = 2; K < C.size(); ++K) {
          if (value(C[K]) != 0) {
            std::swap(C[1], C[K]);
            Watches[flip(C[1])].push_back(CI);
            Moved = true;
            break;
          }
        }
        if (Moved)
          continue;
        WL[Keep++] = CI;
        if (!enqueue(C[0], CI)) {
          // Conflict: keep remaining watches, report.
          for (size_t K = I + 1; K < WL.size(); ++K)
            WL[Keep++] = WL[K];
          WL.resize(Keep);
          QHead = Trail.size();
          return CI;
        }
      }
      WL.resize(Keep);
    }
    return -1;
  }

  void bump(int V) {
    Activity[V] += VarInc;
    if (Activity[V] > 1e100) {
      for (double &A : Activity)
        A *= 1e-100;
      VarInc *= 1e-100;
      rebuildOrder();
      return;
    }
    if (Assign[V] < 0)
      Order.push({Activity[V], V});
  }

  void decayActivity() { VarInc *= 1.0526315789473684; /* 1/0.95 */ }

  void rebuildOrder() {
    Order = {};
    for (int V = 1; V < int(Assign.size()); ++V)
      if (Assign[V] < 0)
        Order.push({Activity[V], V});
  }

  int pickBranchVar() {
    while (!Order.empty()) {
      auto [Act, V] = Order.top();
      Order.pop();
      if (Assign[V] < 0 && Act == Activity[V])
        return V;
    }
    // The lazy heap can run dry after backtracking; refill once.
    for (int V = 1; V < int(Assign.size()); ++V)
      if (Assign[V] < 0) {
        rebuildOrder();
        auto [Act, Top] = Order.top();
        (void)Act;
        Order.pop();
        return Top;
      }
    return -1;
  }

  std::vector<uint8_t> Seen;
  std::vector<int> Touched;

  int analyze(int ConflIdx, std::vector<int> &Learnt) {
    if (Seen.size() < Assign.size())
      Seen.resize(Assign.size(), 0);
    for (int V : Touched)
      Seen[V] = 0;
    Touched.clear();
    Learnt.push_back(0); // Slot for the asserting literal.
    int Counter = 0;
    int L = -1;
    size_t TrailPos = Trail.size();
    int CI = ConflIdx;
    do {
      assert(CI >= 0 && "reason missing during analyze");
      const std::vector<int> &C = Clauses[CI];
      for (size_t I = (L == -1 ? 0 : 1); I < C.size(); ++I) {
        int Q = C[I];
        if (L != -1 && Q == L)
          continue;
        int V = varOf(Q);
        if (Seen[V] || Level[V] == 0)
          continue;
        Seen[V] = 1;
        Touched.push_back(V);
        bump(V);
        if (Level[V] == decisionLevel())
          ++Counter;
        else
          Learnt.push_back(Q);
      }
      // Walk back the trail to the next seen literal.
      while (TrailPos > 0 && !Seen[varOf(Trail[TrailPos - 1])])
        --TrailPos;
      assert(TrailPos > 0);
      L = Trail[--TrailPos];
      Seen[varOf(L)] = 0;
      CI = Reason[varOf(L)];
      --Counter;
    } while (Counter > 0);
    Learnt[0] = flip(L);

    // Conflict-clause reason handling above needs the asserting literal
    // first; compute the backjump level as the max level among the rest.
    int Back = 0;
    size_t MaxIdx = 1;
    for (size_t I = 1; I < Learnt.size(); ++I) {
      int Lv = Level[varOf(Learnt[I])];
      if (Lv > Back) {
        Back = Lv;
        MaxIdx = I;
      }
    }
    if (Learnt.size() > 1)
      std::swap(Learnt[1], Learnt[MaxIdx]);
    return Back;
  }

  void backtrack(int ToLevel) {
    if (decisionLevel() <= ToLevel)
      return;
    int Bound = TrailLim[ToLevel];
    for (int I = int(Trail.size()) - 1; I >= Bound; --I) {
      int V = varOf(Trail[I]);
      Phase[V] = Assign[V];
      Assign[V] = -1;
      Order.push({Activity[V], V});
    }
    Trail.resize(Bound);
    TrailLim.resize(ToLevel);
    QHead = Trail.size();
  }
};

//===----------------------------------------------------------------------===//
// Bit-blaster: Tseitin word circuits matching support/Word.h semantics
//===----------------------------------------------------------------------===//

using Bits = std::vector<int>;

class BitBlaster {
public:
  BitBlaster(const ExprArena &A, uint64_t ClauseBudget)
      : Arena(A), ClauseBudget(ClauseBudget) {}

  Sat S;
  bool OverBudget = false;

  const ExprArena &arena() const { return Arena; }

  /// Encodes all not-yet-encoded nodes reachable from \p Roots, in index
  /// order (children always precede parents). Incremental: nodes encoded
  /// by earlier calls keep their variables, so shared sub-DAGs cost their
  /// Tseitin clauses exactly once per context. A cold single-query call
  /// is the one-call special case and produces the same variable
  /// numbering as before.
  bool encodeRoots(const std::vector<ExprRef> &Roots) {
    if (Marked.size() < Arena.size())
      Marked.resize(Arena.size(), 0);
    if (WordBits.size() < Arena.size())
      WordBits.resize(Arena.size());
    std::vector<ExprRef> Fresh;
    std::vector<ExprRef> Stack(Roots.begin(), Roots.end());
    while (!Stack.empty()) {
      ExprRef R = Stack.back();
      Stack.pop_back();
      if (Marked[R])
        continue;
      Marked[R] = 1;
      Fresh.push_back(R);
      const ExprNode &N = Arena.node(R);
      if (N.K == ExprKind::Op) {
        Stack.push_back(N.A);
        Stack.push_back(N.B);
      } else if (N.K == ExprKind::Ite) {
        Stack.push_back(N.A);
        Stack.push_back(N.B);
        Stack.push_back(N.C);
      }
    }
    std::sort(Fresh.begin(), Fresh.end());
    for (ExprRef R : Fresh) {
      encodeNode(R);
      if (overBudget())
        return false;
    }
    return true;
  }

  /// Asserts "word != 0" as a clause.
  void assertNonzero(ExprRef R) {
    const Bits &B = WordBits[R];
    std::vector<int> C(B.begin(), B.end());
    S.addClause(std::move(C));
  }

  /// Asserts "word != 0" only when \p ActLit holds (assumption-guarded).
  void assertNonzeroUnder(int ActLit, ExprRef R) {
    const Bits &B = WordBits[R];
    std::vector<int> C;
    C.reserve(B.size() + 1);
    C.push_back(Sat::flip(ActLit));
    C.insert(C.end(), B.begin(), B.end());
    S.addClause(std::move(C));
  }

  /// Reads the model value of an encoded word.
  Word modelWord(ExprRef R) const {
    const Bits &B = WordBits[R];
    Word V = 0;
    for (unsigned I = 0; I < 32; ++I) {
      int L = B[I];
      bool Bit = S.value(L) == 1;
      if (Bit)
        V |= Word(1) << I;
    }
    return V;
  }

  bool hasBits(ExprRef R) const {
    return R < WordBits.size() && !WordBits[R].empty();
  }

private:
  const ExprArena &Arena;
  uint64_t ClauseBudget;
  std::vector<uint8_t> Marked; ///< Node already queued for encoding.
  std::vector<Bits> WordBits;
  std::unordered_map<uint64_t, int> GateCache;

  bool overBudget() {
    if (S.numClauses() > ClauseBudget)
      OverBudget = true;
    return OverBudget;
  }

  int T() { return S.trueLit(); }
  int F() { return S.falseLit(); }

  /// Collision-free cache key: literals are nonnegative ints and so fit
  /// disjoint 31-bit fields, with the tag in the top two bits — no two
  /// distinct (Tag, A, B) triples share a key.
  static uint64_t gateKey(uint8_t Tag, int A, int B) {
    assert(A >= 0 && B >= 0 && Tag < 4 && "gate key fields out of range");
    return (uint64_t(Tag) << 62) | (uint64_t(uint32_t(A)) << 31) |
           uint64_t(uint32_t(B));
  }

  int cached(uint8_t Tag, int A, int B, bool Commutative) {
    if (Commutative && A > B)
      std::swap(A, B);
    auto It = GateCache.find(gateKey(Tag, A, B));
    return It == GateCache.end() ? -1 : It->second;
  }
  void remember(uint8_t Tag, int A, int B, bool Commutative, int Out) {
    if (Commutative && A > B)
      std::swap(A, B);
    GateCache[gateKey(Tag, A, B)] = Out;
  }

  int mkAnd(int A, int B) {
    if (A == F() || B == F())
      return F();
    if (A == T())
      return B;
    if (B == T())
      return A;
    if (A == B)
      return A;
    if (A == Sat::flip(B))
      return F();
    if (int G = cached(1, A, B, true); G >= 0)
      return G;
    int G = Sat::posLit(S.newVar());
    S.addClause({Sat::flip(G), A});
    S.addClause({Sat::flip(G), B});
    S.addClause({G, Sat::flip(A), Sat::flip(B)});
    remember(1, A, B, true, G);
    return G;
  }

  int mkOr(int A, int B) { return Sat::flip(mkAnd(Sat::flip(A), Sat::flip(B))); }

  int mkXor(int A, int B) {
    if (A == F())
      return B;
    if (B == F())
      return A;
    if (A == T())
      return Sat::flip(B);
    if (B == T())
      return Sat::flip(A);
    if (A == B)
      return F();
    if (A == Sat::flip(B))
      return T();
    // Canonical polarity: xor(a,b) == xor(¬a,¬b); strip paired signs into
    // the output so the cache hits more often.
    int OutFlip = 0;
    int CA = A, CB = B;
    if (Sat::signOf(CA)) {
      CA = Sat::flip(CA);
      OutFlip ^= 1;
    }
    if (Sat::signOf(CB)) {
      CB = Sat::flip(CB);
      OutFlip ^= 1;
    }
    int G;
    if (int Hit = cached(2, CA, CB, true); Hit >= 0) {
      G = Hit;
    } else {
      G = Sat::posLit(S.newVar());
      S.addClause({Sat::flip(G), CA, CB});
      S.addClause({Sat::flip(G), Sat::flip(CA), Sat::flip(CB)});
      S.addClause({G, Sat::flip(CA), CB});
      S.addClause({G, CA, Sat::flip(CB)});
      remember(2, CA, CB, true, G);
    }
    return OutFlip ? Sat::flip(G) : G;
  }

  int mkMux(int Sel, int Then, int Else) {
    if (Sel == T())
      return Then;
    if (Sel == F())
      return Else;
    if (Then == Else)
      return Then;
    if (Then == T() && Else == F())
      return Sel;
    if (Then == F() && Else == T())
      return Sat::flip(Sel);
    return mkOr(mkAnd(Sel, Then), mkAnd(Sat::flip(Sel), Else));
  }

  int mkMaj(int A, int B, int C) {
    return mkOr(mkAnd(A, B), mkAnd(C, mkXor(A, B)));
  }

  /// a + b + cin over \p Width bits; result has the same width.
  Bits addBits(const Bits &A, const Bits &B, int Cin) {
    Bits Out(A.size());
    int C = Cin;
    for (size_t I = 0; I < A.size(); ++I) {
      int AxB = mkXor(A[I], B[I]);
      Out[I] = mkXor(AxB, C);
      C = mkMaj(A[I], B[I], C);
    }
    return Out;
  }

  Bits subBits(const Bits &A, const Bits &B) {
    Bits NB(B.size());
    for (size_t I = 0; I < B.size(); ++I)
      NB[I] = Sat::flip(B[I]);
    return addBits(A, NB, T());
  }

  /// Single literal: A <u B (borrow-chain).
  int ltuBit(const Bits &A, const Bits &B) {
    int Lt = F();
    for (size_t I = 0; I < A.size(); ++I) {
      int Eq = Sat::flip(mkXor(A[I], B[I]));
      Lt = mkOr(mkAnd(Sat::flip(A[I]), B[I]), mkAnd(Eq, Lt));
    }
    return Lt;
  }

  int eqBit(const Bits &A, const Bits &B) {
    int Out = T();
    for (size_t I = 0; I < A.size(); ++I)
      Out = mkAnd(Out, Sat::flip(mkXor(A[I], B[I])));
    return Out;
  }

  int orAll(const Bits &A) {
    int Out = F();
    for (int L : A)
      Out = mkOr(Out, L);
    return Out;
  }

  static Bits boolWord(int L) {
    Bits Out(32, 0);
    Out[0] = L;
    return Out;
  }

  Bits boolWordF(int L) {
    Bits Out(32, F());
    Out[0] = L;
    return Out;
  }

  /// Barrel shifter. Dir: 0 = left, 1 = logical right, 2 = arithmetic
  /// right. The shift amount is B & 31 (support/Word.h masks to 5 bits).
  Bits shiftBits(const Bits &A, const Bits &B, int Dir) {
    Bits Cur = A;
    for (unsigned Stage = 0; Stage < 5; ++Stage) {
      unsigned Sh = 1u << Stage;
      int Sel = B[Stage];
      Bits Next(32);
      for (unsigned I = 0; I < 32; ++I) {
        int Shifted;
        if (Dir == 0)
          Shifted = I >= Sh ? Cur[I - Sh] : F();
        else if (Dir == 1)
          Shifted = I + Sh < 32 ? Cur[I + Sh] : F();
        else
          Shifted = I + Sh < 32 ? Cur[I + Sh] : A[31];
        Next[I] = mkMux(Sel, Shifted, Cur[I]);
      }
      Cur = std::move(Next);
    }
    return Cur;
  }

  Bits mulLow(const Bits &A, const Bits &B) {
    Bits Acc(32, F());
    for (unsigned I = 0; I < 32; ++I) {
      if (B[I] == F())
        continue;
      Bits Part(32, F());
      for (unsigned J = I; J < 32; ++J)
        Part[J] = mkAnd(A[J - I], B[I]);
      Acc = addBits(Acc, Part, F());
    }
    return Acc;
  }

  Bits mulHigh(const Bits &A, const Bits &B) {
    Bits Acc(64, F());
    for (unsigned I = 0; I < 32; ++I) {
      if (B[I] == F())
        continue;
      Bits Part(64, F());
      for (unsigned J = 0; J < 32; ++J)
        Part[J + I] = mkAnd(A[J], B[I]);
      Acc = addBits(Acc, Part, F());
    }
    return Bits(Acc.begin() + 32, Acc.end());
  }

  /// Restoring division; Quot/Rem follow the RISC-V by-zero conventions
  /// (divu by 0 = all ones, remu by 0 = dividend), as support/Word.h does.
  void divRem(const Bits &A, const Bits &B, Bits &Quot, Bits &Rem) {
    Bits R(33, F());
    Bits B33 = B;
    B33.push_back(F());
    Quot.assign(32, F());
    for (int I = 31; I >= 0; --I) {
      // R = (R << 1) | a[i], in 33 bits.
      Bits RS(33);
      RS[0] = A[I];
      for (unsigned K = 1; K < 33; ++K)
        RS[K] = R[K - 1];
      int Ge = Sat::flip(ltuBit(RS, B33));
      Bits Sub = subBits(RS, B33);
      for (unsigned K = 0; K < 33; ++K)
        R[K] = mkMux(Ge, Sub[K], RS[K]);
      Quot[I] = Ge;
    }
    int BZero = Sat::flip(orAll(B));
    for (unsigned K = 0; K < 32; ++K)
      Quot[K] = mkMux(BZero, T(), Quot[K]);
    Rem.assign(32, F());
    for (unsigned K = 0; K < 32; ++K)
      Rem[K] = mkMux(BZero, A[K], R[K]);
  }

  void encodeNode(ExprRef R) {
    const ExprNode &N = Arena.node(R);
    switch (N.K) {
    case ExprKind::Const: {
      Bits B(32);
      for (unsigned I = 0; I < 32; ++I)
        B[I] = (N.Lit >> I) & 1 ? T() : F();
      WordBits[R] = std::move(B);
      return;
    }
    case ExprKind::Var: {
      Bits B(32);
      for (unsigned I = 0; I < 32; ++I)
        B[I] = Sat::posLit(S.newVar());
      WordBits[R] = std::move(B);
      VarNode[N.Lit] = R;
      return;
    }
    case ExprKind::Ite: {
      int Sel = orAll(WordBits[N.A]);
      const Bits &TB = WordBits[N.B];
      const Bits &EB = WordBits[N.C];
      Bits B(32);
      for (unsigned I = 0; I < 32; ++I)
        B[I] = mkMux(Sel, TB[I], EB[I]);
      WordBits[R] = std::move(B);
      return;
    }
    case ExprKind::Op:
      break;
    }
    const Bits &A = WordBits[N.A];
    const Bits &B = WordBits[N.B];
    Bits Out;
    switch (N.Op) {
    case BinOp::Add:
      Out = addBits(A, B, F());
      break;
    case BinOp::Sub:
      Out = subBits(A, B);
      break;
    case BinOp::And:
      Out.resize(32);
      for (unsigned I = 0; I < 32; ++I)
        Out[I] = mkAnd(A[I], B[I]);
      break;
    case BinOp::Or:
      Out.resize(32);
      for (unsigned I = 0; I < 32; ++I)
        Out[I] = mkOr(A[I], B[I]);
      break;
    case BinOp::Xor:
      Out.resize(32);
      for (unsigned I = 0; I < 32; ++I)
        Out[I] = mkXor(A[I], B[I]);
      break;
    case BinOp::Eq:
      Out = boolWordF(eqBit(A, B));
      break;
    case BinOp::Ltu:
      Out = boolWordF(ltuBit(A, B));
      break;
    case BinOp::Lts: {
      Bits AF = A, BF = B;
      AF[31] = Sat::flip(AF[31]);
      BF[31] = Sat::flip(BF[31]);
      Out = boolWordF(ltuBit(AF, BF));
      break;
    }
    case BinOp::Slu:
      Out = shiftBits(A, B, 0);
      break;
    case BinOp::Sru:
      Out = shiftBits(A, B, 1);
      break;
    case BinOp::Srs:
      Out = shiftBits(A, B, 2);
      break;
    case BinOp::Mul:
      Out = mulLow(A, B);
      break;
    case BinOp::MulHuu:
      Out = mulHigh(A, B);
      break;
    case BinOp::Divu: {
      Bits Q, Rm;
      divRem(A, B, Q, Rm);
      Out = std::move(Q);
      break;
    }
    case BinOp::Remu: {
      Bits Q, Rm;
      divRem(A, B, Q, Rm);
      Out = std::move(Rm);
      break;
    }
    }
    WordBits[R] = std::move(Out);
  }

public:
  /// Var id -> the node whose bits carry its assignment (if encoded).
  std::unordered_map<unsigned, ExprRef> VarNode;
};

} // namespace

SolveResult solve(const ExprArena &Arena,
                  const std::vector<ExprRef> &NonzeroConstraints,
                  const SolveOptions &Opts) {
  SolveResult Res;
  std::vector<ExprRef> Live;
  for (ExprRef C : NonzeroConstraints) {
    Word V;
    if (Arena.constValue(C, V)) {
      if (V == 0) {
        Res.Status = SolveStatus::Unsat;
        return Res;
      }
      continue; // Trivially satisfied.
    }
    Live.push_back(C);
  }
  if (Live.empty()) {
    Res.Status = SolveStatus::Sat;
    Res.Model.assign(Arena.numVars(), 0);
    if (fi::on(fi::Fault::VcSolverBadModel) && !Res.Model.empty())
      Res.Model[0] ^= 1;
    return Res;
  }

  BitBlaster BB(Arena, Opts.ClauseBudget);
  if (!BB.encodeRoots(Live)) {
    Res.Status = SolveStatus::Unknown;
    Res.Stats.Clauses = BB.S.numClauses();
    return Res;
  }
  for (ExprRef C : Live)
    BB.assertNonzero(C);
  Res.Stats.Clauses = BB.S.numClauses();

  int Verdict = BB.S.solve(Opts.ConflictBudget, Res.Stats);
  if (Verdict == 0) {
    Res.Status = SolveStatus::Unsat;
    return Res;
  }
  if (Verdict < 0) {
    Res.Status = SolveStatus::Unknown;
    return Res;
  }

  Res.Model.assign(Arena.numVars(), 0);
  for (const auto &[VarId, NodeRef] : BB.VarNode)
    Res.Model[VarId] = BB.modelWord(NodeRef);

  // Cross-check the model against the DAG evaluator: an encoding bug must
  // degrade to Unknown, never to an unsound counterexample.
  std::vector<Word> Vals = Arena.evalAll(Res.Model);
  for (ExprRef C : Live) {
    if (Vals[C] == 0) {
      Res.Status = SolveStatus::Unknown;
      Res.Model.clear();
      return Res;
    }
  }

  Res.Status = SolveStatus::Sat;
  // Seeded fault: corrupt the model at the final return boundary, *after*
  // the internal cross-check, so only concrete replay can catch it.
  if (fi::on(fi::Fault::VcSolverBadModel) && !Res.Model.empty())
    Res.Model[0] ^= 1;
  return Res;
}

//===----------------------------------------------------------------------===//
// IncrementalSolver: persistent context + assumption-literal activation
//===----------------------------------------------------------------------===//

struct IncrementalSolver::Impl {
  Impl(const ExprArena &Arena, const SolveOptions &Opts)
      : Opts(Opts), BB(Arena, Opts.ClauseBudget) {}
  SolveOptions Opts;
  BitBlaster BB;
  bool Dead = false; ///< Clause budget blown: every later call is Unknown.
};

IncrementalSolver::IncrementalSolver(const ExprArena &Arena,
                                     const SolveOptions &Opts)
    : P(new Impl(Arena, Opts)) {}

IncrementalSolver::~IncrementalSolver() = default;

SolveStatus IncrementalSolver::solveNonzero(const std::vector<ExprRef> &Roots,
                                            SolveStats &Stats) {
  const ExprArena &Arena = P->BB.arena();
  std::vector<ExprRef> Live;
  for (ExprRef C : Roots) {
    Word V;
    if (Arena.constValue(C, V)) {
      if (V == 0)
        return SolveStatus::Unsat;
      continue;
    }
    Live.push_back(C);
  }
  if (Live.empty())
    return SolveStatus::Sat; // Caller re-derives any model via the cold path.
  if (P->Dead)
    return SolveStatus::Unknown;

  uint64_t ClausesBefore = P->BB.S.numClauses();
  if (!P->BB.encodeRoots(Live)) {
    P->Dead = true;
    Stats.Clauses += P->BB.S.numClauses() - ClausesBefore;
    return SolveStatus::Unknown;
  }
  int Act = Sat::posLit(P->BB.S.newVar());
  for (ExprRef C : Live)
    P->BB.assertNonzeroUnder(Act, C);

  SolveStats Call;
  int Verdict = P->BB.S.solveAssuming(Act, P->Opts.ConflictBudget, Call);
  P->BB.S.retire(Act);
  Stats.Clauses += P->BB.S.numClauses() - ClausesBefore;
  Stats.Conflicts += Call.Conflicts;
  Stats.Decisions += Call.Decisions;
  Stats.Propagations += Call.Propagations;
  if (Verdict == 1)
    return SolveStatus::Sat;
  if (Verdict == 0)
    return SolveStatus::Unsat;
  return SolveStatus::Unknown;
}

} // namespace vc
} // namespace b2
