//===- vc/Solve.h - Bit-blasting CDCL SAT backend --------------*- C++ -*-===//
//
// Part of the b2stack project: a C++ reproduction of "Integration
// Verification across Software and Hardware for a Simple Embedded System"
// (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained bitvector decision procedure for the VC engine: every
/// expression in the DAG is Tseitin-encoded into CNF over 32 literals per
/// word (ripple-carry adders, borrow-chain comparators, barrel shifters
/// with RISC-V shamt masking, shift-add multipliers, restoring division
/// with the RISC-V div-by-zero conventions — bit-for-bit the semantics of
/// support/Word.h and bedrock2::evalBinOp), then handed to a CDCL-lite SAT
/// core (watched literals, 1UIP conflict learning, VSIDS-style activities,
/// geometric restarts). Everything is deterministic: no randomness, no
/// wall-clock heuristics — the same query always returns the same answer
/// and, when satisfiable, the same model.
///
/// A query is a conjunction of "this word is nonzero" constraints. The
/// conflict budget bounds the search; exhausting it returns Unknown, never
/// a wrong answer. Every satisfying model is validated against the DAG
/// evaluator before it is returned, so an encoding bug degrades to Unknown
/// instead of an unsound counterexample (the seeded vc-solver-bad-model
/// fault corrupts the model *after* this check, exactly so the replay
/// layer must catch it).
///
//===----------------------------------------------------------------------===//

#ifndef B2_VC_SOLVE_H
#define B2_VC_SOLVE_H

#include "vc/Expr.h"

#include <memory>
#include <vector>

namespace b2 {
namespace vc {

enum class SolveStatus : uint8_t {
  Unsat,   ///< The constraint set is contradictory: the VC is proved.
  Sat,     ///< Model found (one Word per arena variable id).
  Unknown, ///< Conflict or clause budget exhausted.
};

struct SolveStats {
  uint64_t Clauses = 0;
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
};

struct SolveResult {
  SolveStatus Status = SolveStatus::Unknown;
  /// Valid iff Status == Sat: value per arena variable id. Variables that
  /// never reached the solver default to 0.
  std::vector<Word> Model;
  SolveStats Stats;
};

struct SolveOptions {
  uint64_t ConflictBudget = 200000;
  uint64_t ClauseBudget = 4000000;
};

/// Decides the conjunction "every constraint word is nonzero".
SolveResult solve(const ExprArena &Arena,
                  const std::vector<ExprRef> &NonzeroConstraints,
                  const SolveOptions &Opts = SolveOptions());

/// A persistent solver context for one sequence of related queries (the
/// staged discharge engine runs one per obligation group). Tseitin
/// clauses for shared sub-DAGs are emitted once, each query is activated
/// via a fresh assumption literal and retired with its permanent negation
/// afterwards, and learned clauses survive across queries.
///
/// Only the Unsat answer is trusted downstream (it proves the obligation);
/// Sat/Unknown make the caller fall back to the cold single-query path,
/// which re-derives the model with the full cross-check-and-replay
/// discipline. A shared-context contradiction — impossible unless the
/// encoder is buggy, since every query clause is guarded by its
/// assumption literal — degrades to Unknown, never to a wrong Unsat.
///
/// The arena must not grow between construction and the last query; all
/// nodes are built in the sequential phase of the discharge pipeline.
class IncrementalSolver {
public:
  IncrementalSolver(const ExprArena &Arena, const SolveOptions &Opts);
  ~IncrementalSolver();
  IncrementalSolver(const IncrementalSolver &) = delete;
  IncrementalSolver &operator=(const IncrementalSolver &) = delete;

  /// Decides "every root is nonzero" under a fresh assumption literal.
  /// \p Stats receives this call's deltas (clauses added, conflicts, ...).
  SolveStatus solveNonzero(const std::vector<ExprRef> &Roots,
                           SolveStats &Stats);

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

} // namespace vc
} // namespace b2

#endif // B2_VC_SOLVE_H
