//===- vc/Analysis.h - Cheap pre-solver tiers over the Expr DAG -*- C++ -*-===//
//
// Part of the b2stack project: a C++ reproduction of "Integration
// Verification across Software and Hardware for a Simple Embedded System"
// (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cheap tiers of the staged discharge pipeline: a combined
/// known-bits/unsigned-interval abstract interpreter over the hash-consed
/// expression DAG, and a rewrite pass that rebuilds a term with the
/// analysis facts substituted in (constant-guard pruning, singleton
/// folding) on top of the arena's own algebraic identities.
///
/// Soundness contract: for every node R and every variable valuation, the
/// concrete value of R lies in [Lo, Hi], has every KnownOne bit set and
/// every KnownZero bit clear; and simplify(R) evaluates to the same word
/// as R under every valuation. Obligations discharged by these tiers are
/// therefore proved without ever reaching the SAT backend — and because
/// the tiers only ever *prove* (a claim of Sat still goes to the solver
/// and the replay interpreter), an analysis bug can cost completeness but
/// can never mint a counterexample.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VC_ANALYSIS_H
#define B2_VC_ANALYSIS_H

#include "vc/Expr.h"

#include <unordered_map>
#include <vector>

namespace b2 {
namespace vc {

/// Per-node abstract value: bit-level and interval facts side by side.
struct AbsVal {
  Word KnownZero = 0;  ///< Bits provably 0.
  Word KnownOne = 0;   ///< Bits provably 1.
  Word Lo = 0;         ///< Unsigned lower bound (inclusive).
  Word Hi = ~Word(0);  ///< Unsigned upper bound (inclusive).
};

/// One forward pass over the arena at construction time; queries are O(1).
/// The domain is valid for the arena size at construction — nodes created
/// later (e.g. by simplify) conservatively read as top.
class AbsDomain {
public:
  explicit AbsDomain(const ExprArena &Arena);

  AbsVal val(ExprRef R) const {
    return R < Vals.size() ? Vals[R] : AbsVal{};
  }

  /// The node is nonzero under every valuation.
  bool provesNonzero(ExprRef R) const {
    AbsVal V = val(R);
    return V.Lo > 0 || V.KnownOne != 0;
  }

  /// The node is zero under every valuation.
  bool provesZero(ExprRef R) const { return val(R).Hi == 0; }

  /// True (and sets \p Out) iff the analysis pins the node to one value.
  bool singleton(ExprRef R, Word &Out) const {
    AbsVal V = val(R);
    if (V.Lo == V.Hi) {
      Out = V.Lo;
      return true;
    }
    if ((V.KnownZero | V.KnownOne) == ~Word(0)) {
      Out = V.KnownOne;
      return true;
    }
    return false;
  }

private:
  std::vector<AbsVal> Vals;
};

/// Rewrites \p R using \p Dom's facts plus the arena's smart constructors:
/// singleton nodes become constants, decided ite guards prune the dead
/// arm, and the rebuilt operands re-trigger the arena's folds (xor/add
/// chains, implies/toBool normal forms). Appends nodes to \p Arena; the
/// memo \p Cache must be reused only with the same (Arena, Dom) pair.
ExprRef simplify(ExprArena &Arena, const AbsDomain &Dom, ExprRef R,
                 std::vector<ExprRef> &Cache);

/// Context-sensitive re-evaluation: harvests interval/known-bits facts
/// from asserted conjuncts (an obligation's assumptions and path guard)
/// and re-runs the abstract transfer over a condition's cone with those
/// facts met in. This proves guard-dependent conditions the global domain
/// cannot see — the canonical one being a loop measure `t - 1 <u t`,
/// valid only under the in-scope `t != 0`.
///
/// Soundness: every harvested fact is implied by the asserted conjuncts,
/// so any valuation satisfying the context lies inside every fact. A
/// contradiction between facts (or with the base domain) therefore means
/// the context itself admits no valuation — the obligation holds
/// vacuously. Like the base domain, this tier only ever *proves*.
///
/// Usage per obligation: begin(), assertTrue() each conjunct, then query.
/// Asserting after a query would leave stale memoized values; don't.
class RefinedEval {
public:
  RefinedEval(const ExprArena &Arena, const AbsDomain &Base)
      : Arena(Arena), Base(Base) {}

  /// Starts a fresh context (clears facts and memoized values).
  void begin() {
    Facts.clear();
    Memo.clear();
    Contra = false;
  }

  /// Asserts one conjunct nonzero, decomposing `&`-chains, comparisons
  /// against constants, and equalities into per-node refinements.
  void assertTrue(ExprRef R);

  /// The asserted context admits no valuation at all.
  bool contradiction() const { return Contra; }

  /// The node is nonzero under every valuation satisfying the context —
  /// vacuously so when the context turns out to be contradictory.
  bool provesNonzero(ExprRef R);

private:
  AbsVal eval(ExprRef R);
  void addFact(ExprRef R, const AbsVal &F);

  const ExprArena &Arena;
  const AbsDomain &Base;
  std::unordered_map<ExprRef, AbsVal> Facts;
  std::unordered_map<ExprRef, AbsVal> Memo;
  bool Contra = false;
};

} // namespace vc
} // namespace b2

#endif // B2_VC_ANALYSIS_H
