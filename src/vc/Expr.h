//===- vc/Expr.h - Hash-consed symbolic expression DAG ---------*- C++ -*-===//
//
// Part of the b2stack project: a C++ reproduction of "Integration
// Verification across Software and Hardware for a Simple Embedded System"
// (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression language of the symbolic VC engine: 32-bit bitvector
/// terms over the Bedrock2 operator set, plus if-then-else, built inside a
/// hash-consing arena so that structurally equal terms share one node. The
/// smart constructors canonicalize (commutative-operand ordering, constant
/// folding through bedrock2::evalBinOp, algebraic identities) so that the
/// verification conditions handed to the bit-blasting solver are as small
/// as the rewriter can make them; obligations whose condition folds to a
/// constant never reach the solver at all.
///
/// Booleans are represented as 0/1-valued words (the Bedrock2 convention:
/// any nonzero word is "true"). The arena tracks which nodes are provably
/// 0/1-valued so that toBool() can avoid stacking redundant comparisons.
///
//===----------------------------------------------------------------------===//

#ifndef B2_VC_EXPR_H
#define B2_VC_EXPR_H

#include "bedrock2/Ast.h"
#include "support/Word.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace b2 {
namespace vc {

/// Index of a node in the owning ExprArena. Nodes are created bottom-up,
/// so every operand index is smaller than its parent's — evaluation and
/// bit-blasting can run a single forward pass.
using ExprRef = uint32_t;

enum class ExprKind : uint8_t {
  Const, ///< Lit holds the value.
  Var,   ///< Lit holds the variable id (index into the arena's var table).
  Op,    ///< BinOp over A, B.
  Ite,   ///< A != 0 ? B : C.
};

struct ExprNode {
  ExprKind K;
  bedrock2::BinOp Op;  ///< Valid iff K == Op.
  bool Is01;           ///< Node provably evaluates to 0 or 1.
  ExprRef A = 0, B = 0, C = 0;
  Word Lit = 0;
};

/// What a symbolic variable stands for, so counterexample models can be
/// mapped back onto concrete interpreter inputs.
enum class VarOrigin : uint8_t {
  Param,    ///< Entry-function parameter.
  MmioRead, ///< Value returned by a symbolic MMIOREAD.
  Havoc,    ///< Havocked local at an annotated loop head, havocked memory
            ///< byte after a storing annotated loop, or a fallback binding.
};

struct VarInfo {
  std::string Name;
  VarOrigin Origin;
};

class ExprArena {
public:
  ExprArena();

  /// The constant \p V (hash-consed).
  ExprRef constant(Word V);

  /// A fresh symbolic variable (never consed: each call is a new var).
  ExprRef var(std::string Name, VarOrigin Origin);

  /// \p O applied to \p A, \p B with canonicalization + constant folding.
  ExprRef op(bedrock2::BinOp O, ExprRef A, ExprRef B);

  /// Cond != 0 ? Then : Else, folding constant conditions and equal arms.
  ExprRef ite(ExprRef Cond, ExprRef Then, ExprRef Else);

  // -- Boolean (0/1-valued word) helpers -----------------------------------
  ExprRef trueRef() const { return TrueRef; }
  ExprRef falseRef() const { return FalseRef; }
  /// Normalizes a word to 0/1: nonzero becomes 1.
  ExprRef toBool(ExprRef W);
  /// Logical negation of a 0/1 word.
  ExprRef boolNot(ExprRef B);
  ExprRef boolAnd(ExprRef A, ExprRef B);
  ExprRef boolOr(ExprRef A, ExprRef B);
  /// (Guard != 0) implies (Cond != 0), as a 0/1 word.
  ExprRef implies(ExprRef Guard, ExprRef Cond);
  ExprRef eq(ExprRef A, ExprRef B) { return op(bedrock2::BinOp::Eq, A, B); }
  ExprRef ltu(ExprRef A, ExprRef B) { return op(bedrock2::BinOp::Ltu, A, B); }
  ExprRef add(ExprRef A, ExprRef B) { return op(bedrock2::BinOp::Add, A, B); }
  ExprRef sub(ExprRef A, ExprRef B) { return op(bedrock2::BinOp::Sub, A, B); }

  const ExprNode &node(ExprRef R) const { return Nodes[R]; }
  size_t size() const { return Nodes.size(); }

  unsigned numVars() const { return unsigned(Vars.size()); }
  const VarInfo &varInfo(unsigned Id) const { return Vars[Id]; }

  /// True (and sets \p V) iff \p R is a constant.
  bool constValue(ExprRef R, Word &V) const;
  bool isConstTrue(ExprRef R) const;
  bool isConstZero(ExprRef R) const;

  /// Evaluates every node under \p VarVals (one Word per variable id;
  /// missing entries read as 0) in one forward pass. Out[R] is the value
  /// of node R. Stack-safe for arbitrarily deep DAGs.
  std::vector<Word> evalAll(const std::vector<Word> &VarVals) const;

  /// Evaluates a single node (convenience over evalAll for small arenas).
  Word eval(ExprRef R, const std::vector<Word> &VarVals) const;

private:
  struct NodeKey {
    uint8_t K;
    uint8_t Op;
    ExprRef A, B, C;
    Word Lit;
    bool operator==(const NodeKey &O) const {
      return K == O.K && Op == O.Op && A == O.A && B == O.B && C == O.C &&
             Lit == O.Lit;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey &N) const {
      uint64_t H = 0xcbf29ce484222325ull;
      auto Mix = [&H](uint64_t V) {
        H ^= V;
        H *= 0x100000001b3ull;
      };
      Mix(N.K);
      Mix(N.Op);
      Mix(N.A);
      Mix(N.B);
      Mix(N.C);
      Mix(N.Lit);
      return size_t(H);
    }
  };

  ExprRef intern(const NodeKey &Key, bool Is01);

  std::vector<ExprNode> Nodes;
  std::vector<VarInfo> Vars;
  std::unordered_map<NodeKey, ExprRef, NodeKeyHash> Interned;
  ExprRef TrueRef = 0, FalseRef = 0;
};

} // namespace vc
} // namespace b2

#endif // B2_VC_EXPR_H
