//===- riscv/Exec.h - Shared instruction-semantics helpers -----*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-opcode semantic kernels of the software-oriented RISC-V
/// semantics, shared between the reference stepper (riscv/Step.cpp) and
/// the superblock trace engine (riscv/BlockEngine.cpp). Keeping exactly
/// one definition of the ALU, the branch predicate, load extension, and
/// the platform's nonmem MMIO rules is what makes the two engines
/// semantically identical by construction — including the seeded
/// fault-injection hooks, which must keep firing inside translated
/// traces just as they do in the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef B2_RISCV_EXEC_H
#define B2_RISCV_EXEC_H

#include "isa/Instr.h"
#include "riscv/Machine.h"
#include "riscv/Mmio.h"
#include "support/Format.h"
#include "support/Word.h"
#include "verify/FaultInjection.h"

namespace b2 {
namespace riscv {
namespace exec {

/// ALU for register-register and register-immediate operations. This is
/// the semantics the compiler is tested against; the Kami model has an
/// independently written ALU (kami/Exec.cpp) and the two are checked
/// against each other by verify/DecodeConsistency.
inline Word alu(isa::Opcode Op, Word A, Word B) {
  using isa::Opcode;
  using namespace support;
  switch (Op) {
  case Opcode::Add:
  case Opcode::Addi:
    return A + B;
  case Opcode::Sub:
    return A - B;
  case Opcode::Sll:
  case Opcode::Slli:
    return shiftL(A, B);
  case Opcode::Slt:
  case Opcode::Slti:
    return SWord(A) < SWord(B) ? 1 : 0;
  case Opcode::Sltu:
  case Opcode::Sltiu:
    return A < B ? 1 : 0;
  case Opcode::Xor:
  case Opcode::Xori:
    return A ^ B;
  case Opcode::Srl:
  case Opcode::Srli:
    return shiftRL(A, B);
  case Opcode::Sra:
  case Opcode::Srai:
    if (fi::on(fi::Fault::SimSraLogicalShift))
      return shiftRL(A, B);
    return shiftRA(A, B);
  case Opcode::Or:
  case Opcode::Ori:
    return A | B;
  case Opcode::And:
  case Opcode::Andi:
    return A & B;
  case Opcode::Mul:
    return A * B;
  case Opcode::Mulh:
    return Word((SDWord(SWord(A)) * SDWord(SWord(B))) >> 32);
  case Opcode::Mulhsu:
    return Word((SDWord(SWord(A)) * SDWord(DWord(B))) >> 32);
  case Opcode::Mulhu:
    return mulhuu(A, B);
  case Opcode::Div:
    return divs(A, B);
  case Opcode::Divu:
    return divu(A, B);
  case Opcode::Rem:
    return rems(A, B);
  case Opcode::Remu:
    return remu(A, B);
  default:
    assert(false && "alu called on a non-ALU opcode");
    return 0;
  }
}

inline bool branchTaken(isa::Opcode Op, Word A, Word B) {
  using isa::Opcode;
  switch (Op) {
  case Opcode::Beq:
    return A == B;
  case Opcode::Bne:
    return A != B;
  case Opcode::Blt:
    if (fi::on(fi::Fault::SimBranchLtAsGe))
      return SWord(A) >= SWord(B);
    return SWord(A) < SWord(B);
  case Opcode::Bge:
    return SWord(A) >= SWord(B);
  case Opcode::Bltu:
    return A < B;
  case Opcode::Bgeu:
    return A >= B;
  default:
    assert(false && "branchTaken called on a non-branch opcode");
    return false;
  }
}

/// Sign- or zero-extends a loaded value according to the load opcode.
inline Word extendLoad(isa::Opcode Op, Word Raw) {
  using isa::Opcode;
  using support::signExtend;
  switch (Op) {
  case Opcode::Lb:
    return signExtend(Raw, 8);
  case Opcode::Lh:
    if (fi::on(fi::Fault::SimLhWrongWidth))
      return signExtend(Raw & 0xFF, 8);
    return signExtend(Raw, 16);
  case Opcode::Lbu:
    return Raw & 0xFF;
  case Opcode::Lhu:
    return Raw & 0xFFFF;
  case Opcode::Lw:
    return Raw;
  default:
    assert(false && "extendLoad called on a non-load opcode");
    return 0;
  }
}

/// The nonmem_load instance for the lightbulb platform (paper section
/// 6.2): the access must be an MMIO address, naturally aligned, and
/// word-sized; the read value is recorded in the I/O trace.
inline bool nonmemLoad(Machine &M, MmioDevice &Device, Word Addr,
                       unsigned Size, Word &Out) {
  using support::hex32;
  if (!Device.isMmio(Addr, Size)) {
    M.markUb(UbKind::LoadUnmapped, "load at " + hex32(Addr));
    return false;
  }
  if (Size != 4) {
    M.markUb(UbKind::MmioBadSize, "non-word MMIO load at " + hex32(Addr));
    return false;
  }
  if (!support::isAligned(Addr, Size)) {
    M.markUb(UbKind::LoadMisaligned, "MMIO load at " + hex32(Addr));
    return false;
  }
  Out = Device.load(Addr, Size);
  M.appendEvent(MmioEvent{/*IsStore=*/false, Addr, Out, uint8_t(Size)});
  return true;
}

/// The nonmem_store instance for the lightbulb platform.
inline bool nonmemStore(Machine &M, MmioDevice &Device, Word Addr,
                        unsigned Size, Word Value) {
  using support::hex32;
  if (!Device.isMmio(Addr, Size)) {
    M.markUb(UbKind::StoreUnmapped, "store at " + hex32(Addr));
    return false;
  }
  if (Size != 4) {
    M.markUb(UbKind::MmioBadSize, "non-word MMIO store at " + hex32(Addr));
    return false;
  }
  if (!support::isAligned(Addr, Size)) {
    M.markUb(UbKind::StoreMisaligned, "MMIO store at " + hex32(Addr));
    return false;
  }
  Device.store(Addr, Size, Value);
  M.appendEvent(MmioEvent{/*IsStore=*/true, Addr, Value, uint8_t(Size)});
  return true;
}

} // namespace exec
} // namespace riscv
} // namespace b2

#endif // B2_RISCV_EXEC_H
