//===- riscv/Step.cpp - One-instruction ISA semantics ----------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "riscv/Step.h"

#include "isa/Encoding.h"
#include "riscv/Exec.h"
#include "support/Format.h"
#include "verify/FaultInjection.h"

using namespace b2;
using namespace b2::isa;
using namespace b2::riscv;
using namespace b2::support;

// The per-opcode semantic kernels (ALU, branch predicate, load
// extension, the platform's nonmem MMIO rules) live in riscv/Exec.h so
// the superblock trace engine executes the exact same code — fault
// hooks included.

bool b2::riscv::step(Machine &M, MmioDevice &Device) {
  if (M.hasUb())
    return false;

  // Fetch. A valid predecoded line witnesses that the slow-path checks
  // below all pass (its invalidation set is exactly the XAddrs removal
  // set of section 5.6, plus host-level RAM pokes), so a hit skips them
  // without changing any outcome — in particular, a store over a cached
  // instruction drops the line and the refetch still reports
  // FetchNotExecutable.
  Word Pc = M.getPc();
  const Instr *IP = M.cachedInstr(Pc);
  Instr Slow;
  if (!IP) {
    // Slow path: the XAddrs check encodes the stale-instruction
    // discipline (section 5.6): addresses written by stores are no
    // longer executable.
    if (!isAligned(Pc, 4)) {
      M.markUb(UbKind::FetchMisaligned, "pc = " + hex32(Pc));
      return false;
    }
    if (!M.inRam(Pc, 4)) {
      M.markUb(UbKind::FetchUnmapped, "pc = " + hex32(Pc));
      return false;
    }
    if (!M.isExecutable(Pc)) {
      M.markUb(UbKind::FetchNotExecutable, "pc = " + hex32(Pc));
      return false;
    }
    Word Raw = M.readRam(Pc, 4);
    Slow = decode(Raw);
    if (!Slow.isValid()) {
      M.markUb(UbKind::InvalidInstruction,
               "word " + hex32(Raw) + " at pc " + hex32(Pc));
      return false;
    }
    M.fillDecodeCache(Pc, Slow);
    IP = &Slow;
  }
  const Instr &I = *IP;

  Word NextPc = Pc + 4;

  switch (I.Op) {
  case Opcode::Lui:
    M.setReg(I.Rd, Word(I.Imm));
    break;
  case Opcode::Auipc:
    M.setReg(I.Rd, Pc + Word(I.Imm));
    break;
  case Opcode::Jal:
    M.setReg(I.Rd, Pc + 4);
    NextPc = Pc + Word(I.Imm);
    break;
  case Opcode::Jalr: {
    Word Target = (M.getReg(I.Rs1) + Word(I.Imm)) & ~Word(1);
    M.setReg(I.Rd, Pc + 4);
    NextPc = Target;
    break;
  }
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
  case Opcode::Bltu:
  case Opcode::Bgeu:
    if (exec::branchTaken(I.Op, M.getReg(I.Rs1), M.getReg(I.Rs2)))
      NextPc = Pc + Word(I.Imm);
    break;
  case Opcode::Lb:
  case Opcode::Lh:
  case Opcode::Lw:
  case Opcode::Lbu:
  case Opcode::Lhu: {
    Word Addr = M.getReg(I.Rs1) + Word(I.Imm);
    unsigned Size = accessSize(I.Op);
    Word Raw2;
    if (M.inRam(Addr, Size)) {
      if (!isAligned(Addr, Size)) {
        M.markUb(UbKind::LoadMisaligned, "load at " + hex32(Addr));
        return false;
      }
      Raw2 = M.readRam(Addr, Size);
    } else if (!exec::nonmemLoad(M, Device, Addr, Size, Raw2)) {
      return false;
    }
    M.setReg(I.Rd, exec::extendLoad(I.Op, Raw2));
    break;
  }
  case Opcode::Sb:
  case Opcode::Sh:
  case Opcode::Sw: {
    Word Addr = M.getReg(I.Rs1) + Word(I.Imm);
    unsigned Size = accessSize(I.Op);
    Word Value = M.getReg(I.Rs2);
    if (M.inRam(Addr, Size)) {
      if (!isAligned(Addr, Size)) {
        M.markUb(UbKind::StoreMisaligned, "store at " + hex32(Addr));
        return false;
      }
      M.storeRam(Addr, Size, Value);
    } else if (!exec::nonmemStore(M, Device, Addr, Size, Value)) {
      return false;
    }
    break;
  }
  case Opcode::Fence:
    break; // Single-core platform: fences are no-ops.
  case Opcode::Ecall:
  case Opcode::Ebreak:
    M.markUb(UbKind::EnvironmentCall,
             std::string(opcodeName(I.Op)) + " at pc " + hex32(Pc));
    return false;
  default:
    if (isImmAlu(I.Op)) {
      M.setReg(I.Rd, exec::alu(I.Op, M.getReg(I.Rs1), Word(I.Imm)));
    } else {
      assert(isRegAlu(I.Op) && "unhandled opcode in step");
      M.setReg(I.Rd, exec::alu(I.Op, M.getReg(I.Rs1), M.getReg(I.Rs2)));
    }
    break;
  }

  M.setPc(NextPc);
  M.countRetired();
  return true;
}

uint64_t b2::riscv::run(Machine &M, MmioDevice &Device, uint64_t MaxSteps) {
  uint64_t N = 0;
  while (N < MaxSteps && step(M, Device))
    ++N;
  return N;
}
