//===- riscv/Step.cpp - One-instruction ISA semantics ----------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "riscv/Step.h"

#include "isa/Encoding.h"
#include "support/Format.h"
#include "verify/FaultInjection.h"

using namespace b2;
using namespace b2::isa;
using namespace b2::riscv;
using namespace b2::support;

namespace {

/// ALU for register-register and register-immediate operations. This is
/// the semantics the compiler is tested against; the Kami model has an
/// independently written ALU (kami/Exec.cpp) and the two are checked
/// against each other by verify/DecodeConsistency.
Word alu(Opcode Op, Word A, Word B) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Addi:
    return A + B;
  case Opcode::Sub:
    return A - B;
  case Opcode::Sll:
  case Opcode::Slli:
    return shiftL(A, B);
  case Opcode::Slt:
  case Opcode::Slti:
    return SWord(A) < SWord(B) ? 1 : 0;
  case Opcode::Sltu:
  case Opcode::Sltiu:
    return A < B ? 1 : 0;
  case Opcode::Xor:
  case Opcode::Xori:
    return A ^ B;
  case Opcode::Srl:
  case Opcode::Srli:
    return shiftRL(A, B);
  case Opcode::Sra:
  case Opcode::Srai:
    if (fi::on(fi::Fault::SimSraLogicalShift))
      return shiftRL(A, B);
    return shiftRA(A, B);
  case Opcode::Or:
  case Opcode::Ori:
    return A | B;
  case Opcode::And:
  case Opcode::Andi:
    return A & B;
  case Opcode::Mul:
    return A * B;
  case Opcode::Mulh:
    return Word((SDWord(SWord(A)) * SDWord(SWord(B))) >> 32);
  case Opcode::Mulhsu:
    return Word((SDWord(SWord(A)) * SDWord(DWord(B))) >> 32);
  case Opcode::Mulhu:
    return mulhuu(A, B);
  case Opcode::Div:
    return divs(A, B);
  case Opcode::Divu:
    return divu(A, B);
  case Opcode::Rem:
    return rems(A, B);
  case Opcode::Remu:
    return remu(A, B);
  default:
    assert(false && "alu called on a non-ALU opcode");
    return 0;
  }
}

bool branchTaken(Opcode Op, Word A, Word B) {
  switch (Op) {
  case Opcode::Beq:
    return A == B;
  case Opcode::Bne:
    return A != B;
  case Opcode::Blt:
    if (fi::on(fi::Fault::SimBranchLtAsGe))
      return SWord(A) >= SWord(B);
    return SWord(A) < SWord(B);
  case Opcode::Bge:
    return SWord(A) >= SWord(B);
  case Opcode::Bltu:
    return A < B;
  case Opcode::Bgeu:
    return A >= B;
  default:
    assert(false && "branchTaken called on a non-branch opcode");
    return false;
  }
}

/// Sign- or zero-extends a loaded value according to the load opcode.
Word extendLoad(Opcode Op, Word Raw) {
  switch (Op) {
  case Opcode::Lb:
    return signExtend(Raw, 8);
  case Opcode::Lh:
    if (fi::on(fi::Fault::SimLhWrongWidth))
      return signExtend(Raw & 0xFF, 8);
    return signExtend(Raw, 16);
  case Opcode::Lbu:
    return Raw & 0xFF;
  case Opcode::Lhu:
    return Raw & 0xFFFF;
  case Opcode::Lw:
    return Raw;
  default:
    assert(false && "extendLoad called on a non-load opcode");
    return 0;
  }
}

/// The nonmem_load instance for the lightbulb platform (paper section
/// 6.2): the access must be an MMIO address, naturally aligned, and
/// word-sized; the read value is recorded in the I/O trace.
bool nonmemLoad(Machine &M, MmioDevice &Device, Word Addr, unsigned Size,
                Word &Out) {
  if (!Device.isMmio(Addr, Size)) {
    M.markUb(UbKind::LoadUnmapped, "load at " + hex32(Addr));
    return false;
  }
  if (Size != 4) {
    M.markUb(UbKind::MmioBadSize, "non-word MMIO load at " + hex32(Addr));
    return false;
  }
  if (!isAligned(Addr, Size)) {
    M.markUb(UbKind::LoadMisaligned, "MMIO load at " + hex32(Addr));
    return false;
  }
  Out = Device.load(Addr, Size);
  M.appendEvent(MmioEvent{/*IsStore=*/false, Addr, Out, uint8_t(Size)});
  return true;
}

/// The nonmem_store instance for the lightbulb platform.
bool nonmemStore(Machine &M, MmioDevice &Device, Word Addr, unsigned Size,
                 Word Value) {
  if (!Device.isMmio(Addr, Size)) {
    M.markUb(UbKind::StoreUnmapped, "store at " + hex32(Addr));
    return false;
  }
  if (Size != 4) {
    M.markUb(UbKind::MmioBadSize, "non-word MMIO store at " + hex32(Addr));
    return false;
  }
  if (!isAligned(Addr, Size)) {
    M.markUb(UbKind::StoreMisaligned, "MMIO store at " + hex32(Addr));
    return false;
  }
  Device.store(Addr, Size, Value);
  M.appendEvent(MmioEvent{/*IsStore=*/true, Addr, Value, uint8_t(Size)});
  return true;
}

} // namespace

bool b2::riscv::step(Machine &M, MmioDevice &Device) {
  if (M.hasUb())
    return false;

  // Fetch. A valid predecoded line witnesses that the slow-path checks
  // below all pass (its invalidation set is exactly the XAddrs removal
  // set of section 5.6, plus host-level RAM pokes), so a hit skips them
  // without changing any outcome — in particular, a store over a cached
  // instruction drops the line and the refetch still reports
  // FetchNotExecutable.
  Word Pc = M.getPc();
  const Instr *IP = M.cachedInstr(Pc);
  Instr Slow;
  if (!IP) {
    // Slow path: the XAddrs check encodes the stale-instruction
    // discipline (section 5.6): addresses written by stores are no
    // longer executable.
    if (!isAligned(Pc, 4)) {
      M.markUb(UbKind::FetchMisaligned, "pc = " + hex32(Pc));
      return false;
    }
    if (!M.inRam(Pc, 4)) {
      M.markUb(UbKind::FetchUnmapped, "pc = " + hex32(Pc));
      return false;
    }
    if (!M.isExecutable(Pc)) {
      M.markUb(UbKind::FetchNotExecutable, "pc = " + hex32(Pc));
      return false;
    }
    Word Raw = M.readRam(Pc, 4);
    Slow = decode(Raw);
    if (!Slow.isValid()) {
      M.markUb(UbKind::InvalidInstruction,
               "word " + hex32(Raw) + " at pc " + hex32(Pc));
      return false;
    }
    M.fillDecodeCache(Pc, Slow);
    IP = &Slow;
  }
  const Instr &I = *IP;

  Word NextPc = Pc + 4;

  switch (I.Op) {
  case Opcode::Lui:
    M.setReg(I.Rd, Word(I.Imm));
    break;
  case Opcode::Auipc:
    M.setReg(I.Rd, Pc + Word(I.Imm));
    break;
  case Opcode::Jal:
    M.setReg(I.Rd, Pc + 4);
    NextPc = Pc + Word(I.Imm);
    break;
  case Opcode::Jalr: {
    Word Target = (M.getReg(I.Rs1) + Word(I.Imm)) & ~Word(1);
    M.setReg(I.Rd, Pc + 4);
    NextPc = Target;
    break;
  }
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
  case Opcode::Bltu:
  case Opcode::Bgeu:
    if (branchTaken(I.Op, M.getReg(I.Rs1), M.getReg(I.Rs2)))
      NextPc = Pc + Word(I.Imm);
    break;
  case Opcode::Lb:
  case Opcode::Lh:
  case Opcode::Lw:
  case Opcode::Lbu:
  case Opcode::Lhu: {
    Word Addr = M.getReg(I.Rs1) + Word(I.Imm);
    unsigned Size = accessSize(I.Op);
    Word Raw2;
    if (M.inRam(Addr, Size)) {
      if (!isAligned(Addr, Size)) {
        M.markUb(UbKind::LoadMisaligned, "load at " + hex32(Addr));
        return false;
      }
      Raw2 = M.readRam(Addr, Size);
    } else if (!nonmemLoad(M, Device, Addr, Size, Raw2)) {
      return false;
    }
    M.setReg(I.Rd, extendLoad(I.Op, Raw2));
    break;
  }
  case Opcode::Sb:
  case Opcode::Sh:
  case Opcode::Sw: {
    Word Addr = M.getReg(I.Rs1) + Word(I.Imm);
    unsigned Size = accessSize(I.Op);
    Word Value = M.getReg(I.Rs2);
    if (M.inRam(Addr, Size)) {
      if (!isAligned(Addr, Size)) {
        M.markUb(UbKind::StoreMisaligned, "store at " + hex32(Addr));
        return false;
      }
      M.storeRam(Addr, Size, Value);
    } else if (!nonmemStore(M, Device, Addr, Size, Value)) {
      return false;
    }
    break;
  }
  case Opcode::Fence:
    break; // Single-core platform: fences are no-ops.
  case Opcode::Ecall:
  case Opcode::Ebreak:
    M.markUb(UbKind::EnvironmentCall,
             std::string(opcodeName(I.Op)) + " at pc " + hex32(Pc));
    return false;
  default:
    if (isImmAlu(I.Op)) {
      M.setReg(I.Rd, alu(I.Op, M.getReg(I.Rs1), Word(I.Imm)));
    } else {
      assert(isRegAlu(I.Op) && "unhandled opcode in step");
      M.setReg(I.Rd, alu(I.Op, M.getReg(I.Rs1), M.getReg(I.Rs2)));
    }
    break;
  }

  M.setPc(NextPc);
  M.countRetired();
  return true;
}

uint64_t b2::riscv::run(Machine &M, MmioDevice &Device, uint64_t MaxSteps) {
  uint64_t N = 0;
  while (N < MaxSteps && step(M, Device))
    ++N;
  return N;
}
