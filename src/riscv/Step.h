//===- riscv/Step.h - One-instruction ISA semantics ------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-instruction step function of the software-oriented RISC-V
/// semantics (the paper's `s -> Q`, section 4.3), and a run loop that
/// iterates it (the paper's eventually operator is realized as bounded
/// iteration in the executable setting).
///
/// The paper's CPS formulation exists to quantify over *all* possible next
/// states under nondeterminism; in this executable reproduction the
/// device parameter resolves input nondeterminism, so one step computes
/// one concrete successor or marks the machine as UB.
///
//===----------------------------------------------------------------------===//

#ifndef B2_RISCV_STEP_H
#define B2_RISCV_STEP_H

#include "riscv/Machine.h"
#include "riscv/Mmio.h"

#include <cstdint>

namespace b2 {
namespace riscv {

/// Executes one instruction. If the step triggers undefined behavior, the
/// machine is marked accordingly (`Machine::hasUb()` becomes true) and the
/// architectural state is left at the point just before the offending
/// operation. Returns true iff the step was well-defined.
bool step(Machine &M, MmioDevice &Device);

/// Runs up to \p MaxSteps instructions, stopping early on UB. Returns the
/// number of retired (well-defined) instructions.
uint64_t run(Machine &M, MmioDevice &Device, uint64_t MaxSteps);

} // namespace riscv
} // namespace b2

#endif // B2_RISCV_STEP_H
