//===- riscv/BlockEngine.h - Superblock trace execution engine -*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-tier execution engine for the software-oriented RISC-V machine.
/// The first tier is the reference stepper (riscv/Step.h); the second
/// tier discovers hot basic blocks through per-word heat counters,
/// translates them into contiguous threaded micro-op traces (with fused
/// idioms for addi/branch counter loops and lw/sw copy pairs, and with
/// unconditional jumps — calls included, their link-register write folded
/// to a translation-time constant — followed straight through), and
/// chains translated blocks through direct block linking so that
/// steady-state loops never leave trace execution.
///
/// The engine is a *performance* layer, never a *semantics* layer: every
/// micro-op reuses the semantic kernels of riscv/Exec.h (fault-injection
/// hooks included), every guard that could fail — MMIO touches beyond the
/// aligned-word fast path, misalignment, unmapped addresses, untranslated
/// control-flow targets — side-exits back to the reference stepper
/// *before* mutating state, and undefined behavior is only ever diagnosed
/// by the stepper so UB kinds and messages are bit-identical across
/// engines.
///
/// Stale-trace discipline: translation covers a set of instruction words,
/// and the machine reports every decode-invalidation set (== the XAddrs
/// removal set of paper section 5.6) through InvalidationListener; any
/// superblock overlapping the set is killed, including the block
/// currently executing (which commits the completed instruction and
/// side-exits). Whole-machine restore flushes the translation cache —
/// trace state is derived, never architectural, so snapshots compose with
/// the PR-5 checkpoint layer unchanged.
///
/// ExecMode::Differential runs both tiers in lockstep: the block engine
/// drives the primary machine, and after every run() chunk a shadow
/// machine replays the same instruction count through the reference
/// stepper (MMIO loads served from the primary's recorded trace), then
/// the full architectural state — registers, pc, RAM, XAddrs, UB status,
/// retired count, MMIO event stream — must match exactly.
///
//===----------------------------------------------------------------------===//

#ifndef B2_RISCV_BLOCKENGINE_H
#define B2_RISCV_BLOCKENGINE_H

#include "isa/Instr.h"
#include "riscv/Machine.h"
#include "support/Word.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace b2 {
namespace riscv {

/// Which execution engine drives a machine.
enum class ExecMode : uint8_t {
  Reference,    ///< The reference stepper with the predecoded fast path.
  Block,        ///< Superblock traces with reference-stepper fallback.
  Differential, ///< Block engine checked in lockstep against Reference.
};

/// Stable lower-case name ("reference", "block", "differential").
const char *execModeName(ExecMode Mode);

/// Parses a mode name (accepts "diff" for Differential). Returns false
/// and leaves \p Out untouched on unknown names.
bool execModeByName(const std::string &Name, ExecMode &Out);

/// Execution counters of one BlockEngine, for benchmarks and tests.
struct BlockEngineStats {
  uint64_t BlocksTranslated = 0; ///< Superblocks built.
  uint64_t BlocksKilled = 0;     ///< Superblocks killed by invalidation.
  uint64_t Flushes = 0;          ///< Whole-cache flushes (restore/capacity).
  uint64_t TraceInstrs = 0;      ///< Instructions retired inside traces.
  uint64_t ColdInstrs = 0;       ///< Instructions retired by the stepper.
  uint64_t SideExits = 0;        ///< Trace exits back to the stepper.
  uint64_t MmioInline = 0;       ///< MMIO word accesses handled in-trace.
  uint64_t FusedRetired = 0;     ///< Instructions retired by fused ops.
  // Side-exit reasons (their sum equals SideExits).
  uint64_t SideExitUntranslated = 0; ///< An untranslatable instruction
                                     ///< (explicit SideExit micro-op).
  uint64_t SideExitMemGuard = 0;     ///< Load/store guard miss: MMIO
                                     ///< beyond the inline path,
                                     ///< misaligned, or unmapped.
  uint64_t SideExitKilled = 0;       ///< A store invalidated the very
                                     ///< trace that executed it.
  // Direct-link resolution at block transitions.
  uint64_t LinkHits = 0;   ///< Successor reached through a valid cached
                           ///< link (direct link or jalr cache).
  uint64_t LinkMisses = 0; ///< Link stale/empty: full blockAt lookup.
  uint64_t InvalProbes = 0; ///< onInvalidate calls that passed the
                            ///< cover-bitmap filter (rare path).
};

/// The two-tier engine. Owns the machine's execution strategy for its
/// lifetime: construction in Block/Differential mode installs the
/// invalidation listener and disables the predecoded fast path (the trace
/// cache replaces it, and the slow-path fallback keeps decode-cache state
/// empty so engine choice never changes within-engine snapshot compares).
/// At most one engine may drive a machine at a time.
class BlockEngine final : public InvalidationListener {
public:
  BlockEngine(Machine &M, MmioDevice &Device, ExecMode Mode);
  ~BlockEngine() override;

  BlockEngine(const BlockEngine &) = delete;
  BlockEngine &operator=(const BlockEngine &) = delete;

  /// Retires up to \p MaxSteps instructions, stopping early only on UB —
  /// exactly the contract of riscv::run, so chunked drivers observe
  /// identical retirement schedules from every mode.
  uint64_t run(uint64_t MaxSteps);

  ExecMode mode() const { return Mode; }
  const BlockEngineStats &stats() const { return Stats; }

  /// Differential mode: number of lockstep divergences seen (sticky: the
  /// engine stops comparing after the first, preserving its detail).
  uint64_t divergences() const { return DivergenceCount; }
  const std::string &divergenceDetail() const { return DivergenceMsg; }

  /// Drops every translation (blocks, links, heat). Architectural state
  /// is untouched; execution re-warms from the stepper.
  void flushTranslations();

  /// Publishes the stat deltas since the last publish (plus the driven
  /// machine's decode-cache deltas) to the global metrics registry.
  /// Called automatically at the end of every run() chunk and on
  /// destruction; Stats itself is monotone for the engine's lifetime,
  /// so deltas never underflow.
  void publishMetrics();

  // -- InvalidationListener -------------------------------------------------

  void onInvalidate(size_t FirstWord, size_t LastWord) override;
  void onRestore() override;

private:
  /// Threaded micro-op kinds. Non-terminators fall through to the next
  /// op; terminators compute the successor pc and follow a direct link.
  enum class UOp : uint8_t {
    Nop,             ///< Retire one instruction, no state change.
    LoadConst,       ///< Rd = Aux (lui, auipc — pc folded at translation).
    Addi,            ///< Rd = Rs1 + Imm (hottest ALU op, dispatched early).
    AluImm,          ///< Rd = alu(Op, Rs1, Imm).
    AluReg,          ///< Rd = alu(Op, Rs1, Rs2).
    Load,            ///< Rd = extend(Op, mem[Rs1 + Imm]); MMIO-guarded.
    Store,           ///< mem[Rs1 + Imm] = Rs2; MMIO-guarded.
    FusedLwSw,       ///< Rd = mem[Rs1+Imm]; mem[Rs2+Aux] = Rd. Retires 2.
    FusedAddiBranch, ///< Rd = Rs1+Imm; branch Op on (Rs2, R3). Retires 2.
    Branch,          ///< Terminator: taken -> Aux, else InstrPc + 4.
    Jal,             ///< Terminator: link InstrPc+4, jump to Aux.
    Jalr,            ///< Terminator: indirect target via Rs1 + Imm.
    SideExit,        ///< Resume the reference stepper at Aux. Retires 0.
    LoadW,           ///< Load specialized to lw: single-compare RAM guard.
    StoreW,          ///< Store specialized to sw, with the inline word
                     ///< store path and a cover-count invalidation filter.
    // Opcode-specialized kinds for the hottest register-ALU ops and
    // branches, folding the secondary opcode switch into the primary
    // dispatch. Only fault-hook-free opcodes qualify (the Sra and Blt
    // seeded faults stay on the generic AluReg/Branch paths), and each
    // handler must mirror exec::alu / exec::branchTaken exactly.
    Add,             ///< Rd = Rs1 + Rs2.
    Sub,             ///< Rd = Rs1 - Rs2.
    And,             ///< Rd = Rs1 & Rs2.
    Sltu,            ///< Rd = (Rs1 < Rs2) unsigned.
    Srl,             ///< Rd = Rs1 >> (Rs2 & 31) logical.
    Bne,             ///< Terminator: Branch specialized to bne.
    Beq,             ///< Terminator: Branch specialized to beq.
    FusedAddBranch,  ///< Rd = Rs1+Rs2; branch Op on (R3, Imm-as-reg).
                     ///< Register-register twin of FusedAddiBranch, with
                     ///< the second branch operand's register number
                     ///< carried in Imm (the add uses no immediate).
                     ///< Retires 2.
    // Continue twins for self-loop unrolling: a block whose terminator
    // branches straight back to its own head is duplicated up to
    // MaxBlockWeight instructions, and every terminator but the last
    // becomes its continue twin — taken falls through into the next
    // copy, not-taken leaves through the fall-through link. Semantics
    // are identical to the terminator they replace.
    BneCont,             ///< Bne taken -> next micro-op.
    BeqCont,             ///< Beq taken -> next micro-op.
    BranchCont,          ///< Generic branch taken -> next micro-op.
    FusedAddiBranchCont, ///< FusedAddiBranch taken -> next micro-op.
    FusedAddBranchCont,  ///< FusedAddBranch taken -> next micro-op.
    // Straight-line pair fusions for the dominant o0 runs (stack spills
    // and address arithmetic come in bursts), halving dispatches there.
    FusedSwSw,       ///< mem[Rs1+Imm] = Rs2; mem[R3+Aux] = Rd-as-reg.
                     ///< Both guards checked before either store
                     ///< commits; any miss side-exits untouched.
                     ///< Retires 2.
    FusedAddiAddi,   ///< Rd = Rs1+Imm; R3 = Rs2+Aux. Sequential commit,
                     ///< so the second addi may read the first's result.
                     ///< Retires 2.
    FusedLwLw,       ///< Rd = mem[Rs1+Imm]; R3 = mem[Rs2+Aux].
                     ///< Sequential commit — the second base may be the
                     ///< first's destination — and RAM loads are
                     ///< idempotent, so a second-guard miss can side-exit
                     ///< after the first half retired. Retires 2.
  };

  struct MicroOp {
    UOp K = UOp::SideExit;
    isa::Opcode Op = isa::Opcode::Invalid; ///< For alu/branch/load/store.
    uint8_t Rd = 0;
    uint8_t Rs1 = 0;
    uint8_t Rs2 = 0;
    uint8_t R3 = 0; ///< Second branch operand of FusedAddiBranch.
    SWord Imm = 0;
    Word Aux = 0;     ///< Branch/jump target, constant, or store offset.
    Word InstrPc = 0; ///< Pc of the source instruction (side-exit resume).
  };

  /// One translated superblock: a straight-line micro-op trace (jal
  /// rd=x0 followed through at translation time) ending in a terminator.
  struct Block {
    Word HeadPc = 0;
    uint32_t Count = 0;      ///< Instructions a full pass retires.
    uint32_t EntryCount = 0; ///< Budget needed to enter: one body copy
                             ///< for an unrolled self-loop (continue
                             ///< twins re-check before each further
                             ///< copy), Count otherwise — so unrolling
                             ///< never shrinks the hot-execution window
                             ///< a chunked budget allows.
    bool Valid = true;
    int32_t LinkTaken = -1;      ///< Direct link: taken / unconditional.
    int32_t LinkFall = -1;       ///< Direct link: fall-through.
    int32_t JalrCacheBlock = -1; ///< Monomorphic indirect-target cache.
    Word JalrCachePc = ~Word(0);
    std::vector<MicroOp> Ops;
    std::vector<uint32_t> Words; ///< Sorted covered word indices.
  };

  static constexpr unsigned HotThreshold = 8;
  static constexpr unsigned MaxBlockWeight = 64;
  static constexpr size_t MaxBlocks = 4096;

  uint64_t runBlocks(uint64_t MaxSteps);
  uint64_t execTraces(size_t Bi, uint64_t Budget);
  int32_t blockAt(Word Pc) const;
  int32_t maybeTranslate(Word Pc);
  int32_t translate(Word HeadPc);
  void killBlock(size_t Idx);
  void noteJumpTarget(Word Pc);
  void syncShadow();
  std::string compareWithShadow(size_t TraceStart, bool Desynced);

  Machine &M;
  MmioDevice &Dev;
  ExecMode Mode;
  Word RamWordMax = 0; ///< Largest in-RAM address of an aligned word:
                       ///< `A <= RamWordMax && !(A & 3)` is inRam(A, 4)
                       ///< plus alignment in one compare each.
  BlockEngineStats Stats;
  BlockEngineStats Published; ///< publishMetrics() baseline.

  std::vector<Block> Blocks;
  std::vector<int32_t> IndexByWord;   ///< Head word -> block index, or -1.
  std::vector<uint16_t> Heat;         ///< Jump-target arrival counters.
  std::vector<uint32_t> CoverCount;   ///< Live blocks covering each word.
  std::vector<uint64_t> CoverBits;    ///< Bit per word: CoverCount != 0.
                                      ///< The store fast path probes this
                                      ///< 1/32-size mirror so the test
                                      ///< stays L1-resident.
  int32_t CurBlock = -1;              ///< Block mid-pass, for self-kill.
  bool CurKilled = false;

  std::unique_ptr<Machine> Shadow;    ///< Differential reference replica.
  bool ShadowStale = false;
  bool DiffDead = false;              ///< Stop comparing after first diff.
  uint64_t DivergenceCount = 0;
  std::string DivergenceMsg;
};

} // namespace riscv
} // namespace b2

#endif // B2_RISCV_BLOCKENGINE_H
