//===- riscv/BlockEngine.cpp - Superblock trace execution engine -----------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "riscv/BlockEngine.h"

#include "isa/Encoding.h"
#include "riscv/Exec.h"
#include "riscv/Step.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "verify/FaultInjection.h"

#include <algorithm>

using namespace b2;
using namespace b2::riscv;
using namespace b2::support;

const char *b2::riscv::execModeName(ExecMode Mode) {
  switch (Mode) {
  case ExecMode::Reference:
    return "reference";
  case ExecMode::Block:
    return "block";
  case ExecMode::Differential:
    return "differential";
  }
  return "unknown";
}

bool b2::riscv::execModeByName(const std::string &Name, ExecMode &Out) {
  if (Name == "reference") {
    Out = ExecMode::Reference;
    return true;
  }
  if (Name == "block") {
    Out = ExecMode::Block;
    return true;
  }
  if (Name == "differential" || Name == "diff") {
    Out = ExecMode::Differential;
    return true;
  }
  return false;
}

BlockEngine::BlockEngine(Machine &M, MmioDevice &Device, ExecMode Mode)
    : M(M), Dev(Device), Mode(Mode), RamWordMax(M.ramSize() - 4) {
  if (Mode == ExecMode::Reference)
    return;
  size_t Words = size_t(M.ramSize()) / 4;
  Heat.assign(Words, 0);
  CoverCount.assign(Words, 0);
  CoverBits.assign((Words + 63) / 64, 0);
  IndexByWord.assign(Words, -1);
  // The trace cache replaces the predecoded fast path; cold stepping runs
  // the slow fetch, keeping decode-cache state identically empty across
  // every Block-engine run (snapshots stay comparable within the mode).
  M.setDecodeCacheEnabled(false);
  M.setInvalidationListener(this);
  if (Mode == ExecMode::Differential)
    ShadowStale = true;
}

BlockEngine::~BlockEngine() {
  publishMetrics(); // Flush any tail accumulated since the last run().
  if (Mode != ExecMode::Reference && M.invalidationListener() == this)
    M.setInvalidationListener(nullptr);
}

void BlockEngine::publishMetrics() {
  using metrics::Id;
  metrics::add(Id::SimBlockTranslations,
               Stats.BlocksTranslated - Published.BlocksTranslated);
  metrics::add(Id::SimBlockKilled, Stats.BlocksKilled - Published.BlocksKilled);
  metrics::add(Id::SimBlockFlushes, Stats.Flushes - Published.Flushes);
  metrics::add(Id::SimBlockTraceInstrs,
               Stats.TraceInstrs - Published.TraceInstrs);
  metrics::add(Id::SimBlockColdInstrs, Stats.ColdInstrs - Published.ColdInstrs);
  metrics::add(Id::SimBlockSideExits, Stats.SideExits - Published.SideExits);
  metrics::add(Id::SimBlockSideExitUntranslated,
               Stats.SideExitUntranslated - Published.SideExitUntranslated);
  metrics::add(Id::SimBlockSideExitMemGuard,
               Stats.SideExitMemGuard - Published.SideExitMemGuard);
  metrics::add(Id::SimBlockSideExitKilled,
               Stats.SideExitKilled - Published.SideExitKilled);
  metrics::add(Id::SimBlockLinkHits, Stats.LinkHits - Published.LinkHits);
  metrics::add(Id::SimBlockLinkMisses, Stats.LinkMisses - Published.LinkMisses);
  metrics::add(Id::SimBlockMmioInline, Stats.MmioInline - Published.MmioInline);
  metrics::add(Id::SimBlockFusedRetired,
               Stats.FusedRetired - Published.FusedRetired);
  metrics::add(Id::SimBlockInvalProbes,
               Stats.InvalProbes - Published.InvalProbes);
  Published = Stats;
  M.publishMetrics();
}

void BlockEngine::flushTranslations() {
  if (Mode == ExecMode::Reference)
    return;
  Blocks.clear();
  std::fill(IndexByWord.begin(), IndexByWord.end(), -1);
  std::fill(CoverCount.begin(), CoverCount.end(), uint32_t(0));
  std::fill(CoverBits.begin(), CoverBits.end(), uint64_t(0));
  std::fill(Heat.begin(), Heat.end(), uint16_t(0));
  CurBlock = -1;
  CurKilled = false;
  ++Stats.Flushes;
}

void BlockEngine::onRestore() {
  // The whole architectural state was replaced; translations and the
  // differential shadow both describe a machine that no longer exists.
  flushTranslations();
  ShadowStale = true;
}

void BlockEngine::onInvalidate(size_t FirstWord, size_t LastWord) {
  if (fi::on(fi::Fault::SimBlockStaleSuperblock))
    return; // Seeded bug: invalidation no longer reaches the trace cache.
  if (CoverCount.empty())
    return;
  ++Stats.InvalProbes;
  if (LastWord >= CoverCount.size())
    LastWord = CoverCount.size() - 1;
  // Fast path: almost every store hits data words no trace covers.
  bool Any = false;
  for (size_t W = FirstWord; W <= LastWord; ++W)
    if (CoverBits[W >> 6] & (uint64_t(1) << (W & 63))) {
      Any = true;
      break;
    }
  if (!Any)
    return;
  for (size_t I = 0; I != Blocks.size(); ++I) {
    Block &Bk = Blocks[I];
    if (!Bk.Valid)
      continue;
    auto It = std::lower_bound(Bk.Words.begin(), Bk.Words.end(),
                               uint32_t(FirstWord));
    if (It != Bk.Words.end() && *It <= LastWord)
      killBlock(I);
  }
}

void BlockEngine::killBlock(size_t Idx) {
  Block &Bk = Blocks[Idx];
  if (!Bk.Valid)
    return;
  Bk.Valid = false;
  for (uint32_t W : Bk.Words)
    if (CoverCount[W] != 0 && --CoverCount[W] == 0)
      CoverBits[W >> 6] &= ~(uint64_t(1) << (W & 63));
  size_t HeadW = size_t(Bk.HeadPc >> 2);
  if (HeadW < IndexByWord.size() && IndexByWord[HeadW] == int32_t(Idx))
    IndexByWord[HeadW] = -1;
  if (int32_t(Idx) == CurBlock)
    CurKilled = true;
  ++Stats.BlocksKilled;
  // Bk.Ops stays allocated: the engine may be mid-pass inside this very
  // block. Dead storage is reclaimed wholesale by flushTranslations().
}

int32_t BlockEngine::blockAt(Word Pc) const {
  if ((Pc & 3) != 0)
    return -1;
  size_t W = size_t(Pc >> 2);
  if (W >= IndexByWord.size())
    return -1;
  return IndexByWord[W];
}

void BlockEngine::noteJumpTarget(Word Pc) {
  if ((Pc & 3) != 0)
    return;
  size_t W = size_t(Pc >> 2);
  if (W < Heat.size() && Heat[W] < 0xFFFF)
    ++Heat[W];
}

int32_t BlockEngine::maybeTranslate(Word Pc) {
  if ((Pc & 3) != 0)
    return -1;
  size_t W = size_t(Pc >> 2);
  if (W >= Heat.size() || Heat[W] < HotThreshold)
    return -1;
  int32_t Idx = translate(Pc);
  if (Idx < 0)
    Heat[W] = 0; // Untranslatable head: cool off before retrying.
  return Idx;
}

int32_t BlockEngine::translate(Word HeadPc) {
  if ((HeadPc & 3) != 0 || !M.isExecutable(HeadPc))
    return -1;
  if (Blocks.size() >= MaxBlocks)
    flushTranslations();

  Block B;
  B.HeadPc = HeadPc;
  Word Pc = HeadPc;
  unsigned Weight = 0; // Instructions a full pass retires.

  auto Cover = [&](Word A) { B.Words.push_back(uint32_t(A >> 2)); };
  // Translation decodes raw bytes under the same executability rule the
  // slow-path fetch applies; a valid result witnesses that executing this
  // word cold would retire normally *right now* — staleness from here on
  // is the invalidation listener's job.
  auto Fetch = [&](Word A, isa::Instr &Out) -> bool {
    if ((A & 3) != 0 || !M.isExecutable(A))
      return false;
    Out = isa::decode(M.readRam(A, 4));
    return Out.isValid();
  };

  bool Open = true;
  while (Open) {
    isa::Instr I;
    // Stop == 0: translated, keep going. 1: terminator emitted.
    // 2: untranslatable here — seal with a side exit.
    int Stop = 2;
    if (Weight < MaxBlockWeight && Fetch(Pc, I)) {
      MicroOp U;
      U.Op = I.Op;
      U.Rd = I.Rd;
      U.Rs1 = I.Rs1;
      U.Rs2 = I.Rs2;
      U.Imm = I.Imm;
      U.InstrPc = Pc;
      using isa::Opcode;
      Stop = 0;
      if (I.Op == Opcode::Lui || I.Op == Opcode::Auipc) {
        U.K = I.Rd ? UOp::LoadConst : UOp::Nop;
        U.Aux = I.Op == Opcode::Lui ? Word(I.Imm) : Pc + Word(I.Imm);
        Cover(Pc);
        B.Ops.push_back(U);
        ++Weight;
        Pc += 4;
      } else if (I.Op == Opcode::Addi) {
        isa::Instr N;
        bool HaveN = I.Rd != 0 && Fetch(Pc + 4, N);
        if (HaveN && isa::isBranch(N.Op)) {
          // Counter idiom: addi feeding straight into a branch. The addi
          // commits first, then the branch reads the updated registers.
          U.K = UOp::FusedAddiBranch;
          U.Op = N.Op;
          U.Rs2 = N.Rs1;
          U.R3 = N.Rs2;
          U.Aux = (Pc + 4) + Word(N.Imm);
          Cover(Pc);
          Cover(Pc + 4);
          B.Ops.push_back(U);
          Weight += 2;
          Stop = 1;
        } else if (HaveN && N.Op == Opcode::Addi && N.Rd != 0) {
          // Address-arithmetic burst: two addis in one dispatch. Commit
          // order is sequential, so the second may read the first.
          U.K = UOp::FusedAddiAddi;
          U.R3 = N.Rd;
          U.Rs2 = N.Rs1;
          U.Aux = Word(N.Imm);
          Cover(Pc);
          Cover(Pc + 4);
          B.Ops.push_back(U);
          Weight += 2;
          Pc += 8;
        } else {
          U.K = I.Rd ? UOp::Addi : UOp::Nop;
          Cover(Pc);
          B.Ops.push_back(U);
          ++Weight;
          Pc += 4;
        }
      } else if (isa::isBranch(I.Op)) {
        U.K = I.Op == Opcode::Bne   ? UOp::Bne
              : I.Op == Opcode::Beq ? UOp::Beq
                                    : UOp::Branch;
        U.Aux = Pc + Word(I.Imm);
        Cover(Pc);
        B.Ops.push_back(U);
        ++Weight;
        Stop = 1;
      } else if (I.Op == Opcode::Jal) {
        Word Target = Pc + Word(I.Imm);
        Cover(Pc);
        if (Weight + 1 < MaxBlockWeight && (Target & 3) == 0 &&
            M.isExecutable(Target)) {
          // Superblock extension: follow the unconditional jump — calls
          // included, with the link-register write folded to a constant —
          // and keep translating at the target, so a call plus the
          // callee's prologue lands in one trace. The weight cap bounds
          // jump cycles.
          U.K = I.Rd ? UOp::LoadConst : UOp::Nop;
          U.Aux = Pc + 4;
          B.Ops.push_back(U);
          ++Weight;
          Pc = Target;
        } else {
          U.K = UOp::Jal;
          U.Aux = Target;
          B.Ops.push_back(U);
          ++Weight;
          Stop = 1;
        }
      } else if (I.Op == Opcode::Jalr) {
        U.K = UOp::Jalr;
        Cover(Pc);
        B.Ops.push_back(U);
        ++Weight;
        Stop = 1;
      } else if (I.Op == Opcode::Lw && I.Rd != 0) {
        isa::Instr N;
        bool HaveN = Fetch(Pc + 4, N);
        if (HaveN && N.Op == Opcode::Sw && N.Rs2 == I.Rd && N.Rs1 != I.Rd) {
          // Copy idiom: lw immediately stored by sw. Requiring the store
          // base to differ from the loaded register keeps the store
          // address computable before the pair commits.
          U.K = UOp::FusedLwSw;
          U.Rs2 = N.Rs1;
          U.Aux = Word(N.Imm);
          Cover(Pc);
          Cover(Pc + 4);
          B.Ops.push_back(U);
          Weight += 2;
          Pc += 8;
        } else if (HaveN && N.Op == Opcode::Lw && N.Rd != 0) {
          // Reload burst: two word loads in one dispatch, committed in
          // order so the second base may be the first's destination.
          U.K = UOp::FusedLwLw;
          U.R3 = N.Rd;
          U.Rs2 = N.Rs1;
          U.Aux = Word(N.Imm);
          Cover(Pc);
          Cover(Pc + 4);
          B.Ops.push_back(U);
          Weight += 2;
          Pc += 8;
        } else {
          U.K = UOp::LoadW;
          Cover(Pc);
          B.Ops.push_back(U);
          ++Weight;
          Pc += 4;
        }
      } else if (isa::isLoad(I.Op)) {
        if (I.Rd == 0) {
          // Loads to x0 keep full MMIO/UB semantics; leave them to the
          // stepper.
          Stop = 2;
        } else {
          U.K = UOp::Load;
          Cover(Pc);
          B.Ops.push_back(U);
          ++Weight;
          Pc += 4;
        }
      } else if (isa::isStore(I.Op)) {
        isa::Instr N;
        if (I.Op == Opcode::Sw && Fetch(Pc + 4, N) && N.Op == Opcode::Sw) {
          // Spill burst: two word stores in one dispatch. Stores never
          // change registers, so both addresses are computable — and
          // guarded — before either half commits.
          U.K = UOp::FusedSwSw;
          U.R3 = N.Rs1;
          U.Rd = N.Rs2;
          U.Aux = Word(N.Imm);
          Cover(Pc);
          Cover(Pc + 4);
          B.Ops.push_back(U);
          Weight += 2;
          Pc += 8;
        } else {
          U.K = I.Op == Opcode::Sw ? UOp::StoreW : UOp::Store;
          Cover(Pc);
          B.Ops.push_back(U);
          ++Weight;
          Pc += 4;
        }
      } else if (I.Op == Opcode::Fence) {
        U.K = UOp::Nop; // Single-core platform: fences are no-ops.
        Cover(Pc);
        B.Ops.push_back(U);
        ++Weight;
        Pc += 4;
      } else if (I.Op == Opcode::Ecall || I.Op == Opcode::Ebreak) {
        Stop = 2; // UB; the stepper owns the diagnosis.
      } else if (isa::isImmAlu(I.Op)) {
        U.K = I.Rd ? UOp::AluImm : UOp::Nop;
        Cover(Pc);
        B.Ops.push_back(U);
        ++Weight;
        Pc += 4;
      } else if (I.Op == Opcode::Add && I.Rd != 0) {
        isa::Instr N;
        if (Fetch(Pc + 4, N) && isa::isBranch(N.Op)) {
          // Pointer-bump idiom: register add feeding straight into a
          // branch. Same commit order as FusedAddiBranch — the add
          // writes back first, then the branch reads updated registers.
          U.K = UOp::FusedAddBranch;
          U.Op = N.Op;
          U.R3 = N.Rs1;
          U.Imm = SWord(N.Rs2);
          U.Aux = (Pc + 4) + Word(N.Imm);
          Cover(Pc);
          Cover(Pc + 4);
          B.Ops.push_back(U);
          Weight += 2;
          Stop = 1;
        } else {
          U.K = UOp::Add;
          Cover(Pc);
          B.Ops.push_back(U);
          ++Weight;
          Pc += 4;
        }
      } else {
        assert(isa::isRegAlu(I.Op) && "unhandled opcode in translate");
        UOp K = UOp::AluReg;
        switch (I.Op) {
        case Opcode::Add:
          K = UOp::Add;
          break;
        case Opcode::Sub:
          K = UOp::Sub;
          break;
        case Opcode::And:
          K = UOp::And;
          break;
        case Opcode::Sltu:
          K = UOp::Sltu;
          break;
        case Opcode::Srl:
          K = UOp::Srl;
          break;
        default:
          break;
        }
        U.K = I.Rd ? K : UOp::Nop;
        Cover(Pc);
        B.Ops.push_back(U);
        ++Weight;
        Pc += 4;
      }
    }
    if (Stop == 1)
      Open = false;
    else if (Stop == 2) {
      if (Weight == 0)
        return -1; // Untranslatable head: never build a zero-progress block.
      MicroOp U;
      U.K = UOp::SideExit;
      U.Aux = Pc;
      U.InstrPc = Pc;
      B.Ops.push_back(U);
      Open = false;
    }
  }

  // Self-loop unrolling: a block whose terminator branches straight back
  // to its own head pays the full chain transition on every iteration of
  // what is usually a tight copy or counter loop. Duplicating the body —
  // all copies are identical micro-ops, same pcs — amortizes that cost
  // across MaxBlockWeight instructions. Every terminator but the last
  // becomes its continue twin: taken falls through into the next copy.
  unsigned EntryWeight = Weight;
  if (Weight != 0 && Weight * 2 <= MaxBlockWeight) {
    UOp Cont = UOp::SideExit; // Sentinel: terminator has no continue twin.
    switch (B.Ops.back().K) {
    case UOp::Bne:
      Cont = UOp::BneCont;
      break;
    case UOp::Beq:
      Cont = UOp::BeqCont;
      break;
    case UOp::Branch:
      Cont = UOp::BranchCont;
      break;
    case UOp::FusedAddiBranch:
      Cont = UOp::FusedAddiBranchCont;
      break;
    case UOp::FusedAddBranch:
      Cont = UOp::FusedAddBranchCont;
      break;
    default:
      break;
    }
    if (Cont != UOp::SideExit && B.Ops.back().Aux == HeadPc) {
      unsigned Copies = MaxBlockWeight / Weight;
      std::vector<MicroOp> Body(B.Ops);
      for (unsigned C = 1; C != Copies; ++C) {
        B.Ops.back().K = Cont;
        B.Ops.insert(B.Ops.end(), Body.begin(), Body.end());
      }
      Weight *= Copies;
    }
  }

  B.Count = Weight;
  B.EntryCount = EntryWeight;
  std::sort(B.Words.begin(), B.Words.end());
  B.Words.erase(std::unique(B.Words.begin(), B.Words.end()), B.Words.end());

  int32_t Idx = int32_t(Blocks.size());
  for (uint32_t W : B.Words) {
    ++CoverCount[W];
    CoverBits[W >> 6] |= uint64_t(1) << (W & 63);
  }
  IndexByWord[size_t(HeadPc >> 2)] = Idx;
  metrics::record(metrics::Id::SimBlockWeight, B.Count);
  Blocks.push_back(std::move(B));
  ++Stats.BlocksTranslated;
  return Idx;
}

uint64_t BlockEngine::execTraces(size_t Bi, uint64_t Budget) {
  // Threaded dispatch: on GCC/Clang every handler ends in its own
  // computed goto, giving the branch predictor one indirect-branch site
  // per micro-op kind instead of a single shared switch jump; elsewhere a
  // central switch feeds the same handler labels. Retire counts
  // accumulate in locals and flush to the machine and the stats once per
  // call, not once per pass.
  Word *R = M.Regs; // x0 stays 0: translation never emits an x0 write.
  uint64_t Done = 0; // Retired across completed passes.
  uint64_t Ret = 0;    // Retired in the current pass.
  uint64_t RetCap = 0; // Budget ceiling for the pass: continue twins
                       // stop an unrolled self-loop before the next
                       // body copy would overshoot the chunk budget.
  Word Addr = 0;
  Word NextPc = 0;
  Word ExitPc = 0;
  // Side-exit classification: most exit sites are memory-guard misses
  // (MMIO beyond the inline path, misaligned, unmapped), so that is the
  // default; the self-kill and untranslated paths override it just
  // before jumping. Set at most once per call — side_exit returns.
  enum : uint8_t { ExUntranslated, ExMemGuard, ExKilled };
  uint8_t ExitReason = ExMemGuard;
  int32_t *LinkSlot = nullptr;
  bool UseJalrCache = false;
  Block *B = nullptr;
  const MicroOp *Op = nullptr;
  const MicroOp *U = nullptr;

#if defined(__GNUC__) || defined(__clang__)
  // Must match the UOp enumerator order exactly.
  static const void *const Tab[] = {
      &&L_Nop,          &&L_LoadConst, &&L_Addi,   &&L_AluImm,
      &&L_AluReg,       &&L_Load,      &&L_Store,  &&L_FusedLwSw,
      &&L_FusedAddiBranch, &&L_Branch, &&L_Jal,    &&L_Jalr,
      &&L_SideExit,     &&L_LoadW,     &&L_StoreW, &&L_Add,
      &&L_Sub,          &&L_And,       &&L_Sltu,   &&L_Srl,
      &&L_Bne,          &&L_Beq,       &&L_FusedAddBranch,
      &&L_BneCont,      &&L_BeqCont,   &&L_BranchCont,
      &&L_FusedAddiBranchCont, &&L_FusedAddBranchCont,
      &&L_FusedSwSw,    &&L_FusedAddiAddi, &&L_FusedLwLw};
#define B2_DISPATCH() goto *Tab[unsigned((U = Op++)->K)]
#else
#define B2_DISPATCH() goto dispatch
#endif

enter_block:
  B = &Blocks[Bi];
  CurBlock = int32_t(Bi);
  CurKilled = false;
  Ret = 0;
  RetCap = Budget - Done;
  UseJalrCache = false;
  Op = B->Ops.data();
  B2_DISPATCH();

#if !defined(__GNUC__) && !defined(__clang__)
dispatch:
  U = Op++;
  switch (U->K) {
  case UOp::Nop:
    goto L_Nop;
  case UOp::LoadConst:
    goto L_LoadConst;
  case UOp::Addi:
    goto L_Addi;
  case UOp::AluImm:
    goto L_AluImm;
  case UOp::AluReg:
    goto L_AluReg;
  case UOp::Load:
    goto L_Load;
  case UOp::Store:
    goto L_Store;
  case UOp::FusedLwSw:
    goto L_FusedLwSw;
  case UOp::FusedAddiBranch:
    goto L_FusedAddiBranch;
  case UOp::Branch:
    goto L_Branch;
  case UOp::Jal:
    goto L_Jal;
  case UOp::Jalr:
    goto L_Jalr;
  case UOp::SideExit:
    goto L_SideExit;
  case UOp::LoadW:
    goto L_LoadW;
  case UOp::StoreW:
    goto L_StoreW;
  case UOp::Add:
    goto L_Add;
  case UOp::Sub:
    goto L_Sub;
  case UOp::And:
    goto L_And;
  case UOp::Sltu:
    goto L_Sltu;
  case UOp::Srl:
    goto L_Srl;
  case UOp::Bne:
    goto L_Bne;
  case UOp::Beq:
    goto L_Beq;
  case UOp::FusedAddBranch:
    goto L_FusedAddBranch;
  case UOp::BneCont:
    goto L_BneCont;
  case UOp::BeqCont:
    goto L_BeqCont;
  case UOp::BranchCont:
    goto L_BranchCont;
  case UOp::FusedAddiBranchCont:
    goto L_FusedAddiBranchCont;
  case UOp::FusedAddBranchCont:
    goto L_FusedAddBranchCont;
  case UOp::FusedSwSw:
    goto L_FusedSwSw;
  case UOp::FusedAddiAddi:
    goto L_FusedAddiAddi;
  case UOp::FusedLwLw:
    goto L_FusedLwLw;
  }
  assert(false && "unhandled micro-op kind");
  ExitPc = U->InstrPc;
  ExitReason = ExUntranslated;
  goto side_exit;
#endif

L_Nop:
  ++Ret;
  B2_DISPATCH();

L_LoadConst:
  R[U->Rd] = U->Aux;
  ++Ret;
  B2_DISPATCH();

L_Addi:
  R[U->Rd] = R[U->Rs1] + Word(U->Imm);
  ++Ret;
  B2_DISPATCH();

L_AluImm:
  R[U->Rd] = exec::alu(U->Op, R[U->Rs1], Word(U->Imm));
  ++Ret;
  B2_DISPATCH();

L_AluReg:
  R[U->Rd] = exec::alu(U->Op, R[U->Rs1], R[U->Rs2]);
  ++Ret;
  B2_DISPATCH();

  // Specialized register-ALU kinds: same semantics as exec::alu for the
  // matching opcode, minus the opcode switch. None carries a fault hook.
L_Add:
  R[U->Rd] = R[U->Rs1] + R[U->Rs2];
  ++Ret;
  B2_DISPATCH();

L_Sub:
  R[U->Rd] = R[U->Rs1] - R[U->Rs2];
  ++Ret;
  B2_DISPATCH();

L_And:
  R[U->Rd] = R[U->Rs1] & R[U->Rs2];
  ++Ret;
  B2_DISPATCH();

L_Sltu:
  R[U->Rd] = R[U->Rs1] < R[U->Rs2] ? 1 : 0;
  ++Ret;
  B2_DISPATCH();

L_Srl:
  R[U->Rd] = shiftRL(R[U->Rs1], R[U->Rs2]);
  ++Ret;
  B2_DISPATCH();

L_LoadW:
  Addr = R[U->Rs1] + Word(U->Imm);
  if (Addr <= RamWordMax && (Addr & 3) == 0) {
    R[U->Rd] = M.loadWordFast(Addr);
    ++Ret;
    B2_DISPATCH();
  }
  goto load_mmio;

L_Load: {
  Addr = R[U->Rs1] + Word(U->Imm);
  unsigned Size = isa::accessSize(U->Op);
  if (M.inRam(Addr, Size) && isAligned(Addr, Size)) {
    R[U->Rd] = exec::extendLoad(U->Op, M.readRam(Addr, Size));
    ++Ret;
    B2_DISPATCH();
  }
}
load_mmio:
  if (U->Op == isa::Opcode::Lw && (Addr & 3) == 0 && Dev.isMmio(Addr, 4)) {
    // Exactly the nonmem_load success path: word-sized, aligned,
    // MMIO-mapped, recorded in the I/O trace.
    Word V = Dev.load(Addr, 4);
    M.appendEvent(MmioEvent{/*IsStore=*/false, Addr, V, 4});
    R[U->Rd] = V;
    ++Ret;
    ++Stats.MmioInline;
    B2_DISPATCH();
  }
  // Misaligned, unmapped, or sub-word MMIO: the stepper reproduces the
  // precise UB verdict. Nothing has been mutated yet.
  ExitPc = U->InstrPc;
  goto side_exit;

L_StoreW:
  Addr = R[U->Rs1] + Word(U->Imm);
  if (Addr <= RamWordMax && (Addr & 3) == 0) {
    // Inline aligned-word store: the invalidation discipline runs via the
    // shared Machine helper (seeded store faults included). The trace
    // engine is the machine's invalidation listener, so when the
    // discipline ran to completion the cover-count filter decides whether
    // any superblock needs killing, without a virtual round-trip through
    // storeRam.
    if (M.storeWordNoNotify(Addr, R[U->Rs2]) &&
        (CoverBits[size_t(Addr >> 2) >> 6] &
         (uint64_t(1) << (size_t(Addr >> 2) & 63))) != 0) {
      onInvalidate(size_t(Addr >> 2), size_t(Addr >> 2));
      ++Ret;
      if (CurKilled) {
        // The store invalidated this very trace: commit the completed
        // instruction and hand the stale tail to the stepper.
        ExitPc = U->InstrPc + 4;
        ExitReason = ExKilled;
        goto side_exit;
      }
      B2_DISPATCH();
    }
    ++Ret;
    B2_DISPATCH();
  }
  goto store_mmio;

L_Store: {
  Addr = R[U->Rs1] + Word(U->Imm);
  unsigned Size = isa::accessSize(U->Op);
  if (M.inRam(Addr, Size) && isAligned(Addr, Size)) {
    M.storeRam(Addr, Size, R[U->Rs2]);
    ++Ret;
    if (CurKilled) {
      // The store invalidated this very trace: commit the completed
      // instruction and hand the stale tail to the stepper.
      ExitPc = U->InstrPc + 4;
      ExitReason = ExKilled;
      goto side_exit;
    }
    B2_DISPATCH();
  }
}
store_mmio:
  if (U->Op == isa::Opcode::Sw && (Addr & 3) == 0 && Dev.isMmio(Addr, 4)) {
    Word V = R[U->Rs2];
    Dev.store(Addr, 4, V);
    M.appendEvent(MmioEvent{/*IsStore=*/true, Addr, V, 4});
    ++Ret;
    ++Stats.MmioInline;
    B2_DISPATCH();
  }
  ExitPc = U->InstrPc;
  goto side_exit;

L_FusedAddiAddi:
  R[U->Rd] = R[U->Rs1] + Word(U->Imm);
  R[U->R3] = R[U->Rs2] + U->Aux;
  Ret += 2;
  Stats.FusedRetired += 2;
  B2_DISPATCH();

L_FusedSwSw: {
  Addr = R[U->Rs1] + Word(U->Imm);
  Word Addr2 = R[U->R3] + U->Aux;
  if (Addr > RamWordMax || (Addr & 3) != 0 || Addr2 > RamWordMax ||
      (Addr2 & 3) != 0) {
    // Both guards checked before either half commits; MMIO or UB pairs
    // replay from the first store in the stepper.
    ExitPc = U->InstrPc;
    goto side_exit;
  }
  if (M.storeWordNoNotify(Addr, R[U->Rs2]) &&
      (CoverBits[size_t(Addr >> 2) >> 6] &
       (uint64_t(1) << (size_t(Addr >> 2) & 63))) != 0) {
    onInvalidate(size_t(Addr >> 2), size_t(Addr >> 2));
    if (CurKilled) {
      // The first store killed this trace; the second re-runs cold.
      ++Ret;
      ++Stats.FusedRetired;
      ExitPc = U->InstrPc + 4;
      ExitReason = ExKilled;
      goto side_exit;
    }
  }
  Ret += 2;
  Stats.FusedRetired += 2;
  if (M.storeWordNoNotify(Addr2, R[U->Rd]) &&
      (CoverBits[size_t(Addr2 >> 2) >> 6] &
       (uint64_t(1) << (size_t(Addr2 >> 2) & 63))) != 0) {
    onInvalidate(size_t(Addr2 >> 2), size_t(Addr2 >> 2));
    if (CurKilled) {
      ExitPc = U->InstrPc + 8;
      ExitReason = ExKilled;
      goto side_exit;
    }
  }
  B2_DISPATCH();
}

L_FusedLwSw: {
  Addr = R[U->Rs1] + Word(U->Imm);
  Word StoreAddr = R[U->Rs2] + U->Aux;
  if (Addr > RamWordMax || (Addr & 3) != 0 || StoreAddr > RamWordMax ||
      (StoreAddr & 3) != 0) {
    // Both guards checked before either half commits; the stepper re-runs
    // the (idempotent) load and owns the store\'s verdict.
    ExitPc = U->InstrPc;
    goto side_exit;
  }
  Word V = M.loadWordFast(Addr);
  R[U->Rd] = V;
  Ret += 2;
  Stats.FusedRetired += 2;
  if (M.storeWordNoNotify(StoreAddr, V) &&
      (CoverBits[size_t(StoreAddr >> 2) >> 6] &
       (uint64_t(1) << (size_t(StoreAddr >> 2) & 63))) != 0) {
    onInvalidate(size_t(StoreAddr >> 2), size_t(StoreAddr >> 2));
    if (CurKilled) {
      ExitPc = U->InstrPc + 8;
      ExitReason = ExKilled;
      goto side_exit;
    }
  }
  B2_DISPATCH();
}

L_FusedLwLw: {
  Addr = R[U->Rs1] + Word(U->Imm);
  if (Addr > RamWordMax || (Addr & 3) != 0) {
    // Nothing committed; the stepper re-runs the pair from the top.
    ExitPc = U->InstrPc;
    goto side_exit;
  }
  R[U->Rd] = M.loadWordFast(Addr);
  Addr = R[U->Rs2] + U->Aux;
  if (Addr > RamWordMax || (Addr & 3) != 0) {
    // The first half fully retired and loads are idempotent, so the
    // stepper resumes cleanly at the second lw.
    ++Ret;
    ++Stats.FusedRetired;
    ExitPc = U->InstrPc + 4;
    goto side_exit;
  }
  R[U->R3] = M.loadWordFast(Addr);
  Ret += 2;
  Stats.FusedRetired += 2;
  B2_DISPATCH();
}

L_FusedAddiBranch: {
  Word Pre = R[U->Rd];
  R[U->Rd] = R[U->Rs1] + Word(U->Imm);
  Word A = R[U->Rs2];
  Word Bv = R[U->R3];
  if (fi::on(fi::Fault::SimBlockFusedClobber)) {
    // Seeded bug: the fused op latches its branch operands before the
    // addi result is written back.
    if (U->Rs2 == U->Rd)
      A = Pre;
    if (U->R3 == U->Rd)
      Bv = Pre;
  }
  Ret += 2;
  Stats.FusedRetired += 2;
  if (exec::branchTaken(U->Op, A, Bv)) {
    NextPc = U->Aux;
    LinkSlot = &B->LinkTaken;
  } else {
    NextPc = U->InstrPc + 8;
    LinkSlot = &B->LinkFall;
  }
  goto chain;
}

L_FusedAddBranch: {
  // Register-register twin of FusedAddiBranch; the second branch operand
  // register rides in Imm. The same seeded clobber fault applies.
  Word Pre = R[U->Rd];
  R[U->Rd] = R[U->Rs1] + R[U->Rs2];
  Word A = R[U->R3];
  Word Bv = R[uint8_t(U->Imm)];
  if (fi::on(fi::Fault::SimBlockFusedClobber)) {
    if (U->R3 == U->Rd)
      A = Pre;
    if (uint8_t(U->Imm) == U->Rd)
      Bv = Pre;
  }
  Ret += 2;
  Stats.FusedRetired += 2;
  if (exec::branchTaken(U->Op, A, Bv)) {
    NextPc = U->Aux;
    LinkSlot = &B->LinkTaken;
  } else {
    NextPc = U->InstrPc + 8;
    LinkSlot = &B->LinkFall;
  }
  goto chain;
}

L_Branch:
  ++Ret;
  if (exec::branchTaken(U->Op, R[U->Rs1], R[U->Rs2])) {
    NextPc = U->Aux;
    LinkSlot = &B->LinkTaken;
  } else {
    NextPc = U->InstrPc + 4;
    LinkSlot = &B->LinkFall;
  }
  goto chain;

  // Specialized branch terminators (bne/beq carry no fault hooks).
L_Bne:
  ++Ret;
  if (R[U->Rs1] != R[U->Rs2]) {
    NextPc = U->Aux;
    LinkSlot = &B->LinkTaken;
  } else {
    NextPc = U->InstrPc + 4;
    LinkSlot = &B->LinkFall;
  }
  goto chain;

L_Beq:
  ++Ret;
  if (R[U->Rs1] == R[U->Rs2]) {
    NextPc = U->Aux;
    LinkSlot = &B->LinkTaken;
  } else {
    NextPc = U->InstrPc + 4;
    LinkSlot = &B->LinkFall;
  }
  goto chain;

  // Continue twins of the terminators above, for unrolled self-loops:
  // taken continues into the next body copy without a chain transition.
L_BneCont:
  ++Ret;
  if (R[U->Rs1] != R[U->Rs2]) {
    if (Ret + B->EntryCount <= RetCap)
      B2_DISPATCH();
    NextPc = U->Aux; // == HeadPc: re-enter next chunk, budget allowing.
    LinkSlot = &B->LinkTaken;
    goto chain;
  }
  NextPc = U->InstrPc + 4;
  LinkSlot = &B->LinkFall;
  goto chain;

L_BeqCont:
  ++Ret;
  if (R[U->Rs1] == R[U->Rs2]) {
    if (Ret + B->EntryCount <= RetCap)
      B2_DISPATCH();
    NextPc = U->Aux;
    LinkSlot = &B->LinkTaken;
    goto chain;
  }
  NextPc = U->InstrPc + 4;
  LinkSlot = &B->LinkFall;
  goto chain;

L_BranchCont:
  ++Ret;
  if (exec::branchTaken(U->Op, R[U->Rs1], R[U->Rs2])) {
    if (Ret + B->EntryCount <= RetCap)
      B2_DISPATCH();
    NextPc = U->Aux;
    LinkSlot = &B->LinkTaken;
    goto chain;
  }
  NextPc = U->InstrPc + 4;
  LinkSlot = &B->LinkFall;
  goto chain;

L_FusedAddiBranchCont: {
  Word Pre = R[U->Rd];
  R[U->Rd] = R[U->Rs1] + Word(U->Imm);
  Word A = R[U->Rs2];
  Word Bv = R[U->R3];
  if (fi::on(fi::Fault::SimBlockFusedClobber)) {
    if (U->Rs2 == U->Rd)
      A = Pre;
    if (U->R3 == U->Rd)
      Bv = Pre;
  }
  Ret += 2;
  Stats.FusedRetired += 2;
  if (exec::branchTaken(U->Op, A, Bv)) {
    if (Ret + B->EntryCount <= RetCap)
      B2_DISPATCH();
    NextPc = U->Aux;
    LinkSlot = &B->LinkTaken;
    goto chain;
  }
  NextPc = U->InstrPc + 8;
  LinkSlot = &B->LinkFall;
  goto chain;
}

L_FusedAddBranchCont: {
  Word Pre = R[U->Rd];
  R[U->Rd] = R[U->Rs1] + R[U->Rs2];
  Word A = R[U->R3];
  Word Bv = R[uint8_t(U->Imm)];
  if (fi::on(fi::Fault::SimBlockFusedClobber)) {
    if (U->R3 == U->Rd)
      A = Pre;
    if (uint8_t(U->Imm) == U->Rd)
      Bv = Pre;
  }
  Ret += 2;
  Stats.FusedRetired += 2;
  if (exec::branchTaken(U->Op, A, Bv)) {
    if (Ret + B->EntryCount <= RetCap)
      B2_DISPATCH();
    NextPc = U->Aux;
    LinkSlot = &B->LinkTaken;
    goto chain;
  }
  NextPc = U->InstrPc + 8;
  LinkSlot = &B->LinkFall;
  goto chain;
}

L_Jal:
  if (U->Rd)
    R[U->Rd] = U->InstrPc + 4;
  ++Ret;
  NextPc = U->Aux;
  LinkSlot = &B->LinkTaken;
  goto chain;

L_Jalr:
  NextPc = (R[U->Rs1] + Word(U->Imm)) & ~Word(1);
  if (U->Rd)
    R[U->Rd] = U->InstrPc + 4;
  ++Ret;
  UseJalrCache = true;
  goto chain;

L_SideExit:
  ExitPc = U->Aux;
  ExitReason = ExUntranslated;
  goto side_exit;

chain:
  Done += Ret;
  {
    // Block completed: chain straight into the successor trace when one
    // exists and fits the remaining budget.
    int32_t Ni;
    if (UseJalrCache) {
      if (B->JalrCachePc == NextPc && B->JalrCacheBlock >= 0 &&
          size_t(B->JalrCacheBlock) < Blocks.size() &&
          Blocks[size_t(B->JalrCacheBlock)].Valid &&
          Blocks[size_t(B->JalrCacheBlock)].HeadPc == NextPc) {
        Ni = B->JalrCacheBlock;
        ++Stats.LinkHits;
      } else {
        Ni = blockAt(NextPc);
        B->JalrCachePc = NextPc;
        B->JalrCacheBlock = Ni;
        ++Stats.LinkMisses;
      }
    } else {
      Ni = *LinkSlot;
      if (Ni >= 0 &&
          (size_t(Ni) >= Blocks.size() || !Blocks[size_t(Ni)].Valid ||
           Blocks[size_t(Ni)].HeadPc != NextPc))
        Ni = -1;
      if (Ni < 0) {
        Ni = blockAt(NextPc);
        *LinkSlot = Ni;
        ++Stats.LinkMisses;
      } else {
        ++Stats.LinkHits;
      }
    }
    if (Ni >= 0 && uint64_t(Blocks[size_t(Ni)].EntryCount) <= Budget - Done) {
      Bi = size_t(Ni);
      goto enter_block;
    }
    M.Pc = NextPc;
    if (Ni < 0)
      noteJumpTarget(NextPc); // Block exits are jump arrivals too.
  }
  CurBlock = -1;
  M.Retired += Done;
  Stats.TraceInstrs += Done;
  return Done;

side_exit:
  Done += Ret;
  ++Stats.SideExits;
  if (ExitReason == ExKilled)
    ++Stats.SideExitKilled;
  else if (ExitReason == ExMemGuard)
    ++Stats.SideExitMemGuard;
  else
    ++Stats.SideExitUntranslated;
  CurBlock = -1;
  M.Pc = ExitPc;
  M.Retired += Done;
  Stats.TraceInstrs += Done;
  return Done;
#undef B2_DISPATCH
}

uint64_t BlockEngine::runBlocks(uint64_t MaxSteps) {
  uint64_t Done = 0;
  while (Done < MaxSteps) {
    if (M.hasUb())
      break;
    Word Pc = M.Pc;
    int32_t Bi = blockAt(Pc);
    if (Bi < 0)
      Bi = maybeTranslate(Pc);
    if (Bi >= 0 && uint64_t(Blocks[size_t(Bi)].EntryCount) <= MaxSteps - Done) {
      uint64_t T = execTraces(size_t(Bi), MaxSteps - Done);
      Done += T;
      if (T > 0)
        continue;
      // A guard at the block's first instruction refused the trace (zero
      // progress): interpret one instruction to move past it.
    }
    Word Prev = Pc;
    if (!riscv::step(M, Dev))
      break;
    ++Done;
    ++Stats.ColdInstrs;
    if (M.Pc != Prev + 4)
      noteJumpTarget(M.Pc);
  }
  return Done;
}

namespace {

/// Differential replay: the shadow machine re-executes the primary's
/// instruction stream through the reference stepper, with MMIO loads
/// served from the primary's recorded I/O trace (devices are functions of
/// the access sequence they observe, so replaying recorded values is the
/// only way to show both engines the same external world). Stores are
/// verified against the recorded events instead of reaching the device a
/// second time.
class ReplayDevice final : public MmioDevice {
public:
  ReplayDevice(const MmioDevice &Real, const MmioTrace &Trace, size_t Cur)
      : Real(Real), Trace(Trace), Cur(Cur) {}

  bool isMmio(Word Addr, unsigned Size) const override {
    return Real.isMmio(Addr, Size);
  }

  Word load(Word Addr, unsigned Size) override {
    if (Cur < Trace.size() && !Trace[Cur].IsStore && Trace[Cur].Addr == Addr &&
        Trace[Cur].Size == Size)
      return Trace[Cur++].Value;
    Desynced = true;
    return 0;
  }

  void store(Word Addr, unsigned Size, Word Value) override {
    if (Cur < Trace.size() && Trace[Cur].IsStore && Trace[Cur].Addr == Addr &&
        Trace[Cur].Size == Size && Trace[Cur].Value == Value) {
      ++Cur;
      return;
    }
    Desynced = true;
  }

  bool Desynced = false;

private:
  const MmioDevice &Real;
  const MmioTrace &Trace;
  size_t Cur;
};

} // namespace

void BlockEngine::syncShadow() {
  if (!Shadow)
    Shadow = std::make_unique<Machine>(M.ramSize());
  Shadow->restore(M.snapshot());
  ShadowStale = false;
}

std::string BlockEngine::compareWithShadow(size_t TraceStart, bool Desynced) {
  Machine &S = *Shadow;
  if (M.Retired != S.Retired)
    return "retired-instruction counts diverged: block engine " +
           std::to_string(M.Retired) + ", reference " +
           std::to_string(S.Retired);
  if (M.Pc != S.Pc)
    return "pc diverged: block engine " + hex32(M.Pc) + ", reference " +
           hex32(S.Pc);
  for (unsigned Rn = 0; Rn != 32; ++Rn)
    if (M.Regs[Rn] != S.Regs[Rn])
      return "x" + std::to_string(Rn) + " diverged: block engine " +
             hex32(M.Regs[Rn]) + ", reference " + hex32(S.Regs[Rn]);
  if (M.Ub != S.Ub)
    return std::string("UB status diverged: block engine ") +
           ubKindName(M.Ub) + ", reference " + ubKindName(S.Ub);
  if (M.UbMessage != S.UbMessage)
    return "UB detail diverged: block engine \"" + M.UbMessage +
           "\", reference \"" + S.UbMessage + "\"";
  if (Desynced || M.Trace.size() != S.Trace.size())
    return "MMIO event streams diverged";
  for (size_t I = TraceStart; I < M.Trace.size(); ++I)
    if (!(M.Trace[I] == S.Trace[I]))
      return "MMIO event " + std::to_string(I) + " diverged: block engine " +
             toString(M.Trace[I]) + ", reference " + toString(S.Trace[I]);
  if (M.Ram != S.Ram)
    return "RAM contents diverged";
  if (M.XBits != S.XBits)
    return "XAddrs diverged";
  return {};
}

uint64_t BlockEngine::run(uint64_t MaxSteps) {
  if (Mode == ExecMode::Reference) {
    uint64_t N = riscv::run(M, Dev, MaxSteps);
    publishMetrics();
    return N;
  }
  if (Mode == ExecMode::Block) {
    uint64_t N = runBlocks(MaxSteps);
    publishMetrics();
    return N;
  }

  // Differential: run the block engine, then replay the same instruction
  // count through the reference stepper on the shadow and demand an
  // exact architectural match.
  if (ShadowStale)
    syncShadow();
  size_t TraceStart = M.trace().size();
  uint64_t N = runBlocks(MaxSteps);
  if (!DiffDead) {
    ReplayDevice RD(Dev, M.trace(), TraceStart);
    riscv::run(*Shadow, RD, N);
    if (M.hasUb() && !Shadow->hasUb())
      riscv::step(*Shadow, RD); // The primary's final, faulting step.
    std::string D = compareWithShadow(TraceStart, RD.Desynced);
    if (!D.empty()) {
      ++DivergenceCount;
      DivergenceMsg = D;
      DiffDead = true; // Sticky: preserve the first divergence's detail.
    }
  }
  publishMetrics();
  return N;
}
