//===- riscv/Machine.cpp - Software-oriented RISC-V machine state ----------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "riscv/Machine.h"

#include "support/Format.h"
#include "support/Metrics.h"
#include "verify/FaultInjection.h"

using namespace b2;
using namespace b2::riscv;

MmioDevice::~MmioDevice() = default;

std::string b2::riscv::toString(const MmioEvent &E) {
  return std::string("(\"") + (E.IsStore ? "st" : "ld") + "\", " +
         support::hex32(E.Addr) + ", " + support::hex32(E.Value) + ")";
}

std::string b2::riscv::toString(const MmioTrace &T) {
  std::string Out;
  for (const MmioEvent &E : T) {
    Out += toString(E);
    Out += "\n";
  }
  return Out;
}

const char *b2::riscv::ubKindName(UbKind K) {
  switch (K) {
  case UbKind::None:
    return "none";
  case UbKind::FetchUnmapped:
    return "fetch-unmapped";
  case UbKind::FetchMisaligned:
    return "fetch-misaligned";
  case UbKind::FetchNotExecutable:
    return "fetch-not-executable";
  case UbKind::InvalidInstruction:
    return "invalid-instruction";
  case UbKind::LoadUnmapped:
    return "load-unmapped";
  case UbKind::StoreUnmapped:
    return "store-unmapped";
  case UbKind::LoadMisaligned:
    return "load-misaligned";
  case UbKind::StoreMisaligned:
    return "store-misaligned";
  case UbKind::MmioBadSize:
    return "mmio-bad-size";
  case UbKind::EnvironmentCall:
    return "environment-call";
  }
  return "unknown";
}

Machine::Machine(Word RamSize)
    : Ram(RamSize, 0), XBits((size_t(RamSize) + 63) / 64, ~uint64_t(0)),
      DecodeCache(RamSize / 4), DecodeValid((size_t(RamSize) / 4 + 63) / 64, 0) {
  assert(RamSize > 0 && RamSize % 4 == 0 && "RAM size must be a multiple of 4");
}

Word Machine::readRam(Word Addr, unsigned Size) const {
  assert(inRam(Addr, Size) && "RAM read out of range");
  Word V = 0;
  for (unsigned I = 0; I != Size; ++I)
    V |= Word(Ram[Addr + I]) << (8 * I);
  return V;
}

void Machine::writeRam(Word Addr, unsigned Size, Word V) {
  assert(inRam(Addr, Size) && "RAM write out of range");
  for (unsigned I = 0; I != Size; ++I)
    Ram[Addr + I] = uint8_t((V >> (8 * I)) & 0xFF);
  RamCow.markDirtyRange(Addr, size_t(Addr) + Size);
  invalidateDecode(Addr, Size);
}

void Machine::loadImage(Word Addr, const std::vector<uint8_t> &Image) {
  assert(inRam(Addr, Word(Image.size())) && "image does not fit in RAM");
  for (size_t I = 0; I != Image.size(); ++I)
    Ram[Addr + I] = Image[I];
  RamCow.markDirtyRange(Addr, size_t(Addr) + Image.size());
  invalidateDecode(Addr, Word(Image.size()));
}

void Machine::storeRam(Word Addr, unsigned Size, Word V) {
  assert(inRam(Addr, Size) && "RAM store out of range");
  if (Size == 4 && (Addr & 3) == 0) {
    // Superblocks may cover words that never had a decode line, so the
    // listener fires on the removal set itself, not on dropped lines.
    if (storeWordNoNotify(Addr, V) && Listener)
      Listener->onInvalidate(Addr >> 2, Addr >> 2);
    return;
  }
  for (unsigned I = 0; I != Size; ++I)
    Ram[Addr + I] = uint8_t((V >> (8 * I)) & 0xFF);
  RamCow.markDirtyRange(Addr, size_t(Addr) + Size);
  if (fi::on(fi::Fault::SimStoreKeepsXAddrs))
    return; // Seeded bug: the section-5.6 discipline is forgotten.
  removeXAddrs(Addr, Size);
}

bool Machine::xBitsAllSet(Word Addr, Word Len) const {
  size_t First = Addr >> 6;
  size_t Last = (size_t(Addr) + Len - 1) >> 6;
  uint64_t FirstMask = ~uint64_t(0) << (Addr & 63);
  uint64_t LastMask =
      ~uint64_t(0) >> (63 - ((size_t(Addr) + Len - 1) & 63));
  if (First == Last) {
    uint64_t Mask = FirstMask & LastMask;
    return (XBits[First] & Mask) == Mask;
  }
  if ((XBits[First] & FirstMask) != FirstMask)
    return false;
  for (size_t B = First + 1; B != Last; ++B)
    if (XBits[B] != ~uint64_t(0))
      return false;
  return (XBits[Last] & LastMask) == LastMask;
}

void Machine::removeXAddrs(Word Addr, unsigned Size) {
  // Common case: the whole range is in RAM (no 2^32 wrap-around, no bytes
  // past the end), so the bits clear with at most two block masks and one
  // ranged cache invalidation.
  if (Size != 0 && inRam(Addr, Size)) {
    size_t First = Addr >> 6;
    size_t Last = (size_t(Addr) + Size - 1) >> 6;
    uint64_t FirstMask = ~uint64_t(0) << (Addr & 63);
    uint64_t LastMask = ~uint64_t(0) >> (63 - ((size_t(Addr) + Size - 1) & 63));
    if (First == Last) {
      XBits[First] &= ~(FirstMask & LastMask);
    } else {
      XBits[First] &= ~FirstMask;
      for (size_t B = First + 1; B != Last; ++B)
        XBits[B] = 0;
      XBits[Last] &= ~LastMask;
    }
    invalidateDecode(Addr, Size);
    return;
  }
  // Rare case: per-byte semantics with address wrap-around (Addr + I
  // computed in 32-bit arithmetic), matching the original formulation;
  // bytes outside RAM are ignored.
  for (unsigned I = 0; I != Size; ++I) {
    Word A = Addr + Word(I);
    if (!inRam(A, 1))
      continue;
    XBits[A >> 6] &= ~(uint64_t(1) << (A & 63));
    invalidateDecode(A, 1);
  }
}

void Machine::invalidateDecode(Word Addr, Word Len) {
  if (Len == 0)
    return;
  if (fi::on(fi::Fault::SimDecodeCacheNoInvalidate))
    return; // Seeded bug: removal without line invalidation.
  size_t FirstW = Addr >> 2;
  size_t LastW = (size_t(Addr) + Len - 1) >> 2;
  for (size_t W = FirstW; W <= LastW && W < DecodeCache.size(); ++W) {
    uint64_t Bit = uint64_t(1) << (W & 63);
    if (DecodeValid[W >> 6] & Bit) {
      DecodeValid[W >> 6] &= ~Bit;
      ++CacheStats.Invalidations;
    }
  }
  // Superblocks may cover words that never had a decode line, so the
  // listener fires on the removal set itself, not on dropped lines.
  if (Listener && FirstW < DecodeCache.size())
    Listener->onInvalidate(
        FirstW, LastW < DecodeCache.size() ? LastW : DecodeCache.size() - 1);
}

void Machine::markUb(UbKind K, std::string Detail) {
  if (Ub != UbKind::None)
    return;
  Ub = K;
  UbMessage = std::move(Detail);
}

Machine::Snapshot Machine::snapshot() {
  Snapshot S;
  std::copy(std::begin(Regs), std::end(Regs), std::begin(S.Regs));
  S.Pc = Pc;
  S.Ram = RamCow.snapshot(Ram);
  S.XBits = XBits;
  S.DecodeCache = DecodeCow.snapshot(DecodeCache);
  S.DecodeValid = DecodeValid;
  S.CacheStats = CacheStats;
  S.Ub = Ub;
  S.UbMessage = UbMessage;
  S.Trace = TraceChain.snapshot(Trace);
  S.Retired = Retired;
  return S;
}

void Machine::publishMetrics() {
  metrics::add(metrics::Id::SimDecodeHits, CacheStats.Hits - PubCacheStats.Hits);
  metrics::add(metrics::Id::SimDecodeMisses,
               CacheStats.Misses - PubCacheStats.Misses);
  metrics::add(metrics::Id::SimDecodeInvalidations,
               CacheStats.Invalidations - PubCacheStats.Invalidations);
  PubCacheStats = CacheStats;
}

void Machine::restore(const Snapshot &S) {
  // Publish the pending counter deltas first: CacheStats is about to be
  // rewound below the publication baseline, and published totals must
  // stay monotone (no loss, no double count) across restores.
  publishMetrics();
  std::copy(std::begin(S.Regs), std::end(S.Regs), std::begin(Regs));
  Pc = S.Pc;
  RamCow.restore(Ram, S.Ram);
  XBits = S.XBits;
  DecodeCow.restore(DecodeCache, S.DecodeCache);
  DecodeValid = S.DecodeValid;
  CacheStats = S.CacheStats;
  PubCacheStats = CacheStats; // Rebase: the restored values are already
                              // accounted for by their original run.
  Ub = S.Ub;
  UbMessage = S.UbMessage;
  TraceChain.restore(Trace, S.Trace);
  Retired = S.Retired;
  // Restore replaces the whole architectural state; derived structures
  // (translated superblocks, differential shadows) must resynchronize.
  if (Listener)
    Listener->onRestore();
}
