//===- riscv/Machine.cpp - Software-oriented RISC-V machine state ----------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "riscv/Machine.h"

#include "support/Format.h"

using namespace b2;
using namespace b2::riscv;

MmioDevice::~MmioDevice() = default;

std::string b2::riscv::toString(const MmioEvent &E) {
  return std::string("(\"") + (E.IsStore ? "st" : "ld") + "\", " +
         support::hex32(E.Addr) + ", " + support::hex32(E.Value) + ")";
}

std::string b2::riscv::toString(const MmioTrace &T) {
  std::string Out;
  for (const MmioEvent &E : T) {
    Out += toString(E);
    Out += "\n";
  }
  return Out;
}

const char *b2::riscv::ubKindName(UbKind K) {
  switch (K) {
  case UbKind::None:
    return "none";
  case UbKind::FetchUnmapped:
    return "fetch-unmapped";
  case UbKind::FetchMisaligned:
    return "fetch-misaligned";
  case UbKind::FetchNotExecutable:
    return "fetch-not-executable";
  case UbKind::InvalidInstruction:
    return "invalid-instruction";
  case UbKind::LoadUnmapped:
    return "load-unmapped";
  case UbKind::StoreUnmapped:
    return "store-unmapped";
  case UbKind::LoadMisaligned:
    return "load-misaligned";
  case UbKind::StoreMisaligned:
    return "store-misaligned";
  case UbKind::MmioBadSize:
    return "mmio-bad-size";
  case UbKind::EnvironmentCall:
    return "environment-call";
  }
  return "unknown";
}

Machine::Machine(Word RamSize) : Ram(RamSize, 0), XAddrs(RamSize, true) {
  assert(RamSize > 0 && RamSize % 4 == 0 && "RAM size must be a multiple of 4");
}

Word Machine::readRam(Word Addr, unsigned Size) const {
  assert(inRam(Addr, Size) && "RAM read out of range");
  Word V = 0;
  for (unsigned I = 0; I != Size; ++I)
    V |= Word(Ram[Addr + I]) << (8 * I);
  return V;
}

void Machine::writeRam(Word Addr, unsigned Size, Word V) {
  assert(inRam(Addr, Size) && "RAM write out of range");
  for (unsigned I = 0; I != Size; ++I)
    Ram[Addr + I] = uint8_t((V >> (8 * I)) & 0xFF);
}

void Machine::loadImage(Word Addr, const std::vector<uint8_t> &Image) {
  assert(inRam(Addr, Word(Image.size())) && "image does not fit in RAM");
  for (size_t I = 0; I != Image.size(); ++I)
    Ram[Addr + I] = Image[I];
}

bool Machine::isExecutable(Word Addr) const {
  if (!inRam(Addr, 4))
    return false;
  return XAddrs[Addr] && XAddrs[Addr + 1] && XAddrs[Addr + 2] &&
         XAddrs[Addr + 3];
}

void Machine::removeXAddrs(Word Addr, unsigned Size) {
  for (unsigned I = 0; I != Size; ++I)
    if (inRam(Addr + I, 1))
      XAddrs[Addr + I] = false;
}

bool Machine::rangeExecutable(Word Addr, Word Size) const {
  if (!inRam(Addr, Size))
    return false;
  for (Word I = 0; I != Size; ++I)
    if (!XAddrs[Addr + I])
      return false;
  return true;
}

void Machine::markUb(UbKind K, std::string Detail) {
  if (Ub != UbKind::None)
    return;
  Ub = K;
  UbMessage = std::move(Detail);
}
