//===- riscv/Mmio.h - I/O parameterization of the ISA semantics -*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ISA semantics are parameterized over external interactions (paper
/// section 6.2): loads and stores that fall outside the memory owned by the
/// code are given "special treatment" through this interface and recorded
/// in the I/O trace of all externally visible behavior. The lightbulb
/// platform instantiates it with an MMIO bus (devices/Platform.h); tests
/// instantiate it with scripted or randomized devices.
///
//===----------------------------------------------------------------------===//

#ifndef B2_RISCV_MMIO_H
#define B2_RISCV_MMIO_H

#include "support/Word.h"

#include <string>
#include <vector>

namespace b2 {
namespace riscv {

/// One entry of an MMIO trace: the paper's ("ld"|"st", addr, value)
/// triples (section 3.1). \c Size is carried for diagnostics; the verified
/// platform only performs word-sized MMIO.
struct MmioEvent {
  bool IsStore = false;
  Word Addr = 0;
  Word Value = 0;
  uint8_t Size = 4;

  friend bool operator==(const MmioEvent &A, const MmioEvent &B) {
    return A.IsStore == B.IsStore && A.Addr == B.Addr && A.Value == B.Value &&
           A.Size == B.Size;
  }
};

using MmioTrace = std::vector<MmioEvent>;

/// Renders an event as `("ld", 0x....., 0x.....)`.
std::string toString(const MmioEvent &E);

/// Renders a whole trace, one event per line.
std::string toString(const MmioTrace &T);

/// The external-interaction parameter of the ISA semantics: the C++
/// analogue of the paper's `nonmem_load` / `nonmem_store`. A device is a
/// deterministic function of the MMIO access *sequence* it observes (never
/// of simulation cycle counts), so that the software-oriented semantics and
/// the cycle-accurate hardware model observe identical values when they
/// issue identical access sequences. That determinism is what makes the
/// lockstep checker (verify/Lockstep.h) meaningful.
class MmioDevice {
public:
  virtual ~MmioDevice();

  /// Returns true iff \p Addr (of a \p Size-byte access) is a
  /// memory-mapped I/O address handled by this device.
  virtual bool isMmio(Word Addr, unsigned Size) const = 0;

  /// Performs an MMIO load. Only called when isMmio holds and the access
  /// is naturally aligned.
  virtual Word load(Word Addr, unsigned Size) = 0;

  /// Performs an MMIO store. Only called when isMmio holds and the access
  /// is naturally aligned.
  virtual void store(Word Addr, unsigned Size, Word Value) = 0;
};

/// A device with no MMIO addresses at all: every nonmemory access is
/// undefined behavior. Useful for pure-computation tests.
class NoDevice final : public MmioDevice {
public:
  bool isMmio(Word, unsigned) const override { return false; }
  Word load(Word, unsigned) override { return 0; }
  void store(Word, unsigned, Word) override {}
};

} // namespace riscv
} // namespace b2

#endif // B2_RISCV_MMIO_H
