//===- riscv/Machine.h - Software-oriented RISC-V machine state -*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-state type of the software-oriented RISC-V semantics that
/// the compiler is verified (here: differentially tested) against — the
/// paper's riscv-coq instantiation (sections 5.4 and 5.6). It includes:
///
///  * the register file, program counter, and a flat byte-addressed RAM
///    starting at address 0 (the demo platform's BRAM);
///  * the I/O trace of MMIO events (section 6.2);
///  * the set of executable addresses `XAddrs` used to encode the
///    stale-instruction discipline (section 5.6): every store removes its
///    addresses from the set, and fetching from an address outside the set
///    is undefined behavior;
///  * an explicit undefined-behavior status. UB is a *value* of the
///    simulation, never C++ UB: a machine that stepped into UB freezes and
///    remembers why.
///
/// XAddrs is stored as a packed bitset (one bit per byte, 64 bytes per
/// block) so that range queries and removals are word operations rather
/// than per-byte scans.
///
/// The machine also carries a *predecoded-instruction cache*: each 4-byte
/// word is decoded at most once, and the decoded form is reused on later
/// fetches from the same address. The invalidation rule is exactly the
/// XAddrs removal rule of section 5.6 — whenever bytes leave the
/// executable set, every cache line overlapping them is dropped. A valid
/// cache line therefore witnesses that its four bytes are still in
/// XAddrs, in RAM, aligned, and decode to the cached instruction, which
/// is what lets the fast path skip the fetch checks without changing any
/// observable behavior (including the `FetchNotExecutable` UB verdict for
/// stale instructions). Host-level RAM mutations (writeRam/writeByte/
/// loadImage) invalidate conservatively as well, so direct pokes from
/// tests cannot desynchronize the cache.
///
//===----------------------------------------------------------------------===//

#ifndef B2_RISCV_MACHINE_H
#define B2_RISCV_MACHINE_H

#include "isa/Instr.h"
#include "riscv/Mmio.h"
#include "support/Snapshot.h"
#include "support/Word.h"
#include "verify/FaultInjection.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace b2 {
namespace riscv {

/// Why a machine stopped making well-defined progress.
enum class UbKind : uint8_t {
  None,              ///< No UB: the machine is running.
  FetchUnmapped,     ///< PC outside RAM.
  FetchMisaligned,   ///< PC not 4-byte aligned.
  FetchNotExecutable,///< PC in RAM but outside XAddrs (stale instruction).
  InvalidInstruction,///< Fetched word does not decode.
  LoadUnmapped,      ///< Load from an address that is neither RAM nor MMIO.
  StoreUnmapped,     ///< Store to an address that is neither RAM nor MMIO.
  LoadMisaligned,    ///< Misaligned RAM or MMIO load.
  StoreMisaligned,   ///< Misaligned RAM or MMIO store.
  MmioBadSize,       ///< Non-word-sized MMIO access on this platform.
  EnvironmentCall,   ///< ecall/ebreak: no execution environment exists.
};

/// Human-readable name for a UB kind.
const char *ubKindName(UbKind K);

/// Hit/miss/invalidation counters of the predecoded-instruction cache.
struct DecodeCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;        ///< Aligned in-RAM fetches with no valid line.
  uint64_t Invalidations = 0; ///< Lines dropped by XAddrs removal / pokes.
};

/// Observer of the machine's derived-state invalidation events, wired up
/// by the superblock trace engine (riscv/BlockEngine.h). The machine
/// notifies it whenever instruction words leave the decode-valid set —
/// i.e. on exactly the XAddrs-removal invalidation set of section 5.6,
/// plus host-level RAM pokes — and on whole-machine restore, where every
/// derived structure must be considered stale. The listener is runtime
/// wiring, not architectural state: it is not part of Snapshot and never
/// changes observable behavior by itself.
class InvalidationListener {
public:
  virtual ~InvalidationListener() = default;

  /// Instruction words [\p FirstWord, \p LastWord] (inclusive, in units
  /// of aligned 4-byte words) were invalidated.
  virtual void onInvalidate(size_t FirstWord, size_t LastWord) = 0;

  /// The whole machine state was replaced by restore(); all derived
  /// state (translated superblocks, shadow copies) is stale.
  virtual void onRestore() = 0;
};

/// The software-oriented RISC-V machine. The memory footprint never
/// changes during execution (paper section 6.2: "In our instantiation of
/// the ISA specification, the memory footprint remains unchanged").
class Machine {
public:
  /// Creates a machine with \p RamSize bytes of zeroed RAM at address 0,
  /// PC 0, all registers 0, and every RAM address executable. \p RamSize
  /// must be a positive multiple of 4.
  explicit Machine(Word RamSize);

  // -- Registers and PC ---------------------------------------------------

  Word getReg(unsigned R) const {
    assert(R < 32 && "register index out of range");
    return R == 0 ? 0 : Regs[R];
  }

  void setReg(unsigned R, Word V) {
    assert(R < 32 && "register index out of range");
    if (R != 0)
      Regs[R] = V;
  }

  Word getPc() const { return Pc; }
  void setPc(Word V) { Pc = V; }

  // -- RAM ----------------------------------------------------------------

  Word ramSize() const { return Word(Ram.size()); }

  /// Returns true iff the \p Size-byte range at \p Addr lies entirely in
  /// RAM (with overflow handled).
  bool inRam(Word Addr, unsigned Size) const {
    return Addr < Ram.size() && Size <= Ram.size() - Addr;
  }

  uint8_t readByte(Word Addr) const {
    assert(inRam(Addr, 1) && "RAM read out of range");
    return Ram[Addr];
  }

  void writeByte(Word Addr, uint8_t V) {
    assert(inRam(Addr, 1) && "RAM write out of range");
    Ram[Addr] = V;
    RamCow.markDirty(Addr);
    invalidateDecode(Addr, 1);
  }

  /// Little-endian read of \p Size in {1,2,4} bytes.
  Word readRam(Word Addr, unsigned Size) const;

  /// Little-endian write of \p Size in {1,2,4} bytes.
  void writeRam(Word Addr, unsigned Size, Word V);

  /// Copies \p Image into RAM at \p Addr. Asserts it fits.
  void loadImage(Word Addr, const std::vector<uint8_t> &Image);

  /// The ISA store operation: writes \p Size bytes, removes them from
  /// XAddrs (section 5.6), and drops overlapping decode-cache lines —
  /// equivalent to writeRam + removeXAddrs but with a single combined
  /// invalidation pass.
  void storeRam(Word Addr, unsigned Size, Word V);

  /// Aligned-word RAM read with no bounds handling: \p Addr must be
  /// 4-aligned and in RAM. This is readRam's word case, inlined for the
  /// trace engine's guarded fast path.
  Word loadWordFast(Word Addr) const {
    assert((Addr & 3) == 0 && inRam(Addr, 4) && "unguarded word read");
    const uint8_t *P = &Ram[Addr];
    return Word(P[0]) | Word(P[1]) << 8 | Word(P[2]) << 16 | Word(P[3]) << 24;
  }

  /// The aligned-word case of storeRam, minus the listener notification:
  /// writes the word, applies the section-5.6 XAddrs removal and the
  /// decode-line invalidation (seeded store faults included — this IS
  /// storeRam's aligned path, which delegates here). Returns true iff the
  /// invalidation discipline ran to completion, i.e. iff storeRam would
  /// have notified the invalidation listener; the caller owns delivering
  /// that notification. \p Addr must be 4-aligned and in RAM.
  bool storeWordNoNotify(Word Addr, Word V) {
    assert((Addr & 3) == 0 && inRam(Addr, 4) && "unguarded word store");
    uint8_t *P = &Ram[Addr];
    P[0] = uint8_t(V);
    P[1] = uint8_t(V >> 8);
    P[2] = uint8_t(V >> 16);
    P[3] = uint8_t(V >> 24);
    RamCow.markDirty(Addr);
    if (fi::on(fi::Fault::SimStoreKeepsXAddrs))
      return false; // Seeded bug: the section-5.6 discipline is forgotten.
    // Aligned word: one XAddrs block, one decode-cache word. Data words
    // lose their X bits on the first store and never regain them, so
    // test before clearing to spare the steady-state read-modify-write.
    uint64_t XMask = uint64_t(0xF) << (Addr & 63);
    if (XBits[Addr >> 6] & XMask)
      XBits[Addr >> 6] &= ~XMask;
    if (fi::on(fi::Fault::SimDecodeCacheNoInvalidate))
      return false; // Seeded bug: removal without line invalidation.
    size_t W = Addr >> 2;
    uint64_t Bit = uint64_t(1) << (W & 63);
    if (DecodeValid[W >> 6] & Bit) {
      DecodeValid[W >> 6] &= ~Bit;
      ++CacheStats.Invalidations;
    }
    return true;
  }

  // -- XAddrs (stale-instruction discipline, section 5.6) ------------------

  /// True iff all 4 bytes at \p Addr are executable.
  bool isExecutable(Word Addr) const {
    if (!inRam(Addr, 4))
      return false;
    return xBitsAllSet(Addr, 4);
  }

  /// Removes [Addr, Addr+Size) from the executable set; called on every
  /// RAM store. Addresses wrap modulo 2^32 exactly as a per-byte removal
  /// would, and bytes outside RAM are ignored. Overlapping decode-cache
  /// lines are invalidated — the invalidation set IS the removal set.
  void removeXAddrs(Word Addr, unsigned Size);

  /// True iff [Addr, Addr+Size) is entirely executable; used by the
  /// compiler-correctness checker to verify the program image stays
  /// executable throughout execution.
  bool rangeExecutable(Word Addr, Word Size) const {
    if (Size == 0)
      return inRam(Addr, 0);
    if (!inRam(Addr, Size))
      return false;
    return xBitsAllSet(Addr, Size);
  }

  // -- Predecoded-instruction cache ----------------------------------------

  /// Enables/disables fast-path lookups (invalidation is maintained either
  /// way, so toggling mid-run keeps the cache coherent). Enabled by
  /// default; the uncached mode exists so both paths can be compared in
  /// one binary (differential mode, bench/sim_throughput).
  void setDecodeCacheEnabled(bool Enabled) { UseDecodeCache = Enabled; }
  bool decodeCacheEnabled() const { return UseDecodeCache; }

  /// Fast-path fetch: returns the cached decode of the word at \p Pc, or
  /// null if the cache is disabled, \p Pc is misaligned or outside RAM, or
  /// the line is invalid. A non-null result witnesses that the fetch at
  /// \p Pc passes every slow-path check (alignment, mapping, XAddrs,
  /// decodability) with the same outcome as an uncached fetch.
  const isa::Instr *cachedInstr(Word Pc) {
    if (!UseDecodeCache || (Pc & 3) != 0)
      return nullptr;
    Word W = Pc >> 2;
    if (W >= DecodeCache.size())
      return nullptr;
    if (!((DecodeValid[W >> 6] >> (W & 63)) & 1)) {
      ++CacheStats.Misses;
      return nullptr;
    }
    ++CacheStats.Hits;
    return &DecodeCache[W];
  }

  /// Fills the line for \p Pc. Only call after a full slow-path fetch at
  /// \p Pc succeeded (aligned, in RAM, executable, valid decode) — the
  /// cache-line invariant depends on it.
  void fillDecodeCache(Word Pc, const isa::Instr &I) {
    if (!UseDecodeCache)
      return;
    assert((Pc & 3) == 0 && isExecutable(Pc) && I.isValid() &&
           "decode-cache fill without a successful slow-path fetch");
    Word W = Pc >> 2;
    DecodeCache[W] = I;
    DecodeCow.markDirty(W);
    DecodeValid[W >> 6] |= uint64_t(1) << (W & 63);
  }

  const DecodeCacheStats &decodeCacheStats() const { return CacheStats; }

  /// Publishes the decode-cache counter deltas accumulated since the
  /// last publish to the global metrics registry (support/Metrics.h).
  /// Called at chunk/run boundaries by the engines and drivers — the
  /// hot fetch path keeps incrementing the plain local struct. restore()
  /// publishes pending deltas itself before rewinding CacheStats, so
  /// published totals stay monotone across checkpoint restores.
  void publishMetrics();

  /// Installs (or clears, with null) the invalidation listener. At most
  /// one listener is supported; the superblock trace engine owns it for
  /// the machine it drives.
  void setInvalidationListener(InvalidationListener *L) { Listener = L; }
  InvalidationListener *invalidationListener() const { return Listener; }

  // -- Snapshot/restore ------------------------------------------------------

  /// Whole-machine checkpoint. RAM and the predecoded-instruction cache
  /// are captured copy-on-write (O(pages dirtied since the last
  /// checkpoint)); the MMIO trace as an append-only delta chain; the
  /// rest (registers, XAddrs bitset, UB status, counters) flat. The
  /// decode cache is snapshotted *as state* — including any staleness a
  /// seeded invalidation fault left behind — so a restored machine is
  /// bit-identical to the original even under active fault plans.
  struct Snapshot {
    Word Regs[32];
    Word Pc;
    support::CowTracker<uint8_t>::Snap Ram;
    std::vector<uint64_t> XBits;
    support::CowTracker<isa::Instr>::Snap DecodeCache;
    std::vector<uint64_t> DecodeValid;
    DecodeCacheStats CacheStats;
    UbKind Ub;
    std::string UbMessage;
    support::ChainTracker<MmioEvent>::Snap Trace;
    uint64_t Retired;
  };

  /// Captures the complete architectural + cache state.
  Snapshot snapshot();

  /// Rewinds the machine to \p S (which must come from this machine's
  /// snapshot()). Pure state copy: no fault hooks run, no statistics
  /// change beyond being restored themselves.
  void restore(const Snapshot &S);

  // -- UB status ------------------------------------------------------------

  bool hasUb() const { return Ub != UbKind::None; }
  UbKind ubKind() const { return Ub; }
  const std::string &ubDetail() const { return UbMessage; }

  /// Marks the machine as having undefined behavior. Sticky: the first UB
  /// wins and the machine stops stepping.
  void markUb(UbKind K, std::string Detail);

  // -- I/O trace -------------------------------------------------------------

  const MmioTrace &trace() const { return Trace; }
  void appendEvent(const MmioEvent &E) { Trace.push_back(E); }

  // -- Counters --------------------------------------------------------------

  uint64_t retiredInstructions() const { return Retired; }
  void countRetired() { ++Retired; }

private:
  friend class BlockEngine; ///< The superblock trace engine executes
                            ///< micro-ops directly on this state.

  Word Regs[32] = {};
  Word Pc = 0;
  std::vector<uint8_t> Ram;
  /// XAddrs, one bit per RAM byte, packed into 64-bit blocks. Trailing
  /// bits past ramSize() are never consulted (all queries bound-check
  /// first).
  std::vector<uint64_t> XBits;
  /// Predecoded instructions, one per aligned RAM word; validity packed
  /// into 64-bit blocks alongside.
  std::vector<isa::Instr> DecodeCache;
  std::vector<uint64_t> DecodeValid;
  bool UseDecodeCache = true;
  DecodeCacheStats CacheStats;
  /// Counter values as of the last publishMetrics() — the publication
  /// baseline. Not architectural state: snapshot/restore do not touch it
  /// beyond restore()'s publish-then-rebase discipline.
  DecodeCacheStats PubCacheStats;
  UbKind Ub = UbKind::None;
  std::string UbMessage;
  MmioTrace Trace;
  uint64_t Retired = 0;
  support::CowTracker<uint8_t> RamCow;
  support::CowTracker<isa::Instr> DecodeCow;
  support::ChainTracker<MmioEvent> TraceChain;
  InvalidationListener *Listener = nullptr;

  /// True iff every XAddrs bit in [Addr, Addr+Len) is set. \p Len > 0 and
  /// the range must be in RAM.
  bool xBitsAllSet(Word Addr, Word Len) const;

  /// Drops every decode-cache line overlapping [Addr, Addr+Len) (no
  /// address wrapping; the range must be in RAM).
  void invalidateDecode(Word Addr, Word Len);
};

} // namespace riscv
} // namespace b2

#endif // B2_RISCV_MACHINE_H
