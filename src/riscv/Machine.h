//===- riscv/Machine.h - Software-oriented RISC-V machine state -*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-state type of the software-oriented RISC-V semantics that
/// the compiler is verified (here: differentially tested) against — the
/// paper's riscv-coq instantiation (sections 5.4 and 5.6). It includes:
///
///  * the register file, program counter, and a flat byte-addressed RAM
///    starting at address 0 (the demo platform's BRAM);
///  * the I/O trace of MMIO events (section 6.2);
///  * the set of executable addresses `XAddrs` used to encode the
///    stale-instruction discipline (section 5.6): every store removes its
///    addresses from the set, and fetching from an address outside the set
///    is undefined behavior;
///  * an explicit undefined-behavior status. UB is a *value* of the
///    simulation, never C++ UB: a machine that stepped into UB freezes and
///    remembers why.
///
//===----------------------------------------------------------------------===//

#ifndef B2_RISCV_MACHINE_H
#define B2_RISCV_MACHINE_H

#include "riscv/Mmio.h"
#include "support/Word.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace b2 {
namespace riscv {

/// Why a machine stopped making well-defined progress.
enum class UbKind : uint8_t {
  None,              ///< No UB: the machine is running.
  FetchUnmapped,     ///< PC outside RAM.
  FetchMisaligned,   ///< PC not 4-byte aligned.
  FetchNotExecutable,///< PC in RAM but outside XAddrs (stale instruction).
  InvalidInstruction,///< Fetched word does not decode.
  LoadUnmapped,      ///< Load from an address that is neither RAM nor MMIO.
  StoreUnmapped,     ///< Store to an address that is neither RAM nor MMIO.
  LoadMisaligned,    ///< Misaligned RAM or MMIO load.
  StoreMisaligned,   ///< Misaligned RAM or MMIO store.
  MmioBadSize,       ///< Non-word-sized MMIO access on this platform.
  EnvironmentCall,   ///< ecall/ebreak: no execution environment exists.
};

/// Human-readable name for a UB kind.
const char *ubKindName(UbKind K);

/// The software-oriented RISC-V machine. The memory footprint never
/// changes during execution (paper section 6.2: "In our instantiation of
/// the ISA specification, the memory footprint remains unchanged").
class Machine {
public:
  /// Creates a machine with \p RamSize bytes of zeroed RAM at address 0,
  /// PC 0, all registers 0, and every RAM address executable. \p RamSize
  /// must be a positive multiple of 4.
  explicit Machine(Word RamSize);

  // -- Registers and PC ---------------------------------------------------

  Word getReg(unsigned R) const {
    assert(R < 32 && "register index out of range");
    return R == 0 ? 0 : Regs[R];
  }

  void setReg(unsigned R, Word V) {
    assert(R < 32 && "register index out of range");
    if (R != 0)
      Regs[R] = V;
  }

  Word getPc() const { return Pc; }
  void setPc(Word V) { Pc = V; }

  // -- RAM ----------------------------------------------------------------

  Word ramSize() const { return Word(Ram.size()); }

  /// Returns true iff the \p Size-byte range at \p Addr lies entirely in
  /// RAM (with overflow handled).
  bool inRam(Word Addr, unsigned Size) const {
    return Addr < Ram.size() && Size <= Ram.size() - Addr;
  }

  uint8_t readByte(Word Addr) const {
    assert(inRam(Addr, 1) && "RAM read out of range");
    return Ram[Addr];
  }

  void writeByte(Word Addr, uint8_t V) {
    assert(inRam(Addr, 1) && "RAM write out of range");
    Ram[Addr] = V;
  }

  /// Little-endian read of \p Size in {1,2,4} bytes.
  Word readRam(Word Addr, unsigned Size) const;

  /// Little-endian write of \p Size in {1,2,4} bytes.
  void writeRam(Word Addr, unsigned Size, Word V);

  /// Copies \p Image into RAM at \p Addr. Asserts it fits.
  void loadImage(Word Addr, const std::vector<uint8_t> &Image);

  // -- XAddrs (stale-instruction discipline, section 5.6) ------------------

  /// True iff all 4 bytes at \p Addr are executable.
  bool isExecutable(Word Addr) const;

  /// Removes [Addr, Addr+Size) from the executable set; called on every
  /// RAM store.
  void removeXAddrs(Word Addr, unsigned Size);

  /// True iff [Addr, Addr+Size) is entirely executable; used by the
  /// compiler-correctness checker to verify the program image stays
  /// executable throughout execution.
  bool rangeExecutable(Word Addr, Word Size) const;

  // -- UB status ------------------------------------------------------------

  bool hasUb() const { return Ub != UbKind::None; }
  UbKind ubKind() const { return Ub; }
  const std::string &ubDetail() const { return UbMessage; }

  /// Marks the machine as having undefined behavior. Sticky: the first UB
  /// wins and the machine stops stepping.
  void markUb(UbKind K, std::string Detail);

  // -- I/O trace -------------------------------------------------------------

  const MmioTrace &trace() const { return Trace; }
  void appendEvent(const MmioEvent &E) { Trace.push_back(E); }

  // -- Counters --------------------------------------------------------------

  uint64_t retiredInstructions() const { return Retired; }
  void countRetired() { ++Retired; }

private:
  Word Regs[32] = {};
  Word Pc = 0;
  std::vector<uint8_t> Ram;
  std::vector<bool> XAddrs;
  UbKind Ub = UbKind::None;
  std::string UbMessage;
  MmioTrace Trace;
  uint64_t Retired = 0;
};

} // namespace riscv
} // namespace b2

#endif // B2_RISCV_MACHINE_H
