//===- kami/Decode.cpp - Hardware-side instruction decode ------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "kami/Decode.h"

#include "verify/FaultInjection.h"

#include <cassert>

using namespace b2;
using namespace b2::kami;
using namespace b2::support;

namespace {

// Immediate muxes, written as a hardware decoder would: slice and
// concatenate fixed bit positions.
Word immFieldI(Word R) { return signExtend(R >> 20, 12); }
Word immFieldS(Word R) {
  return signExtend(((R >> 25) << 5) | ((R >> 7) & 0x1F), 12);
}
Word immFieldB(Word R) {
  Word V = (((R >> 31) & 1) << 12) | (((R >> 7) & 1) << 11) |
           (((R >> 25) & 0x3F) << 5) | (((R >> 8) & 0xF) << 1);
  return signExtend(V, 13);
}
Word immFieldU(Word R) { return R & 0xFFFFF000u; }
Word immFieldJ(Word R) {
  Word V = (((R >> 31) & 1) << 20) | (((R >> 12) & 0xFF) << 12) |
           (((R >> 20) & 1) << 11) | (((R >> 21) & 0x3FF) << 1);
  return signExtend(V, 21);
}

} // namespace

DecodedInst b2::kami::decodeInst(Word Raw) {
  DecodedInst D;
  Word Major = Raw & 0x7F;
  D.Rd = uint8_t((Raw >> 7) & 0x1F);
  D.Funct3 = uint8_t((Raw >> 12) & 0x7);
  D.Rs1 = uint8_t((Raw >> 15) & 0x1F);
  D.Rs2 = uint8_t((Raw >> 20) & 0x1F);
  Word Funct7 = (Raw >> 25) & 0x7F;
  D.AluAlt = (Funct7 & 0x20) != 0;
  D.MulDiv = Funct7 == 0x01;

  switch (Major) {
  case 0x37:
    D.Cls = InstClass::Lui;
    D.Imm = immFieldU(Raw);
    D.Rs1 = D.Rs2 = 0;
    break;
  case 0x17:
    D.Cls = InstClass::Auipc;
    D.Imm = immFieldU(Raw);
    D.Rs1 = D.Rs2 = 0;
    break;
  case 0x6F:
    D.Cls = InstClass::Jal;
    D.Imm = Word(immFieldJ(Raw));
    D.Rs1 = D.Rs2 = 0;
    break;
  case 0x67:
    D.Cls = D.Funct3 == 0 ? InstClass::Jalr : InstClass::Illegal;
    D.Imm = immFieldI(Raw);
    D.Rs2 = 0;
    break;
  case 0x63:
    // funct3 2 and 3 do not encode branches.
    D.Cls = (D.Funct3 == 2 || D.Funct3 == 3) ? InstClass::Illegal
                                             : InstClass::Branch;
    D.Imm = immFieldB(Raw);
    D.Rd = 0;
    break;
  case 0x03:
    // Legal load widths: b, h, w, bu, hu.
    D.Cls = (D.Funct3 == 3 || D.Funct3 >= 6) ? InstClass::Illegal
                                             : InstClass::Load;
    D.Imm = immFieldI(Raw);
    D.Rs2 = 0;
    break;
  case 0x23:
    D.Cls = D.Funct3 <= 2 ? InstClass::Store : InstClass::Illegal;
    D.Imm = immFieldS(Raw);
    D.Rd = 0;
    break;
  case 0x13:
    D.Cls = InstClass::AluImm;
    D.Imm = immFieldI(Raw);
    D.Rs2 = 0;
    // Shift immediates constrain funct7.
    if (D.Funct3 == 1 && Funct7 != 0)
      D.Cls = InstClass::Illegal;
    if (D.Funct3 == 5 && Funct7 != 0 && Funct7 != 0x20)
      D.Cls = InstClass::Illegal;
    // Shift amounts are the 5-bit rs2 field, zero-extended.
    if ((D.Funct3 == 1 || D.Funct3 == 5) &&
        !fi::on(fi::Fault::KamiDecodeShamtWide))
      D.Imm = (Raw >> 20) & 0x1F;
    break;
  case 0x33:
    if (Funct7 == 0x01) {
      D.Cls = InstClass::Alu; // RV32M: all 8 funct3 values are legal.
    } else if (Funct7 == 0x00) {
      D.Cls = InstClass::Alu;
    } else if (Funct7 == 0x20 && (D.Funct3 == 0 || D.Funct3 == 5)) {
      D.Cls = InstClass::Alu; // sub / sra.
    } else {
      D.Cls = InstClass::Illegal;
    }
    break;
  case 0x0F:
    D.Cls = D.Funct3 == 0 ? InstClass::Fence : InstClass::Illegal;
    D.Imm = immFieldI(Raw);
    break;
  case 0x73:
    D.Cls = (Raw == 0x00000073 || Raw == 0x00100073) ? InstClass::System
                                                     : InstClass::Illegal;
    D.Rd = D.Rs1 = D.Rs2 = 0;
    D.Funct3 = 0;
    D.Imm = (Raw >> 20) & 1; // 0 = ecall, 1 = ebreak.
    break;
  default:
    D.Cls = InstClass::Illegal;
    break;
  }
  return D;
}

isa::Instr b2::kami::toIsa(const DecodedInst &D) {
  using isa::Opcode;
  isa::Instr I;
  I.Rd = D.Rd;
  I.Rs1 = D.Rs1;
  I.Rs2 = D.Rs2;
  I.Imm = SWord(D.Imm);
  switch (D.Cls) {
  case InstClass::Illegal:
    I = isa::Instr();
    return I;
  case InstClass::Lui:
    I.Op = Opcode::Lui;
    return I;
  case InstClass::Auipc:
    I.Op = Opcode::Auipc;
    return I;
  case InstClass::Jal:
    I.Op = Opcode::Jal;
    return I;
  case InstClass::Jalr:
    I.Op = Opcode::Jalr;
    return I;
  case InstClass::Branch: {
    static const Opcode Map[8] = {Opcode::Beq,  Opcode::Bne,  Opcode::Invalid,
                                  Opcode::Invalid, Opcode::Blt, Opcode::Bge,
                                  Opcode::Bltu, Opcode::Bgeu};
    I.Op = Map[D.Funct3];
    return I;
  }
  case InstClass::Load: {
    static const Opcode Map[8] = {Opcode::Lb,  Opcode::Lh,      Opcode::Lw,
                                  Opcode::Invalid, Opcode::Lbu, Opcode::Lhu,
                                  Opcode::Invalid, Opcode::Invalid};
    I.Op = Map[D.Funct3];
    return I;
  }
  case InstClass::Store: {
    static const Opcode Map[8] = {Opcode::Sb,      Opcode::Sh,
                                  Opcode::Sw,      Opcode::Invalid,
                                  Opcode::Invalid, Opcode::Invalid,
                                  Opcode::Invalid, Opcode::Invalid};
    I.Op = Map[D.Funct3];
    return I;
  }
  case InstClass::AluImm: {
    static const Opcode Map[8] = {Opcode::Addi, Opcode::Slli, Opcode::Slti,
                                  Opcode::Sltiu, Opcode::Xori, Opcode::Srli,
                                  Opcode::Ori,  Opcode::Andi};
    I.Op = Map[D.Funct3];
    if (D.Funct3 == 5 && D.AluAlt)
      I.Op = Opcode::Srai;
    return I;
  }
  case InstClass::Alu: {
    if (D.MulDiv) {
      static const Opcode Map[8] = {Opcode::Mul,  Opcode::Mulh,
                                    Opcode::Mulhsu, Opcode::Mulhu,
                                    Opcode::Div,  Opcode::Divu,
                                    Opcode::Rem,  Opcode::Remu};
      I.Op = Map[D.Funct3];
      return I;
    }
    static const Opcode Map[8] = {Opcode::Add, Opcode::Sll, Opcode::Slt,
                                  Opcode::Sltu, Opcode::Xor, Opcode::Srl,
                                  Opcode::Or,  Opcode::And};
    I.Op = Map[D.Funct3];
    if (D.Funct3 == 0 && D.AluAlt)
      I.Op = Opcode::Sub;
    if (D.Funct3 == 5 && D.AluAlt)
      I.Op = Opcode::Sra;
    return I;
  }
  case InstClass::Fence:
    I.Op = Opcode::Fence;
    I.Rs2 = 0; // The rs2 field bits belong to the fence immediate.
    return I;
  case InstClass::System:
    I.Op = D.Imm ? Opcode::Ebreak : Opcode::Ecall;
    I.Imm = 0;
    return I;
  }
  return I;
}

Word b2::kami::execAlu(const DecodedInst &D, Word A, Word B) {
  if (D.MulDiv && D.Cls == InstClass::Alu) {
    switch (D.Funct3) {
    case 0:
      return A * B;
    case 1: // mulh
      return Word((SDWord(SWord(A)) * SDWord(SWord(B))) >> 32);
    case 2: // mulhsu
      return Word((SDWord(SWord(A)) * SDWord(DWord(B))) >> 32);
    case 3: // mulhu
      return Word((DWord(A) * DWord(B)) >> 32);
    case 4: // div
      if (B == 0)
        return ~Word(0);
      if (A == 0x80000000u && B == ~Word(0))
        return A;
      return Word(SWord(A) / SWord(B));
    case 5: // divu
      return B == 0 ? ~Word(0) : A / B;
    case 6: // rem
      if (B == 0)
        return A;
      if (A == 0x80000000u && B == ~Word(0))
        return 0;
      return Word(SWord(A) % SWord(B));
    case 7: // remu
      return B == 0 ? A : A % B;
    }
  }
  bool Alt = D.AluAlt && (D.Cls == InstClass::Alu || D.Funct3 == 5);
  switch (D.Funct3) {
  case 0:
    return Alt ? A - B : A + B;
  case 1:
    return A << (B & 31);
  case 2:
    if (fi::on(fi::Fault::KamiSltAsUnsigned))
      return A < B ? 1 : 0;
    return SWord(A) < SWord(B) ? 1 : 0;
  case 3:
    return A < B ? 1 : 0;
  case 4:
    return A ^ B;
  case 5: {
    unsigned Sh = B & 31;
    if (!Alt)
      return A >> Sh;
    // Arithmetic right shift implemented the hardware way: replicate the
    // sign bit.
    Word Fill = (A & 0x80000000u) && Sh ? (~Word(0) << (32 - Sh)) : 0;
    return (A >> Sh) | Fill;
  }
  case 6:
    return A | B;
  case 7:
    return A & B;
  }
  assert(false && "unreachable: funct3 is 3 bits");
  return 0;
}

bool b2::kami::execBranchTaken(uint8_t Funct3, Word A, Word B) {
  switch (Funct3) {
  case 0:
    return A == B;
  case 1:
    return A != B;
  case 4:
    return SWord(A) < SWord(B);
  case 5:
    return SWord(A) >= SWord(B);
  case 6:
    return A < B;
  case 7:
    return A >= B;
  default:
    return false; // Illegal branch funct3s never issue.
  }
}

Word b2::kami::execLoadExtend(uint8_t Funct3, Word Raw) {
  switch (Funct3) {
  case 0:
    if (fi::on(fi::Fault::KamiLoadNoSignExtend))
      return Raw & 0xFF;
    return signExtend(Raw & 0xFF, 8);
  case 1:
    return signExtend(Raw & 0xFFFF, 16);
  case 2:
    return Raw;
  case 4:
    return Raw & 0xFF;
  case 5:
    return Raw & 0xFFFF;
  default:
    return Raw;
  }
}
