//===- kami/Labels.h - Kami-style I/O labels -------------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// I/O is encoded in Kami "as invoking methods on an unspecified external
/// module, which the semantics tracks in a behavior trace" (section 6.4).
/// A Label records one such external method call. The end-to-end theorem
/// relates Kami label sequences to the software-level MMIO traces via
/// `KamiRiscv.KamiLabelSeqR`, reproduced here as \c kamiLabelSeqR.
///
//===----------------------------------------------------------------------===//

#ifndef B2_KAMI_LABELS_H
#define B2_KAMI_LABELS_H

#include "riscv/Mmio.h"
#include "support/Word.h"

#include <cstdint>
#include <vector>

namespace b2 {
namespace kami {

/// One external method call of the processor module.
struct Label {
  enum class Kind : uint8_t { MmioLoad, MmioStore } MethodKind;
  Word Addr = 0;
  Word Value = 0;
  uint8_t Size = 4;
  uint64_t Cycle = 0; ///< Cycle of the call (diagnostics only; not part of
                      ///< the architectural trace relation).

  friend bool operator==(const Label &A, const Label &B) {
    // Cycle numbers are timing, not behavior: two traces are equal iff the
    // architectural content matches.
    return A.MethodKind == B.MethodKind && A.Addr == B.Addr &&
           A.Value == B.Value && A.Size == B.Size;
  }
};

using LabelTrace = std::vector<Label>;

/// Incremental KamiLabelSeqR: appends the images of Labels[From..) to
/// \p Out and returns the new conversion watermark. Lets pollers keep a
/// converted trace up to date without rebuilding it from scratch.
inline size_t appendKamiLabelSeqR(const LabelTrace &Labels, size_t From,
                                  riscv::MmioTrace &Out) {
  Out.reserve(Out.size() + (Labels.size() - From));
  for (size_t I = From; I < Labels.size(); ++I) {
    const Label &L = Labels[I];
    Out.push_back(riscv::MmioEvent{L.MethodKind == Label::Kind::MmioStore,
                                   L.Addr, L.Value, L.Size});
  }
  return Labels.size();
}

/// The paper's KamiLabelSeqR: maps a Kami label sequence to the ("ld"|"st",
/// addr, value) triples of the application-level trace predicates.
inline riscv::MmioTrace kamiLabelSeqR(const LabelTrace &Labels) {
  riscv::MmioTrace Out;
  appendKamiLabelSeqR(Labels, 0, Out);
  return Out;
}

} // namespace kami
} // namespace b2

#endif // B2_KAMI_LABELS_H
