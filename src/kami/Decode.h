//===- kami/Decode.h - Hardware-side instruction decode --------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardware model's instruction decoder. This is *deliberately* an
/// independent implementation from isa/Encoding.h: in the paper, the Kami
/// processor and the riscv-coq specification were developed independently
/// and "proving Kami's RISC-V specification equivalent to the one used by
/// the compiler" surfaced real specification bugs (section 5.5). The C++
/// analogue of that equivalence proof is verify/DecodeConsistency, a
/// differential checker over all (sampled) instruction words.
///
/// Decoding here is structured the way hardware describes it: extract all
/// fields unconditionally, then derive control signals. The decoded form
/// is shared between the single-cycle spec processor and the pipelined
/// implementation — the paper exploits the same sharing so that ISA fixes
/// do not disturb the refinement proof (section 5.7).
///
//===----------------------------------------------------------------------===//

#ifndef B2_KAMI_DECODE_H
#define B2_KAMI_DECODE_H

#include "isa/Instr.h"
#include "support/Word.h"

namespace b2 {
namespace kami {

/// Instruction classes as the datapath sees them.
enum class InstClass : uint8_t {
  Illegal,
  Alu,    ///< Register-register ALU (including RV32M).
  AluImm, ///< Register-immediate ALU.
  Lui,
  Auipc,
  Jal,
  Jalr,
  Branch,
  Load,
  Store,
  Fence,
  System, ///< ecall/ebreak: the hardware treats them as no-ops (the
          ///< software semantics call them UB; see kami/SpecCore.cpp).
};

/// Control signals and operands extracted by the decode stage.
struct DecodedInst {
  InstClass Cls = InstClass::Illegal;
  uint8_t Rd = 0;
  uint8_t Rs1 = 0;
  uint8_t Rs2 = 0;
  Word Imm = 0;       ///< Sign-extended immediate (format-dependent).
  uint8_t Funct3 = 0; ///< Raw funct3 field.
  bool AluAlt = false;///< funct7[5]: selects sub/sra.
  bool MulDiv = false;///< funct7 == 0000001: RV32M operation.

  bool readsRs1() const {
    switch (Cls) {
    case InstClass::Alu:
    case InstClass::AluImm:
    case InstClass::Jalr:
    case InstClass::Branch:
    case InstClass::Load:
    case InstClass::Store:
      return true;
    default:
      return false;
    }
  }

  bool readsRs2() const {
    switch (Cls) {
    case InstClass::Alu:
    case InstClass::Branch:
    case InstClass::Store:
      return true;
    default:
      return false;
    }
  }

  bool writesRd() const {
    switch (Cls) {
    case InstClass::Alu:
    case InstClass::AluImm:
    case InstClass::Lui:
    case InstClass::Auipc:
    case InstClass::Jal:
    case InstClass::Jalr:
    case InstClass::Load:
      return Rd != 0;
    default:
      return false;
    }
  }

  /// True for instructions that can redirect the PC.
  bool isControl() const {
    return Cls == InstClass::Jal || Cls == InstClass::Jalr ||
           Cls == InstClass::Branch;
  }
};

/// Decodes \p Raw the hardware way.
DecodedInst decodeInst(Word Raw);

/// Converts a hardware decode to the software-side representation, for the
/// decode-consistency differential checker. Illegal instructions map to
/// Opcode::Invalid.
isa::Instr toIsa(const DecodedInst &D);

// -- Shared combinational execute logic -------------------------------------

/// Register-register / register-immediate ALU result. Independent
/// implementation from riscv/Step.cpp's ALU (checked for agreement by the
/// property tests).
Word execAlu(const DecodedInst &D, Word A, Word B);

/// Branch condition evaluation.
bool execBranchTaken(uint8_t Funct3, Word A, Word B);

/// Load-result extension (byte/halfword sign/zero extension).
Word execLoadExtend(uint8_t Funct3, Word Raw);

} // namespace kami
} // namespace b2

#endif // B2_KAMI_DECODE_H
