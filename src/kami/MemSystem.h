//===- kami/MemSystem.h - Shared memory/MMIO routing -----------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory module shared by the spec processor and the pipelined
/// processor. "The processor itself does not distinguish ordinary memory
/// operations from MMIO. When the memory module is attached, it handles
/// the loads and stores to memory addresses but makes designated external
/// method calls for the rest. This factoring appears both in the pipelined
/// processor and in the spec processor, making for an easy correctness
/// proof by modular refinement" (paper section 6.4). Sharing the routing
/// logic here makes the refinement property hold for the *data values* by
/// construction; the refinement checker still validates the end-to-end
/// label traces.
///
//===----------------------------------------------------------------------===//

#ifndef B2_KAMI_MEMSYSTEM_H
#define B2_KAMI_MEMSYSTEM_H

#include "kami/Bram.h"
#include "kami/Decode.h"
#include "kami/Labels.h"
#include "riscv/Mmio.h"
#include "verify/FaultInjection.h"

#include <cstdint>
#include <vector>

namespace b2 {
namespace kami {

/// Data-memory port: routes each access either to the BRAM or to the
/// external module (recording a label).
class MemPort {
public:
  MemPort(Bram &Mem, riscv::MmioDevice &Device) : Mem(Mem), Device(Device) {}

  bool isExternal(Word Addr) const { return Addr >= Mem.sizeBytes(); }

  /// Performs a load; external accesses are recorded in \p Labels.
  Word load(Word Addr, unsigned Size, uint64_t Cycle, LabelTrace &Labels) {
    if (!isExternal(Addr))
      return laneExtract(Addr, Size, Mem.readWord(Addr));
    // External method call on the unspecified module. Addresses no device
    // claims still produce a call; the reply is an arbitrary (but
    // deterministic) value.
    Word V = Device.isMmio(Addr, Size) ? Device.load(Addr, Size) : 0;
    Labels.push_back(Label{Label::Kind::MmioLoad, Addr, V, uint8_t(Size),
                           Cycle});
    return V;
  }

  /// Performs a store; external accesses are recorded in \p Labels.
  void store(Word Addr, unsigned Size, Word Value, uint64_t Cycle,
             LabelTrace &Labels) {
    if (!isExternal(Addr)) {
      uint8_t Be = byteEnableFor(Addr, Size);
      if (fi::on(fi::Fault::KamiMemWrongByteEnable))
        Be = 0xF; // Seeded bug: sub-word stores clobber the whole word.
      Mem.writeWord(Addr, Be, laneAlign(Addr, Size, Value));
      return;
    }
    Word Sent = Size == 4 ? Value : (Value & ((Word(1) << (8 * Size)) - 1));
    if (Device.isMmio(Addr, Size))
      Device.store(Addr, Size, Sent);
    Labels.push_back(Label{Label::Kind::MmioStore, Addr, Sent, uint8_t(Size),
                           Cycle});
  }

  Bram &bram() { return Mem; }

private:
  Bram &Mem;
  riscv::MmioDevice &Device;
};

/// The interface-compatible instruction cache the paper added to the Kami
/// processor: on reset it eagerly copies main memory into FPGA block RAM
/// and serves all fetches from the copy (section 5.5). Ordinary stores do
/// *not* update it — that is the stale-instruction hazard of section 5.6,
/// which the software side must avoid via the XAddrs discipline.
///
/// Because the snapshot never changes after reset, each line's decode is
/// computed once (lazily, on first fetch from that line) and reused by
/// every later fetch — a host-simulation fast path with no architectural
/// effect: fetchDecoded(pc) == decodeInst(fetch(pc)) for every pc, by
/// construction.
class ICache {
public:
  explicit ICache(const Bram &Mem) {
    Lines.resize(Mem.sizeBytes() / 4);
    Word Fill = Word(Lines.size());
    if (fi::on(fi::Fault::KamiIcacheFillTruncated))
      Fill /= 2; // Seeded bug: the reset fill stops halfway; the upper
                 // lines keep their power-on zeros.
    for (Word I = 0; I != Fill; ++I)
      Lines[I] = Mem.readWord(I * 4);
    Decoded.resize(Lines.size());
    DecodedValid.resize(Lines.size(), false);
  }

  Word fetch(Word Pc) const { return Lines[(Pc / 4) % Word(Lines.size())]; }

  /// Predecoded fetch for the core models' frontends.
  const DecodedInst &fetchDecoded(Word Pc) const {
    Word I = (Pc / 4) % Word(Lines.size());
    if (!DecodedValid[I]) {
      Decoded[I] = decodeInst(Lines[I]);
      DecodedValid[I] = true;
    }
    return Decoded[I];
  }

  Word sizeWords() const { return Word(Lines.size()); }

private:
  std::vector<Word> Lines;
  // Memoized decodes; mutable because filling the memo is not an
  // architectural state change (the snapshot itself is immutable).
  mutable std::vector<DecodedInst> Decoded;
  mutable std::vector<bool> DecodedValid;
};

} // namespace kami
} // namespace b2

#endif // B2_KAMI_MEMSYSTEM_H
