//===- kami/SpecCore.h - Single-cycle spec processor -----------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-cycle processor model that the pipelined implementation
/// refines (paper section 5.7: "The pipelined processor is proven to
/// implement a single-cycle processor model in the sense of refinement").
/// It shares the combinational decode/execute logic (kami/Decode.h) and
/// the memory/MMIO routing (kami/MemSystem.h) with the pipelined core,
/// exactly as the paper's designs share them so that ISA fixes do not
/// disturb the refinement proof.
///
/// Like the Kami semantics, this model has *no* notion of undefined
/// behavior (section 5.8): illegal instructions retire as no-ops,
/// too-large addresses wrap around, misaligned accesses use the aligned
/// containing word, and ecall/ebreak do nothing. The lockstep checker
/// relies on the software semantics to rule such states out before
/// comparing. Instructions are fetched from the reset-time instruction
/// snapshot (ICache), so the spec core exhibits the same
/// stale-instruction behavior as the implementation — this is what makes
/// the refinement hold even for self-modifying programs.
///
/// The spec core also serves as the repository's stand-in for a
/// commercial ~1-instruction-per-cycle core (the paper approximates the
/// FE310's Rocket core as executing 1 instruction per cycle in section
/// 7.2.1), which is how the processor_factor bench uses it.
///
//===----------------------------------------------------------------------===//

#ifndef B2_KAMI_SPECCORE_H
#define B2_KAMI_SPECCORE_H

#include "kami/Bram.h"
#include "kami/Decode.h"
#include "kami/Labels.h"
#include "kami/MemSystem.h"
#include "riscv/Mmio.h"
#include "support/Snapshot.h"

#include <cstdint>

namespace b2 {
namespace kami {

/// One-instruction-per-cycle RV32IM core.
class SpecCore {
public:
  SpecCore(Bram &Mem, riscv::MmioDevice &Device);

  /// Executes one cycle (= one instruction).
  void tick();

  /// Runs \p N cycles.
  void run(uint64_t N);

  Word getReg(unsigned R) const { return R == 0 ? 0 : Regs[R]; }
  Word getPc() const { return Pc; }
  void setPc(Word V) { Pc = V; }

  uint64_t cycles() const { return Cycles; }
  uint64_t retired() const { return Retired; }

  const LabelTrace &labels() const { return Labels; }
  const ICache &icache() const { return IMem; }

  // -- Snapshot/restore ------------------------------------------------------

  /// Core-private checkpoint: architectural registers plus the label
  /// trace as a delta chain. The ICache is reset-time-immutable (its
  /// decode memos are behavior-neutral) and the BRAM is checkpointed by
  /// its owner, so neither appears here.
  struct Snapshot {
    Word Regs[32];
    Word Pc;
    uint64_t Cycles;
    uint64_t Retired;
    support::ChainTracker<Label>::Snap Labels;
  };

  Snapshot snapshot();
  void restore(const Snapshot &S);

private:
  MemPort Port;
  ICache IMem;
  Word Regs[32] = {};
  Word Pc = 0;
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
  LabelTrace Labels;
  support::ChainTracker<Label> LabelChain;

  void setReg(unsigned R, Word V) {
    if (R != 0)
      Regs[R] = V;
  }
};

} // namespace kami
} // namespace b2

#endif // B2_KAMI_SPECCORE_H
