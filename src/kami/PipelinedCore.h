//===- kami/PipelinedCore.h - 4-stage pipelined processor ------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle-level model of the paper's Kami processor (Figure 4): a 4-stage
/// in-order pipeline IF -> ID -> EX -> WB with single-entry FIFO queues
/// between stages, the eagerly-filled instruction cache, the BTB branch
/// predictor the paper added, byte-enable memory accesses, and MMIO as
/// external method calls issued at write-back (retirement order, so the
/// externally visible label sequence is architectural).
///
/// Hazard handling follows the simple Kami design: register reads happen
/// in ID, guarded by a scoreboard that stalls on outstanding writes; there
/// is no forwarding network. Control flow is predicted in IF (BTB hit ->
/// predicted target, miss -> PC+4) and verified in EX; a misprediction
/// squashes the younger in-flight instruction and redirects fetch.
///
/// Like every Kami-level model, this core has no notion of undefined
/// behavior; see kami/SpecCore.h.
///
//===----------------------------------------------------------------------===//

#ifndef B2_KAMI_PIPELINEDCORE_H
#define B2_KAMI_PIPELINEDCORE_H

#include "kami/Bram.h"
#include "kami/Decode.h"
#include "kami/Labels.h"
#include "kami/MemSystem.h"
#include "riscv/Mmio.h"
#include "support/Snapshot.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace b2 {
namespace kami {

/// Microarchitectural configuration, used by the Figure 4 ablation bench.
struct PipeConfig {
  /// Branch target buffer present (the paper's addition). Without it,
  /// fetch always predicts PC+4.
  bool UseBtb = true;
  /// log2 of the number of BTB entries.
  unsigned BtbIndexBits = 5;
  /// Extra cycles an external (MMIO) access occupies write-back, modeling
  /// the handshake with the external module.
  unsigned MmioLatency = 2;
  /// Words copied into the I$ per cycle during the reset fill; 0 means the
  /// fill is instantaneous (ablation switch).
  unsigned ICacheFillWordsPerCycle = 4;
  /// Result forwarding from the WB-stage latch into ID, removing most
  /// RAW stalls for ALU producers. Off by default — the paper's simple
  /// core has no forwarding network; this is the kind of intramodule
  /// optimization the refinement spec is supposed to absorb (section 2.1:
  /// "optimizations added ... could be verified against the same spec").
  bool EnableForwarding = false;
};

/// Microarchitectural event counters (Figure 4 / section 7.2.1 benches).
struct PipeStats {
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
  uint64_t Mispredicts = 0;
  uint64_t RawStalls = 0;   ///< ID stalls due to scoreboard conflicts.
  uint64_t Forwards = 0;    ///< Operands satisfied by the forwarding path.
  uint64_t MmioStalls = 0;  ///< WB cycles spent waiting on external calls.
  uint64_t FillCycles = 0;  ///< Reset cycles spent filling the I$.
};

/// The pipelined RV32IM core.
class PipelinedCore {
public:
  PipelinedCore(Bram &Mem, riscv::MmioDevice &Device,
                const PipeConfig &Config = PipeConfig());

  /// Advances the design by one clock cycle.
  void tick();

  /// Runs until \p N total instructions have retired or \p MaxCycles
  /// cycles have elapsed. Returns true iff the retirement target was
  /// reached.
  bool runUntilRetired(uint64_t N, uint64_t MaxCycles);

  /// Runs exactly \p N cycles.
  void run(uint64_t N);

  // -- Architectural observation (for the `related` relation) --------------

  /// Committed register-file contents.
  Word getReg(unsigned R) const { return R == 0 ? 0 : Regs[R]; }

  /// PC of the next instruction to retire in program order.
  Word architecturalPc() const { return CommitPc; }

  /// The instruction snapshot, for checking the `related` invariant that
  /// the I$ agrees with memory on the executable addresses (section 5.8).
  const ICache &icache() const { return IMem; }

  uint64_t retired() const { return Stats.Retired; }
  uint64_t cycles() const { return Stats.Cycles; }
  const PipeStats &stats() const { return Stats; }
  const LabelTrace &labels() const { return Labels; }

private:
  // -- Pipeline registers ----------------------------------------------------

  struct FetchOut {
    Word Pc = 0;
    Word PredictedNext = 0;
    Word Raw = 0;
  };

  struct DecodeOut {
    Word Pc = 0;
    Word PredictedNext = 0;
    DecodedInst D;
    Word A = 0; ///< rs1 value read in ID.
    Word B = 0; ///< rs2 value read in ID.
  };

  struct ExecOut {
    Word Pc = 0;
    Word NextPc = 0;
    DecodedInst D;
    Word AluResult = 0; ///< ALU result or link value.
    Word MemAddr = 0;
    Word StoreData = 0;
  };

  struct BtbEntry {
    bool Valid = false;
    Word Pc = 0;
    Word Target = 0;
  };

  MemPort Port;
  ICache IMem;
  PipeConfig Config;
  PipeStats Stats;

  Word Regs[32] = {};
  Word FetchPc = 0;
  Word CommitPc = 0;
  std::optional<FetchOut> F2D;
  std::optional<DecodeOut> D2E;
  std::optional<ExecOut> E2W;
  uint8_t Pending[32] = {}; ///< Scoreboard: outstanding writes per register.
  std::vector<BtbEntry> Btb;
  unsigned MmioStallLeft = 0;
  uint64_t FillCyclesLeft = 0;
  LabelTrace Labels;
  support::ChainTracker<Label> LabelChain;

public:
  // -- Snapshot/restore ------------------------------------------------------

  /// Whole-core checkpoint: committed architectural state plus every
  /// piece of timing state — pipeline latches, scoreboard, BTB, MMIO
  /// and I$-fill stall counters — so a restored core replays the exact
  /// same cycle-level schedule. The label trace rides along as a delta
  /// chain; the BRAM is checkpointed by its owner.
  struct Snapshot {
    PipeStats Stats;
    Word Regs[32];
    Word FetchPc;
    Word CommitPc;
    std::optional<FetchOut> F2D;
    std::optional<DecodeOut> D2E;
    std::optional<ExecOut> E2W;
    uint8_t Pending[32];
    std::vector<BtbEntry> Btb;
    unsigned MmioStallLeft;
    uint64_t FillCyclesLeft;
    support::ChainTracker<Label>::Snap Labels;
  };

  Snapshot snapshot();
  void restore(const Snapshot &S);

private:
  void setReg(unsigned R, Word V) {
    if (R != 0)
      Regs[R] = V;
  }

  Word predictNext(Word Pc) const;
  void trainBtb(Word Pc, Word ActualNext);
  void stageWriteback();
  void stageExecute();
  void stageDecode();
  void stageFetch();
};

} // namespace kami
} // namespace b2

#endif // B2_KAMI_PIPELINEDCORE_H
