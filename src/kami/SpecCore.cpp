//===- kami/SpecCore.cpp - Single-cycle spec processor ---------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "kami/SpecCore.h"

using namespace b2;
using namespace b2::kami;

SpecCore::SpecCore(Bram &Mem, riscv::MmioDevice &Device)
    : Port(Mem, Device), IMem(Mem) {}

void SpecCore::tick() {
  ++Cycles;

  // Fetch from the reset-time instruction snapshot; low address bits are
  // dropped and high bits wrap, as in the implementation. The snapshot is
  // immutable after reset, so the decode is memoized per line.
  const DecodedInst &D = IMem.fetchDecoded(Pc);
  Word NextPc = Pc + 4;
  Word A = getReg(D.Rs1);
  Word B = getReg(D.Rs2);

  switch (D.Cls) {
  case InstClass::Illegal:
  case InstClass::Fence:
  case InstClass::System:
    break; // Arbitrary-but-deterministic hardware behavior: no-op.
  case InstClass::Lui:
    setReg(D.Rd, D.Imm);
    break;
  case InstClass::Auipc:
    setReg(D.Rd, Pc + D.Imm);
    break;
  case InstClass::Jal:
    setReg(D.Rd, Pc + 4);
    NextPc = Pc + D.Imm;
    break;
  case InstClass::Jalr:
    setReg(D.Rd, Pc + 4);
    NextPc = (A + D.Imm) & ~Word(1);
    break;
  case InstClass::Branch:
    if (execBranchTaken(D.Funct3, A, B))
      NextPc = Pc + D.Imm;
    break;
  case InstClass::Load: {
    Word Addr = A + D.Imm;
    unsigned Size = D.Funct3 == 2 ? 4 : (D.Funct3 & 1) ? 2 : 1;
    Word Raw2 = Port.load(Addr, Size, Cycles, Labels);
    setReg(D.Rd, execLoadExtend(D.Funct3, Raw2));
    break;
  }
  case InstClass::Store: {
    Word Addr = A + D.Imm;
    unsigned Size = D.Funct3 == 2 ? 4 : D.Funct3 == 1 ? 2 : 1;
    Port.store(Addr, Size, B, Cycles, Labels);
    break;
  }
  case InstClass::Alu:
    setReg(D.Rd, execAlu(D, A, B));
    break;
  case InstClass::AluImm:
    setReg(D.Rd, execAlu(D, A, D.Imm));
    break;
  }

  Pc = NextPc;
  ++Retired;
}

void SpecCore::run(uint64_t N) {
  for (uint64_t I = 0; I != N; ++I)
    tick();
}

SpecCore::Snapshot SpecCore::snapshot() {
  Snapshot S;
  std::copy(std::begin(Regs), std::end(Regs), std::begin(S.Regs));
  S.Pc = Pc;
  S.Cycles = Cycles;
  S.Retired = Retired;
  S.Labels = LabelChain.snapshot(Labels);
  return S;
}

void SpecCore::restore(const Snapshot &S) {
  std::copy(std::begin(S.Regs), std::end(S.Regs), std::begin(Regs));
  Pc = S.Pc;
  Cycles = S.Cycles;
  Retired = S.Retired;
  LabelChain.restore(Labels, S.Labels);
}
