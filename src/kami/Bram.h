//===- kami/Bram.h - Block RAM with byte-enable interface ------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FPGA block-RAM model. The paper's additions to the Kami processor
/// included "adding byte-enable signals to the memory interface" to support
/// lb/sb (section 5.5); accordingly this model's write port takes a 4-bit
/// byte-enable mask on a word-aligned address, and all narrower accesses
/// are expressed through it.
///
/// Address handling matches hardware, not the software semantics: the
/// Kami semantics "does not have a notion of undefined behavior —
/// memory accesses at too-large addresses just wrap around, ignoring the
/// more-significant address bits" (section 5.8). The wrap is implemented
/// here so that the processor models inherit it.
///
//===----------------------------------------------------------------------===//

#ifndef B2_KAMI_BRAM_H
#define B2_KAMI_BRAM_H

#include "support/Snapshot.h"
#include "support/Word.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace b2 {
namespace kami {

/// Word-addressed block RAM with a byte-enable write port.
class Bram {
public:
  /// Creates a zeroed BRAM of \p SizeBytes (positive multiple of 4).
  explicit Bram(Word SizeBytes) : Words(SizeBytes / 4, 0) {
    assert(SizeBytes > 0 && SizeBytes % 4 == 0 &&
           "BRAM size must be a positive multiple of 4");
  }

  Word sizeBytes() const { return Word(Words.size()) * 4; }

  /// Reads the aligned word containing \p Addr; high address bits wrap.
  Word readWord(Word Addr) const { return Words[wordIndex(Addr)]; }

  /// Writes bytes of \p Data selected by \p ByteEnable (bit i enables byte
  /// lane i) into the aligned word containing \p Addr.
  void writeWord(Word Addr, uint8_t ByteEnable, Word Data) {
    Word Index = wordIndex(Addr);
    Word &W = Words[Index];
    for (unsigned Lane = 0; Lane != 4; ++Lane) {
      if (!(ByteEnable & (1u << Lane)))
        continue;
      Word Mask = Word(0xFF) << (8 * Lane);
      W = (W & ~Mask) | (Data & Mask);
    }
    Cow.markDirty(Index);
  }

  /// Copies \p Image into the BRAM starting at byte 0 (system bring-up:
  /// "place it at address 0 in a memory", section 5.9). Asserts it fits.
  void loadImage(const std::vector<uint8_t> &Image) {
    assert(Image.size() <= size_t(sizeBytes()) && "image does not fit");
    for (std::size_t I = 0; I != Image.size(); ++I) {
      Word Lane = Word(I) & 3;
      writeWord(Word(I), uint8_t(1u << Lane), Word(Image[I]) << (8 * Lane));
    }
  }

  /// Byte view used by checkers that compare against the software
  /// semantics' RAM.
  uint8_t readByte(Word Addr) const {
    Word W = readWord(Addr);
    return uint8_t((W >> (8 * (Addr & 3))) & 0xFF);
  }

  // -- Snapshot/restore ------------------------------------------------------

  /// Copy-on-write checkpoint of the word array: O(words dirtied since
  /// the previous checkpoint), not O(BRAM size).
  struct Snapshot {
    support::CowTracker<Word>::Snap Words;
  };

  Snapshot snapshot() { return Snapshot{Cow.snapshot(Words)}; }
  void restore(const Snapshot &S) { Cow.restore(Words, S.Words); }

private:
  Word wordIndex(Word Addr) const {
    // Hardware truncates the address to the BRAM's index width: high bits
    // wrap around.
    return (Addr / 4) % Word(Words.size());
  }

  std::vector<Word> Words;
  support::CowTracker<Word> Cow;
};

/// Computes the byte-enable mask for a \p Size-byte access at \p Addr
/// (addr low bits select lanes). \p Size in {1,2,4}.
inline uint8_t byteEnableFor(Word Addr, unsigned Size) {
  unsigned Lane = Addr & 3;
  switch (Size) {
  case 1:
    return uint8_t(1u << Lane);
  case 2:
    return uint8_t(0x3u << (Lane & 2));
  case 4:
    return 0xF;
  default:
    assert(false && "invalid access size");
    return 0;
  }
}

/// Replicates \p Value across the byte lanes selected by \p Addr so a
/// narrow store drives the right lanes of the word-wide write port.
inline Word laneAlign(Word Addr, unsigned Size, Word Value) {
  unsigned Lane = Addr & 3;
  switch (Size) {
  case 1:
    return (Value & 0xFF) << (8 * Lane);
  case 2:
    return (Value & 0xFFFF) << (8 * (Lane & 2));
  case 4:
    return Value;
  default:
    assert(false && "invalid access size");
    return 0;
  }
}

/// Extracts a \p Size-byte value from word \p WordData as selected by the
/// low bits of \p Addr.
inline Word laneExtract(Word Addr, unsigned Size, Word WordData) {
  unsigned Lane = Addr & 3;
  switch (Size) {
  case 1:
    return (WordData >> (8 * Lane)) & 0xFF;
  case 2:
    return (WordData >> (8 * (Lane & 2))) & 0xFFFF;
  case 4:
    return WordData;
  default:
    assert(false && "invalid access size");
    return 0;
  }
}

} // namespace kami
} // namespace b2

#endif // B2_KAMI_BRAM_H
