//===- kami/PipelinedCore.cpp - 4-stage pipelined processor ----------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "kami/PipelinedCore.h"

#include "verify/FaultInjection.h"

#include <cassert>

using namespace b2;
using namespace b2::kami;

PipelinedCore::PipelinedCore(Bram &Mem, riscv::MmioDevice &Device,
                             const PipeConfig &Config)
    : Port(Mem, Device), IMem(Mem), Config(Config) {
  Btb.resize(size_t(1) << Config.BtbIndexBits);
  if (Config.ICacheFillWordsPerCycle != 0) {
    // Eager fill occupies the frontend for sizeWords/rate cycles after
    // reset (the copy itself already happened in the ICache constructor;
    // we model its latency here).
    FillCyclesLeft = (IMem.sizeWords() + Config.ICacheFillWordsPerCycle - 1) /
                     Config.ICacheFillWordsPerCycle;
  }
}

Word PipelinedCore::predictNext(Word Pc) const {
  if (Config.UseBtb) {
    const BtbEntry &E = Btb[(Pc / 4) & (Btb.size() - 1)];
    if (E.Valid && E.Pc == Pc)
      return E.Target;
  }
  return Pc + 4;
}

void PipelinedCore::trainBtb(Word Pc, Word ActualNext) {
  if (!Config.UseBtb)
    return;
  BtbEntry &E = Btb[(Pc / 4) & (Btb.size() - 1)];
  if (ActualNext != Pc + 4) {
    E.Valid = true;
    E.Pc = Pc;
    E.Target = ActualNext;
  } else if (E.Valid && E.Pc == Pc) {
    // Not-taken branch whose entry would keep mispredicting: drop it.
    E.Valid = false;
  }
}

void PipelinedCore::stageWriteback() {
  if (!E2W)
    return;
  ExecOut &W = *E2W;

  bool IsMem = W.D.Cls == InstClass::Load || W.D.Cls == InstClass::Store;
  if (IsMem && Port.isExternal(W.MemAddr) && MmioStallLeft > 0) {
    // Handshake with the external module in progress.
    --MmioStallLeft;
    ++Stats.MmioStalls;
    return;
  }

  if (W.D.Cls == InstClass::Load) {
    Word Raw = Port.load(W.MemAddr, W.D.Funct3 == 2 ? 4
                                    : (W.D.Funct3 & 1) ? 2
                                                       : 1,
                         Stats.Cycles, Labels);
    setReg(W.D.Rd, execLoadExtend(W.D.Funct3, Raw));
  } else if (W.D.Cls == InstClass::Store) {
    unsigned Size = W.D.Funct3 == 2 ? 4 : W.D.Funct3 == 1 ? 2 : 1;
    Port.store(W.MemAddr, Size, W.StoreData, Stats.Cycles, Labels);
  } else if (W.D.writesRd()) {
    setReg(W.D.Rd, W.AluResult);
  }

  if (W.D.writesRd()) {
    assert(Pending[W.D.Rd] > 0 && "scoreboard underflow");
    --Pending[W.D.Rd];
  }

  assert(W.Pc == CommitPc && "out-of-order retirement");
  CommitPc = W.NextPc;
  ++Stats.Retired;
  E2W.reset();
}

void PipelinedCore::stageExecute() {
  if (!D2E || E2W)
    return;
  DecodeOut &X = *D2E;

  ExecOut Out;
  Out.Pc = X.Pc;
  Out.D = X.D;
  Out.NextPc = X.Pc + 4;

  switch (X.D.Cls) {
  case InstClass::Illegal:
  case InstClass::Fence:
  case InstClass::System:
    break;
  case InstClass::Lui:
    Out.AluResult = X.D.Imm;
    break;
  case InstClass::Auipc:
    Out.AluResult = X.Pc + X.D.Imm;
    break;
  case InstClass::Jal:
    Out.AluResult = X.Pc + 4;
    Out.NextPc = X.Pc + X.D.Imm;
    break;
  case InstClass::Jalr:
    Out.AluResult = X.Pc + 4;
    Out.NextPc = (X.A + X.D.Imm) & ~Word(1);
    break;
  case InstClass::Branch:
    if (execBranchTaken(X.D.Funct3, X.A, X.B))
      Out.NextPc = X.Pc + X.D.Imm;
    break;
  case InstClass::Load:
  case InstClass::Store:
    Out.MemAddr = X.A + X.D.Imm;
    Out.StoreData = X.B;
    break;
  case InstClass::Alu:
    Out.AluResult = execAlu(X.D, X.A, X.B);
    break;
  case InstClass::AluImm:
    Out.AluResult = execAlu(X.D, X.A, X.D.Imm);
    break;
  }

  // Control-flow verification: every instruction (not just branches)
  // checks the frontend's prediction, because a stale BTB entry can
  // redirect a non-control instruction.
  if (Out.NextPc != X.PredictedNext) {
    ++Stats.Mispredicts;
    if (!fi::on(fi::Fault::KamiBtbNoSquash))
      F2D.reset(); // Squash the younger wrong-path instruction.
    FetchPc = Out.NextPc;
  }
  trainBtb(X.Pc, Out.NextPc);

  // External accesses pay the handshake latency when they reach WB.
  if ((X.D.Cls == InstClass::Load || X.D.Cls == InstClass::Store) &&
      Port.isExternal(Out.MemAddr))
    MmioStallLeft = Config.MmioLatency;

  E2W = Out;
  D2E.reset();
}

void PipelinedCore::stageDecode() {
  if (!F2D || D2E)
    return;
  FetchOut &F = *F2D;

  // Predecoded fetch from the immutable reset snapshot; identical to
  // decodeInst(F.Raw) by the ICache invariant.
  const DecodedInst &D = IMem.fetchDecoded(F.Pc);

  // Scoreboard with an optional forwarding path: an operand whose only
  // outstanding writer sits in the WB latch with a ready ALU result can
  // be bypassed; anything else (loads, multiple writers) stalls.
  auto Resolve = [&](uint8_t R, Word &Value, bool &Stall) {
    if (Pending[R] == 0) {
      Value = getReg(R);
      return;
    }
    if (Config.EnableForwarding && Pending[R] == 1 && E2W &&
        E2W->D.writesRd() && E2W->D.Rd == R &&
        (fi::on(fi::Fault::KamiForwardLoadStale) ||
         (E2W->D.Cls != InstClass::Load &&
          E2W->D.Cls != InstClass::Store))) {
      Value = E2W->AluResult;
      ++Stats.Forwards;
      return;
    }
    Stall = true;
  };

  bool Stall = false;
  Word A = 0, B = 0;
  if (D.readsRs1())
    Resolve(D.Rs1, A, Stall);
  if (D.readsRs2())
    Resolve(D.Rs2, B, Stall);
  // WAW on the single write port still serializes.
  if (D.writesRd() && Pending[D.Rd] > 0)
    Stall = true;
  if (Stall) {
    ++Stats.RawStalls;
    return;
  }

  DecodeOut Out;
  Out.Pc = F.Pc;
  Out.PredictedNext = F.PredictedNext;
  Out.D = D;
  Out.A = D.readsRs1() ? A : getReg(D.Rs1);
  Out.B = D.readsRs2() ? B : getReg(D.Rs2);
  if (D.writesRd())
    ++Pending[D.Rd];

  D2E = Out;
  F2D.reset();
}

void PipelinedCore::stageFetch() {
  if (F2D)
    return;
  FetchOut Out;
  Out.Pc = FetchPc;
  Out.Raw = IMem.fetch(FetchPc);
  Out.PredictedNext = predictNext(FetchPc);
  FetchPc = Out.PredictedNext;
  F2D = Out;
}

void PipelinedCore::tick() {
  ++Stats.Cycles;
  if (FillCyclesLeft > 0) {
    --FillCyclesLeft;
    ++Stats.FillCycles;
    return;
  }
  // Stages evaluate oldest-first so that a value travels at most one
  // stage per cycle and an EX redirect squashes before ID issues.
  stageWriteback();
  stageExecute();
  stageDecode();
  stageFetch();
}

bool PipelinedCore::runUntilRetired(uint64_t N, uint64_t MaxCycles) {
  uint64_t Start = Stats.Cycles;
  while (Stats.Retired < N) {
    if (Stats.Cycles - Start >= MaxCycles)
      return false;
    tick();
  }
  return true;
}

void PipelinedCore::run(uint64_t N) {
  for (uint64_t I = 0; I != N; ++I)
    tick();
}

PipelinedCore::Snapshot PipelinedCore::snapshot() {
  Snapshot S;
  S.Stats = Stats;
  std::copy(std::begin(Regs), std::end(Regs), std::begin(S.Regs));
  S.FetchPc = FetchPc;
  S.CommitPc = CommitPc;
  S.F2D = F2D;
  S.D2E = D2E;
  S.E2W = E2W;
  std::copy(std::begin(Pending), std::end(Pending), std::begin(S.Pending));
  S.Btb = Btb;
  S.MmioStallLeft = MmioStallLeft;
  S.FillCyclesLeft = FillCyclesLeft;
  S.Labels = LabelChain.snapshot(Labels);
  return S;
}

void PipelinedCore::restore(const Snapshot &S) {
  Stats = S.Stats;
  std::copy(std::begin(S.Regs), std::end(S.Regs), std::begin(Regs));
  FetchPc = S.FetchPc;
  CommitPc = S.CommitPc;
  F2D = S.F2D;
  D2E = S.D2E;
  E2W = S.E2W;
  std::copy(std::begin(S.Pending), std::end(S.Pending), std::begin(Pending));
  Btb = S.Btb;
  MmioStallLeft = S.MmioStallLeft;
  FillCyclesLeft = S.FillCyclesLeft;
  LabelChain.restore(Labels, S.Labels);
}
