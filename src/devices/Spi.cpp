//===- devices/Spi.cpp - FE310-style SPI controller model ------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "devices/Spi.h"

#include "verify/FaultInjection.h"

using namespace b2;
using namespace b2::devices;

SpiSlave::~SpiSlave() = default;

Spi::Spi(SpiSlave &Slave, const SpiConfig &Config)
    : Slave(Slave), Config(Config) {}

void Spi::setCsMode(Word Value) {
  CsModeReg = Value & 3;
  if (CsModeReg == SpiCsModeHold && !CsAsserted) {
    CsAsserted = true;
    Slave.csAssert();
  } else if (CsModeReg == SpiCsModeAuto && CsAsserted) {
    CsAsserted = false;
    Slave.csRelease();
  }
}

Word Spi::read(Word Addr) {
  ++OpClock;
  switch (Addr) {
  case SpiSckDiv:
    return SckDivReg;
  case SpiCsId:
    return CsIdReg;
  case SpiCsDef:
    return CsDefReg;
  case SpiCsMode:
    return CsModeReg;
  case SpiTxData:
    // Bit 31 set = FIFO full: all entries occupied by responses that have
    // not been read yet.
    return RxFifo.size() >= Config.FifoDepth ? SpiFlagBit : 0;
  case SpiRxData: {
    // Bit 31 set = FIFO empty, or the head byte still in the shifter.
    if (RxFifo.empty() || OpClock < RxFifo.front().ReadyAt) {
      if (fi::on(fi::Fault::DevSpiStaleRead))
        return LastPopped; // Seeded bug: replays old data, never signals
                           // empty, so the driver consumes garbage.
      return SpiFlagBit;
    }
    Word V = RxFifo.front().Byte;
    RxFifo.pop_front();
    LastPopped = V;
    return V;
  }
  default:
    return 0; // Unmodeled SPI registers read as zero.
  }
}

void Spi::write(Word Addr, Word Value) {
  ++OpClock;
  switch (Addr) {
  case SpiSckDiv:
    SckDivReg = Value & 0xFFF;
    return;
  case SpiCsId:
    CsIdReg = Value;
    return;
  case SpiCsDef:
    CsDefReg = Value;
    return;
  case SpiCsMode:
    setCsMode(Value);
    return;
  case SpiTxData: {
    if (RxFifo.size() >= Config.FifoDepth)
      return; // FIFO full: the byte is dropped (drivers poll first).
    // In AUTO csmode the controller frames each byte by itself.
    bool AutoFrame = !CsAsserted;
    if (AutoFrame)
      Slave.csAssert();
    uint8_t Miso = Slave.exchange(uint8_t(Value & 0xFF));
    if (AutoFrame)
      Slave.csRelease();
    ++Exchanges;
    // The shifter is serial: this byte's transfer starts when the shifter
    // frees up and completes TransferOps later. A deep FIFO lets transfers
    // of queued bytes overlap the driver's later operations; the
    // interleaved driver waits out each transfer with polls.
    uint64_t Start = std::max(OpClock, ShifterFreeAt);
    uint64_t ReadyAt = Start + Config.TransferOps;
    ShifterFreeAt = ReadyAt;
    RxFifo.push_back(PendingRx{Miso, ReadyAt});
    return;
  }
  default:
    return; // Unmodeled SPI registers ignore writes.
  }
}

Spi::Snapshot Spi::snapshot() const {
  return Snapshot{RxFifo,     CsModeReg, SckDivReg,     CsIdReg,
                  CsDefReg,   CsAsserted, Exchanges,    OpClock,
                  ShifterFreeAt, LastPopped};
}

void Spi::restore(const Snapshot &S) {
  RxFifo = S.RxFifo;
  CsModeReg = S.CsModeReg;
  SckDivReg = S.SckDivReg;
  CsIdReg = S.CsIdReg;
  CsDefReg = S.CsDefReg;
  CsAsserted = S.CsAsserted;
  Exchanges = S.Exchanges;
  OpClock = S.OpClock;
  ShifterFreeAt = S.ShifterFreeAt;
  if (fi::on(fi::Fault::SnapStateStaleLatch))
    ShifterFreeAt = OpClock + Config.TransferOps; // Seeded bug: the restored
                                                  // shifter-busy latch claims
                                                  // an in-flight transfer, so
                                                  // the resumed run delays the
                                                  // next byte and sees busy
                                                  // polls the straight-through
                                                  // run never did.
  LastPopped = S.LastPopped;
}
