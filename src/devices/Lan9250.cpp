//===- devices/Lan9250.cpp - LAN9250 Ethernet controller model -------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "devices/Lan9250.h"

#include "devices/Net.h"
#include "verify/FaultInjection.h"

#include <algorithm>

using namespace b2;
using namespace b2::devices;
using namespace b2::devices::lan9250reg;

namespace {
constexpr uint8_t CmdRead = 0x03;
constexpr uint8_t CmdFastRead = 0x0B;
constexpr uint8_t CmdWrite = 0x02;
} // namespace

Lan9250::Lan9250() : Lan9250(Config()) {}

Lan9250::Lan9250(const Config &C) : Cfg(C), NotReadyLeft(C.NotReadyPolls) {
  Regs[HwCfg] = 0; // READY is computed on read.
  Regs[RxCfg] = 0;
  Regs[IrqCfg] = 0;
  Regs[IntEn] = 0;
}

void Lan9250::csAssert() { State = SpiState::Cmd; }

void Lan9250::csRelease() {
  State = SpiState::Idle;
  ByteCount = 0;
}

uint8_t Lan9250::exchange(uint8_t Mosi) {
  switch (State) {
  case SpiState::Idle:
    return 0xFF; // Not selected: the MISO line floats high.
  case SpiState::Cmd:
    Command = Mosi;
    if (Command == CmdRead || Command == CmdFastRead || Command == CmdWrite) {
      State = SpiState::AddrHi;
    } else {
      State = SpiState::Idle; // Unknown command: ignore until reselect.
    }
    return 0xFF;
  case SpiState::AddrHi:
    Address = Word(Mosi) << 8;
    State = SpiState::AddrLo;
    return 0xFF;
  case SpiState::AddrLo:
    Address |= Mosi;
    ByteCount = 0;
    if (Command == CmdWrite) {
      State = SpiState::WriteData;
      Assembly = 0;
    } else if (Command == CmdFastRead) {
      State = SpiState::FastReadDummy;
    } else {
      State = SpiState::ReadData;
    }
    return 0xFF;
  case SpiState::FastReadDummy:
    State = SpiState::ReadData;
    return 0xFF;
  case SpiState::ReadData: {
    // Latch lazily on the first beat of each word, so FIFO ports pop
    // exactly one word per four byte-beats (no lookahead pop).
    if (ByteCount == 0)
      ReadLatch = readRegister(Address);
    uint8_t Out = uint8_t((ReadLatch >> (8 * ByteCount)) & 0xFF);
    if (++ByteCount == 4) {
      ByteCount = 0;
      // FIFO ports stay put; plain registers auto-increment the address.
      if (Address != RxDataFifo && Address != RxStatusFifo)
        Address += 4;
    }
    return Out;
  }
  case SpiState::WriteData:
    Assembly |= Word(Mosi) << (8 * ByteCount);
    if (++ByteCount == 4) {
      writeRegister(Address, Assembly);
      Assembly = 0;
      ByteCount = 0;
      if (Address != RxDataFifo)
        Address += 4;
    }
    return 0xFF;
  }
  return 0xFF;
}

Word Lan9250::statusWordFor(const PendingFrame &F) const {
  Word Len = Word(F.Data.size());
  if (fi::on(fi::Fault::DevLanRxLengthOffByOne))
    ++Len; // Seeded bug: status over-reports the frame length.
  Word Sts = (Len & RxStsLengthMask) << RxStsLengthShift;
  if (F.Errored)
    Sts |= RxStsErrorSummary;
  return Sts;
}

Word Lan9250::rxFifoInf() const {
  Word StatusWords = Word(RxQueue.size());
  if (StatusWords > 0xFF)
    StatusWords = 0xFF;
  Word DataBytes = 0;
  for (const PendingFrame &F : RxQueue)
    DataBytes += paddedLen(Word(F.Data.size()));
  if (DataBytes > 0xFFFF)
    DataBytes = 0xFFFF;
  return (StatusWords << 16) | DataBytes;
}

Word Lan9250::popRxStatus() {
  if (RxQueue.empty())
    return 0;
  PendingFrame &F = RxQueue.front();
  if (F.StatusConsumed)
    return 0; // Status already taken; datasheet says behavior undefined.
  F.StatusConsumed = true;
  return statusWordFor(F);
}

Word Lan9250::popRxData() {
  if (RxQueue.empty())
    return 0;
  PendingFrame &F = RxQueue.front();
  if (!F.StatusConsumed)
    return 0; // Data before status: undefined per datasheet; return 0.
  Word V = 0;
  bool BigEndian = fi::on(fi::Fault::DevLanRxByteOrder);
  for (unsigned I = 0; I != 4; ++I) {
    Word Idx = F.ReadOffset + I;
    if (Idx < F.Data.size())
      V |= Word(F.Data[Idx]) << (8 * (BigEndian ? 3 - I : I));
  }
  F.ReadOffset += 4;
  if (F.ReadOffset >= paddedLen(Word(F.Data.size())))
    RxQueue.pop_front();
  return V;
}

Word Lan9250::readRegister(Word Addr) {
  switch (Addr) {
  case RxDataFifo:
    return popRxData();
  case RxStatusFifo:
    return popRxStatus();
  case RxStatusPeek:
    return RxQueue.empty() ? 0 : statusWordFor(RxQueue.front());
  case IdRev:
    return IdRevValue;
  case ByteTest:
    return ByteTestPattern;
  case HwCfg: {
    Word V = Regs[HwCfg] & ~HwCfgReady;
    if (NotReadyLeft > 0) {
      --NotReadyLeft;
      return V;
    }
    return V | HwCfgReady;
  }
  case RxFifoInf:
    return rxFifoInf();
  case MacCsrCmd:
    return 0; // The indirect access always completes before the next read.
  case MacCsrData:
    return MacCsrDataReg;
  case IntSts:
    return 0;
  default: {
    auto It = Regs.find(Addr);
    return It == Regs.end() ? 0 : It->second;
  }
  }
}

void Lan9250::writeRegister(Word Addr, Word Value) {
  switch (Addr) {
  case MacCsrCmd: {
    Word Index = Value & 0xF;
    if (Value & MacCsrBusy) {
      if (Value & MacCsrRead)
        MacCsrDataReg = MacRegs[Index];
      else
        MacRegs[Index] = MacCsrDataReg;
    }
    return;
  }
  case MacCsrData:
    MacCsrDataReg = Value;
    return;
  case RxCfg:
    Regs[RxCfg] = Value;
    // RX_DUMP (bit 15): discard the frame at the head of the RX FIFO.
    if ((Value & (Word(1) << 15)) && !RxQueue.empty())
      RxQueue.pop_front();
    return;
  case ByteTest:
  case IdRev:
  case RxFifoInf:
    return; // Read-only.
  default:
    Regs[Addr] = Value;
    return;
  }
}

bool Lan9250::rxEnabled() const {
  return (MacRegs[MacCrIndex] & MacCrRxEn) != 0;
}

bool Lan9250::injectFrame(std::vector<uint8_t> Frame, bool Errored) {
  if (!rxEnabled())
    return false;
  if (RxQueue.size() >= Cfg.MaxBufferedFrames)
    return false;
  // A zero-byte frame cannot exist on the wire (nothing between SFD and
  // CRC would frame it); the MAC never forwards one. Modeling it as
  // bufferable would also wedge the driver: a status word with length 0
  // prompts zero data-FIFO reads, so the frame would never pop.
  if (Frame.empty())
    return false;
  PendingFrame F;
  F.Data = std::move(Frame);
  F.Errored = Errored;
  // Seeded bug: the RX engine's frame-boundary reset forgets a marker
  // latch, so an earlier ON command corrupts every later OFF command (the
  // IPv4 version byte is flipped, making the frame invalid to the
  // firmware while the wire-level ground truth still expects a toggle).
  if (fi::on(fi::Fault::DevLanRxCrossFrameLatch)) {
    FrameClass C = classifyFrame(F.Data);
    if (C.Valid && C.CommandBit)
      CrossFrameOnSeen = true;
    else if (C.Valid && !C.CommandBit && CrossFrameOnSeen)
      F.Data[frame::EthHeaderLen] ^= 0x40;
  }
  RxQueue.push_back(F);
  return true;
}

Lan9250::Snapshot Lan9250::snapshot() const {
  Snapshot S;
  S.State = State;
  S.Command = Command;
  S.Address = Address;
  S.Assembly = Assembly;
  S.ByteCount = ByteCount;
  S.ReadLatch = ReadLatch;
  S.Regs = Regs;
  std::copy(std::begin(MacRegs), std::end(MacRegs), std::begin(S.MacRegs));
  S.MacCsrDataReg = MacCsrDataReg;
  S.NotReadyLeft = NotReadyLeft;
  S.RxQueue = RxQueue;
  S.CrossFrameOnSeen = CrossFrameOnSeen;
  return S;
}

void Lan9250::restore(const Snapshot &S) {
  State = S.State;
  Command = S.Command;
  Address = S.Address;
  Assembly = S.Assembly;
  ByteCount = S.ByteCount;
  ReadLatch = S.ReadLatch;
  Regs = S.Regs;
  std::copy(std::begin(S.MacRegs), std::end(S.MacRegs), std::begin(MacRegs));
  MacCsrDataReg = S.MacCsrDataReg;
  NotReadyLeft = S.NotReadyLeft;
  RxQueue = S.RxQueue;
  CrossFrameOnSeen = S.CrossFrameOnSeen;
}
