//===- devices/Platform.h - MMIO bus and demo platform ---------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demo platform of Figure 2: an MMIO bus routing the SPI controller
/// (with the LAN9250 behind it) and the GPIO block (with the lightbulb
/// power switch behind it). The platform implements the ISA semantics'
/// external-interaction parameter (riscv::MmioDevice), so one platform
/// instance can back the ISA simulator, the spec core, or the pipelined
/// core.
///
/// Frame arrival is scripted per scenario and delivered deterministically
/// as a function of the platform's MMIO access count — never of simulated
/// cycles — so that software-level and hardware-level simulations of the
/// same program observe identical device behavior (the precondition of
/// the lockstep and refinement checkers).
///
//===----------------------------------------------------------------------===//

#ifndef B2_DEVICES_PLATFORM_H
#define B2_DEVICES_PLATFORM_H

#include "devices/Gpio.h"
#include "devices/Lan9250.h"
#include "devices/MemoryMap.h"
#include "devices/Spi.h"
#include "riscv/Mmio.h"
#include "support/Snapshot.h"

#include <cstdint>
#include <vector>

namespace b2 {
namespace devices {

/// A scheduled frame arrival: \p Frame is injected into the LAN9250 once
/// the platform has served \p AtOp MMIO accesses.
struct ScheduledFrame {
  uint64_t AtOp = 0;
  std::vector<uint8_t> Frame;
  bool Errored = false;
};

/// The demo platform: SPI + LAN9250 + GPIO on one MMIO bus.
class Platform final : public riscv::MmioDevice {
public:
  explicit Platform(const SpiConfig &SpiCfg = SpiConfig(),
                    const Lan9250::Config &LanCfg = Lan9250::Config());

  // -- riscv::MmioDevice -------------------------------------------------------

  bool isMmio(Word Addr, unsigned Size) const override {
    (void)Size;
    return isMmioAddr(Addr);
  }

  Word load(Word Addr, unsigned Size) override;
  void store(Word Addr, unsigned Size, Word Value) override;

  // -- Scenario ---------------------------------------------------------------

  /// Schedules \p Frame for delivery after \p AtOp MMIO accesses. Frames
  /// arriving before the driver enables reception are dropped, as on real
  /// hardware.
  void scheduleFrame(uint64_t AtOp, std::vector<uint8_t> Frame,
                     bool Errored = false);

  /// Injects a frame immediately. Returns whether the NIC accepted it.
  bool injectNow(std::vector<uint8_t> Frame, bool Errored = false) {
    bool Accepted = Nic.injectFrame(Frame, Errored);
    if (Accepted)
      Accepted_.push_back(ScheduledFrame{OpCount, std::move(Frame), Errored});
    return Accepted;
  }

  /// Frames the NIC actually accepted, in delivery order (the ground
  /// truth the end-to-end checker compares actuations against).
  const std::vector<ScheduledFrame> &acceptedFrames() const {
    return Accepted_;
  }

  uint64_t opCount() const { return OpCount; }

  Gpio &gpio() { return GpioBlock; }
  const Gpio &gpio() const { return GpioBlock; }
  Lan9250 &nic() { return Nic; }
  Spi &spi() { return SpiCtrl; }

  // -- Snapshot/restore ------------------------------------------------------

  /// Whole-platform checkpoint: every device plus the op counter and the
  /// delivery schedule cursor. The accepted-frame ground truth is kept
  /// as an append-only delta chain so frequent checkpoints stay O(new
  /// frames); the pending schedule (set up once per run) is copied flat
  /// and is empty in backpressure mode.
  struct Snapshot {
    Lan9250::Snapshot Nic;
    Spi::Snapshot SpiCtrl;
    Gpio::Snapshot GpioBlock;
    uint64_t OpCount;
    std::vector<ScheduledFrame> Pending;
    size_t NextPending;
    support::ChainTracker<ScheduledFrame>::Snap Accepted;
  };

  Snapshot snapshot();
  void restore(const Snapshot &S);

private:
  Lan9250 Nic;
  Spi SpiCtrl;
  Gpio GpioBlock;
  uint64_t OpCount = 0;
  std::vector<ScheduledFrame> Pending; ///< Sorted by AtOp; consumed front
                                       ///< to back.
  size_t NextPending = 0;
  std::vector<ScheduledFrame> Accepted_; ///< Frames the NIC accepted.
  support::ChainTracker<ScheduledFrame> AcceptedChain;

  void deliverDue();
};

} // namespace devices
} // namespace b2

#endif // B2_DEVICES_PLATFORM_H
