//===- devices/Spi.h - FE310-style SPI controller model --------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behavioral model of the FE310-style SPI peripheral the drivers talk to:
/// "The SPI interface exposes send and receive queues via MMIO, relying on
/// polling to detect peripheral-initiated flag changes" (section 5.1).
///
/// Determinism contract: all state evolution is a function of the MMIO
/// *access sequence* (never of simulation cycles), so that the ISA
/// simulator, the spec core, and the pipelined core observe identical
/// reply values when they issue identical access sequences.
///
/// The configuration distinguishes the two SPI designs of section 7.2.1:
///  * the verified system's SPI has a single-entry FIFO and no pipelining
///    (its "simplest specification we could come up with"), forcing the
///    driver to interleave one-byte writes and reads;
///  * the FE310's SPI supports pipelining within a transaction (FIFO depth
///    8), which the unverified baseline exploits — the 1.4x factor.
///
//===----------------------------------------------------------------------===//

#ifndef B2_DEVICES_SPI_H
#define B2_DEVICES_SPI_H

#include "devices/MemoryMap.h"
#include "support/Word.h"

#include <cstdint>
#include <deque>

namespace b2 {
namespace devices {

/// A device on the SPI bus (the LAN9250 in the demo).
class SpiSlave {
public:
  virtual ~SpiSlave();

  /// Chip select asserted: a transaction begins.
  virtual void csAssert() = 0;

  /// Chip select released: the transaction ends.
  virtual void csRelease() = 0;

  /// Full-duplex byte exchange: the slave consumes \p Mosi and produces
  /// the MISO byte.
  virtual uint8_t exchange(uint8_t Mosi) = 0;
};

/// Configuration of the SPI controller model.
struct SpiConfig {
  /// TX/RX FIFO depth. 1 models the verified system's Verilog SPI ("does
  /// not support pipelining"); 8 models the FE310.
  unsigned FifoDepth = 1;
  /// Serial shift time of one byte, measured in SPI MMIO operations so
  /// the model stays deterministic in the access sequence. Transfers of
  /// queued bytes proceed back to back, so a driver that pipelines writes
  /// through a deep FIFO overlaps them with its own later operations; the
  /// strictly interleaved verified driver waits out each transfer with
  /// polls (the 1.4x of section 7.2.1).
  unsigned TransferOps = 6;
};

/// The SPI controller.
class Spi {
public:
  Spi(SpiSlave &Slave, const SpiConfig &Config = SpiConfig());

  /// True iff \p Addr is one of the SPI registers.
  static bool claims(Word Addr) {
    return Addr >= SpiBase && Addr < SpiBase + SpiSize;
  }

  /// MMIO register read.
  Word read(Word Addr);

  /// MMIO register write.
  void write(Word Addr, Word Value);

  /// Number of byte exchanges performed (bench statistic).
  uint64_t exchanges() const { return Exchanges; }

private:
  struct PendingRx {
    uint8_t Byte;
    uint64_t ReadyAt; ///< OpClock at which the byte leaves the shifter.
  };

  SpiSlave &Slave;
  SpiConfig Config;
  std::deque<PendingRx> RxFifo;
  Word CsModeReg = SpiCsModeAuto;
  Word SckDivReg = 3;
  Word CsIdReg = 0;
  Word CsDefReg = 1;
  bool CsAsserted = false;
  uint64_t Exchanges = 0;
  uint64_t OpClock = 0;       ///< SPI MMIO operations observed.
  uint64_t ShifterFreeAt = 0; ///< OpClock at which the shifter idles.
  Word LastPopped = 0;        ///< Last byte read out of the RX FIFO
                              ///< (replayed by the DevSpiStaleRead fault).

  void setCsMode(Word Value);

public:
  // -- Snapshot/restore ------------------------------------------------------

  /// Controller checkpoint: registers, the op-clock, and the in-flight
  /// RX FIFO with its readiness deadlines. Everything is op-sequence
  /// state (the determinism contract above), so a plain copy restores
  /// the exact reply schedule.
  struct Snapshot {
    std::deque<PendingRx> RxFifo;
    Word CsModeReg;
    Word SckDivReg;
    Word CsIdReg;
    Word CsDefReg;
    bool CsAsserted;
    uint64_t Exchanges;
    uint64_t OpClock;
    uint64_t ShifterFreeAt;
    Word LastPopped;
  };

  Snapshot snapshot() const;

  /// Restores \p S. Under the seeded SnapStateStaleLatch fault the
  /// restored shifter-busy latch is corrupted — the bug class the
  /// snapshot-differential gate exists to catch.
  void restore(const Snapshot &S);
};

} // namespace devices
} // namespace b2

#endif // B2_DEVICES_SPI_H
