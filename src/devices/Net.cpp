//===- devices/Net.cpp - Ethernet/IPv4/UDP frame construction --------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "devices/Net.h"

#include <cassert>
#include <cstddef>

using namespace b2;
using namespace b2::devices;
using namespace b2::devices::frame;

uint16_t b2::devices::internetChecksum(const uint8_t *Data, size_t Len) {
  uint32_t Sum = 0;
  for (size_t I = 0; I + 1 < Len; I += 2)
    Sum += (uint32_t(Data[I]) << 8) | Data[I + 1];
  if (Len & 1)
    Sum += uint32_t(Data[Len - 1]) << 8;
  while (Sum >> 16)
    Sum = (Sum & 0xFFFF) + (Sum >> 16);
  return uint16_t(~Sum);
}

std::vector<uint8_t>
b2::devices::buildUdpFrame(const std::vector<uint8_t> &Payload,
                           const UdpFrameOptions &O) {
  std::vector<uint8_t> F;
  F.reserve(CmdOffset + Payload.size());

  // Ethernet header.
  F.insert(F.end(), O.DstMac.begin(), O.DstMac.end());
  F.insert(F.end(), O.SrcMac.begin(), O.SrcMac.end());
  F.push_back(uint8_t(EthertypeIpv4 >> 8));
  F.push_back(uint8_t(EthertypeIpv4 & 0xFF));

  // IPv4 header (no options).
  uint16_t IpLen = uint16_t(Ipv4HeaderLen + UdpHeaderLen + Payload.size());
  size_t IpStart = F.size();
  F.push_back(0x45); // Version 4, IHL 5.
  F.push_back(0x00); // DSCP/ECN.
  F.push_back(uint8_t(IpLen >> 8));
  F.push_back(uint8_t(IpLen & 0xFF));
  F.push_back(0x00); // Identification.
  F.push_back(0x00);
  F.push_back(0x40); // Flags: don't fragment.
  F.push_back(0x00);
  F.push_back(O.Ttl);
  F.push_back(IpProtoUdp);
  F.push_back(0x00); // Checksum placeholder.
  F.push_back(0x00);
  F.insert(F.end(), O.SrcIp.begin(), O.SrcIp.end());
  F.insert(F.end(), O.DstIp.begin(), O.DstIp.end());
  uint16_t Ck = internetChecksum(F.data() + IpStart, Ipv4HeaderLen);
  F[IpStart + 10] = uint8_t(Ck >> 8);
  F[IpStart + 11] = uint8_t(Ck & 0xFF);

  // UDP header (checksum 0 = not computed, legal for IPv4).
  uint16_t UdpLen = uint16_t(UdpHeaderLen + Payload.size());
  F.push_back(uint8_t(O.SrcPort >> 8));
  F.push_back(uint8_t(O.SrcPort & 0xFF));
  F.push_back(uint8_t(O.DstPort >> 8));
  F.push_back(uint8_t(O.DstPort & 0xFF));
  F.push_back(uint8_t(UdpLen >> 8));
  F.push_back(uint8_t(UdpLen & 0xFF));
  F.push_back(0x00);
  F.push_back(0x00);

  F.insert(F.end(), Payload.begin(), Payload.end());
  return F;
}

std::vector<uint8_t> b2::devices::buildCommandFrame(bool LightOn,
                                                    const UdpFrameOptions &O) {
  return buildUdpFrame({uint8_t(LightOn ? 1 : 0)}, O);
}

FrameClass b2::devices::classifyFrame(const std::vector<uint8_t> &Frame) {
  FrameClass C;
  if (Frame.size() < MinCmdFrameLen || Frame.size() > MaxFrameLen)
    return C;
  // Ethertype must be IPv4.
  if (Frame[12] != uint8_t(EthertypeIpv4 >> 8) ||
      Frame[13] != uint8_t(EthertypeIpv4 & 0xFF))
    return C;
  // IPv4, header length 5 words, protocol UDP.
  if (Frame[EthHeaderLen] != 0x45)
    return C;
  if (Frame[EthHeaderLen + 9] != IpProtoUdp)
    return C;
  C.Valid = true;
  C.CommandBit = (Frame[CmdOffset] & 1) != 0;
  return C;
}

std::vector<uint8_t> PacketFuzzer::mutate(std::vector<uint8_t> F) {
  switch (Rng.below(8)) {
  case 0: // Truncate below the minimum command length.
    F.resize(Rng.below(MinCmdFrameLen));
    break;
  case 1: // Corrupt the ethertype.
    if (F.size() > 13)
      F[12] ^= uint8_t(1 + Rng.below(255));
    break;
  case 2: // Corrupt the IP version/IHL.
    if (F.size() > EthHeaderLen)
      F[EthHeaderLen] = uint8_t(Rng.next32());
    break;
  case 3: // Wrong transport protocol.
    if (F.size() > EthHeaderLen + 9)
      F[EthHeaderLen + 9] = uint8_t(Rng.below(255));
    break;
  case 4: { // Giant frame (stresses the receive-buffer bound).
    size_t Target = MaxFrameLen + 1 + Rng.below(4096);
    while (F.size() < Target)
      F.push_back(uint8_t(Rng.next32()));
    break;
  }
  case 5: { // Random garbage of arbitrary length.
    F.clear();
    size_t Len = Rng.below(128);
    for (size_t I = 0; I != Len; ++I)
      F.push_back(uint8_t(Rng.next32()));
    break;
  }
  case 6: // Flip random bytes anywhere.
    for (unsigned I = 0, N = unsigned(1 + Rng.below(8)); I != N; ++I)
      if (!F.empty())
        F[Rng.below(F.size())] ^= uint8_t(Rng.next32());
    break;
  default: { // Lie in the IP total-length field.
    if (F.size() > EthHeaderLen + 3) {
      F[EthHeaderLen + 2] = uint8_t(Rng.next32());
      F[EthHeaderLen + 3] = uint8_t(Rng.next32());
    }
    break;
  }
  }
  return F;
}

PacketFuzzer::Generated PacketFuzzer::next() {
  Generated G;
  bool On = Rng.flip();
  std::vector<uint8_t> Valid = buildCommandFrame(On);
  if (Rng.flip()) {
    // Valid command; occasionally with extra payload (still valid).
    if (Rng.chance(1, 4)) {
      std::vector<uint8_t> Payload(1 + Rng.below(64));
      Payload[0] = uint8_t(On ? 1 : 0) | uint8_t(Rng.next32() & 0xFE);
      for (size_t I = 1; I != Payload.size(); ++I)
        Payload[I] = uint8_t(Rng.next32());
      G.Frame = buildUdpFrame(Payload);
    } else {
      G.Frame = Valid;
    }
    return G;
  }
  G.Frame = mutate(std::move(Valid));
  // Some malformed frames additionally arrive with a PHY-level error.
  G.MarkErrored = Rng.chance(1, 6);
  return G;
}
