//===- devices/Net.h - Ethernet/IPv4/UDP frame construction ----*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Frame builders and classifiers for the lightbulb protocol: "read UDP
/// packets from the network interface card and turn the lightbulb on or
/// off depending on the first byte of the received packet" (section 3).
/// Also provides the adversarial frame fuzzer used by the end-to-end
/// checker: "Any unexpected packet, no matter how maliciously malformed at
/// any layer, is ignored."
///
//===----------------------------------------------------------------------===//

#ifndef B2_DEVICES_NET_H
#define B2_DEVICES_NET_H

#include "support/Rng.h"
#include "support/Word.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace b2 {
namespace devices {

using MacAddr = std::array<uint8_t, 6>;
using Ipv4Addr = std::array<uint8_t, 4>;

/// Frame layout constants shared by the driver, the spec, and the tests.
namespace frame {
constexpr unsigned EthHeaderLen = 14;
constexpr unsigned Ipv4HeaderLen = 20;
constexpr unsigned UdpHeaderLen = 8;
/// Offset of the first UDP payload byte — the lightbulb command byte.
constexpr unsigned CmdOffset = EthHeaderLen + Ipv4HeaderLen + UdpHeaderLen;
/// Minimum length of a valid command frame (headers + 1 command byte).
constexpr unsigned MinCmdFrameLen = CmdOffset + 1;
/// Largest frame the driver's receive buffer accepts.
constexpr unsigned MaxFrameLen = 1536;
constexpr uint16_t EthertypeIpv4 = 0x0800;
constexpr uint8_t IpProtoUdp = 17;
} // namespace frame

/// Options for building a well-formed lightbulb command frame.
struct UdpFrameOptions {
  MacAddr DstMac = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  MacAddr SrcMac = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
  Ipv4Addr SrcIp = {10, 0, 0, 2};
  Ipv4Addr DstIp = {10, 0, 0, 1};
  uint16_t SrcPort = 4096;
  uint16_t DstPort = 1560;
  uint8_t Ttl = 64;
};

/// Builds a complete Ethernet+IPv4+UDP frame carrying \p Payload.
std::vector<uint8_t> buildUdpFrame(const std::vector<uint8_t> &Payload,
                                   const UdpFrameOptions &Options = {});

/// Builds a valid lightbulb command frame whose command bit is \p LightOn.
std::vector<uint8_t> buildCommandFrame(bool LightOn,
                                       const UdpFrameOptions &Options = {});

/// The validity judgment the *driver* implements (the "simple (and lax)
/// specification of byte strings accepted as Ethernet and UDP packets",
/// section 3.1): length bounds, IPv4 ethertype, IPv4 version/IHL, and the
/// UDP protocol number. Deliberately does not verify checksums.
struct FrameClass {
  bool Valid = false;
  bool CommandBit = false; ///< Meaningful only when Valid.
};
FrameClass classifyFrame(const std::vector<uint8_t> &Frame);

/// Internet checksum (RFC 1071) over \p Data, for the IPv4 header.
uint16_t internetChecksum(const uint8_t *Data, size_t Len);

/// Adversarial frame generator: produces a mix of valid command frames
/// and malformed variants (truncations, bad ethertypes, wrong protocol,
/// corrupted length fields, giant frames, random garbage).
class PacketFuzzer {
public:
  explicit PacketFuzzer(uint64_t Seed) : Rng(Seed) {}

  struct Generated {
    std::vector<uint8_t> Frame;
    bool MarkErrored = false; ///< Deliver with the RX error-summary bit.
  };

  /// Produces the next frame; roughly half are valid commands.
  Generated next();

private:
  support::Rng Rng;

  std::vector<uint8_t> mutate(std::vector<uint8_t> Frame);
};

} // namespace devices
} // namespace b2

#endif // B2_DEVICES_NET_H
