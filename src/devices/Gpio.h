//===- devices/Gpio.h - GPIO controller and lightbulb ----------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GPIO controller driving the lightbulb power switch (Figure 2). The
/// device records the full history of lightbulb states, which gives the
/// end-to-end tests a *ground truth* to compare against the trace
/// predicates: the light must equal the command bit of the last valid
/// packet, and must never change otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef B2_DEVICES_GPIO_H
#define B2_DEVICES_GPIO_H

#include "devices/MemoryMap.h"
#include "support/Word.h"

#include <cstdint>
#include <vector>

namespace b2 {
namespace devices {

/// FE310-style GPIO block (output path only).
class Gpio {
public:
  static bool claims(Word Addr) {
    return Addr >= GpioBase && Addr < GpioBase + GpioSize;
  }

  Word read(Word Addr) const {
    switch (Addr) {
    case GpioOutputEn:
      return OutputEn;
    case GpioOutputVal:
      return OutputVal;
    case GpioInputVal:
      return 0;
    default:
      return 0;
    }
  }

  void write(Word Addr, Word Value) {
    switch (Addr) {
    case GpioOutputEn:
      OutputEn = Value;
      return;
    case GpioOutputVal: {
      OutputVal = Value;
      bool Light = lightbulbOn();
      // Record transitions only; the bulb starts off, so re-asserting
      // "off" is not a state change.
      if (Light != LastLight) {
        LightHistory.push_back(Light);
        LastLight = Light;
      }
      return;
    }
    default:
      return;
    }
  }

  /// Current physical lightbulb state: pin driven high with output
  /// enabled.
  bool lightbulbOn() const {
    Word Bit = Word(1) << LightbulbPin;
    return (OutputVal & Bit) != 0 && (OutputEn & Bit) != 0;
  }

  /// Distinct lightbulb states over time (ground truth for the
  /// end-to-end checker).
  const std::vector<bool> &lightHistory() const { return LightHistory; }

  // -- Snapshot/restore ------------------------------------------------------

  /// Block checkpoint, including the light-transition ground truth so a
  /// restored run reports the identical history.
  struct Snapshot {
    Word OutputEn;
    Word OutputVal;
    bool LastLight;
    std::vector<bool> LightHistory;
  };

  Snapshot snapshot() const {
    return Snapshot{OutputEn, OutputVal, LastLight, LightHistory};
  }

  void restore(const Snapshot &S) {
    OutputEn = S.OutputEn;
    OutputVal = S.OutputVal;
    LastLight = S.LastLight;
    LightHistory = S.LightHistory;
  }

private:
  Word OutputEn = 0;
  Word OutputVal = 0;
  bool LastLight = false;
  std::vector<bool> LightHistory;
};

} // namespace devices
} // namespace b2

#endif // B2_DEVICES_GPIO_H
