//===- devices/MemoryMap.h - Platform memory map ----------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demo platform's physical address map. The paper "replicated the SPI
/// and GPIO interfaces from the commercial FE310 RISC-V microcontroller"
/// (section 5.1) so that the verified software could also be tested on the
/// real chip; we use the FE310's peripheral base addresses and register
/// offsets for the same reason. RAM occupies low memory starting at 0
/// (boot PC), and the external invariant of section 6.3 — MMIO addresses
/// do not overlap physical memory — holds by construction because every
/// peripheral base is far above any supported RAM size.
///
//===----------------------------------------------------------------------===//

#ifndef B2_DEVICES_MEMORYMAP_H
#define B2_DEVICES_MEMORYMAP_H

#include "support/Word.h"

namespace b2 {
namespace devices {

/// Default BRAM size for the demo system (64 KiB, as on a small FPGA).
constexpr Word DefaultRamBytes = 64 * 1024;

// -- GPIO (FE310 GPIO controller subset) -------------------------------------

constexpr Word GpioBase = 0x10012000;
constexpr Word GpioSize = 0x1000;
constexpr Word GpioInputVal = GpioBase + 0x00;
constexpr Word GpioOutputEn = GpioBase + 0x08;
constexpr Word GpioOutputVal = GpioBase + 0x0C;

/// The lightbulb power switch is driven by GPIO output bit 23 (an
/// arbitrary FE310 pin choice, kept fixed across spec and drivers).
constexpr unsigned LightbulbPin = 23;

// -- SPI (FE310 QSPI1 register layout subset) ---------------------------------

constexpr Word SpiBase = 0x10024000;
constexpr Word SpiSize = 0x1000;
constexpr Word SpiSckDiv = SpiBase + 0x00;
constexpr Word SpiCsId = SpiBase + 0x10;
constexpr Word SpiCsDef = SpiBase + 0x14;
constexpr Word SpiCsMode = SpiBase + 0x18;
constexpr Word SpiTxData = SpiBase + 0x48;
constexpr Word SpiRxData = SpiBase + 0x4C;

/// csmode values (FE310): AUTO deasserts chip select between frames, HOLD
/// keeps it asserted. The LAN9250 driver brackets each SPI transaction
/// with HOLD/AUTO writes, which also delimit transactions for the slave
/// model.
constexpr Word SpiCsModeAuto = 0;
constexpr Word SpiCsModeHold = 2;

/// txdata/rxdata flag bit (bit 31): txdata full / rxdata empty.
constexpr Word SpiFlagBit = 0x80000000u;

/// Returns true iff \p Addr lies in one of the platform's MMIO regions.
/// This is the `isMMIOAddr` side condition the program logic imposes on
/// external calls (section 6.1).
constexpr bool isMmioAddr(Word Addr) {
  return (Addr >= GpioBase && Addr < GpioBase + GpioSize) ||
         (Addr >= SpiBase && Addr < SpiBase + SpiSize);
}

} // namespace devices
} // namespace b2

#endif // B2_DEVICES_MEMORYMAP_H
