//===- devices/Lan9250.h - LAN9250 Ethernet controller model ---*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-level behavioral model of the LAN9250 Ethernet controller as
/// seen over SPI: "The LAN9250 Ethernet controller's API is exposed as a
/// range of SPI-accessible address space where reads and writes to
/// different addresses correspond to different operations" (section 5.1).
///
/// The model implements the subset of the datasheet the lightbulb drivers
/// exercise: the SPI READ (0x03) / FAST READ (0x0B) / WRITE (0x02)
/// commands with 16-bit addresses; BYTE_TEST and HW_CFG for bring-up; the
/// RX status/data FIFO ports; RX_FIFO_INF; and the indirect MAC CSR
/// interface used to enable reception. The network interface card is
/// outside the paper's verified perimeter (section 7.1.2), so a behavioral
/// model preserves the relevant behavior: it drives the same MMIO/SPI code
/// paths in the drivers.
///
/// Frames are injected by the test scenario (devices/Platform.h) and are
/// delivered deterministically as a function of the MMIO access sequence.
///
//===----------------------------------------------------------------------===//

#ifndef B2_DEVICES_LAN9250_H
#define B2_DEVICES_LAN9250_H

#include "devices/Spi.h"
#include "support/Word.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace b2 {
namespace devices {

/// LAN9250 system-register addresses (SPI address space).
namespace lan9250reg {
constexpr Word RxDataFifo = 0x00;
constexpr Word RxStatusFifo = 0x40;
constexpr Word RxStatusPeek = 0x44;
constexpr Word IdRev = 0x50;
constexpr Word IrqCfg = 0x54;
constexpr Word IntSts = 0x58;
constexpr Word IntEn = 0x5C;
constexpr Word ByteTest = 0x64;
constexpr Word FifoInt = 0x68;
constexpr Word RxCfg = 0x6C;
constexpr Word TxCfg = 0x70;
constexpr Word HwCfg = 0x74;
constexpr Word RxFifoInf = 0x7C;
constexpr Word PmtCtrl = 0x84;
constexpr Word MacCsrCmd = 0xA4;
constexpr Word MacCsrData = 0xA8;

constexpr Word ByteTestPattern = 0x87654321;
constexpr Word IdRevValue = 0x92500001;
constexpr Word HwCfgReady = Word(1) << 27;
constexpr Word HwCfgMbo = Word(1) << 20;
constexpr Word MacCsrBusy = Word(1) << 31;
constexpr Word MacCsrRead = Word(1) << 30;
/// MAC_CR indirect register index and its receiver/transmitter enables.
constexpr Word MacCrIndex = 1;
constexpr Word MacCrRxEn = Word(1) << 2;
constexpr Word MacCrTxEn = Word(1) << 3;
/// RX status word fields.
constexpr unsigned RxStsLengthShift = 16;
constexpr Word RxStsLengthMask = 0x3FFF;
constexpr Word RxStsErrorSummary = Word(1) << 15;
} // namespace lan9250reg

/// The Ethernet controller model (an SpiSlave).
class Lan9250 final : public SpiSlave {
public:
  struct Config {
    /// Number of HW_CFG reads that report not-READY after power-on,
    /// exercising the driver's bring-up polling loop.
    unsigned NotReadyPolls = 2;
    /// Maximum frames buffered; further injections are dropped (real
    /// hardware drops on FIFO overflow too).
    unsigned MaxBufferedFrames = 8;
  };

  Lan9250();
  explicit Lan9250(const Config &C);

  // -- SpiSlave interface ----------------------------------------------------

  void csAssert() override;
  void csRelease() override;
  uint8_t exchange(uint8_t Mosi) override;

  // -- Scenario interface ------------------------------------------------------

  /// Delivers a frame to the RX FIFO. \p Errored marks it with the
  /// error-summary bit in its status word (models a CRC-failed frame).
  /// Returns false (dropping the frame) when RX is disabled or the FIFO
  /// is full, as real hardware would.
  bool injectFrame(std::vector<uint8_t> Frame, bool Errored = false);

  /// True once the driver has enabled reception via MAC_CR.
  bool rxEnabled() const;

  /// Frames currently buffered (tests).
  size_t bufferedFrames() const { return RxQueue.size(); }

private:
  /// SPI transaction decoding state machine.
  enum class SpiState : uint8_t {
    Idle,
    Cmd,
    AddrHi,
    AddrLo,
    FastReadDummy,
    ReadData,
    WriteData,
  };

  struct PendingFrame {
    std::vector<uint8_t> Data;
    bool Errored = false;
    bool StatusConsumed = false;
    Word ReadOffset = 0;
  };

  Config Cfg;
  SpiState State = SpiState::Idle;
  uint8_t Command = 0;
  Word Address = 0;
  Word Assembly = 0;     ///< Bytes being collected for a register write.
  unsigned ByteCount = 0;///< Bytes consumed/produced in the data phase.
  Word ReadLatch = 0;    ///< Register value being shifted out.

  std::unordered_map<Word, Word> Regs; ///< Plain writable registers.
  Word MacRegs[16] = {};
  Word MacCsrDataReg = 0;
  unsigned NotReadyLeft;
  std::deque<PendingFrame> RxQueue;
  /// Carrier for the seeded dev-lan-rx-cross-frame-latch fault: set once
  /// an ON command frame is accepted. Architectural state (it persists
  /// across frames by design of the bug), so it snapshots like any latch.
  bool CrossFrameOnSeen = false;

  Word readRegister(Word Addr);
  void writeRegister(Word Addr, Word Value);
  Word popRxData();
  Word popRxStatus();
  Word rxFifoInf() const;
  Word statusWordFor(const PendingFrame &F) const;
  static Word paddedLen(Word Bytes) { return (Bytes + 3) & ~Word(3); }

public:
  // -- Snapshot/restore ------------------------------------------------------

  /// Controller checkpoint: the SPI transaction state machine, register
  /// file, MAC CSR block, bring-up countdown, and the buffered RX frames
  /// with their read cursors. All plain values — a copy is exact.
  struct Snapshot {
    SpiState State;
    uint8_t Command;
    Word Address;
    Word Assembly;
    unsigned ByteCount;
    Word ReadLatch;
    std::unordered_map<Word, Word> Regs;
    Word MacRegs[16];
    Word MacCsrDataReg;
    unsigned NotReadyLeft;
    std::deque<PendingFrame> RxQueue;
    bool CrossFrameOnSeen;
  };

  Snapshot snapshot() const;
  void restore(const Snapshot &S);
};

} // namespace devices
} // namespace b2

#endif // B2_DEVICES_LAN9250_H
