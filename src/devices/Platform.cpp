//===- devices/Platform.cpp - MMIO bus and demo platform -------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "devices/Platform.h"

#include <algorithm>
#include <cassert>

using namespace b2;
using namespace b2::devices;

Platform::Platform(const SpiConfig &SpiCfg, const Lan9250::Config &LanCfg)
    : Nic(LanCfg), SpiCtrl(Nic, SpiCfg) {}

void Platform::scheduleFrame(uint64_t AtOp, std::vector<uint8_t> Frame,
                             bool Errored) {
  assert((Pending.empty() || Pending.back().AtOp <= AtOp) &&
         "frames must be scheduled in arrival order");
  Pending.push_back(ScheduledFrame{AtOp, std::move(Frame), Errored});
}

void Platform::deliverDue() {
  while (NextPending < Pending.size() &&
         Pending[NextPending].AtOp <= OpCount) {
    ScheduledFrame &F = Pending[NextPending];
    if (Nic.injectFrame(F.Frame, F.Errored))
      Accepted_.push_back(F);
    ++NextPending;
  }
}

Word Platform::load(Word Addr, unsigned Size) {
  (void)Size;
  ++OpCount;
  deliverDue();
  if (Spi::claims(Addr))
    return SpiCtrl.read(Addr);
  if (Gpio::claims(Addr))
    return GpioBlock.read(Addr);
  return 0;
}

void Platform::store(Word Addr, unsigned Size, Word Value) {
  (void)Size;
  ++OpCount;
  deliverDue();
  if (Spi::claims(Addr)) {
    SpiCtrl.write(Addr, Value);
    return;
  }
  if (Gpio::claims(Addr)) {
    GpioBlock.write(Addr, Value);
    return;
  }
}

Platform::Snapshot Platform::snapshot() {
  Snapshot S;
  S.Nic = Nic.snapshot();
  S.SpiCtrl = SpiCtrl.snapshot();
  S.GpioBlock = GpioBlock.snapshot();
  S.OpCount = OpCount;
  S.Pending = Pending;
  S.NextPending = NextPending;
  S.Accepted = AcceptedChain.snapshot(Accepted_);
  return S;
}

void Platform::restore(const Snapshot &S) {
  Nic.restore(S.Nic);
  SpiCtrl.restore(S.SpiCtrl);
  GpioBlock.restore(S.GpioBlock);
  OpCount = S.OpCount;
  Pending = S.Pending;
  NextPending = S.NextPending;
  AcceptedChain.restore(Accepted_, S.Accepted);
}
