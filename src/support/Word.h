//===- support/Word.h - 32-bit word arithmetic helpers ---------*- C++ -*-===//
//
// Part of the b2stack project: a C++ reproduction of "Integration
// Verification across Software and Hardware for a Simple Embedded System"
// (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine words and the bit-manipulation helpers shared by the ISA
/// semantics, the Kami-style processor models, and the compiler. All of the
/// simulated stack is 32-bit (RV32), matching the paper's demo.
///
//===----------------------------------------------------------------------===//

#ifndef B2_SUPPORT_WORD_H
#define B2_SUPPORT_WORD_H

#include <cassert>
#include <cstdint>

namespace b2 {

/// The machine word of the simulated platform (RV32).
using Word = uint32_t;

/// Signed view of a machine word, used by arithmetic that is defined on
/// two's-complement values (slt, sra, div, rem, ...).
using SWord = int32_t;

/// Double-width word for widening multiplies.
using DWord = uint64_t;
using SDWord = int64_t;

namespace support {

/// Extracts the bit field [Lo, Hi] (inclusive on both ends) of \p Value.
constexpr Word bits(Word Value, unsigned Hi, unsigned Lo) {
  assert(Hi >= Lo && Hi < 32 && "bit range out of order");
  Word Width = Hi - Lo + 1;
  Word Mask = Width >= 32 ? ~Word(0) : ((Word(1) << Width) - 1);
  return (Value >> Lo) & Mask;
}

/// Extracts a single bit of \p Value as 0 or 1.
constexpr Word bit(Word Value, unsigned Index) {
  assert(Index < 32 && "bit index out of range");
  return (Value >> Index) & 1;
}

/// Sign-extends the low \p Width bits of \p Value to a full word.
constexpr Word signExtend(Word Value, unsigned Width) {
  assert(Width >= 1 && Width <= 32 && "invalid sign-extension width");
  if (Width == 32)
    return Value;
  Word SignBit = Word(1) << (Width - 1);
  Word Mask = (Word(1) << Width) - 1;
  Value &= Mask;
  return (Value ^ SignBit) - SignBit;
}

/// Returns true iff \p Value fits in a signed immediate of \p Width bits.
constexpr bool fitsSigned(SWord Value, unsigned Width) {
  assert(Width >= 1 && Width < 32 && "invalid immediate width");
  SWord Lo = -(SWord(1) << (Width - 1));
  SWord Hi = (SWord(1) << (Width - 1)) - 1;
  return Value >= Lo && Value <= Hi;
}

/// Returns true iff \p Addr is aligned to \p Size bytes (a power of two).
constexpr bool isAligned(Word Addr, Word Size) {
  assert((Size & (Size - 1)) == 0 && "alignment must be a power of two");
  return (Addr & (Size - 1)) == 0;
}

/// RISC-V division semantics: division by zero yields all ones. The
/// Bedrock2 source semantics leave division by zero unspecified, but the
/// compiler is allowed to assume the RISC-V behavior (paper footnote 3).
constexpr Word divu(Word A, Word B) { return B == 0 ? ~Word(0) : A / B; }

/// RISC-V remainder semantics: remainder by zero yields the dividend.
constexpr Word remu(Word A, Word B) { return B == 0 ? A : A % B; }

/// Signed RISC-V division: by zero yields -1; overflow (INT_MIN / -1)
/// yields INT_MIN.
constexpr Word divs(Word A, Word B) {
  if (B == 0)
    return ~Word(0);
  if (A == 0x80000000u && B == ~Word(0))
    return A;
  return Word(SWord(A) / SWord(B));
}

/// Signed RISC-V remainder: by zero yields the dividend; overflow yields 0.
constexpr Word rems(Word A, Word B) {
  if (B == 0)
    return A;
  if (A == 0x80000000u && B == ~Word(0))
    return 0;
  return Word(SWord(A) % SWord(B));
}

/// Upper 32 bits of the unsigned 64-bit product (mulhu).
constexpr Word mulhuu(Word A, Word B) {
  return Word((DWord(A) * DWord(B)) >> 32);
}

/// Logical shifts mask the shift amount to 5 bits, as RISC-V does.
constexpr Word shiftL(Word A, Word B) { return A << (B & 31); }
constexpr Word shiftRL(Word A, Word B) { return A >> (B & 31); }
constexpr Word shiftRA(Word A, Word B) {
  // Implementation-defined-free arithmetic shift right.
  Word Shift = B & 31;
  if (Shift == 0)
    return A;
  Word Logical = A >> Shift;
  if (SWord(A) < 0)
    Logical |= ~Word(0) << (32 - Shift);
  return Logical;
}

} // namespace support
} // namespace b2

#endif // B2_SUPPORT_WORD_H
