//===- support/Metrics.cpp - Fleet-wide metrics registry --------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Json.h"

#include <chrono>
#include <mutex>
#include <vector>

using namespace b2;
using namespace b2::metrics;

uint64_t b2::metrics::nowNs() {
  using namespace std::chrono;
  return uint64_t(
      duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
          .count());
}

bool Snapshot::deterministicEquals(const Snapshot &O) const {
  for (size_t I = 0; I != NumIds; ++I) {
    if (Table[I].S != Scope::Det)
      continue;
    size_t Slot = detail::Slots[I];
    if (detail::isScalar(Table[I].K)) {
      if (Counters[Slot] != O.Counters[Slot])
        return false;
    } else {
      if (!(Hists[Slot] == O.Hists[Slot]))
        return false;
    }
  }
  return true;
}

#if B2_METRICS

namespace {

/// The global registry: every live thread-local sheet plus the merged
/// totals of threads that have exited. The mutex guards only the sheet
/// list and the graveyard — never the hot recording path.
struct Registry {
  std::mutex Mu;
  std::vector<Snapshot *> Live;
  Snapshot Graveyard;
};

Registry &registry() {
  static Registry *R = new Registry; // Leaked: outlives late thread exits.
  return *R;
}

/// Per-thread sheet holder: registers on first use, folds into the
/// graveyard on thread exit so no recorded value is ever lost.
struct TlsSheet {
  Snapshot S;
  TlsSheet() {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    R.Live.push_back(&S);
  }
  ~TlsSheet() {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    R.Graveyard.merge(S);
    for (size_t I = 0; I != R.Live.size(); ++I)
      if (R.Live[I] == &S) {
        R.Live.erase(R.Live.begin() + I);
        break;
      }
  }
};

} // namespace

std::atomic<bool> detail::EnabledFlag{true};
thread_local uint32_t detail::PauseDepth = 0;
thread_local Snapshot *detail::SheetPtr = nullptr;

Snapshot &detail::acquireSheet() {
  static thread_local TlsSheet Sheet;
  SheetPtr = &Sheet.S;
  return Sheet.S;
}

bool b2::metrics::enabledSlow() { return enabled(); }

void b2::metrics::setEnabled(bool On) {
  detail::EnabledFlag.store(On, std::memory_order_relaxed);
}

Snapshot b2::metrics::snapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Snapshot Out = R.Graveyard;
  for (const Snapshot *S : R.Live)
    Out.merge(*S);
  return Out;
}

void b2::metrics::resetAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Graveyard = Snapshot();
  for (Snapshot *S : R.Live)
    *S = Snapshot();
}

#else // !B2_METRICS

bool b2::metrics::enabledSlow() { return false; }
void b2::metrics::setEnabled(bool) {}
Snapshot b2::metrics::snapshot() { return Snapshot(); }
void b2::metrics::resetAll() {}

#endif // B2_METRICS

namespace {

void emitHist(support::JsonWriter &J, const HistData &H) {
  J.beginObject();
  J.key("count").value(H.Count);
  J.key("sum").value(H.Sum);
  J.key("buckets").beginArray();
  for (uint64_t B : H.Buckets)
    J.value(B);
  J.endArray();
  J.endObject();
}

} // namespace

std::string b2::metrics::metricsJson(const Snapshot &S,
                                     const std::string &Tool) {
  support::JsonWriter J;
  J.beginObject();
  J.key("schema").value("b2stack-metrics-v1");
  J.key("tool").value(Tool);
  J.key("compiled_in").value(bool(B2_METRICS));

  // Deterministic section: bit-identical at any thread count (the CI
  // determinism checks compare exactly this subtree).
  J.key("deterministic").beginObject();
  J.key("counters").beginObject();
  for (size_t I = 0; I != NumIds; ++I)
    if (Table[I].S == Scope::Det && detail::isScalar(Table[I].K))
      J.key(Table[I].Name).value(S.Counters[detail::Slots[I]]);
  J.endObject();
  J.key("histograms").beginObject();
  for (size_t I = 0; I != NumIds; ++I)
    if (Table[I].S == Scope::Det && !detail::isScalar(Table[I].K)) {
      J.key(Table[I].Name);
      emitHist(J, S.Hists[detail::Slots[I]]);
    }
  J.endObject();
  J.endObject();

  // Nondeterministic section: wall-clock timers and thread-local cache
  // behavior. Reported for observability, never compared bit-for-bit.
  J.key("nondeterministic").beginObject();
  J.key("counters").beginObject();
  for (size_t I = 0; I != NumIds; ++I)
    if (Table[I].S == Scope::Nondet && detail::isScalar(Table[I].K))
      J.key(Table[I].Name).value(S.Counters[detail::Slots[I]]);
  J.endObject();
  J.key("timers_ns").beginObject();
  for (size_t I = 0; I != NumIds; ++I)
    if (Table[I].S == Scope::Nondet && !detail::isScalar(Table[I].K)) {
      J.key(Table[I].Name);
      emitHist(J, S.Hists[detail::Slots[I]]);
    }
  J.endObject();
  J.endObject();

  J.endObject();
  return J.str();
}

bool b2::metrics::writeMetricsFile(const std::string &Path,
                                   const std::string &Tool) {
  return support::writeFile(Path, metricsJson(snapshot(), Tool));
}
