//===- support/Rng.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic RNG (xoshiro-style) used by the property tests,
/// the packet fuzzer, and the randomized differential checkers. We avoid
/// <random> so that all test inputs are bit-reproducible across standard
/// library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef B2_SUPPORT_RNG_H
#define B2_SUPPORT_RNG_H

#include "support/Word.h"

#include <cstdint>

namespace b2 {
namespace support {

/// Deterministic splitmix64/xorshift generator with convenience helpers.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}

  /// Next raw 64-bit value (splitmix64).
  uint64_t next64() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Next 32-bit value.
  Word next32() { return Word(next64() >> 32); }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next64() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    return Lo + below(Hi - Lo + 1);
  }

  /// Fair coin.
  bool flip() { return (next64() & 1) != 0; }

  /// Biased coin: true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  /// A word that is "interesting" for arithmetic edge cases: small values,
  /// values near powers of two, and all-ones patterns appear often.
  Word interestingWord() {
    switch (below(8)) {
    case 0:
      return Word(below(8));
    case 1:
      return ~Word(0) - Word(below(4));
    case 2:
      return (Word(1) << below(32)) - Word(below(2));
    case 3:
      return 0x80000000u + Word(below(4)) - 2;
    default:
      return next32();
    }
  }

private:
  uint64_t State;
};

} // namespace support
} // namespace b2

#endif // B2_SUPPORT_RNG_H
