//===- support/Metrics.h - Fleet-wide metrics registry ---------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead, thread-shardable counter/timer/histogram registry for
/// the whole verification fleet. Every worker thread accumulates into a
/// private thread-local sheet (no locks, no atomics on the hot path);
/// snapshot() merges all sheets — live threads plus a graveyard of
/// exited ones — by plain uint64 addition, which is commutative and
/// associative, so merged totals are bit-identical at any thread count
/// as long as the per-thread *work* partition is deterministic (the
/// fleet's existing contract: shards are pure functions of their index
/// and seed).
///
/// Metrics carry a determinism scope in their static descriptor:
///
///  * Det    — totals depend only on the work performed, never on the
///             thread count or scheduling. These back the bit-identity
///             acceptance checks and the CI trend gates.
///  * Nondet — wall-clock timers and anything keyed to thread-local
///             caches (warm-boot hits). Reported for observability,
///             excluded from every determinism comparison.
///
/// Hot-loop discipline: the per-instruction engines never call add()
/// per event. They keep accumulating into their existing local stats
/// structs and publish *deltas* at chunk/run boundaries, so the
/// instrumentation costs a handful of thread-local additions per
/// 100k-cycle chunk (<2% on the sim_throughput Block rows, gated by the
/// bench). The whole layer compiles out under -DMETRICS=OFF (cmake),
/// which defines B2_METRICS=0.
///
//===----------------------------------------------------------------------===//

#ifndef B2_SUPPORT_METRICS_H
#define B2_SUPPORT_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

#ifndef B2_METRICS
#define B2_METRICS 1
#endif

namespace b2 {
namespace metrics {

/// The full metric table: symbol, stable dotted name (layer.subsystem
/// .what — the taxonomy DESIGN.md documents), storage kind, determinism
/// scope. Counters are scalar uint64; Timer and Hist carry a 32-bucket
/// log2 histogram plus count and sum (Timer values are nanoseconds and
/// always Nondet).
#define B2_METRIC_LIST(X)                                                      \
  /* riscv: predecode cache */                                                 \
  X(SimDecodeHits, "sim.decode.hits", Counter, Det)                            \
  X(SimDecodeMisses, "sim.decode.misses", Counter, Det)                        \
  X(SimDecodeInvalidations, "sim.decode.invalidations", Counter, Det)          \
  /* riscv: superblock trace engine */                                         \
  X(SimBlockTranslations, "sim.block.translations", Counter, Det)              \
  X(SimBlockKilled, "sim.block.blocks_killed", Counter, Det)                   \
  X(SimBlockFlushes, "sim.block.flushes", Counter, Det)                        \
  X(SimBlockTraceInstrs, "sim.block.trace_instrs", Counter, Det)               \
  X(SimBlockColdInstrs, "sim.block.cold_instrs", Counter, Det)                 \
  X(SimBlockSideExits, "sim.block.side_exits", Counter, Det)                   \
  X(SimBlockSideExitUntranslated, "sim.block.side_exit.untranslated",          \
    Counter, Det)                                                              \
  X(SimBlockSideExitMemGuard, "sim.block.side_exit.mem_guard", Counter, Det)   \
  X(SimBlockSideExitKilled, "sim.block.side_exit.killed", Counter, Det)        \
  X(SimBlockLinkHits, "sim.block.link_hits", Counter, Det)                     \
  X(SimBlockLinkMisses, "sim.block.link_misses", Counter, Det)                 \
  X(SimBlockMmioInline, "sim.block.mmio_inline", Counter, Det)                 \
  X(SimBlockFusedRetired, "sim.block.fused_retired", Counter, Det)             \
  X(SimBlockInvalProbes, "sim.block.inval_probes", Counter, Det)               \
  X(SimBlockWeight, "sim.block.block_weight", Hist, Det)                       \
  /* bedrock2: bytecode interpreter */                                         \
  X(InterpCompileFns, "interp.compile.functions", Counter, Det)                \
  X(InterpCompileInsnsIn, "interp.compile.insns_in", Counter, Det)             \
  X(InterpCompileInsnsOut, "interp.compile.insns_out", Counter, Det)           \
  X(InterpFuseHits, "interp.fuse.hits", Counter, Det)                          \
  X(InterpFuseLoopHeads, "interp.fuse.loop_heads", Counter, Det)               \
  X(InterpExecRuns, "interp.exec.runs", Counter, Det)                          \
  X(InterpExecSteps, "interp.exec.steps", Counter, Det)                        \
  /* traffic: soak harness + streaming monitor */                              \
  X(SoakShards, "soak.shards.run", Counter, Det)                               \
  X(SoakFramesDelivered, "soak.frames.delivered", Counter, Det)                \
  X(SoakFramesAccepted, "soak.frames.accepted", Counter, Det)                  \
  X(SoakFramesDropped, "soak.frames.dropped", Counter, Det)                    \
  X(SoakValidCommands, "soak.commands.valid", Counter, Det)                    \
  X(SoakMmioEvents, "soak.mmio.events", Counter, Det)                          \
  X(SoakMonitorEvents, "soak.monitor.events", Counter, Det)                    \
  X(SoakFifoStalls, "soak.fifo.stalls", Counter, Det)                          \
  X(SoakMonitorFrontier, "soak.monitor.frontier", Hist, Det)                   \
  /* traffic: shrink oracle + checkpoint layer */                              \
  X(ShrinkOracleRuns, "shrink.oracle.runs", Counter, Det)                      \
  X(ShrinkOracleResumed, "shrink.oracle.resumed", Counter, Det)                \
  X(ShrinkCyclesSimulated, "shrink.oracle.cycles_simulated", Counter, Det)     \
  X(ShrinkCyclesSkipped, "shrink.oracle.cycles_skipped", Counter, Det)         \
  X(ShrinkCheckpoints, "shrink.oracle.checkpoints", Counter, Det)              \
  X(ShrinkPrimeRuns, "shrink.oracle.prime_runs", Counter, Det)                 \
  X(ShrinkPrimeCycles, "shrink.oracle.prime_cycles", Counter, Det)             \
  X(CkptSnapshots, "ckpt.snapshots", Counter, Nondet)                          \
  X(CkptRestores, "ckpt.restores", Counter, Nondet)                            \
  X(CkptBytesCopied, "ckpt.bytes_copied", Counter, Nondet)                     \
  X(CkptBootHits, "ckpt.bootcache.hits", Counter, Nondet)                      \
  X(CkptBootMisses, "ckpt.bootcache.misses", Counter, Nondet)                  \
  /* verify: fleets + adequacy campaign */                                     \
  X(VerifyShards, "verify.shards.run", Counter, Det)                           \
  X(AdequacyCells, "adequacy.cells.run", Counter, Det)                         \
  X(AdequacyKills, "adequacy.cells.killed", Counter, Det)                      \
  /* vc: symbolic VC engine */                                                 \
  X(VcFuncsChecked, "vc.funcs.checked", Counter, Det)                          \
  X(VcVcsGenerated, "vc.vcs.generated", Counter, Det)                          \
  X(VcDagNodes, "vc.dag.nodes", Counter, Det)                                  \
  X(VcClauses, "vc.solver.clauses", Counter, Det)                              \
  X(VcConflicts, "vc.solver.conflicts", Counter, Det)                          \
  X(VcDecisions, "vc.solver.decisions", Counter, Det)                          \
  X(VcValid, "vc.verdict.valid", Counter, Det)                                 \
  X(VcUnknown, "vc.verdict.unknown", Counter, Det)                             \
  X(VcReplayConfirmed, "vc.replay.confirmed", Counter, Det)                    \
  X(VcReplayUnconfirmed, "vc.replay.unconfirmed", Counter, Det)                \
  /* vc: staged discharge pipeline */                                          \
  X(VcTierIntervalKills, "vc.tier.interval_kills", Counter, Det)               \
  X(VcTierRewriteKills, "vc.tier.rewrite_kills", Counter, Det)                 \
  X(VcCacheHits, "vc.cache.hits", Counter, Det)                                \
  X(VcCacheMisses, "vc.cache.misses", Counter, Det)                            \
  X(VcSliceDropped, "vc.slice.dropped_assumes", Counter, Det)                  \
  X(VcIncrementalProved, "vc.solver.incremental_proved", Counter, Det)         \
  X(VcColdSolves, "vc.solver.cold_solves", Counter, Det)                       \
  X(VcDiffMismatches, "vc.diff.mismatches", Counter, Det)                      \
  X(VerifyShardWall, "verify.shard.wall_ns", Timer, Nondet)                    \
  X(AdequacyCellWall, "adequacy.cell.wall_ns", Timer, Nondet)                  \
  X(SoakShardWall, "soak.shard.wall_ns", Timer, Nondet)

enum class Id : uint16_t {
#define B2_METRIC_X(Sym, Name, K, S) Sym,
  B2_METRIC_LIST(B2_METRIC_X)
#undef B2_METRIC_X
  NumIds
};

enum class Kind : uint8_t { Counter, Timer, Hist };
enum class Scope : uint8_t { Det, Nondet };

inline constexpr size_t NumIds = size_t(Id::NumIds);

struct Desc {
  const char *Name;
  Kind K;
  Scope S;
};

inline constexpr Desc Table[NumIds] = {
#define B2_METRIC_X(Sym, Name, K, S) {Name, Kind::K, Scope::S},
    B2_METRIC_LIST(B2_METRIC_X)
#undef B2_METRIC_X
};

inline constexpr const Desc &desc(Id I) { return Table[size_t(I)]; }

namespace detail {

constexpr bool isScalar(Kind K) { return K == Kind::Counter; }

/// Id -> slot within its storage class (scalar counters in one array,
/// timer/hist buckets in another).
inline constexpr auto Slots = [] {
  std::array<uint16_t, NumIds> A{};
  uint16_t C = 0, H = 0;
  for (size_t I = 0; I != NumIds; ++I)
    A[I] = isScalar(Table[I].K) ? C++ : H++;
  return A;
}();

inline constexpr size_t NumCounters = [] {
  size_t N = 0;
  for (const Desc &D : Table)
    if (isScalar(D.K))
      ++N;
  return N;
}();

inline constexpr size_t NumHists = NumIds - NumCounters;

} // namespace detail

/// 32-bucket log2 histogram: bucket i counts values in [2^i, 2^(i+1)),
/// value 0 lands in bucket 0, values >= 2^31 saturate into bucket 31.
/// Count and Sum are exact regardless of bucketing.
struct HistData {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  std::array<uint64_t, 32> Buckets{};

  static unsigned bucketOf(uint64_t V) {
    if (V == 0)
      return 0;
    unsigned B = unsigned(std::bit_width(V)) - 1;
    return B > 31 ? 31 : B;
  }

  void record(uint64_t V) {
    ++Count;
    Sum += V;
    ++Buckets[bucketOf(V)];
  }

  void merge(const HistData &O) {
    Count += O.Count;
    Sum += O.Sum;
    for (size_t I = 0; I != Buckets.size(); ++I)
      Buckets[I] += O.Buckets[I];
  }

  bool operator==(const HistData &) const = default;
};

/// One accumulation sheet: the storage unit of both the thread-local
/// accumulators and the merged snapshot. Merging is pure addition, so
/// the merge order never changes the result.
struct Snapshot {
  std::array<uint64_t, detail::NumCounters> Counters{};
  std::array<HistData, detail::NumHists> Hists{};

  uint64_t counter(Id I) const { return Counters[detail::Slots[size_t(I)]]; }
  const HistData &hist(Id I) const {
    return Hists[detail::Slots[size_t(I)]];
  }

  void merge(const Snapshot &O) {
    for (size_t I = 0; I != Counters.size(); ++I)
      Counters[I] += O.Counters[I];
    for (size_t I = 0; I != Hists.size(); ++I)
      Hists[I].merge(O.Hists[I]);
  }

  /// Equality over the Det-scoped metrics only — the thread-count
  /// determinism contract. Nondet counters and all timers are ignored.
  bool deterministicEquals(const Snapshot &O) const;

  bool operator==(const Snapshot &) const = default;
};

/// Runtime kill-switch (default on). The bench overhead gate measures
/// the enabled-vs-disabled delta through this; disabling also freezes
/// the sheets so a measurement loop sees zero instrumentation writes.
bool enabledSlow();
void setEnabled(bool On);

/// Merged totals across every thread that ever recorded (exited threads
/// are folded into a graveyard on exit). Safe to call concurrently with
/// recording, but only quiescent-point snapshots are meaningful.
Snapshot snapshot();

/// Zeroes every live sheet and the graveyard. Call at a quiescent point
/// (no worker threads recording) — typically right before the measured
/// run whose metrics should stand alone.
void resetAll();

#if B2_METRICS

namespace detail {
extern std::atomic<bool> EnabledFlag;
extern thread_local uint32_t PauseDepth;
extern thread_local Snapshot *SheetPtr;
Snapshot &acquireSheet();
inline Snapshot &localSheet() {
  return SheetPtr ? *SheetPtr : acquireSheet();
}
} // namespace detail

inline bool enabled() {
  return detail::EnabledFlag.load(std::memory_order_relaxed);
}

/// Counter increment (Kind::Counter ids only).
inline void add(Id I, uint64_t N = 1) {
  if (!enabled() || detail::PauseDepth != 0)
    return;
  detail::localSheet().Counters[detail::Slots[size_t(I)]] += N;
}

/// Histogram/timer sample (Kind::Hist and Kind::Timer ids).
inline void record(Id I, uint64_t V) {
  if (!enabled() || detail::PauseDepth != 0)
    return;
  detail::localSheet().Hists[detail::Slots[size_t(I)]].record(V);
}

/// Suppresses recording on this thread for the scope's lifetime. Used
/// around cache-management work whose execution count depends on the
/// thread count (warm-boot capture), so Det metrics describe only the
/// deterministic per-shard work.
class PauseScope {
public:
  PauseScope() { ++detail::PauseDepth; }
  ~PauseScope() { --detail::PauseDepth; }
  PauseScope(const PauseScope &) = delete;
  PauseScope &operator=(const PauseScope &) = delete;
};

#else // !B2_METRICS

inline bool enabled() { return false; }
inline void add(Id, uint64_t = 1) {}
inline void record(Id, uint64_t) {}
class PauseScope {
public:
  PauseScope() {}
  ~PauseScope() {}
  PauseScope(const PauseScope &) = delete;
  PauseScope &operator=(const PauseScope &) = delete;
};

#endif // B2_METRICS

/// Monotonic wall clock in nanoseconds (for Timed and ad-hoc timing).
uint64_t nowNs();

/// Scoped wall-clock timer feeding a Kind::Timer metric.
class Timed {
public:
  explicit Timed(Id I) : I(I), Start(enabled() ? nowNs() : 0) {}
  ~Timed() {
    if (Start != 0)
      record(I, nowNs() - Start);
  }
  Timed(const Timed &) = delete;
  Timed &operator=(const Timed &) = delete;

private:
  Id I;
  uint64_t Start;
};

/// Renders \p S under schema b2stack-metrics-v1: Det-scoped metrics
/// under "deterministic" (bit-identical at any thread count), the rest
/// under "nondeterministic". Every registered metric appears, zeros
/// included, so two files always have the same key set.
std::string metricsJson(const Snapshot &S, const std::string &Tool);

/// snapshot() + metricsJson + support::writeFile. Returns false on I/O
/// failure.
bool writeMetricsFile(const std::string &Path, const std::string &Tool);

} // namespace metrics
} // namespace b2

#endif // B2_SUPPORT_METRICS_H
