//===- support/Snapshot.h - Copy-on-write snapshot primitives --*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Building blocks for the whole-machine checkpoint/restore layer.
///
/// CowTracker<T> snapshots a large std::vector<T> (RAM, BRAM, decode
/// cache) in O(dirty pages): the tracked vector is divided into
/// fixed-size pages, mutation sites call markDirty, and snapshot()
/// materializes immutable shared pages only for the dirty ones, reusing
/// the clean base pages by pointer. restore() copies back only the pages
/// that differ from the machine's current base, and reports which ones
/// it touched so callers can fix up derived state (e.g. predecode
/// lines).
///
/// ChainTracker<T> snapshots an append-only vector (MMIO traces, label
/// traces, accepted-frame logs) as a delta chain: each snapshot node
/// stores just the elements appended since its parent, so a snapshot is
/// O(delta) and restore walks to the pointer-identical common ancestor
/// and replays the path. Both are single-threaded by design — each soak
/// shard owns its machine outright.
///
//===----------------------------------------------------------------------===//

#ifndef B2_SUPPORT_SNAPSHOT_H
#define B2_SUPPORT_SNAPSHOT_H

#include "support/Metrics.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace b2 {
namespace support {

/// Paged copy-on-write tracker for one std::vector<T> owned elsewhere.
///
/// Contract: every mutation of the tracked vector between tracker
/// operations is reported via markDirty/markDirtyRange (element
/// granularity; over-approximation is fine, under-approximation is
/// not). The vector's size must not change between snapshot() and
/// restore() of the same lineage.
template <typename T> class CowTracker {
public:
  /// ~4 KiB pages, at least one element each.
  static constexpr size_t PageElems =
      sizeof(T) >= 4096 ? 1 : 4096 / sizeof(T);

  using Page = std::shared_ptr<const std::vector<T>>;

  /// An immutable snapshot: one shared page per PageElems-sized slice.
  struct Snap {
    std::vector<Page> Pages;
    size_t Size = 0;
  };

  /// Marks the page holding element \p Index dirty.
  void markDirty(size_t Index) {
    size_t P = Index / PageElems;
    if (P >= PageCount)
      growTo(P + 1);
    // Test first: hot loops re-dirty the same pages, and skipping the
    // redundant read-modify-write keeps the bitmap line clean.
    uint64_t Bit = uint64_t(1) << (P & 63);
    if (!(Dirty[P >> 6] & Bit))
      Dirty[P >> 6] |= Bit;
  }

  /// Marks every page overlapping [\p Lo, \p Hi) dirty. No-op when the
  /// range is empty.
  void markDirtyRange(size_t Lo, size_t Hi) {
    if (Lo >= Hi)
      return;
    size_t First = Lo / PageElems, Last = (Hi - 1) / PageElems;
    if (Last >= PageCount)
      growTo(Last + 1);
    for (size_t P = First; P <= Last; ++P)
      Dirty[P >> 6] |= uint64_t(1) << (P & 63);
  }

  /// Captures \p Data. Clean pages are shared with the previous
  /// snapshot; only dirty or never-snapshotted pages are copied. The
  /// tracker rebases on the result, so a subsequent snapshot with no
  /// intervening writes is all pointer reuse.
  Snap snapshot(const std::vector<T> &Data) {
    size_t N = pagesFor(Data.size());
    if (N > PageCount)
      growTo(N);
    Snap S;
    S.Size = Data.size();
    S.Pages.resize(N);
    uint64_t Copied = 0;
    for (size_t P = 0; P != N; ++P) {
      if (P < Base.size() && Base[P] && !isDirty(P) &&
          Base[P]->size() == sliceLen(Data.size(), P)) {
        S.Pages[P] = Base[P];
        continue;
      }
      size_t Lo = P * PageElems;
      S.Pages[P] = std::make_shared<const std::vector<T>>(
          Data.begin() + Lo, Data.begin() + Lo + sliceLen(Data.size(), P));
      Copied += sliceLen(Data.size(), P) * sizeof(T);
    }
    metrics::add(metrics::Id::CkptBytesCopied, Copied);
    Base = S.Pages;
    clearDirty();
    return S;
  }

  /// Rewinds \p Data to \p S. Pages whose base pointer matches the
  /// snapshot's and that were not dirtied since are skipped; the rest
  /// are copied back and their indices appended to \p TouchedPages (if
  /// non-null) so the caller can invalidate derived per-page state. The
  /// tracker rebases on \p S.
  void restore(std::vector<T> &Data, const Snap &S,
               std::vector<size_t> *TouchedPages = nullptr) {
    Data.resize(S.Size);
    size_t N = S.Pages.size();
    if (N > PageCount)
      growTo(N);
    uint64_t Copied = 0;
    for (size_t P = 0; P != N; ++P) {
      if (P < Base.size() && Base[P] == S.Pages[P] && !isDirty(P))
        continue;
      const std::vector<T> &Src = *S.Pages[P];
      std::copy(Src.begin(), Src.end(), Data.begin() + P * PageElems);
      Copied += Src.size() * sizeof(T);
      if (TouchedPages)
        TouchedPages->push_back(P);
    }
    metrics::add(metrics::Id::CkptBytesCopied, Copied);
    Base = S.Pages;
    Base.resize(PageCount);
    clearDirty();
  }

  /// Forgets all base pages; the next snapshot copies everything.
  void reset() {
    Base.clear();
    Dirty.clear();
    PageCount = 0;
  }

private:
  std::vector<Page> Base;      ///< Pages Data matched at the last rebase.
  std::vector<uint64_t> Dirty; ///< One bit per page, set => diverged.
  size_t PageCount = 0;

  static size_t pagesFor(size_t Elems) {
    return (Elems + PageElems - 1) / PageElems;
  }
  static size_t sliceLen(size_t Total, size_t P) {
    size_t Lo = P * PageElems;
    return Total - Lo < PageElems ? Total - Lo : PageElems;
  }
  bool isDirty(size_t P) const {
    return (Dirty[P >> 6] >> (P & 63)) & 1;
  }
  void clearDirty() {
    for (uint64_t &W : Dirty)
      W = 0;
  }
  void growTo(size_t N) {
    PageCount = N;
    Dirty.resize((N + 63) / 64, 0);
    if (Base.size() < N)
      Base.resize(N);
  }
};

/// Delta-chain tracker for an append-only std::vector<T>.
///
/// Contract: between tracker operations the tracked vector is only
/// appended to (never truncated or edited in place). snapshot() is
/// O(elements appended since the previous snapshot); restore() is
/// O(distance to the pointer-identical common ancestor).
template <typename T> class ChainTracker {
public:
  struct Node {
    std::shared_ptr<const Node> Parent;
    std::vector<T> Delta; ///< Elements [Parent->Len, Len).
    size_t Len = 0;
    size_t Depth = 0;
  };

  using Snap = std::shared_ptr<const Node>;

  /// Captures \p Data as a new chain node holding only the suffix
  /// appended since the last tracker operation.
  Snap snapshot(const std::vector<T> &Data) {
    // A tracked vector shorter than the chain position means a caller
    // moved it out (stats collection does); drop the position and store
    // a full copy rather than slicing past the end.
    if (Tip && Data.size() < Tip->Len)
      Tip = nullptr;
    auto N = std::make_shared<Node>();
    N->Parent = Tip;
    N->Len = Data.size();
    N->Depth = Tip ? Tip->Depth + 1 : 0;
    size_t From = Tip ? Tip->Len : 0;
    N->Delta.assign(Data.begin() + From, Data.end());
    Tip = N;
    return N;
  }

  /// Rewinds \p Data to the contents captured by \p S. When \p S shares
  /// an ancestor with the tracker's current position, only the diverging
  /// suffix is truncated and replayed; otherwise the whole vector is
  /// rebuilt from the chain.
  void restore(std::vector<T> &Data, const Snap &S) {
    // Same moved-out defense as snapshot(): if the vector no longer
    // extends the chain position, rebuild it from scratch.
    if (Tip && Data.size() < Tip->Len)
      Tip = nullptr;
    // Find the common ancestor by equalizing depth, then walking both
    // chains in lock step comparing pointers.
    const Node *A = S.get();
    const Node *B = Tip.get();
    while (A && B && A != B) {
      if (A->Depth > B->Depth)
        A = A->Parent.get();
      else if (B->Depth > A->Depth)
        B = B->Parent.get();
      else {
        A = A->Parent.get();
        B = B->Parent.get();
      }
    }
    const Node *Ancestor = (A && A == B) ? A : nullptr;

    // Collect the path Ancestor(exclusive) -> S, deepest first.
    std::vector<const Node *> Path;
    for (const Node *N = S.get(); N && N != Ancestor; N = N->Parent.get())
      Path.push_back(N);

    Data.resize(Ancestor ? Ancestor->Len : 0);
    for (size_t I = Path.size(); I != 0; --I)
      Data.insert(Data.end(), Path[I - 1]->Delta.begin(),
                  Path[I - 1]->Delta.end());
    Tip = S;
  }

  /// Forgets the chain position; the next snapshot stores a full copy.
  void reset() { Tip = nullptr; }

private:
  Snap Tip; ///< Node whose contents the tracked vector extends.
};

} // namespace support
} // namespace b2

#endif // B2_SUPPORT_SNAPSHOT_H
