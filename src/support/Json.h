//===- support/Json.h - Minimal streaming JSON writer ----------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny dependency-free JSON emitter for the machine-readable
/// `BENCH_*.json` outputs of the bench binaries (sim_throughput,
/// verification_perf). Write-only, streaming, with explicit
/// object/array scopes; no parsing, no DOM.
///
//===----------------------------------------------------------------------===//

#ifndef B2_SUPPORT_JSON_H
#define B2_SUPPORT_JSON_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace b2 {
namespace support {

/// Streaming JSON writer. Usage:
/// \code
///   JsonWriter J;
///   J.beginObject();
///   J.key("name").value("sim_throughput");
///   J.key("runs").beginArray();
///   J.beginObject(); J.key("ips").value(1.5e8); J.endObject();
///   J.endArray();
///   J.endObject();
///   writeFile("BENCH_sim_throughput.json", J.str());
/// \endcode
class JsonWriter {
public:
  JsonWriter() { Stack.push_back(false); }

  JsonWriter &beginObject() {
    comma();
    Out += '{';
    Stack.push_back(false);
    return *this;
  }

  JsonWriter &endObject() {
    Stack.pop_back();
    Out += '}';
    return *this;
  }

  JsonWriter &beginArray() {
    comma();
    Out += '[';
    Stack.push_back(false);
    return *this;
  }

  JsonWriter &endArray() {
    Stack.pop_back();
    Out += ']';
    return *this;
  }

  /// Emits an object key; follow with exactly one value/begin call.
  JsonWriter &key(const std::string &K) {
    comma();
    quote(K);
    Out += ':';
    Stack.back() = false; // The upcoming value needs no comma.
    return *this;
  }

  JsonWriter &value(const std::string &V) {
    comma();
    quote(V);
    return *this;
  }
  JsonWriter &value(const char *V) { return value(std::string(V)); }

  JsonWriter &value(double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    comma();
    Out += Buf;
    return *this;
  }

  JsonWriter &value(uint64_t V) {
    comma();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &value(int V) { return value(uint64_t(V < 0 ? 0 : V)); }
  JsonWriter &value(unsigned V) { return value(uint64_t(V)); }

  JsonWriter &value(bool V) {
    comma();
    Out += V ? "true" : "false";
    return *this;
  }

  const std::string &str() const { return Out; }

private:
  std::string Out;
  /// Per-scope "the next element needs a leading comma" flag.
  std::vector<bool> Stack;

  void comma() {
    if (Stack.back())
      Out += ',';
    Stack.back() = true;
  }

  void quote(const std::string &S) {
    Out += '"';
    for (char C : S) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      default:
        if (uint8_t(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
    Out += '"';
  }
};

/// Writes \p Content to \p Path; returns false on I/O failure.
inline bool writeFile(const std::string &Path, const std::string &Content) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Content.data(), 1, Content.size(), F) ==
            Content.size();
  return std::fclose(F) == 0 && Ok;
}

} // namespace support
} // namespace b2

#endif // B2_SUPPORT_JSON_H
