//===- support/ThreadPool.h - Fixed-size worker pool -----------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool plus a deterministic parallel-for, used
/// by the parallel verification driver (verify/ParallelDriver.h) to shard
/// independent work units (fuzz scenarios, corpus programs, stimulus
/// seeds) across hardware threads.
///
/// Determinism contract: parallelFor(N, T, Fn) invokes Fn(I) exactly once
/// for every I in [0, N), and workers communicate only through their own
/// index — so as long as Fn(I) depends only on I (per-shard RNG seeds, no
/// shared mutable state), the multiset of results is identical for every
/// thread count, and results indexed by I are bit-identical. T <= 1
/// degenerates to a plain sequential loop on the calling thread.
///
//===----------------------------------------------------------------------===//

#ifndef B2_SUPPORT_THREADPOOL_H
#define B2_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace b2 {
namespace support {

/// Fixed-size pool; tasks run in submission order pickup (any worker).
class ThreadPool {
public:
  /// Spawns \p Threads workers (at least 1).
  explicit ThreadPool(unsigned Threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues one task.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void wait();

  unsigned threadCount() const { return unsigned(Workers.size()); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned defaultThreadCount();

private:
  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskReady;  ///< Signals workers: work or stop.
  std::condition_variable AllIdle;    ///< Signals wait(): everything done.
  size_t Pending = 0; ///< Queued + currently running tasks.
  bool Stopping = false;

  void workerLoop();
};

/// Runs Fn(0) .. Fn(N-1), each exactly once, using up to \p Threads
/// workers. \p Threads <= 1 runs sequentially on the caller.
void parallelFor(size_t N, unsigned Threads,
                 const std::function<void(size_t)> &Fn);

} // namespace support
} // namespace b2

#endif // B2_SUPPORT_THREADPOOL_H
