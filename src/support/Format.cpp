//===- support/Format.cpp - Small formatting helpers ----------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdio>

using namespace b2;
using namespace b2::support;

std::string b2::support::hex32(Word Value) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%08x", Value);
  return Buf;
}

std::string b2::support::hex8(uint8_t Value) {
  char Buf[8];
  std::snprintf(Buf, sizeof(Buf), "0x%02x", Value);
  return Buf;
}

std::string b2::support::dec(SWord Value) { return std::to_string(Value); }

std::string b2::support::join(const std::vector<std::string> &Parts,
                              const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string b2::support::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string b2::support::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}
