//===- support/Format.h - Small formatting helpers -------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-free formatting helpers used by the disassembler, the trace
/// pretty-printers, and the bench harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef B2_SUPPORT_FORMAT_H
#define B2_SUPPORT_FORMAT_H

#include "support/Word.h"

#include <string>
#include <vector>

namespace b2 {
namespace support {

/// Formats \p Value as 0x%08x.
std::string hex32(Word Value);

/// Formats \p Value as 0x%02x.
std::string hex8(uint8_t Value);

/// Formats \p Value as a signed decimal.
std::string dec(SWord Value);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Left-pads \p S with spaces to at least \p Width characters.
std::string padLeft(const std::string &S, size_t Width);

/// Right-pads \p S with spaces to at least \p Width characters.
std::string padRight(const std::string &S, size_t Width);

} // namespace support
} // namespace b2

#endif // B2_SUPPORT_FORMAT_H
