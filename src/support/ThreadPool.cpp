//===- support/ThreadPool.cpp - Fixed-size worker pool ----------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>

using namespace b2;
using namespace b2::support;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = 1;
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  TaskReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Tasks.push(std::move(Task));
    ++Pending;
  }
  TaskReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllIdle.wait(Lock, [this] { return Pending == 0; });
}

unsigned ThreadPool::defaultThreadCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      TaskReady.wait(Lock, [this] { return Stopping || !Tasks.empty(); });
      if (Tasks.empty())
        return; // Stopping and drained.
      Task = std::move(Tasks.front());
      Tasks.pop();
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (--Pending == 0)
        AllIdle.notify_all();
    }
  }
}

void b2::support::parallelFor(size_t N, unsigned Threads,
                              const std::function<void(size_t)> &Fn) {
  if (Threads <= 1 || N <= 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }
  if (Threads > N)
    Threads = unsigned(N);
  // Dynamic index distribution: workers claim the next unclaimed index.
  // Which worker runs which index is scheduling-dependent; what each
  // index computes is not.
  std::atomic<size_t> Next{0};
  ThreadPool Pool(Threads);
  for (unsigned T = 0; T != Threads; ++T)
    Pool.submit([&] {
      for (;;) {
        size_t I = Next.fetch_add(1);
        if (I >= N)
          return;
        Fn(I);
      }
    });
  Pool.wait();
}
