//===- isa/Build.h - Instruction factory helpers ---------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience constructors for decoded instructions, used by the compiler
/// backend and by hand-written test programs. Each helper asserts
/// encodability so that malformed instructions are caught at construction
/// time rather than at encoding time.
///
//===----------------------------------------------------------------------===//

#ifndef B2_ISA_BUILD_H
#define B2_ISA_BUILD_H

#include "isa/Encoding.h"
#include "isa/Instr.h"

#include <cassert>

namespace b2 {
namespace isa {

inline Instr mkR(Opcode Op, Reg Rd, Reg Rs1, Reg Rs2) {
  Instr I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  assert(isEncodable(I) && "malformed R-type instruction");
  return I;
}

inline Instr mkI(Opcode Op, Reg Rd, Reg Rs1, SWord Imm) {
  Instr I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Imm = Imm;
  assert(isEncodable(I) && "malformed I-type instruction");
  return I;
}

inline Instr mkS(Opcode Op, Reg Rs1, Reg Rs2, SWord Imm) {
  Instr I;
  I.Op = Op;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  I.Imm = Imm;
  assert(isEncodable(I) && "malformed S-type instruction");
  return I;
}

inline Instr mkB(Opcode Op, Reg Rs1, Reg Rs2, SWord Offset) {
  Instr I;
  I.Op = Op;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  I.Imm = Offset;
  assert(isEncodable(I) && "malformed B-type instruction");
  return I;
}

inline Instr lui(Reg Rd, SWord UpperImm) {
  Instr I;
  I.Op = Opcode::Lui;
  I.Rd = Rd;
  I.Imm = UpperImm;
  assert(isEncodable(I) && "malformed lui");
  return I;
}

inline Instr auipc(Reg Rd, SWord UpperImm) {
  Instr I;
  I.Op = Opcode::Auipc;
  I.Rd = Rd;
  I.Imm = UpperImm;
  assert(isEncodable(I) && "malformed auipc");
  return I;
}

inline Instr jal(Reg Rd, SWord Offset) {
  Instr I;
  I.Op = Opcode::Jal;
  I.Rd = Rd;
  I.Imm = Offset;
  assert(isEncodable(I) && "malformed jal");
  return I;
}

inline Instr jalr(Reg Rd, Reg Rs1, SWord Offset) {
  return mkI(Opcode::Jalr, Rd, Rs1, Offset);
}

inline Instr addi(Reg Rd, Reg Rs1, SWord Imm) {
  return mkI(Opcode::Addi, Rd, Rs1, Imm);
}

inline Instr lw(Reg Rd, Reg Rs1, SWord Imm) {
  return mkI(Opcode::Lw, Rd, Rs1, Imm);
}

inline Instr sw(Reg Rs1Base, Reg Rs2Src, SWord Imm) {
  return mkS(Opcode::Sw, Rs1Base, Rs2Src, Imm);
}

inline Instr nop() { return addi(Zero, Zero, 0); }

/// Materializes an arbitrary 32-bit constant into \p Rd using lui+addi.
/// Returns one or two instructions appended to \p Out.
inline void materialize(Word Value, Reg Rd, std::vector<Instr> &Out) {
  SWord Low = SWord(support::signExtend(Value, 12));
  Word High = Value - Word(Low);
  // High now has its low 12 bits clear by construction.
  if (High != 0) {
    Out.push_back(lui(Rd, SWord(High)));
    if (Low != 0)
      Out.push_back(addi(Rd, Rd, Low));
  } else {
    Out.push_back(addi(Rd, Zero, Low));
  }
}

} // namespace isa
} // namespace b2

#endif // B2_ISA_BUILD_H
