//===- isa/Encoding.cpp - RV32IM instruction encode/decode -----------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "isa/Encoding.h"

#include <cassert>

using namespace b2;
using namespace b2::isa;
using namespace b2::support;

namespace {

// Major opcode fields (bits [6:0]).
constexpr Word OpcLui = 0x37;
constexpr Word OpcAuipc = 0x17;
constexpr Word OpcJal = 0x6F;
constexpr Word OpcJalr = 0x67;
constexpr Word OpcBranch = 0x63;
constexpr Word OpcLoad = 0x03;
constexpr Word OpcStore = 0x23;
constexpr Word OpcOpImm = 0x13;
constexpr Word OpcOp = 0x33;
constexpr Word OpcMiscMem = 0x0F;
constexpr Word OpcSystem = 0x73;

Word immI(Word Raw) { return signExtend(bits(Raw, 31, 20), 12); }

Word immS(Word Raw) {
  return signExtend((bits(Raw, 31, 25) << 5) | bits(Raw, 11, 7), 12);
}

Word immB(Word Raw) {
  Word Imm = (bit(Raw, 31) << 12) | (bit(Raw, 7) << 11) |
             (bits(Raw, 30, 25) << 5) | (bits(Raw, 11, 8) << 1);
  return signExtend(Imm, 13);
}

Word immU(Word Raw) { return Raw & 0xFFFFF000u; }

Word immJ(Word Raw) {
  Word Imm = (bit(Raw, 31) << 20) | (bits(Raw, 19, 12) << 12) |
             (bit(Raw, 20) << 11) | (bits(Raw, 30, 21) << 1);
  return signExtend(Imm, 21);
}

Word encR(Word Funct7, Reg Rs2, Reg Rs1, Word Funct3, Reg Rd, Word Opc) {
  return (Funct7 << 25) | (Word(Rs2) << 20) | (Word(Rs1) << 15) |
         (Funct3 << 12) | (Word(Rd) << 7) | Opc;
}

Word encI(Word Imm12, Reg Rs1, Word Funct3, Reg Rd, Word Opc) {
  return ((Imm12 & 0xFFF) << 20) | (Word(Rs1) << 15) | (Funct3 << 12) |
         (Word(Rd) << 7) | Opc;
}

Word encS(Word Imm12, Reg Rs2, Reg Rs1, Word Funct3, Word Opc) {
  return (bits(Imm12, 11, 5) << 25) | (Word(Rs2) << 20) | (Word(Rs1) << 15) |
         (Funct3 << 12) | (bits(Imm12, 4, 0) << 7) | Opc;
}

Word encB(Word Imm13, Reg Rs2, Reg Rs1, Word Funct3, Word Opc) {
  return (bit(Imm13, 12) << 31) | (bits(Imm13, 10, 5) << 25) |
         (Word(Rs2) << 20) | (Word(Rs1) << 15) | (Funct3 << 12) |
         (bits(Imm13, 4, 1) << 8) | (bit(Imm13, 11) << 7) | Opc;
}

Word encU(Word Imm32, Reg Rd, Word Opc) {
  return (Imm32 & 0xFFFFF000u) | (Word(Rd) << 7) | Opc;
}

Word encJ(Word Imm21, Reg Rd, Word Opc) {
  return (bit(Imm21, 20) << 31) | (bits(Imm21, 10, 1) << 21) |
         (bit(Imm21, 11) << 20) | (bits(Imm21, 19, 12) << 12) |
         (Word(Rd) << 7) | Opc;
}

Instr make(Opcode Op, Reg Rd, Reg Rs1, Reg Rs2, SWord Imm) {
  Instr I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  I.Imm = Imm;
  return I;
}

Instr invalid() { return Instr(); }

Instr decodeBranch(Word Raw, Reg Rs1, Reg Rs2, Word Funct3) {
  SWord Imm = SWord(immB(Raw));
  switch (Funct3) {
  case 0:
    return make(Opcode::Beq, 0, Rs1, Rs2, Imm);
  case 1:
    return make(Opcode::Bne, 0, Rs1, Rs2, Imm);
  case 4:
    return make(Opcode::Blt, 0, Rs1, Rs2, Imm);
  case 5:
    return make(Opcode::Bge, 0, Rs1, Rs2, Imm);
  case 6:
    return make(Opcode::Bltu, 0, Rs1, Rs2, Imm);
  case 7:
    return make(Opcode::Bgeu, 0, Rs1, Rs2, Imm);
  default:
    return invalid();
  }
}

Instr decodeLoad(Word Raw, Reg Rd, Reg Rs1, Word Funct3) {
  SWord Imm = SWord(immI(Raw));
  switch (Funct3) {
  case 0:
    return make(Opcode::Lb, Rd, Rs1, 0, Imm);
  case 1:
    return make(Opcode::Lh, Rd, Rs1, 0, Imm);
  case 2:
    return make(Opcode::Lw, Rd, Rs1, 0, Imm);
  case 4:
    return make(Opcode::Lbu, Rd, Rs1, 0, Imm);
  case 5:
    return make(Opcode::Lhu, Rd, Rs1, 0, Imm);
  default:
    return invalid();
  }
}

Instr decodeStore(Word Raw, Reg Rs1, Reg Rs2, Word Funct3) {
  SWord Imm = SWord(immS(Raw));
  switch (Funct3) {
  case 0:
    return make(Opcode::Sb, 0, Rs1, Rs2, Imm);
  case 1:
    return make(Opcode::Sh, 0, Rs1, Rs2, Imm);
  case 2:
    return make(Opcode::Sw, 0, Rs1, Rs2, Imm);
  default:
    return invalid();
  }
}

Instr decodeOpImm(Word Raw, Reg Rd, Reg Rs1, Word Funct3) {
  SWord Imm = SWord(immI(Raw));
  Word Funct7 = bits(Raw, 31, 25);
  Word Shamt = bits(Raw, 24, 20);
  switch (Funct3) {
  case 0:
    return make(Opcode::Addi, Rd, Rs1, 0, Imm);
  case 1:
    if (Funct7 != 0)
      return invalid();
    return make(Opcode::Slli, Rd, Rs1, 0, SWord(Shamt));
  case 2:
    return make(Opcode::Slti, Rd, Rs1, 0, Imm);
  case 3:
    return make(Opcode::Sltiu, Rd, Rs1, 0, Imm);
  case 4:
    return make(Opcode::Xori, Rd, Rs1, 0, Imm);
  case 5:
    if (Funct7 == 0)
      return make(Opcode::Srli, Rd, Rs1, 0, SWord(Shamt));
    if (Funct7 == 0x20)
      return make(Opcode::Srai, Rd, Rs1, 0, SWord(Shamt));
    return invalid();
  case 6:
    return make(Opcode::Ori, Rd, Rs1, 0, Imm);
  case 7:
    return make(Opcode::Andi, Rd, Rs1, 0, Imm);
  default:
    return invalid();
  }
}

Instr decodeOp(Word Raw, Reg Rd, Reg Rs1, Reg Rs2, Word Funct3) {
  Word Funct7 = bits(Raw, 31, 25);
  if (Funct7 == 0x01) {
    // RV32M.
    static const Opcode MulOps[8] = {Opcode::Mul,  Opcode::Mulh,
                                     Opcode::Mulhsu, Opcode::Mulhu,
                                     Opcode::Div,  Opcode::Divu,
                                     Opcode::Rem,  Opcode::Remu};
    return make(MulOps[Funct3], Rd, Rs1, Rs2, 0);
  }
  if (Funct7 == 0x00) {
    static const Opcode BaseOps[8] = {Opcode::Add, Opcode::Sll, Opcode::Slt,
                                      Opcode::Sltu, Opcode::Xor, Opcode::Srl,
                                      Opcode::Or,  Opcode::And};
    return make(BaseOps[Funct3], Rd, Rs1, Rs2, 0);
  }
  if (Funct7 == 0x20) {
    if (Funct3 == 0)
      return make(Opcode::Sub, Rd, Rs1, Rs2, 0);
    if (Funct3 == 5)
      return make(Opcode::Sra, Rd, Rs1, Rs2, 0);
    return invalid();
  }
  return invalid();
}

} // namespace

Instr b2::isa::decode(Word Raw) {
  Word Opc = bits(Raw, 6, 0);
  Reg Rd = Reg(bits(Raw, 11, 7));
  Word Funct3 = bits(Raw, 14, 12);
  Reg Rs1 = Reg(bits(Raw, 19, 15));
  Reg Rs2 = Reg(bits(Raw, 24, 20));

  switch (Opc) {
  case OpcLui:
    return make(Opcode::Lui, Rd, 0, 0, SWord(immU(Raw)));
  case OpcAuipc:
    return make(Opcode::Auipc, Rd, 0, 0, SWord(immU(Raw)));
  case OpcJal:
    return make(Opcode::Jal, Rd, 0, 0, SWord(immJ(Raw)));
  case OpcJalr:
    if (Funct3 != 0)
      return invalid();
    return make(Opcode::Jalr, Rd, Rs1, 0, SWord(immI(Raw)));
  case OpcBranch:
    return decodeBranch(Raw, Rs1, Rs2, Funct3);
  case OpcLoad:
    return decodeLoad(Raw, Rd, Rs1, Funct3);
  case OpcStore:
    return decodeStore(Raw, Rs1, Rs2, Funct3);
  case OpcOpImm:
    return decodeOpImm(Raw, Rd, Rs1, Funct3);
  case OpcOp:
    return decodeOp(Raw, Rd, Rs1, Rs2, Funct3);
  case OpcMiscMem:
    // FENCE and FENCE.I; we treat all fences as one no-op opcode but keep
    // the raw immediate so encode(decode(x)) can reproduce x is not
    // required for fences (the compiler only emits the canonical form).
    if (Funct3 == 0)
      return make(Opcode::Fence, Rd, Rs1, 0, SWord(immI(Raw)));
    return invalid();
  case OpcSystem:
    if (Raw == 0x00000073)
      return make(Opcode::Ecall, 0, 0, 0, 0);
    if (Raw == 0x00100073)
      return make(Opcode::Ebreak, 0, 0, 0, 0);
    return invalid();
  default:
    return invalid();
  }
}

bool b2::isa::isEncodable(const Instr &I) {
  if (I.Rd >= NumRegs || I.Rs1 >= NumRegs || I.Rs2 >= NumRegs)
    return false;
  switch (I.Op) {
  case Opcode::Invalid:
    return false;
  case Opcode::Lui:
  case Opcode::Auipc:
    return (Word(I.Imm) & 0xFFF) == 0;
  case Opcode::Jal:
    return fitsSigned(I.Imm, 21) && (I.Imm & 1) == 0;
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
  case Opcode::Bltu:
  case Opcode::Bgeu:
    return fitsSigned(I.Imm, 13) && (I.Imm & 1) == 0;
  case Opcode::Slli:
  case Opcode::Srli:
  case Opcode::Srai:
    return I.Imm >= 0 && I.Imm < 32;
  case Opcode::Jalr:
  case Opcode::Lb:
  case Opcode::Lh:
  case Opcode::Lw:
  case Opcode::Lbu:
  case Opcode::Lhu:
  case Opcode::Sb:
  case Opcode::Sh:
  case Opcode::Sw:
  case Opcode::Addi:
  case Opcode::Slti:
  case Opcode::Sltiu:
  case Opcode::Xori:
  case Opcode::Ori:
  case Opcode::Andi:
  case Opcode::Fence:
    return fitsSigned(I.Imm, 12);
  default:
    return true; // R-type and system instructions have no immediate.
  }
}

Word b2::isa::encode(const Instr &I) {
  assert(isEncodable(I) && "attempting to encode an unencodable instruction");
  Word Imm = Word(I.Imm);
  switch (I.Op) {
  case Opcode::Lui:
    return encU(Imm, I.Rd, OpcLui);
  case Opcode::Auipc:
    return encU(Imm, I.Rd, OpcAuipc);
  case Opcode::Jal:
    return encJ(Imm, I.Rd, OpcJal);
  case Opcode::Jalr:
    return encI(Imm, I.Rs1, 0, I.Rd, OpcJalr);
  case Opcode::Beq:
    return encB(Imm, I.Rs2, I.Rs1, 0, OpcBranch);
  case Opcode::Bne:
    return encB(Imm, I.Rs2, I.Rs1, 1, OpcBranch);
  case Opcode::Blt:
    return encB(Imm, I.Rs2, I.Rs1, 4, OpcBranch);
  case Opcode::Bge:
    return encB(Imm, I.Rs2, I.Rs1, 5, OpcBranch);
  case Opcode::Bltu:
    return encB(Imm, I.Rs2, I.Rs1, 6, OpcBranch);
  case Opcode::Bgeu:
    return encB(Imm, I.Rs2, I.Rs1, 7, OpcBranch);
  case Opcode::Lb:
    return encI(Imm, I.Rs1, 0, I.Rd, OpcLoad);
  case Opcode::Lh:
    return encI(Imm, I.Rs1, 1, I.Rd, OpcLoad);
  case Opcode::Lw:
    return encI(Imm, I.Rs1, 2, I.Rd, OpcLoad);
  case Opcode::Lbu:
    return encI(Imm, I.Rs1, 4, I.Rd, OpcLoad);
  case Opcode::Lhu:
    return encI(Imm, I.Rs1, 5, I.Rd, OpcLoad);
  case Opcode::Sb:
    return encS(Imm, I.Rs2, I.Rs1, 0, OpcStore);
  case Opcode::Sh:
    return encS(Imm, I.Rs2, I.Rs1, 1, OpcStore);
  case Opcode::Sw:
    return encS(Imm, I.Rs2, I.Rs1, 2, OpcStore);
  case Opcode::Addi:
    return encI(Imm, I.Rs1, 0, I.Rd, OpcOpImm);
  case Opcode::Slti:
    return encI(Imm, I.Rs1, 2, I.Rd, OpcOpImm);
  case Opcode::Sltiu:
    return encI(Imm, I.Rs1, 3, I.Rd, OpcOpImm);
  case Opcode::Xori:
    return encI(Imm, I.Rs1, 4, I.Rd, OpcOpImm);
  case Opcode::Ori:
    return encI(Imm, I.Rs1, 6, I.Rd, OpcOpImm);
  case Opcode::Andi:
    return encI(Imm, I.Rs1, 7, I.Rd, OpcOpImm);
  case Opcode::Slli:
    return encI(Imm, I.Rs1, 1, I.Rd, OpcOpImm);
  case Opcode::Srli:
    return encI(Imm, I.Rs1, 5, I.Rd, OpcOpImm);
  case Opcode::Srai:
    return encI(Imm | 0x400, I.Rs1, 5, I.Rd, OpcOpImm);
  case Opcode::Add:
    return encR(0x00, I.Rs2, I.Rs1, 0, I.Rd, OpcOp);
  case Opcode::Sub:
    return encR(0x20, I.Rs2, I.Rs1, 0, I.Rd, OpcOp);
  case Opcode::Sll:
    return encR(0x00, I.Rs2, I.Rs1, 1, I.Rd, OpcOp);
  case Opcode::Slt:
    return encR(0x00, I.Rs2, I.Rs1, 2, I.Rd, OpcOp);
  case Opcode::Sltu:
    return encR(0x00, I.Rs2, I.Rs1, 3, I.Rd, OpcOp);
  case Opcode::Xor:
    return encR(0x00, I.Rs2, I.Rs1, 4, I.Rd, OpcOp);
  case Opcode::Srl:
    return encR(0x00, I.Rs2, I.Rs1, 5, I.Rd, OpcOp);
  case Opcode::Sra:
    return encR(0x20, I.Rs2, I.Rs1, 5, I.Rd, OpcOp);
  case Opcode::Or:
    return encR(0x00, I.Rs2, I.Rs1, 6, I.Rd, OpcOp);
  case Opcode::And:
    return encR(0x00, I.Rs2, I.Rs1, 7, I.Rd, OpcOp);
  case Opcode::Fence:
    return encI(Imm, I.Rs1, 0, I.Rd, OpcMiscMem);
  case Opcode::Ecall:
    return 0x00000073;
  case Opcode::Ebreak:
    return 0x00100073;
  case Opcode::Mul:
    return encR(0x01, I.Rs2, I.Rs1, 0, I.Rd, OpcOp);
  case Opcode::Mulh:
    return encR(0x01, I.Rs2, I.Rs1, 1, I.Rd, OpcOp);
  case Opcode::Mulhsu:
    return encR(0x01, I.Rs2, I.Rs1, 2, I.Rd, OpcOp);
  case Opcode::Mulhu:
    return encR(0x01, I.Rs2, I.Rs1, 3, I.Rd, OpcOp);
  case Opcode::Div:
    return encR(0x01, I.Rs2, I.Rs1, 4, I.Rd, OpcOp);
  case Opcode::Divu:
    return encR(0x01, I.Rs2, I.Rs1, 5, I.Rd, OpcOp);
  case Opcode::Rem:
    return encR(0x01, I.Rs2, I.Rs1, 6, I.Rd, OpcOp);
  case Opcode::Remu:
    return encR(0x01, I.Rs2, I.Rs1, 7, I.Rd, OpcOp);
  case Opcode::Invalid:
    break;
  }
  assert(false && "unreachable: invalid opcode in encode");
  return 0;
}

std::vector<uint8_t> b2::isa::instrencode(const std::vector<Instr> &Program) {
  std::vector<uint8_t> Image;
  Image.reserve(Program.size() * 4);
  for (const Instr &I : Program) {
    Word W = encode(I);
    Image.push_back(uint8_t(W & 0xFF));
    Image.push_back(uint8_t((W >> 8) & 0xFF));
    Image.push_back(uint8_t((W >> 16) & 0xFF));
    Image.push_back(uint8_t((W >> 24) & 0xFF));
  }
  return Image;
}
