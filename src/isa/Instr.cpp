//===- isa/Instr.cpp - Instruction classification --------------------------==//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "isa/Instr.h"

#include <cassert>

using namespace b2;
using namespace b2::isa;

std::string b2::isa::regName(Reg R) {
  static const char *Names[NumRegs] = {
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  assert(R < NumRegs && "register index out of range");
  return Names[R];
}

bool b2::isa::isBranch(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
  case Opcode::Bltu:
  case Opcode::Bgeu:
    return true;
  default:
    return false;
  }
}

bool b2::isa::isLoad(Opcode Op) {
  switch (Op) {
  case Opcode::Lb:
  case Opcode::Lh:
  case Opcode::Lw:
  case Opcode::Lbu:
  case Opcode::Lhu:
    return true;
  default:
    return false;
  }
}

bool b2::isa::isStore(Opcode Op) {
  switch (Op) {
  case Opcode::Sb:
  case Opcode::Sh:
  case Opcode::Sw:
    return true;
  default:
    return false;
  }
}

bool b2::isa::isRegAlu(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Sll:
  case Opcode::Slt:
  case Opcode::Sltu:
  case Opcode::Xor:
  case Opcode::Srl:
  case Opcode::Sra:
  case Opcode::Or:
  case Opcode::And:
    return true;
  default:
    return isMulDiv(Op);
  }
}

bool b2::isa::isImmAlu(Opcode Op) {
  switch (Op) {
  case Opcode::Addi:
  case Opcode::Slti:
  case Opcode::Sltiu:
  case Opcode::Xori:
  case Opcode::Ori:
  case Opcode::Andi:
  case Opcode::Slli:
  case Opcode::Srli:
  case Opcode::Srai:
    return true;
  default:
    return false;
  }
}

bool b2::isa::isMulDiv(Opcode Op) {
  switch (Op) {
  case Opcode::Mul:
  case Opcode::Mulh:
  case Opcode::Mulhsu:
  case Opcode::Mulhu:
  case Opcode::Div:
  case Opcode::Divu:
  case Opcode::Rem:
  case Opcode::Remu:
    return true;
  default:
    return false;
  }
}

unsigned b2::isa::accessSize(Opcode Op) {
  switch (Op) {
  case Opcode::Lb:
  case Opcode::Lbu:
  case Opcode::Sb:
    return 1;
  case Opcode::Lh:
  case Opcode::Lhu:
  case Opcode::Sh:
    return 2;
  case Opcode::Lw:
  case Opcode::Sw:
    return 4;
  default:
    assert(false && "accessSize of a non-memory opcode");
    return 0;
  }
}

const char *b2::isa::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Invalid:
    return "<invalid>";
  case Opcode::Lui:
    return "lui";
  case Opcode::Auipc:
    return "auipc";
  case Opcode::Jal:
    return "jal";
  case Opcode::Jalr:
    return "jalr";
  case Opcode::Beq:
    return "beq";
  case Opcode::Bne:
    return "bne";
  case Opcode::Blt:
    return "blt";
  case Opcode::Bge:
    return "bge";
  case Opcode::Bltu:
    return "bltu";
  case Opcode::Bgeu:
    return "bgeu";
  case Opcode::Lb:
    return "lb";
  case Opcode::Lh:
    return "lh";
  case Opcode::Lw:
    return "lw";
  case Opcode::Lbu:
    return "lbu";
  case Opcode::Lhu:
    return "lhu";
  case Opcode::Sb:
    return "sb";
  case Opcode::Sh:
    return "sh";
  case Opcode::Sw:
    return "sw";
  case Opcode::Addi:
    return "addi";
  case Opcode::Slti:
    return "slti";
  case Opcode::Sltiu:
    return "sltiu";
  case Opcode::Xori:
    return "xori";
  case Opcode::Ori:
    return "ori";
  case Opcode::Andi:
    return "andi";
  case Opcode::Slli:
    return "slli";
  case Opcode::Srli:
    return "srli";
  case Opcode::Srai:
    return "srai";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Sll:
    return "sll";
  case Opcode::Slt:
    return "slt";
  case Opcode::Sltu:
    return "sltu";
  case Opcode::Xor:
    return "xor";
  case Opcode::Srl:
    return "srl";
  case Opcode::Sra:
    return "sra";
  case Opcode::Or:
    return "or";
  case Opcode::And:
    return "and";
  case Opcode::Fence:
    return "fence";
  case Opcode::Ecall:
    return "ecall";
  case Opcode::Ebreak:
    return "ebreak";
  case Opcode::Mul:
    return "mul";
  case Opcode::Mulh:
    return "mulh";
  case Opcode::Mulhsu:
    return "mulhsu";
  case Opcode::Mulhu:
    return "mulhu";
  case Opcode::Div:
    return "div";
  case Opcode::Divu:
    return "divu";
  case Opcode::Rem:
    return "rem";
  case Opcode::Remu:
    return "remu";
  }
  return "<invalid>";
}
