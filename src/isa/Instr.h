//===- isa/Instr.h - Decoded RV32IM instruction representation -*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoded instruction type shared by the software-oriented ISA
/// semantics (riscv/) and the compiler backend (compiler/). The Kami-style
/// hardware model deliberately has its *own* decoder (kami/Decode.h), so
/// that the paper's "processor-ISA consistency proof" has a C++ analogue:
/// a differential checker between the two decoders (verify/).
///
/// We implement RV32IM: the base integer ISA the paper reconciled the Kami
/// processor with (RV32I), plus the M extension the compiler uses for
/// multiplication and division.
///
//===----------------------------------------------------------------------===//

#ifndef B2_ISA_INSTR_H
#define B2_ISA_INSTR_H

#include "isa/Reg.h"
#include "support/Word.h"

#include <cstdint>

namespace b2 {
namespace isa {

/// Every RV32IM instruction we model, plus Invalid for undecodable words.
enum class Opcode : uint8_t {
  Invalid,
  // RV32I: upper-immediate and control transfer.
  Lui,
  Auipc,
  Jal,
  Jalr,
  Beq,
  Bne,
  Blt,
  Bge,
  Bltu,
  Bgeu,
  // RV32I: loads and stores.
  Lb,
  Lh,
  Lw,
  Lbu,
  Lhu,
  Sb,
  Sh,
  Sw,
  // RV32I: immediate ALU.
  Addi,
  Slti,
  Sltiu,
  Xori,
  Ori,
  Andi,
  Slli,
  Srli,
  Srai,
  // RV32I: register ALU.
  Add,
  Sub,
  Sll,
  Slt,
  Sltu,
  Xor,
  Srl,
  Sra,
  Or,
  And,
  // RV32I: system / misc-mem. We model Fence as a no-op and Ecall/Ebreak
  // as undefined behavior (the demo platform has no execution environment).
  Fence,
  Ecall,
  Ebreak,
  // RV32M.
  Mul,
  Mulh,
  Mulhsu,
  Mulhu,
  Div,
  Divu,
  Rem,
  Remu,
};

/// A decoded instruction. Unused fields are zero. \c Imm holds the
/// sign-extended immediate for I/S/B/U/J formats (for U-format it holds the
/// already-shifted upper immediate, i.e. imm20 << 12).
struct Instr {
  Opcode Op = Opcode::Invalid;
  Reg Rd = 0;
  Reg Rs1 = 0;
  Reg Rs2 = 0;
  SWord Imm = 0;

  bool isValid() const { return Op != Opcode::Invalid; }

  friend bool operator==(const Instr &A, const Instr &B) {
    return A.Op == B.Op && A.Rd == B.Rd && A.Rs1 == B.Rs1 && A.Rs2 == B.Rs2 &&
           A.Imm == B.Imm;
  }
};

/// Classification helpers used by the semantics and the encoder.
bool isBranch(Opcode Op);
bool isLoad(Opcode Op);
bool isStore(Opcode Op);
bool isRegAlu(Opcode Op);
bool isImmAlu(Opcode Op);
bool isMulDiv(Opcode Op);

/// Number of bytes accessed by a load/store opcode (1, 2, or 4).
unsigned accessSize(Opcode Op);

/// Returns the mnemonic ("addi", "lw", ...).
const char *opcodeName(Opcode Op);

} // namespace isa
} // namespace b2

#endif // B2_ISA_INSTR_H
