//===- isa/Encoding.h - RV32IM instruction encode/decode -------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary encoding and decoding of RV32IM instructions ("as specified by
/// riscv-coq" in the paper's Figure 3). The compiler uses \c encode to
/// produce the memory image (the paper's `instrencode lightbulb_insts`);
/// the software-oriented ISA semantics use \c decode. Decoding of an
/// encoded instruction is proven (here: property-tested) to be the
/// identity.
///
//===----------------------------------------------------------------------===//

#ifndef B2_ISA_ENCODING_H
#define B2_ISA_ENCODING_H

#include "isa/Instr.h"
#include "support/Word.h"

#include <vector>

namespace b2 {
namespace isa {

/// Decodes the 32-bit instruction word \p Raw. Returns an Instr with
/// Opcode::Invalid if the word does not encode an RV32IM instruction we
/// model.
Instr decode(Word Raw);

/// Encodes \p I to its 32-bit instruction word. Asserts that all fields
/// are in range (register indices < 32, immediates representable in the
/// instruction format, branch/jump offsets even).
Word encode(const Instr &I);

/// Returns true iff \p I can be encoded: registers in range and the
/// immediate representable in the opcode's format.
bool isEncodable(const Instr &I);

/// Encodes a whole program to a little-endian byte image, one 4-byte word
/// per instruction. This is the paper's `instrencode`.
std::vector<uint8_t> instrencode(const std::vector<Instr> &Program);

} // namespace isa
} // namespace b2

#endif // B2_ISA_ENCODING_H
