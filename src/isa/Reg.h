//===- isa/Reg.h - RISC-V integer register names ---------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RV32I integer register numbering and ABI names. Registers are plain
/// uint8_t values 0..31 throughout the stack; this header provides the
/// symbolic constants used by the compiler's calling convention and the
/// disassembler.
///
//===----------------------------------------------------------------------===//

#ifndef B2_ISA_REG_H
#define B2_ISA_REG_H

#include <cstdint>
#include <string>

namespace b2 {
namespace isa {

/// A RISC-V integer register index (0..31).
using Reg = uint8_t;

/// Number of integer registers in RV32I.
constexpr unsigned NumRegs = 32;

// ABI register aliases. We use the standard RISC-V psABI names; the
// compiler's calling convention (args/rets in a-registers, temporaries in
// t-registers, allocatables in s-registers) is defined in compiler/Codegen.
constexpr Reg Zero = 0; ///< Hard-wired zero.
constexpr Reg RA = 1;   ///< Return address.
constexpr Reg SP = 2;   ///< Stack pointer.
constexpr Reg GP = 3;   ///< Global pointer (unused by our compiler).
constexpr Reg TP = 4;   ///< Thread pointer (unused by our compiler).
constexpr Reg T0 = 5;   ///< Temporary / scratch.
constexpr Reg T1 = 6;   ///< Temporary / scratch.
constexpr Reg T2 = 7;   ///< Temporary / scratch.
constexpr Reg S0 = 8;   ///< Saved register (allocatable).
constexpr Reg S1 = 9;   ///< Saved register (allocatable).
constexpr Reg A0 = 10;  ///< Argument/return 0.
constexpr Reg A1 = 11;  ///< Argument/return 1.
constexpr Reg A2 = 12;
constexpr Reg A3 = 13;
constexpr Reg A4 = 14;
constexpr Reg A5 = 15;
constexpr Reg A6 = 16;
constexpr Reg A7 = 17;
constexpr Reg S2 = 18; ///< S2..S11 are allocatable saved registers.
constexpr Reg S11 = 27;
constexpr Reg T3 = 28;
constexpr Reg T4 = 29;
constexpr Reg T5 = 30;
constexpr Reg T6 = 31;

/// Returns the ABI name of \p R ("zero", "ra", "sp", "a0", ...).
std::string regName(Reg R);

} // namespace isa
} // namespace b2

#endif // B2_ISA_REG_H
