//===- isa/Disasm.h - RV32IM disassembler ----------------------*- C++ -*-===//
//
// Part of the b2stack project (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual disassembly of decoded instructions, used for debugging output,
/// compiler listings, and the examples.
///
//===----------------------------------------------------------------------===//

#ifndef B2_ISA_DISASM_H
#define B2_ISA_DISASM_H

#include "isa/Instr.h"

#include <string>
#include <vector>

namespace b2 {
namespace isa {

/// Renders \p I as assembly text, e.g. "addi a0, a0, -4".
std::string disasm(const Instr &I);

/// Renders a whole program with addresses, starting at \p BaseAddr.
std::string disasmListing(const std::vector<Instr> &Program, Word BaseAddr);

} // namespace isa
} // namespace b2

#endif // B2_ISA_DISASM_H
